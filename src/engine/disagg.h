// Disaggregated prefill/decode serving (extension).
//
// Production engines increasingly split prefill and decode onto separate
// pools: prefill machines run compute-bound prompt processing, decode
// machines run bandwidth-bound generation, and the prompt's KV cache is
// shipped between them. This model answers what the split buys for the
// paper's workloads: interference-free ITL and independent scaling, at the
// cost of a KV transfer on every request.
#pragma once

#include "engine/engine.h"

namespace mib::engine {

struct DisaggConfig {
  /// Devices in each pool (same device type and parallel plan per pool).
  int prefill_devices = 1;
  int decode_devices = 1;
  /// Link carrying the KV cache between pools.
  hw::LinkSpec transfer_link = hw::ib_ndr400();

  void validate() const;
};

struct DisaggMetrics {
  double ttft_s = 0.0;          ///< prefill + KV transfer
  double kv_transfer_s = 0.0;   ///< prompt KV shipping time
  double itl_s = 0.0;           ///< paper eq. (1), decode pool only
  double e2e_s = 0.0;
  double throughput_tok_s = 0.0;
  /// Co-located baseline on prefill_devices + decode_devices for the same
  /// workload (what the same hardware does un-split).
  double colocated_throughput_tok_s = 0.0;
  double colocated_itl_s = 0.0;
};

class DisaggSimulator {
 public:
  /// `base` supplies the model, device type and precision; its plan/cluster
  /// are replaced per pool.
  DisaggSimulator(EngineConfig base, DisaggConfig disagg);

  DisaggMetrics run(int batch, int input_tokens, int output_tokens) const;

 private:
  EngineConfig pool_config(int devices) const;

  EngineConfig base_;
  DisaggConfig disagg_;
};

}  // namespace mib::engine
