// SimEngine — the serving-engine simulator that produces the paper's
// metrics (§3.4): TTFT, ITL, end-to-end latency, throughput and
// samples/sec, with memory-pressure handling.
//
// A run executes the request lifecycle the way a static-batch vLLM
// benchmark does: admit as many sequences as KV memory allows (wave
// scheduling when the batch exceeds capacity, mirroring vLLM's
// preempt/queue behavior), charge one prefill, then out_len - 1 decode
// steps with a growing context. OOM (weights + one sequence not fitting)
// raises OutOfMemoryError, which benches render as the paper's missing
// data points.
#pragma once

#include "engine/kv_cache.h"
#include "engine/layer_cost.h"
#include "engine/memory.h"
#include "engine/request.h"

namespace mib::engine {

struct EngineConfig {
  models::ModelConfig model;
  hw::Cluster cluster = hw::Cluster::h100_node(1);
  parallel::ParallelPlan plan;
  CostConfig cost;
  /// Split oversized batches into sequential waves instead of OOM-ing
  /// (vLLM queues what it cannot admit).
  bool allow_wave_scheduling = true;
  /// Max prefill tokens processed at once (chunked prefill): caps the
  /// activation watermark.
  int prefill_chunk_tokens = 16384;

  void validate() const;
};

/// Metrics of one run, matching the paper's definitions.
struct RunMetrics {
  double ttft_s = 0.0;  ///< time to first token (first wave)
  double itl_s = 0.0;   ///< (e2e - ttft) / (batch * out_tokens - 1), eq. (1)
  double e2e_s = 0.0;   ///< prompt submission to final token
  double throughput_tok_s = 0.0;  ///< batch * (in + out) / e2e, eq. (2)
  double decode_tok_s = 0.0;      ///< generated tokens / decode time
  double samples_per_s = 0.0;     ///< batch / e2e (the VLM metric)
  int waves = 1;                  ///< >1 when KV pressure forced queuing
  MemoryBreakdown memory;         ///< per-device footprint of wave 1

  /// Component times (summed over waves) for breakdown reporting.
  PhaseBreakdown prefill_breakdown;
  PhaseBreakdown decode_breakdown;
};

class SimEngine {
 public:
  explicit SimEngine(EngineConfig cfg);

  const EngineConfig& config() const { return cfg_; }
  const LayerCostModel& cost_model() const { return cost_; }
  const MemoryModel& memory_model() const { return mem_; }

  /// Run a uniform batch. Throws OutOfMemoryError if even one sequence
  /// cannot fit (or the whole batch, when wave scheduling is disabled).
  RunMetrics run(int batch, int input_tokens, int output_tokens,
                 int images_per_request = 0) const;

  /// Largest batch of (in+out)-token sequences admissible in one wave.
  int max_batch_without_waves(int input_tokens, int output_tokens,
                              int images_per_request = 0) const;

 private:
  /// One wave: prefill + decode of `batch` sequences. Accumulates
  /// component breakdowns into `metrics`.
  struct WaveResult {
    double ttft = 0.0;
    double decode = 0.0;
  };
  WaveResult run_wave(int batch, int in_eff, int output_tokens,
                      int images_per_request, RunMetrics& metrics) const;

  EngineConfig cfg_;
  LayerCostModel cost_;
  MemoryModel mem_;
};

}  // namespace mib::engine
