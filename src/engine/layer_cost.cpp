#include "engine/layer_cost.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "models/params.h"
#include "parallel/pipeline.h"

namespace mib::engine {

namespace {
/// Number of KV shards under tensor parallelism: KV heads split across tp
/// until one head per rank; the MLA latent is per-token and replicates.
int kv_shard(const models::ModelConfig& m, const parallel::ParallelPlan& p) {
  if (m.attention == models::AttentionKind::kMLA) return 1;
  return std::min(p.tp, m.n_kv_heads);
}
}  // namespace

LayerCostModel::LayerCostModel(models::ModelConfig model, hw::Cluster cluster,
                               parallel::ParallelPlan plan, CostConfig cost)
    : model_(std::move(model)),
      cluster_(std::move(cluster)),
      plan_(plan),
      cost_(cost),
      kernel_(cluster_.device()) {
  model_.validate();
  plan_.validate(model_);
  MIB_ENSURE(plan_.devices() <= cluster_.size(),
             "plan needs " << plan_.devices() << " devices, cluster has "
                           << cluster_.size());
}

int LayerCostModel::effective_prompt_tokens(int seq_len,
                                            int images_per_request) const {
  MIB_ENSURE(seq_len >= 1, "prompt needs at least one token");
  MIB_ENSURE(images_per_request >= 0, "negative image count");
  if (images_per_request == 0) return seq_len;
  MIB_ENSURE(model_.vision.has_value(),
             model_.name << " has no vision tower but got image inputs");
  return seq_len + images_per_request * model_.vision->patch_tokens;
}

double LayerCostModel::vision_encode_time(int images) const {
  MIB_ENSURE(images >= 0, "negative image count");
  if (images == 0) return 0.0;
  MIB_ENSURE(model_.vision.has_value(),
             model_.name << " has no vision tower");
  const auto& v = *model_.vision;
  const double tokens = static_cast<double>(images) * v.patch_tokens;
  // ViT forward: 2 FLOPs per param per token + quadratic attention.
  const double proj_flops = 2.0 * v.params() * tokens;
  const double attn_flops = 4.0 * static_cast<double>(images) *
                            static_cast<double>(v.patch_tokens) *
                            v.patch_tokens * v.hidden;
  const double bytes =
      v.params() * bytes_of(cost_.weight_dtype) +
      tokens * v.hidden * bytes_of(cost_.act_dtype) * 4.0;
  // The tower is replicated per TP rank in vLLM; images split across ranks.
  const double shard = std::max(1, plan_.tp);
  const auto c = kernel_.op((proj_flops + attn_flops) / shard, bytes,
                            kernel_.gemm_efficiency(tokens / shard),
                            /*launches=*/v.n_layers * 4);
  // Host preprocessing overlaps across CPU cores but not with GPU prefill
  // of the same request batch; charge it with a parallelism factor of 8.
  const double preprocess = images * v.preprocess_s / 8.0;
  return c.total() + preprocess;
}

void LayerCostModel::add_attention_cost(double tokens, int batch, double ctx,
                                        bool prefill,
                                        PhaseBreakdown& out) const {
  const double h = model_.hidden;
  const int tp = plan_.tp;
  const double attn_params = models::attention_params_per_layer(model_);

  // Q/K/V/O projections as one GEMM of the aggregate parameter volume.
  hw::KernelCost proj = kernel_.gemm(
      tokens, attn_params / (tp * h), h, cost_.act_dtype, cost_.weight_dtype);
  proj.launch_s += 3.0 * kernel_.device().kernel_launch_overhead;
  charge(out.attention, "attn.qkvo_proj", proj);

  const double heads_shard =
      std::max(1.0, static_cast<double>(model_.n_heads) / tp);
  if (prefill) {
    const double seq = tokens / batch;
    charge(out.attention, "attn.flash_prefill",
           kernel_.attention_prefill(batch, seq, heads_shard,
                                     model_.head_dim, cost_.act_dtype));
  } else {
    const double kv_per_layer =
        model_.kv_bytes_per_token_per_layer(cost_.kv_dtype);
    const double kv_read =
        batch * ctx * kv_per_layer / kv_shard(model_, plan_);
    charge(out.attention, "attn.paged_decode",
           kernel_.attention_decode(batch, ctx, heads_shard, model_.head_dim,
                                    kv_read, cost_.act_dtype));
  }

  // Norms, RoPE, residual adds.
  charge(out.attention, "attn.norm_rope_residual",
         kernel_.elementwise(tokens * h, 4.0, 2.0, cost_.act_dtype));

  if (tp > 1) {
    const auto& ic = cluster_.interconnect_for_group(tp);
    charge_time(out.comm, "comm.attn_allreduce",
                ic.allreduce(tokens * h * bytes_of(cost_.act_dtype), tp));
  }
}

void LayerCostModel::add_ffn_cost(double tokens, bool moe_layer,
                                  PhaseBreakdown& out) const {
  const double h = model_.hidden;
  const int tp = plan_.tp;
  const double act_b = bytes_of(cost_.act_dtype);
  const auto& ic = cluster_.interconnect_for_group(std::max(1, tp));

  if (!moe_layer) {
    const double ffn_local = static_cast<double>(model_.dense_ffn) / tp;
    charge(out.ffn, "ffn.dense_gate_up",
           kernel_.gemm(tokens, 2.0 * ffn_local, h, cost_.act_dtype,
                        cost_.weight_dtype));
    charge(out.ffn, "ffn.dense_down",
           kernel_.gemm(tokens, h, ffn_local, cost_.act_dtype,
                        cost_.weight_dtype));
    charge(out.ffn, "ffn.silu_mul",
           kernel_.elementwise(tokens * ffn_local, 2.0, 1.0,
                               cost_.act_dtype));
    if (tp > 1) {
      charge_time(out.comm, "comm.ffn_allreduce",
                  ic.allreduce(tokens * h * act_b, tp));
    }
    return;
  }

  const int E = model_.n_experts;
  const int k = model_.top_k;
  const double assignments = tokens * k;

  // Router: gate GEMM + top-k softmax.
  charge(out.router, "moe.router_gemm",
         kernel_.gemm(tokens, E, h, cost_.act_dtype, cost_.act_dtype));
  charge(out.router, "moe.router_topk",
         kernel_.elementwise(tokens * E, 2.0, 1.0, cost_.act_dtype));

  const double distinct_global = std::max(
      1.0, parallel::expected_distinct_experts(E, assignments, cost_.routing));

  double local_assignments = assignments;
  double local_distinct = distinct_global;
  double ffn_local = static_cast<double>(model_.expert_ffn) / tp;
  // EP dispatch must materialize the routed tokens into communication
  // buffers for the all-to-all, so the fused single-pass kernel is not
  // available: the activation round-trip and per-expert launches return.
  const bool fused = cost_.fused_moe && !(plan_.ep && tp > 1);
  if (plan_.ep && tp > 1) {
    // Whole experts per device; the slowest device gates the layer.
    double share;
    if (cost_.ep_balanced_placement) {
      const auto probs = parallel::expert_probabilities(E, cost_.routing);
      const auto placement = parallel::balanced_placement(probs, tp);
      const double factor = parallel::expected_max_load_factor_for_placement(
          probs, placement, tp, assignments);
      share = std::clamp(factor / tp, 1.0 / tp, 1.0);
    } else {
      share = parallel::expected_max_group_share(E, assignments, tp,
                                                 cost_.routing);
    }
    local_assignments = assignments * share;
    local_distinct = std::max(1.0, distinct_global / tp);
    ffn_local = model_.expert_ffn;
    // Dispatch + combine all-to-all of the routed hidden states.
    charge_time(out.comm, "comm.ep_all_to_all",
                2.0 * ic.all_to_all(assignments * h * act_b, tp));
  } else if (tp > 1) {
    charge_time(out.comm, "comm.ffn_allreduce",
                ic.allreduce(tokens * h * act_b, tp));
  }

  // Grouped expert GEMMs: gate+up then down.
  const auto n_groups = static_cast<std::size_t>(
      std::max(1.0, std::round(local_distinct)));
  const std::vector<double> group_m(
      n_groups, local_assignments / static_cast<double>(n_groups));
  charge(out.ffn, "moe.experts_gate_up",
         kernel_.grouped_gemm(group_m, 2.0 * ffn_local, h, cost_.act_dtype,
                              cost_.weight_dtype, fused));
  charge(out.ffn, "moe.experts_down",
         kernel_.grouped_gemm(group_m, h, ffn_local, cost_.act_dtype,
                              cost_.weight_dtype, fused));
  // SiLU-mul on the routed intermediate + weighted scatter-combine.
  charge(out.ffn, "moe.silu_mul",
         kernel_.elementwise(local_assignments * ffn_local, 2.0, 1.0,
                             cost_.act_dtype));
  charge(out.ffn, "moe.scatter_combine",
         kernel_.elementwise(local_assignments * h, 2.0, 1.0,
                             cost_.act_dtype));

  // Shared experts: dense SwiGLU, tensor-sharded across tp.
  if (model_.n_shared_experts > 0) {
    const double shared_local =
        static_cast<double>(model_.n_shared_experts) *
        model_.shared_expert_ffn / tp;
    charge(out.ffn, "moe.shared_gate_up",
           kernel_.gemm(tokens, 2.0 * shared_local, h, cost_.act_dtype,
                        cost_.weight_dtype));
    charge(out.ffn, "moe.shared_down",
           kernel_.gemm(tokens, h, shared_local, cost_.act_dtype,
                        cost_.weight_dtype));
  }
}

PhaseBreakdown LayerCostModel::decode_step(int batch, double ctx) const {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  MIB_ENSURE(ctx >= 1.0, "context must be >= 1");
  const double h = model_.hidden;
  const int tp = plan_.tp;
  const double act_b = bytes_of(cost_.act_dtype);
  const double tokens = batch;

  const int n_dense_layers = model_.dense_layers();
  PhaseBreakdown moe_layer_cost;
  if (sink_) sink_->multiplier = model_.n_layers;  // attention: all layers
  add_attention_cost(tokens, batch, ctx, /*prefill=*/false, moe_layer_cost);
  PhaseBreakdown dense_layer_cost = moe_layer_cost;  // attention identical
  if (sink_) sink_->multiplier = model_.moe_layers();
  if (model_.is_moe()) add_ffn_cost(tokens, true, moe_layer_cost);
  if (sink_) sink_->multiplier = n_dense_layers;
  if (n_dense_layers > 0) add_ffn_cost(tokens, false, dense_layer_cost);
  if (sink_) sink_->multiplier = 1.0;

  PhaseBreakdown out;
  auto accumulate = [&](const PhaseBreakdown& src, int times) {
    out.attention += src.attention * times;
    out.ffn += src.ffn * times;
    out.router += src.router * times;
    out.comm += src.comm * times;
  };
  if (model_.is_moe()) accumulate(moe_layer_cost, model_.moe_layers());
  if (n_dense_layers > 0) accumulate(dense_layer_cost, n_dense_layers);

  // Embedding gather + KV append.
  charge(out.head, "embed.gather", kernel_.memcpy_op(tokens * h * act_b));
  const double kv_write =
      tokens * model_.kv_bytes_per_token_per_layer(cost_.kv_dtype) *
      model_.n_layers / plan_.devices();
  charge(out.attention, "attn.kv_append", kernel_.memcpy_op(kv_write));

  // LM head (vocab-sharded) + logits allgather.
  charge(out.head, "head.lm_gemm",
         kernel_.gemm(tokens, static_cast<double>(model_.vocab) / tp, h,
                      cost_.act_dtype, cost_.weight_dtype));
  if (tp > 1) {
    const auto& ic = cluster_.interconnect_for_group(tp);
    charge_time(out.comm, "comm.logits_allgather",
                ic.allgather(tokens * model_.vocab * act_b / tp, tp));
  }

  // Pipeline boundary transfers; a lone decode batch gets no overlap.
  if (plan_.pp > 1) {
    const auto& ic = cluster_.interconnect_for_group(plan_.devices());
    charge_time(out.comm, "comm.pp_boundary",
                parallel::pipeline_transfer_time(tokens * h * act_b,
                                                 plan_.pp, 1, ic));
  }

  charge_time(out.overhead, "step.framework_overhead",
              kernel_.device().step_overhead);
  apply_sw_efficiency(out);
  return out;
}

PhaseBreakdown LayerCostModel::prefill(int batch, int seq_len,
                                       int images_per_request) const {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  const int seq_eff = effective_prompt_tokens(seq_len, images_per_request);
  const double tokens = static_cast<double>(batch) * seq_eff;
  const double h = model_.hidden;
  const int tp = plan_.tp;
  const double act_b = bytes_of(cost_.act_dtype);

  const int n_dense_layers = model_.dense_layers();
  PhaseBreakdown moe_layer_cost;
  if (sink_) sink_->multiplier = model_.n_layers;
  add_attention_cost(tokens, batch, seq_eff, /*prefill=*/true,
                     moe_layer_cost);
  PhaseBreakdown dense_layer_cost = moe_layer_cost;
  if (sink_) sink_->multiplier = model_.moe_layers();
  if (model_.is_moe()) add_ffn_cost(tokens, true, moe_layer_cost);
  if (sink_) sink_->multiplier = n_dense_layers;
  if (n_dense_layers > 0) add_ffn_cost(tokens, false, dense_layer_cost);
  if (sink_) sink_->multiplier = 1.0;

  PhaseBreakdown layers;
  auto accumulate = [&](const PhaseBreakdown& src, int times) {
    layers.attention += src.attention * times;
    layers.ffn += src.ffn * times;
    layers.router += src.router * times;
    layers.comm += src.comm * times;
  };
  if (model_.is_moe()) accumulate(moe_layer_cost, model_.moe_layers());
  if (n_dense_layers > 0) accumulate(dense_layer_cost, n_dense_layers);

  PhaseBreakdown out = layers;
  if (plan_.pp > 1) {
    // Microbatched fill/drain: the per-layer work overlaps across stages.
    const int m = parallel::choose_microbatches(batch, plan_.pp);
    const double layer_total = layers.total();
    const double piped =
        parallel::pipeline_fill_drain_time(layer_total, plan_.pp, m);
    const double scale = 1.0 / plan_.pp;
    out.attention = layers.attention * scale;
    out.ffn = layers.ffn * scale;
    out.router = layers.router * scale;
    out.comm = layers.comm * scale;
    out.bubble = piped - layer_total * scale;
    const auto& ic = cluster_.interconnect_for_group(plan_.devices());
    out.comm += parallel::pipeline_transfer_time(
        tokens / m * h * act_b, plan_.pp, m, ic);
  }

  // KV write for the whole prompt.
  const double kv_write =
      tokens * model_.kv_bytes_per_token_per_layer(cost_.kv_dtype) *
      model_.n_layers / plan_.devices();
  charge(out.attention, "attn.kv_append", kernel_.memcpy_op(kv_write));

  // Embedding + LM head for the last position of each sequence.
  charge(out.head, "embed.gather", kernel_.memcpy_op(tokens * h * act_b));
  charge(out.head, "head.lm_gemm",
         kernel_.gemm(batch, static_cast<double>(model_.vocab) / tp, h,
                      cost_.act_dtype, cost_.weight_dtype));
  if (tp > 1) {
    const auto& ic = cluster_.interconnect_for_group(tp);
    charge_time(out.comm, "comm.logits_allgather",
                ic.allgather(batch * model_.vocab * act_b / tp, tp));
  }

  if (images_per_request > 0) {
    charge_time(out.vision, "vision.encode",
                vision_encode_time(batch * images_per_request));
  }

  charge_time(out.overhead, "step.framework_overhead",
              kernel_.device().step_overhead);
  apply_sw_efficiency(out);
  return out;
}

void LayerCostModel::charge(double& bucket, const char* name,
                            const hw::KernelCost& c) const {
  bucket += c.total();
  if (sink_) {
    sink_->ops.push_back(OpRecord{name, c.total() * sink_->multiplier,
                                  c.flops * sink_->multiplier,
                                  c.bytes * sink_->multiplier,
                                  static_cast<long long>(sink_->multiplier)});
  }
}

void LayerCostModel::charge_time(double& bucket, const char* name,
                                 double seconds) const {
  bucket += seconds;
  if (sink_) {
    sink_->ops.push_back(OpRecord{name, seconds * sink_->multiplier, 0.0,
                                  0.0,
                                  static_cast<long long>(sink_->multiplier)});
  }
}

std::vector<OpRecord> LayerCostModel::finish_profile(TraceSink& sink) const {
  // Merge same-name records, apply the software-efficiency factor to
  // on-device kernels (names not prefixed "comm." / "step."), sort by time.
  std::vector<OpRecord> merged;
  for (const auto& op : sink.ops) {
    auto it = std::find_if(merged.begin(), merged.end(),
                           [&](const OpRecord& m) { return m.name == op.name; });
    if (it == merged.end()) {
      merged.push_back(op);
    } else {
      it->seconds += op.seconds;
      it->flops += op.flops;
      it->bytes += op.bytes;
      it->instances += op.instances;
    }
  }
  const double f = model_.sw_efficiency;
  if (f < 1.0) {
    for (auto& op : merged) {
      if (op.name.rfind("comm.", 0) != 0 && op.name.rfind("step.", 0) != 0) {
        op.seconds /= f;
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const OpRecord& a, const OpRecord& b) {
              return a.seconds > b.seconds;
            });
  return merged;
}

std::vector<OpRecord> LayerCostModel::profile_decode_step(int batch,
                                                          double ctx) const {
  MIB_ENSURE(plan_.pp == 1,
             "op profiles require pp == 1 (pipeline stretch has no per-op "
             "attribution)");
  TraceSink sink;
  sink_ = &sink;
  decode_step(batch, ctx);
  sink_ = nullptr;
  return finish_profile(sink);
}

std::vector<OpRecord> LayerCostModel::profile_prefill(
    int batch, int seq_len, int images_per_request) const {
  MIB_ENSURE(plan_.pp == 1,
             "op profiles require pp == 1 (pipeline stretch has no per-op "
             "attribution)");
  TraceSink sink;
  sink_ = &sink;
  prefill(batch, seq_len, images_per_request);
  sink_ = nullptr;
  return finish_profile(sink);
}

void LayerCostModel::apply_sw_efficiency(PhaseBreakdown& out) const {
  const double f = model_.sw_efficiency;
  if (f >= 1.0) return;
  // Framework maturity affects on-device kernels, not collectives or the
  // fixed per-step overhead.
  out.attention /= f;
  out.ffn /= f;
  out.router /= f;
  out.head /= f;
  out.vision /= f;
}

}  // namespace mib::engine
