// Continuous-batching serving simulator (vLLM's scheduling discipline).
//
// The paper benchmarks static uniform batches; production engines run
// continuous batching: sequences join and leave the running batch every
// step, prefills are chunked into a per-step token budget, and KV pressure
// preempts the youngest sequence instead of failing. This discrete-step
// simulator prices every step with the LayerCostModel and reports the
// serving-level quantities the static grid cannot show: TTFT/e2e
// distributions under load, batch occupancy, and preemption counts.
#pragma once

#include <vector>

#include "common/stats.h"
#include "engine/engine.h"

namespace mib::engine {

/// Admission order for waiting requests.
enum class QueuePolicy {
  kFcfs,           ///< first-come first-served (vLLM default)
  kShortestFirst,  ///< shortest total tokens first (SJF)
};

struct SchedulerConfig {
  /// Max concurrent sequences in the running batch.
  int max_batch = 256;
  QueuePolicy policy = QueuePolicy::kFcfs;
  /// Chunked-prefill token budget per engine step.
  int prefill_tokens_per_step = 2048;
  /// DEPRECATED: Poisson arrival rate (requests/s); 0 = everything arrives
  /// at t=0. Superseded by explicit `Request::arrival_s` timestamps (see
  /// workload/arrivals.h) — when any request in the trace carries a nonzero
  /// arrival_s, those timestamps win and this knob is ignored.
  double arrival_rate_qps = 0.0;
  /// false = static gang batching: admit a full batch, drain it completely
  /// before admitting again (the paper's setting).
  bool continuous_batching = true;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Per-request outcome.
struct RequestOutcome {
  double arrival_s = 0.0;
  double first_token_s = 0.0;  ///< absolute time of first output token
  double finish_s = 0.0;
  int input_tokens = 0;
  int output_tokens = 0;

  double ttft() const { return first_token_s - arrival_s; }
  double e2e() const { return finish_s - arrival_s; }
};

struct ServingReport {
  double makespan_s = 0.0;
  double throughput_tok_s = 0.0;  ///< (in+out) tokens / makespan
  double goodput_tok_s = 0.0;     ///< generated tokens / makespan
  Samples ttft_s;
  Samples e2e_s;
  double mean_running_batch = 0.0;  ///< batch occupancy per step
  long long steps = 0;
  int preemptions = 0;
  std::vector<RequestOutcome> requests;
};

class ServingSimulator {
 public:
  ServingSimulator(EngineConfig engine, SchedulerConfig sched);

  const SchedulerConfig& scheduler_config() const { return sched_; }

  /// Token capacity of the KV pool (per replica).
  long long kv_token_capacity() const { return kv_capacity_tokens_; }

  /// Serve a trace to completion.
  ServingReport run(const std::vector<Request>& requests) const;

 private:
  EngineConfig cfg_;
  SchedulerConfig sched_;
  LayerCostModel cost_;
  MemoryModel mem_;
  long long kv_capacity_tokens_ = 0;
};

}  // namespace mib::engine
