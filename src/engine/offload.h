// Expert offloading: keep only the hottest fraction of each layer's
// experts in HBM and fetch the rest from host memory over PCIe on demand.
//
// The paper's §5 OOM boundaries assume all weights are resident; offloading
// trades those boundaries for per-step fetch traffic, governed by the same
// coverage statistics as decode weight reads: a missed expert costs one
// PCIe transfer of its weights. With skewed routing the resident set
// absorbs most hits (the cache-friendly side of the imbalance the paper
// laments); with balanced routing offloading is near-linear slowdown.
#pragma once

#include "engine/engine.h"

namespace mib::engine {

struct OffloadConfig {
  /// Fraction of each layer's routed experts resident in HBM, in (0, 1].
  double resident_fraction = 1.0;
  /// Host link fetching missed experts.
  hw::LinkSpec host_link = hw::pcie_gen5();

  void validate() const;
};

struct OffloadMetrics {
  engine::RunMetrics run;          ///< end-to-end metrics with fetch costs
  double hbm_weight_gib = 0.0;     ///< resident weights per device
  double full_weight_gib = 0.0;    ///< all-resident footprint per device
  double miss_rate = 0.0;          ///< expected per-assignment miss prob.
  double fetch_per_step_s = 0.0;   ///< decode-step fetch time (steady)
};

class OffloadEngine {
 public:
  OffloadEngine(EngineConfig cfg, OffloadConfig offload);

  /// Expected fraction of routed assignments missing the resident set
  /// (resident experts are the most popular ones under the routing model).
  double miss_probability() const;

  /// Resident weight bytes per device (attention + shared + resident
  /// experts + embeddings).
  double resident_weight_bytes_per_device() const;

  OffloadMetrics run(int batch, int input_tokens, int output_tokens) const;

 private:
  /// Expected distinct *non-resident* experts hit by `assignments` draws.
  double expected_missed_experts(double assignments) const;

  EngineConfig cfg_;
  OffloadConfig offload_;
  LayerCostModel cost_;
  MemoryModel mem_;
  int resident_count_ = 0;
};

}  // namespace mib::engine
