#include "engine/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.h"
#include "common/rng.h"

namespace mib::engine {

void SchedulerConfig::validate() const {
  MIB_ENSURE(max_batch >= 1, "max_batch must be >= 1");
  MIB_ENSURE(prefill_tokens_per_step >= 1,
             "prefill budget must be >= 1 token");
  MIB_ENSURE(arrival_rate_qps >= 0.0, "negative arrival rate");
}

ServingSimulator::ServingSimulator(EngineConfig engine, SchedulerConfig sched)
    : cfg_(std::move(engine)),
      sched_(sched),
      cost_(cfg_.model, cfg_.cluster, cfg_.plan, cfg_.cost),
      mem_(cfg_.model, cfg_.plan, cfg_.cost.weight_dtype, cfg_.cost.kv_dtype,
           cfg_.cost.act_dtype) {
  cfg_.validate();
  sched_.validate();
  const double budget =
      cfg_.cluster.device().usable_mem() - mem_.weight_bytes_per_device() -
      mem_.activation_bytes(sched_.prefill_tokens_per_step);
  MIB_ENSURE(budget > 0,
             cfg_.model.name << ": weights leave no room for KV cache");
  kv_capacity_tokens_ = static_cast<long long>(
      budget / mem_.kv_bytes_per_token_per_device());
  MIB_ENSURE(kv_capacity_tokens_ >= 1, "KV capacity below one token");
}

namespace {

/// One in-flight sequence.
struct Seq {
  int id = 0;
  double arrival = 0.0;
  int input_tokens = 0;
  int output_tokens = 0;
  int prefilled = 0;   ///< prompt tokens already processed
  int generated = 0;   ///< output tokens emitted
  double first_token = -1.0;

  bool prefill_done() const { return prefilled >= input_tokens; }
  bool finished() const { return generated >= output_tokens; }
  /// Tokens currently resident in the KV cache.
  long long kv_tokens() const { return prefilled + generated; }
};

}  // namespace

ServingReport ServingSimulator::run(
    const std::vector<Request>& requests) const {
  MIB_ENSURE(!requests.empty(), "empty request trace");

  // Arrival schedule: explicit Request::arrival_s timestamps when the trace
  // carries any (the workload/arrivals.h path); otherwise the deprecated
  // in-simulator Poisson shim driven by arrival_rate_qps.
  const bool explicit_arrivals =
      std::any_of(requests.begin(), requests.end(),
                  [](const Request& r) { return r.arrival_s > 0.0; });
  Rng rng(sched_.seed);
  std::deque<Seq> waiting;
  double arrival = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].validate();
    const int in_eff = cost_.effective_prompt_tokens(requests[i].input_tokens,
                                                     requests[i].n_images);
    MIB_ENSURE(in_eff + requests[i].output_tokens <= kv_capacity_tokens_,
               "request " << i << " exceeds KV capacity even alone");
    if (explicit_arrivals) {
      arrival = requests[i].arrival_s;
    } else if (sched_.arrival_rate_qps > 0.0 && i > 0) {
      arrival += -std::log(1.0 - rng.uniform()) / sched_.arrival_rate_qps;
    }
    Seq s;
    s.id = static_cast<int>(i);
    s.arrival = arrival;
    s.input_tokens = in_eff;
    s.output_tokens = requests[i].output_tokens;
    waiting.push_back(s);
  }
  if (explicit_arrivals) {
    // FCFS admission peeks at the queue head; explicit stamps need not be
    // sorted, so order the queue by arrival time (stable on ties).
    std::stable_sort(waiting.begin(), waiting.end(),
                     [](const Seq& a, const Seq& b) {
                       return a.arrival < b.arrival;
                     });
  }

  std::vector<Seq> running;
  std::vector<RequestOutcome> done(requests.size());
  double now = 0.0;
  long long steps = 0;
  double occupancy_acc = 0.0;
  int preemptions = 0;
  // After a preemption, admission pauses until a running sequence retires
  // (otherwise the victim is readmitted next step and thrashes, losing its
  // progress every cycle).
  bool admission_blocked = false;
  std::size_t completed = 0;
  const long long total_requests = static_cast<long long>(requests.size());
  // Generous runaway guard: every request needs at most in+out steps even
  // with a 1-token prefill budget.
  long long max_steps = 0;
  for (const auto& r : requests) {
    max_steps += r.input_tokens + r.output_tokens + 4;
  }
  max_steps = std::max<long long>(max_steps, 1024) * 4;

  auto kv_in_use = [&] {
    long long used = 0;
    for (const auto& s : running) used += s.kv_tokens();
    return used;
  };

  while (completed < requests.size()) {
    // --- admission ---
    if (running.empty()) admission_blocked = false;
    const bool can_admit =
        !admission_blocked && (sched_.continuous_batching || running.empty());
    if (can_admit) {
      for (;;) {
        if (waiting.empty() ||
            static_cast<int>(running.size()) >= sched_.max_batch) {
          break;
        }
        // Candidate: FCFS takes the head; SJF takes the shortest job among
        // already-arrived requests.
        std::size_t pick = 0;
        if (sched_.policy == QueuePolicy::kShortestFirst) {
          long long best = -1;
          bool found = false;
          for (std::size_t i = 0; i < waiting.size(); ++i) {
            if (waiting[i].arrival > now) continue;
            const long long cost =
                waiting[i].input_tokens + waiting[i].output_tokens;
            if (!found || cost < best) {
              best = cost;
              pick = i;
              found = true;
            }
          }
          if (!found) break;
        } else if (waiting.front().arrival > now) {
          break;
        }
        if (kv_in_use() + waiting[pick].input_tokens >
            kv_capacity_tokens_) {
          break;
        }
        running.push_back(waiting[pick]);
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
    if (running.empty()) {
      // Idle: jump to the next arrival.
      MIB_ENSURE(!waiting.empty(), "scheduler stalled with no work");
      now = std::max(now, waiting.front().arrival);
      continue;
    }

    // --- build the step: decode batch + chunked prefill ---
    int decode_batch = 0;
    double ctx_sum = 0.0;
    int prefill_budget = sched_.prefill_tokens_per_step;
    int prefill_tokens = 0;
    for (auto& s : running) {
      if (s.prefill_done()) {
        ++decode_batch;
        ctx_sum += static_cast<double>(s.kv_tokens());
      } else if (prefill_budget > 0) {
        const int chunk =
            std::min(prefill_budget, s.input_tokens - s.prefilled);
        // KV must hold the newly prefilled tokens.
        if (kv_in_use() + chunk <= kv_capacity_tokens_) {
          s.prefilled += chunk;
          prefill_budget -= chunk;
          prefill_tokens += chunk;
        }
      }
    }

    // --- KV pressure: decode steps grow every running context by one ---
    while (kv_in_use() + decode_batch > kv_capacity_tokens_ &&
           running.size() > 1) {
      // Preempt the youngest sequence (vLLM recompute policy): its KV is
      // dropped and it rejoins the waiting queue from scratch.
      auto victim = std::max_element(
          running.begin(), running.end(),
          [](const Seq& a, const Seq& b) { return a.arrival < b.arrival; });
      Seq s = *victim;
      running.erase(victim);
      s.prefilled = 0;
      s.generated = 0;
      s.first_token = -1.0;
      waiting.push_front(s);
      ++preemptions;
      admission_blocked = true;
      decode_batch = 0;
      ctx_sum = 0.0;
      for (const auto& r : running) {
        if (r.prefill_done()) {
          ++decode_batch;
          ctx_sum += static_cast<double>(r.kv_tokens());
        }
      }
    }

    // --- price the step ---
    double step_time = 0.0;
    if (decode_batch > 0) {
      const double avg_ctx =
          std::max(1.0, ctx_sum / static_cast<double>(decode_batch));
      step_time += cost_.decode_step(decode_batch, avg_ctx).total();
    }
    if (prefill_tokens > 0) {
      auto pf = cost_.prefill(1, prefill_tokens);
      // The LM-head/sampling and per-step overhead are charged once per
      // engine step, not once per phase.
      step_time += pf.total() - pf.head - pf.overhead;
      if (decode_batch == 0) {
        step_time += pf.head + pf.overhead;
      }
    }
    MIB_ENSURE(step_time > 0.0, "zero-cost step");
    now += step_time;
    ++steps;
    occupancy_acc += static_cast<double>(running.size());
    MIB_ENSURE(steps <= max_steps, "scheduler exceeded step bound");

    // --- apply results: decodes emit one token; finished seqs retire ---
    for (auto it = running.begin(); it != running.end();) {
      Seq& s = *it;
      bool advanced = false;
      if (s.prefill_done() && s.generated < s.output_tokens) {
        // A sequence whose prefill completed THIS step emits its first
        // token now; afterwards it decodes one token per step.
        if (s.first_token < 0.0) {
          s.first_token = now;
          s.generated = 1;
        } else {
          ++s.generated;
        }
        advanced = true;
      }
      if (advanced && s.finished()) {
        RequestOutcome& o = done[static_cast<std::size_t>(s.id)];
        o.arrival_s = s.arrival;
        o.first_token_s = s.first_token;
        o.finish_s = now;
        o.input_tokens = s.input_tokens;
        o.output_tokens = s.output_tokens;
        ++completed;
        admission_blocked = false;  // capacity retired: admissions resume
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }

  ServingReport rep;
  rep.makespan_s = now;
  rep.steps = steps;
  rep.preemptions = preemptions;
  rep.mean_running_batch =
      steps > 0 ? occupancy_acc / static_cast<double>(steps) : 0.0;
  double total_tokens = 0.0, gen_tokens = 0.0;
  for (const auto& o : done) {
    rep.ttft_s.add(o.ttft());
    rep.e2e_s.add(o.e2e());
    total_tokens += o.input_tokens + o.output_tokens;
    gen_tokens += o.output_tokens;
  }
  rep.throughput_tok_s = total_tokens / now;
  rep.goodput_tok_s = gen_tokens / now;
  rep.requests = std::move(done);
  MIB_ENSURE(rep.requests.size() == requests.size() &&
                 completed == static_cast<std::size_t>(total_requests),
             "request conservation violated");
  return rep;
}

}  // namespace mib::engine
