#include "engine/memory.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"
#include "models/params.h"

namespace mib::engine {

MemoryModel::MemoryModel(models::ModelConfig model, parallel::ParallelPlan plan,
                         DType weight_dtype, DType kv_dtype, DType act_dtype)
    : model_(std::move(model)),
      plan_(plan),
      weight_dtype_(weight_dtype),
      kv_dtype_(kv_dtype),
      act_dtype_(act_dtype) {
  model_.validate();
  plan_.validate(model_);
}

double MemoryModel::weight_bytes_per_device() const {
  // TP slices every matrix, PP splits layers, EP redistributes (but does not
  // change the total). Norm weights and the router gate are replicated
  // across tp; both are <0.1% so an even split is accurate to that level.
  return models::weight_bytes(model_, weight_dtype_) / plan_.devices();
}

double MemoryModel::kv_bytes_per_token_per_device() const {
  const double per_layer = model_.kv_bytes_per_token_per_layer(kv_dtype_);
  const double all_layers = per_layer * model_.n_layers;
  if (model_.attention == models::AttentionKind::kMLA) {
    // The MLA latent is per-token, not per-head: TP replicates it.
    return all_layers / plan_.pp;
  }
  // GQA/MHA KV heads shard across tp until one head per rank remains.
  const int kv_shard = std::min(plan_.tp, model_.n_kv_heads);
  return all_layers / (kv_shard * plan_.pp);
}

double MemoryModel::activation_bytes(double tokens) const {
  MIB_ENSURE(tokens >= 0, "negative tokens");
  // Watermark: hidden-state residual + widest transient per token. The MoE
  // up-projection of the routed tokens dominates: top_k * 2 * expert_ffn
  // per token (gate+up activations), sharded by tp unless EP holds whole
  // experts.
  const double h = model_.hidden;
  double widest = 4.0 * h;  // residual + norm + attn q/o transients
  if (model_.is_moe()) {
    const double ffn_local =
        plan_.ep ? model_.expert_ffn
                 : static_cast<double>(model_.expert_ffn) / plan_.tp;
    widest += 2.0 * model_.top_k * ffn_local;
    widest += 2.0 * model_.n_shared_experts *
              (static_cast<double>(model_.shared_expert_ffn) / plan_.tp);
  } else {
    widest += 2.0 * static_cast<double>(model_.dense_ffn) / plan_.tp;
  }
  return tokens * widest * bytes_of(act_dtype_);
}

MemoryBreakdown MemoryModel::breakdown(int batch, int max_context,
                                       int prefill_tokens) const {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  MIB_ENSURE(max_context >= 1, "context must be >= 1");
  MemoryBreakdown b;
  b.weights = weight_bytes_per_device();
  b.kv_cache = static_cast<double>(batch) * max_context *
               kv_bytes_per_token_per_device();
  b.activations = activation_bytes(prefill_tokens);
  return b;
}

int MemoryModel::max_concurrent_seqs(int max_context, int prefill_tokens,
                                     const hw::DeviceSpec& dev) const {
  const double budget = dev.usable_mem() - weight_bytes_per_device() -
                        activation_bytes(prefill_tokens);
  if (budget <= 0) return 0;
  const double per_seq =
      static_cast<double>(max_context) * kv_bytes_per_token_per_device();
  return static_cast<int>(std::floor(budget / per_seq));
}

void MemoryModel::check(int batch, int max_context, int prefill_tokens,
                        const hw::DeviceSpec& dev) const {
  const auto b = breakdown(batch, max_context, prefill_tokens);
  if (b.total() > dev.usable_mem()) {
    // A single sequence must fit; larger batches can fall back to wave
    // scheduling, which the engine decides. Report the single-seq check.
    const auto b1 = breakdown(1, max_context, prefill_tokens);
    if (b1.total() > dev.usable_mem()) {
      throw OutOfMemoryError(
          model_.name + " [" + plan_.label() + "]: requires " +
              format_fixed(to_gib(b1.total()), 1) + " GiB > " +
              format_fixed(to_gib(dev.usable_mem()), 1) +
              " GiB usable on " + dev.name,
          to_gib(b1.total()), to_gib(dev.usable_mem()));
    }
  }
}

}  // namespace mib::engine
