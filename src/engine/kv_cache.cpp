#include "engine/kv_cache.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace mib::engine {

PagedKvCache::PagedKvCache(std::size_t total_blocks, int block_tokens)
    : total_blocks_(total_blocks), block_tokens_(block_tokens) {
  MIB_ENSURE(total_blocks >= 1, "cache needs at least one block");
  MIB_ENSURE(block_tokens >= 1, "block must hold at least one token");
  free_.resize(total_blocks);
  std::iota(free_.begin(), free_.end(), std::size_t{0});
}

std::size_t PagedKvCache::blocks_for_tokens(int tokens) const {
  MIB_ENSURE(tokens >= 0, "negative token count");
  return (static_cast<std::size_t>(tokens) + block_tokens_ - 1) /
         block_tokens_;
}

int PagedKvCache::add_sequence() {
  const int id = next_id_++;
  seqs_.emplace(id, Sequence{});
  return id;
}

bool PagedKvCache::append_tokens(int seq_id, int tokens) {
  MIB_ENSURE(tokens >= 0, "negative token count");
  auto it = seqs_.find(seq_id);
  MIB_ENSURE(it != seqs_.end(), "unknown sequence id " << seq_id);
  Sequence& s = it->second;
  // Shared prefix blocks (if any) hold the first prefix tokens; private
  // blocks cover everything past them.
  int shared_tokens = 0;
  if (s.prefix != 0) shared_tokens = prefixes_.at(s.prefix).tokens;
  const int private_tokens = s.tokens + tokens - shared_tokens;
  const std::size_t need =
      private_tokens > 0 ? blocks_for_tokens(private_tokens) : 0;
  if (need > s.blocks) {
    std::size_t extra = need - s.blocks;
    if (extra > free_.size()) {
      evict_prefixes(extra - free_.size());
    }
    if (extra > free_.size()) return false;
    free_.resize(free_.size() - extra);  // block ids are interchangeable
    s.blocks = need;
  }
  s.tokens += tokens;
  return true;
}

int PagedKvCache::sequence_tokens(int seq_id) const {
  auto it = seqs_.find(seq_id);
  MIB_ENSURE(it != seqs_.end(), "unknown sequence id " << seq_id);
  return it->second.tokens;
}

std::size_t PagedKvCache::sequence_blocks(int seq_id) const {
  auto it = seqs_.find(seq_id);
  MIB_ENSURE(it != seqs_.end(), "unknown sequence id " << seq_id);
  return it->second.blocks;
}

void PagedKvCache::free_sequence(int seq_id) {
  auto it = seqs_.find(seq_id);
  MIB_ENSURE(it != seqs_.end(), "unknown sequence id " << seq_id);
  const std::size_t first_free = free_.size();
  free_.resize(first_free + it->second.blocks);
  std::iota(free_.begin() + static_cast<std::ptrdiff_t>(first_free),
            free_.end(), std::size_t{0});
  if (it->second.prefix != 0) {
    auto pit = prefixes_.find(it->second.prefix);
    MIB_ENSURE(pit != prefixes_.end(), "dangling prefix reference");
    --pit->second.refs;  // blocks stay cached until evict_prefixes()
  }
  seqs_.erase(it);
}

int PagedKvCache::add_sequence_with_prefix(std::uint64_t prefix_hash,
                                           int prefix_tokens) {
  MIB_ENSURE(prefix_hash != 0, "prefix hash 0 is reserved");
  MIB_ENSURE(prefix_tokens >= 1, "prefix needs at least one token");
  auto pit = prefixes_.find(prefix_hash);
  if (pit == prefixes_.end()) {
    // Miss: allocate the prefix blocks and publish them.
    const std::size_t need = blocks_for_tokens(prefix_tokens);
    if (need > free_.size()) {
      if (evict_prefixes(need - free_.size()) == 0 && need > free_.size()) {
        return -1;
      }
      if (need > free_.size()) return -1;
    }
    free_.resize(free_.size() - need);
    pit = prefixes_.emplace(prefix_hash,
                            PrefixEntry{prefix_tokens, need, 0}).first;
  } else {
    MIB_ENSURE(pit->second.tokens == prefix_tokens,
               "prefix hash collision: token count mismatch");
  }
  ++pit->second.refs;
  const int id = next_id_++;
  // The sequence starts with the prefix tokens resident but owns no
  // private blocks yet; growth past the prefix allocates privately.
  seqs_.emplace(id, Sequence{prefix_tokens, 0, prefix_hash});
  return id;
}

bool PagedKvCache::prefix_cached(std::uint64_t prefix_hash) const {
  return prefixes_.find(prefix_hash) != prefixes_.end();
}

std::size_t PagedKvCache::reclaimable_blocks() const {
  std::size_t b = 0;
  for (const auto& [hash, e] : prefixes_) {
    if (e.refs == 0) b += e.blocks;
  }
  return b;
}

std::size_t PagedKvCache::evict_prefixes(std::size_t needed) {
  std::size_t reclaimed = 0;
  for (auto it = prefixes_.begin();
       it != prefixes_.end() && reclaimed < needed;) {
    if (it->second.refs == 0) {
      const std::size_t first_free = free_.size();
      free_.resize(first_free + it->second.blocks);
      std::iota(free_.begin() + static_cast<std::ptrdiff_t>(first_free),
                free_.end(), std::size_t{0});
      reclaimed += it->second.blocks;
      it = prefixes_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

double PagedKvCache::occupancy() const {
  std::size_t tokens = 0;
  std::size_t blocks = 0;
  for (const auto& [id, s] : seqs_) {
    tokens += static_cast<std::size_t>(s.tokens);
    blocks += s.blocks;
  }
  for (const auto& [hash, e] : prefixes_) {
    blocks += e.blocks;
    // Shared tokens counted once even when many sequences reference them.
    tokens += static_cast<std::size_t>(e.tokens);
    // Sequence token counts above include the shared prefix; subtract the
    // duplicates so occupancy stays <= 1.
    tokens -= static_cast<std::size_t>(e.tokens) *
              static_cast<std::size_t>(std::max(0, e.refs));
  }
  if (blocks == 0) return 1.0;
  return static_cast<double>(tokens) /
         (static_cast<double>(blocks) * block_tokens_);
}

bool PagedKvCache::can_admit(int tokens) const {
  return blocks_for_tokens(tokens) <= free_.size();
}

}  // namespace mib::engine
