// Per-device memory accounting and OOM boundaries.
//
// The paper marks configurations that exceed H100 memory as missing data
// points; this model reproduces those boundaries. Per-device footprint =
// sharded weights + KV cache for the batch's full context + transient
// activation watermark, checked against the device's usable fraction
// (vLLM's gpu_memory_utilization).
#pragma once

#include "common/dtype.h"
#include "hw/device.h"
#include "models/config.h"
#include "parallel/plan.h"

namespace mib::engine {

struct MemoryBreakdown {
  double weights = 0.0;      ///< bytes per device
  double kv_cache = 0.0;     ///< bytes per device at peak context
  double activations = 0.0;  ///< transient watermark per device
  double total() const { return weights + kv_cache + activations; }
};

class MemoryModel {
 public:
  MemoryModel(models::ModelConfig model, parallel::ParallelPlan plan,
              DType weight_dtype, DType kv_dtype, DType act_dtype);

  /// Sharded weight bytes per device (TP slices tensors, PP splits layers,
  /// EP distributes experts — all divide evenly; embeddings are
  /// vocab-sharded across tp as in vLLM/Megatron).
  double weight_bytes_per_device() const;

  /// KV bytes per token across all layers, per device.
  double kv_bytes_per_token_per_device() const;

  /// Activation watermark for a forward pass over `tokens` tokens
  /// (per device).
  double activation_bytes(double tokens) const;

  /// Full breakdown for `batch` sequences at `max_context` tokens each with
  /// a prefill chunk of `prefill_tokens`.
  MemoryBreakdown breakdown(int batch, int max_context,
                            int prefill_tokens) const;

  /// Largest number of sequences of `max_context` tokens that fit on the
  /// device after weights and activations; 0 if even the weights don't fit.
  int max_concurrent_seqs(int max_context, int prefill_tokens,
                          const hw::DeviceSpec& dev) const;

  /// Throws OutOfMemoryError if the configuration cannot run at all.
  void check(int batch, int max_context, int prefill_tokens,
             const hw::DeviceSpec& dev) const;

 private:
  models::ModelConfig model_;
  parallel::ParallelPlan plan_;
  DType weight_dtype_;
  DType kv_dtype_;
  DType act_dtype_;
};

}  // namespace mib::engine
