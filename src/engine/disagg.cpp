#include "engine/disagg.h"

#include "common/error.h"
#include "engine/engine.h"

namespace mib::engine {

void DisaggConfig::validate() const {
  MIB_ENSURE(prefill_devices >= 1, "prefill pool needs a device");
  MIB_ENSURE(decode_devices >= 1, "decode pool needs a device");
  MIB_ENSURE(transfer_link.bandwidth > 0, "transfer link needs bandwidth");
}

DisaggSimulator::DisaggSimulator(EngineConfig base, DisaggConfig disagg)
    : base_(std::move(base)), disagg_(disagg) {
  base_.validate();
  disagg_.validate();
}

EngineConfig DisaggSimulator::pool_config(int devices) const {
  EngineConfig c = base_;
  c.cluster = hw::Cluster(base_.cluster.device(), devices, hw::nvlink4());
  c.plan = parallel::tp_plan(devices);
  c.plan.validate(c.model);
  return c;
}

DisaggMetrics DisaggSimulator::run(int batch, int input_tokens,
                                   int output_tokens) const {
  MIB_ENSURE(batch >= 1 && input_tokens >= 1 && output_tokens >= 1,
             "invalid workload shape");

  const SimEngine prefill_pool(pool_config(disagg_.prefill_devices));
  const SimEngine decode_pool(pool_config(disagg_.decode_devices));

  DisaggMetrics m;

  // Prefill runs on the prefill pool; only the first output token there.
  const auto pf = prefill_pool.cost_model().prefill(batch, input_tokens);

  // The prompt's KV cache ships to the decode pool.
  const double kv_bytes =
      static_cast<double>(batch) * input_tokens *
      base_.model.kv_bytes_per_token_per_layer(base_.cost.kv_dtype) *
      base_.model.n_layers;
  const hw::Interconnect link(disagg_.transfer_link);
  m.kv_transfer_s = link.p2p(kv_bytes);
  m.ttft_s = pf.total() + m.kv_transfer_s;

  // Decode runs undisturbed on the decode pool.
  const int steps = output_tokens - 1;
  double decode_time = 0.0;
  if (steps > 0) {
    const double ctx0 = input_tokens + 1;
    const double ctx1 = input_tokens + steps;
    const auto d0 = decode_pool.cost_model().decode_step(batch, ctx0);
    const auto d1 = decode_pool.cost_model().decode_step(batch, ctx1);
    decode_time = steps * 0.5 * (d0.total() + d1.total());
  }
  m.e2e_s = m.ttft_s + decode_time;
  const double gen = static_cast<double>(batch) * output_tokens;
  m.itl_s = gen > 1.0 ? (m.e2e_s - m.ttft_s) / (gen - 1.0) : 0.0;
  m.throughput_tok_s =
      static_cast<double>(batch) * (input_tokens + output_tokens) / m.e2e_s;

  // Co-located baseline on the combined fleet.
  const int total = disagg_.prefill_devices + disagg_.decode_devices;
  EngineConfig co = base_;
  int tp = total;
  while (co.model.n_heads % tp != 0) --tp;  // largest feasible TP degree
  co.cluster = hw::Cluster(base_.cluster.device(), tp, hw::nvlink4());
  co.plan = parallel::tp_plan(tp);
  const SimEngine colocated(co);
  const auto base_run = colocated.run(batch, input_tokens, output_tokens);
  m.colocated_throughput_tok_s = base_run.throughput_tok_s;
  m.colocated_itl_s = base_run.itl_s;
  return m;
}

}  // namespace mib::engine
