// Paged KV-cache block manager (vLLM-style PagedAttention bookkeeping).
//
// This is a functional allocator, not a cost formula: sequences own chains
// of fixed-size token blocks drawn from a free list, so fragmentation-free
// utilization and admission control can be tested directly. The engine uses
// it to decide how many sequences fit concurrently (wave scheduling) and the
// ablation bench contrasts paged vs. contiguous-reservation admission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mib::engine {

class PagedKvCache {
 public:
  /// total_blocks blocks of block_tokens tokens each.
  PagedKvCache(std::size_t total_blocks, int block_tokens);

  std::size_t total_blocks() const { return total_blocks_; }
  std::size_t free_blocks() const { return free_.size(); }
  std::size_t used_blocks() const { return total_blocks_ - free_.size(); }
  int block_tokens() const { return block_tokens_; }

  /// Blocks needed to hold n tokens.
  std::size_t blocks_for_tokens(int tokens) const;

  /// Register a new sequence (no blocks allocated yet). Returns its id.
  int add_sequence();

  /// Extend a sequence by `tokens`; allocates blocks lazily. Returns false
  /// (and allocates nothing) if the free list cannot cover the growth.
  bool append_tokens(int seq_id, int tokens);

  /// Tokens currently stored for a sequence.
  int sequence_tokens(int seq_id) const;

  /// Blocks currently held by a sequence.
  std::size_t sequence_blocks(int seq_id) const;

  /// Release a sequence and return its blocks to the free list.
  void free_sequence(int seq_id);

  /// Fraction of allocated block capacity actually holding tokens (paged
  /// allocation keeps this near 1; contiguous reservation does not).
  double occupancy() const;

  /// Whether a new sequence of `tokens` could be admitted right now.
  bool can_admit(int tokens) const;

  // --- prefix caching (vLLM automatic prefix caching) ---
  //
  // Sequences sharing a prompt prefix (system prompts, few-shot headers)
  // can share the blocks holding it. Prefixes are identified by a caller
  // hash; shared blocks are ref-counted and evicted lazily when the free
  // list runs dry.

  /// Register a sequence whose first `prefix_tokens` tokens share the
  /// prefix identified by `prefix_hash`. On a cache hit the shared blocks
  /// are reused (no new allocation, tokens appear instantly); on a miss
  /// they are allocated and published under the hash. Returns the sequence
  /// id, or -1 if a miss cannot allocate.
  int add_sequence_with_prefix(std::uint64_t prefix_hash, int prefix_tokens);

  /// Whether the given prefix is resident (shared blocks cached).
  bool prefix_cached(std::uint64_t prefix_hash) const;

  /// Blocks currently held by unreferenced cached prefixes (reclaimable).
  std::size_t reclaimable_blocks() const;

  /// Drop unreferenced cached prefixes until at least `needed` blocks are
  /// free (or nothing is left to evict). Returns blocks reclaimed.
  std::size_t evict_prefixes(std::size_t needed);

 private:
  struct Sequence {
    int tokens = 0;
    std::size_t blocks = 0;           ///< private blocks
    std::uint64_t prefix = 0;         ///< 0 = no shared prefix
  };

  struct PrefixEntry {
    int tokens = 0;
    std::size_t blocks = 0;
    int refs = 0;
  };

  std::size_t total_blocks_;
  int block_tokens_;
  std::vector<std::size_t> free_;  // free block ids (identity only)
  std::unordered_map<int, Sequence> seqs_;
  std::unordered_map<std::uint64_t, PrefixEntry> prefixes_;
  int next_id_ = 0;
};

}  // namespace mib::engine
