#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mib::engine {

void EngineConfig::validate() const {
  model.validate();
  plan.validate(model);
  MIB_ENSURE(prefill_chunk_tokens >= 1, "prefill chunk must be >= 1 token");
}

SimEngine::SimEngine(EngineConfig cfg)
    : cfg_(std::move(cfg)),
      cost_(cfg_.model, cfg_.cluster, cfg_.plan, cfg_.cost),
      mem_(cfg_.model, cfg_.plan, cfg_.cost.weight_dtype, cfg_.cost.kv_dtype,
           cfg_.cost.act_dtype) {
  cfg_.validate();
}

int SimEngine::max_batch_without_waves(int input_tokens, int output_tokens,
                                       int images_per_request) const {
  const int in_eff =
      cost_.effective_prompt_tokens(input_tokens, images_per_request);
  const int max_ctx = in_eff + output_tokens;
  const int chunk = std::min(cfg_.prefill_chunk_tokens, in_eff);
  return mem_.max_concurrent_seqs(max_ctx, chunk, cfg_.cluster.device());
}

SimEngine::WaveResult SimEngine::run_wave(int batch, int in_eff,
                                          int output_tokens,
                                          int images_per_request,
                                          RunMetrics& metrics) const {
  WaveResult w;
  // Prefill in chunks (chunked prefill bounds the activation watermark;
  // total compute is unchanged, so we price it as one pass over the full
  // prompt). Vision encode happens inside prefill().
  const auto pf = cost_.prefill(batch, in_eff, images_per_request);
  w.ttft = pf.total();

  // Decode steps 2..output_tokens with growing context. The per-step cost
  // is linear in ctx (KV reads and attention FLOPs), so integrating the two
  // endpoints is exact; we still sample a midpoint as a guard against
  // future nonlinearities.
  const int steps = output_tokens - 1;
  if (steps > 0) {
    const double ctx0 = in_eff + 1;
    const double ctx1 = in_eff + steps;
    const auto d0 = cost_.decode_step(batch, ctx0);
    const auto d1 = cost_.decode_step(batch, ctx1);
    const auto dm = cost_.decode_step(batch, 0.5 * (ctx0 + ctx1));
    // Simpson-style weighting handles both linear and mildly curved costs.
    w.decode = steps * (d0.total() + 4.0 * dm.total() + d1.total()) / 6.0;

    auto blend = [&](double a, double b, double c) {
      return steps * (a + 4.0 * b + c) / 6.0;
    };
    metrics.decode_breakdown.attention +=
        blend(d0.attention, dm.attention, d1.attention);
    metrics.decode_breakdown.ffn += blend(d0.ffn, dm.ffn, d1.ffn);
    metrics.decode_breakdown.router += blend(d0.router, dm.router, d1.router);
    metrics.decode_breakdown.comm += blend(d0.comm, dm.comm, d1.comm);
    metrics.decode_breakdown.head += blend(d0.head, dm.head, d1.head);
    metrics.decode_breakdown.overhead +=
        blend(d0.overhead, dm.overhead, d1.overhead);
  }

  metrics.prefill_breakdown.attention += pf.attention;
  metrics.prefill_breakdown.ffn += pf.ffn;
  metrics.prefill_breakdown.router += pf.router;
  metrics.prefill_breakdown.comm += pf.comm;
  metrics.prefill_breakdown.head += pf.head;
  metrics.prefill_breakdown.vision += pf.vision;
  metrics.prefill_breakdown.overhead += pf.overhead;
  metrics.prefill_breakdown.bubble += pf.bubble;
  return w;
}

RunMetrics SimEngine::run(int batch, int input_tokens, int output_tokens,
                          int images_per_request) const {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  MIB_ENSURE(input_tokens >= 1 && output_tokens >= 1,
             "token counts must be >= 1");

  const int in_eff =
      cost_.effective_prompt_tokens(input_tokens, images_per_request);
  const int max_ctx = in_eff + output_tokens;
  const int chunk = std::min(cfg_.prefill_chunk_tokens, in_eff);

  // Memory admission: at least one sequence must fit; otherwise this is the
  // paper's OOM data point.
  mem_.check(1, max_ctx, chunk, cfg_.cluster.device());
  int wave_batch = batch;
  int waves = 1;
  const int max_admit = mem_.max_concurrent_seqs(max_ctx, chunk,
                                                 cfg_.cluster.device());
  if (max_admit < batch) {
    if (!cfg_.allow_wave_scheduling || max_admit < 1) {
      const auto b = mem_.breakdown(batch, max_ctx, chunk);
      throw OutOfMemoryError(
          cfg_.model.name + ": batch " + std::to_string(batch) +
              " exceeds KV capacity (fits " + std::to_string(max_admit) +
              ")",
          b.total() / kGiB, cfg_.cluster.device().usable_mem() / kGiB);
    }
    waves = (batch + max_admit - 1) / max_admit;
    wave_batch = (batch + waves - 1) / waves;  // balanced waves
  }

  RunMetrics m;
  m.waves = waves;
  m.memory = mem_.breakdown(wave_batch, max_ctx, chunk);

  double e2e = 0.0;
  double decode_total = 0.0;
  int remaining = batch;
  bool first = true;
  while (remaining > 0) {
    const int b = std::min(wave_batch, remaining);
    const auto w = run_wave(b, in_eff, output_tokens, images_per_request, m);
    if (first) {
      m.ttft_s = w.ttft;
      first = false;
    }
    e2e += w.ttft + w.decode;
    decode_total += w.decode;
    remaining -= b;
  }

  m.e2e_s = e2e;
  const double total_tokens =
      static_cast<double>(batch) * (input_tokens + output_tokens);
  m.throughput_tok_s = total_tokens / e2e;
  const double gen_tokens = static_cast<double>(batch) * output_tokens;
  m.itl_s = gen_tokens > 1.0 ? (e2e - m.ttft_s) / (gen_tokens - 1.0) : 0.0;
  m.decode_tok_s = decode_total > 0.0
                       ? static_cast<double>(batch) * (output_tokens - 1) /
                             decode_total
                       : 0.0;
  m.samples_per_s = batch / e2e;
  return m;
}

}  // namespace mib::engine
