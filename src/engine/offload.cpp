#include "engine/offload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "models/params.h"
#include "parallel/expert_placement.h"

namespace mib::engine {

void OffloadConfig::validate() const {
  MIB_ENSURE(resident_fraction > 0.0 && resident_fraction <= 1.0,
             "resident_fraction must be in (0, 1]");
  MIB_ENSURE(host_link.bandwidth > 0, "host link needs bandwidth");
}

OffloadEngine::OffloadEngine(EngineConfig cfg, OffloadConfig offload)
    : cfg_(std::move(cfg)),
      offload_(offload),
      cost_(cfg_.model, cfg_.cluster, cfg_.plan, cfg_.cost),
      mem_(cfg_.model, cfg_.plan, cfg_.cost.weight_dtype, cfg_.cost.kv_dtype,
           cfg_.cost.act_dtype) {
  cfg_.validate();
  offload_.validate();
  MIB_ENSURE(cfg_.model.is_moe(), "offloading targets MoE experts");
  resident_count_ = std::max(
      cfg_.model.top_k,
      static_cast<int>(std::round(offload_.resident_fraction *
                                  cfg_.model.n_experts)));
}

double OffloadEngine::miss_probability() const {
  // Resident set = the `resident_count_` most popular experts.
  const auto p = parallel::expert_probabilities(cfg_.model.n_experts,
                                                cfg_.cost.routing);
  double resident_mass = 0.0;
  for (int i = 0; i < resident_count_; ++i) resident_mass += p[i];
  return 1.0 - resident_mass;
}

double OffloadEngine::expected_missed_experts(double assignments) const {
  const auto p = parallel::expert_probabilities(cfg_.model.n_experts,
                                                cfg_.cost.routing);
  double missed = 0.0;
  for (int i = resident_count_; i < cfg_.model.n_experts; ++i) {
    missed += -std::expm1(assignments * std::log1p(-p[i]));
  }
  return missed;
}

double OffloadEngine::resident_weight_bytes_per_device() const {
  const double full = mem_.weight_bytes_per_device();
  const double expert_total =
      static_cast<double>(cfg_.model.n_experts) *
      models::expert_params(cfg_.model) * cfg_.model.moe_layers() *
      bytes_of(cfg_.cost.weight_dtype) / cfg_.plan.devices();
  const double offloaded =
      expert_total * (1.0 - static_cast<double>(resident_count_) /
                                cfg_.model.n_experts);
  return full - offloaded;
}

OffloadMetrics OffloadEngine::run(int batch, int input_tokens,
                                  int output_tokens) const {
  MIB_ENSURE(batch >= 1 && input_tokens >= 1 && output_tokens >= 1,
             "invalid workload shape");

  // Memory admission against the *resident* footprint.
  const double ctx = input_tokens + output_tokens;
  const double kv = batch * ctx * mem_.kv_bytes_per_token_per_device();
  const double act = mem_.activation_bytes(
      std::min(input_tokens, cfg_.prefill_chunk_tokens));
  const double resident = resident_weight_bytes_per_device();
  const double usable = cfg_.cluster.device().usable_mem();
  if (resident + kv + act > usable) {
    throw OutOfMemoryError(
        cfg_.model.name + " (offloaded): resident footprint exceeds HBM",
        (resident + kv + act) / kGiB, usable / kGiB);
  }

  const hw::Interconnect host(offload_.host_link);
  const double expert_bytes = models::expert_params(cfg_.model) *
                              bytes_of(cfg_.cost.weight_dtype);

  // Prefill: every layer touches essentially every expert once; the
  // offloaded ones stream in over the host link, overlapping poorly.
  const auto pf = cost_.prefill(batch, input_tokens);
  const double offloaded_per_layer =
      (cfg_.model.n_experts - resident_count_) * expert_bytes;
  const double prefill_fetch =
      cfg_.model.moe_layers() * host.p2p(offloaded_per_layer);
  const double ttft = pf.total() + prefill_fetch;

  // Decode: each step fetches the expected distinct *missed* experts per
  // MoE layer.
  const double assignments =
      static_cast<double>(batch) * cfg_.model.top_k;
  const double missed = expected_missed_experts(assignments);
  const double fetch_per_step =
      cfg_.model.moe_layers() * host.p2p(missed * expert_bytes);

  const int steps = output_tokens - 1;
  double decode = 0.0;
  if (steps > 0) {
    const auto d0 = cost_.decode_step(batch, input_tokens + 1);
    const auto d1 = cost_.decode_step(batch, input_tokens + steps);
    decode = steps * (0.5 * (d0.total() + d1.total()) + fetch_per_step);
  }

  OffloadMetrics m;
  m.run.ttft_s = ttft;
  m.run.e2e_s = ttft + decode;
  const double total_tokens =
      static_cast<double>(batch) * (input_tokens + output_tokens);
  m.run.throughput_tok_s = total_tokens / m.run.e2e_s;
  const double gen = static_cast<double>(batch) * output_tokens;
  m.run.itl_s = gen > 1.0 ? (m.run.e2e_s - ttft) / (gen - 1.0) : 0.0;
  m.run.samples_per_s = batch / m.run.e2e_s;
  m.run.memory.weights = resident;
  m.run.memory.kv_cache = kv;
  m.run.memory.activations = act;
  m.hbm_weight_gib = resident / kGiB;
  m.full_weight_gib = mem_.weight_bytes_per_device() / kGiB;
  m.miss_rate = miss_probability();
  m.fetch_per_step_s = fetch_per_step;
  return m;
}

}  // namespace mib::engine
