// Request and batch types for the serving simulator.
#pragma once

#include <vector>

#include "common/error.h"

namespace mib::engine {

/// One inference request: a prompt of input_tokens, generating
/// output_tokens, optionally preceded by n_images image inputs (VLMs).
struct Request {
  int input_tokens = 0;
  int output_tokens = 0;
  int n_images = 0;
  /// Absolute submission time (seconds since trace start). Stamped by the
  /// arrival generators in workload/arrivals.h; 0 = arrives at t=0.
  double arrival_s = 0.0;

  void validate() const {
    MIB_ENSURE(input_tokens >= 1, "request needs at least one input token");
    MIB_ENSURE(output_tokens >= 1, "request generates at least one token");
    MIB_ENSURE(n_images >= 0, "negative image count");
    MIB_ENSURE(arrival_s >= 0.0, "negative arrival time");
  }
};

/// A uniform batch (the paper's setting): `batch` identical requests.
inline std::vector<Request> make_uniform_batch(int batch, int input_tokens,
                                               int output_tokens,
                                               int n_images = 0) {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  Request r{input_tokens, output_tokens, n_images};
  r.validate();
  return std::vector<Request>(static_cast<std::size_t>(batch), r);
}

}  // namespace mib::engine
