// Per-phase analytical costs of a transformer forward pass.
//
// Prefill and decode are priced per layer from the kernel model, with the
// parallel plan deciding sharding, collectives and pipeline stretch. All the
// paper's optimization studies act here: dtype changes the roofline, Fused
// MoE changes launch counts and activation round-trips, pruning changes the
// geometry, EP changes collectives and adds the slowest-device penalty.
#pragma once

#include <string>
#include <vector>

#include "common/dtype.h"
#include "hw/cluster.h"
#include "hw/kernel_model.h"
#include "models/config.h"
#include "parallel/expert_placement.h"
#include "parallel/plan.h"

namespace mib::engine {

/// Knobs of the cost model that the paper's experiments sweep.
struct CostConfig {
  DType weight_dtype = DType::kFP16;
  DType act_dtype = DType::kFP16;
  DType kv_dtype = DType::kFP16;
  /// Fused MoE kernel (one grouped launch, no activation round-trip) vs.
  /// the naive per-expert path (§7.2).
  bool fused_moe = true;
  /// Token-to-expert skew (0 = balanced router).
  parallel::RoutingModel routing;
  /// Under EP, place experts with the LPT-balanced optimizer instead of
  /// contiguous blocks (spreads popular experts across devices).
  bool ep_balanced_placement = false;
};

/// Time breakdown of one phase (seconds, per whole phase).
struct PhaseBreakdown {
  double attention = 0.0;  ///< projections + attention core
  double ffn = 0.0;        ///< MoE / dense FFN compute incl. shared experts
  double router = 0.0;     ///< gate GEMM + top-k
  double comm = 0.0;       ///< allreduce / all-to-all / pipeline transfers
  double head = 0.0;       ///< LM head + embedding
  double vision = 0.0;     ///< vision tower (VLM prefill only)
  double overhead = 0.0;   ///< kernel launches + per-step framework cost
  double bubble = 0.0;     ///< pipeline fill/drain stretch

  double total() const {
    return attention + ffn + router + comm + head + vision + overhead +
           bubble;
  }
};

/// One aggregated operation of a simulated profile (layer counts folded
/// in) — the row a GPU profiler would show.
struct OpRecord {
  std::string name;
  double seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  long long instances = 0;
};

class LayerCostModel {
 public:
  LayerCostModel(models::ModelConfig model, hw::Cluster cluster,
                 parallel::ParallelPlan plan, CostConfig cost);

  const models::ModelConfig& model() const { return model_; }
  const hw::Cluster& cluster() const { return cluster_; }
  const parallel::ParallelPlan& plan() const { return plan_; }
  const CostConfig& cost_config() const { return cost_; }

  /// Full prefill of `batch` sequences of `seq_len` text tokens (plus
  /// vision tokens when images_per_request > 0), producing the first output
  /// token. This is TTFT.
  PhaseBreakdown prefill(int batch, int seq_len,
                         int images_per_request = 0) const;

  /// One decode step for `batch` sequences at context length `ctx`.
  PhaseBreakdown decode_step(int batch, double ctx) const;

  /// Effective prompt length including vision tokens.
  int effective_prompt_tokens(int seq_len, int images_per_request) const;

  /// Vision tower encode time for `images` images (exposed for tests).
  double vision_encode_time(int images) const;

  /// Op-level profile of one decode step (aggregated across layers, sorted
  /// by time descending). Sum of op seconds equals decode_step().total().
  /// Requires pp == 1 (pipeline stretch has no per-op attribution).
  std::vector<OpRecord> profile_decode_step(int batch, double ctx) const;

  /// Op-level profile of a full prefill; same contract as above.
  std::vector<OpRecord> profile_prefill(int batch, int seq_len,
                                        int images_per_request = 0) const;

 private:
  /// Cost of the FFN of one layer for `tokens` tokens entering it.
  /// `decode_assignments` — routed expert draws for coverage statistics.
  void add_ffn_cost(double tokens, bool moe_layer, PhaseBreakdown& out) const;

  /// Attention projections + core for one layer.
  void add_attention_cost(double tokens, int batch, double ctx, bool prefill,
                          PhaseBreakdown& out) const;

  /// Divide kernel-time components by the model's software efficiency.
  void apply_sw_efficiency(PhaseBreakdown& out) const;

  /// Profiling sink: when active, every charge() also appends an OpRecord
  /// scaled by `multiplier` (the layer count of the enclosing scope).
  struct TraceSink {
    std::vector<OpRecord> ops;
    double multiplier = 1.0;
  };
  void charge(double& bucket, const char* name,
              const hw::KernelCost& c) const;
  void charge_time(double& bucket, const char* name, double seconds) const;
  std::vector<OpRecord> finish_profile(TraceSink& sink) const;

  mutable TraceSink* sink_ = nullptr;

  models::ModelConfig model_;
  hw::Cluster cluster_;
  parallel::ParallelPlan plan_;
  CostConfig cost_;
  hw::KernelModel kernel_;
};

}  // namespace mib::engine
