// A single SwiGLU expert: y = W_down( silu(W_gate·x) ⊙ (W_up·x) ).
//
// Weights are stored row-major as [ffn, hidden] (gate/up) and [hidden, ffn]
// (down) so per-token forward passes are contiguous dot products. The expert
// supports weight-only fake quantization and intra-expert channel pruning —
// the two transforms the paper benchmarks in §6.1/§6.2.
#pragma once

#include <span>
#include <vector>

#include "common/dtype.h"
#include "common/rng.h"
#include "common/tensor.h"
#include "quant/quantize.h"

namespace mib::moe {

class Expert {
 public:
  /// Random init with 1/sqrt(fan_in) scaling.
  Expert(int hidden, int ffn, Rng& rng);

  int hidden() const { return hidden_; }
  int ffn() const { return ffn_; }

  /// Forward one token: y[hidden] = expert(x[hidden]). `y` is overwritten.
  void forward(std::span<const float> x, std::span<float> y) const;

  /// Forward a batch [tokens, hidden] -> [tokens, hidden].
  Tensor forward(const Tensor& x) const;

  /// Fake-quantize all three weight matrices; returns worst-case relative
  /// error across them.
  quant::QuantError quantize_weights(DType dt, quant::Granularity g);

  /// Keep only the given FFN channels (sorted unique indices into [0, ffn)).
  /// This is intra-expert pruning's mechanical step.
  void keep_channels(const std::vector<int>& channels);

  /// Per-channel importance: ||gate_row|| + ||up_row|| + ||down_col||.
  std::vector<float> channel_importance() const;

  /// Parameter count (3 * hidden * ffn).
  std::size_t param_count() const;

  const Tensor& w_gate() const { return w_gate_; }
  const Tensor& w_up() const { return w_up_; }
  const Tensor& w_down() const { return w_down_; }
  Tensor& mutable_w_gate() { return w_gate_; }
  Tensor& mutable_w_up() { return w_up_; }
  Tensor& mutable_w_down() { return w_down_; }

 private:
  int hidden_;
  int ffn_;
  Tensor w_gate_;  // [ffn, hidden]
  Tensor w_up_;    // [ffn, hidden]
  Tensor w_down_;  // [hidden, ffn]
};

}  // namespace mib::moe
