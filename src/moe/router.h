// Top-k softmax router — the gating network of a MoE layer.
//
// This is real, executable routing (not a cost model): logits are a learned
// linear map of the token, the top-k experts are selected, and their gate
// probabilities become combine weights. The router also keeps activation
// counters (the quantity visualized in the paper's Fig. 15) and supports a
// logit *prior* that emulates the balanced (aux-loss-trained,
// DeepSeek-style) vs. skewed (MolmoE-style) routers the paper contrasts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/tensor.h"

namespace mib::moe {

/// Order of softmax vs. top-k selection. Mixtral renormalizes the softmax
/// over the selected experts (kTopKThenSoftmax); OLMoE/DeepSeek take the
/// global softmax probabilities of the selected experts
/// (kSoftmaxThenTopK).
enum class ScoreOrder { kSoftmaxThenTopK, kTopKThenSoftmax };

struct RouterConfig {
  int hidden = 0;
  int n_experts = 0;
  int top_k = 0;
  ScoreOrder order = ScoreOrder::kSoftmaxThenTopK;
  /// Whether combine weights of the selected experts are renormalized to
  /// sum to 1 (Mixtral / DeepSeek do; OLMoE does not).
  bool renormalize = true;

  void validate() const;
};

/// Routing decision for one token.
struct TokenRoute {
  std::vector<int> experts;    ///< selected expert ids, highest score first
  std::vector<float> weights;  ///< combine weights, same order
};

class Router {
 public:
  /// Random gate initialization (scale 1/sqrt(hidden)).
  Router(RouterConfig cfg, Rng& rng);
  /// Explicit gate weights [n_experts, hidden].
  Router(RouterConfig cfg, Tensor gate);

  const RouterConfig& config() const { return cfg_; }
  const Tensor& gate() const { return gate_; }

  /// Add a fixed per-expert logit bias. A zero prior (default) models an
  /// aux-loss-balanced router; a Zipf-decaying prior models a skewed one.
  void set_logit_prior(std::vector<float> prior);
  const std::vector<float>& logit_prior() const { return prior_; }

  /// Route a batch of tokens x [tokens, hidden]; updates activation
  /// counters.
  std::vector<TokenRoute> route(const Tensor& x);

  /// Number of times each expert was selected since the last reset.
  const std::vector<std::uint64_t>& activation_counts() const {
    return counts_;
  }
  void reset_counts();

  /// Remove the given experts (sorted unique ids) from the gate — the
  /// router half of inter-expert pruning. top_k is clamped to the remaining
  /// expert count.
  void drop_experts(const std::vector<int>& expert_ids);

 private:
  RouterConfig cfg_;
  Tensor gate_;  // [n_experts, hidden]
  std::vector<float> prior_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace mib::moe
