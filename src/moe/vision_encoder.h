// Functional vision encoder (SigLIP-class ViT) — the tower in front of the
// DeepSeek-VL2 / MolmoE language models.
//
// Real numerics at small scale: patch embedding (linear over flattened
// patches), a stack of pre-norm ViT blocks (bidirectional attention + MLP),
// and a projector into the LLM's hidden size. Together with
// moe::Transformer this makes the full VLM pipeline executable: pixels ->
// patch tokens -> MoE LLM decoding.
#pragma once

#include <memory>
#include <vector>

#include "moe/attention.h"
#include "moe/expert.h"

namespace mib::moe {

struct VisionEncoderConfig {
  int image_size = 32;   ///< square input, pixels
  int patch_size = 8;    ///< square patches
  int channels = 3;
  int hidden = 64;       ///< ViT width
  int n_heads = 4;
  int n_layers = 2;
  int mlp_dim = 128;
  int llm_hidden = 64;   ///< projector output width

  void validate() const;
  int patches_per_side() const { return image_size / patch_size; }
  int n_patches() const { return patches_per_side() * patches_per_side(); }
  int patch_dim() const { return channels * patch_size * patch_size; }
};

class VisionEncoder {
 public:
  VisionEncoder(VisionEncoderConfig cfg, std::uint64_t seed);

  const VisionEncoderConfig& config() const { return cfg_; }

  /// Encode one image [channels, H, W] flattened row-major into
  /// [n_patches, llm_hidden] tokens for the language model.
  Tensor encode(const Tensor& image) const;

  std::size_t param_count() const;

 private:
  /// Bidirectional (non-causal) attention over the patch tokens.
  Tensor self_attention(const Attention& attn, const Tensor& x) const;

  struct Block {
    std::unique_ptr<RmsNorm> attn_norm;
    std::unique_ptr<Attention> attention;
    std::unique_ptr<RmsNorm> mlp_norm;
    std::unique_ptr<Expert> mlp;  // SwiGLU MLP reuses the Expert math
  };

  VisionEncoderConfig cfg_;
  Tensor patch_embed_;  // [hidden, patch_dim]
  Tensor pos_embed_;    // [n_patches, hidden]
  std::vector<Block> blocks_;
  std::unique_ptr<RmsNorm> final_norm_;
  Tensor projector_;    // [llm_hidden, hidden]
};

}  // namespace mib::moe
