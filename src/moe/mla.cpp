#include "moe/mla.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib::moe {

void MlaConfig::validate() const {
  MIB_ENSURE(hidden > 0, "MLA hidden must be positive");
  MIB_ENSURE(n_heads > 0, "MLA needs heads");
  MIB_ENSURE(head_dim > 0, "MLA head_dim must be positive");
  MIB_ENSURE(kv_rank > 0, "MLA needs a positive latent rank");
  MIB_ENSURE(rope_dim >= 2 && rope_dim % 2 == 0,
             "rope_dim must be even and >= 2");
  MIB_ENSURE(rope_theta > 0, "rope_theta must be positive");
}

MlaKvState::MlaKvState(const MlaConfig& cfg) : dim_(cfg.cache_dim()) {
  cfg.validate();
}

void MlaKvState::clear() {
  tokens_ = 0;
  data_.clear();
}

void MlaKvState::append(std::span<const float> latent_and_rope) {
  MIB_ENSURE(dim_ > 0, "MlaKvState not initialized");
  MIB_ENSURE(latent_and_rope.size() == static_cast<std::size_t>(dim_),
             "MLA cache row size mismatch");
  data_.insert(data_.end(), latent_and_rope.begin(), latent_and_rope.end());
  ++tokens_;
}

void MlaKvState::truncate(int tokens) {
  MIB_ENSURE(tokens >= 0 && tokens <= tokens_,
             "cannot truncate to " << tokens << " of " << tokens_);
  tokens_ = tokens;
  data_.resize(static_cast<std::size_t>(tokens) * dim_);
}

std::span<const float> MlaKvState::entry(int pos) const {
  MIB_ENSURE(pos >= 0 && pos < tokens_, "MLA cache position out of range");
  return {data_.data() + static_cast<std::size_t>(pos) * dim_,
          static_cast<std::size_t>(dim_)};
}

MlaAttention::MlaAttention(MlaConfig cfg, Rng& rng) : cfg_(cfg) {
  cfg_.validate();
  const auto h = static_cast<std::size_t>(cfg_.hidden);
  const auto qd = static_cast<std::size_t>(cfg_.n_heads * cfg_.head_dim);
  const auto qr = static_cast<std::size_t>(cfg_.n_heads * cfg_.rope_dim);
  const auto r = static_cast<std::size_t>(cfg_.kv_rank);
  const float hs = 1.0f / std::sqrt(static_cast<float>(cfg_.hidden));
  const float rs = 1.0f / std::sqrt(static_cast<float>(cfg_.kv_rank));
  wq_nope_ = Tensor::randn({qd, h}, rng, hs);
  wq_rope_ = Tensor::randn({qr, h}, rng, hs);
  w_dkv_ = Tensor::randn({r, h}, rng, hs);
  w_kr_ = Tensor::randn({static_cast<std::size_t>(cfg_.rope_dim), h}, rng,
                        hs);
  w_uk_ = Tensor::randn({qd, r}, rng, rs);
  w_uv_ = Tensor::randn({qd, r}, rng, rs);
  wo_ = Tensor::randn({h, qd}, rng,
                      1.0f / std::sqrt(static_cast<float>(qd)));
}

void MlaAttention::rope(std::span<float> row, int pos) const {
  const int d = static_cast<int>(row.size());
  for (int i = 0; i < d / 2; ++i) {
    const double freq =
        1.0 / std::pow(cfg_.rope_theta, 2.0 * i / static_cast<double>(d));
    const double angle = pos * freq;
    const float cs = static_cast<float>(std::cos(angle));
    const float sn = static_cast<float>(std::sin(angle));
    const float a = row[2 * i];
    const float b = row[2 * i + 1];
    row[2 * i] = a * cs - b * sn;
    row[2 * i + 1] = a * sn + b * cs;
  }
}

Tensor MlaAttention::forward(const Tensor& x, MlaKvState& kv,
                             int start_pos) const {
  MIB_ENSURE(x.rank() == 2 &&
                 x.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "MLA input must be [tokens, hidden]");
  MIB_ENSURE(start_pos == kv.tokens(),
             "start_pos must equal cached tokens");
  const std::size_t tokens = x.dim(0);
  const int d = cfg_.head_dim;
  const int rd = cfg_.rope_dim;
  const int r = cfg_.kv_rank;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(d + rd));

  Tensor q_nope, q_rope, latent, k_rope;
  matmul(x, wq_nope_, q_nope, true);  // [tokens, H*d]
  matmul(x, wq_rope_, q_rope, true);  // [tokens, H*rd]
  matmul(x, w_dkv_, latent, true);    // [tokens, r]
  matmul(x, w_kr_, k_rope, true);     // [tokens, rd]

  // RoPE the query rope-part per head and the shared rope key; cache
  // (latent, rope key).
  std::vector<float> cache_row(static_cast<std::size_t>(r + rd));
  for (std::size_t t = 0; t < tokens; ++t) {
    const int pos = start_pos + static_cast<int>(t);
    auto qr_row = q_rope.row(t);
    for (int hh = 0; hh < cfg_.n_heads; ++hh) {
      rope(qr_row.subspan(static_cast<std::size_t>(hh) * rd,
                          static_cast<std::size_t>(rd)),
           pos);
    }
    auto kr = k_rope.row(t);
    rope(kr, pos);
    auto lat = latent.row(t);
    std::copy(lat.begin(), lat.end(), cache_row.begin());
    std::copy(kr.begin(), kr.end(), cache_row.begin() + r);
    kv.append(cache_row);
  }

  const auto qd = static_cast<std::size_t>(cfg_.n_heads) * d;
  Tensor attn_out({tokens, qd});
  std::vector<float> scores;
  std::vector<float> k_head(static_cast<std::size_t>(d));
  std::vector<float> v_head(static_cast<std::size_t>(d));
  for (std::size_t t = 0; t < tokens; ++t) {
    const int ctx = start_pos + static_cast<int>(t) + 1;
    scores.resize(ctx);
    auto orow = attn_out.row(t);
    for (int hh = 0; hh < cfg_.n_heads; ++hh) {
      const auto qn = q_nope.row(t).subspan(
          static_cast<std::size_t>(hh) * d, static_cast<std::size_t>(d));
      const auto qr = q_rope.row(t).subspan(
          static_cast<std::size_t>(hh) * rd, static_cast<std::size_t>(rd));
      float mx = -1e30f;
      for (int p = 0; p < ctx; ++p) {
        const auto entry = kv.entry(p);
        const auto lat = entry.subspan(0, static_cast<std::size_t>(r));
        const auto kr = entry.subspan(static_cast<std::size_t>(r),
                                      static_cast<std::size_t>(rd));
        // K(nope) head = W_uk[head rows] · latent.
        float s = 0.0f;
        for (int i = 0; i < d; ++i) {
          const float* wrow =
              w_uk_.data() +
              (static_cast<std::size_t>(hh) * d + i) * static_cast<std::size_t>(r);
          float ki = 0.0f;
          for (int j = 0; j < r; ++j) ki += wrow[j] * lat[j];
          s += qn[i] * ki;
        }
        // Shared rope-key term.
        for (int j = 0; j < rd; ++j) s += qr[j] * kr[j];
        scores[p] = s * inv_sqrt;
        mx = std::max(mx, scores[p]);
      }
      float denom = 0.0f;
      for (int p = 0; p < ctx; ++p) {
        scores[p] = std::exp(scores[p] - mx);
        denom += scores[p];
      }
      auto oh = orow.subspan(static_cast<std::size_t>(hh) * d,
                             static_cast<std::size_t>(d));
      std::fill(oh.begin(), oh.end(), 0.0f);
      for (int p = 0; p < ctx; ++p) {
        const float w = scores[p] / denom;
        const auto lat = kv.entry(p).subspan(0, static_cast<std::size_t>(r));
        for (int i = 0; i < d; ++i) {
          const float* wrow =
              w_uv_.data() +
              (static_cast<std::size_t>(hh) * d + i) * static_cast<std::size_t>(r);
          float vi = 0.0f;
          for (int j = 0; j < r; ++j) vi += wrow[j] * lat[j];
          oh[i] += w * vi;
        }
      }
    }
  }

  Tensor out;
  matmul(attn_out, wo_, out, true);
  return out;
}

std::size_t MlaAttention::param_count() const {
  return wq_nope_.size() + wq_rope_.size() + w_dkv_.size() + w_kr_.size() +
         w_uk_.size() + w_uv_.size() + wo_.size();
}

}  // namespace mib::moe
