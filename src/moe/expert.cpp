#include "moe/expert.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib::moe {

Expert::Expert(int hidden, int ffn, Rng& rng) : hidden_(hidden), ffn_(ffn) {
  MIB_ENSURE(hidden > 0 && ffn > 0, "expert dims must be positive");
  const auto h = static_cast<std::size_t>(hidden);
  const auto f = static_cast<std::size_t>(ffn);
  const float in_scale = 1.0f / std::sqrt(static_cast<float>(hidden));
  const float mid_scale = 1.0f / std::sqrt(static_cast<float>(ffn));
  w_gate_ = Tensor::randn({f, h}, rng, in_scale);
  w_up_ = Tensor::randn({f, h}, rng, in_scale);
  w_down_ = Tensor::randn({h, f}, rng, mid_scale);
}

void Expert::forward(std::span<const float> x, std::span<float> y) const {
  MIB_ENSURE(x.size() == static_cast<std::size_t>(hidden_),
             "expert input size mismatch");
  MIB_ENSURE(y.size() == static_cast<std::size_t>(hidden_),
             "expert output size mismatch");
  const auto f = static_cast<std::size_t>(ffn_);
  const auto h = static_cast<std::size_t>(hidden_);

  // act[c] = silu(gate_c · x) * (up_c · x)
  std::vector<float> act(f);
  for (std::size_t c = 0; c < f; ++c) {
    const float* gr = w_gate_.data() + c * h;
    const float* ur = w_up_.data() + c * h;
    float g = 0.0f, u = 0.0f;
    for (std::size_t j = 0; j < h; ++j) {
      g += gr[j] * x[j];
      u += ur[j] * x[j];
    }
    const float silu = g / (1.0f + std::exp(-g));
    act[c] = silu * u;
  }

  // y = W_down · act
  for (std::size_t i = 0; i < h; ++i) {
    const float* dr = w_down_.data() + i * f;
    float acc = 0.0f;
    for (std::size_t c = 0; c < f; ++c) acc += dr[c] * act[c];
    y[i] = acc;
  }
}

Tensor Expert::forward(const Tensor& x) const {
  MIB_ENSURE(x.rank() == 2 && x.dim(1) == static_cast<std::size_t>(hidden_),
             "expert batch input must be [tokens, hidden]");
  Tensor out({x.dim(0), x.dim(1)});
  for (std::size_t t = 0; t < x.dim(0); ++t) {
    forward(x.row(t), out.row(t));
  }
  return out;
}

quant::QuantError Expert::quantize_weights(DType dt, quant::Granularity g) {
  quant::QuantError worst;
  for (Tensor* w : {&w_gate_, &w_up_, &w_down_}) {
    const auto err = quant::fake_quantize_tensor(*w, dt, g);
    if (err.rel_err > worst.rel_err) worst = err;
  }
  return worst;
}

void Expert::keep_channels(const std::vector<int>& channels) {
  MIB_ENSURE(!channels.empty(), "must keep at least one channel");
  MIB_ENSURE(std::is_sorted(channels.begin(), channels.end()),
             "channel ids must be sorted");
  MIB_ENSURE(std::adjacent_find(channels.begin(), channels.end()) ==
                 channels.end(),
             "channel ids must be unique");
  MIB_ENSURE(channels.front() >= 0 && channels.back() < ffn_,
             "channel id out of range");

  const auto h = static_cast<std::size_t>(hidden_);
  const auto new_f = channels.size();

  Tensor gate({new_f, h});
  Tensor up({new_f, h});
  for (std::size_t c = 0; c < new_f; ++c) {
    const auto src = static_cast<std::size_t>(channels[c]);
    std::copy_n(w_gate_.data() + src * h, h, gate.data() + c * h);
    std::copy_n(w_up_.data() + src * h, h, up.data() + c * h);
  }

  Tensor down({h, new_f});
  for (std::size_t i = 0; i < h; ++i) {
    const float* src_row = w_down_.data() + i * static_cast<std::size_t>(ffn_);
    float* dst_row = down.data() + i * new_f;
    for (std::size_t c = 0; c < new_f; ++c) {
      dst_row[c] = src_row[channels[c]];
    }
  }

  w_gate_ = std::move(gate);
  w_up_ = std::move(up);
  w_down_ = std::move(down);
  ffn_ = static_cast<int>(new_f);
}

std::vector<float> Expert::channel_importance() const {
  const auto f = static_cast<std::size_t>(ffn_);
  const auto h = static_cast<std::size_t>(hidden_);
  std::vector<float> score(f, 0.0f);
  for (std::size_t c = 0; c < f; ++c) {
    double g = 0.0, u = 0.0;
    const float* gr = w_gate_.data() + c * h;
    const float* ur = w_up_.data() + c * h;
    for (std::size_t j = 0; j < h; ++j) {
      g += static_cast<double>(gr[j]) * gr[j];
      u += static_cast<double>(ur[j]) * ur[j];
    }
    double d = 0.0;
    for (std::size_t i = 0; i < h; ++i) {
      const float v = w_down_.data()[i * f + c];
      d += static_cast<double>(v) * v;
    }
    score[c] = static_cast<float>(std::sqrt(g) + std::sqrt(u) + std::sqrt(d));
  }
  return score;
}

std::size_t Expert::param_count() const {
  return 3u * static_cast<std::size_t>(hidden_) *
         static_cast<std::size_t>(ffn_);
}

}  // namespace mib::moe
