#include "moe/moe_layer.h"

#include <algorithm>

#include "common/error.h"

namespace mib::moe {

void MoELayerConfig::validate() const {
  MIB_ENSURE(hidden > 0, "hidden must be positive");
  MIB_ENSURE(expert_ffn > 0, "expert_ffn must be positive");
  MIB_ENSURE(n_experts > 0, "n_experts must be positive");
  MIB_ENSURE(top_k >= 1 && top_k <= n_experts, "top_k out of range");
  MIB_ENSURE(n_shared_experts >= 0, "negative shared experts");
  if (n_shared_experts > 0) {
    MIB_ENSURE(shared_expert_ffn > 0, "shared experts need a ffn dim");
  }
}

MoELayer::MoELayer(MoELayerConfig cfg, Rng& rng) : cfg_(cfg) {
  cfg_.validate();
  RouterConfig rc;
  rc.hidden = cfg_.hidden;
  rc.n_experts = cfg_.n_experts;
  rc.top_k = cfg_.top_k;
  rc.order = cfg_.order;
  rc.renormalize = cfg_.renormalize;
  router_ = std::make_unique<Router>(rc, rng);

  experts_.reserve(cfg_.n_experts);
  for (int e = 0; e < cfg_.n_experts; ++e) {
    experts_.emplace_back(cfg_.hidden, cfg_.expert_ffn, rng);
  }
  for (int s = 0; s < cfg_.n_shared_experts; ++s) {
    shared_.emplace_back(cfg_.hidden, cfg_.shared_expert_ffn, rng);
  }
}

Expert& MoELayer::expert(int i) {
  MIB_ENSURE(i >= 0 && i < n_experts(), "expert index out of range");
  return experts_[i];
}

const Expert& MoELayer::expert(int i) const {
  MIB_ENSURE(i >= 0 && i < n_experts(), "expert index out of range");
  return experts_[i];
}

Expert& MoELayer::shared_expert(int i) {
  MIB_ENSURE(i >= 0 && i < static_cast<int>(shared_.size()),
             "shared expert index out of range");
  return shared_[i];
}

void MoELayer::add_shared(const Tensor& x, Tensor& y) const {
  std::vector<float> tmp(cfg_.hidden);
  for (const auto& s : shared_) {
    for (std::size_t t = 0; t < x.dim(0); ++t) {
      s.forward(x.row(t), tmp);
      auto yr = y.row(t);
      for (std::size_t j = 0; j < yr.size(); ++j) yr[j] += tmp[j];
    }
  }
}

Tensor MoELayer::forward_staged(const Tensor& x) {
  MIB_ENSURE(x.rank() == 2 && x.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "MoE input must be [tokens, hidden]");
  const auto routes = router_->route(x);
  Tensor y = Tensor::zeros({x.dim(0), x.dim(1)});

  // Stage 1: per-expert gather lists (what the unfused GPU path builds on
  // the host before launching one kernel per expert).
  std::vector<std::vector<std::pair<std::size_t, float>>> assignment(
      experts_.size());
  for (std::size_t t = 0; t < routes.size(); ++t) {
    const TokenRoute& r = routes[t];
    for (std::size_t j = 0; j < r.experts.size(); ++j) {
      assignment[r.experts[j]].push_back({t, r.weights[j]});
    }
  }

  // Stage 2: run experts one after another; scatter-add each result.
  std::vector<float> out(cfg_.hidden);
  for (std::size_t e = 0; e < experts_.size(); ++e) {
    for (const auto& [t, w] : assignment[e]) {
      experts_[e].forward(x.row(t), out);
      auto yr = y.row(t);
      for (std::size_t j = 0; j < yr.size(); ++j) yr[j] += w * out[j];
    }
  }

  add_shared(x, y);
  return y;
}

Tensor MoELayer::forward_fused(const Tensor& x, ThreadPool* pool) {
  MIB_ENSURE(x.rank() == 2 && x.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "MoE input must be [tokens, hidden]");
  const auto routes = router_->route(x);
  Tensor y = Tensor::zeros({x.dim(0), x.dim(1)});

  std::vector<std::vector<std::pair<std::size_t, float>>> assignment(
      experts_.size());
  for (std::size_t t = 0; t < routes.size(); ++t) {
    const TokenRoute& r = routes[t];
    for (std::size_t j = 0; j < r.experts.size(); ++j) {
      assignment[r.experts[j]].push_back({t, r.weights[j]});
    }
  }

  // One grouped pass: experts execute concurrently; each expert owns the
  // rows of every token assigned to it. Writes race only if a token's two
  // experts update y.row(t) concurrently, so each expert accumulates into a
  // private buffer keyed by token and we merge sequentially per expert
  // order to keep results deterministic.
  std::vector<Tensor> partial(experts_.size());
  ThreadPool& tp = pool ? *pool : ThreadPool::shared();
  tp.parallel_for(0, experts_.size(), [&](std::size_t e) {
    const auto& list = assignment[e];
    if (list.empty()) return;
    Tensor buf({list.size(), static_cast<std::size_t>(cfg_.hidden)});
    for (std::size_t i = 0; i < list.size(); ++i) {
      experts_[e].forward(x.row(list[i].first), buf.row(i));
    }
    partial[e] = std::move(buf);
  });

  for (std::size_t e = 0; e < experts_.size(); ++e) {
    const auto& list = assignment[e];
    for (std::size_t i = 0; i < list.size(); ++i) {
      const auto [t, w] = list[i];
      auto src = partial[e].row(i);
      auto yr = y.row(t);
      for (std::size_t j = 0; j < yr.size(); ++j) yr[j] += w * src[j];
    }
  }

  add_shared(x, y);
  return y;
}

std::size_t MoELayer::total_params() const {
  std::size_t p = static_cast<std::size_t>(cfg_.hidden) * experts_.size();
  for (const auto& e : experts_) p += e.param_count();
  for (const auto& s : shared_) p += s.param_count();
  return p;
}

std::size_t MoELayer::active_params_per_token() const {
  std::size_t p = static_cast<std::size_t>(cfg_.hidden) * experts_.size();
  const std::size_t k = std::min<std::size_t>(router_->config().top_k,
                                              experts_.size());
  // Routed experts share a geometry, so any k of them cost the same.
  if (!experts_.empty()) p += k * experts_.front().param_count();
  for (const auto& s : shared_) p += s.param_count();
  return p;
}

void MoELayer::drop_experts(const std::vector<int>& expert_ids) {
  router_->drop_experts(expert_ids);
  std::vector<Expert> kept;
  kept.reserve(experts_.size() - expert_ids.size());
  std::size_t drop_pos = 0;
  for (int e = 0; e < static_cast<int>(experts_.size()); ++e) {
    if (drop_pos < expert_ids.size() && expert_ids[drop_pos] == e) {
      ++drop_pos;
      continue;
    }
    kept.push_back(std::move(experts_[e]));
  }
  experts_ = std::move(kept);
  cfg_.n_experts = static_cast<int>(experts_.size());
  cfg_.top_k = std::min(cfg_.top_k, cfg_.n_experts);
}

void MoELayer::sync_ffn_from_experts() {
  MIB_ENSURE(!experts_.empty(), "layer has no experts");
  const int ffn = experts_.front().ffn();
  for (const auto& e : experts_) {
    MIB_ENSURE(e.ffn() == ffn, "experts disagree on FFN dim");
  }
  cfg_.expert_ffn = ffn;
}

}  // namespace mib::moe
