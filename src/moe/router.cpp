#include "moe/router.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace mib::moe {

void RouterConfig::validate() const {
  MIB_ENSURE(hidden > 0, "router hidden must be positive");
  MIB_ENSURE(n_experts > 0, "router needs experts");
  MIB_ENSURE(top_k >= 1 && top_k <= n_experts,
             "top_k " << top_k << " out of [1, " << n_experts << "]");
}

Router::Router(RouterConfig cfg, Rng& rng) : cfg_(cfg) {
  cfg_.validate();
  const float scale = 1.0f / std::sqrt(static_cast<float>(cfg_.hidden));
  gate_ = Tensor::randn({static_cast<std::size_t>(cfg_.n_experts),
                         static_cast<std::size_t>(cfg_.hidden)},
                        rng, scale);
  counts_.assign(cfg_.n_experts, 0);
}

Router::Router(RouterConfig cfg, Tensor gate)
    : cfg_(cfg), gate_(std::move(gate)) {
  cfg_.validate();
  MIB_ENSURE(gate_.rank() == 2 &&
                 gate_.dim(0) == static_cast<std::size_t>(cfg_.n_experts) &&
                 gate_.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "gate shape must be [n_experts, hidden]");
  counts_.assign(cfg_.n_experts, 0);
}

void Router::set_logit_prior(std::vector<float> prior) {
  MIB_ENSURE(prior.empty() ||
                 prior.size() == static_cast<std::size_t>(cfg_.n_experts),
             "prior size must match n_experts");
  prior_ = std::move(prior);
}

std::vector<TokenRoute> Router::route(const Tensor& x) {
  MIB_ENSURE(x.rank() == 2 &&
                 x.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "router input must be [tokens, hidden]");
  const std::size_t tokens = x.dim(0);
  const std::size_t e = cfg_.n_experts;
  const std::size_t k = cfg_.top_k;

  Tensor logits;
  matmul(x, gate_, logits, /*b_transposed=*/true);  // [tokens, n_experts]
  if (!prior_.empty()) {
    for (std::size_t t = 0; t < tokens; ++t) {
      auto row = logits.row(t);
      for (std::size_t j = 0; j < e; ++j) row[j] += prior_[j];
    }
  }

  std::vector<TokenRoute> routes(tokens);
  std::vector<int> idx(e);
  for (std::size_t t = 0; t < tokens; ++t) {
    auto row = logits.row(t);
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](int a, int b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;  // deterministic tie-break
                      });

    TokenRoute& r = routes[t];
    r.experts.assign(idx.begin(), idx.begin() + k);
    r.weights.resize(k);

    if (cfg_.order == ScoreOrder::kSoftmaxThenTopK) {
      // Global softmax, then read off the selected probabilities.
      const float mx = *std::max_element(row.begin(), row.end());
      float denom = 0.0f;
      for (float v : row) denom += std::exp(v - mx);
      for (std::size_t j = 0; j < k; ++j) {
        r.weights[j] = std::exp(row[r.experts[j]] - mx) / denom;
      }
    } else {
      // Softmax over only the selected logits.
      const float mx = row[r.experts[0]];
      float denom = 0.0f;
      for (std::size_t j = 0; j < k; ++j) {
        r.weights[j] = std::exp(row[r.experts[j]] - mx);
        denom += r.weights[j];
      }
      for (std::size_t j = 0; j < k; ++j) r.weights[j] /= denom;
    }

    if (cfg_.renormalize && cfg_.order == ScoreOrder::kSoftmaxThenTopK) {
      float s = 0.0f;
      for (float w : r.weights) s += w;
      if (s > 0.0f) {
        for (float& w : r.weights) w /= s;
      }
    }

    for (int eid : r.experts) ++counts_[eid];
  }
  return routes;
}

void Router::reset_counts() { counts_.assign(counts_.size(), 0); }

void Router::drop_experts(const std::vector<int>& expert_ids) {
  MIB_ENSURE(!expert_ids.empty(), "drop_experts needs at least one id");
  MIB_ENSURE(std::is_sorted(expert_ids.begin(), expert_ids.end()),
             "expert ids must be sorted");
  MIB_ENSURE(std::adjacent_find(expert_ids.begin(), expert_ids.end()) ==
                 expert_ids.end(),
             "expert ids must be unique");
  MIB_ENSURE(expert_ids.front() >= 0 && expert_ids.back() < cfg_.n_experts,
             "expert id out of range");
  const int remaining = cfg_.n_experts - static_cast<int>(expert_ids.size());
  MIB_ENSURE(remaining >= 1, "cannot drop all experts");

  Tensor new_gate({static_cast<std::size_t>(remaining),
                   static_cast<std::size_t>(cfg_.hidden)});
  std::vector<float> new_prior;
  std::size_t out = 0;
  std::size_t drop_pos = 0;
  for (int eid = 0; eid < cfg_.n_experts; ++eid) {
    if (drop_pos < expert_ids.size() && expert_ids[drop_pos] == eid) {
      ++drop_pos;
      continue;
    }
    auto src = gate_.row(eid);
    std::copy(src.begin(), src.end(), new_gate.row(out).begin());
    if (!prior_.empty()) new_prior.push_back(prior_[eid]);
    ++out;
  }
  gate_ = std::move(new_gate);
  prior_ = std::move(new_prior);
  cfg_.n_experts = remaining;
  cfg_.top_k = std::min(cfg_.top_k, remaining);
  counts_.assign(remaining, 0);
}

}  // namespace mib::moe
