#include "moe/pruning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace mib::moe {

int pruned_expert_count(int n_experts, double ratio) {
  MIB_ENSURE(ratio > 0.0 && ratio < 1.0, "prune ratio must be in (0,1)");
  const int removed = static_cast<int>(
      std::ceil(ratio * static_cast<double>(n_experts)));
  return std::max(1, n_experts - removed);
}

int pruned_ffn_dim(int ffn, double ratio) {
  MIB_ENSURE(ratio > 0.0 && ratio < 1.0, "prune ratio must be in (0,1)");
  const int kept = static_cast<int>(
      std::round((1.0 - ratio) * static_cast<double>(ffn)));
  return std::max(1, kept);
}

PruneReport inter_expert_prune(MoELayer& layer, double ratio,
                               ExpertPruneCriterion criterion) {
  const int before = layer.n_experts();
  const int after = pruned_expert_count(before, ratio);
  const int n_remove = before - after;
  MIB_ENSURE(n_remove >= 1, "ratio " << ratio << " removes no experts");

  std::vector<double> score(before, 0.0);
  switch (criterion) {
    case ExpertPruneCriterion::kLeastActivated: {
      const auto& counts = layer.router().activation_counts();
      for (int e = 0; e < before; ++e) {
        score[e] = static_cast<double>(counts[e]);
      }
      break;
    }
    case ExpertPruneCriterion::kSmallestNorm: {
      for (int e = 0; e < before; ++e) {
        const Expert& ex = layer.expert(e);
        score[e] = frobenius_norm(ex.w_gate()) + frobenius_norm(ex.w_up()) +
                   frobenius_norm(ex.w_down());
      }
      break;
    }
    case ExpertPruneCriterion::kHighestIndex: {
      for (int e = 0; e < before; ++e) score[e] = before - e;
      break;
    }
  }

  // Remove the n_remove lowest-scoring experts.
  std::vector<int> order(before);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return score[a] < score[b]; });
  std::vector<int> removed(order.begin(), order.begin() + n_remove);
  std::sort(removed.begin(), removed.end());

  const int ffn = layer.config().expert_ffn;
  layer.drop_experts(removed);

  PruneReport r;
  r.experts_before = before;
  r.experts_after = layer.n_experts();
  r.ffn_before = r.ffn_after = ffn;
  r.removed_experts = std::move(removed);
  return r;
}

PruneReport intra_expert_prune(MoELayer& layer, double ratio) {
  const int ffn_before = layer.config().expert_ffn;
  const int keep = pruned_ffn_dim(ffn_before, ratio);

  for (int e = 0; e < layer.n_experts(); ++e) {
    Expert& ex = layer.expert(e);
    const auto importance = ex.channel_importance();
    std::vector<int> order(importance.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return importance[a] > importance[b];
    });
    std::vector<int> channels(order.begin(), order.begin() + keep);
    std::sort(channels.begin(), channels.end());
    ex.keep_channels(channels);
  }
  layer.sync_ffn_from_experts();

  PruneReport r;
  r.experts_before = r.experts_after = layer.n_experts();
  r.ffn_before = ffn_before;
  r.ffn_after = keep;
  return r;
}

}  // namespace mib::moe
