// A complete, executable MoE transformer (CPU, small scale).
//
// This is the functional counterpart of the serving simulator: embedding
// -> N x (RMSNorm -> attention+KV cache -> RMSNorm -> MoE/dense FFN) ->
// final norm -> LM head, with incremental decoding and greedy sampling.
// It exists so the suite's claims rest on a running system: tests verify
// that incremental decode with the KV cache reproduces full-sequence
// recomputation bit-for-bit (to float tolerance), that causality holds,
// and that router statistics accumulate exactly as the analytic model
// assumes.
#pragma once

#include <memory>
#include <vector>

#include "moe/attention.h"
#include "moe/mla.h"
#include "moe/moe_layer.h"

namespace mib::moe {

struct TransformerConfig {
  int vocab = 256;
  int n_layers = 2;
  int hidden = 64;
  int n_heads = 4;
  int n_kv_heads = 4;
  int head_dim = 16;
  /// Use Multi-head Latent Attention (compressed KV) instead of MHA/GQA.
  bool use_mla = false;
  int mla_kv_rank = 16;
  int mla_rope_dim = 8;
  /// MoE geometry; n_experts == 0 makes every FFN dense with dense_ffn.
  int n_experts = 4;
  int top_k = 2;
  int expert_ffn = 128;
  int n_shared_experts = 0;
  int shared_expert_ffn = 0;
  int dense_ffn = 128;

  void validate() const;
  bool is_moe() const { return n_experts > 0; }
};

/// Decoding session state: one KV cache per layer plus the position.
class Session {
 public:
  Session() = default;

  int position() const { return position_; }
  void clear();

  /// Bytes held by the per-layer KV caches (fp32 functional storage).
  std::size_t kv_bytes() const;

  /// Roll every layer's cache back to `position` tokens (speculative
  /// decoding rejects the tail).
  void truncate(int position);

 private:
  friend class Transformer;
  std::vector<KvState> kv_;        // MHA/GQA caches
  std::vector<MlaKvState> mla_kv_; // MLA latent caches
  int position_ = 0;
};

class Transformer {
 public:
  Transformer(TransformerConfig cfg, std::uint64_t seed);

  const TransformerConfig& config() const { return cfg_; }

  /// Start a decoding session (allocates per-layer KV caches).
  Session new_session() const;

  /// Forward `token_ids` through the model continuing `session`; returns
  /// logits [tokens, vocab] and advances the session.
  Tensor forward(const std::vector<int>& token_ids, Session& session) const;

  /// Greedy generation: prefill `prompt`, then emit `max_new` tokens.
  std::vector<int> generate(const std::vector<int>& prompt, int max_new,
                            Session& session) const;

  /// Per-layer router activation counts (empty for dense FFNs).
  std::vector<std::vector<std::uint64_t>> activation_counts() const;
  void reset_activation_counts();

  MoELayer& moe_layer(int layer);
  std::size_t param_count() const;

 private:
  struct Block {
    std::unique_ptr<RmsNorm> attn_norm;
    std::unique_ptr<Attention> attention;   // MHA/GQA (or null when MLA)
    std::unique_ptr<MlaAttention> mla;      // MLA (or null)
    std::unique_ptr<RmsNorm> ffn_norm;
    std::unique_ptr<MoELayer> moe;      // one of moe / dense is set
    std::unique_ptr<Expert> dense_ffn;  // dense FFN reuses the Expert math
  };

  TransformerConfig cfg_;
  Tensor embedding_;  // [vocab, hidden]
  std::vector<Block> blocks_;
  std::unique_ptr<RmsNorm> final_norm_;
  Tensor lm_head_;  // [vocab, hidden]
};

/// Argmax over a logits row (deterministic tie-break toward lower id).
int greedy_sample(std::span<const float> logits);

/// Functional speculative decoding with greedy (lossless) verification:
/// the draft proposes `draft_tokens` greedily, the target scores the whole
/// proposal in one forward pass and accepts the longest prefix matching
/// its own greedy choices; rejected tokens roll both KV caches back. The
/// output is therefore *identical* to target.generate() — the correctness
/// contract of speculative decoding — while target forward passes shrink
/// by the measured acceptance rate.
struct SpeculativeStats {
  long long proposed = 0;
  long long accepted = 0;
  long long target_passes = 0;

  double acceptance_rate() const {
    return proposed > 0 ? static_cast<double>(accepted) / proposed : 0.0;
  }
};

std::vector<int> speculative_generate(const Transformer& target,
                                      const Transformer& draft,
                                      const std::vector<int>& prompt,
                                      int max_new, int draft_tokens,
                                      SpeculativeStats* stats = nullptr);

}  // namespace mib::moe
