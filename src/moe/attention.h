// Functional multi-head self-attention with RoPE and an incremental KV
// cache — the attention half of the executable MoE transformer
// (moe/transformer.h). Supports MHA and GQA (n_kv_heads <= n_heads).
//
// This is real numerics at small scale: tests verify causality, the
// equivalence of incremental decoding with full-sequence recomputation,
// and GQA head-group sharing.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/tensor.h"

namespace mib::moe {

struct AttentionConfig {
  int hidden = 0;
  int n_heads = 0;
  int n_kv_heads = 0;
  int head_dim = 0;
  float rope_theta = 10000.0f;

  void validate() const;
  int q_dim() const { return n_heads * head_dim; }
  int kv_dim() const { return n_kv_heads * head_dim; }
};

/// Per-sequence K/V storage for one attention layer.
class KvState {
 public:
  KvState() = default;
  explicit KvState(const AttentionConfig& cfg);

  int tokens() const { return tokens_; }
  void clear();

  /// Append one position's K/V rows (called by Attention).
  void append(std::span<const float> k, std::span<const float> v);

  std::span<const float> key(int pos) const;
  std::span<const float> value(int pos) const;

  /// Bytes held by the cache (fp32 functional storage).
  std::size_t bytes() const {
    return (keys_.size() + values_.size()) * sizeof(float);
  }

  /// Roll the cache back to `tokens` positions (speculative-decoding
  /// rejection discards the KV of rejected tokens).
  void truncate(int tokens);

 private:
  int kv_dim_ = 0;
  int tokens_ = 0;
  std::vector<float> keys_;    // [tokens, kv_dim]
  std::vector<float> values_;  // [tokens, kv_dim]
};

class Attention {
 public:
  Attention(AttentionConfig cfg, Rng& rng);

  const AttentionConfig& config() const { return cfg_; }

  /// Causal forward over `x` [tokens, hidden] starting at absolute
  /// position `start_pos`; K/V of the new tokens are appended to `kv`.
  /// Returns [tokens, hidden]. Incremental decode passes one token at a
  /// time with the running cache.
  Tensor forward(const Tensor& x, KvState& kv, int start_pos) const;

  std::size_t param_count() const;

  Tensor& mutable_wq() { return wq_; }

 private:
  /// Apply rotary embedding to one head-sized row at position pos.
  void rope(std::span<float> head_row, int pos) const;

  AttentionConfig cfg_;
  Tensor wq_;  // [q_dim, hidden]
  Tensor wk_;  // [kv_dim, hidden]
  Tensor wv_;  // [kv_dim, hidden]
  Tensor wo_;  // [hidden, q_dim]
};

/// RMSNorm: y = x / rms(x) * weight.
class RmsNorm {
 public:
  explicit RmsNorm(int dim, float eps = 1e-5f);

  /// Normalize each row of x [tokens, dim] in place.
  void apply(Tensor& x) const;

  std::span<float> weight() { return {w_.data(), w_.size()}; }

 private:
  std::vector<float> w_;
  float eps_;
};

}  // namespace mib::moe
