#include "moe/transformer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib::moe {

void TransformerConfig::validate() const {
  MIB_ENSURE(vocab > 1, "vocab must exceed 1");
  MIB_ENSURE(n_layers >= 1, "need at least one layer");
  MIB_ENSURE(hidden > 0, "hidden must be positive");
  if (use_mla) {
    MlaConfig mc{hidden, n_heads, head_dim, mla_kv_rank, mla_rope_dim};
    mc.validate();
  } else {
    AttentionConfig ac{hidden, n_heads, n_kv_heads, head_dim};
    ac.validate();
  }
  if (is_moe()) {
    MIB_ENSURE(top_k >= 1 && top_k <= n_experts, "top_k out of range");
    MIB_ENSURE(expert_ffn > 0, "expert_ffn must be positive");
  } else {
    MIB_ENSURE(dense_ffn > 0, "dense_ffn must be positive");
  }
}

void Session::clear() {
  for (auto& kv : kv_) kv.clear();
  for (auto& kv : mla_kv_) kv.clear();
  position_ = 0;
}

void Session::truncate(int position) {
  MIB_ENSURE(position >= 0 && position <= position_,
             "cannot truncate session to " << position << " of "
                                           << position_);
  for (auto& kv : kv_) kv.truncate(position);
  for (auto& kv : mla_kv_) kv.truncate(position);
  position_ = position;
}

std::size_t Session::kv_bytes() const {
  std::size_t b = 0;
  for (const auto& kv : mla_kv_) b += kv.bytes();
  for (const auto& kv : kv_) b += kv.bytes();
  return b;
}

Transformer::Transformer(TransformerConfig cfg, std::uint64_t seed)
    : cfg_(cfg) {
  cfg_.validate();
  Rng rng(seed);
  const auto h = static_cast<std::size_t>(cfg_.hidden);
  const float emb_scale = 1.0f / std::sqrt(static_cast<float>(cfg_.hidden));
  embedding_ = Tensor::randn({static_cast<std::size_t>(cfg_.vocab), h}, rng,
                             emb_scale);
  lm_head_ = Tensor::randn({static_cast<std::size_t>(cfg_.vocab), h}, rng,
                           emb_scale);

  blocks_.resize(cfg_.n_layers);
  for (auto& b : blocks_) {
    b.attn_norm = std::make_unique<RmsNorm>(cfg_.hidden);
    Rng layer_rng = rng.split();
    if (cfg_.use_mla) {
      MlaConfig mc{cfg_.hidden, cfg_.n_heads, cfg_.head_dim,
                   cfg_.mla_kv_rank, cfg_.mla_rope_dim};
      b.mla = std::make_unique<MlaAttention>(mc, layer_rng);
    } else {
      AttentionConfig ac{cfg_.hidden, cfg_.n_heads, cfg_.n_kv_heads,
                         cfg_.head_dim};
      b.attention = std::make_unique<Attention>(ac, layer_rng);
    }
    b.ffn_norm = std::make_unique<RmsNorm>(cfg_.hidden);
    if (cfg_.is_moe()) {
      MoELayerConfig mc;
      mc.hidden = cfg_.hidden;
      mc.expert_ffn = cfg_.expert_ffn;
      mc.n_experts = cfg_.n_experts;
      mc.top_k = cfg_.top_k;
      mc.n_shared_experts = cfg_.n_shared_experts;
      mc.shared_expert_ffn = cfg_.shared_expert_ffn;
      b.moe = std::make_unique<MoELayer>(mc, layer_rng);
    } else {
      b.dense_ffn =
          std::make_unique<Expert>(cfg_.hidden, cfg_.dense_ffn, layer_rng);
    }
  }
  final_norm_ = std::make_unique<RmsNorm>(cfg_.hidden);
}

Session Transformer::new_session() const {
  Session s;
  if (cfg_.use_mla) {
    MlaConfig mc{cfg_.hidden, cfg_.n_heads, cfg_.head_dim, cfg_.mla_kv_rank,
                 cfg_.mla_rope_dim};
    s.mla_kv_.assign(cfg_.n_layers, MlaKvState(mc));
  } else {
    AttentionConfig ac{cfg_.hidden, cfg_.n_heads, cfg_.n_kv_heads,
                       cfg_.head_dim};
    s.kv_.assign(cfg_.n_layers, KvState(ac));
  }
  return s;
}

Tensor Transformer::forward(const std::vector<int>& token_ids,
                            Session& session) const {
  MIB_ENSURE(!token_ids.empty(), "forward needs at least one token");
  const auto& caches = cfg_.use_mla ? session.mla_kv_.size()
                                    : session.kv_.size();
  MIB_ENSURE(caches == static_cast<std::size_t>(cfg_.n_layers),
             "session does not belong to this model");
  const std::size_t tokens = token_ids.size();
  const auto h = static_cast<std::size_t>(cfg_.hidden);

  Tensor x({tokens, h});
  for (std::size_t t = 0; t < tokens; ++t) {
    MIB_ENSURE(token_ids[t] >= 0 && token_ids[t] < cfg_.vocab,
               "token id out of vocab: " << token_ids[t]);
    const auto src = embedding_.row(static_cast<std::size_t>(token_ids[t]));
    std::copy(src.begin(), src.end(), x.row(t).begin());
  }

  const int start = session.position_;
  for (int l = 0; l < cfg_.n_layers; ++l) {
    auto& b = blocks_[static_cast<std::size_t>(l)];
    Tensor normed = x;
    b.attn_norm->apply(normed);
    const Tensor attn =
        cfg_.use_mla
            ? b.mla->forward(normed,
                             session.mla_kv_[static_cast<std::size_t>(l)],
                             start)
            : b.attention->forward(
                  normed, session.kv_[static_cast<std::size_t>(l)], start);
    add_inplace(x, attn);

    Tensor ffn_in = x;
    b.ffn_norm->apply(ffn_in);
    Tensor ffn_out = b.moe ? b.moe->forward_fused(ffn_in)
                           : b.dense_ffn->forward(ffn_in);
    add_inplace(x, ffn_out);
  }
  session.position_ += static_cast<int>(tokens);

  final_norm_->apply(x);
  Tensor logits;
  matmul(x, lm_head_, logits, /*b_transposed=*/true);  // [tokens, vocab]
  return logits;
}

std::vector<int> Transformer::generate(const std::vector<int>& prompt,
                                       int max_new, Session& session) const {
  MIB_ENSURE(max_new >= 0, "negative generation length");
  std::vector<int> out;
  out.reserve(max_new);
  Tensor logits = forward(prompt, session);
  int next = greedy_sample(logits.row(logits.dim(0) - 1));
  for (int i = 0; i < max_new; ++i) {
    out.push_back(next);
    if (i + 1 == max_new) break;
    logits = forward({next}, session);
    next = greedy_sample(logits.row(0));
  }
  return out;
}

std::vector<std::vector<std::uint64_t>> Transformer::activation_counts()
    const {
  std::vector<std::vector<std::uint64_t>> out;
  for (const auto& b : blocks_) {
    if (b.moe) out.push_back(b.moe->router().activation_counts());
  }
  return out;
}

void Transformer::reset_activation_counts() {
  for (auto& b : blocks_) {
    if (b.moe) b.moe->router().reset_counts();
  }
}

MoELayer& Transformer::moe_layer(int layer) {
  MIB_ENSURE(layer >= 0 && layer < cfg_.n_layers, "layer out of range");
  auto& b = blocks_[static_cast<std::size_t>(layer)];
  MIB_ENSURE(b.moe != nullptr, "layer " << layer << " has a dense FFN");
  return *b.moe;
}

std::size_t Transformer::param_count() const {
  std::size_t p = embedding_.size() + lm_head_.size();
  for (const auto& b : blocks_) {
    p += cfg_.use_mla ? b.mla->param_count() : b.attention->param_count();
    p += 2u * static_cast<std::size_t>(cfg_.hidden);  // norms
    if (b.moe) {
      p += b.moe->total_params();
    } else {
      p += b.dense_ffn->param_count();
    }
  }
  p += static_cast<std::size_t>(cfg_.hidden);  // final norm
  return p;
}

std::vector<int> speculative_generate(const Transformer& target,
                                      const Transformer& draft,
                                      const std::vector<int>& prompt,
                                      int max_new, int draft_tokens,
                                      SpeculativeStats* stats) {
  MIB_ENSURE(max_new >= 0, "negative generation length");
  MIB_ENSURE(draft_tokens >= 1, "need at least one draft token per cycle");
  MIB_ENSURE(target.config().vocab == draft.config().vocab,
             "speculative decoding requires a shared vocabulary");

  auto ts = target.new_session();
  auto ds = draft.new_session();

  std::vector<int> out;
  out.reserve(max_new);

  // Prefill both models; the target's last-position logits pick token 1.
  Tensor tlogits = target.forward(prompt, ts);
  draft.forward(prompt, ds);
  if (stats) ++stats->target_passes;
  int last = greedy_sample(tlogits.row(tlogits.dim(0) - 1));

  while (static_cast<int>(out.size()) < max_new) {
    out.push_back(last);
    if (static_cast<int>(out.size()) == max_new) break;
    const int remaining = max_new - static_cast<int>(out.size());
    const int k = std::min(draft_tokens, remaining);

    // Draft proposes k tokens greedily, starting from `last`.
    std::vector<int> proposal;
    proposal.reserve(k);
    Tensor dlogits = draft.forward({last}, ds);
    for (int i = 0; i < k; ++i) {
      const int tok = greedy_sample(dlogits.row(0));
      proposal.push_back(tok);
      if (i + 1 < k) dlogits = draft.forward({tok}, ds);
    }

    // Target scores `last` followed by the proposal in ONE forward pass;
    // position j's logits give the target's own next token after seeing
    // proposal[0..j-1].
    std::vector<int> block;
    block.push_back(last);
    block.insert(block.end(), proposal.begin(), proposal.end());
    const int t_before = ts.position();
    tlogits = target.forward(block, ts);
    if (stats) {
      ++stats->target_passes;
      stats->proposed += k;
    }

    int accepted = 0;
    int corrected = greedy_sample(tlogits.row(0));
    while (accepted < k && proposal[accepted] == corrected) {
      out.push_back(proposal[accepted]);
      ++accepted;
      if (static_cast<int>(out.size()) == max_new) break;
      corrected = greedy_sample(tlogits.row(accepted));
    }
    if (stats) stats->accepted += accepted;
    if (static_cast<int>(out.size()) == max_new) break;

    // The first divergence (or the bonus position) supplies the next token
    // from the TARGET's distribution — this is what makes the output
    // identical to plain target decoding.
    last = corrected;

    // Roll back the speculative tail: target keeps the accepted prefix;
    // the draft must hold exactly the same history before the next cycle.
    ts.truncate(t_before + 1 + accepted);
    if (ds.position() > ts.position()) {
      ds.truncate(ts.position());
    } else if (ds.position() < ts.position()) {
      // Full acceptance: the draft never ingested its own last proposal —
      // replay the missing tail of the emitted stream.
      std::vector<int> missing(out.end() - (ts.position() - ds.position()),
                               out.end());
      draft.forward(missing, ds);
    }
  }
  return out;
}

int greedy_sample(std::span<const float> logits) {
  MIB_ENSURE(!logits.empty(), "empty logits");
  int best = 0;
  float best_v = logits[0];
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > best_v) {
      best_v = logits[i];
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace mib::moe
