#include "moe/vision_encoder.h"

#include <cmath>

#include "common/error.h"

namespace mib::moe {

void VisionEncoderConfig::validate() const {
  MIB_ENSURE(image_size > 0 && patch_size > 0, "positive dims required");
  MIB_ENSURE(image_size % patch_size == 0,
             "image size must be divisible by patch size");
  MIB_ENSURE(channels >= 1, "need at least one channel");
  MIB_ENSURE(hidden > 0 && llm_hidden > 0, "positive widths required");
  MIB_ENSURE(n_layers >= 1, "need at least one block");
  MIB_ENSURE(mlp_dim > 0, "positive MLP dim required");
  AttentionConfig ac{hidden, n_heads, n_heads, hidden / n_heads};
  MIB_ENSURE(hidden % n_heads == 0, "hidden must divide by heads");
  ac.validate();
}

VisionEncoder::VisionEncoder(VisionEncoderConfig cfg, std::uint64_t seed)
    : cfg_(cfg) {
  cfg_.validate();
  Rng rng(seed);
  const auto h = static_cast<std::size_t>(cfg_.hidden);
  patch_embed_ = Tensor::randn(
      {h, static_cast<std::size_t>(cfg_.patch_dim())}, rng,
      1.0f / std::sqrt(static_cast<float>(cfg_.patch_dim())));
  pos_embed_ = Tensor::randn(
      {static_cast<std::size_t>(cfg_.n_patches()), h}, rng, 0.02f);

  AttentionConfig ac{cfg_.hidden, cfg_.n_heads, cfg_.n_heads,
                     cfg_.hidden / cfg_.n_heads};
  blocks_.resize(cfg_.n_layers);
  for (auto& b : blocks_) {
    Rng layer_rng = rng.split();
    b.attn_norm = std::make_unique<RmsNorm>(cfg_.hidden);
    b.attention = std::make_unique<Attention>(ac, layer_rng);
    b.mlp_norm = std::make_unique<RmsNorm>(cfg_.hidden);
    b.mlp = std::make_unique<Expert>(cfg_.hidden, cfg_.mlp_dim, layer_rng);
  }
  final_norm_ = std::make_unique<RmsNorm>(cfg_.hidden);
  projector_ = Tensor::randn(
      {static_cast<std::size_t>(cfg_.llm_hidden), h}, rng,
      1.0f / std::sqrt(static_cast<float>(cfg_.hidden)));
}

Tensor VisionEncoder::self_attention(const Attention& attn,
                                     const Tensor& x) const {
  // ViT attention is bidirectional. The causal Attention core is reused by
  // running it twice — forward and on the reversed sequence — and averaging:
  // every token then attends over the full set. This keeps one attention
  // implementation while matching the bidirectional receptive field.
  KvState kv_fwd(AttentionConfig{cfg_.hidden, cfg_.n_heads, cfg_.n_heads,
                                 cfg_.hidden / cfg_.n_heads});
  const Tensor fwd = attn.forward(x, kv_fwd, 0);

  const std::size_t n = x.dim(0);
  Tensor rev({n, x.dim(1)});
  for (std::size_t t = 0; t < n; ++t) {
    const auto src = x.row(n - 1 - t);
    std::copy(src.begin(), src.end(), rev.row(t).begin());
  }
  KvState kv_rev(AttentionConfig{cfg_.hidden, cfg_.n_heads, cfg_.n_heads,
                                 cfg_.hidden / cfg_.n_heads});
  const Tensor bwd = attn.forward(rev, kv_rev, 0);

  Tensor out({n, x.dim(1)});
  for (std::size_t t = 0; t < n; ++t) {
    const auto f = fwd.row(t);
    const auto b = bwd.row(n - 1 - t);
    auto o = out.row(t);
    for (std::size_t j = 0; j < o.size(); ++j) {
      o[j] = 0.5f * (f[j] + b[j]);
    }
  }
  return out;
}

Tensor VisionEncoder::encode(const Tensor& image) const {
  MIB_ENSURE(image.rank() == 1 &&
                 image.size() == static_cast<std::size_t>(
                                     cfg_.channels * cfg_.image_size *
                                     cfg_.image_size),
             "image must be a flat [channels*H*W] tensor of the configured "
             "size");
  const int side = cfg_.patches_per_side();
  const int ps = cfg_.patch_size;
  const auto n = static_cast<std::size_t>(cfg_.n_patches());
  const auto pd = static_cast<std::size_t>(cfg_.patch_dim());

  // Extract flattened patches: patch (py, px) gathers a ps x ps window from
  // every channel.
  Tensor patches({n, pd});
  const float* img = image.data();
  const int is = cfg_.image_size;
  for (int py = 0; py < side; ++py) {
    for (int px = 0; px < side; ++px) {
      auto row = patches.row(static_cast<std::size_t>(py * side + px));
      std::size_t w = 0;
      for (int c = 0; c < cfg_.channels; ++c) {
        for (int y = 0; y < ps; ++y) {
          for (int x = 0; x < ps; ++x) {
            row[w++] = img[(c * is + py * ps + y) * is + px * ps + x];
          }
        }
      }
    }
  }

  // Patch embedding + positional embedding.
  Tensor tokens;
  matmul(patches, patch_embed_, tokens, /*b_transposed=*/true);
  add_inplace(tokens, pos_embed_);

  // ViT blocks (pre-norm residual).
  for (const auto& b : blocks_) {
    Tensor normed = tokens;
    b.attn_norm->apply(normed);
    add_inplace(tokens, self_attention(*b.attention, normed));
    Tensor mlp_in = tokens;
    b.mlp_norm->apply(mlp_in);
    add_inplace(tokens, b.mlp->forward(mlp_in));
  }
  final_norm_->apply(tokens);

  Tensor out;
  matmul(tokens, projector_, out, /*b_transposed=*/true);
  return out;  // [n_patches, llm_hidden]
}

std::size_t VisionEncoder::param_count() const {
  std::size_t p = patch_embed_.size() + pos_embed_.size() +
                  projector_.size() +
                  static_cast<std::size_t>(cfg_.hidden);
  for (const auto& b : blocks_) {
    p += b.attention->param_count() + b.mlp->param_count() +
         2u * static_cast<std::size_t>(cfg_.hidden);
  }
  return p;
}

}  // namespace mib::moe
