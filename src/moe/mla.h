// Functional Multi-head Latent Attention (DeepSeek-V2 style).
//
// MLA caches a low-rank latent per token instead of full K/V heads:
//   c_t  = W_dkv · x_t                (latent, rank r)
//   k_t^R = RoPE(W_kr · x_t)          (decoupled shared rope key)
//   K_t  = W_uk · c_t,  V_t = W_uv · c_t   (reconstructed at attention time)
// The cache stores only (c_t, k_t^R): r + rope_dim floats per token per
// layer — the compression the engine's memory model charges for
// DeepSeek-V2-Lite and the VL2 family. This functional implementation lets
// tests verify (a) incremental == full recompute, (b) the cache really is
// smaller than MHA's, and (c) reconstruction round-trips the latent.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/tensor.h"

namespace mib::moe {

struct MlaConfig {
  int hidden = 0;
  int n_heads = 0;
  int head_dim = 0;      ///< per-head dim of reconstructed K(nope) and V
  int kv_rank = 0;       ///< latent dim r
  int rope_dim = 0;      ///< decoupled rope key dim (shared across heads)
  float rope_theta = 10000.0f;

  void validate() const;
  /// Cached floats per token (latent + rope key).
  int cache_dim() const { return kv_rank + rope_dim; }
};

/// Latent cache: [tokens, kv_rank + rope_dim].
class MlaKvState {
 public:
  MlaKvState() = default;
  explicit MlaKvState(const MlaConfig& cfg);

  int tokens() const { return tokens_; }
  void clear();
  void append(std::span<const float> latent_and_rope);
  std::span<const float> entry(int pos) const;

  /// Bytes held (fp32 storage), for the compression assertion.
  std::size_t bytes() const { return data_.size() * sizeof(float); }

  /// Roll back to `tokens` positions.
  void truncate(int tokens);

 private:
  int dim_ = 0;
  int tokens_ = 0;
  std::vector<float> data_;
};

class MlaAttention {
 public:
  MlaAttention(MlaConfig cfg, Rng& rng);

  const MlaConfig& config() const { return cfg_; }

  /// Causal forward of x [tokens, hidden] continuing `kv` at start_pos.
  Tensor forward(const Tensor& x, MlaKvState& kv, int start_pos) const;

  std::size_t param_count() const;

 private:
  void rope(std::span<float> row, int pos) const;

  MlaConfig cfg_;
  Tensor wq_nope_;  // [n_heads*head_dim, hidden]  (query, content part)
  Tensor wq_rope_;  // [n_heads*rope_dim, hidden]  (query, rope part)
  Tensor w_dkv_;    // [kv_rank, hidden]           (latent down-projection)
  Tensor w_kr_;     // [rope_dim, hidden]          (shared rope key)
  Tensor w_uk_;     // [n_heads*head_dim, kv_rank] (K up-projection)
  Tensor w_uv_;     // [n_heads*head_dim, kv_rank] (V up-projection)
  Tensor wo_;       // [hidden, n_heads*head_dim]
};

}  // namespace mib::moe
