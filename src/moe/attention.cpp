#include "moe/attention.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib::moe {

void AttentionConfig::validate() const {
  MIB_ENSURE(hidden > 0, "attention hidden must be positive");
  MIB_ENSURE(n_heads > 0, "n_heads must be positive");
  MIB_ENSURE(n_kv_heads > 0 && n_kv_heads <= n_heads,
             "n_kv_heads must be in [1, n_heads]");
  MIB_ENSURE(n_heads % n_kv_heads == 0,
             "n_heads must be divisible by n_kv_heads");
  MIB_ENSURE(head_dim > 0 && head_dim % 2 == 0,
             "head_dim must be positive and even (RoPE pairs)");
  MIB_ENSURE(rope_theta > 0, "rope_theta must be positive");
}

KvState::KvState(const AttentionConfig& cfg) : kv_dim_(cfg.kv_dim()) {
  cfg.validate();
}

void KvState::clear() {
  tokens_ = 0;
  keys_.clear();
  values_.clear();
}

void KvState::append(std::span<const float> k, std::span<const float> v) {
  MIB_ENSURE(kv_dim_ > 0, "KvState not initialized");
  MIB_ENSURE(k.size() == static_cast<std::size_t>(kv_dim_) &&
                 v.size() == static_cast<std::size_t>(kv_dim_),
             "KV row size mismatch");
  keys_.insert(keys_.end(), k.begin(), k.end());
  values_.insert(values_.end(), v.begin(), v.end());
  ++tokens_;
}

void KvState::truncate(int tokens) {
  MIB_ENSURE(tokens >= 0 && tokens <= tokens_,
             "cannot truncate to " << tokens << " of " << tokens_);
  tokens_ = tokens;
  keys_.resize(static_cast<std::size_t>(tokens) * kv_dim_);
  values_.resize(static_cast<std::size_t>(tokens) * kv_dim_);
}

std::span<const float> KvState::key(int pos) const {
  MIB_ENSURE(pos >= 0 && pos < tokens_, "KV position out of range");
  return {keys_.data() + static_cast<std::size_t>(pos) * kv_dim_,
          static_cast<std::size_t>(kv_dim_)};
}

std::span<const float> KvState::value(int pos) const {
  MIB_ENSURE(pos >= 0 && pos < tokens_, "KV position out of range");
  return {values_.data() + static_cast<std::size_t>(pos) * kv_dim_,
          static_cast<std::size_t>(kv_dim_)};
}

Attention::Attention(AttentionConfig cfg, Rng& rng) : cfg_(cfg) {
  cfg_.validate();
  const auto h = static_cast<std::size_t>(cfg_.hidden);
  const float scale = 1.0f / std::sqrt(static_cast<float>(cfg_.hidden));
  wq_ = Tensor::randn({static_cast<std::size_t>(cfg_.q_dim()), h}, rng,
                      scale);
  wk_ = Tensor::randn({static_cast<std::size_t>(cfg_.kv_dim()), h}, rng,
                      scale);
  wv_ = Tensor::randn({static_cast<std::size_t>(cfg_.kv_dim()), h}, rng,
                      scale);
  wo_ = Tensor::randn({h, static_cast<std::size_t>(cfg_.q_dim())}, rng,
                      1.0f / std::sqrt(static_cast<float>(cfg_.q_dim())));
}

void Attention::rope(std::span<float> head_row, int pos) const {
  const int d = cfg_.head_dim;
  for (int i = 0; i < d / 2; ++i) {
    const double freq =
        1.0 / std::pow(cfg_.rope_theta, 2.0 * i / static_cast<double>(d));
    const double angle = pos * freq;
    const float cs = static_cast<float>(std::cos(angle));
    const float sn = static_cast<float>(std::sin(angle));
    const float a = head_row[2 * i];
    const float b = head_row[2 * i + 1];
    head_row[2 * i] = a * cs - b * sn;
    head_row[2 * i + 1] = a * sn + b * cs;
  }
}

Tensor Attention::forward(const Tensor& x, KvState& kv, int start_pos) const {
  MIB_ENSURE(x.rank() == 2 &&
                 x.dim(1) == static_cast<std::size_t>(cfg_.hidden),
             "attention input must be [tokens, hidden]");
  MIB_ENSURE(start_pos == kv.tokens(),
             "start_pos " << start_pos << " must equal cached tokens "
                          << kv.tokens());
  const std::size_t tokens = x.dim(0);
  const int d = cfg_.head_dim;
  const int group = cfg_.n_heads / cfg_.n_kv_heads;
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

  // Projections for the new tokens.
  Tensor q, k, v;
  matmul(x, wq_, q, /*b_transposed=*/true);  // [tokens, q_dim]
  matmul(x, wk_, k, /*b_transposed=*/true);  // [tokens, kv_dim]
  matmul(x, wv_, v, /*b_transposed=*/true);

  // RoPE on Q and K, then append K/V to the cache.
  for (std::size_t t = 0; t < tokens; ++t) {
    const int pos = start_pos + static_cast<int>(t);
    auto qrow = q.row(t);
    for (int hh = 0; hh < cfg_.n_heads; ++hh) {
      rope(qrow.subspan(static_cast<std::size_t>(hh) * d,
                        static_cast<std::size_t>(d)),
           pos);
    }
    auto krow = k.row(t);
    for (int hh = 0; hh < cfg_.n_kv_heads; ++hh) {
      rope(krow.subspan(static_cast<std::size_t>(hh) * d,
                        static_cast<std::size_t>(d)),
           pos);
    }
    kv.append(krow, v.row(t));
  }

  // Causal attention: token t attends to cache positions [0, start_pos+t].
  Tensor attn_out({tokens, static_cast<std::size_t>(cfg_.q_dim())});
  std::vector<float> scores;
  for (std::size_t t = 0; t < tokens; ++t) {
    const int ctx = start_pos + static_cast<int>(t) + 1;
    scores.resize(ctx);
    auto qrow = q.row(t);
    auto orow = attn_out.row(t);
    for (int hh = 0; hh < cfg_.n_heads; ++hh) {
      const int kv_head = hh / group;
      const auto qh = qrow.subspan(static_cast<std::size_t>(hh) * d,
                                   static_cast<std::size_t>(d));
      // scores = q . k / sqrt(d)
      float mx = -1e30f;
      for (int p = 0; p < ctx; ++p) {
        const auto kh = kv.key(p).subspan(
            static_cast<std::size_t>(kv_head) * d,
            static_cast<std::size_t>(d));
        float s = 0.0f;
        for (int i = 0; i < d; ++i) s += qh[i] * kh[i];
        scores[p] = s * inv_sqrt_d;
        mx = std::max(mx, scores[p]);
      }
      float denom = 0.0f;
      for (int p = 0; p < ctx; ++p) {
        scores[p] = std::exp(scores[p] - mx);
        denom += scores[p];
      }
      auto oh = orow.subspan(static_cast<std::size_t>(hh) * d,
                             static_cast<std::size_t>(d));
      std::fill(oh.begin(), oh.end(), 0.0f);
      for (int p = 0; p < ctx; ++p) {
        const float w = scores[p] / denom;
        const auto vh = kv.value(p).subspan(
            static_cast<std::size_t>(kv_head) * d,
            static_cast<std::size_t>(d));
        for (int i = 0; i < d; ++i) oh[i] += w * vh[i];
      }
    }
  }

  Tensor out;
  matmul(attn_out, wo_, out, /*b_transposed=*/true);  // [tokens, hidden]
  return out;
}

std::size_t Attention::param_count() const {
  return wq_.size() + wk_.size() + wv_.size() + wo_.size();
}

RmsNorm::RmsNorm(int dim, float eps) : w_(dim, 1.0f), eps_(eps) {
  MIB_ENSURE(dim > 0, "RmsNorm dim must be positive");
}

void RmsNorm::apply(Tensor& x) const {
  MIB_ENSURE(x.rank() == 2 && x.dim(1) == w_.size(),
             "RmsNorm dim mismatch");
  for (std::size_t t = 0; t < x.dim(0); ++t) {
    auto row = x.row(t);
    double ss = 0.0;
    for (float v : row) ss += static_cast<double>(v) * v;
    const float inv_rms = static_cast<float>(
        1.0 / std::sqrt(ss / static_cast<double>(row.size()) + eps_));
    for (std::size_t i = 0; i < row.size(); ++i) {
      row[i] = row[i] * inv_rms * w_[i];
    }
  }
}

}  // namespace mib::moe
