// MoE pruning transforms (paper §6.2).
//
//   * Inter-expert pruning removes whole experts and their router rows; the
//     number of *active* experts per token is unchanged (top_k clamps only
//     when fewer experts remain than top_k).
//   * Intra-expert pruning shrinks each expert's FFN dimension, keeping the
//     most important channels by a magnitude criterion.
//
// Both operate on the functional MoELayer (so their numerics are testable)
// and both report the resulting geometry so the engine's cost model can
// price the pruned network.
#pragma once

#include <vector>

#include "moe/moe_layer.h"

namespace mib::moe {

/// Criterion for choosing which experts to remove.
enum class ExpertPruneCriterion {
  kLeastActivated,  ///< fewest router selections (needs activation counts)
  kSmallestNorm,    ///< smallest total weight norm
  kHighestIndex,    ///< deterministic tail-drop (for tests)
};

/// Result of a pruning pass.
struct PruneReport {
  int experts_before = 0;
  int experts_after = 0;
  int ffn_before = 0;
  int ffn_after = 0;
  std::vector<int> removed_experts;  ///< inter-expert only
};

/// Remove ceil(ratio * n_experts) experts. ratio in (0, 1).
PruneReport inter_expert_prune(MoELayer& layer, double ratio,
                               ExpertPruneCriterion criterion);

/// Shrink every expert's FFN dim to round((1 - ratio) * ffn) channels,
/// keeping the highest-importance channels per expert.
PruneReport intra_expert_prune(MoELayer& layer, double ratio);

/// Geometry math shared with the cost model: how many experts / channels
/// remain after a given ratio (exposed so benches can price pruned configs
/// without building functional layers).
int pruned_expert_count(int n_experts, double ratio);
int pruned_ffn_dim(int ffn, double ratio);

}  // namespace mib::moe
