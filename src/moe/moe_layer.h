// A complete MoE block: router + routed experts + optional shared experts.
//
// Two execution strategies mirror the GPU implementations the paper
// compares (§7.2):
//   * staged  — the "naive" path: route, then for each expert gather its
//               tokens, run it, scatter-add results back (separate kernels).
//   * fused   — group tokens by expert once and execute all experts in a
//               single pass, parallel across experts on the thread pool.
// Both produce the same numerics (verified by tests to ~1e-5, the float
// reassociation bound), which is the functional claim behind Fused MoE.
#pragma once

#include <memory>
#include <vector>

#include "common/tensor.h"
#include "common/thread_pool.h"
#include "moe/expert.h"
#include "moe/router.h"

namespace mib::moe {

struct MoELayerConfig {
  int hidden = 0;
  int expert_ffn = 0;
  int n_experts = 0;
  int top_k = 0;
  int n_shared_experts = 0;
  int shared_expert_ffn = 0;
  ScoreOrder order = ScoreOrder::kSoftmaxThenTopK;
  bool renormalize = true;

  void validate() const;
};

class MoELayer {
 public:
  MoELayer(MoELayerConfig cfg, Rng& rng);

  const MoELayerConfig& config() const { return cfg_; }
  Router& router() { return *router_; }
  const Router& router() const { return *router_; }
  int n_experts() const { return static_cast<int>(experts_.size()); }
  Expert& expert(int i);
  const Expert& expert(int i) const;
  Expert& shared_expert(int i);

  /// Staged (unfused) execution of x [tokens, hidden].
  Tensor forward_staged(const Tensor& x);

  /// Fused execution; pool == nullptr uses the shared pool, pass a pool
  /// with 1 thread for deterministic single-threaded runs.
  Tensor forward_fused(const Tensor& x, ThreadPool* pool = nullptr);

  /// Total / active parameter counts of this layer (router included).
  std::size_t total_params() const;
  std::size_t active_params_per_token() const;

  /// --- pruning hooks (used by moe/pruning.h) ---
  /// Remove routed experts by id (sorted unique); updates the router.
  void drop_experts(const std::vector<int>& expert_ids);

  /// Refresh config().expert_ffn after intra-expert pruning resized the
  /// experts. All experts must share one FFN dim.
  void sync_ffn_from_experts();

 private:
  /// Combine shared-expert output into y (shared experts always run).
  void add_shared(const Tensor& x, Tensor& y) const;

  MoELayerConfig cfg_;
  std::unique_ptr<Router> router_;
  std::vector<Expert> experts_;
  std::vector<Expert> shared_;
};

}  // namespace mib::moe
