// Registry mapping every paper table/figure to its bench target — the
// suite's table of contents (printed by `bench/suite_manifest`).
#pragma once

#include <string>
#include <vector>

namespace mib::core {

struct ExperimentInfo {
  std::string id;           ///< "table1", "fig05", ...
  std::string title;        ///< what the paper shows
  std::string workload;     ///< workload / parameter summary
  std::string bench_target; ///< binary under bench/ that regenerates it
};

const std::vector<ExperimentInfo>& experiments();

/// Lookup by id; throws ConfigError when unknown.
const ExperimentInfo& experiment(const std::string& id);

}  // namespace mib::core
