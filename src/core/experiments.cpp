#include "core/experiments.h"

#include "common/error.h"

namespace mib::core {

const std::vector<ExperimentInfo>& experiments() {
  static const std::vector<ExperimentInfo> v = {
      {"table1", "MoE architecture comparison (9 models)",
       "parameter accounting only", "table1_architectures"},
      {"fig01", "Layer-wise total & active parameter breakdown",
       "Mixtral-8x7B, OLMoE-1B-7B, Qwen1.5-MoE", "fig01_param_breakdown"},
      {"fig03", "TTFT / ITL / end-to-end latency of LLMs",
       "batch 64, in/out 2048", "fig03_llm_latency"},
      {"fig04", "TTFT / ITL / end-to-end latency of VLMs",
       "batch 64, in/out 2048, 1 image/request", "fig04_vlm_latency"},
      {"fig05", "Throughput vs active experts (TopK) across batch sizes",
       "DeepSeek-V2-Lite & Qwen1.5-MoE, ctx 2048, batch {1..128}",
       "fig05_topk_batch"},
      {"fig06", "Throughput vs batch size across in/out lengths",
       "batch {1..128} x len {128..2048}", "fig06_len_batch"},
      {"fig07", "Throughput vs FFN dimension",
       "Mixtral skeleton, batch 16, len 2048, 4xH100",
       "fig07_ffn_scaling"},
      {"fig08", "Throughput vs number of experts",
       "Mixtral skeleton, batch 16, len 2048, 4xH100",
       "fig08_expert_scaling"},
      {"fig09", "Throughput vs number of active experts",
       "Mixtral skeleton, batch 16, len 2048, 4xH100",
       "fig09_topk_scaling"},
      {"fig10", "FP16 vs FP8 quantization",
       "Mixtral-8x7B, batch & length sweeps", "fig10_quantization"},
      {"fig11", "Inter vs intra expert pruning",
       "OLMoE & Qwen1.5-MoE, ratios {12.5, 25, 50}%, TopK sweep",
       "fig11_pruning"},
      {"fig12", "Speculative decoding draft-model comparison",
       "Qwen3-30B-A3B target, 4 Qwen3 drafts, input-length & draft-token "
       "sweeps",
       "fig12_specdec"},
      {"fig13", "TP / PP / EP parallelism scaling",
       "Mixtral-8x7B & OLMoE-1B-7B, 1-4 H100", "fig13_parallelism"},
      {"fig14", "Fused vs non-fused MoE",
       "Mixtral-8x7B, batch & length sweeps (+ real CPU kernel timing)",
       "fig14_fused_moe"},
      {"fig15", "Expert activation frequency heatmaps",
       "DeepSeek-VL2 family + MolmoE-1B, MME-scale synthetic trace",
       "fig15_activation_freq"},
      {"fig16", "H100 vs Cerebras CS-3",
       "Llama-4-Scout-17B-16E, length sweep", "fig16_h100_vs_cs3"},
      {"fig17", "Throughput/latency vs accuracy frontier (LLMs)",
       "6 LLMs, lm-eval 8-task average", "fig17_llm_frontier"},
      {"fig18", "Throughput/latency vs accuracy frontier (VLMs)",
       "DeepSeek-VL2 family, VLMEvalKit 8-task average",
       "fig18_vlm_frontier"},
      {"ablate_imbalance", "EP imbalance model on/off",
       "Mixtral-8x7B TP4+EP, skew sweep", "ablate_imbalance"},
      {"ablate_launch", "Kernel-launch overhead vs Fused MoE gain",
       "Mixtral-8x7B, launch-cost sweep", "ablate_launch_overhead"},
      {"ablate_kvcache", "Paged vs contiguous KV admission",
       "OLMoE-1B-7B, mixed-length trace", "ablate_kvcache"},
      {"ablate_scheduler", "Static gang vs continuous batching",
       "OLMoE-1B-7B, mixed-length trace, load sweep", "ablate_scheduler"},
      {"ablate_placement", "Contiguous vs LPT-balanced expert placement",
       "OLMoE-1B-7B TP4+EP, skew sweep", "ablate_placement"},
      {"extra_hw", "MoE inference across GPU generations (extension)",
       "six LLMs on A100 / H100 / H200 / B200", "extra_hw_generations"},
      {"extra_optimization_frontier",
       "Quality vs throughput under combined optimizations (extension)",
       "Mixtral-8x7B, precision x pruning grid",
       "extra_optimization_frontier"},
      {"extra_frontier", "Frontier-scale MoE capacity planning (extension)",
       "DeepSeek-V3 & Kimi-K2 across GPU generations",
       "extra_frontier_capacity"},
      {"extra_energy", "Tokens per joule across devices (extension)",
       "six LLMs x A100/H100/H200/B200 + CS-3 single-stream",
       "extra_energy"},
      {"ablate_prefix", "Prefix caching capacity & TTFT effect",
       "chat workload with a shared system prompt", "ablate_prefix_cache"},
      {"extra_disagg", "Disaggregated prefill/decode serving (extension)",
       "4 LLMs, 2+2 GPU pools vs TP4 co-located", "extra_disaggregation"},
      {"extra_offload", "Expert offloading vs OOM boundaries (extension)",
       "Mixtral fp16 on one H100; residency and skew sweeps",
       "extra_offload"},
      {"extra_fleet", "Multi-replica fleet serving: scaling, SLO capacity, "
       "routing policies, faults (extension)",
       "OLMoE-1B-7B H100 replicas; Poisson traffic, TTFT/ITL SLOs, "
       "replica-failure window",
       "extra_fleet_capacity"},
      {"extra_chaos", "Partial-failure resilience: detection lag, hedging, "
       "KV drain-migration, correlated failures, control-plane redundancy "
       "(extension)",
       "OLMoE-1B-7B H100 replicas; heartbeat detection vs oracle, "
       "straggler hedging, migrate-vs-recompute crossover, 50-seed chaos, "
       "rack-level faults vs independent, phi x heartbeat detector grid, "
       "router fail-over + stale views, striped/overlapped drain",
       "extra_chaos_resilience"},
      {"trace_profile", "Simulated per-op profiler timeline",
       "Mixtral-8x7B TP4, one decode step + one prefill", "trace_profile"},
      {"moe_cpu_kernels", "Functional MoE layer wall-clock (fused vs staged)",
       "google-benchmark on CPU", "moe_cpu_kernels"},
  };
  return v;
}

const ExperimentInfo& experiment(const std::string& id) {
  for (const auto& e : experiments()) {
    if (e.id == id) return e;
  }
  throw ConfigError("unknown experiment id: " + id);
}

}  // namespace mib::core
