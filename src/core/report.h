// Report helpers shared by the benches: uniform figure headers, metric
// formatting, and OOM-tolerant sweep cells.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "common/table.h"
#include "engine/engine.h"

namespace mib::core {

/// Print the standard experiment banner (id, title, workload).
void print_banner(std::ostream& os, const std::string& experiment_id);

/// Run `fn` and format the selected metric; returns "OOM" when the
/// configuration exceeds device memory (the paper's missing data points).
std::string metric_cell(const std::function<engine::RunMetrics()>& fn,
                        const std::function<double(const engine::RunMetrics&)>&
                            metric,
                        int precision = 0);

/// If the MIB_RESULTS_DIR environment variable is set, write the table as
/// CSV to "$MIB_RESULTS_DIR/<stem>.csv" (creating the directory); returns
/// whether a file was written. Lets every bench double as a data exporter
/// for plotting without changing its stdout.
bool maybe_export_csv(const Table& table, const std::string& stem);

/// Common metric selectors.
double throughput_of(const engine::RunMetrics& m);
double ttft_ms_of(const engine::RunMetrics& m);
double itl_ms_of(const engine::RunMetrics& m);
double e2e_s_of(const engine::RunMetrics& m);
double samples_per_s_of(const engine::RunMetrics& m);

}  // namespace mib::core
