#include "core/scenario.h"

#include "common/error.h"
#include "common/string_util.h"

namespace mib::core {

models::ModelConfig Scenario::resolve_model() const {
  if (model_override) return *model_override;
  return models::model_by_name(model);
}

engine::EngineConfig Scenario::engine_config() const {
  MIB_ENSURE(n_devices >= 1, "scenario needs at least one device");
  engine::EngineConfig cfg;
  cfg.model = resolve_model();

  const std::string dev = to_lower(device);
  if (dev == "cs3" || dev == "cs-3") {
    cfg.cluster = hw::Cluster::cs3_system();
  } else {
    const auto spec = dev.empty() ? hw::h100_sxm5() : hw::device_by_name(dev);
    if (n_devices <= 8) {
      cfg.cluster = hw::Cluster(spec, n_devices, hw::nvlink4());
    } else {
      // Beyond one HGX node: NVLink within 8-GPU nodes, InfiniBand across.
      cfg.cluster = hw::Cluster(spec, n_devices, 8, hw::nvlink4(),
                                hw::ib_ndr400());
    }
  }

  cfg.plan = plan;
  if (cfg.plan.devices() == 1 && n_devices > 1) {
    cfg.plan = parallel::tp_plan(n_devices);  // default: TP over the node
  }

  cfg.cost.weight_dtype = weight_dtype;
  cfg.cost.act_dtype = act_dtype;
  cfg.cost.kv_dtype = kv_dtype;
  cfg.cost.fused_moe = fused_moe;
  cfg.cost.routing.zipf_s = routing_skew;
  cfg.cost.ep_balanced_placement = ep_balanced_placement;
  cfg.validate();
  return cfg;
}

engine::RunMetrics Scenario::run() const {
  engine::SimEngine eng(engine_config());
  return eng.run(batch, input_tokens, output_tokens, images_per_request);
}

Scenario Scenario::with_batch(int b) const {
  Scenario s = *this;
  s.batch = b;
  return s;
}

Scenario Scenario::with_lengths(int in, int out) const {
  Scenario s = *this;
  s.input_tokens = in;
  s.output_tokens = out;
  return s;
}

Scenario Scenario::with_dtype(DType w) const {
  Scenario s = *this;
  s.weight_dtype = w;
  return s;
}

Scenario Scenario::with_plan(parallel::ParallelPlan p) const {
  Scenario s = *this;
  s.plan = p;
  return s;
}

Scenario Scenario::with_devices(int n) const {
  Scenario s = *this;
  s.n_devices = n;
  return s;
}

Scenario Scenario::with_model(models::ModelConfig m) const {
  Scenario s = *this;
  s.model_override = std::move(m);
  return s;
}

Scenario Scenario::with_fused(bool fused) const {
  Scenario s = *this;
  s.fused_moe = fused;
  return s;
}

}  // namespace mib::core
