// Scenario — the one-call public API of MoE-Inference-Bench.
//
// A Scenario names a model (or supplies a modified architecture), a
// hardware setup, a parallel plan, precision/fusion knobs and a workload
// shape; run() returns the paper's metrics. Benches and examples are thin
// loops over Scenarios.
#pragma once

#include <optional>
#include <string>

#include "engine/engine.h"
#include "models/zoo.h"

namespace mib::core {

struct Scenario {
  /// Zoo model name (ignored when `model_override` is set).
  std::string model = "OLMoE-1B-7B";
  /// Explicit architecture (hyperparameter-sweep variants, pruned models).
  std::optional<models::ModelConfig> model_override;

  /// "h100", "a100" or "cs3".
  std::string device = "h100";
  int n_devices = 1;

  parallel::ParallelPlan plan{};  ///< defaults to TP over all devices

  DType weight_dtype = DType::kFP16;
  DType act_dtype = DType::kFP16;
  DType kv_dtype = DType::kFP16;
  bool fused_moe = true;
  double routing_skew = 0.0;  ///< Zipf exponent of expert popularity
  /// Balanced (LPT) expert placement under EP instead of contiguous.
  bool ep_balanced_placement = false;

  int batch = 1;
  int input_tokens = 128;
  int output_tokens = 128;
  int images_per_request = 0;

  /// Resolve the architecture this scenario runs.
  models::ModelConfig resolve_model() const;

  /// Build the engine configuration (validates everything).
  engine::EngineConfig engine_config() const;

  /// Execute. Throws OutOfMemoryError for the paper's missing data points.
  engine::RunMetrics run() const;

  // Fluent helpers for sweep loops.
  Scenario with_batch(int b) const;
  Scenario with_lengths(int in, int out) const;
  Scenario with_dtype(DType w) const;
  Scenario with_plan(parallel::ParallelPlan p) const;
  Scenario with_devices(int n) const;
  Scenario with_model(models::ModelConfig m) const;
  Scenario with_fused(bool fused) const;
};

}  // namespace mib::core
