#include "core/report.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/units.h"
#include "core/experiments.h"

namespace mib::core {

void print_banner(std::ostream& os, const std::string& experiment_id) {
  const auto& e = experiment(experiment_id);
  os << "================================================================\n"
     << "MoE-Inference-Bench " << e.id << ": " << e.title << "\n"
     << "workload: " << e.workload << "\n"
     << "================================================================\n";
}

std::string metric_cell(
    const std::function<engine::RunMetrics()>& fn,
    const std::function<double(const engine::RunMetrics&)>& metric,
    int precision) {
  try {
    return format_fixed(metric(fn()), precision);
  } catch (const OutOfMemoryError&) {
    return "OOM";
  }
}

bool maybe_export_csv(const Table& table, const std::string& stem) {
  const char* dir = std::getenv("MIB_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::filesystem::create_directories(dir);
  const auto path = std::filesystem::path(dir) / (stem + ".csv");
  std::ofstream out(path);
  MIB_ENSURE(out.good(), "cannot open " << path.string() << " for writing");
  table.print_csv(out);
  return true;
}

double throughput_of(const engine::RunMetrics& m) {
  return m.throughput_tok_s;
}

double ttft_ms_of(const engine::RunMetrics& m) { return to_ms(m.ttft_s); }

double itl_ms_of(const engine::RunMetrics& m) { return to_ms(m.itl_s); }

double e2e_s_of(const engine::RunMetrics& m) { return m.e2e_s; }

double samples_per_s_of(const engine::RunMetrics& m) {
  return m.samples_per_s;
}

}  // namespace mib::core
