// Accuracy impact of inference-time optimizations.
//
// The paper evaluates throughput effects of quantization and pruning
// (§6.1-6.2) and accuracy of unmodified models (§8); this module closes
// the loop with documented accuracy *deltas* per optimization so the
// frontier benches can show quality-vs-speed trade-offs. Deltas are
// calibrated from the public literature the paper cites:
//   * FP8 (e4m3, per-tensor):   ~-0.1 pt average (Kuzmin et al.; vLLM fp8)
//   * INT8 weight-only per-row: ~-0.3 pt
//   * INT4 g128 (GPTQ/AWQ):     ~-1.2 pt
//   * inter-expert pruning:     Lu et al. 2024 report steep drops past 25%
//   * intra-expert pruning:     MoE-I2 (Yang et al. 2024), gentler slope
// Absolute values are approximations; the *ordering* and convexity are the
// tested invariants.
#pragma once

#include "common/dtype.h"

namespace mib::accuracy {

/// Average-accuracy delta (percentage points, <= 0) from running weights
/// at `dt` instead of fp16.
double quantization_accuracy_delta(DType dt);

/// Delta from removing `ratio` of the experts (inter-expert pruning).
double inter_expert_prune_accuracy_delta(double ratio);

/// Delta from shrinking every expert's FFN by `ratio` (intra-expert).
double intra_expert_prune_accuracy_delta(double ratio);

}  // namespace mib::accuracy
