// Accuracy registry for the paper's §8 quality-vs-efficiency frontiers.
//
// We cannot execute lm-eval / VLMEvalKit without model weights, so per-task
// accuracies are constants taken from the models' published evaluations
// (model cards / technical reports; approximate to ~1 point). The
// throughput/latency axes of Figs. 17/18 come from the simulator; only the
// accuracy axis is tabulated. MME raw scores (0–2800) are normalized to a
// percentage so task averages are comparable, matching common practice.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mib::accuracy {

/// lm-eval language-understanding tasks used in §8.1.
const std::vector<std::string>& llm_tasks();
/// VLMEvalKit tasks used in §8.2.
const std::vector<std::string>& vlm_tasks();

/// Accuracy (0–100) of `model` on `task`; nullopt when not tabulated.
std::optional<double> task_accuracy(const std::string& model,
                                    const std::string& task);

/// Mean accuracy over the given tasks; throws if any is missing.
double average_accuracy(const std::string& model,
                        const std::vector<std::string>& tasks);

/// Models with a complete row for the LLM / VLM task sets.
std::vector<std::string> models_with_llm_scores();
std::vector<std::string> models_with_vlm_scores();

}  // namespace mib::accuracy
