#include "accuracy/optimization_impact.h"

#include <cmath>

#include "common/error.h"

namespace mib::accuracy {

double quantization_accuracy_delta(DType dt) {
  switch (dt) {
    case DType::kFP32:
    case DType::kFP16:
    case DType::kBF16:
      return 0.0;
    case DType::kFP8E4M3:
      return -0.1;
    case DType::kFP8E5M2:
      return -0.4;  // 2 mantissa bits hurt weights more than e4m3
    case DType::kINT8:
      return -0.3;
    case DType::kINT4:
      return -1.2;
  }
  return 0.0;
}

double inter_expert_prune_accuracy_delta(double ratio) {
  MIB_ENSURE(ratio >= 0.0 && ratio < 1.0, "prune ratio out of [0,1)");
  // Lu et al.: removing a few experts is cheap, past ~25% quality falls off
  // quickly (specialized experts disappear). Quadratic-plus-cubic fit with
  // ~-2 pt at 25% and ~-10 pt at 50%.
  return -(8.0 * ratio * ratio + 48.0 * ratio * ratio * ratio);
}

double intra_expert_prune_accuracy_delta(double ratio) {
  MIB_ENSURE(ratio >= 0.0 && ratio < 1.0, "prune ratio out of [0,1)");
  // Magnitude channel pruning degrades more gently (low-importance
  // channels carry little signal): ~-1 pt at 25%, ~-5 pt at 50%.
  return -(4.0 * ratio * ratio + 24.0 * ratio * ratio * ratio);
}

}  // namespace mib::accuracy
