#include "accuracy/registry.h"

#include <map>

#include "common/error.h"

namespace mib::accuracy {

const std::vector<std::string>& llm_tasks() {
  static const std::vector<std::string> v = {
      "arc_challenge", "arc_easy",     "boolq", "hellaswag",
      "mmlu",          "openbookqa",   "rte",   "winogrande"};
  return v;
}

const std::vector<std::string>& vlm_tasks() {
  static const std::vector<std::string> v = {
      "mme",    "textvqa", "ai2d",        "docvqa",
      "mmmu",   "infovqa", "realworldqa", "scienceqa"};
  return v;
}

namespace {

using ScoreMap = std::map<std::string, std::map<std::string, double>>;

// Approximate published scores (0–100); MME normalized by /28.
const ScoreMap& scores() {
  static const ScoreMap m = {
      {"Mixtral-8x7B",
       {{"arc_challenge", 59.7},
        {"arc_easy", 83.4},
        {"boolq", 85.2},
        {"hellaswag", 84.0},
        {"mmlu", 70.6},
        {"openbookqa", 47.0},
        {"rte", 71.1},
        {"winogrande", 76.2}}},
      {"Qwen1.5-MoE-A2.7B",
       {{"arc_challenge", 48.0},
        {"arc_easy", 74.9},
        {"boolq", 79.8},
        {"hellaswag", 75.3},
        {"mmlu", 62.5},
        {"openbookqa", 42.4},
        {"rte", 68.2},
        {"winogrande", 68.4}}},
      {"Qwen3-30B-A3B",
       {{"arc_challenge", 63.2},
        {"arc_easy", 85.1},
        {"boolq", 88.3},
        {"hellaswag", 83.6},
        {"mmlu", 79.2},
        {"openbookqa", 46.8},
        {"rte", 80.1},
        {"winogrande", 75.0}}},
      {"DeepSeek-V2-Lite",
       {{"arc_challenge", 48.2},
        {"arc_easy", 76.2},
        {"boolq", 80.3},
        {"hellaswag", 77.0},
        {"mmlu", 58.3},
        {"openbookqa", 41.2},
        {"rte", 65.0},
        {"winogrande", 71.3}}},
      {"Phi-3.5-MoE",
       {{"arc_challenge", 62.7},
        {"arc_easy", 85.8},
        {"boolq", 86.1},
        {"hellaswag", 81.2},
        {"mmlu", 78.9},
        {"openbookqa", 48.2},
        {"rte", 77.6},
        {"winogrande", 74.1}}},
      {"OLMoE-1B-7B",
       {{"arc_challenge", 49.2},
        {"arc_easy", 77.4},
        {"boolq", 76.8},
        {"hellaswag", 78.0},
        {"mmlu", 54.1},
        {"openbookqa", 44.0},
        {"rte", 62.1},
        {"winogrande", 67.9}}},
      {"DeepSeek-VL2-Tiny",
       {{"mme", 68.4},
        {"textvqa", 80.7},
        {"ai2d", 71.6},
        {"docvqa", 88.9},
        {"mmmu", 40.7},
        {"infovqa", 66.1},
        {"realworldqa", 64.2},
        {"scienceqa", 84.5}}},
      {"DeepSeek-VL2-Small",
       {{"mme", 75.8},
        {"textvqa", 83.4},
        {"ai2d", 80.0},
        {"docvqa", 92.3},
        {"mmmu", 48.0},
        {"infovqa", 75.8},
        {"realworldqa", 68.4},
        {"scienceqa", 92.6}}},
      {"DeepSeek-VL2",
       {{"mme", 80.5},
        {"textvqa", 84.2},
        {"ai2d", 81.4},
        {"docvqa", 93.3},
        {"mmmu", 51.1},
        {"infovqa", 78.1},
        {"realworldqa", 68.4},
        {"scienceqa", 92.2}}},
  };
  return m;
}

bool has_all(const std::string& model, const std::vector<std::string>& tasks) {
  const auto it = scores().find(model);
  if (it == scores().end()) return false;
  for (const auto& t : tasks) {
    if (it->second.find(t) == it->second.end()) return false;
  }
  return true;
}

}  // namespace

std::optional<double> task_accuracy(const std::string& model,
                                    const std::string& task) {
  const auto it = scores().find(model);
  if (it == scores().end()) return std::nullopt;
  const auto jt = it->second.find(task);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

double average_accuracy(const std::string& model,
                        const std::vector<std::string>& tasks) {
  MIB_ENSURE(!tasks.empty(), "no tasks given");
  double acc = 0.0;
  for (const auto& t : tasks) {
    const auto s = task_accuracy(model, t);
    MIB_ENSURE(s.has_value(), "no score for " << model << " on " << t);
    acc += *s;
  }
  return acc / static_cast<double>(tasks.size());
}

std::vector<std::string> models_with_llm_scores() {
  std::vector<std::string> out;
  for (const auto& [model, row] : scores()) {
    if (has_all(model, llm_tasks())) out.push_back(model);
  }
  return out;
}

std::vector<std::string> models_with_vlm_scores() {
  std::vector<std::string> out;
  for (const auto& [model, row] : scores()) {
    if (has_all(model, vlm_tasks())) out.push_back(model);
  }
  return out;
}

}  // namespace mib::accuracy
