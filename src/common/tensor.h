// Minimal dense float tensor used by the *functional* MoE layer.
//
// This is deliberately small: row-major, float32 storage, 64-byte aligned,
// rank 1–3. It exists so that the functional router/expert code is real,
// testable numerics rather than pseudo-code — not to compete with BLAS.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mib {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  /// Tensor filled with a constant.
  static Tensor full(std::vector<std::size_t> shape, float value);
  static Tensor zeros(std::vector<std::size_t> shape);
  /// I.i.d. normal entries scaled by `scale` (Xavier-ish init for tests).
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      float scale = 1.0f);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Element access (rank-checked in debug via MIB_ENSURE).
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;

  /// Row view of a rank-2 tensor.
  std::span<float> row(std::size_t i);
  std::span<const float> row(std::size_t i) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// C[m,n] = A[m,k] * B[k,n]. B may optionally be interpreted transposed
/// (B[n,k]) which matches how weight matrices are stored for cache-friendly
/// dot products.
void matmul(const Tensor& a, const Tensor& b, Tensor& out,
            bool b_transposed = false);

/// y += x (element-wise); shapes must match.
void add_inplace(Tensor& y, const Tensor& x);

/// Scale all elements.
void scale_inplace(Tensor& y, float s);

/// SiLU activation x * sigmoid(x), element-wise, in place.
void silu_inplace(Tensor& y);

/// Row-wise softmax of a rank-2 tensor, in place. Numerically stable.
void softmax_rows_inplace(Tensor& y);

/// Max absolute element difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Frobenius norm.
float frobenius_norm(const Tensor& a);

}  // namespace mib
