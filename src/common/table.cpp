#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace mib {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::new_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  MIB_ENSURE(!rows_.empty(), "cell() before new_row()");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
  return *this;
}

std::size_t Table::columns() const {
  std::size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  return cols;
}

void Table::print(std::ostream& os) const {
  const std::size_t cols = columns();
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  measure(headers_);
  for (const auto& r : rows_) measure(r);

  auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << ' ' << v << std::string(width[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  if (!headers_.empty()) {
    print_row(headers_);
    hline();
  }
  for (const auto& r : rows_) print_row(r);
  hline();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote =
          row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  if (!headers_.empty()) emit(headers_);
  for (const auto& r : rows_) emit(r);
}

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

}  // namespace mib
