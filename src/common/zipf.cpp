#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  MIB_ENSURE(n > 0, "ZipfSampler needs non-empty support");
  MIB_ENSURE(s >= 0.0, "Zipf exponent must be non-negative, got " << s);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  MIB_ENSURE(k < cdf_.size(), "Zipf pmf index out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace mib
