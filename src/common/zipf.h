// Zipf-distributed sampling over {0, ..., n-1}.
//
// Used to model skewed token-to-expert routing (the MolmoE-1B pattern in the
// paper's Fig. 15) and skewed request-length distributions. P(k) ∝ 1/(k+1)^s.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace mib {

/// Precomputed-CDF Zipf sampler. O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  /// n: support size; s: exponent (s = 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank k (0-based).
  double pmf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // inclusive cumulative probabilities
};

}  // namespace mib
