#include "common/string_util.h"

#include <cctype>
#include <sstream>

#include "common/table.h"
#include "common/units.h"

namespace mib {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream iss(s);
  while (std::getline(iss, token, delim)) out.push_back(token);
  if (!s.empty() && s.back() == delim) out.emplace_back();
  return out;
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string format_param_count(double params) {
  if (params >= 1e9) return format_fixed(params / 1e9, 1) + "B";
  if (params >= 1e6) return format_fixed(params / 1e6, 1) + "M";
  if (params >= 1e3) return format_fixed(params / 1e3, 1) + "K";
  return format_fixed(params, 0);
}

std::string format_bytes(double bytes) {
  if (bytes >= kGiB) return format_fixed(bytes / kGiB, 2) + " GiB";
  if (bytes >= kMiB) return format_fixed(bytes / kMiB, 2) + " MiB";
  if (bytes >= kKiB) return format_fixed(bytes / kKiB, 2) + " KiB";
  return format_fixed(bytes, 0) + " B";
}

}  // namespace mib
