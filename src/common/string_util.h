// Small string helpers shared by benches and report printers.
#pragma once

#include <string>
#include <vector>

namespace mib {

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Split on a single-character delimiter (no empty-token suppression).
std::vector<std::string> split(const std::string& s, char delim);

/// Lower-case ASCII copy.
std::string to_lower(const std::string& s);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable parameter count: 1.3e9 -> "1.3B", 350e6 -> "350.0M".
std::string format_param_count(double params);

/// Human-readable byte count in GiB/MiB.
std::string format_bytes(double bytes);

}  // namespace mib
