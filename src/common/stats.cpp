#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size()));
}

double Samples::min() const {
  if (xs_.empty()) return 0.0;
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  if (xs_.empty()) return 0.0;
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::percentile(double p) const {
  MIB_ENSURE(p >= 0.0 && p <= 100.0, "percentile p out of range: " << p);
  if (xs_.empty()) return 0.0;
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MIB_ENSURE(hi > lo, "histogram range must be non-empty");
  MIB_ENSURE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  MIB_ENSURE(!std::isnan(x), "histogram sample is NaN");
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  MIB_ENSURE(i < counts_.size(), "histogram bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double coefficient_of_variation(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return 0.0;
  double mean = 0.0;
  for (auto c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  if (mean == 0.0) return 0.0;
  double var = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(counts.size());
  return std::sqrt(var) / mean;
}

double max_over_mean(const std::vector<std::uint64_t>& counts) {
  if (counts.empty()) return 1.0;
  double mean = 0.0;
  std::uint64_t mx = 0;
  for (auto c : counts) {
    mean += static_cast<double>(c);
    mx = std::max(mx, c);
  }
  mean /= static_cast<double>(counts.size());
  if (mean == 0.0) return 1.0;
  return static_cast<double>(mx) / mean;
}

}  // namespace mib
