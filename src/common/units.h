// Unit helpers. All internal quantities use SI base units: seconds, bytes,
// FLOPs. Helpers convert to the display units used by the paper (ms, GiB,
// tokens/s, TFLOP/s).
#pragma once

#include <cstdint>

namespace mib {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;

inline constexpr double kTFLOPS = 1e12;
inline constexpr double kPFLOPS = 1e15;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;

/// Seconds -> milliseconds.
constexpr double to_ms(double seconds) { return seconds * 1e3; }
/// Seconds -> microseconds.
constexpr double to_us(double seconds) { return seconds * 1e6; }
/// Bytes -> GiB.
constexpr double to_gib(double bytes) { return bytes / kGiB; }
/// Bytes -> GB (decimal).
constexpr double to_gb(double bytes) { return bytes / kGB; }

}  // namespace mib
