#include "common/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib {

namespace {
std::size_t shape_size(const std::vector<std::size_t>& shape) {
  std::size_t n = shape.empty() ? 0 : 1;
  for (std::size_t d : shape) {
    MIB_ENSURE(d > 0, "tensor dimensions must be positive");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {
  MIB_ENSURE(shape_.size() >= 1 && shape_.size() <= 3,
             "tensor rank must be 1..3, got " << shape_.size());
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::zeros(std::vector<std::size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float scale) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.normal()) * scale;
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  MIB_ENSURE(i < shape_.size(), "dim index " << i << " out of rank "
                                             << shape_.size());
  return shape_[i];
}

float& Tensor::at(std::size_t i) {
  MIB_ENSURE(i < data_.size(), "flat index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  MIB_ENSURE(i < data_.size(), "flat index out of range");
  return data_[i];
}

float& Tensor::at(std::size_t i, std::size_t j) {
  MIB_ENSURE(rank() == 2, "2-index access on rank-" << rank() << " tensor");
  MIB_ENSURE(i < shape_[0] && j < shape_[1], "index out of range");
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

std::span<float> Tensor::row(std::size_t i) {
  MIB_ENSURE(rank() == 2, "row() requires rank-2 tensor");
  MIB_ENSURE(i < shape_[0], "row index out of range");
  return {data_.data() + i * shape_[1], shape_[1]};
}

std::span<const float> Tensor::row(std::size_t i) const {
  return const_cast<Tensor*>(this)->row(i);
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out, bool b_transposed) {
  MIB_ENSURE(a.rank() == 2 && b.rank() == 2, "matmul requires rank-2 inputs");
  const std::size_t m = a.dim(0);
  const std::size_t k = a.dim(1);
  const std::size_t n = b_transposed ? b.dim(0) : b.dim(1);
  const std::size_t bk = b_transposed ? b.dim(1) : b.dim(0);
  MIB_ENSURE(bk == k, "matmul inner dimension mismatch: " << k << " vs " << bk);
  if (out.rank() != 2 || out.dim(0) != m || out.dim(1) != n) {
    out = Tensor({m, n});
  }

  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();

  if (b_transposed) {
    // out[i][j] = dot(a.row(i), b.row(j)) — both rows contiguous.
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = ap + i * k;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = bp + j * k;
        float acc = 0.0f;
        for (std::size_t t = 0; t < k; ++t) acc += arow[t] * brow[t];
        op[i * n + j] = acc;
      }
    }
  } else {
    // ikj loop order: streams through b and out rows.
    std::fill(op, op + m * n, 0.0f);
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = ap + i * k;
      float* orow = op + i * n;
      for (std::size_t t = 0; t < k; ++t) {
        const float av = arow[t];
        if (av == 0.0f) continue;
        const float* brow = bp + t * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

void add_inplace(Tensor& y, const Tensor& x) {
  MIB_ENSURE(y.same_shape(x), "add_inplace shape mismatch");
  float* yp = y.data();
  const float* xp = x.data();
  for (std::size_t i = 0, n = y.size(); i < n; ++i) yp[i] += xp[i];
}

void scale_inplace(Tensor& y, float s) {
  for (float& v : y.flat()) v *= s;
}

void silu_inplace(Tensor& y) {
  for (float& v : y.flat()) v = v / (1.0f + std::exp(-v));
}

void softmax_rows_inplace(Tensor& y) {
  MIB_ENSURE(y.rank() == 2, "softmax_rows requires rank-2 tensor");
  for (std::size_t i = 0; i < y.dim(0); ++i) {
    auto row = y.row(i);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (float& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (float& v : row) v /= sum;
  }
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  MIB_ENSURE(a.same_shape(b), "max_abs_diff shape mismatch");
  float mx = 0.0f;
  const float* ap = a.data();
  const float* bp = b.data();
  for (std::size_t i = 0, n = a.size(); i < n; ++i) {
    mx = std::max(mx, std::abs(ap[i] - bp[i]));
  }
  return mx;
}

float frobenius_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

}  // namespace mib
