// Small online/offline statistics helpers used by the engine (latency
// distributions), the router (activation histograms) and the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mib {

/// Welford online accumulator: mean / variance / min / max without storing
/// the samples.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Offline sample set with percentile queries (used for ITL distributions).
///
/// All queries are total on the empty set: mean/stddev/min/max/percentile
/// of zero samples return 0.0 (a fleet report with every request rejected
/// still renders). Only percentile() with p outside [0, 100] throws.
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0, 100]; 0.0 on empty sets.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  // SLO-report shorthands.
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
};

/// Fixed-width histogram over [lo, hi); samples outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Coefficient of variation (stddev / mean) of a count vector; used for
/// expert load-balance reporting. Returns 0 for an all-zero vector.
double coefficient_of_variation(const std::vector<std::uint64_t>& counts);

/// max(counts) / mean(counts): the load-imbalance factor across experts or
/// devices. Returns 1.0 for an all-zero or empty vector.
double max_over_mean(const std::vector<std::uint64_t>& counts);

}  // namespace mib
