// Fixed-size thread pool with a blocking task queue plus a parallel_for
// helper used by the functional MoE layer (parallel expert execution).
//
// Design notes (per C++ Core Guidelines CP.*): tasks are type-erased
// std::move_only_function-like closures; the pool owns its threads (RAII) and
// joins on destruction; parallel_for uses static block partitioning, which is
// the right choice for the uniform per-token work in an FFN.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mib {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a fire-and-forget task.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Exceptions from tasks are captured and the first one is rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool for library internals.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace mib
