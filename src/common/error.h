// Error handling primitives for MoE-Inference-Bench.
//
// Following the C++ Core Guidelines (E.2, E.3) we use exceptions for error
// reporting and reserve assertions for programmer errors. MIB_ENSURE is the
// project-wide precondition / invariant check: it throws mib::Error with a
// formatted message including the failing expression and source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mib {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a simulated configuration exceeds device memory.
/// Benches catch this to print the paper's "missing data point = OOM" rows.
class OutOfMemoryError : public Error {
 public:
  OutOfMemoryError(const std::string& what, double required_gib,
                   double available_gib)
      : Error(what),
        required_gib_(required_gib),
        available_gib_(available_gib) {}

  double required_gib() const { return required_gib_; }
  double available_gib() const { return available_gib_; }

 private:
  double required_gib_;
  double available_gib_;
};

/// Thrown when a model / plan / scenario configuration is self-inconsistent.
class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_ensure_failure(const char* expr, const char* file,
                                       int line, const std::string& msg);
}  // namespace detail

}  // namespace mib

/// Precondition / invariant check that throws mib::Error on failure.
/// Usage: MIB_ENSURE(x > 0, "x must be positive, got " << x);
#define MIB_ENSURE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mib_ensure_oss_;                                  \
      mib_ensure_oss_ << msg; /* NOLINT */                                 \
      ::mib::detail::throw_ensure_failure(#expr, __FILE__, __LINE__,       \
                                          mib_ensure_oss_.str());          \
    }                                                                      \
  } while (false)
