// ASCII / CSV table writer: every bench prints its figure's rows through
// this so the output format matches across the suite.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mib {

/// Column-aligned text table with an optional title, rendered to an ostream.
/// Cells are strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title = "");

  Table& set_headers(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& new_row();
  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(long long value);
  Table& cell(std::size_t value);
  Table& cell(int value);

  /// Append a full row at once.
  Table& add_row(std::vector<std::string> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const;

  /// Render as an aligned text table.
  void print(std::ostream& os) const;
  /// Render as CSV (headers + rows).
  void print_csv(std::ostream& os) const;

  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }
  const std::vector<std::string>& headers() const { return headers_; }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with benches).
std::string format_fixed(double value, int precision);

}  // namespace mib
