// Deterministic random number generation.
//
// All stochastic components (router logits, workload sampling, synthetic
// traces) consume an explicit Rng so every experiment is reproducible from a
// seed printed in its header. The generator is xoshiro256** seeded via
// splitmix64 (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>
#include <vector>

namespace mib {

/// splitmix64 step — used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with a std::uniform_random_bit_generator-compatible
/// interface plus the convenience distributions this project needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box–Muller (cached second variate).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Sample an index from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Spawn an independent stream (for per-thread / per-layer generators).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mib
