// Numeric data types shared across the hardware model, quantization library
// and the serving engine. The enum carries storage width; compute peaks per
// dtype live in hw::DeviceSpec.
#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"

namespace mib {

enum class DType {
  kFP32,
  kFP16,
  kBF16,
  kFP8E4M3,
  kFP8E5M2,
  kINT8,
  kINT4,
};

/// Storage size in bytes; INT4 reports 0.5 via bits_of().
constexpr double bytes_of(DType dt) {
  switch (dt) {
    case DType::kFP32:
      return 4.0;
    case DType::kFP16:
    case DType::kBF16:
      return 2.0;
    case DType::kFP8E4M3:
    case DType::kFP8E5M2:
    case DType::kINT8:
      return 1.0;
    case DType::kINT4:
      return 0.5;
  }
  return 4.0;  // unreachable
}

constexpr int bits_of(DType dt) {
  return static_cast<int>(bytes_of(dt) * 8.0);
}

inline std::string dtype_name(DType dt) {
  switch (dt) {
    case DType::kFP32:
      return "fp32";
    case DType::kFP16:
      return "fp16";
    case DType::kBF16:
      return "bf16";
    case DType::kFP8E4M3:
      return "fp8_e4m3";
    case DType::kFP8E5M2:
      return "fp8_e5m2";
    case DType::kINT8:
      return "int8";
    case DType::kINT4:
      return "int4";
  }
  return "unknown";
}

inline DType dtype_from_name(const std::string& name) {
  if (name == "fp32") return DType::kFP32;
  if (name == "fp16") return DType::kFP16;
  if (name == "bf16") return DType::kBF16;
  if (name == "fp8" || name == "fp8_e4m3") return DType::kFP8E4M3;
  if (name == "fp8_e5m2") return DType::kFP8E5M2;
  if (name == "int8") return DType::kINT8;
  if (name == "int4") return DType::kINT4;
  throw ConfigError("unknown dtype name: " + name);
}

}  // namespace mib
