#include "common/error.h"

namespace mib::detail {

void throw_ensure_failure(const char* expr, const char* file, int line,
                          const std::string& msg) {
  std::ostringstream oss;
  oss << "MIB_ENSURE failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace mib::detail
