#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/error.h"

namespace mib {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MIB_ENSURE(task != nullptr, "null task submitted to thread pool");
  {
    std::lock_guard lock(mu_);
    MIB_ENSURE(!stop_, "submit on stopped thread pool");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // tasks wrap their own exception handling (see parallel_for)
    {
      std::lock_guard lock(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nthreads = thread_count();
  if (n == 1 || nthreads == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t blocks = std::min(n, nthreads * 2);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::atomic<std::size_t> remaining{0};
  std::exception_ptr first_error = nullptr;
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  for (std::size_t b = begin; b < end; b += chunk) {
    ++launched;
  }
  remaining.store(launched);

  for (std::size_t b = begin; b < end; b += chunk) {
    const std::size_t lo = b;
    const std::size_t hi = std::min(end, b + chunk);
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mu);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mib
