#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace mib {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four 64-bit words from splitmix64 per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MIB_ENSURE(lo <= hi, "invalid uniform range [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  MIB_ENSURE(n > 0, "uniform_index requires n > 0");
  // Rejection-free multiply-shift (Lemire); the tiny bias is irrelevant for
  // simulation workloads but we keep the top bits which are the best ones.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next()) * n) >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  MIB_ENSURE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  MIB_ENSURE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    MIB_ENSURE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MIB_ENSURE(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: r == total
}

Rng Rng::split() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

}  // namespace mib
