#include "specdec/acceptance.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "models/params.h"

namespace mib::specdec {

double expected_tokens_per_cycle(double alpha, int draft_tokens) {
  MIB_ENSURE(alpha >= 0.0 && alpha < 1.0, "alpha must be in [0, 1)");
  MIB_ENSURE(draft_tokens >= 0, "negative draft token count");
  if (draft_tokens == 0) return 1.0;  // plain decoding: one token per step
  if (alpha == 0.0) return 1.0;
  return (1.0 - std::pow(alpha, draft_tokens + 1)) / (1.0 - alpha);
}

namespace {
/// Calibration table for Qwen3 drafts against Qwen3-30B-A3B (paper Fig. 12).
const std::vector<std::pair<std::string, double>> kQwen3Alphas = {
    {"Qwen3-0.6B", 0.55},
    {"Qwen3-1.7B", 0.72},
    {"Qwen3-4B", 0.76},
    {"Qwen3-8B", 0.78},
};
}  // namespace

double acceptance_from_size(double draft_total_params) {
  MIB_ENSURE(draft_total_params > 0, "draft must have parameters");
  const double b = draft_total_params / 1e9;
  return std::clamp(0.80 - 0.35 * std::exp(-b / 1.5), 0.30, 0.90);
}

double default_acceptance(const models::ModelConfig& draft,
                          const models::ModelConfig& target) {
  MIB_ENSURE(draft.vocab == target.vocab,
             "speculative decoding requires a shared vocabulary: " +
                 draft.name + " vs " + target.name);
  for (const auto& [name, alpha] : kQwen3Alphas) {
    if (draft.name == name) return alpha;
  }
  return acceptance_from_size(models::total_params(draft));
}

}  // namespace mib::specdec
