// Draft-token acceptance model for speculative decoding (§6.3).
//
// The per-token acceptance rate alpha is the probability the target model
// keeps a draft token. With k speculated tokens per cycle, the expected
// number of tokens emitted per cycle (accepted prefix + the target's own
// corrected/bonus token) is the standard geometric sum
//     E[k, alpha] = (1 - alpha^(k+1)) / (1 - alpha).
// Alphas for the Qwen3 draft family are calibrated to the paper's relative
// throughput ordering (1.7B leader; 0.6B trailing by 25-35%); the generic
// fallback follows the empirical pattern that acceptance grows with draft
// capacity with diminishing returns.
#pragma once

#include "models/config.h"

namespace mib::specdec {

/// Expected tokens emitted per speculation cycle.
double expected_tokens_per_cycle(double alpha, int draft_tokens);

/// Calibrated acceptance for a (draft, target) pair. Same-family pairs use
/// the calibration table; unknown pairs use the size-based fallback.
double default_acceptance(const models::ModelConfig& draft,
                          const models::ModelConfig& target);

/// Size-based fallback: alpha in [0.30, 0.90] growing with draft size.
double acceptance_from_size(double draft_total_params);

}  // namespace mib::specdec
