#include "specdec/specdec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/table.h"
#include "common/units.h"

namespace mib::specdec {

void SpecDecConfig::validate() const {
  target.validate();
  draft.validate();
  MIB_ENSURE(draft_tokens >= 0, "negative draft token count");
  MIB_ENSURE(draft.model.vocab == target.model.vocab,
             "draft and target must share a vocabulary (" + draft.model.name +
                 " vs " + target.model.name + ")");
}

SpecDecSimulator::SpecDecSimulator(SpecDecConfig cfg)
    : cfg_(std::move(cfg)), target_(cfg_.target), draft_(cfg_.draft) {
  cfg_.validate();
}

SpecDecMetrics SpecDecSimulator::run(int batch, int input_tokens,
                                     int output_tokens) const {
  MIB_ENSURE(batch >= 1, "batch must be >= 1");
  MIB_ENSURE(input_tokens >= 1 && output_tokens >= 1,
             "token counts must be >= 1");

  if (cfg_.enforce_memory) {
    // Both models live on the target's cluster: combined weights plus both
    // KV caches for the batch's full context must fit.
    const auto& tm = target_.memory_model();
    const auto& dm = draft_.memory_model();
    const double ctx = input_tokens + output_tokens;
    const double need =
        tm.weight_bytes_per_device() + dm.weight_bytes_per_device() +
        batch * ctx *
            (tm.kv_bytes_per_token_per_device() +
             dm.kv_bytes_per_token_per_device()) +
        tm.activation_bytes(input_tokens);
    const double have = cfg_.target.cluster.device().usable_mem();
    if (need > have) {
      throw OutOfMemoryError(
          cfg_.target.model.name + " + draft " + cfg_.draft.model.name +
              ": speculative pair needs " + format_fixed(need / kGiB, 1) +
              " GiB > " + format_fixed(have / kGiB, 1) + " GiB",
          need / kGiB, have / kGiB);
    }
  }

  SpecDecMetrics m;
  m.alpha = cfg_.acceptance > 0.0
                ? cfg_.acceptance
                : default_acceptance(cfg_.draft.model, cfg_.target.model);
  const int k = cfg_.draft_tokens;
  m.tokens_per_cycle = expected_tokens_per_cycle(m.alpha, k);

  // Both models prefill the prompt (the draft needs its own KV cache).
  const auto& tcost = target_.cost_model();
  const auto& dcost = draft_.cost_model();
  const double target_prefill = tcost.prefill(batch, input_tokens).total();
  const double draft_prefill = dcost.prefill(batch, input_tokens).total();
  m.ttft_s = target_prefill + draft_prefill;

  // Steady-state cycle at mid-generation context.
  const double mid_ctx = input_tokens + 0.5 * output_tokens;
  double cycle = 0.0;
  if (k > 0) {
    // k sequential draft decode steps.
    cycle += k * dcost.decode_step(batch, mid_ctx).total();
    // Target verify: batch-expanded forward over (k + 1) positions per
    // sequence — weights read once, KV read (k + 1) times.
    cycle += tcost.decode_step(batch * (k + 1), mid_ctx).total();
    // Proposal bookkeeping / KV rollback per speculated token.
    cycle += k * tcost.cluster().device().step_overhead * 0.5;
  } else {
    cycle = tcost.decode_step(batch, mid_ctx).total();
  }
  m.cycle_s = cycle;

  const double gen_tokens = static_cast<double>(output_tokens);
  const double cycles = std::max(0.0, (gen_tokens - 1.0)) / m.tokens_per_cycle;
  const double decode_time = cycles * cycle;
  m.e2e_s = m.ttft_s + decode_time;

  const double total_tokens =
      static_cast<double>(batch) * (input_tokens + output_tokens);
  m.throughput_tok_s = total_tokens / m.e2e_s;
  m.decode_tok_s = decode_time > 0.0
                       ? static_cast<double>(batch) * (gen_tokens - 1.0) /
                             decode_time
                       : 0.0;

  // Plain decoding baseline on the target engine.
  const double plain_step = tcost.decode_step(batch, mid_ctx).total();
  m.speedup_vs_plain =
      plain_step > 0.0 && cycle > 0.0
          ? (m.tokens_per_cycle / cycle) / (1.0 / plain_step)
          : 1.0;
  return m;
}

}  // namespace mib::specdec
