// Speculative-decoding throughput simulation (§6.3).
//
// One speculation cycle = k sequential draft decode steps + one target
// verification pass. Verification uses batch expansion (vLLM's scoring
// path): the target runs a decode-like forward over batch x (k + 1)
// positions, so its KV reads scale with k — the "validation overhead" the
// paper observes growing with the draft-token count.
#pragma once

#include "engine/engine.h"
#include "specdec/acceptance.h"

namespace mib::specdec {

struct SpecDecConfig {
  engine::EngineConfig target;
  engine::EngineConfig draft;
  int draft_tokens = 4;
  /// Per-token acceptance; <= 0 selects default_acceptance(draft, target).
  double acceptance = -1.0;
  /// Check that target + draft weights and both KV caches fit the target's
  /// cluster (they share the device in a real deployment).
  bool enforce_memory = true;

  void validate() const;
};

struct SpecDecMetrics {
  double alpha = 0.0;             ///< acceptance rate used
  double tokens_per_cycle = 0.0;  ///< expected emitted tokens per cycle
  double cycle_s = 0.0;           ///< draft steps + verify, steady state
  double ttft_s = 0.0;            ///< target prefill + draft prefill
  double e2e_s = 0.0;
  double throughput_tok_s = 0.0;  ///< paper eq. (2)
  double decode_tok_s = 0.0;      ///< generated tokens per second
  double speedup_vs_plain = 0.0;  ///< decode speedup over non-speculative
};

class SpecDecSimulator {
 public:
  explicit SpecDecSimulator(SpecDecConfig cfg);

  const SpecDecConfig& config() const { return cfg_; }

  SpecDecMetrics run(int batch, int input_tokens, int output_tokens) const;

 private:
  SpecDecConfig cfg_;
  engine::SimEngine target_;
  engine::SimEngine draft_;
};

}  // namespace mib::specdec
