#include "hw/cluster.h"

#include "common/error.h"

namespace mib::hw {

Cluster::Cluster(DeviceSpec device, int n_devices, LinkSpec intra_link)
    : Cluster(std::move(device), n_devices, n_devices, std::move(intra_link),
              ib_ndr400()) {}

Cluster::Cluster(DeviceSpec device, int n_devices, int devices_per_node,
                 LinkSpec intra_link, LinkSpec inter_link)
    : device_(std::move(device)),
      n_devices_(n_devices),
      devices_per_node_(devices_per_node),
      intra_(std::move(intra_link)),
      inter_(std::move(inter_link)) {
  MIB_ENSURE(n_devices_ >= 1, "cluster needs at least one device");
  MIB_ENSURE(devices_per_node_ >= 1, "devices_per_node must be >= 1");
}

const Interconnect& Cluster::interconnect_for_group(int group) const {
  MIB_ENSURE(group >= 1 && group <= n_devices_,
             "collective group " << group << " exceeds cluster size "
                                 << n_devices_);
  return group <= devices_per_node_ ? intra_ : inter_;
}

double Cluster::total_usable_mem() const {
  return device_.usable_mem() * n_devices_;
}

Cluster Cluster::h100_node(int n_devices) {
  MIB_ENSURE(n_devices >= 1 && n_devices <= 8,
             "an HGX H100 node holds 1..8 GPUs, got " << n_devices);
  return Cluster(h100_sxm5(), n_devices, nvlink4());
}

Cluster Cluster::cs3_system() { return Cluster(cs3(), 1, nvlink4()); }

}  // namespace mib::hw
