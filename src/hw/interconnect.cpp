#include "hw/interconnect.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace mib::hw {

LinkSpec LinkSpec::derate(double bw_scale) const {
  LinkSpec l = *this;
  l.name = name + " (contended)";
  l.bandwidth *= bw_scale;
  return l;
}

LinkSpec nvlink4() {
  return LinkSpec{.name = "NVLink4", .bandwidth = 450.0 * kGB,
                  .latency = 2.0e-6};
}

LinkSpec pcie_gen5() {
  return LinkSpec{.name = "PCIe-Gen5-x16", .bandwidth = 64.0 * kGB,
                  .latency = 5.0e-6};
}

LinkSpec ib_ndr400() {
  return LinkSpec{.name = "IB-NDR400", .bandwidth = 50.0 * kGB,
                  .latency = 8.0e-6};
}

Interconnect::Interconnect(LinkSpec link) : link_(std::move(link)) {
  MIB_ENSURE(link_.bandwidth > 0, "link bandwidth must be positive");
  MIB_ENSURE(link_.latency >= 0, "link latency must be non-negative");
}

double Interconnect::allreduce(double bytes, int n) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  MIB_ENSURE(n >= 1, "allreduce needs n >= 1");
  if (n == 1 || bytes == 0.0) return 0.0;
  // Ring allreduce: 2(n-1)/n of the data crosses each link, 2(n-1) steps.
  const double volume = 2.0 * (n - 1) / n * bytes;
  return volume / link_.bandwidth + 2.0 * (n - 1) * link_.latency;
}

double Interconnect::allgather(double bytes_per_rank, int n) const {
  MIB_ENSURE(bytes_per_rank >= 0, "negative bytes");
  MIB_ENSURE(n >= 1, "allgather needs n >= 1");
  if (n == 1 || bytes_per_rank == 0.0) return 0.0;
  const double volume = (n - 1) * bytes_per_rank;
  return volume / link_.bandwidth + (n - 1) * link_.latency;
}

double Interconnect::reduce_scatter(double bytes, int n) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  MIB_ENSURE(n >= 1, "reduce_scatter needs n >= 1");
  if (n == 1 || bytes == 0.0) return 0.0;
  const double volume = (n - 1) / static_cast<double>(n) * bytes;
  return volume / link_.bandwidth + (n - 1) * link_.latency;
}

double Interconnect::all_to_all(double bytes, int n) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  MIB_ENSURE(n >= 1, "all_to_all needs n >= 1");
  if (n == 1 || bytes == 0.0) return 0.0;
  // Pairwise exchange: each rank keeps 1/n locally, sends (n-1)/n.
  const double volume = (n - 1) / static_cast<double>(n) * bytes;
  return volume / link_.bandwidth + (n - 1) * link_.latency;
}

double Interconnect::p2p(double bytes) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  if (bytes == 0.0) return 0.0;
  return bytes / link_.bandwidth + link_.latency;
}

double Interconnect::broadcast(double bytes, int n) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  MIB_ENSURE(n >= 1, "broadcast needs n >= 1");
  if (n == 1 || bytes == 0.0) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(n)));
  return hops * (bytes / link_.bandwidth + link_.latency);
}

}  // namespace mib::hw
