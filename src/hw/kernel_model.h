// Roofline kernel cost model.
//
// Every simulated GPU operation is charged
//     max(flops / achievable_flops, bytes / achievable_bandwidth) + launches
// where achievable compute throughput depends on the GEMM's token (M)
// dimension — small per-expert batches under-fill tensor-core tiles, which
// is the mechanism behind several of the paper's trends (why many-expert
// configs lose prefill efficiency, why decode is memory-bound, why Fused MoE
// wins). The model is intentionally analytic: it exposes the same quantities
// (FLOPs, bytes, launches) that a profiler would report.
#pragma once

#include <vector>

#include "common/dtype.h"
#include "hw/device.h"

namespace mib::hw {

/// Cost breakdown of one (possibly grouped) kernel.
struct KernelCost {
  double compute_s = 0.0;  ///< flops / achievable FLOP/s
  double memory_s = 0.0;   ///< bytes / achievable bandwidth
  double launch_s = 0.0;   ///< kernel-launch overhead (not overlapped)
  double flops = 0.0;      ///< total floating-point work
  double bytes = 0.0;      ///< total DRAM traffic

  /// Wall time: compute and memory overlap, launches do not.
  double total() const {
    return (compute_s > memory_s ? compute_s : memory_s) + launch_s;
  }

  /// Accumulate another kernel's cost (sequential execution).
  KernelCost& operator+=(const KernelCost& other);
};

KernelCost operator+(KernelCost a, const KernelCost& b);

class KernelModel {
 public:
  explicit KernelModel(DeviceSpec spec);

  const DeviceSpec& device() const { return spec_; }

  /// Fraction of peak FLOPs achievable for a GEMM with M tokens.
  double gemm_efficiency(double m) const;

  /// Achievable bandwidth for a kernel that *re-reads* a working set of
  /// `bytes` (L2 bonus when it fits). Roofline ops stream data once and use
  /// plain DRAM bandwidth; this is for cache-resident access patterns.
  double achievable_bw(double bytes) const;

  /// Generic roofline op. `launches` counts kernel launches.
  KernelCost op(double flops, double bytes, double compute_efficiency,
                int launches = 1) const;

  /// Dense GEMM: activations [m,k] (act dtype) x weights [k,n] (weight
  /// dtype) -> [m,n]. Weight bytes dominate memory traffic at small m.
  KernelCost gemm(double m, double n, double k, DType act, DType weight) const;

  /// Grouped GEMM over experts: group_m[i] tokens hit expert i, each expert
  /// is a [k,n] weight matrix. `fused` == one launch, no intermediate
  /// activation round-trip; unfused == one launch per non-empty group plus a
  /// gather and a scatter pass over the routed activations.
  KernelCost grouped_gemm(const std::vector<double>& group_m, double n,
                          double k, DType act, DType weight,
                          bool fused) const;

  /// Causal self-attention over a prefill chunk (FlashAttention-style: no
  /// quadratic DRAM traffic, quadratic FLOPs halved by causal masking).
  KernelCost attention_prefill(double batch, double seq, double heads,
                               double head_dim, DType act) const;

  /// One decode step of attention: reads the whole KV cache.
  /// `kv_bytes` is the total KV-cache bytes read (caller computes it from
  /// the model's KV layout — GQA/MLA change this, not the kernel).
  KernelCost attention_decode(double batch, double ctx, double heads,
                              double head_dim, double kv_bytes,
                              DType act) const;

  /// Element-wise op over `elems` elements with `reads`+`writes` passes.
  KernelCost elementwise(double elems, double reads, double writes,
                         DType act) const;

  /// Pure data movement of `bytes`.
  KernelCost memcpy_op(double bytes) const;

 private:
  DeviceSpec spec_;
};

}  // namespace mib::hw
