// Device descriptors for the roofline cost model.
//
// A DeviceSpec captures the handful of hardware quantities that determine
// transformer-inference performance: peak math throughput per dtype, memory
// capacity and bandwidth, kernel-launch overhead and achievable-efficiency
// ceilings. Presets are calibrated from public datasheets:
//   * H100 SXM5 80GB  — 989.4 TFLOPS dense BF16/FP16, 1978.9 TFLOPS FP8,
//                       3.35 TB/s HBM3, 50 MB L2, 132 SMs, NVLink4.
//   * A100 SXM4 80GB  — 312 TFLOPS BF16, 624 TOPS INT8, 2.04 TB/s HBM2e.
//   * Cerebras CS-3   — wafer-scale engine; modeled with on-wafer SRAM
//                       bandwidth (21 PB/s class) so decode is never
//                       HBM-bound, plus a per-token pipeline floor for the
//                       cross-node weight-streaming latency of the cloud
//                       replica used in the paper's Fig. 16.
#pragma once

#include <string>

#include "common/dtype.h"

namespace mib::hw {

struct DeviceSpec {
  std::string name;

  /// Dense tensor-core peak at 16-bit precision (FLOP/s).
  double peak_flops_16 = 0.0;
  /// Dense peak at 8-bit precisions (FLOP/s); 0 means "no 8-bit math units"
  /// (falls back to 16-bit peak).
  double peak_flops_8 = 0.0;
  /// Vector FP32 peak (FLOP/s) — used for non-tensor-core ops.
  double peak_flops_32 = 0.0;

  /// Memory capacity available to the runtime (bytes).
  double mem_bytes = 0.0;
  /// Peak DRAM (or wafer SRAM) bandwidth (bytes/s).
  double mem_bw = 0.0;
  /// Last-level cache (bytes); ops with working sets below this get a
  /// bandwidth bonus.
  double l2_bytes = 0.0;
  /// Bandwidth multiplier when the working set fits in L2.
  double l2_bw_multiplier = 4.0;

  int sm_count = 0;

  /// Fixed cost per kernel launch (seconds). This is what Fused MoE saves.
  double kernel_launch_overhead = 0.0;

  /// Achievable fraction of peak FLOPs for large, well-shaped GEMMs (MFU
  /// ceiling). Real H100 GEMMs top out around 0.7–0.8 of datasheet peak.
  double max_compute_efficiency = 0.75;
  /// Achievable fraction of peak memory bandwidth for streaming kernels.
  double mem_efficiency = 0.82;

  /// GEMM efficiency half-saturation point in the token (M) dimension:
  /// eff(M) = max_eff * M / (M + gemm_m_half). Small per-expert batches
  /// under-fill tensor-core tiles; this single knob captures it.
  double gemm_m_half = 96.0;

  /// Additive per-token scheduling floor (seconds) applied to each decode
  /// step; models framework/dispatch overhead (vLLM step overhead on GPUs,
  /// cross-node pipelining on the CS-3 replica).
  double step_overhead = 0.0;

  /// Fraction of mem_bytes usable for weights+KV (vLLM's gpu_memory_util).
  double usable_mem_fraction = 0.90;

  /// Board power under inference load (watts) — for tokens/joule studies.
  double tdp_watts = 0.0;

  /// Peak FLOP/s for a compute dtype.
  double peak_flops(DType dt) const;
  /// Usable memory in bytes.
  double usable_mem() const { return mem_bytes * usable_mem_fraction; }

  /// A throttled copy of this device: math peaks scaled by `flops_scale`
  /// and memory bandwidth by `mem_bw_scale` (both in (0, 1]). Capacity is
  /// untouched — a thermally throttled or ECC-degraded part keeps its
  /// memory, it just moves data and multiplies slower. Used by the fleet's
  /// degradation model to price slow-but-alive replicas.
  DeviceSpec derate(double flops_scale, double mem_bw_scale) const;
};

/// Datasheet presets.
DeviceSpec h100_sxm5();
DeviceSpec a100_sxm4();
/// H200 SXM: H100 silicon with 141 GB HBM3e at 4.8 TB/s.
DeviceSpec h200_sxm();
/// B200 SXM: Blackwell, 2.25 PFLOPS dense FP16, 192 GB HBM3e at 8 TB/s.
DeviceSpec b200_sxm();
DeviceSpec cs3();

/// Lookup by case-insensitive name ("h100", "h200", "b200", "a100", "cs3").
DeviceSpec device_by_name(const std::string& name);

}  // namespace mib::hw
