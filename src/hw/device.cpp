#include "hw/device.h"

#include "common/string_util.h"
#include "common/units.h"

namespace mib::hw {

double DeviceSpec::peak_flops(DType dt) const {
  switch (dt) {
    case DType::kFP32:
      return peak_flops_32 > 0 ? peak_flops_32 : peak_flops_16 / 2.0;
    case DType::kFP16:
    case DType::kBF16:
      return peak_flops_16;
    case DType::kFP8E4M3:
    case DType::kFP8E5M2:
    case DType::kINT8:
      return peak_flops_8 > 0 ? peak_flops_8 : peak_flops_16;
    case DType::kINT4:
      // No native INT4 math on these parts: weights are dequantized into
      // 16-bit mac units, so compute peak is the 16-bit one.
      return peak_flops_16;
  }
  return peak_flops_16;
}

DeviceSpec DeviceSpec::derate(double flops_scale, double mem_bw_scale) const {
  DeviceSpec d = *this;
  d.name = name + " (derated)";
  d.peak_flops_16 *= flops_scale;
  d.peak_flops_8 *= flops_scale;
  d.peak_flops_32 *= flops_scale;
  d.mem_bw *= mem_bw_scale;
  return d;
}

DeviceSpec h100_sxm5() {
  DeviceSpec d;
  d.name = "H100-SXM5-80GB";
  d.peak_flops_16 = 989.4 * kTFLOPS;
  d.peak_flops_8 = 1978.9 * kTFLOPS;
  d.peak_flops_32 = 66.9 * kTFLOPS;
  d.mem_bytes = 80.0 * kGiB;
  d.mem_bw = 3.35 * kTB;
  d.l2_bytes = 50.0 * kMB;
  d.l2_bw_multiplier = 4.0;
  d.sm_count = 132;
  d.kernel_launch_overhead = 4.0e-6;
  d.max_compute_efficiency = 0.75;
  d.mem_efficiency = 0.82;
  d.gemm_m_half = 96.0;
  // Per-decode-step serving-framework overhead: scheduler, sampling,
  // detokenization and dispatch. vLLM-era measurements put this near a
  // millisecond per step on small/mid models; it is what masks weight
  // traffic differences at batch 1 (paper Fig. 5) and compresses TP
  // scaling for small models.
  d.step_overhead = 1.0e-3;
  d.usable_mem_fraction = 0.90;
  d.tdp_watts = 700.0;
  return d;
}

DeviceSpec a100_sxm4() {
  DeviceSpec d;
  d.name = "A100-SXM4-80GB";
  d.peak_flops_16 = 312.0 * kTFLOPS;
  d.peak_flops_8 = 624.0 * kTFLOPS;  // INT8 TOPS; no FP8 units on Ampere
  d.peak_flops_32 = 19.5 * kTFLOPS;
  d.mem_bytes = 80.0 * kGiB;
  d.mem_bw = 2.04 * kTB;
  d.l2_bytes = 40.0 * kMB;
  d.l2_bw_multiplier = 3.0;
  d.sm_count = 108;
  d.kernel_launch_overhead = 4.5e-6;
  d.max_compute_efficiency = 0.70;
  d.mem_efficiency = 0.80;
  d.gemm_m_half = 112.0;
  d.step_overhead = 1.1e-3;
  d.usable_mem_fraction = 0.90;
  d.tdp_watts = 400.0;
  return d;
}

DeviceSpec h200_sxm() {
  DeviceSpec d = h100_sxm5();
  d.name = "H200-SXM-141GB";
  d.mem_bytes = 141.0 * kGiB;
  d.mem_bw = 4.8 * kTB;
  d.tdp_watts = 700.0;
  return d;
}

DeviceSpec b200_sxm() {
  DeviceSpec d;
  d.name = "B200-SXM-192GB";
  d.peak_flops_16 = 2250.0 * kTFLOPS;
  d.peak_flops_8 = 4500.0 * kTFLOPS;
  d.peak_flops_32 = 80.0 * kTFLOPS;
  d.mem_bytes = 192.0 * kGiB;
  d.mem_bw = 8.0 * kTB;
  d.l2_bytes = 126.0 * kMB;
  d.l2_bw_multiplier = 4.0;
  d.sm_count = 148;
  d.kernel_launch_overhead = 3.5e-6;
  d.max_compute_efficiency = 0.72;
  d.mem_efficiency = 0.82;
  d.gemm_m_half = 112.0;  // bigger tensor-core tiles need more rows
  d.step_overhead = 1.0e-3;
  d.usable_mem_fraction = 0.90;
  d.tdp_watts = 1000.0;
  return d;
}

DeviceSpec cs3() {
  DeviceSpec d;
  d.name = "Cerebras-CS3";
  // WSE-3: 900k cores, 125 PFLOPS FP16 (sparse datasheet peak; dense
  // sustained is far lower — the efficiency ceiling below reflects that),
  // 44 GB on-wafer SRAM at 21 PB/s. The paper's Fig. 16 runs a cloud
  // replica that streams most weights at FP8; its defining property is that
  // per-token latency barely grows with context because nothing is
  // HBM-bound.
  d.name = "Cerebras-CS3";
  d.peak_flops_16 = 125.0 * kPFLOPS;
  d.peak_flops_8 = 125.0 * kPFLOPS;
  d.peak_flops_32 = 15.0 * kPFLOPS;
  d.mem_bytes = 1200.0 * kGiB;  // MemoryX-backed replica capacity
  d.mem_bw = 21.0 * kPB;
  d.l2_bytes = 44.0 * kGB;  // all of SRAM behaves like cache
  d.l2_bw_multiplier = 1.0;
  d.sm_count = 900000;
  d.kernel_launch_overhead = 0.5e-6;  // dataflow scheduling, no CUDA launches
  d.max_compute_efficiency = 0.04;    // sustained dense MFU on the wafer
  d.mem_efficiency = 0.70;
  d.gemm_m_half = 1.0;  // fine-grained dataflow: no tile under-fill penalty
  d.step_overhead = 3.5e-4;  // cross-node pipelining floor of the replica
  d.usable_mem_fraction = 0.95;
  d.tdp_watts = 23000.0;  // full CS-3 system power
  return d;
}

DeviceSpec device_by_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "h100" || n == "h100-sxm5" || n == "h100-sxm5-80gb") {
    return h100_sxm5();
  }
  if (n == "a100" || n == "a100-sxm4" || n == "a100-sxm4-80gb") {
    return a100_sxm4();
  }
  if (n == "h200" || n == "h200-sxm" || n == "h200-sxm-141gb") {
    return h200_sxm();
  }
  if (n == "b200" || n == "b200-sxm" || n == "b200-sxm-192gb") {
    return b200_sxm();
  }
  if (n == "cs3" || n == "cs-3" || n == "cerebras-cs3") return cs3();
  throw ConfigError("unknown device name: " + name);
}

}  // namespace mib::hw
