// Interconnect and collective-communication cost model.
//
// Costs follow the standard alpha-beta (latency-bandwidth) model with
// ring-algorithm volumes for allreduce / allgather / reduce-scatter and a
// pairwise-exchange model for all-to-all. These are the collectives TP, PP
// and EP insert into the forward pass (§7.1 of the paper).
#pragma once

#include <string>

namespace mib::hw {

/// Point-to-point link characteristics (per-direction, per-device).
struct LinkSpec {
  std::string name;
  double bandwidth = 0.0;  ///< bytes/s per direction per device
  double latency = 0.0;    ///< seconds per hop (alpha)

  /// A contended copy of this link: bandwidth scaled by `bw_scale` in
  /// (0, 1], latency unchanged (congestion shrinks the pipe before it
  /// stretches the hop). Used by the fleet's degradation model.
  LinkSpec derate(double bw_scale) const;
};

/// NVLink4 (H100 SXM): 900 GB/s aggregate bidirectional = 450 GB/s each way.
LinkSpec nvlink4();
/// PCIe Gen5 x16: 64 GB/s each way.
LinkSpec pcie_gen5();
/// InfiniBand NDR 400 (inter-node): 50 GB/s each way.
LinkSpec ib_ndr400();

class Interconnect {
 public:
  explicit Interconnect(LinkSpec link);

  const LinkSpec& link() const { return link_; }

  /// Ring allreduce of `bytes` per rank across `n` ranks.
  double allreduce(double bytes, int n) const;
  /// Ring allgather: each rank contributes `bytes_per_rank`.
  double allgather(double bytes_per_rank, int n) const;
  /// Ring reduce-scatter of `bytes` per rank.
  double reduce_scatter(double bytes, int n) const;
  /// All-to-all where each rank sends `bytes` total, split across peers.
  double all_to_all(double bytes, int n) const;
  /// Point-to-point transfer.
  double p2p(double bytes) const;
  /// Broadcast `bytes` from one rank to n-1 peers (tree).
  double broadcast(double bytes, int n) const;

 private:
  LinkSpec link_;
};

}  // namespace mib::hw
