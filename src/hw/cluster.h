// A Cluster is N identical devices joined by an intra-node link (and,
// optionally, an inter-node link when N exceeds devices_per_node). The
// engine asks it for aggregate memory and for the interconnect that a given
// collective crosses.
#pragma once

#include "hw/device.h"
#include "hw/interconnect.h"

namespace mib::hw {

class Cluster {
 public:
  /// Single-node cluster of `n_devices` devices on one intra-node link.
  Cluster(DeviceSpec device, int n_devices, LinkSpec intra_link);

  /// Multi-node cluster.
  Cluster(DeviceSpec device, int n_devices, int devices_per_node,
          LinkSpec intra_link, LinkSpec inter_link);

  const DeviceSpec& device() const { return device_; }
  int size() const { return n_devices_; }
  int devices_per_node() const { return devices_per_node_; }
  int nodes() const {
    return (n_devices_ + devices_per_node_ - 1) / devices_per_node_;
  }

  /// Interconnect governing a collective over `group` devices: if the group
  /// fits in one node it runs on the intra-node link, else on the slower
  /// inter-node link (conservative bottleneck model).
  const Interconnect& interconnect_for_group(int group) const;

  const Interconnect& intra() const { return intra_; }
  const Interconnect& inter() const { return inter_; }

  /// Total usable memory across all devices (bytes).
  double total_usable_mem() const;

  /// Convenience: 1..8x H100 SXM5 on NVLink4.
  static Cluster h100_node(int n_devices);
  /// Single CS-3.
  static Cluster cs3_system();

 private:
  DeviceSpec device_;
  int n_devices_;
  int devices_per_node_;
  Interconnect intra_;
  Interconnect inter_;
};

}  // namespace mib::hw
