#include "hw/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace mib::hw {

KernelCost& KernelCost::operator+=(const KernelCost& other) {
  // Sequential composition: rooflines do not overlap across kernels, so the
  // conservative sum keeps each kernel's own max(compute, memory).
  compute_s += other.compute_s;
  memory_s += other.memory_s;
  launch_s += other.launch_s;
  flops += other.flops;
  bytes += other.bytes;
  return *this;
}

KernelCost operator+(KernelCost a, const KernelCost& b) { return a += b; }

KernelModel::KernelModel(DeviceSpec spec) : spec_(std::move(spec)) {
  MIB_ENSURE(spec_.peak_flops_16 > 0, "device has no compute peak");
  MIB_ENSURE(spec_.mem_bw > 0, "device has no memory bandwidth");
}

double KernelModel::gemm_efficiency(double m) const {
  MIB_ENSURE(m > 0, "gemm_efficiency needs m > 0");
  return spec_.max_compute_efficiency * m / (m + spec_.gemm_m_half);
}

double KernelModel::achievable_bw(double bytes) const {
  double bw = spec_.mem_bw * spec_.mem_efficiency;
  if (bytes > 0 && bytes <= spec_.l2_bytes) bw *= spec_.l2_bw_multiplier;
  return bw;
}

KernelCost KernelModel::op(double flops, double bytes,
                           double compute_efficiency, int launches) const {
  MIB_ENSURE(flops >= 0 && bytes >= 0, "negative work");
  MIB_ENSURE(compute_efficiency > 0 && compute_efficiency <= 1.0,
             "compute efficiency out of (0,1]: " << compute_efficiency);
  KernelCost c;
  c.flops = flops;
  c.bytes = bytes;
  c.compute_s = flops > 0
                    ? flops / (spec_.peak_flops_16 * compute_efficiency)
                    : 0.0;
  // Single-pass streaming: weights/activations are touched once, so the
  // L2 bonus (achievable_bw) does not apply to roofline ops.
  c.memory_s = bytes > 0 ? bytes / (spec_.mem_bw * spec_.mem_efficiency)
                         : 0.0;
  c.launch_s = launches * spec_.kernel_launch_overhead;
  return c;
}

namespace {
/// Effective compute dtype of a GEMM: math runs at the wider of the two
/// operand dtypes (weight-only quantization dequantizes into 16-bit MACs).
DType gemm_compute_dtype(DType act, DType weight) {
  const bool act8 = bytes_of(act) <= 1.0;
  const bool w8 = bytes_of(weight) <= 1.0;
  if (act8 && w8) return act;  // true 8-bit tensor-core path
  return bytes_of(act) >= 2.0 ? act : weight;
}
}  // namespace

KernelCost KernelModel::gemm(double m, double n, double k, DType act,
                             DType weight) const {
  MIB_ENSURE(m > 0 && n > 0 && k > 0, "gemm dims must be positive");
  const double flops = 2.0 * m * n * k;
  const double bytes = n * k * bytes_of(weight) +      // weights
                       m * k * bytes_of(act) +          // input
                       m * n * bytes_of(act);           // output
  const DType compute = gemm_compute_dtype(act, weight);
  const double peak_ratio =
      spec_.peak_flops(compute) / spec_.peak_flops_16;
  KernelCost c = op(flops, bytes, gemm_efficiency(m));
  c.compute_s /= peak_ratio;  // FP8 math doubles peak on H100
  return c;
}

KernelCost KernelModel::grouped_gemm(const std::vector<double>& group_m,
                                     double n, double k, DType act,
                                     DType weight, bool fused) const {
  MIB_ENSURE(!group_m.empty(), "grouped_gemm needs at least one group");
  MIB_ENSURE(n > 0 && k > 0, "grouped_gemm dims must be positive");

  double flops = 0.0;
  double act_bytes = 0.0;
  double weight_bytes = 0.0;
  double compute_s = 0.0;
  int nonempty = 0;
  const DType compute = gemm_compute_dtype(act, weight);
  const double peak =
      spec_.peak_flops(compute) * 1.0;  // efficiency applied per group

  for (double m : group_m) {
    MIB_ENSURE(m >= 0, "negative group size");
    if (m <= 0) continue;
    ++nonempty;
    const double f = 2.0 * m * n * k;
    flops += f;
    act_bytes += m * (k + n) * bytes_of(act);
    weight_bytes += n * k * bytes_of(weight);
    compute_s += f / (peak * gemm_efficiency(m));
  }
  if (nonempty == 0) return KernelCost{};

  KernelCost c;
  c.flops = flops;
  c.bytes = act_bytes + weight_bytes;
  c.compute_s = compute_s;

  const double stream_bw = spec_.mem_bw * spec_.mem_efficiency;
  if (fused) {
    // One grouped launch; routing gather/scatter happens in-kernel via
    // index arrays, so no extra activation round-trip through DRAM.
    c.memory_s = c.bytes / stream_bw;
    c.launch_s = spec_.kernel_launch_overhead;
  } else {
    // Per-expert launches plus an explicit gather before and scatter after:
    // the routed activations make one extra round trip through DRAM.
    const double extra = 2.0 * act_bytes;
    c.bytes += extra;
    c.memory_s = c.bytes / stream_bw;
    c.launch_s = (nonempty + 2) * spec_.kernel_launch_overhead;
  }
  return c;
}

KernelCost KernelModel::attention_prefill(double batch, double seq,
                                          double heads, double head_dim,
                                          DType act) const {
  MIB_ENSURE(batch > 0 && seq > 0 && heads > 0 && head_dim > 0,
             "attention dims must be positive");
  // FlashAttention: QK^T and PV each cost 2*S^2*D per head; causal masking
  // halves the useful work. DRAM traffic is linear (tiles stay in SRAM).
  const double flops = 0.5 * 4.0 * batch * seq * seq * heads * head_dim;
  const double bytes =
      batch * seq * heads * head_dim * bytes_of(act) * 4.0;  // Q,K,V,O
  // Long-sequence attention sustains high utilization; reuse GEMM curve with
  // M = per-head tile rows ~ seq.
  return op(flops, bytes, gemm_efficiency(seq));
}

KernelCost KernelModel::attention_decode(double batch, double ctx,
                                         double heads, double head_dim,
                                         double kv_bytes, DType act) const {
  MIB_ENSURE(batch > 0 && heads > 0 && head_dim > 0,
             "attention dims must be positive");
  MIB_ENSURE(ctx >= 0 && kv_bytes >= 0, "negative context");
  // One query token per sequence attends over ctx cached tokens.
  const double flops = 4.0 * batch * ctx * heads * head_dim;
  const double bytes =
      kv_bytes + 2.0 * batch * heads * head_dim * bytes_of(act);
  // Decode attention is a bandwidth kernel: a single query row cannot fill
  // tensor-core tiles, so efficiency is that of an M=batch GEMM.
  return op(flops, bytes, gemm_efficiency(std::max(1.0, batch)));
}

KernelCost KernelModel::elementwise(double elems, double reads, double writes,
                                    DType act) const {
  MIB_ENSURE(elems >= 0 && reads >= 0 && writes >= 0, "negative work");
  const double bytes = elems * (reads + writes) * bytes_of(act);
  return op(elems, bytes, spec_.max_compute_efficiency);
}

KernelCost KernelModel::memcpy_op(double bytes) const {
  MIB_ENSURE(bytes >= 0, "negative bytes");
  return op(0.0, 2.0 * bytes, spec_.max_compute_efficiency);  // read + write
}

}  // namespace mib::hw
