// Scalar float codecs: fp16, bf16, fp8 (e4m3 / e5m2).
//
// These are bit-exact software implementations (round-to-nearest-even,
// correct subnormal handling) so that quantization-error tests measure the
// real representational loss of each format — the same loss an H100 tensor
// core would introduce. FP8-E4M3 follows the OCP/Nvidia convention: no
// infinities, NaN at S.1111.111, overflow saturates to ±448.
#pragma once

#include <cstdint>

namespace mib::quant {

/// float -> IEEE binary16 bits.
std::uint16_t fp16_encode(float x);
/// IEEE binary16 bits -> float.
float fp16_decode(std::uint16_t bits);

/// float -> bfloat16 bits (round-to-nearest-even).
std::uint16_t bf16_encode(float x);
float bf16_decode(std::uint16_t bits);

/// float -> FP8 E4M3 bits (bias 7, saturating, no inf).
std::uint8_t fp8e4m3_encode(float x);
float fp8e4m3_decode(std::uint8_t bits);

/// float -> FP8 E5M2 bits (bias 15, IEEE-style with inf).
std::uint8_t fp8e5m2_encode(float x);
float fp8e5m2_decode(std::uint8_t bits);

/// Round-trip through a codec (encode then decode).
float fp16_roundtrip(float x);
float bf16_roundtrip(float x);
float fp8e4m3_roundtrip(float x);
float fp8e5m2_roundtrip(float x);

/// Largest finite magnitude representable by each format.
inline constexpr float kFP16Max = 65504.0f;
inline constexpr float kFP8E4M3Max = 448.0f;
inline constexpr float kFP8E5M2Max = 57344.0f;

}  // namespace mib::quant
