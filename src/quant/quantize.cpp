#include "quant/quantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "quant/codecs.h"

namespace mib::quant {

double QuantError::snr_db() const {
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  if (rel_err == 0.0) return std::numeric_limits<double>::infinity();
  return -20.0 * std::log10(rel_err);
}

namespace {

struct ErrorAccum {
  double max_abs = 0.0;
  double sq_err = 0.0;
  double sq_ref = 0.0;
  std::size_t n = 0;

  void add(float ref, float got) {
    const double e = static_cast<double>(ref) - got;
    max_abs = std::max(max_abs, std::abs(e));
    sq_err += e * e;
    sq_ref += static_cast<double>(ref) * ref;
    ++n;
  }

  QuantError finish() const {
    QuantError q;
    q.max_abs_err = max_abs;
    q.mse = n ? sq_err / static_cast<double>(n) : 0.0;
    q.rel_err = sq_ref > 0.0 ? std::sqrt(sq_err / sq_ref) : 0.0;
    return q;
  }
};

float float_roundtrip(float x, DType dt) {
  switch (dt) {
    case DType::kFP32:
      return x;
    case DType::kFP16:
      return fp16_roundtrip(x);
    case DType::kBF16:
      return bf16_roundtrip(x);
    case DType::kFP8E4M3:
      return fp8e4m3_roundtrip(x);
    case DType::kFP8E5M2:
      return fp8e5m2_roundtrip(x);
    default:
      throw ConfigError("float_roundtrip on integer dtype " + dtype_name(dt));
  }
}

int int_qmax(DType dt) {
  switch (dt) {
    case DType::kINT8:
      return 127;
    case DType::kINT4:
      return 7;
    default:
      throw ConfigError("int_qmax on non-integer dtype " + dtype_name(dt));
  }
}

/// Symmetric scale quantization of a contiguous block.
void quantize_block(std::span<float> block, int qmax, ErrorAccum& acc) {
  float max_abs = 0.0f;
  for (float v : block) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0f) return;  // all-zero block is exact
  const float scale = max_abs / static_cast<float>(qmax);
  for (float& v : block) {
    const float ref = v;
    const auto q = static_cast<int>(std::nearbyint(v / scale));
    const int clamped = std::clamp(q, -qmax, qmax);
    v = static_cast<float>(clamped) * scale;
    acc.add(ref, v);
  }
}

bool is_float_format(DType dt) {
  return dt != DType::kINT8 && dt != DType::kINT4;
}

}  // namespace

QuantError fake_quantize(std::span<float> data, DType dt) {
  MIB_ENSURE(is_float_format(dt),
             "fake_quantize(span) supports float formats only; use "
             "fake_quantize_tensor for " << dtype_name(dt));
  ErrorAccum acc;
  for (float& v : data) {
    const float ref = v;
    v = float_roundtrip(v, dt);
    acc.add(ref, v);
  }
  return acc.finish();
}

QuantError fake_quantize_tensor(Tensor& t, DType dt, Granularity g) {
  if (is_float_format(dt)) return fake_quantize(t.flat(), dt);

  MIB_ENSURE(t.rank() == 2,
             "integer quantization expects a rank-2 weight tensor");
  const int qmax = int_qmax(dt);
  ErrorAccum acc;
  switch (g) {
    case Granularity::kPerTensor:
      quantize_block(t.flat(), qmax, acc);
      break;
    case Granularity::kPerRow:
      for (std::size_t r = 0; r < t.dim(0); ++r) {
        quantize_block(t.row(r), qmax, acc);
      }
      break;
    case Granularity::kPerGroup:
      for (std::size_t r = 0; r < t.dim(0); ++r) {
        auto row = t.row(r);
        for (std::size_t off = 0; off < row.size(); off += kGroupSize) {
          const std::size_t len = std::min(kGroupSize, row.size() - off);
          quantize_block(row.subspan(off, len), qmax, acc);
        }
      }
      break;
  }
  return acc.finish();
}

double storage_bits_per_value(DType dt, Granularity g, std::size_t row_size) {
  MIB_ENSURE(row_size > 0, "row_size must be positive");
  const double base = bytes_of(dt) * 8.0;
  if (is_float_format(dt)) return base;
  // fp32 scale per block.
  const double scale_bits = 32.0;
  double block = 0.0;
  switch (g) {
    case Granularity::kPerRow:
      block = static_cast<double>(row_size);
      break;
    case Granularity::kPerGroup:
      block = static_cast<double>(std::min(kGroupSize, row_size));
      break;
    case Granularity::kPerTensor:
      block = static_cast<double>(row_size) * row_size;
      break;
  }
  return base + scale_bits / block;
}

}  // namespace mib::quant
