// Tensor-level (fake-)quantization.
//
// "Fake quantization" replaces each value with its dequantized quantized
// representation — the standard way to evaluate precision loss without
// integer kernels. Float formats quantize element-wise through the codecs;
// integer formats use symmetric scale quantization at per-tensor or per-row
// (per-output-channel) granularity, matching GPTQ/AWQ-style weight-only
// schemes referenced by the paper (§6.1).
#pragma once

#include <span>

#include "common/dtype.h"
#include "common/tensor.h"

namespace mib::quant {

enum class Granularity {
  kPerTensor,
  kPerRow,
  /// GPTQ/AWQ-style: one scale per contiguous group of kGroupSize values
  /// within a row (finer than per-row, bounded overhead).
  kPerGroup,
};

/// Group size used by kPerGroup (the GPTQ/AWQ convention).
inline constexpr std::size_t kGroupSize = 128;

/// Error metrics of a quantization pass.
struct QuantError {
  double max_abs_err = 0.0;
  double mse = 0.0;
  /// ||x - q(x)||_F / ||x||_F  (0 when the input is all zeros).
  double rel_err = 0.0;

  /// Signal-to-noise ratio in dB (infinite when lossless).
  double snr_db() const;
};

/// Fake-quantize a flat buffer element-wise in place. Valid for the float
/// formats (fp32 is a no-op); integer formats require scale information and
/// must go through fake_quantize_tensor.
QuantError fake_quantize(std::span<float> data, DType dt);

/// Fake-quantize a rank-2 weight tensor in place with the given
/// granularity. Integer formats compute symmetric scales (per tensor or per
/// row); float formats ignore granularity.
QuantError fake_quantize_tensor(Tensor& t, DType dt, Granularity g);

/// Storage bits per value including scale overhead (fp32 scale amortized
/// over the elements it covers).
double storage_bits_per_value(DType dt, Granularity g, std::size_t row_size);

}  // namespace mib::quant
