#include "quant/codecs.h"

#include <bit>
#include <cmath>
#include <limits>

namespace mib::quant {

namespace {

struct MiniFloatFormat {
  int ebits;
  int mbits;
  int bias;
  float max_val;
  bool has_inf;  ///< false => saturating format with a single NaN code
};

constexpr MiniFloatFormat kFP16{5, 10, 15, kFP16Max, true};
constexpr MiniFloatFormat kE4M3{4, 3, 7, kFP8E4M3Max, false};
constexpr MiniFloatFormat kE5M2{5, 2, 15, kFP8E5M2Max, true};

/// Round a float to the nearest value representable in `f` (RNE), handling
/// subnormals, saturation and infinity semantics.
float minifloat_roundtrip(float x, const MiniFloatFormat& f) {
  if (std::isnan(x)) return x;
  if (std::isinf(x)) {
    return f.has_inf ? x : std::copysign(f.max_val, x);
  }
  if (x == 0.0f) return x;

  const float ax = std::fabs(x);
  int e = 0;
  std::frexp(ax, &e);            // ax = m * 2^e with m in [0.5, 1)
  const int unbiased = e - 1;    // ax = 1.m * 2^unbiased
  const int emin = 1 - f.bias;   // smallest normal exponent

  // Quantization step of the binade (or the subnormal range).
  const int step_exp = (unbiased < emin ? emin : unbiased) - f.mbits;
  const float step = std::ldexp(1.0f, step_exp);
  // nearbyint honors the default FE_TONEAREST mode => round-to-nearest-even.
  float q = step * std::nearbyint(ax / step);

  if (q > f.max_val) {
    q = f.has_inf ? std::numeric_limits<float>::infinity() : f.max_val;
  }
  return std::copysign(q, x);
}

/// Pack a value already on the representable grid into its bit pattern.
std::uint32_t minifloat_pack(float q, const MiniFloatFormat& f) {
  const std::uint32_t sign = std::signbit(q) ? 1u : 0u;
  const std::uint32_t sign_shifted = sign << (f.ebits + f.mbits);
  const std::uint32_t exp_all_ones = (1u << f.ebits) - 1u;

  if (std::isnan(q)) {
    // Canonical NaN: all-ones exponent, all-ones mantissa (works for both
    // IEEE-style and E4M3-style formats).
    return sign_shifted | (exp_all_ones << f.mbits) | ((1u << f.mbits) - 1u);
  }
  if (std::isinf(q)) {
    return sign_shifted | (exp_all_ones << f.mbits);
  }
  const float aq = std::fabs(q);
  if (aq == 0.0f) return sign_shifted;

  int e = 0;
  std::frexp(aq, &e);
  const int unbiased = e - 1;
  const int emin = 1 - f.bias;

  if (unbiased < emin) {
    // Subnormal: value = mantissa * 2^(emin - mbits).
    const auto mant = static_cast<std::uint32_t>(
        std::nearbyint(std::ldexp(aq, f.mbits - emin)));
    return sign_shifted | mant;
  }
  const auto biased = static_cast<std::uint32_t>(unbiased + f.bias);
  const float frac = std::ldexp(aq, -unbiased) - 1.0f;  // in [0, 1)
  const auto mant = static_cast<std::uint32_t>(
      std::nearbyint(std::ldexp(frac, f.mbits)));
  return sign_shifted | (biased << f.mbits) | mant;
}

float minifloat_unpack(std::uint32_t bits, const MiniFloatFormat& f) {
  const std::uint32_t mant_mask = (1u << f.mbits) - 1u;
  const std::uint32_t exp_all_ones = (1u << f.ebits) - 1u;
  const std::uint32_t sign = bits >> (f.ebits + f.mbits);
  const std::uint32_t biased = (bits >> f.mbits) & exp_all_ones;
  const std::uint32_t mant = bits & mant_mask;
  const float s = sign ? -1.0f : 1.0f;

  if (biased == exp_all_ones) {
    if (f.has_inf) {
      if (mant == 0) return s * std::numeric_limits<float>::infinity();
      return std::numeric_limits<float>::quiet_NaN();
    }
    // E4M3: all-ones exponent is a normal binade except the NaN code.
    if (mant == mant_mask) return std::numeric_limits<float>::quiet_NaN();
  }
  if (biased == 0) {
    // Subnormal: mant * 2^(emin - mbits).
    return s * std::ldexp(static_cast<float>(mant), 1 - f.bias - f.mbits);
  }
  const float frac =
      1.0f + std::ldexp(static_cast<float>(mant), -f.mbits);
  return s * std::ldexp(frac, static_cast<int>(biased) - f.bias);
}

}  // namespace

std::uint16_t fp16_encode(float x) {
  return static_cast<std::uint16_t>(minifloat_pack(
      minifloat_roundtrip(x, kFP16), kFP16));
}

float fp16_decode(std::uint16_t bits) { return minifloat_unpack(bits, kFP16); }

std::uint16_t bf16_encode(float x) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  if (std::isnan(x)) return static_cast<std::uint16_t>((bits >> 16) | 0x0040);
  // Round-to-nearest-even on the dropped 16 bits.
  const std::uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

float bf16_decode(std::uint16_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits) << 16);
}

std::uint8_t fp8e4m3_encode(float x) {
  return static_cast<std::uint8_t>(minifloat_pack(
      minifloat_roundtrip(x, kE4M3), kE4M3));
}

float fp8e4m3_decode(std::uint8_t bits) { return minifloat_unpack(bits, kE4M3); }

std::uint8_t fp8e5m2_encode(float x) {
  return static_cast<std::uint8_t>(minifloat_pack(
      minifloat_roundtrip(x, kE5M2), kE5M2));
}

float fp8e5m2_decode(std::uint8_t bits) { return minifloat_unpack(bits, kE5M2); }

float fp16_roundtrip(float x) { return minifloat_roundtrip(x, kFP16); }
float bf16_roundtrip(float x) { return bf16_decode(bf16_encode(x)); }
float fp8e4m3_roundtrip(float x) { return minifloat_roundtrip(x, kE4M3); }
float fp8e5m2_roundtrip(float x) { return minifloat_roundtrip(x, kE5M2); }

}  // namespace mib::quant
