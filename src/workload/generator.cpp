#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/zipf.h"

namespace mib::workload {

namespace {
int sample_length(const LengthDistribution& d, Rng& rng) {
  MIB_ENSURE(d.min_tokens >= 1, "min_tokens must be >= 1");
  MIB_ENSURE(d.max_tokens >= d.min_tokens, "empty length range");
  if (d.min_tokens == d.max_tokens) return d.min_tokens;
  // Power-of-two bins between min and max; Zipf over bins biases toward
  // short requests the way production traces do.
  std::vector<std::pair<int, int>> bins;
  for (int lo = d.min_tokens; lo <= d.max_tokens; lo *= 2) {
    bins.push_back({lo, std::min(d.max_tokens, lo * 2 - 1)});
    if (lo > d.max_tokens / 2) break;
  }
  const ZipfSampler zipf(bins.size(), d.skew);
  const auto [lo, hi] = bins[zipf.sample(rng)];
  return lo + static_cast<int>(rng.uniform_index(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}
}  // namespace

std::vector<engine::Request> generate_trace(const TraceConfig& cfg) {
  MIB_ENSURE(cfg.n_requests >= 1, "trace needs at least one request");
  Rng rng(cfg.seed);
  std::vector<engine::Request> out;
  out.reserve(cfg.n_requests);
  for (int i = 0; i < cfg.n_requests; ++i) {
    engine::Request r;
    r.input_tokens = sample_length(cfg.input, rng);
    r.output_tokens = sample_length(cfg.output, rng);
    r.n_images = cfg.images_per_request;
    r.validate();
    out.push_back(r);
  }
  return out;
}

std::vector<Turn> generate_conversations(const ConversationConfig& cfg) {
  MIB_ENSURE(cfg.n_conversations >= 1, "need at least one conversation");
  MIB_ENSURE(cfg.turns_per_conversation >= 1, "need at least one turn");
  MIB_ENSURE(cfg.system_prompt_tokens >= 1, "system prompt must be non-empty");
  Rng rng(cfg.seed);
  std::vector<Turn> out;
  out.reserve(static_cast<std::size_t>(cfg.n_conversations) *
              cfg.turns_per_conversation);
  for (int conv = 0; conv < cfg.n_conversations; ++conv) {
    int history = cfg.system_prompt_tokens;
    for (int turn = 0; turn < cfg.turns_per_conversation; ++turn) {
      const int user = sample_length(cfg.user_turn, rng);
      const int reply = sample_length(cfg.reply, rng);
      Turn t;
      t.conversation = conv;
      t.turn = turn;
      t.shared_prefix_tokens = history;  // everything before this turn
      t.request.input_tokens = history + user;
      t.request.output_tokens = reply;
      t.request.validate();
      out.push_back(t);
      history += user + reply;  // the reply joins the shared history
    }
  }
  return out;
}

const std::vector<int>& paper_batch_sizes() {
  static const std::vector<int> v = {1, 16, 32, 64};
  return v;
}

const std::vector<int>& paper_sequence_lengths() {
  static const std::vector<int> v = {128, 256, 512, 1024, 2048};
  return v;
}

const std::vector<int>& extended_batch_sizes() {
  static const std::vector<int> v = {1, 16, 32, 64, 128};
  return v;
}

}  // namespace mib::workload
