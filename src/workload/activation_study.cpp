#include "workload/activation_study.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/tensor.h"

namespace mib::workload {

ActivationStudy::ActivationStudy(const models::ModelConfig& model,
                                 ActivationStudyConfig cfg)
    : cfg_(cfg), top_k_(model.top_k), rng_(cfg.seed) {
  MIB_ENSURE(model.is_moe(), model.name << " is not a MoE model");
  MIB_ENSURE(cfg_.sim_hidden >= 8, "sim_hidden too small");
  MIB_ENSURE(cfg_.router_skew >= 0.0, "negative router skew");

  const int n_moe_layers = model.moe_layers();
  routers_.reserve(n_moe_layers);
  counts_.resize(n_moe_layers);
  for (int l = 0; l < n_moe_layers; ++l) {
    moe::RouterConfig rc;
    rc.hidden = cfg_.sim_hidden;
    rc.n_experts = model.n_experts;
    rc.top_k = model.top_k;
    Rng layer_rng = rng_.split();
    routers_.emplace_back(rc, layer_rng);
    if (cfg_.router_skew > 0.0) {
      // Zipf-decaying prior, shuffled per layer so the "popular" experts
      // differ across layers (as in the paper's MolmoE heatmap).
      std::vector<float> prior(model.n_experts);
      std::vector<int> rank(model.n_experts);
      for (int e = 0; e < model.n_experts; ++e) rank[e] = e;
      for (int e = model.n_experts - 1; e > 0; --e) {
        const int j = static_cast<int>(layer_rng.uniform_index(e + 1));
        std::swap(rank[e], rank[j]);
      }
      for (int e = 0; e < model.n_experts; ++e) {
        prior[e] = static_cast<float>(
            -cfg_.router_skew * std::log(static_cast<double>(rank[e] + 1)));
      }
      routers_.back().set_logit_prior(std::move(prior));
    }
    counts_[l].assign(model.n_experts, 0);
  }
}

int ActivationStudy::n_experts() const {
  return routers_.empty() ? 0 : routers_.front().config().n_experts;
}

void ActivationStudy::run(int tokens) {
  MIB_ENSURE(tokens >= 1, "need at least one token");
  constexpr int kChunk = 256;
  int remaining = tokens;
  while (remaining > 0) {
    const int n = std::min(kChunk, remaining);
    const Tensor x = Tensor::randn(
        {static_cast<std::size_t>(n),
         static_cast<std::size_t>(cfg_.sim_hidden)},
        rng_, 1.0f);
    for (std::size_t l = 0; l < routers_.size(); ++l) {
      routers_[l].route(x);
    }
    remaining -= n;
  }
  for (std::size_t l = 0; l < routers_.size(); ++l) {
    counts_[l] = routers_[l].activation_counts();
  }
}

std::uint64_t ActivationStudy::peak() const {
  std::uint64_t mx = 0;
  for (const auto& layer : counts_) {
    for (auto c : layer) mx = std::max(mx, c);
  }
  return mx;
}

double ActivationStudy::mean_cv() const {
  if (counts_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& layer : counts_) acc += coefficient_of_variation(layer);
  return acc / static_cast<double>(counts_.size());
}

double ActivationStudy::mean_imbalance() const {
  if (counts_.empty()) return 1.0;
  double acc = 0.0;
  for (const auto& layer : counts_) acc += max_over_mean(layer);
  return acc / static_cast<double>(counts_.size());
}

}  // namespace mib::workload
