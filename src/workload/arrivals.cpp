#include "workload/arrivals.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace mib::workload {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

void ArrivalConfig::validate() const {
  MIB_ENSURE(rate_qps > 0.0, "arrival rate must be > 0 qps");
  MIB_ENSURE(start_s >= 0.0, "negative trace start time");
  if (process == Process::kDiurnal) {
    MIB_ENSURE(diurnal_period_s > 0.0, "diurnal period must be > 0");
    MIB_ENSURE(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
               "diurnal amplitude must be in [0, 1)");
  }
}

std::vector<double> generate_arrivals(const ArrivalConfig& cfg, int n) {
  cfg.validate();
  MIB_ENSURE(n >= 1, "need at least one arrival");
  Rng rng(cfg.seed);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double t = cfg.start_s;
  out.push_back(t);
  for (int i = 1; i < n; ++i) {
    double rate = cfg.rate_qps;
    if (cfg.process == ArrivalConfig::Process::kDiurnal) {
      rate *= 1.0 + cfg.diurnal_amplitude *
                        std::sin(kTwoPi * t / cfg.diurnal_period_s);
    }
    t += -std::log(1.0 - rng.uniform()) / rate;
    out.push_back(t);
  }
  return out;
}

void stamp_arrivals(const ArrivalConfig& cfg,
                    std::vector<engine::Request>& trace) {
  MIB_ENSURE(!trace.empty(), "cannot stamp an empty trace");
  const auto times = generate_arrivals(cfg, static_cast<int>(trace.size()));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_s = times[i];
  }
}

}  // namespace mib::workload
