// Expert-activation-frequency study (paper §8.3, Fig. 15).
//
// Drives synthetic multimodal token streams through one *functional* router
// per layer and collects the (layer x expert) selection-count heatmap. Two
// router regimes reproduce the paper's contrast:
//   * balanced — zero logit prior (a router trained with the DeepSeek-V2
//     aux balance loss selects experts near-uniformly);
//   * skewed   — a Zipf-decaying logit prior (MolmoE-1B's router, trained
//     without the balance loss, concentrates on a few experts).
#pragma once

#include <cstdint>
#include <vector>

#include "models/config.h"
#include "moe/router.h"

namespace mib::workload {

struct ActivationStudyConfig {
  /// Router logit-prior skew: 0 = balanced; > 0 adds a prior of
  /// -skew * ln(expert_rank + 1) (Zipf-decaying preference).
  double router_skew = 0.0;
  /// Token feature dim for the synthetic stream; routing statistics depend
  /// on it only weakly, so a reduced dim keeps the study fast.
  int sim_hidden = 128;
  std::uint64_t seed = 7;
};

class ActivationStudy {
 public:
  ActivationStudy(const models::ModelConfig& model,
                  ActivationStudyConfig cfg);

  /// Feed `tokens` synthetic tokens through every MoE layer's router.
  void run(int tokens);

  /// Selection counts, heatmap()[layer][expert].
  const std::vector<std::vector<std::uint64_t>>& heatmap() const {
    return counts_;
  }

  int n_layers() const { return static_cast<int>(routers_.size()); }
  int n_experts() const;

  /// Peak per-expert count across the heatmap.
  std::uint64_t peak() const;
  /// Mean coefficient of variation of per-layer expert loads.
  double mean_cv() const;
  /// Mean max/mean load factor across layers.
  double mean_imbalance() const;

 private:
  ActivationStudyConfig cfg_;
  int top_k_;
  std::vector<moe::Router> routers_;
  std::vector<std::vector<std::uint64_t>> counts_;
  Rng rng_;
};

}  // namespace mib::workload
