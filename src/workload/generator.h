// Workload generators: fixed-shape batches (the paper's grid) and sampled
// request mixes (for the serving example and property tests).
#pragma once

#include <vector>

#include "common/rng.h"
#include "engine/request.h"

namespace mib::workload {

/// Length distribution of sampled requests.
struct LengthDistribution {
  int min_tokens = 16;
  int max_tokens = 2048;
  /// Zipf exponent over the [min, max] range binned in powers of two;
  /// 0 = uniform over bins.
  double skew = 1.0;
};

struct TraceConfig {
  int n_requests = 64;
  LengthDistribution input;
  LengthDistribution output;
  int images_per_request = 0;  ///< fixed (VLM tasks attach one image)
  std::uint64_t seed = 42;
};

/// Sample a request trace.
std::vector<engine::Request> generate_trace(const TraceConfig& cfg);

/// Multi-turn conversation workload: every turn's prompt contains the
/// shared system prompt plus the running conversation history, so later
/// turns have longer inputs — the workload shape prefix caching exists
/// for.
struct ConversationConfig {
  int n_conversations = 16;
  int turns_per_conversation = 4;
  int system_prompt_tokens = 512;
  LengthDistribution user_turn = {16, 256, 1.0};
  LengthDistribution reply = {16, 256, 1.0};
  std::uint64_t seed = 42;
};

struct Turn {
  int conversation = 0;
  int turn = 0;
  engine::Request request;          ///< full prompt incl. history
  int shared_prefix_tokens = 0;     ///< reusable tokens (system + history)
};

std::vector<Turn> generate_conversations(const ConversationConfig& cfg);

/// The paper's parameter grid (§3.2): batch sizes and in/out lengths.
const std::vector<int>& paper_batch_sizes();       // {1, 16, 32, 64}
const std::vector<int>& paper_sequence_lengths();  // {128,...,2048}
/// Fig. 5/6 extend batches to 128.
const std::vector<int>& extended_batch_sizes();    // {1, 16, 32, 64, 128}

}  // namespace mib::workload
