// Arrival-time generation for serving traces.
//
// The paper's grid submits everything at t=0; serving studies need traffic
// that arrives over time. This module owns the arrival processes (Poisson
// and a diurnally-modulated Poisson) and stamps `engine::Request::arrival_s`
// so simulators consume explicit timestamps instead of growing their own
// arrival logic (ServingSimulator's `arrival_rate_qps` survives only as a
// deprecated shim over the Poisson process here).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/request.h"

namespace mib::workload {

struct ArrivalConfig {
  /// Mean arrival rate (requests/s). Must be > 0.
  double rate_qps = 1.0;

  enum class Process {
    kPoisson,  ///< homogeneous Poisson: i.i.d. exponential gaps
    kDiurnal,  ///< Poisson with sinusoidally modulated instantaneous rate
  };
  Process process = Process::kPoisson;

  /// Diurnal modulation: rate(t) = rate_qps * (1 + amplitude * sin(2*pi*t /
  /// period)). Gaps are sampled against the instantaneous rate at the
  /// current time (a first-order approximation of the inhomogeneous
  /// process, adequate for load-shape studies).
  double diurnal_period_s = 600.0;
  double diurnal_amplitude = 0.5;  ///< in [0, 1)

  /// Time of the first arrival.
  double start_s = 0.0;
  std::uint64_t seed = 42;

  void validate() const;
};

/// Sample n non-decreasing arrival times (first at start_s).
std::vector<double> generate_arrivals(const ArrivalConfig& cfg, int n);

/// Stamp `arrival_s` onto a trace in order (trace order = arrival order).
void stamp_arrivals(const ArrivalConfig& cfg,
                    std::vector<engine::Request>& trace);

}  // namespace mib::workload
