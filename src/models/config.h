// Architecture descriptors.
//
// A ModelConfig fully determines per-layer FLOPs, weight bytes and KV-cache
// layout — everything the cost model needs. Parameter counting against the
// published total/active counts is the correctness check (see
// tests/models/test_zoo_params.cpp).
#pragma once

#include <optional>
#include <string>

#include "common/dtype.h"

namespace mib::models {

enum class AttentionKind {
  kMHA,  ///< full multi-head attention (n_kv_heads == n_heads)
  kGQA,  ///< grouped-query attention
  kMLA,  ///< DeepSeek multi-head latent attention (compressed KV)
};

enum class Modality { kText, kTextImage };

std::string attention_kind_name(AttentionKind k);
std::string modality_name(Modality m);

/// Vision encoder attached to a VLM (SigLIP-class ViT).
struct VisionTowerConfig {
  int n_layers = 27;
  int hidden = 1152;
  int n_heads = 16;
  int intermediate = 4304;
  int patch_tokens = 576;  ///< visual tokens fed to the LLM per image
  int image_size = 384;
  /// Host-side image preprocessing (decode, dynamic tiling, resize,
  /// normalize) per image, in seconds. This CPU stage is shared by every
  /// model size and is what compresses TTFT gaps across a VLM family.
  double preprocess_s = 0.030;

  /// Encoder parameter count (ViT blocks + patch embed).
  double params() const;
};

struct ModelConfig {
  std::string name;
  Modality modality = Modality::kText;

  int n_layers = 0;
  int hidden = 0;
  int vocab = 0;
  bool tied_embeddings = false;

  // --- attention ---
  AttentionKind attention = AttentionKind::kMHA;
  int n_heads = 0;
  int n_kv_heads = 0;
  int head_dim = 0;
  // MLA (DeepSeek-V2) geometry; ignored unless attention == kMLA.
  int mla_kv_rank = 0;    ///< compressed KV latent dim (c_KV)
  int mla_rope_dim = 0;   ///< decoupled RoPE key dim
  int mla_qk_nope_dim = 0;  ///< per-head non-RoPE QK dim
  /// Query low-rank dim (DeepSeek-V3/Kimi-K2); 0 = full-rank queries
  /// (DeepSeek-V2-Lite).
  int mla_q_rank = 0;

  // --- FFN / MoE ---
  /// FFN dim of dense layers (used by dense models and by the first
  /// n_dense_layers of DeepSeek-style MoEs).
  int dense_ffn = 0;
  /// Number of routed experts; 0 means a dense model.
  int n_experts = 0;
  /// Active (routed) experts per token.
  int top_k = 0;
  /// Per-expert FFN dim.
  int expert_ffn = 0;
  /// Always-on shared experts (DeepSeek / Qwen1.5 / Llama-4 style).
  int n_shared_experts = 0;
  /// FFN dim of EACH shared expert.
  int shared_expert_ffn = 0;
  /// Leading layers that use a dense FFN instead of MoE.
  int n_dense_layers = 0;

  std::optional<VisionTowerConfig> vision;

  /// Software-stack efficiency on the serving framework (1.0 = fully tuned
  /// kernels). Architectures without tuned fused-MoE configs in vLLM at the
  /// paper's timeframe (notably Phi-3.5-MoE) sustain a lower fraction of
  /// hardware peak; the factor divides kernel compute/memory throughput.
  double sw_efficiency = 1.0;

  // --- derived ---
  bool is_moe() const { return n_experts > 0; }
  int moe_layers() const { return is_moe() ? n_layers - n_dense_layers : 0; }
  int dense_layers() const {
    return is_moe() ? n_dense_layers : n_layers;
  }
  /// Experts activated per token including shared experts.
  int active_experts() const { return top_k + n_shared_experts; }

  /// KV-cache bytes per token per layer. GQA/MHA store 2*kv_heads*head_dim
  /// values; MLA stores the compressed latent + decoupled RoPE key.
  double kv_bytes_per_token_per_layer(DType kv_dtype) const;

  /// Sanity-check internal consistency; throws ConfigError on violation.
  void validate() const;
};

}  // namespace mib::models
