#include "models/params.h"

#include "common/error.h"

namespace mib::models {

double attention_params_per_layer(const ModelConfig& cfg) {
  const double h = cfg.hidden;
  if (cfg.attention == AttentionKind::kMLA) {
    // DeepSeek-V2 MLA: queries project to per-head (nope + rope) dims; KV
    // goes through a low-rank latent of mla_kv_rank plus a decoupled RoPE
    // key, then up-projects to per-head K(nope) and V.
    const double q_dim = cfg.n_heads *
                         (cfg.mla_qk_nope_dim + cfg.mla_rope_dim);
    // Full-rank queries (V2-Lite) or a query LoRA (V3 / K2).
    const double q_proj = cfg.mla_q_rank > 0
                              ? h * cfg.mla_q_rank + cfg.mla_q_rank * q_dim
                              : h * q_dim;
    const double kv_down = h * (cfg.mla_kv_rank + cfg.mla_rope_dim);
    const double kv_up =
        cfg.mla_kv_rank * cfg.n_heads * (cfg.mla_qk_nope_dim + cfg.head_dim);
    const double o_proj = cfg.n_heads * cfg.head_dim * h;
    return q_proj + kv_down + kv_up + o_proj;
  }
  const double q_proj = h * cfg.n_heads * cfg.head_dim;
  const double k_proj = h * cfg.n_kv_heads * cfg.head_dim;
  const double v_proj = h * cfg.n_kv_heads * cfg.head_dim;
  const double o_proj = cfg.n_heads * cfg.head_dim * h;
  return q_proj + k_proj + v_proj + o_proj;
}

double expert_params(const ModelConfig& cfg) {
  return 3.0 * cfg.hidden * cfg.expert_ffn;  // SwiGLU gate/up/down
}

double shared_expert_params_per_layer(const ModelConfig& cfg) {
  return cfg.n_shared_experts * 3.0 * cfg.hidden * cfg.shared_expert_ffn;
}

double router_params_per_layer(const ModelConfig& cfg) {
  return static_cast<double>(cfg.hidden) * cfg.n_experts;
}

double dense_ffn_params_per_layer(const ModelConfig& cfg) {
  return 3.0 * cfg.hidden * cfg.dense_ffn;
}

double norm_params_per_layer(const ModelConfig& cfg) {
  return 2.0 * cfg.hidden;
}

double embedding_params(const ModelConfig& cfg) {
  const double one_side = static_cast<double>(cfg.vocab) * cfg.hidden;
  return cfg.tied_embeddings ? one_side : 2.0 * one_side;
}

namespace {
double vision_params(const ModelConfig& cfg) {
  return cfg.vision ? cfg.vision->params() : 0.0;
}
}  // namespace

double total_params(const ModelConfig& cfg) {
  cfg.validate();
  double total = embedding_params(cfg) + vision_params(cfg);
  for (const auto& layer : layer_breakdown(cfg)) total += layer.total();
  return total;
}

double active_params(const ModelConfig& cfg) {
  cfg.validate();
  double total = embedding_params(cfg) + vision_params(cfg);
  for (const auto& layer : layer_breakdown(cfg)) total += layer.active();
  return total;
}

double weight_bytes(const ModelConfig& cfg, DType dt) {
  cfg.validate();
  double norm_total = 0.0;
  for (int i = 0; i < cfg.n_layers; ++i) {
    norm_total += norm_params_per_layer(cfg);
  }
  const double main = total_params(cfg) - norm_total;
  return main * bytes_of(dt) + norm_total * bytes_of(DType::kFP32);
}

std::vector<LayerBreakdown> layer_breakdown(const ModelConfig& cfg) {
  std::vector<LayerBreakdown> out;
  out.reserve(cfg.n_layers);
  for (int i = 0; i < cfg.n_layers; ++i) {
    LayerBreakdown lb;
    lb.layer = i;
    lb.attention = attention_params_per_layer(cfg);
    lb.norms = norm_params_per_layer(cfg);
    const bool moe_layer = cfg.is_moe() && i >= cfg.n_dense_layers;
    lb.is_moe_layer = moe_layer;
    if (moe_layer) {
      const double shared = shared_expert_params_per_layer(cfg);
      lb.ffn_total = cfg.n_experts * expert_params(cfg) + shared;
      lb.ffn_active = cfg.top_k * expert_params(cfg) + shared;
      lb.router = router_params_per_layer(cfg);
    } else {
      lb.ffn_total = lb.ffn_active = dense_ffn_params_per_layer(cfg);
    }
    out.push_back(lb);
  }
  return out;
}

}  // namespace mib::models
