// Parameter and weight-memory accounting.
//
// These formulas reproduce the published total / active parameter counts of
// every model in the zoo (validated in tests against Table 1 of the paper),
// and feed both Fig. 1 (layer-wise breakdown) and the engine's OOM model.
#pragma once

#include <vector>

#include "common/dtype.h"
#include "models/config.h"

namespace mib::models {

/// Parameter count of one attention block (Q/K/V/O projections; MLA uses the
/// low-rank decomposition).
double attention_params_per_layer(const ModelConfig& cfg);

/// One routed expert: SwiGLU gate + up + down = 3 * hidden * expert_ffn.
double expert_params(const ModelConfig& cfg);

/// All shared experts of one layer.
double shared_expert_params_per_layer(const ModelConfig& cfg);

/// Router/gate matrix of one MoE layer.
double router_params_per_layer(const ModelConfig& cfg);

/// Dense FFN block (SwiGLU) of one dense layer.
double dense_ffn_params_per_layer(const ModelConfig& cfg);

/// RMSNorm weights of one layer (2 norms).
double norm_params_per_layer(const ModelConfig& cfg);

/// Embedding (+ LM head unless tied).
double embedding_params(const ModelConfig& cfg);

/// Total parameters including the vision tower if present.
double total_params(const ModelConfig& cfg);

/// Parameters touched per token: attention + norms + router + shared
/// experts + top-k routed experts + embeddings (+ vision tower).
double active_params(const ModelConfig& cfg);

/// Weight memory in bytes when stored in `dt` (norms kept at fp32 — they
/// are negligible, <0.01%).
double weight_bytes(const ModelConfig& cfg, DType dt);

/// Per-layer category breakdown for the paper's Fig. 1.
struct LayerBreakdown {
  int layer = 0;
  bool is_moe_layer = false;
  double attention = 0.0;
  double ffn_total = 0.0;    ///< all experts (or dense FFN)
  double ffn_active = 0.0;   ///< top-k + shared experts (or dense FFN)
  double router = 0.0;
  double norms = 0.0;

  double total() const { return attention + ffn_total + router + norms; }
  double active() const { return attention + ffn_active + router + norms; }
};

std::vector<LayerBreakdown> layer_breakdown(const ModelConfig& cfg);

}  // namespace mib::models
