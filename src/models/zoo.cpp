#include "models/zoo.h"

#include "common/error.h"
#include "common/string_util.h"

namespace mib::models {

ModelConfig mixtral_8x7b() {
  ModelConfig c;
  c.name = "Mixtral-8x7B";
  c.n_layers = 32;
  c.hidden = 4096;
  c.vocab = 32000;
  c.attention = AttentionKind::kGQA;
  c.n_heads = 32;
  c.n_kv_heads = 8;
  c.head_dim = 128;
  c.n_experts = 8;
  c.top_k = 2;
  c.expert_ffn = 14336;
  c.validate();
  return c;
}

ModelConfig qwen15_moe_a27b() {
  ModelConfig c;
  c.name = "Qwen1.5-MoE-A2.7B";
  c.n_layers = 24;
  c.hidden = 2048;
  c.vocab = 151936;
  c.attention = AttentionKind::kMHA;
  c.n_heads = 16;
  c.n_kv_heads = 16;
  c.head_dim = 128;
  c.n_experts = 60;
  c.top_k = 4;
  c.expert_ffn = 1408;
  c.n_shared_experts = 1;
  c.shared_expert_ffn = 5632;
  c.validate();
  return c;
}

ModelConfig qwen3_30b_a3b() {
  ModelConfig c;
  c.name = "Qwen3-30B-A3B";
  c.n_layers = 48;
  c.hidden = 2048;
  c.vocab = 151936;
  c.attention = AttentionKind::kGQA;
  c.n_heads = 32;
  c.n_kv_heads = 4;
  c.head_dim = 128;
  c.n_experts = 128;
  c.top_k = 8;
  c.expert_ffn = 768;
  c.validate();
  return c;
}

ModelConfig deepseek_v2_lite() {
  ModelConfig c;
  c.name = "DeepSeek-V2-Lite";
  c.n_layers = 27;
  c.hidden = 2048;
  c.vocab = 102400;
  c.attention = AttentionKind::kMLA;
  c.n_heads = 16;
  c.n_kv_heads = 16;  // MLA: all heads share the compressed latent
  c.head_dim = 128;   // value head dim
  c.mla_kv_rank = 512;
  c.mla_rope_dim = 64;
  c.mla_qk_nope_dim = 128;
  c.n_experts = 64;
  c.top_k = 6;
  c.expert_ffn = 1408;
  c.n_shared_experts = 2;
  c.shared_expert_ffn = 1408;
  c.n_dense_layers = 1;
  c.dense_ffn = 10944;
  c.validate();
  return c;
}

ModelConfig phi35_moe() {
  ModelConfig c;
  c.name = "Phi-3.5-MoE";
  c.n_layers = 32;
  c.hidden = 4096;
  c.vocab = 32064;
  c.attention = AttentionKind::kGQA;
  c.n_heads = 32;
  c.n_kv_heads = 8;
  c.head_dim = 128;
  c.n_experts = 16;
  c.top_k = 2;
  c.expert_ffn = 6400;
  // vLLM had no tuned fused-MoE kernel configuration for Phi-3.5-MoE in the
  // paper's timeframe; the paper observes it as the slowest model despite a
  // mid-size active parameter count (Fig. 17).
  c.sw_efficiency = 0.68;
  c.validate();
  return c;
}

ModelConfig olmoe_1b_7b() {
  ModelConfig c;
  c.name = "OLMoE-1B-7B";
  c.n_layers = 16;
  c.hidden = 2048;
  c.vocab = 50304;
  c.attention = AttentionKind::kMHA;
  c.n_heads = 16;
  c.n_kv_heads = 16;
  c.head_dim = 128;
  c.n_experts = 64;
  c.top_k = 8;
  // Table 1 lists "FFN dim 8192" = top_k (8) x the real per-expert dim
  // (1024); the per-expert value is what reproduces the 6.9B total.
  c.expert_ffn = 1024;
  c.validate();
  return c;
}

namespace {
VisionTowerConfig siglip_400m() {
  VisionTowerConfig v;
  v.n_layers = 27;
  v.hidden = 1152;
  v.n_heads = 16;
  v.intermediate = 4304;
  v.patch_tokens = 576;
  v.image_size = 384;
  return v;
}
}  // namespace

// DeepSeek-VL2 family: the public papers state total/active budgets
// (3B/1.0B, 16B/2.8B, 27B/4.5B) built on DeepSeekMoE LLM backbones with a
// SigLIP-400M-class vision tower. Geometry below is calibrated to those
// budgets with DeepSeekMoE-style 64-expert top-6 + 2-shared routing.
ModelConfig deepseek_vl2_tiny() {
  ModelConfig c;
  c.name = "DeepSeek-VL2-Tiny";
  c.modality = Modality::kTextImage;
  c.n_layers = 12;
  c.hidden = 1280;
  c.vocab = 102400;
  // The VL2 family's DeepSeekMoE backbones use Multi-head Latent
  // Attention; the compressed KV cache is what lets the 27B model serve
  // batch-64 long-context workloads on one GPU (paper Fig. 4).
  c.attention = AttentionKind::kMLA;
  c.n_heads = 10;
  c.n_kv_heads = 10;
  c.head_dim = 128;
  c.mla_kv_rank = 512;
  c.mla_rope_dim = 64;
  c.mla_qk_nope_dim = 128;
  c.n_experts = 64;
  c.top_k = 6;
  c.expert_ffn = 896;
  c.n_shared_experts = 2;
  c.shared_expert_ffn = 896;
  c.n_dense_layers = 1;
  c.dense_ffn = 6848;
  c.vision = siglip_400m();
  c.validate();
  return c;
}

ModelConfig deepseek_vl2_small() {
  ModelConfig c;
  c.name = "DeepSeek-VL2-Small";
  c.modality = Modality::kTextImage;
  c.n_layers = 27;
  c.hidden = 2048;
  c.vocab = 102400;
  c.attention = AttentionKind::kMLA;
  c.n_heads = 16;
  c.n_kv_heads = 16;
  c.head_dim = 128;
  c.mla_kv_rank = 512;
  c.mla_rope_dim = 64;
  c.mla_qk_nope_dim = 128;
  c.n_experts = 64;
  c.top_k = 6;
  c.expert_ffn = 1408;
  c.n_shared_experts = 2;
  c.shared_expert_ffn = 1408;
  c.n_dense_layers = 1;
  c.dense_ffn = 10944;
  c.vision = siglip_400m();
  c.validate();
  return c;
}

ModelConfig deepseek_vl2() {
  ModelConfig c;
  c.name = "DeepSeek-VL2";
  c.modality = Modality::kTextImage;
  c.n_layers = 30;
  c.hidden = 2560;
  c.vocab = 102400;
  c.attention = AttentionKind::kMLA;
  c.n_heads = 20;
  c.n_kv_heads = 20;
  c.head_dim = 128;
  c.mla_kv_rank = 512;
  c.mla_rope_dim = 64;
  c.mla_qk_nope_dim = 128;
  c.n_experts = 72;
  c.top_k = 6;
  c.expert_ffn = 1536;
  c.n_shared_experts = 2;
  c.shared_expert_ffn = 1536;
  c.n_dense_layers = 1;
  c.dense_ffn = 12288;
  c.vision = siglip_400m();
  c.validate();
  return c;
}

ModelConfig molmoe_1b() {
  // MolmoE-1B wraps the OLMoE-1B-7B backbone with a vision tower; its
  // router was trained without the aux balance loss, which is exactly the
  // skew the paper's Fig. 15 visualizes.
  ModelConfig c = olmoe_1b_7b();
  c.name = "MolmoE-1B";
  c.modality = Modality::kTextImage;
  c.vision = siglip_400m();
  c.validate();
  return c;
}

ModelConfig llama4_scout_17b_16e() {
  ModelConfig c;
  c.name = "Llama-4-Scout-17B-16E";
  c.n_layers = 48;
  c.hidden = 5120;
  c.vocab = 202048;
  c.attention = AttentionKind::kGQA;
  c.n_heads = 40;
  c.n_kv_heads = 8;
  c.head_dim = 128;
  c.n_experts = 16;
  c.top_k = 1;
  c.expert_ffn = 8192;
  c.n_shared_experts = 1;
  c.shared_expert_ffn = 8192;
  c.validate();
  return c;
}

ModelConfig deepseek_v3() {
  // Frontier-scale config (beyond Table 1; the paper's intro cites the
  // family): 671B total / 37B active, 256 experts top-8 + 1 shared, MLA
  // with query LoRA, first 3 layers dense.
  ModelConfig c;
  c.name = "DeepSeek-V3";
  c.n_layers = 61;
  c.hidden = 7168;
  c.vocab = 129280;
  c.attention = AttentionKind::kMLA;
  c.n_heads = 128;
  c.n_kv_heads = 128;
  c.head_dim = 128;
  c.mla_kv_rank = 512;
  c.mla_rope_dim = 64;
  c.mla_qk_nope_dim = 128;
  c.mla_q_rank = 1536;
  c.n_experts = 256;
  c.top_k = 8;
  c.expert_ffn = 2048;
  c.n_shared_experts = 1;
  c.shared_expert_ffn = 2048;
  c.n_dense_layers = 3;
  c.dense_ffn = 18432;
  c.validate();
  return c;
}

ModelConfig kimi_k2() {
  // Kimi K2 (cited in the paper's intro): ~1.04T total / ~32B active,
  // 384 experts top-8 + 1 shared on the DeepSeek-V3 MLA backbone.
  ModelConfig c = deepseek_v3();
  c.name = "Kimi-K2";
  c.n_experts = 384;
  c.n_heads = 64;
  c.n_kv_heads = 64;
  c.vocab = 163840;
  c.n_dense_layers = 1;
  c.validate();
  return c;
}

namespace {
ModelConfig qwen3_dense(const std::string& name, int layers, int hidden,
                        int ffn, int heads, int kv_heads, bool tied) {
  ModelConfig c;
  c.name = name;
  c.n_layers = layers;
  c.hidden = hidden;
  c.vocab = 151936;
  c.tied_embeddings = tied;
  c.attention = AttentionKind::kGQA;
  c.n_heads = heads;
  c.n_kv_heads = kv_heads;
  c.head_dim = 128;
  c.dense_ffn = ffn;
  c.validate();
  return c;
}
}  // namespace

ModelConfig qwen3_0_6b() {
  return qwen3_dense("Qwen3-0.6B", 28, 1024, 3072, 16, 8, /*tied=*/true);
}

ModelConfig qwen3_1_7b() {
  return qwen3_dense("Qwen3-1.7B", 28, 2048, 6144, 16, 8, /*tied=*/true);
}

ModelConfig qwen3_4b() {
  return qwen3_dense("Qwen3-4B", 36, 2560, 9728, 32, 8, /*tied=*/true);
}

ModelConfig qwen3_8b() {
  return qwen3_dense("Qwen3-8B", 36, 4096, 12288, 32, 8, /*tied=*/false);
}

std::vector<ModelConfig> table1_models() {
  return {mixtral_8x7b(),     qwen15_moe_a27b(),    qwen3_30b_a3b(),
          deepseek_v2_lite(), phi35_moe(),          olmoe_1b_7b(),
          deepseek_vl2_tiny(), deepseek_vl2_small(), deepseek_vl2()};
}

std::vector<ModelConfig> llm_models() {
  return {mixtral_8x7b(),     qwen15_moe_a27b(), qwen3_30b_a3b(),
          deepseek_v2_lite(), phi35_moe(),       olmoe_1b_7b()};
}

std::vector<ModelConfig> vlm_models() {
  return {deepseek_vl2_tiny(), deepseek_vl2_small(), deepseek_vl2()};
}

std::vector<ModelConfig> all_models() {
  auto v = table1_models();
  v.push_back(molmoe_1b());
  v.push_back(llama4_scout_17b_16e());
  v.push_back(deepseek_v3());
  v.push_back(kimi_k2());
  v.push_back(qwen3_0_6b());
  v.push_back(qwen3_1_7b());
  v.push_back(qwen3_4b());
  v.push_back(qwen3_8b());
  return v;
}

ModelConfig model_by_name(const std::string& name) {
  const std::string want = to_lower(name);
  for (const auto& m : all_models()) {
    if (to_lower(m.name) == want) return m;
  }
  throw ConfigError("unknown model name: " + name);
}

}  // namespace mib::models
