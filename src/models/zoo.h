// The model zoo: every architecture the paper evaluates.
//
// Configurations follow the released model configs (see DESIGN.md for the
// documented Table-1 discrepancies); the DeepSeek-VL2 family is calibrated
// to the paper's total/active parameter budgets because the full configs are
// not public. Each factory's comment records the published total/active
// counts it is validated against.
#pragma once

#include <string>
#include <vector>

#include "models/config.h"

namespace mib::models {

// --- Table 1 MoE LLMs ---
ModelConfig mixtral_8x7b();        ///< 46.7B total / 12.9B active
ModelConfig qwen15_moe_a27b();     ///< 14.3B / 2.7B
ModelConfig qwen3_30b_a3b();       ///< 30.5B / 3.3B
ModelConfig deepseek_v2_lite();    ///< 15.7B / 2.4B
ModelConfig phi35_moe();           ///< 41.9B / 6.6B
ModelConfig olmoe_1b_7b();         ///< 6.9B / 1.3B

// --- Table 1 VLM MoEs ---
ModelConfig deepseek_vl2_tiny();   ///< ~3B / ~1.0B
ModelConfig deepseek_vl2_small();  ///< ~16B / ~2.8B
ModelConfig deepseek_vl2();        ///< ~27B / ~4.5B

// --- §8.3 activation-frequency study ---
ModelConfig molmoe_1b();           ///< OLMoE-based VLM, 7.2B / 1.3B

// --- §7.3 hardware comparison ---
ModelConfig llama4_scout_17b_16e();  ///< ~109B / 17B

// --- frontier-scale extensions (paper intro cites the families) ---
ModelConfig deepseek_v3();  ///< 671B / 37B
ModelConfig kimi_k2();      ///< ~1.04T / ~32B

// --- §6.3 speculative-decoding draft models (dense Qwen3) ---
ModelConfig qwen3_0_6b();
ModelConfig qwen3_1_7b();
ModelConfig qwen3_4b();
ModelConfig qwen3_8b();

/// The nine models of the paper's Table 1, in table order.
std::vector<ModelConfig> table1_models();
/// The six text MoE LLMs used throughout §4–§8.
std::vector<ModelConfig> llm_models();
/// The DeepSeek-VL2 family.
std::vector<ModelConfig> vlm_models();
/// Everything in the zoo.
std::vector<ModelConfig> all_models();

/// Case-insensitive lookup by model name; throws ConfigError if unknown.
ModelConfig model_by_name(const std::string& name);

}  // namespace mib::models
