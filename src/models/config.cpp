#include "models/config.h"

#include "common/error.h"

namespace mib::models {

std::string attention_kind_name(AttentionKind k) {
  switch (k) {
    case AttentionKind::kMHA:
      return "MHA";
    case AttentionKind::kGQA:
      return "GQA";
    case AttentionKind::kMLA:
      return "MLA";
  }
  return "?";
}

std::string modality_name(Modality m) {
  return m == Modality::kText ? "Text" : "Text+Image";
}

double VisionTowerConfig::params() const {
  // ViT block: attention (4 * h^2) + MLP (2 * h * intermediate) + norms.
  const double h = hidden;
  const double per_layer = 4.0 * h * h + 2.0 * h * intermediate + 4.0 * h;
  const double patch_embed = 3.0 * 14.0 * 14.0 * h;  // 14x14 patch conv
  const double pos_embed = (image_size / 14.0) * (image_size / 14.0) * h;
  return n_layers * per_layer + patch_embed + pos_embed;
}

double ModelConfig::kv_bytes_per_token_per_layer(DType kv_dtype) const {
  if (attention == AttentionKind::kMLA) {
    return (mla_kv_rank + mla_rope_dim) * bytes_of(kv_dtype);
  }
  return 2.0 * n_kv_heads * head_dim * bytes_of(kv_dtype);
}

void ModelConfig::validate() const {
  MIB_ENSURE(!name.empty(), "model needs a name");
  MIB_ENSURE(n_layers > 0, name << ": n_layers must be positive");
  MIB_ENSURE(hidden > 0, name << ": hidden must be positive");
  MIB_ENSURE(vocab > 0, name << ": vocab must be positive");
  MIB_ENSURE(n_heads > 0, name << ": n_heads must be positive");
  MIB_ENSURE(n_kv_heads > 0 && n_kv_heads <= n_heads,
             name << ": n_kv_heads must be in [1, n_heads]");
  MIB_ENSURE(n_heads % n_kv_heads == 0,
             name << ": n_heads must be divisible by n_kv_heads");
  MIB_ENSURE(head_dim > 0, name << ": head_dim must be positive");

  if (attention == AttentionKind::kMHA) {
    MIB_ENSURE(n_kv_heads == n_heads, name << ": MHA requires kv==q heads");
  }
  if (attention == AttentionKind::kMLA) {
    MIB_ENSURE(mla_kv_rank > 0, name << ": MLA requires mla_kv_rank");
    MIB_ENSURE(mla_rope_dim >= 0, name << ": negative mla_rope_dim");
  }

  if (is_moe()) {
    MIB_ENSURE(top_k >= 1 && top_k <= n_experts,
               name << ": top_k must be in [1, n_experts]");
    MIB_ENSURE(expert_ffn > 0, name << ": MoE needs expert_ffn");
    MIB_ENSURE(n_dense_layers >= 0 && n_dense_layers < n_layers,
               name << ": n_dense_layers out of range");
    if (n_dense_layers > 0) {
      MIB_ENSURE(dense_ffn > 0,
                 name << ": dense layers need dense_ffn");
    }
    if (n_shared_experts > 0) {
      MIB_ENSURE(shared_expert_ffn > 0,
                 name << ": shared experts need shared_expert_ffn");
    }
  } else {
    MIB_ENSURE(dense_ffn > 0, name << ": dense model needs dense_ffn");
    MIB_ENSURE(top_k == 0 && n_shared_experts == 0,
               name << ": dense model cannot have routing fields");
  }

  MIB_ENSURE(sw_efficiency > 0.0 && sw_efficiency <= 1.0,
             name << ": sw_efficiency must be in (0, 1]");

  if (modality == Modality::kTextImage) {
    MIB_ENSURE(vision.has_value(),
               name << ": image modality requires a vision tower");
  }
}

}  // namespace mib::models
