// Parallelization plans (paper §7.1).
//
// A plan distributes one model replica over tp × pp devices:
//   * TP  — tensor parallelism: every weight matrix is sliced across the tp
//           ranks; two allreduces per transformer layer.
//   * PP  — pipeline parallelism: layers are divided into pp stages.
//   * EP  — expert parallelism (flag): MoE expert weights are distributed
//           *whole* across the tp group instead of being tensor-sliced;
//           token dispatch/combine becomes an all-to-all. Matches vLLM's
//           --enable-expert-parallel semantics, which the paper benchmarks.
#pragma once

#include <string>

#include "models/config.h"

namespace mib::parallel {

struct ParallelPlan {
  int tp = 1;
  int pp = 1;
  bool ep = false;

  int devices() const { return tp * pp; }

  /// Human-readable label, e.g. "TP4", "TP2+EP", "TP2xPP2+EP".
  std::string label() const;

  /// Validate against a model: divisibility of heads/experts/layers.
  void validate(const models::ModelConfig& model) const;

  /// Experts resident on each device (EP distributes them whole; TP slices
  /// every expert so each device sees all of them).
  int experts_per_device(const models::ModelConfig& model) const;
};

/// The four strategy families of the paper's Fig. 13 instantiated for a
/// given device count (n >= 1):
///   TP(n), TP(n)+EP, PP(n), and the hybrid PP(n/2)xTP(2)+EP (for n >= 4;
///   degenerates to TP+EP below that).
ParallelPlan tp_plan(int n);
ParallelPlan tp_ep_plan(int n);
ParallelPlan pp_plan(int n);
ParallelPlan pp_ep_plan(int n);

}  // namespace mib::parallel
