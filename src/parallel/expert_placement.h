// Routing statistics and expert-placement math.
//
// Analytic counterparts of the functional router's behavior: how many
// distinct experts a batch of routed tokens touches (drives decode weight
// traffic), and how uneven the per-device load is under expert parallelism
// (drives the EP slowest-device penalty). Both support uniform and
// Zipf-skewed token-to-expert distributions; the functional router's
// empirical counts validate these formulas in tests.
#pragma once

#include <vector>

namespace mib::parallel {

/// Token-to-expert distribution model.
struct RoutingModel {
  /// Zipf exponent of expert popularity; 0 = uniform (aux-loss-balanced).
  double zipf_s = 0.0;

  bool uniform() const { return zipf_s == 0.0; }
};

/// Per-expert selection probabilities (sums to 1, size n_experts).
std::vector<double> expert_probabilities(int n_experts,
                                         const RoutingModel& routing);

/// Expected number of distinct experts hit by `assignments` independent
/// expert draws: sum_i 1 - (1 - p_i)^n.
double expected_distinct_experts(int n_experts, double assignments,
                                 const RoutingModel& routing);

/// Expected (max device load) / (mean device load) when `n_experts` experts
/// are partitioned contiguously across `groups` devices and `assignments`
/// draws land on them. 1.0 for a single group; >= 1 otherwise. Uses a
/// Gaussian extreme-value approximation of the multinomial group loads,
/// exact in the limits (-> 1 as assignments -> inf under uniform routing).
double expected_max_group_load_factor(int n_experts, double assignments,
                                      int groups,
                                      const RoutingModel& routing);

/// Expected fraction of all routed assignments landing on the most loaded
/// of `groups` devices (factor / groups, clamped to [1/groups, 1]).
double expected_max_group_share(int n_experts, double assignments, int groups,
                                const RoutingModel& routing);

// --- expert placement optimization ---
//
// EP assigns whole experts to devices. The naive contiguous placement
// (experts [0, E/g) on device 0, ...) concentrates a Zipf-popular head on
// one device; longest-processing-time greedy placement spreads popular
// experts across devices and provably bounds the max share.

/// placement[e] = device hosting expert e; contiguous blocks.
std::vector<int> contiguous_placement(int n_experts, int groups);

/// LPT greedy: experts sorted by popularity (desc), each assigned to the
/// currently lightest device. `probs` must be a probability vector.
std::vector<int> balanced_placement(const std::vector<double>& probs,
                                    int groups);

/// Probability mass of the heaviest device under a placement.
double placement_max_mass(const std::vector<double>& probs,
                          const std::vector<int>& placement, int groups);

/// expected_max_group_load_factor generalized to an arbitrary placement.
double expected_max_load_factor_for_placement(
    const std::vector<double>& probs, const std::vector<int>& placement,
    int groups, double assignments);

}  // namespace mib::parallel
