// Pipeline-parallel schedule model (GPipe-style fill/drain).
//
// Prefill is split into microbatches that stream through the stages; the
// classic bubble stretches total time by (m + p - 1) / m. Decode keeps a
// single in-flight batch, so a decode step is the *sum* of stage times plus
// boundary transfers — which is why the paper's PP curves are flat.
#pragma once

#include "hw/interconnect.h"

namespace mib::parallel {

/// Wall time of running `total_work` (seconds of single-device-equivalent
/// compute, i.e. the whole batch through the whole model on one device)
/// over `stages` pipeline stages with `microbatches` microbatches.
double pipeline_fill_drain_time(double total_work, int stages,
                                int microbatches);

/// The pipeline bubble fraction: extra time / ideal time.
double pipeline_bubble_fraction(int stages, int microbatches);

/// Total activation-transfer time across stage boundaries: each microbatch
/// crosses (stages - 1) boundaries carrying `bytes_per_microbatch`.
/// Transfers overlap with compute only partially; we charge them serially
/// (conservative, matches the paper's poor PP scaling).
double pipeline_transfer_time(double bytes_per_microbatch, int stages,
                              int microbatches, const hw::Interconnect& ic);

/// Heuristic microbatch count for a prefill batch (vLLM uses up to
/// 2 x pp in-flight microbatches; a batch can't split below 1 sequence).
int choose_microbatches(int batch, int stages);

}  // namespace mib::parallel
