#include "parallel/pipeline.h"

#include <algorithm>

#include "common/error.h"

namespace mib::parallel {

double pipeline_fill_drain_time(double total_work, int stages,
                                int microbatches) {
  MIB_ENSURE(total_work >= 0, "negative work");
  MIB_ENSURE(stages >= 1 && microbatches >= 1, "invalid pipeline shape");
  if (stages == 1) return total_work;
  // Per-microbatch per-stage time; stages are assumed balanced.
  const double t_stage =
      total_work / (static_cast<double>(stages) * microbatches);
  return (microbatches + stages - 1) * t_stage;
}

double pipeline_bubble_fraction(int stages, int microbatches) {
  MIB_ENSURE(stages >= 1 && microbatches >= 1, "invalid pipeline shape");
  return static_cast<double>(stages - 1) / microbatches;
}

double pipeline_transfer_time(double bytes_per_microbatch, int stages,
                              int microbatches, const hw::Interconnect& ic) {
  MIB_ENSURE(bytes_per_microbatch >= 0, "negative bytes");
  MIB_ENSURE(stages >= 1 && microbatches >= 1, "invalid pipeline shape");
  if (stages == 1) return 0.0;
  const double per_crossing = ic.p2p(bytes_per_microbatch);
  return per_crossing * (stages - 1) * microbatches;
}

int choose_microbatches(int batch, int stages) {
  MIB_ENSURE(batch >= 1 && stages >= 1, "invalid shape");
  return std::max(1, std::min(batch, 2 * stages));
}

}  // namespace mib::parallel
