#include "parallel/plan.h"

#include "common/error.h"

namespace mib::parallel {

std::string ParallelPlan::label() const {
  std::string s;
  if (tp > 1 || (tp == 1 && pp == 1)) s += "TP" + std::to_string(tp);
  if (pp > 1) {
    if (!s.empty()) s += "x";
    s += "PP" + std::to_string(pp);
  }
  if (ep) s += "+EP";
  return s;
}

void ParallelPlan::validate(const models::ModelConfig& model) const {
  MIB_ENSURE(tp >= 1 && pp >= 1, "plan degrees must be >= 1");
  MIB_ENSURE(model.n_layers >= pp,
             model.name << ": pp " << pp << " exceeds layer count");
  if (tp > 1 && !ep) {
    // Tensor slicing needs divisible head counts (vLLM's constraint).
    MIB_ENSURE(model.n_heads % tp == 0,
               model.name << ": n_heads not divisible by tp " << tp);
  }
  if (ep) {
    MIB_ENSURE(model.is_moe(), model.name << ": EP requires a MoE model");
    MIB_ENSURE(tp >= 1, "EP shards experts across the tp group");
    MIB_ENSURE(model.n_experts % tp == 0,
               model.name << ": n_experts " << model.n_experts
                          << " not divisible by EP group " << tp);
  }
}

int ParallelPlan::experts_per_device(const models::ModelConfig& model) const {
  if (!model.is_moe()) return 0;
  return ep ? model.n_experts / tp : model.n_experts;
}

ParallelPlan tp_plan(int n) {
  MIB_ENSURE(n >= 1, "device count must be >= 1");
  return ParallelPlan{.tp = n, .pp = 1, .ep = false};
}

ParallelPlan tp_ep_plan(int n) {
  MIB_ENSURE(n >= 1, "device count must be >= 1");
  return ParallelPlan{.tp = n, .pp = 1, .ep = n > 1};
}

ParallelPlan pp_plan(int n) {
  MIB_ENSURE(n >= 1, "device count must be >= 1");
  return ParallelPlan{.tp = 1, .pp = n, .ep = false};
}

ParallelPlan pp_ep_plan(int n) {
  MIB_ENSURE(n >= 1, "device count must be >= 1");
  if (n >= 4) return ParallelPlan{.tp = 2, .pp = n / 2, .ep = true};
  if (n >= 2) return ParallelPlan{.tp = 2, .pp = n / 2, .ep = true};
  return ParallelPlan{.tp = 1, .pp = 1, .ep = false};
}

}  // namespace mib::parallel
