#include "parallel/expert_placement.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace mib::parallel {

std::vector<double> expert_probabilities(int n_experts,
                                         const RoutingModel& routing) {
  MIB_ENSURE(n_experts >= 1, "need at least one expert");
  MIB_ENSURE(routing.zipf_s >= 0.0, "negative Zipf exponent");
  std::vector<double> p(n_experts);
  double total = 0.0;
  for (int i = 0; i < n_experts; ++i) {
    p[i] = routing.uniform()
               ? 1.0
               : 1.0 / std::pow(static_cast<double>(i + 1), routing.zipf_s);
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}

double expected_distinct_experts(int n_experts, double assignments,
                                 const RoutingModel& routing) {
  MIB_ENSURE(assignments >= 0.0, "negative assignments");
  if (assignments == 0.0) return 0.0;
  const auto p = expert_probabilities(n_experts, routing);
  double hit = 0.0;
  for (double pi : p) {
    // 1 - (1 - p)^n, computed stably via expm1/log1p.
    hit += -std::expm1(assignments * std::log1p(-pi));
  }
  return hit;
}

namespace {
/// Expected maximum of `g` (approximately) normal variables with given
/// means/stddevs: mean_max ≈ max_i mean_i + sigma_pooled * sqrt(2 ln g).
/// For the uniform case all groups share mean/sigma and this is the
/// standard extreme-value asymptotic.
double expected_max_normal(const std::vector<double>& mean,
                           const std::vector<double>& sigma) {
  const std::size_t g = mean.size();
  if (g == 1) return mean[0];
  double mu_max = mean[0];
  double sig = 0.0;
  for (std::size_t i = 0; i < g; ++i) {
    mu_max = std::max(mu_max, mean[i]);
    sig += sigma[i] * sigma[i];
  }
  sig = std::sqrt(sig / static_cast<double>(g));
  return mu_max + sig * std::sqrt(2.0 * std::log(static_cast<double>(g)));
}
}  // namespace

double expected_max_group_load_factor(int n_experts, double assignments,
                                      int groups,
                                      const RoutingModel& routing) {
  MIB_ENSURE(groups >= 1, "need at least one group");
  MIB_ENSURE(n_experts >= groups, "fewer experts than groups");
  if (groups == 1 || assignments <= 0.0) return 1.0;

  const auto p = expert_probabilities(n_experts, routing);
  const int per_group = n_experts / groups;

  std::vector<double> mean(groups, 0.0);
  std::vector<double> sigma(groups, 0.0);
  for (int gidx = 0; gidx < groups; ++gidx) {
    double pg = 0.0;
    for (int e = gidx * per_group;
         e < std::min(n_experts, (gidx + 1) * per_group); ++e) {
      pg += p[e];
    }
    mean[gidx] = assignments * pg;
    sigma[gidx] = std::sqrt(assignments * pg * (1.0 - pg));
  }

  const double mean_load = assignments / groups;
  const double emax = expected_max_normal(mean, sigma);
  // The max load can never exceed all assignments nor drop below the mean.
  const double clamped = std::clamp(emax, mean_load, assignments);
  return clamped / mean_load;
}

double expected_max_group_share(int n_experts, double assignments, int groups,
                                const RoutingModel& routing) {
  const double factor = expected_max_group_load_factor(
      n_experts, assignments, groups, routing);
  return std::clamp(factor / groups, 1.0 / groups, 1.0);
}

std::vector<int> contiguous_placement(int n_experts, int groups) {
  MIB_ENSURE(groups >= 1 && n_experts >= groups,
             "placement needs n_experts >= groups >= 1");
  const int per_group = n_experts / groups;
  std::vector<int> p(n_experts);
  for (int e = 0; e < n_experts; ++e) {
    p[e] = std::min(e / per_group, groups - 1);
  }
  return p;
}

std::vector<int> balanced_placement(const std::vector<double>& probs,
                                    int groups) {
  MIB_ENSURE(groups >= 1, "need at least one group");
  MIB_ENSURE(static_cast<int>(probs.size()) >= groups,
             "fewer experts than groups");
  std::vector<int> order(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    MIB_ENSURE(probs[i] >= 0.0, "negative expert probability");
    order[i] = static_cast<int>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return probs[a] > probs[b]; });

  std::vector<double> mass(groups, 0.0);
  std::vector<int> count(groups, 0);
  const int cap = (static_cast<int>(probs.size()) + groups - 1) / groups;
  std::vector<int> placement(probs.size(), -1);
  for (int e : order) {
    // Lightest device with remaining expert slots (capacity keeps the
    // per-device weight footprint even, as real EP requires).
    int best = -1;
    for (int g = 0; g < groups; ++g) {
      if (count[g] >= cap) continue;
      if (best < 0 || mass[g] < mass[best]) best = g;
    }
    MIB_ENSURE(best >= 0, "no device with free expert slots");
    placement[e] = best;
    mass[best] += probs[e];
    ++count[best];
  }
  return placement;
}

double placement_max_mass(const std::vector<double>& probs,
                          const std::vector<int>& placement, int groups) {
  MIB_ENSURE(probs.size() == placement.size(),
             "placement size mismatch");
  std::vector<double> mass(groups, 0.0);
  for (std::size_t e = 0; e < probs.size(); ++e) {
    MIB_ENSURE(placement[e] >= 0 && placement[e] < groups,
               "placement group out of range");
    mass[placement[e]] += probs[e];
  }
  return *std::max_element(mass.begin(), mass.end());
}

double expected_max_load_factor_for_placement(
    const std::vector<double>& probs, const std::vector<int>& placement,
    int groups, double assignments) {
  MIB_ENSURE(assignments >= 0.0, "negative assignments");
  if (groups == 1 || assignments <= 0.0) return 1.0;
  std::vector<double> pg(groups, 0.0);
  for (std::size_t e = 0; e < probs.size(); ++e) pg[placement[e]] += probs[e];
  std::vector<double> mean(groups), sigma(groups);
  for (int g = 0; g < groups; ++g) {
    mean[g] = assignments * pg[g];
    sigma[g] = std::sqrt(assignments * pg[g] * (1.0 - pg[g]));
  }
  double mu_max = mean[0], sig = 0.0;
  for (int g = 0; g < groups; ++g) {
    mu_max = std::max(mu_max, mean[g]);
    sig += sigma[g] * sigma[g];
  }
  sig = std::sqrt(sig / groups);
  const double emax =
      mu_max + sig * std::sqrt(2.0 * std::log(static_cast<double>(groups)));
  const double mean_load = assignments / groups;
  return std::clamp(emax, mean_load, assignments) / mean_load;
}

}  // namespace mib::parallel
