#include "fleet/replica.h"

#include <algorithm>
#include <tuple>

#include "common/error.h"

namespace mib::fleet {

void ReplicaConfig::validate() const {
  MIB_ENSURE(max_batch >= 1, "replica max_batch must be >= 1");
  MIB_ENSURE(prefill_tokens_per_step >= 1,
             "replica prefill budget must be >= 1 token");
  MIB_ENSURE(prefix_cache_entries >= 0, "negative prefix cache size");
}

Replica::Replica(const engine::LayerCostModel* cost,
                 long long kv_capacity_tokens, ReplicaConfig cfg)
    : cost_(cost), kv_capacity_(kv_capacity_tokens), cfg_(cfg) {
  MIB_ENSURE(cost_ != nullptr, "replica needs a cost model");
  MIB_ENSURE(kv_capacity_ >= 1, "replica KV capacity below one token");
  cfg_.validate();
}

void Replica::set_cost_model(const engine::LayerCostModel* cost) {
  MIB_ENSURE(cost != nullptr, "replica needs a cost model");
  cost_ = cost;
}

const Sequence* Replica::find(int request_id) const {
  for (const auto& s : running_) {
    if (s.request_id == request_id) return &s;
  }
  for (const auto& s : waiting_) {
    if (s.request_id == request_id) return &s;
  }
  return nullptr;
}

bool Replica::started(int request_id) const {
  const Sequence* s = find(request_id);
  return s != nullptr && s->first_token_s >= 0.0;
}

bool Replica::cancel(int request_id) {
  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->request_id == request_id) {
      running_.erase(it);
      // Retired capacity, even if by cancellation: admissions resume.
      admission_blocked_ = false;
      return true;
    }
  }
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->request_id == request_id) {
      waiting_.erase(it);
      return true;
    }
  }
  return false;
}

bool Replica::take(int request_id, Sequence* out) {
  MIB_ENSURE(out != nullptr, "take needs somewhere to put the sequence");
  for (auto it = running_.begin(); it != running_.end(); ++it) {
    if (it->request_id == request_id) {
      *out = *it;
      running_.erase(it);
      admission_blocked_ = false;
      return true;
    }
  }
  for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
    if (it->request_id == request_id) {
      *out = *it;
      waiting_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<int> Replica::waiting_hedges() const {
  std::vector<int> ids;
  for (const auto& s : waiting_) {
    if (s.is_hedge) ids.push_back(s.request_id);
  }
  return ids;
}

std::vector<int> Replica::resident_ids() const {
  std::vector<int> ids;
  ids.reserve(running_.size() + waiting_.size());
  for (const auto& s : running_) ids.push_back(s.request_id);
  for (const auto& s : waiting_) ids.push_back(s.request_id);
  return ids;
}

long long Replica::outstanding_tokens() const {
  long long total = 0;
  for (const auto& s : waiting_) total += s.remaining_tokens();
  for (const auto& s : running_) total += s.remaining_tokens();
  return total;
}

long long Replica::kv_in_use() const {
  long long used = 0;
  for (const auto& s : running_) used += s.kv_tokens();
  return used;
}

void Replica::touch_prefix(std::uint64_t hash) {
  if (hash == 0 || cfg_.prefix_cache_entries == 0) return;
  prefix_cache_[hash] = ++prefix_tick_;
  while (prefix_cache_.size() >
         static_cast<std::size_t>(cfg_.prefix_cache_entries)) {
    auto oldest = prefix_cache_.begin();
    for (auto it = prefix_cache_.begin(); it != prefix_cache_.end(); ++it) {
      if (it->second < oldest->second) oldest = it;
    }
    prefix_cache_.erase(oldest);
  }
}

std::vector<Sequence> Replica::drop_expired(double now) {
  std::vector<Sequence> expired;
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (it->deadline_s > 0.0 && now > it->deadline_s) {
      expired.push_back(*it);
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void Replica::admit() {
  while (!waiting_.empty() &&
         static_cast<int>(running_.size()) < cfg_.max_batch) {
    const Sequence& head = waiting_.front();
    // A migrated sequence arrives with KV already accumulated; reserve for
    // whichever is larger, its resident state or its full prompt.
    const long long need =
        std::max<long long>(head.input_tokens, head.kv_tokens());
    if (kv_in_use() + need > kv_capacity_) break;
    Sequence s = head;
    waiting_.pop_front();
    // Prefix-cache lookup happens when service starts: a warm conversation
    // prefix is skipped (its KV "reappears" from the cache), so prefill
    // charges only the new turn. Migrated sequences (progress > 0) carry
    // their KV with them and skip the lookup.
    if (s.prefix_hash != 0 && s.prefilled == 0 && s.generated == 0) {
      ++prefix_lookups_;
      if (prefix_warm(s.prefix_hash)) {
        ++prefix_hits_;
        s.prefix_hit = true;
        s.prefilled = std::min(s.prefix_tokens, s.input_tokens - 1);
        touch_prefix(s.prefix_hash);
      }
    }
    running_.push_back(s);
  }
}

void Replica::begin_step(double now) {
  MIB_ENSURE(!mid_step_, "begin_step while a step is in flight");
  MIB_ENSURE(has_work(), "begin_step on an idle replica");

  if (running_.empty()) admission_blocked_ = false;
  if (!admission_blocked_) admit();
  MIB_ENSURE(!running_.empty(), "replica admitted nothing despite work");

  // vLLM recompute preemption: the youngest sequence loses its KV and
  // rejoins the local queue from scratch; admission pauses until a running
  // sequence retires (prevents readmit-thrash).
  auto preempt_youngest = [&] {
    auto victim = std::max_element(
        running_.begin(), running_.end(), [](const Sequence& a, const Sequence& b) {
          return std::tie(a.arrival_s, a.request_id) <
                 std::tie(b.arrival_s, b.request_id);
        });
    Sequence s = *victim;
    running_.erase(victim);
    s.prefilled = 0;
    s.generated = 0;
    s.first_token_s = -1.0;
    s.prefix_hit = false;
    waiting_.push_front(s);
    ++preemptions_;
    admission_blocked_ = true;
  };

  int decode_batch = 0;
  double ctx_sum = 0.0;
  int prefill_tokens = 0;
  for (;;) {
    decode_batch = 0;
    ctx_sum = 0.0;
    for (const auto& s : running_) {
      if (s.prefill_done()) {
        ++decode_batch;
        ctx_sum += static_cast<double>(s.kv_tokens());
      }
    }
    // Decode grows every finished context by one token this step.
    if (kv_in_use() + decode_batch > kv_capacity_ && running_.size() > 1) {
      preempt_youngest();
      continue;
    }
    // Chunked prefill within the per-step token budget.
    int budget = cfg_.prefill_tokens_per_step;
    prefill_tokens = 0;
    for (auto& s : running_) {
      if (s.prefill_done() || budget <= 0) continue;
      const int chunk = std::min(budget, s.input_tokens - s.prefilled);
      if (kv_in_use() + chunk <= kv_capacity_) {
        s.prefilled += chunk;
        budget -= chunk;
        prefill_tokens += chunk;
      }
    }
    // All-prefill batch that cannot fit a single chunk: free KV by
    // preempting until one fits (never leaves fewer than one sequence —
    // a lone sequence always fits, the fleet validates that on submit).
    if (decode_batch == 0 && prefill_tokens == 0 && running_.size() > 1) {
      preempt_youngest();
      continue;
    }
    break;
  }
  MIB_ENSURE(decode_batch > 0 || prefill_tokens > 0,
             "replica built a zero-work step");

  // Price the step exactly like the single-replica simulator: LM head and
  // per-step overhead are charged once per engine step, not once per phase.
  double step_time = 0.0;
  if (decode_batch > 0) {
    const double avg_ctx =
        std::max(1.0, ctx_sum / static_cast<double>(decode_batch));
    step_time += cost_->decode_step(decode_batch, avg_ctx).total();
  }
  if (prefill_tokens > 0) {
    const auto pf = cost_->prefill(1, prefill_tokens);
    step_time += pf.total() - pf.head - pf.overhead;
    if (decode_batch == 0) step_time += pf.head + pf.overhead;
  }
  MIB_ENSURE(step_time > 0.0, "zero-cost step");

  mid_step_ = true;
  step_end_ = now + step_time;
  step_cost_ = step_time;
  busy_s_ += step_time;
  ++steps_;
}

std::vector<Sequence> Replica::complete_step() {
  MIB_ENSURE(mid_step_, "complete_step without a step in flight");
  mid_step_ = false;
  const double now = step_end_;

  // Each batched sequence consumed its share of the step: the capacity a
  // duplicate copy burns is priced per-copy, not per-step. Copies pulled
  // out mid-step (cancelled hedge losers) forfeit their share.
  if (!running_.empty()) {
    const double share = step_cost_ / static_cast<double>(running_.size());
    for (auto& s : running_) s.served_s += share;
  }

  std::vector<Sequence> finished;
  for (auto it = running_.begin(); it != running_.end();) {
    Sequence& s = *it;
    bool advanced = false;
    if (s.prefill_done() && s.generated < s.output_tokens) {
      // A sequence whose prefill completed this step emits its first token
      // now; afterwards it decodes one token per step.
      if (s.first_token_s < 0.0) {
        s.first_token_s = now;
        s.generated = 1;
      } else {
        ++s.generated;
      }
      advanced = true;
    }
    if (advanced && s.finished()) {
      // The conversation's history (prefix + new turn) is now resident.
      touch_prefix(s.prefix_hash);
      finished.push_back(s);
      it = running_.erase(it);
      admission_blocked_ = false;  // capacity retired: admissions resume
    } else {
      ++it;
    }
  }
  return finished;
}

std::vector<Sequence> Replica::take_all() {
  std::vector<Sequence> out;
  out.reserve(running_.size() + waiting_.size());
  for (auto& s : running_) out.push_back(s);
  for (auto& s : waiting_) out.push_back(s);
  running_.clear();
  waiting_.clear();
  // The node goes away either way (crash or maintenance reboot): its
  // prefix cache is cold when it returns.
  prefix_cache_.clear();
  mid_step_ = false;
  admission_blocked_ = false;
  return out;
}

std::vector<Sequence> Replica::take_waiting() {
  std::vector<Sequence> out(waiting_.begin(), waiting_.end());
  waiting_.clear();
  return out;
}

void Replica::finish_drain() {
  MIB_ENSURE(running_.empty() && waiting_.empty(),
             "finish_drain on a replica still holding work");
  prefix_cache_.clear();
  mid_step_ = false;
  admission_blocked_ = false;
}

std::vector<Sequence> Replica::evacuate() {
  auto out = take_all();
  // Crash: KV is gone, all progress lost.
  for (auto& s : out) {
    s.prefilled = 0;
    s.generated = 0;
    s.first_token_s = -1.0;
    s.prefix_hit = false;
  }
  return out;
}

}  // namespace mib::fleet
