#include "fleet/topology.h"

#include <algorithm>
#include <map>

namespace mib::fleet {

namespace {

/// Sort + union-merge intervals in place; touching windows coalesce.
std::vector<std::pair<double, double>> merge_intervals(
    std::vector<std::pair<double, double>> iv) {
  std::sort(iv.begin(), iv.end());
  std::vector<std::pair<double, double>> out;
  for (const auto& [s, e] : iv) {
    if (!out.empty() && s <= out.back().second) {
      out.back().second = std::max(out.back().second, e);
    } else {
      out.emplace_back(s, e);
    }
  }
  return out;
}

}  // namespace

void TopologyConfig::validate(int pool) const {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const auto& d = domains[i];
    MIB_ENSURE(!d.name.empty(), "failure domain with an empty name");
    MIB_ENSURE(index.emplace(d.name, i).second,
               "duplicate failure domain \"" << d.name << "\"");
  }
  for (const auto& d : domains) {
    if (d.parent.empty()) continue;
    MIB_ENSURE(index.count(d.parent) > 0,
               "domain \"" << d.name << "\" names unknown parent \""
                           << d.parent << "\"");
    MIB_ENSURE(d.parent != d.name,
               "domain \"" << d.name << "\" is its own parent");
    // Walk to the root; more hops than domains means a parent cycle.
    std::size_t hops = 0;
    const DomainSpec* cur = &d;
    while (!cur->parent.empty()) {
      MIB_ENSURE(++hops <= domains.size(),
                 "failure-domain tree has a cycle through \"" << d.name
                                                              << "\"");
      cur = &domains[index.at(cur->parent)];
    }
  }
  MIB_ENSURE(static_cast<int>(replica_domain.size()) <= pool,
             "topology attaches " << replica_domain.size()
                                  << " replicas but the pool holds " << pool);
  for (const auto& name : replica_domain) {
    if (name.empty()) continue;  // isolated node
    MIB_ENSURE(index.count(name) > 0,
               "replica attached to unknown domain \"" << name << "\"");
  }
}

Topology::Topology(const TopologyConfig& cfg, int pool)
    : domains_(cfg.domains) {
  cfg.validate(pool);
  parent_.resize(domains_.size(), -1);
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (!domains_[i].parent.empty()) {
      parent_[i] = index_of(domains_[i].parent);
    }
  }
  attachment_.assign(static_cast<std::size_t>(pool), -1);
  attachment_name_.assign(static_cast<std::size_t>(pool), "");
  for (std::size_t r = 0; r < cfg.replica_domain.size(); ++r) {
    if (cfg.replica_domain[r].empty()) continue;
    attachment_[r] = index_of(cfg.replica_domain[r]);
    attachment_name_[r] = cfg.replica_domain[r];
  }
  spread_group_.assign(static_cast<std::size_t>(pool), "");
  for (std::size_t r = 0; r < attachment_.size(); ++r) {
    const int at = attachment_[r];
    if (at < 0) continue;  // isolated: no shared blast radius
    const int up = parent_[static_cast<std::size_t>(at)];
    // Replicas usually attach to leaf "node" domains; the blast radius a
    // placement should spread over is the level above (the rack). A
    // root-level attachment is its own group.
    spread_group_[r] = domains_[static_cast<std::size_t>(up >= 0 ? up : at)].name;
  }
}

int Topology::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    if (domains_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Topology::has_domain(const std::string& name) const {
  return index_of(name) >= 0;
}

const std::string& Topology::domain_of(int replica) const {
  return attachment_name_[static_cast<std::size_t>(replica)];
}

const std::string& Topology::spread_group_of(int replica) const {
  return spread_group_[static_cast<std::size_t>(replica)];
}

std::vector<int> Topology::replicas_under(const std::string& domain) const {
  const int target = index_of(domain);
  MIB_ENSURE(target >= 0, "unknown failure domain \"" << domain << "\"");
  std::vector<int> out;
  for (std::size_t r = 0; r < attachment_.size(); ++r) {
    int cur = attachment_[r];
    while (cur >= 0) {
      if (cur == target) {
        out.push_back(static_cast<int>(r));
        break;
      }
      cur = parent_[static_cast<std::size_t>(cur)];
    }
  }
  return out;
}

std::vector<FaultWindow> expand_domain_faults(
    const Topology& topo, const std::vector<DomainFault>& events,
    std::vector<FaultWindow> base) {
  if (events.empty()) return base;
  // Per-replica interval sets: explicit windows plus every domain event
  // covering the replica, union-merged so the schedule stays disjoint.
  std::map<int, std::vector<std::pair<double, double>>> by_replica;
  for (const auto& w : base) {
    by_replica[w.replica].emplace_back(w.start_s, w.end_s);
  }
  for (const auto& e : events) {
    e.validate();
    const auto hit = topo.replicas_under(e.domain);
    MIB_ENSURE(!hit.empty(), "domain fault on \""
                                 << e.domain
                                 << "\" covers no attached replica");
    for (int r : hit) by_replica[r].emplace_back(e.start_s, e.end_s);
  }
  std::vector<FaultWindow> out;
  for (auto& [replica, iv] : by_replica) {
    for (const auto& [s, e] : merge_intervals(std::move(iv))) {
      out.push_back(FaultWindow{replica, s, e});
    }
  }
  return out;
}

std::vector<DegradationWindow> expand_domain_degradations(
    const Topology& topo, const std::vector<DomainDegradation>& events,
    std::vector<DegradationWindow> base) {
  for (const auto& e : events) {
    e.validate();
    const auto hit = topo.replicas_under(e.domain);
    MIB_ENSURE(!hit.empty(), "domain degradation on \""
                                 << e.domain
                                 << "\" covers no attached replica");
    for (int r : hit) {
      base.push_back(DegradationWindow{r, e.start_s, e.end_s, e.scale});
    }
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t j = i + 1; j < base.size(); ++j) {
      const auto& a = base[i];
      const auto& b = base[j];
      if (a.replica != b.replica) continue;
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "expanded degradation windows overlap for replica "
                     << a.replica
                     << " (a domain event collides with another window)");
    }
  }
  return base;
}

WarmupPlan plan_warmup(const WarmupConfig& cfg,
                       const std::vector<FaultWindow>& faults,
                       const std::vector<MaintenanceWindow>& maintenance) {
  WarmupPlan plan;
  if (!cfg.enabled) return plan;
  cfg.validate();
  // Down intervals per replica: crashes and maintenance reboots both
  // return a cold replica, so both earn a warm-up ramp.
  std::map<int, std::vector<std::pair<double, double>>> down;
  for (const auto& w : faults) down[w.replica].emplace_back(w.start_s, w.end_s);
  for (const auto& w : maintenance) {
    down[w.replica].emplace_back(w.start_s, w.end_s);
  }
  for (auto& [replica, iv] : down) {
    const auto merged = merge_intervals(std::move(iv));
    for (std::size_t k = 0; k < merged.size(); ++k) {
      const double recover = merged[k].second;
      // Down-time-dependent ramp: a blip shorter than the reference only
      // partially cools the replica, so it pays a proportionally shorter
      // and shallower staircase. downtime_ref_s == 0 copies the config
      // values untouched (PR 3, bitwise).
      double duration = cfg.duration_s;
      double initial = cfg.initial_scale;
      if (cfg.downtime_ref_s > 0.0) {
        const double frac = std::min(
            1.0, (recover - merged[k].first) / cfg.downtime_ref_s);
        duration = cfg.duration_s * frac;
        initial = 1.0 - (1.0 - cfg.initial_scale) * frac;
      }
      if (duration <= 0.0) continue;
      // Clip the staircase at the next down edge so warm-up windows for
      // one replica never overlap each other.
      const double limit = k + 1 < merged.size()
                               ? std::min(merged[k + 1].first,
                                          recover + duration)
                               : recover + duration;
      if (limit <= recover) continue;
      ++plan.recoveries;
      const double step = duration / cfg.ramp_steps;
      for (int s = 0; s < cfg.ramp_steps; ++s) {
        // Both edges from the same expression so consecutive windows meet
        // bitwise exactly ((lo + step) can differ from the next lo by an
        // ulp and trip the disjointness check).
        const double lo = recover + s * step;
        const double hi = std::min(limit, recover + (s + 1) * step);
        if (hi <= lo) break;
        const double f = initial + (1.0 - initial) *
                                       (static_cast<double>(s) / cfg.ramp_steps);
        // Cold caches and JIT hit compute and memory; the NIC is warm.
        plan.windows.push_back(
            DegradationWindow{replica, lo, hi, PerfScale{f, f, 1.0}});
      }
    }
  }
  return plan;
}

}  // namespace mib::fleet
