#include "fleet/control_plane.h"

#include <limits>

#include "common/rng.h"

namespace mib::fleet {

namespace {

std::vector<FaultWindow> as_fault_windows(
    const std::vector<RouterFaultWindow>& windows) {
  std::vector<FaultWindow> out;
  out.reserve(windows.size());
  for (const auto& w : windows) {
    out.push_back(FaultWindow{w.router, w.start_s, w.end_s});
  }
  return out;
}

bool contains(const std::vector<int>& v, int x) {
  for (int e : v) {
    if (e == x) return true;
  }
  return false;
}

}  // namespace

const char* heal_policy_name(HealPolicy policy) {
  switch (policy) {
    case HealPolicy::kFenceMinority: return "fence-the-minority";
    case HealPolicy::kFirstCommitWins: return "first-commit-wins";
  }
  return "unknown";
}

const char* quorum_policy_name(QuorumPolicy policy) {
  switch (policy) {
    case QuorumPolicy::kServeStale: return "serve-stale";
    case QuorumPolicy::kFenceAtCut: return "fence-at-cut";
    case QuorumPolicy::kFenceAfterGrace: return "fence-after-grace";
  }
  return "unknown";
}

void PartitionWindow::validate() const {
  MIB_ENSURE(start_s >= 0.0, "partition window starts before t=0");
  MIB_ENSURE(end_s > start_s, "partition window must have positive duration");
  MIB_ENSURE(!minority_routers.empty(),
             "partition window needs at least one minority router");
  for (std::size_t i = 0; i < minority_routers.size(); ++i) {
    MIB_ENSURE(minority_routers[i] >= 0,
               "partition window names a negative router");
    for (std::size_t j = i + 1; j < minority_routers.size(); ++j) {
      MIB_ENSURE(minority_routers[i] != minority_routers[j],
                 "partition window lists router " << minority_routers[i]
                                                  << " twice");
    }
  }
  for (std::size_t i = 0; i < minority_replicas.size(); ++i) {
    MIB_ENSURE(minority_replicas[i] >= 0,
               "partition window names a negative replica");
    for (std::size_t j = i + 1; j < minority_replicas.size(); ++j) {
      MIB_ENSURE(minority_replicas[i] != minority_replicas[j],
                 "partition window lists replica " << minority_replicas[i]
                                                   << " twice");
    }
  }
  MIB_ENSURE(flap_period_s >= 0.0, "negative flap period");
  if (flap_period_s > 0.0) {
    MIB_ENSURE(flap_duty > 0.0 && flap_duty <= 1.0,
               "flap duty cycle must be in (0, 1]");
  }
}

void PartitionConfig::validate(int routers) const {
  if (!enabled) {
    MIB_ENSURE(windows.empty(),
               "partition windows configured but partition.enabled is false");
    return;
  }
  MIB_ENSURE(client_retry_s > 0.0, "partition client retry must be > 0");
  MIB_ENSURE(quorum_grace_s >= 0.0, "negative quorum grace");
  MIB_ENSURE(retry_multiplier >= 1.0,
             "client retry multiplier must be >= 1 (backoff cannot shrink)");
  MIB_ENSURE(retry_jitter >= 0.0 && retry_jitter <= 1.0,
             "client retry jitter must be in [0, 1]");
  MIB_ENSURE(max_client_retries >= 1,
             "clients need at least one patience expiry");
  for (const auto& w : windows) {
    w.validate();
    MIB_ENSURE(static_cast<int>(w.minority_routers.size()) < routers,
               "partition minority must leave at least one majority router");
    for (int r : w.minority_routers) {
      MIB_ENSURE(r < routers,
                 "partition names router " << r << " of " << routers);
    }
  }
  // Overlapping partitions would make the side assignment ambiguous.
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const auto& a = windows[i];
      const auto& b = windows[j];
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "overlapping partition windows");
    }
  }
}

ControlPlane::ControlPlane(const ControlPlaneConfig& cfg, RoutePolicy policy,
                           std::uint64_t seed, int pool)
    : cfg_(cfg), schedule_(as_fault_windows(cfg.router_faults)) {
  cfg_.validate();
  routers_.reserve(static_cast<std::size_t>(cfg_.routers));
  for (int r = 0; r < cfg_.routers; ++r) {
    // Router 0 keeps the historical seed so routers=1 reproduces the
    // single-router fleet bit-for-bit; extra routers derive theirs.
    std::uint64_t s = seed ^ 0xF1EE7ull;
    if (r > 0) {
      std::uint64_t state =
          s + static_cast<std::uint64_t>(r) * 0x9E3779B97F4A7C15ull;
      s = splitmix64(state);
    }
    routers_.emplace_back(policy, s);
  }
  // Everything is routable at boot; the first sync overwrites this with
  // the live truth before any dispatch happens.
  views_.assign(static_cast<std::size_t>(cfg_.routers),
                std::vector<char>(static_cast<std::size_t>(pool), 1));
  next_sync_.resize(static_cast<std::size_t>(cfg_.routers), 0.0);
  for (int r = 0; r < cfg_.routers; ++r) {
    // Staggered cadence: router r syncs at (r+1)/routers * interval, then
    // every interval — the stagger is what opens real disagreement
    // windows between routers.
    next_sync_[static_cast<std::size_t>(r)] =
        cfg_.view_sync_interval_s * (r + 1) / cfg_.routers;
  }
  // Expand flapping windows into their cut episodes so partition_at and
  // the transition queries see every flap edge as a plain window edge.
  for (const auto& w : cfg_.partition.windows) {
    if (w.flap_period_s <= 0.0 || w.flap_duty >= 1.0) {
      expanded_.push_back(w);
      continue;
    }
    for (int k = 0;; ++k) {
      const double cut = w.start_s + k * w.flap_period_s;
      if (cut >= w.end_s) break;
      PartitionWindow episode = w;
      episode.start_s = cut;
      episode.end_s = std::min(w.end_s, cut + w.flap_duty * w.flap_period_s);
      expanded_.push_back(std::move(episode));
    }
  }
}

int ControlPlane::survivor(double t) const {
  for (int r = 0; r < cfg_.routers; ++r) {
    if (schedule_.up(r, t)) return r;
  }
  return -1;
}

const PartitionWindow* ControlPlane::partition_at(double t) const {
  if (!partition_enabled()) return nullptr;
  for (const auto& w : expanded_) {
    if (t >= w.start_s && t < w.end_s) return &w;
  }
  return nullptr;
}

bool ControlPlane::router_minority(int r, double t) const {
  const PartitionWindow* w = partition_at(t);
  return w != nullptr && contains(w->minority_routers, r);
}

bool ControlPlane::replica_minority(int i, double t) const {
  const PartitionWindow* w = partition_at(t);
  return w != nullptr && contains(w->minority_replicas, i);
}

bool ControlPlane::reachable(int router, int replica, double t) const {
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr) return true;
  const bool rtr_minor = contains(w->minority_routers, router);
  const bool rep_minor = contains(w->minority_replicas, replica);
  if (rtr_minor == rep_minor) return true;  // same side
  // Cross-cut dispatch travels router-side -> replica-side.
  return rtr_minor ? w->open_to_majority : w->open_to_minority;
}

bool ControlPlane::reply_reachable(int replica, int router, double t) const {
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr) return true;
  // A clean cut keeps PR 4's semantics: established response streams
  // survive. Only an asymmetric cut models reply loss.
  if (!w->open_to_minority && !w->open_to_majority) return true;
  const bool rep_minor = contains(w->minority_replicas, replica);
  const bool rtr_minor = contains(w->minority_routers, router);
  if (rep_minor == rtr_minor) return true;  // same side
  // The reply travels replica-side -> router-side.
  return rep_minor ? w->open_to_majority : w->open_to_minority;
}

bool ControlPlane::cancel_reachable(int replica, double t) const {
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr) return true;
  // Cancels originate on the majority side (the front end that resolved
  // the request); they cross into the minority only along an open
  // majority -> minority direction.
  return !contains(w->minority_replicas, replica) || w->open_to_minority;
}

bool ControlPlane::heartbeat_crosses(int replica, double t) const {
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr) return true;
  // The health monitor lives with the majority; a minority replica's
  // heartbeat needs the minority -> majority direction.
  return !contains(w->minority_replicas, replica) || w->open_to_majority;
}

bool ControlPlane::drain_reachable(int replica, double t) const {
  if (!cfg_.partition.sever_drain_fabric) return true;
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr) return true;
  // KV ships toward the majority side, where the drained work re-enters;
  // a minority source needs the minority -> majority direction.
  return !contains(w->minority_replicas, replica) || w->open_to_majority;
}

double ControlPlane::fence_time(const PartitionWindow& w) const {
  if (cfg_.partition.quorum == QuorumPolicy::kServeStale) {
    return std::numeric_limits<double>::infinity();
  }
  // A strict majority of routers keeps serving; the complement side holds
  // the tie-breaker, so a minority that IS the strict majority (possible
  // when most routers are named minority) never fences either — fencing
  // is only for the side that lost quorum.
  const int minority = static_cast<int>(w.minority_routers.size());
  if (2 * minority > cfg_.routers) {
    return std::numeric_limits<double>::infinity();
  }
  const double grace = cfg_.partition.quorum == QuorumPolicy::kFenceAtCut
                           ? 0.0
                           : cfg_.partition.quorum_grace_s;
  return w.start_s + grace;
}

bool ControlPlane::router_fenced(int r, double t) const {
  const PartitionWindow* w = partition_at(t);
  if (w == nullptr || !contains(w->minority_routers, r)) return false;
  return t >= fence_time(*w);
}

int ControlPlane::majority_survivor(double t) const {
  for (int r = 0; r < cfg_.routers; ++r) {
    if (schedule_.up(r, t) && !router_minority(r, t)) return r;
  }
  return -1;
}

double ControlPlane::next_partition_transition_after(double t) const {
  double best = std::numeric_limits<double>::infinity();
  if (!partition_enabled()) return best;
  for (const auto& w : expanded_) {
    if (w.start_s > t) best = std::min(best, w.start_s);
    if (w.end_s > t) best = std::min(best, w.end_s);
    // The fence edge is an interior event (kFenceAfterGrace): the loop
    // must wake exactly when the minority's lease expires.
    const double fence = fence_time(w);
    if (fence > t && fence < w.end_s) best = std::min(best, fence);
  }
  return best;
}

void ControlPlane::sync(double now, const std::function<bool(int)>& live_ok) {
  for (int r = 0; r < cfg_.routers; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (frozen_view(r, now)) continue;  // cut off from the sync channel
    if (stale_views()) {
      if (next_sync_[u] > now) continue;
      while (next_sync_[u] <= now) next_sync_[u] += cfg_.view_sync_interval_s;
    }
    for (std::size_t i = 0; i < views_[u].size(); ++i) {
      views_[u][i] = live_ok(static_cast<int>(i)) ? 1 : 0;
    }
  }
}

double ControlPlane::next_sync_after(double t) const {
  if (!stale_views()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (double s : next_sync_) {
    if (s > t) best = std::min(best, s);
  }
  return best;
}

void ControlPlane::accumulate_disagreement(double from, double to) {
  if (to <= from) return;
  // Views can differ under staggered syncs, or against a minority view
  // frozen by an active partition (event slices never straddle a
  // partition edge, so the side assignment at `from` covers the slice).
  if (!stale_views() && partition_at(from) == nullptr) return;
  for (std::size_t r = 1; r < views_.size(); ++r) {
    if (views_[r] != views_[0]) {
      disagreement_s_ += to - from;
      return;
    }
  }
}

}  // namespace mib::fleet
