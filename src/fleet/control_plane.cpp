#include "fleet/control_plane.h"

#include <limits>

#include "common/rng.h"

namespace mib::fleet {

namespace {

std::vector<FaultWindow> as_fault_windows(
    const std::vector<RouterFaultWindow>& windows) {
  std::vector<FaultWindow> out;
  out.reserve(windows.size());
  for (const auto& w : windows) {
    out.push_back(FaultWindow{w.router, w.start_s, w.end_s});
  }
  return out;
}

}  // namespace

ControlPlane::ControlPlane(const ControlPlaneConfig& cfg, RoutePolicy policy,
                           std::uint64_t seed, int pool)
    : cfg_(cfg), schedule_(as_fault_windows(cfg.router_faults)) {
  cfg_.validate();
  routers_.reserve(static_cast<std::size_t>(cfg_.routers));
  for (int r = 0; r < cfg_.routers; ++r) {
    // Router 0 keeps the historical seed so routers=1 reproduces the
    // single-router fleet bit-for-bit; extra routers derive theirs.
    std::uint64_t s = seed ^ 0xF1EE7ull;
    if (r > 0) {
      std::uint64_t state =
          s + static_cast<std::uint64_t>(r) * 0x9E3779B97F4A7C15ull;
      s = splitmix64(state);
    }
    routers_.emplace_back(policy, s);
  }
  // Everything is routable at boot; the first sync overwrites this with
  // the live truth before any dispatch happens.
  views_.assign(static_cast<std::size_t>(cfg_.routers),
                std::vector<char>(static_cast<std::size_t>(pool), 1));
  next_sync_.resize(static_cast<std::size_t>(cfg_.routers), 0.0);
  for (int r = 0; r < cfg_.routers; ++r) {
    // Staggered cadence: router r syncs at (r+1)/routers * interval, then
    // every interval — the stagger is what opens real disagreement
    // windows between routers.
    next_sync_[static_cast<std::size_t>(r)] =
        cfg_.view_sync_interval_s * (r + 1) / cfg_.routers;
  }
}

int ControlPlane::survivor(double t) const {
  for (int r = 0; r < cfg_.routers; ++r) {
    if (schedule_.up(r, t)) return r;
  }
  return -1;
}

void ControlPlane::sync(double now, const std::function<bool(int)>& live_ok) {
  for (int r = 0; r < cfg_.routers; ++r) {
    const auto u = static_cast<std::size_t>(r);
    if (stale_views()) {
      if (next_sync_[u] > now) continue;
      while (next_sync_[u] <= now) next_sync_[u] += cfg_.view_sync_interval_s;
    }
    for (std::size_t i = 0; i < views_[u].size(); ++i) {
      views_[u][i] = live_ok(static_cast<int>(i)) ? 1 : 0;
    }
  }
}

double ControlPlane::next_sync_after(double t) const {
  if (!stale_views()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (double s : next_sync_) {
    if (s > t) best = std::min(best, s);
  }
  return best;
}

void ControlPlane::accumulate_disagreement(double from, double to) {
  if (!stale_views() || to <= from) return;
  for (std::size_t r = 1; r < views_.size(); ++r) {
    if (views_[r] != views_[0]) {
      disagreement_s_ += to - from;
      return;
    }
  }
}

}  // namespace mib::fleet
