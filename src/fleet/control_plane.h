// Control-plane redundancy: replicated front-end routers with eventually-
// consistent breaker views and client-side fail-over.
//
// PR 1/2 routed everything through a single infallible zero-latency router
// that always saw the live circuit-breaker state. Real front-ends are N
// replicated processes that (a) can die, and (b) learn breaker transitions
// through a view-sync channel with a propagation delay. Both costs become
// measurable here:
//
//  - Each request is pinned to a home router (request_id mod routers, the
//    usual client-side sharding). If the home router is down when the
//    request reaches it, the request strands there until the client's
//    fail-over timeout (failover_detection_s) fires, then re-enters at the
//    lowest-index surviving router.
//  - With view_sync_interval_s > 0, each router routes on a snapshot of
//    breaker state refreshed on its own staggered cadence. During the
//    stale window two routers can disagree — one still dispatches to a
//    replica whose breaker has opened (the request strands on the dead
//    node until the restart is observed), the other already routes around
//    it. The fleet reports the accumulated disagreement time and the
//    number of stale dispatches.
//
// With routers = 1 and no router faults the plane collapses to the PR 1/2
// behaviour bit-for-bit: one router, live view, no stranding.
//
// Network partitions (PR 4): a PartitionWindow splits the plane into a
// majority and a minority side for [start_s, end_s). The minority routers
// (and optionally a slice of replicas cut off with them) keep serving on
// the breaker view they held when the partition started — they do not
// fail over, they diverge. A minority-homed request the minority side
// cannot answer within the client's retry patience is re-admitted on the
// majority side too (split-brain double dispatch); at heal time a
// configurable policy resolves the divergence: fence-the-minority cancels
// every duplicate copy the minority still holds (KV freed), while
// first-commit-wins lets both copies race to completion and cancels the
// loser. With partition.enabled = false the plane is bitwise-identical to
// the PR 3 behaviour.
//
// Gray failures (PR 5): real partitions are rarely the clean binary cut
// above. Four refinements, each defaulting to the PR 4 behaviour:
//
//  - Asymmetric links: a window can leave one direction of the cut
//    passing traffic (open_to_minority / open_to_majority). Dispatches
//    cross the cut along an open direction, but the reply has to cross
//    back — if that direction is dark, the replica decodes to completion
//    and nobody hears (an orphaned completion, charged to
//    lost_completion_s). Cancels are majority-initiated and reach a
//    minority replica only when open_to_minority is set.
//  - Flapping: flap_period_s / flap_duty expand one configured window
//    into a train of short cuts, re-running the freeze/heal machinery at
//    every edge. Breakers, frozen views, heal fencing and quorum grace
//    all restart per flap episode.
//  - Quorum self-fencing: with quorum != kServeStale, a minority side
//    that cannot see a strict majority of routers stops admitting —
//    immediately (kFenceAtCut) or after quorum_grace_s of serving stale
//    (kFenceAfterGrace). Fenced dispatches are re-homed to the majority
//    survivor instead of being double-dispatched later.
//  - Jittered client backoff: the single fixed client patience becomes a
//    full-jitter exponential schedule (retry_multiplier, retry_jitter,
//    max_client_retries), reusing the splitmix hash scheme of the PR 2
//    server-side retry policy.
//
// A clean cut keeps PR 4's charitable assumption that response streams
// established before (or across) the cut survive it; an asymmetric cut is
// precisely the gray failure where they do not.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "fleet/faults.h"
#include "fleet/router.h"

namespace mib::fleet {

/// One front-end router outage: down for [start_s, end_s).
struct RouterFaultWindow {
  int router = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(router >= 0, "router fault names a negative router");
    MIB_ENSURE(start_s >= 0.0, "router fault starts before t=0");
    MIB_ENSURE(end_s > start_s, "router fault must have positive duration");
  }
};

/// How the plane resolves split-brain state when a partition heals.
enum class HealPolicy {
  /// Cancel every duplicate copy still held on the minority side; its KV
  /// is freed and the majority copy carries the request alone.
  kFenceMinority,
  /// Let both copies race; the first to complete commits the request and
  /// the straggling duplicate is cancelled at that point.
  kFirstCommitWins,
};

const char* heal_policy_name(HealPolicy policy);

/// What a minority side does about the work it cannot coordinate. PR 4's
/// minority served on its frozen view forever; a quorum rule lets it
/// notice it lost the majority and stop admitting.
enum class QuorumPolicy {
  /// PR 4: the minority keeps admitting on its frozen view.
  kServeStale,
  /// The minority fences itself the instant the cut starts: new
  /// dispatches at a fenced router are refused and re-homed to the
  /// majority survivor.
  kFenceAtCut,
  /// The minority serves stale for quorum_grace_s (lease expiry), then
  /// fences. A flap shorter than the grace never fences.
  kFenceAfterGrace,
};

const char* quorum_policy_name(QuorumPolicy policy);

/// One network partition: for [start_s, end_s) the named routers (and,
/// optionally, replicas) form the minority side; everything else is the
/// majority. Routers can only reach replicas on their own side, and the
/// minority routers stop receiving view syncs — they route on the breaker
/// view frozen at the cut.
struct PartitionWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<int> minority_routers;
  /// Replicas cut off with the minority side (may be empty: the minority
  /// router then keeps admitting but can dispatch nowhere).
  std::vector<int> minority_replicas;
  /// Asymmetric cut: the majority -> minority direction stays up, so
  /// majority routers keep dispatching (and cancelling) onto minority
  /// replicas — but completions crossing back minority -> majority are
  /// lost unless open_to_majority is also set.
  bool open_to_minority = false;
  /// Asymmetric cut, other direction: minority routers can still dispatch
  /// onto majority replicas; replies majority -> minority are lost unless
  /// open_to_minority is also set. Both flags false = PR 4's clean cut.
  bool open_to_majority = false;
  /// Flapping: with flap_period_s > 0 this window expands into a train of
  /// cut episodes — cut for the first flap_duty fraction of every period,
  /// healed for the rest, clipped at end_s. Every episode freezes views
  /// and heals independently. 0 = one solid cut (PR 4).
  double flap_period_s = 0.0;
  /// Fraction of each flap period spent cut, in (0, 1]. 1 = solid.
  double flap_duty = 0.5;

  void validate() const;
};

struct PartitionConfig {
  bool enabled = false;
  /// Client patience before a minority-homed request, still without a
  /// first token, is re-admitted on the majority side (the double
  /// dispatch). Measured from the dispatch at the minority router.
  double client_retry_s = 0.1;
  HealPolicy heal = HealPolicy::kFenceMinority;
  /// Whether a minority side without a strict router majority keeps
  /// serving (PR 4) or fences itself. The complement side always holds
  /// the tie-breaker and never fences.
  QuorumPolicy quorum = QuorumPolicy::kServeStale;
  /// Lease the minority serves on before kFenceAfterGrace fences it,
  /// measured from each cut (each flap episode re-runs the grace).
  double quorum_grace_s = 0.05;
  /// Client backoff across repeated patience expiries: attempt k waits
  /// client_retry_s * retry_multiplier^(k-1), full-jittered by
  /// retry_jitter (same splitmix scheme as RetryPolicy). The defaults —
  /// multiplier 1, jitter 0, one attempt — reproduce PR 4's single fixed
  /// patience bit-for-bit.
  double retry_multiplier = 1.0;
  double retry_jitter = 0.0;
  int max_client_retries = 1;
  /// Partitions also sever the replica-to-replica drain fabric: a KV
  /// migration out of a minority-side source aborts mid-stripe (or is
  /// never attempted) and falls back to evacuate-and-recompute, unless
  /// the minority -> majority direction is open. false = PR 4 (drain
  /// traffic ignores cuts).
  bool sever_drain_fabric = false;
  std::vector<PartitionWindow> windows;

  void validate(int routers) const;
};

struct ControlPlaneConfig {
  int routers = 1;
  /// Seconds between a router's snapshots of breaker state; 0 = every
  /// router always sees the live view (the PR 1/2 single-view model).
  double view_sync_interval_s = 0.0;
  /// Client-side lag before a request at a dead router re-enters at a
  /// surviving one.
  double failover_detection_s = 0.05;
  std::vector<RouterFaultWindow> router_faults;
  /// Network partitions that split the plane into majority/minority sides.
  PartitionConfig partition;

  void validate() const {
    MIB_ENSURE(routers >= 1, "control plane needs at least one router");
    MIB_ENSURE(view_sync_interval_s >= 0.0, "negative view-sync interval");
    MIB_ENSURE(failover_detection_s > 0.0,
               "router fail-over detection lag must be > 0");
    for (const auto& w : router_faults) {
      w.validate();
      MIB_ENSURE(w.router < routers, "router fault names router "
                                         << w.router << " of " << routers);
    }
    for (std::size_t i = 0; i < router_faults.size(); ++i) {
      for (std::size_t j = i + 1; j < router_faults.size(); ++j) {
        const auto& a = router_faults[i];
        const auto& b = router_faults[j];
        if (a.router != b.router) continue;
        MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                   "overlapping fault windows for router " << a.router);
      }
    }
    partition.validate(routers);
  }
};

/// The replicated front end: per-router routing state, breaker-view
/// snapshots, and the router fault schedule. Owned by one fleet run.
class ControlPlane {
 public:
  ControlPlane(const ControlPlaneConfig& cfg, RoutePolicy policy,
               std::uint64_t seed, int pool);

  const ControlPlaneConfig& config() const { return cfg_; }
  int routers() const { return cfg_.routers; }

  /// The home router a request is pinned to.
  int assigned_router(int request_id) const {
    return request_id % cfg_.routers;
  }
  bool router_up(int router, double t) const {
    return schedule_.up(router, t);
  }
  /// Lowest-index live router at t, or -1 when the whole plane is dark.
  int survivor(double t) const;
  double next_router_transition_after(double t) const {
    return schedule_.next_transition_after(t);
  }

  /// Whether partitions are configured at all (windows may still be
  /// outside [0, makespan]). False keeps every partition path cold.
  bool partition_enabled() const {
    return cfg_.partition.enabled && !cfg_.partition.windows.empty();
  }
  /// The partition cut active at t, or nullptr. Flapping windows are
  /// pre-expanded into their cut episodes; the pointer identifies one
  /// episode and stays stable for the plane's lifetime.
  const PartitionWindow* partition_at(double t) const;
  /// Number of cut episodes after flap expansion.
  int partition_cuts() const { return static_cast<int>(expanded_.size()); }
  /// Whether router r sits on the minority side of an active partition.
  bool router_minority(int r, double t) const;
  /// Whether replica i is cut off with the minority side at t.
  bool replica_minority(int i, double t) const;
  /// Whether router r can dispatch onto replica i at t: same side, or the
  /// cross-cut direction router-side -> replica-side is open.
  bool reachable(int router, int replica, double t) const;
  /// Whether a completion from replica i can reach the router that
  /// dispatched it. Clean cuts keep PR 4's assumption that established
  /// response streams survive; on an asymmetric cut the reply must cross
  /// replica-side -> router-side along an open direction.
  bool reply_reachable(int replica, int router, double t) const;
  /// Whether a majority-initiated cancel reaches replica i at t.
  bool cancel_reachable(int replica, double t) const;
  /// Whether replica i's heartbeat reaches the majority-side monitor.
  bool heartbeat_crosses(int replica, double t) const;
  /// Whether replica i can ship KV toward the majority-side drain target
  /// (always true unless the partition severs the drain fabric).
  bool drain_reachable(int replica, double t) const;
  /// Whether router r has fenced itself at t: it sits on a minority side
  /// with no strict router majority, the quorum policy fences, and the
  /// grace (if any) has expired for the current cut episode.
  bool router_fenced(int r, double t) const;
  /// A minority router's view is frozen for the partition's duration: it
  /// receives no syncs and routes on the snapshot it held at the cut.
  bool frozen_view(int router, double t) const {
    return router_minority(router, t);
  }
  /// Lowest-index live majority-side router at t, or -1.
  int majority_survivor(double t) const;
  /// Earliest partition start/end/fence edge strictly after t, or
  /// +infinity. Flap expansion makes every episode edge an event here.
  double next_partition_transition_after(double t) const;

  /// Whether routers hold independently aging views (vs one live view).
  bool stale_views() const {
    return cfg_.routers > 1 && cfg_.view_sync_interval_s > 0.0;
  }
  /// Refresh every view whose sync deadline has passed (all views, when
  /// the sync interval is 0). `live_ok(i)` is the ground-truth breaker /
  /// oracle routability of replica i at `now`. Minority routers of an
  /// active partition are skipped — their views stay frozen at the cut.
  void sync(double now, const std::function<bool(int)>& live_ok);
  /// Earliest view-sync deadline strictly after t (+inf with live views).
  double next_sync_after(double t) const;
  /// Router `r`'s (possibly stale) belief that replica i is routable.
  bool view_ok(int router, int replica) const {
    return views_[static_cast<std::size_t>(router)]
                 [static_cast<std::size_t>(replica)] != 0;
  }
  /// Charge (from, to] to the disagreement clock if any two routers'
  /// current views differ.
  void accumulate_disagreement(double from, double to);
  double disagreement_s() const { return disagreement_s_; }

  Router& router(int idx) { return routers_[static_cast<std::size_t>(idx)]; }

 private:
  /// Time at which the minority side of cut episode w fences, or +inf
  /// when its side never fences (has quorum, or quorum = kServeStale).
  double fence_time(const PartitionWindow& w) const;

  ControlPlaneConfig cfg_;
  FaultSchedule schedule_;
  std::vector<Router> routers_;
  std::vector<std::vector<char>> views_;  ///< router -> replica routable
  std::vector<double> next_sync_;
  /// Flap-expanded cut episodes; identical to cfg_.partition.windows when
  /// nothing flaps. partition_at() and the transition queries walk these.
  std::vector<PartitionWindow> expanded_;
  double disagreement_s_ = 0.0;
};

}  // namespace mib::fleet
