// Control-plane redundancy: replicated front-end routers with eventually-
// consistent breaker views and client-side fail-over.
//
// PR 1/2 routed everything through a single infallible zero-latency router
// that always saw the live circuit-breaker state. Real front-ends are N
// replicated processes that (a) can die, and (b) learn breaker transitions
// through a view-sync channel with a propagation delay. Both costs become
// measurable here:
//
//  - Each request is pinned to a home router (request_id mod routers, the
//    usual client-side sharding). If the home router is down when the
//    request reaches it, the request strands there until the client's
//    fail-over timeout (failover_detection_s) fires, then re-enters at the
//    lowest-index surviving router.
//  - With view_sync_interval_s > 0, each router routes on a snapshot of
//    breaker state refreshed on its own staggered cadence. During the
//    stale window two routers can disagree — one still dispatches to a
//    replica whose breaker has opened (the request strands on the dead
//    node until the restart is observed), the other already routes around
//    it. The fleet reports the accumulated disagreement time and the
//    number of stale dispatches.
//
// With routers = 1 and no router faults the plane collapses to the PR 1/2
// behaviour bit-for-bit: one router, live view, no stranding.
//
// Network partitions (PR 4): a PartitionWindow splits the plane into a
// majority and a minority side for [start_s, end_s). The minority routers
// (and optionally a slice of replicas cut off with them) keep serving on
// the breaker view they held when the partition started — they do not
// fail over, they diverge. A minority-homed request the minority side
// cannot answer within the client's retry patience is re-admitted on the
// majority side too (split-brain double dispatch); at heal time a
// configurable policy resolves the divergence: fence-the-minority cancels
// every duplicate copy the minority still holds (KV freed), while
// first-commit-wins lets both copies race to completion and cancels the
// loser. With partition.enabled = false the plane is bitwise-identical to
// the PR 3 behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "fleet/faults.h"
#include "fleet/router.h"

namespace mib::fleet {

/// One front-end router outage: down for [start_s, end_s).
struct RouterFaultWindow {
  int router = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(router >= 0, "router fault names a negative router");
    MIB_ENSURE(start_s >= 0.0, "router fault starts before t=0");
    MIB_ENSURE(end_s > start_s, "router fault must have positive duration");
  }
};

/// How the plane resolves split-brain state when a partition heals.
enum class HealPolicy {
  /// Cancel every duplicate copy still held on the minority side; its KV
  /// is freed and the majority copy carries the request alone.
  kFenceMinority,
  /// Let both copies race; the first to complete commits the request and
  /// the straggling duplicate is cancelled at that point.
  kFirstCommitWins,
};

const char* heal_policy_name(HealPolicy policy);

/// One network partition: for [start_s, end_s) the named routers (and,
/// optionally, replicas) form the minority side; everything else is the
/// majority. Routers can only reach replicas on their own side, and the
/// minority routers stop receiving view syncs — they route on the breaker
/// view frozen at the cut.
struct PartitionWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<int> minority_routers;
  /// Replicas cut off with the minority side (may be empty: the minority
  /// router then keeps admitting but can dispatch nowhere).
  std::vector<int> minority_replicas;

  void validate() const;
};

struct PartitionConfig {
  bool enabled = false;
  /// Client patience before a minority-homed request, still without a
  /// first token, is re-admitted on the majority side (the double
  /// dispatch). Measured from the dispatch at the minority router.
  double client_retry_s = 0.1;
  HealPolicy heal = HealPolicy::kFenceMinority;
  std::vector<PartitionWindow> windows;

  void validate(int routers) const;
};

struct ControlPlaneConfig {
  int routers = 1;
  /// Seconds between a router's snapshots of breaker state; 0 = every
  /// router always sees the live view (the PR 1/2 single-view model).
  double view_sync_interval_s = 0.0;
  /// Client-side lag before a request at a dead router re-enters at a
  /// surviving one.
  double failover_detection_s = 0.05;
  std::vector<RouterFaultWindow> router_faults;
  /// Network partitions that split the plane into majority/minority sides.
  PartitionConfig partition;

  void validate() const {
    MIB_ENSURE(routers >= 1, "control plane needs at least one router");
    MIB_ENSURE(view_sync_interval_s >= 0.0, "negative view-sync interval");
    MIB_ENSURE(failover_detection_s > 0.0,
               "router fail-over detection lag must be > 0");
    for (const auto& w : router_faults) {
      w.validate();
      MIB_ENSURE(w.router < routers, "router fault names router "
                                         << w.router << " of " << routers);
    }
    for (std::size_t i = 0; i < router_faults.size(); ++i) {
      for (std::size_t j = i + 1; j < router_faults.size(); ++j) {
        const auto& a = router_faults[i];
        const auto& b = router_faults[j];
        if (a.router != b.router) continue;
        MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                   "overlapping fault windows for router " << a.router);
      }
    }
    partition.validate(routers);
  }
};

/// The replicated front end: per-router routing state, breaker-view
/// snapshots, and the router fault schedule. Owned by one fleet run.
class ControlPlane {
 public:
  ControlPlane(const ControlPlaneConfig& cfg, RoutePolicy policy,
               std::uint64_t seed, int pool);

  const ControlPlaneConfig& config() const { return cfg_; }
  int routers() const { return cfg_.routers; }

  /// The home router a request is pinned to.
  int assigned_router(int request_id) const {
    return request_id % cfg_.routers;
  }
  bool router_up(int router, double t) const {
    return schedule_.up(router, t);
  }
  /// Lowest-index live router at t, or -1 when the whole plane is dark.
  int survivor(double t) const;
  double next_router_transition_after(double t) const {
    return schedule_.next_transition_after(t);
  }

  /// Whether partitions are configured at all (windows may still be
  /// outside [0, makespan]). False keeps every partition path cold.
  bool partition_enabled() const {
    return cfg_.partition.enabled && !cfg_.partition.windows.empty();
  }
  /// The partition window active at t, or nullptr.
  const PartitionWindow* partition_at(double t) const;
  /// Whether router r sits on the minority side of an active partition.
  bool router_minority(int r, double t) const;
  /// Whether replica i is cut off with the minority side at t.
  bool replica_minority(int i, double t) const;
  /// Whether router r can reach replica i at t (same partition side;
  /// always true outside a partition window).
  bool reachable(int router, int replica, double t) const;
  /// A minority router's view is frozen for the partition's duration: it
  /// receives no syncs and routes on the snapshot it held at the cut.
  bool frozen_view(int router, double t) const {
    return router_minority(router, t);
  }
  /// Lowest-index live majority-side router at t, or -1.
  int majority_survivor(double t) const;
  /// Earliest partition start/end edge strictly after t, or +infinity.
  double next_partition_transition_after(double t) const;

  /// Whether routers hold independently aging views (vs one live view).
  bool stale_views() const {
    return cfg_.routers > 1 && cfg_.view_sync_interval_s > 0.0;
  }
  /// Refresh every view whose sync deadline has passed (all views, when
  /// the sync interval is 0). `live_ok(i)` is the ground-truth breaker /
  /// oracle routability of replica i at `now`. Minority routers of an
  /// active partition are skipped — their views stay frozen at the cut.
  void sync(double now, const std::function<bool(int)>& live_ok);
  /// Earliest view-sync deadline strictly after t (+inf with live views).
  double next_sync_after(double t) const;
  /// Router `r`'s (possibly stale) belief that replica i is routable.
  bool view_ok(int router, int replica) const {
    return views_[static_cast<std::size_t>(router)]
                 [static_cast<std::size_t>(replica)] != 0;
  }
  /// Charge (from, to] to the disagreement clock if any two routers'
  /// current views differ.
  void accumulate_disagreement(double from, double to);
  double disagreement_s() const { return disagreement_s_; }

  Router& router(int idx) { return routers_[static_cast<std::size_t>(idx)]; }

 private:
  ControlPlaneConfig cfg_;
  FaultSchedule schedule_;
  std::vector<Router> routers_;
  std::vector<std::vector<char>> views_;  ///< router -> replica routable
  std::vector<double> next_sync_;
  double disagreement_s_ = 0.0;
};

}  // namespace mib::fleet
