// Control-plane redundancy: replicated front-end routers with eventually-
// consistent breaker views and client-side fail-over.
//
// PR 1/2 routed everything through a single infallible zero-latency router
// that always saw the live circuit-breaker state. Real front-ends are N
// replicated processes that (a) can die, and (b) learn breaker transitions
// through a view-sync channel with a propagation delay. Both costs become
// measurable here:
//
//  - Each request is pinned to a home router (request_id mod routers, the
//    usual client-side sharding). If the home router is down when the
//    request reaches it, the request strands there until the client's
//    fail-over timeout (failover_detection_s) fires, then re-enters at the
//    lowest-index surviving router.
//  - With view_sync_interval_s > 0, each router routes on a snapshot of
//    breaker state refreshed on its own staggered cadence. During the
//    stale window two routers can disagree — one still dispatches to a
//    replica whose breaker has opened (the request strands on the dead
//    node until the restart is observed), the other already routes around
//    it. The fleet reports the accumulated disagreement time and the
//    number of stale dispatches.
//
// With routers = 1 and no router faults the plane collapses to the PR 1/2
// behaviour bit-for-bit: one router, live view, no stranding.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "fleet/faults.h"
#include "fleet/router.h"

namespace mib::fleet {

/// One front-end router outage: down for [start_s, end_s).
struct RouterFaultWindow {
  int router = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(router >= 0, "router fault names a negative router");
    MIB_ENSURE(start_s >= 0.0, "router fault starts before t=0");
    MIB_ENSURE(end_s > start_s, "router fault must have positive duration");
  }
};

struct ControlPlaneConfig {
  int routers = 1;
  /// Seconds between a router's snapshots of breaker state; 0 = every
  /// router always sees the live view (the PR 1/2 single-view model).
  double view_sync_interval_s = 0.0;
  /// Client-side lag before a request at a dead router re-enters at a
  /// surviving one.
  double failover_detection_s = 0.05;
  std::vector<RouterFaultWindow> router_faults;

  void validate() const {
    MIB_ENSURE(routers >= 1, "control plane needs at least one router");
    MIB_ENSURE(view_sync_interval_s >= 0.0, "negative view-sync interval");
    MIB_ENSURE(failover_detection_s > 0.0,
               "router fail-over detection lag must be > 0");
    for (const auto& w : router_faults) {
      w.validate();
      MIB_ENSURE(w.router < routers, "router fault names router "
                                         << w.router << " of " << routers);
    }
    for (std::size_t i = 0; i < router_faults.size(); ++i) {
      for (std::size_t j = i + 1; j < router_faults.size(); ++j) {
        const auto& a = router_faults[i];
        const auto& b = router_faults[j];
        if (a.router != b.router) continue;
        MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                   "overlapping fault windows for router " << a.router);
      }
    }
  }
};

/// The replicated front end: per-router routing state, breaker-view
/// snapshots, and the router fault schedule. Owned by one fleet run.
class ControlPlane {
 public:
  ControlPlane(const ControlPlaneConfig& cfg, RoutePolicy policy,
               std::uint64_t seed, int pool);

  const ControlPlaneConfig& config() const { return cfg_; }
  int routers() const { return cfg_.routers; }

  /// The home router a request is pinned to.
  int assigned_router(int request_id) const {
    return request_id % cfg_.routers;
  }
  bool router_up(int router, double t) const {
    return schedule_.up(router, t);
  }
  /// Lowest-index live router at t, or -1 when the whole plane is dark.
  int survivor(double t) const;
  double next_router_transition_after(double t) const {
    return schedule_.next_transition_after(t);
  }

  /// Whether routers hold independently aging views (vs one live view).
  bool stale_views() const {
    return cfg_.routers > 1 && cfg_.view_sync_interval_s > 0.0;
  }
  /// Refresh every view whose sync deadline has passed (all views, when
  /// the sync interval is 0). `live_ok(i)` is the ground-truth breaker /
  /// oracle routability of replica i at `now`.
  void sync(double now, const std::function<bool(int)>& live_ok);
  /// Earliest view-sync deadline strictly after t (+inf with live views).
  double next_sync_after(double t) const;
  /// Router `r`'s (possibly stale) belief that replica i is routable.
  bool view_ok(int router, int replica) const {
    return views_[static_cast<std::size_t>(router)]
                 [static_cast<std::size_t>(replica)] != 0;
  }
  /// Charge (from, to] to the disagreement clock if any two routers'
  /// current views differ.
  void accumulate_disagreement(double from, double to);
  double disagreement_s() const { return disagreement_s_; }

  Router& router(int idx) { return routers_[static_cast<std::size_t>(idx)]; }

 private:
  ControlPlaneConfig cfg_;
  FaultSchedule schedule_;
  std::vector<Router> routers_;
  std::vector<std::vector<char>> views_;  ///< router -> replica routable
  std::vector<double> next_sync_;
  double disagreement_s_ = 0.0;
};

}  // namespace mib::fleet
