#include "fleet/router.h"

#include <algorithm>

#include "common/error.h"

namespace mib::fleet {

const char* route_policy_name(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round-robin";
    case RoutePolicy::kLeastOutstanding: return "least-outstanding";
    case RoutePolicy::kPrefixAffinity: return "prefix-affinity";
  }
  return "unknown";
}

int Router::least_loaded(const std::vector<Replica>& replicas,
                         const std::vector<int>& routable) {
  int best = routable.front();
  long long best_load = replicas[static_cast<std::size_t>(best)]
                            .outstanding_tokens();
  for (std::size_t i = 1; i < routable.size(); ++i) {
    const int idx = routable[i];
    const long long load =
        replicas[static_cast<std::size_t>(idx)].outstanding_tokens();
    if (load < best_load || (load == best_load && idx < best)) {
      best = idx;
      best_load = load;
    }
  }
  return best;
}

int Router::route(const Sequence& seq, const std::vector<Replica>& replicas,
                  const std::vector<int>& routable) {
  MIB_ENSURE(!routable.empty(), "routing with no replica in service");

  switch (policy_) {
    case RoutePolicy::kRoundRobin:
      return routable[static_cast<std::size_t>(rr_next_++ %
                                               routable.size())];

    case RoutePolicy::kLeastOutstanding: {
      if (routable.size() == 1) return routable.front();
      // Power-of-two-choices: two distinct random candidates, keep the one
      // with fewer outstanding tokens (ties -> lower index).
      const auto n = static_cast<std::uint64_t>(routable.size());
      const auto a = static_cast<std::size_t>(rng_.uniform_index(n));
      auto b = static_cast<std::size_t>(rng_.uniform_index(n - 1));
      if (b >= a) ++b;
      const int ia = routable[a], ib = routable[b];
      const long long la =
          replicas[static_cast<std::size_t>(ia)].outstanding_tokens();
      const long long lb =
          replicas[static_cast<std::size_t>(ib)].outstanding_tokens();
      if (la < lb) return ia;
      if (lb < la) return ib;
      return std::min(ia, ib);
    }

    case RoutePolicy::kPrefixAffinity: {
      if (seq.prefix_hash != 0) {
        const auto it = pins_.find(seq.prefix_hash);
        if (it != pins_.end()) {
          // Honor the pin when that replica accepts traffic; otherwise fall
          // back without re-pinning (the prefix may still be warm there
          // after recovery).
          if (std::find(routable.begin(), routable.end(), it->second) !=
              routable.end()) {
            return it->second;
          }
          return least_loaded(replicas, routable);
        }
        const int pick = least_loaded(replicas, routable);
        pins_.emplace(seq.prefix_hash, pick);
        return pick;
      }
      return least_loaded(replicas, routable);
    }
  }
  MIB_ENSURE(false, "unhandled routing policy");
  return routable.front();
}

}  // namespace mib::fleet
