// FleetSimulator — N identical engine replicas behind a front-end router.
//
// The single-replica layer answers "how fast is one node"; this layer
// answers the capacity question one level up: how does a fleet route,
// admit, scale and survive failures while holding latency SLOs. The
// simulation is event-driven: replicas advance one continuous-batching
// step at a time (priced by the shared LayerCostModel), and between steps
// the router dispatches arrivals, the admission controller sheds load, the
// fault schedule kills/revives replicas (evacuated work is retried with
// backoff), and the autoscaler reacts to queue depth. Everything is
// deterministic for a fixed seed.
//
// Partial-failure resilience (PR 2): replicas can also be *slow* instead
// of dead (DegradationWindow, priced on derated hardware), the front-end
// detects failures through heartbeats and circuit breakers instead of
// reading the fault schedule (HealthMonitor — detection lag, false
// positives and recovery probes become measurable), straggling requests
// are hedged to a second replica, and planned maintenance drains a
// replica by migrating its in-flight KV to peers over the datacenter
// fabric instead of recomputing from scratch.
//
// Correlated failures and control-plane redundancy (PR 3): replicas
// attach to a failure-domain tree (node -> rack -> switch -> zone) and
// fault/degradation events injected at any domain take out everything
// below it at once, so the detector sees a simultaneous suspicion burst
// instead of independent opens. The front end itself is now N replicated
// routers with eventually-consistent breaker views (requests strand at a
// dead router until client fail-over; stale views cause measurable
// mis-dispatches), recovered replicas ramp back through a short warm-up
// window instead of returning at full speed, drains can stripe KV across
// parallel links and overlap the copy with continued decode on the
// source, and hedge copies respect admission capacity — shed first under
// overload.
//
// Partition tolerance (PR 4): a network partition
// (control.partition.windows) splits routers and a slice of replicas into
// majority/minority sides. The minority keeps serving on its frozen
// breaker view — genuine split-brain, not benign staleness: minority-homed
// requests the cut-off side cannot answer in time are re-admitted by the
// majority (double dispatch), duplicate decode burns fleet capacity that
// goodput never credits, each side's autoscaler signal diverges, and at
// heal time a configurable policy (fence-the-minority or
// first-commit-wins) drains the duplicates and frees their KV.
#pragma once

#include <vector>

#include <memory>

#include "common/stats.h"
#include "engine/engine.h"
#include "fleet/admission.h"
#include "fleet/autoscaler.h"
#include "fleet/control_plane.h"
#include "fleet/degradation.h"
#include "fleet/faults.h"
#include "fleet/health.h"
#include "fleet/hedge.h"
#include "fleet/migration.h"
#include "fleet/replica.h"
#include "fleet/router.h"
#include "fleet/slo.h"
#include "fleet/topology.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

namespace mib::fleet {

/// One request as the fleet front-end sees it: the engine request (with its
/// arrival stamp) plus conversation identity for affinity routing and
/// prefix caching.
struct FleetRequest {
  engine::Request request;
  std::uint64_t prefix_hash = 0;  ///< conversation identity; 0 = none
  int prefix_tokens = 0;          ///< reusable prefix length
};

/// Wrap a plain request trace (no conversation structure).
std::vector<FleetRequest> as_fleet_trace(
    const std::vector<engine::Request>& trace);

/// Wrap a conversation workload, interleaved turn-major (turn 0 of every
/// conversation, then turn 1, ...) so consecutive turns of one conversation
/// are separated by other traffic and the earlier turn can finish — and
/// publish its prefix — before the next one arrives.
std::vector<FleetRequest> as_fleet_trace(
    const std::vector<workload::Turn>& turns);

/// Stamp arrival times onto a fleet trace in order.
void stamp_arrivals(const workload::ArrivalConfig& cfg,
                    std::vector<FleetRequest>& trace);

struct FleetConfig {
  engine::EngineConfig engine;  ///< every replica runs this engine
  ReplicaConfig replica;
  /// Replicas in service at t=0 (the autoscaler may grow to its ceiling).
  int n_replicas = 2;
  RoutePolicy policy = RoutePolicy::kLeastOutstanding;
  AdmissionConfig admission;
  RetryPolicy retry;
  std::vector<FaultWindow> faults;
  /// Brownouts: replicas running slow (throttle, ECC, contended fabric).
  std::vector<DegradationWindow> degradations;
  /// Failure-domain tree the replicas attach to; empty = every replica is
  /// its own isolated node (the PR 1/2 independence assumption).
  TopologyConfig topology;
  /// Correlated outages: every replica under the named domain goes down.
  std::vector<DomainFault> domain_faults;
  /// Correlated brownouts: every replica under the domain runs derated.
  std::vector<DomainDegradation> domain_degradations;
  /// Post-recovery warm-up ramp after fault / maintenance recovery edges.
  WarmupConfig warmup;
  /// Replicated front-end routers + view-sync staleness + router faults.
  ControlPlaneConfig control;
  /// Planned outages, drained via KV migration or evacuate-and-recompute.
  std::vector<MaintenanceWindow> maintenance;
  MigrationConfig migration;
  /// Heartbeat failure detection + circuit breakers. When disabled the
  /// router falls back to the PR 1 oracle (it sees the fault schedule).
  HealthConfig health;
  HedgeConfig hedge;
  AutoscalerConfig autoscaler;
  SloConfig slo;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Per-replica share of one run.
struct ReplicaReport {
  int replica = 0;
  long long completed = 0;
  long long steps = 0;
  int preemptions = 0;
  double busy_s = 0.0;
  double utilization = 0.0;  ///< busy_s / makespan
  long long prefix_lookups = 0;
  long long prefix_hits = 0;
  Samples ttft_s, itl_s, e2e_s;
};

struct FleetReport {
  double makespan_s = 0.0;
  double throughput_tok_s = 0.0;  ///< (in+out) tokens of completed / makespan

  long long submitted = 0;
  long long completed = 0;
  long long rejected = 0;  ///< shed at admission
  long long expired = 0;   ///< deadline passed while queued
  long long lost = 0;      ///< retry budget exhausted
  long long retries = 0;   ///< re-routes after replica failures

  Samples ttft_s, itl_s, e2e_s;  ///< fleet-wide, completed requests
  SloSummary slo;                ///< goodput under the configured SLOs

  long long prefix_lookups = 0;
  long long prefix_hits = 0;
  double prefix_hit_rate() const {
    return prefix_lookups > 0
               ? static_cast<double>(prefix_hits) /
                     static_cast<double>(prefix_lookups)
               : 0.0;
  }

  // --- resilience ---
  long long hedges_issued = 0;     ///< second copies dispatched
  long long hedges_won = 0;        ///< requests whose hedge copy won
  long long hedges_cancelled = 0;  ///< loser copies removed, KV freed
  long long circuit_opens = 0;
  long long false_circuit_opens = 0;  ///< opened while the replica was up
  /// Failure until the front-end learned of it (circuit open or observed
  /// restart) — the cost of not having PR 1's oracle.
  Samples detection_lag_s;
  long long hedges_shed = 0;       ///< hedge copies refused or dropped
                                   ///< under admission pressure
  long long migrations = 0;            ///< sequences drain-migrated with KV
  long long migrated_kv_tokens = 0;
  Samples migration_s;                 ///< per-sequence KV transfer time
  long long drain_evacuations = 0;     ///< drained by recompute instead
  /// Decode tokens produced on the source while its KV copy was already in
  /// flight (the overlap-drain win; 0 with overlap_decode off).
  long long overlap_decode_tokens = 0;
  std::vector<CircuitEvent> circuit_events;

  // --- correlated failures & warm-up ---
  int warmup_recoveries = 0;  ///< recovery edges that began a warm-up ramp
  /// Suspicion bursts: >= 2 circuit opens within one heartbeat interval of
  /// each other — the detector-side signature of a domain-level event.
  int suspicion_bursts = 0;
  int largest_suspicion_burst = 0;  ///< replicas in the biggest burst

  // --- control plane ---
  /// Requests that found their home router dead and paid the client-side
  /// fail-over lag before re-entering at a survivor.
  long long router_stranded = 0;
  /// Dispatches made on a stale breaker view (the live state said the
  /// replica was not routable).
  long long stale_dispatches = 0;
  /// Total time any two routers' breaker views disagreed.
  double view_disagreement_s = 0.0;

  // --- split-brain partitions ---
  /// Requests admitted by both partition sides (the minority could not
  /// answer within the client's retry patience, so the majority admitted
  /// a second copy). Goodput still counts each request at most once.
  long long double_dispatches = 0;
  /// Replica time burned by non-winning copies of double-dispatched
  /// requests — capacity charged to the fleet that served nobody.
  double duplicate_decode_s = 0.0;
  /// Duplicate copies cancelled on the minority side at heal time under
  /// the fence-the-minority policy (their KV freed).
  long long fenced_requests = 0;
  /// Autoscaler ticks during a partition where the two sides, each seeing
  /// only its own queues, would have decided differently.
  long long autoscaler_conflicts = 0;
  /// Per healed window: heal edge until the last split-brain duplicate
  /// resolved (fence drains immediately; first-commit-wins races on).
  Samples partition_heal_lag_s;

  // --- gray failures ---
  /// Copies that decoded to completion behind an asymmetric cut whose
  /// completion could not cross back to the dispatching side.
  long long orphaned_completions = 0;
  /// Replica time burned by orphaned decodes — work done, result lost.
  double lost_completion_s = 0.0;
  /// Client re-sends issued after every live copy of a request had been
  /// lost (orphaned or crashed with no retry pending).
  long long client_resends = 0;
  /// Dispatches refused by a self-fenced minority router (quorum lost)
  /// and re-homed to the majority survivor.
  long long quorum_fenced = 0;
  /// Cut -> heal edges observed; a flapping window counts every episode.
  long long partition_flaps = 0;
  /// KV drains aborted (or never attempted) because the partition severed
  /// the replica-to-replica fabric; each falls back to recompute.
  long long migration_aborts = 0;
  /// Hedges withheld by the utilization gate (hedge.max_utilization).
  long long hedges_suppressed = 0;

  /// Replicas that executed at least one step (shows autoscaler growth).
  int replicas_used = 0;
  std::vector<ReplicaReport> replicas;     ///< one per pool slot
  std::vector<ScaleEvent> scale_events;
  std::vector<RequestRecord> requests;     ///< per-request outcomes
};

class FleetSimulator {
 public:
  explicit FleetSimulator(FleetConfig cfg);

  const FleetConfig& config() const { return cfg_; }
  /// KV token capacity of each replica.
  long long kv_token_capacity() const { return kv_capacity_tokens_; }
  /// Provisioned pool (n_replicas, or the autoscaler ceiling if larger).
  int pool_size() const;

  /// Fault schedule after domain events expanded over the topology
  /// (interval-unioned with the explicit per-replica windows).
  const std::vector<FaultWindow>& expanded_faults() const {
    return faults_expanded_;
  }
  /// Degradation schedule after domain events expanded over the topology.
  const std::vector<DegradationWindow>& expanded_degradations() const {
    return degr_expanded_;
  }
  /// Warm-up staircase windows planned off the expanded fault schedule.
  const std::vector<DegradationWindow>& warmup_windows() const {
    return warmup_windows_;
  }

  /// Serve a trace to resolution: every request completes, is rejected,
  /// expires, or is lost. Deterministic for a fixed seed.
  FleetReport run(const std::vector<FleetRequest>& trace) const;

 private:
  FleetConfig cfg_;
  engine::LayerCostModel cost_;
  engine::MemoryModel mem_;
  long long kv_capacity_tokens_ = 0;
  /// Domain events expanded into per-replica schedules (== the explicit
  /// schedules when no topology is configured).
  std::vector<FaultWindow> faults_expanded_;
  std::vector<DegradationWindow> degr_expanded_;
  /// Self-clearing post-recovery ramps, kept apart from the scheduled
  /// brownouts and composed multiplicatively at query time.
  std::vector<DegradationWindow> warmup_windows_;
  int warmup_recoveries_ = 0;
  /// One LayerCostModel per distinct degradation scale (built after
  /// validation, hence the indirection).
  std::unique_ptr<DegradedCostPool> degraded_costs_;
};

}  // namespace mib::fleet
