// Front-end load balancing across engine replicas.
//
// Three pluggable policies:
//  - round-robin: cycle over routable replicas (oblivious baseline);
//  - least-outstanding: power-of-two-choices over outstanding decode+prefill
//    tokens (two random candidates, keep the lighter — near-optimal load
//    spread at O(1) cost);
//  - prefix-affinity: pin each conversation to the replica that holds its
//    cached prefix, falling back to a deterministic least-loaded scan for
//    new conversations or when the pinned replica is down/draining. Pins
//    survive outages (the prefix may still be warm after recovery), the
//    fallback routing is temporary.
//
// Routers never see the network directly: the fleet loop hands route()
// a routable set already filtered through the control plane (breaker
// views, partition reachability — including the per-direction links of an
// asymmetric cut — and quorum fencing; see control_plane.h).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "fleet/replica.h"

namespace mib::fleet {

enum class RoutePolicy {
  kRoundRobin,
  kLeastOutstanding,
  kPrefixAffinity,
};

const char* route_policy_name(RoutePolicy policy);

class Router {
 public:
  Router(RoutePolicy policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  RoutePolicy policy() const { return policy_; }

  /// Pick a replica for `seq`. `routable` lists the indices (into
  /// `replicas`) currently accepting traffic; it must be non-empty.
  int route(const Sequence& seq, const std::vector<Replica>& replicas,
            const std::vector<int>& routable);

  /// Conversations currently pinned (affinity policy only).
  std::size_t pinned_conversations() const { return pins_.size(); }

 private:
  /// Deterministic argmin of outstanding tokens (ties -> lowest index).
  static int least_loaded(const std::vector<Replica>& replicas,
                          const std::vector<int>& routable);

  RoutePolicy policy_;
  Rng rng_;
  std::uint64_t rr_next_ = 0;
  std::unordered_map<std::uint64_t, int> pins_;  ///< prefix hash -> replica
};

}  // namespace mib::fleet
