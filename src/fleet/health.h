// Failure detection without an oracle: heartbeats, phi-accrual suspicion,
// and a per-replica circuit breaker.
//
// PR 1's router consulted the fault schedule directly — omniscient and
// therefore free of detection lag, false positives and recovery probes,
// exactly the costs that dominate real incidents. Here each replica emits
// a heartbeat every heartbeat_interval_s while alive (stretched when the
// replica is degraded — a struggling node services its control plane
// late); the monitor tracks a sliding window of inter-arrival gaps and
// computes a phi-accrual suspicion level for the elapsed silence
// (exponential variant: phi(t) = (t - last_hb) / (mean_gap * ln 10), i.e.
// phi = k means "a gap this long had probability 10^-k"). When phi
// crosses the threshold the replica's circuit breaker opens: routing
// stops and stranded work is re-routed. After a cooldown the breaker goes
// half-open and sends synthetic probes every probe_interval_s; the first
// successful probe closes the circuit and traffic resumes.
//
// Consequences the fleet can now measure: detection lag (failure until
// circuit-open), false positives (a slow replica declared dead), and
// recovery lag (replica healthy but breaker still open until a probe
// lands).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/error.h"

namespace mib::fleet {

struct HealthConfig {
  /// false restores the PR 1 oracle: the router sees the fault schedule.
  bool enabled = true;
  double heartbeat_interval_s = 0.02;
  /// Suspicion level that opens the circuit. phi = 3 tolerates a silence
  /// ~6.9x the mean heartbeat gap (p = 10^-3 under the exponential model).
  double phi_threshold = 3.0;
  int gap_window = 32;          ///< heartbeat gaps kept for the mean
  double open_cooldown_s = 0.25;  ///< open -> half-open after this
  double probe_interval_s = 0.1;  ///< half-open probe cadence

  void validate() const {
    MIB_ENSURE(heartbeat_interval_s > 0.0, "heartbeat interval must be > 0");
    MIB_ENSURE(phi_threshold > 0.0, "phi threshold must be > 0");
    MIB_ENSURE(gap_window >= 1, "gap window must hold at least one sample");
    MIB_ENSURE(open_cooldown_s > 0.0, "open cooldown must be > 0");
    MIB_ENSURE(probe_interval_s > 0.0, "probe interval must be > 0");
  }
};

enum class CircuitState {
  kClosed,     ///< routable; suspicion accrues on heartbeat silence
  kOpen,       ///< not routable; cooling down
  kHalfOpen,   ///< not routable; probing for recovery
  kSuspended,  ///< replica administratively out (inactive / maintenance)
};

const char* to_string(CircuitState state);

/// One breaker transition, for the report timeline and the chaos harness.
struct CircuitEvent {
  double t_s = 0.0;
  int replica = -1;
  CircuitState to = CircuitState::kClosed;
  /// Whether the replica was actually in service at the transition —
  /// lets the harness separate true detections from false positives.
  bool replica_was_up = true;
};

class HealthMonitor {
 public:
  HealthMonitor(HealthConfig cfg, int pool);

  /// A heartbeat from `replica` received at time t.
  void on_heartbeat(int replica, double t);

  /// Current suspicion level of a closed circuit at time t.
  double phi(int replica, double t) const;

  CircuitState state(int replica) const;
  bool routable(int replica) const {
    return state(replica) == CircuitState::kClosed;
  }

  /// Advance every breaker to time t. `physically_up[i]` answers the
  /// synthetic half-open probes (a ping to the replica — information the
  /// front-end obtains at probe cadence, not an oracle consulted freely).
  /// Returns replicas whose circuit opened at this step.
  std::vector<int> advance(double t, const std::vector<bool>& physically_up);

  /// Administrative transitions (autoscaler activation / maintenance).
  void suspend(int replica);
  void resume(int replica, double t);

  /// Earliest breaker deadline strictly relevant after t: a closed
  /// circuit's projected phi crossing, an open circuit's cooldown expiry,
  /// a half-open circuit's next probe. +infinity when idle.
  double next_event_after(double t) const;

  const std::vector<CircuitEvent>& events() const { return events_; }

 private:
  struct ReplicaHealth {
    CircuitState state = CircuitState::kSuspended;
    double last_hb_s = 0.0;
    std::deque<double> gaps;
    double gap_sum = 0.0;
    double opened_at_s = 0.0;
    double next_probe_s = 0.0;
  };

  double mean_gap(const ReplicaHealth& h) const;
  /// Absolute time at which a closed circuit's phi crosses the threshold.
  double suspect_time(const ReplicaHealth& h) const;

  HealthConfig cfg_;
  std::vector<ReplicaHealth> reps_;
  std::vector<CircuitEvent> events_;
};

/// A cluster of near-simultaneous circuit opens — the detector-side
/// signature of a correlated (rack / switch / zone) failure, as opposed to
/// independent replica crashes that open one breaker at a time.
struct SuspicionBurst {
  double start_s = 0.0;  ///< first open in the burst
  double end_s = 0.0;    ///< last open in the burst
  int size = 0;          ///< distinct replicas opened within the window
};

/// Group circuit-open events whose inter-arrival gap is <= window_s (one
/// heartbeat interval is the natural choice) and keep groups that opened at
/// least two distinct replicas. Events must be in timeline order, which is
/// how the monitor records them.
std::vector<SuspicionBurst> detect_suspicion_bursts(
    const std::vector<CircuitEvent>& events, double window_s);

}  // namespace mib::fleet
