#include "fleet/health.h"

#include <cmath>
#include <limits>

namespace mib::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kLn10 = 2.302585092994046;
}  // namespace

const char* to_string(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed: return "closed";
    case CircuitState::kOpen: return "open";
    case CircuitState::kHalfOpen: return "half-open";
    case CircuitState::kSuspended: return "suspended";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig cfg, int pool) : cfg_(cfg) {
  cfg_.validate();
  MIB_ENSURE(pool >= 1, "health monitor needs a non-empty pool");
  reps_.resize(static_cast<std::size_t>(pool));
}

double HealthMonitor::mean_gap(const ReplicaHealth& h) const {
  if (h.gaps.empty()) return cfg_.heartbeat_interval_s;
  const double mean = h.gap_sum / static_cast<double>(h.gaps.size());
  // Never trust a mean below the configured cadence: a burst of early
  // heartbeats must not make the detector hair-triggered.
  return std::max(mean, cfg_.heartbeat_interval_s);
}

double HealthMonitor::suspect_time(const ReplicaHealth& h) const {
  return h.last_hb_s + cfg_.phi_threshold * kLn10 * mean_gap(h);
}

void HealthMonitor::on_heartbeat(int replica, double t) {
  auto& h = reps_[static_cast<std::size_t>(replica)];
  if (h.state == CircuitState::kSuspended) return;
  const double gap = t - h.last_hb_s;
  if (gap > 0.0) {
    h.gaps.push_back(gap);
    h.gap_sum += gap;
    while (static_cast<int>(h.gaps.size()) > cfg_.gap_window) {
      h.gap_sum -= h.gaps.front();
      h.gaps.pop_front();
    }
  }
  h.last_hb_s = t;
}

double HealthMonitor::phi(int replica, double t) const {
  const auto& h = reps_[static_cast<std::size_t>(replica)];
  const double silence = t - h.last_hb_s;
  if (silence <= 0.0) return 0.0;
  return silence / (mean_gap(h) * kLn10);
}

CircuitState HealthMonitor::state(int replica) const {
  return reps_[static_cast<std::size_t>(replica)].state;
}

std::vector<int> HealthMonitor::advance(
    double t, const std::vector<bool>& physically_up) {
  MIB_ENSURE(physically_up.size() == reps_.size(),
             "health probe vector does not match the pool");
  std::vector<int> opened;
  for (std::size_t i = 0; i < reps_.size(); ++i) {
    auto& h = reps_[i];
    const int replica = static_cast<int>(i);
    if (h.state == CircuitState::kClosed && t >= suspect_time(h)) {
      h.state = CircuitState::kOpen;
      h.opened_at_s = t;
      events_.push_back(
          CircuitEvent{t, replica, CircuitState::kOpen, physically_up[i]});
      opened.push_back(replica);
    }
    if (h.state == CircuitState::kOpen &&
        t >= h.opened_at_s + cfg_.open_cooldown_s) {
      h.state = CircuitState::kHalfOpen;
      h.next_probe_s = t;  // probe immediately, below
      events_.push_back(CircuitEvent{t, replica, CircuitState::kHalfOpen,
                                     physically_up[i]});
    }
    // Probes fire at cadence until one lands; each miss reschedules. Runs
    // in the same advance as the open -> half-open transition so every
    // deadline left behind is strictly in the future.
    while (h.state == CircuitState::kHalfOpen && t >= h.next_probe_s) {
      if (physically_up[i]) {
        resume(replica, t);
        events_.push_back(CircuitEvent{t, replica, CircuitState::kClosed,
                                       physically_up[i]});
      } else {
        h.next_probe_s += cfg_.probe_interval_s;
      }
    }
  }
  return opened;
}

void HealthMonitor::suspend(int replica) {
  auto& h = reps_[static_cast<std::size_t>(replica)];
  h.state = CircuitState::kSuspended;
  h.gaps.clear();
  h.gap_sum = 0.0;
}

void HealthMonitor::resume(int replica, double t) {
  auto& h = reps_[static_cast<std::size_t>(replica)];
  h.state = CircuitState::kClosed;
  h.gaps.clear();
  h.gap_sum = 0.0;
  h.last_hb_s = t;
}

std::vector<SuspicionBurst> detect_suspicion_bursts(
    const std::vector<CircuitEvent>& events, double window_s) {
  MIB_ENSURE(window_s > 0.0, "burst window must be > 0");
  std::vector<SuspicionBurst> bursts;
  SuspicionBurst cur;
  std::vector<int> members;
  auto flush = [&] {
    if (cur.size >= 2) bursts.push_back(cur);
    cur = SuspicionBurst{};
    members.clear();
  };
  for (const auto& e : events) {
    if (e.to != CircuitState::kOpen) continue;
    if (cur.size > 0 && e.t_s - cur.end_s > window_s) flush();
    if (cur.size == 0) cur.start_s = e.t_s;
    cur.end_s = e.t_s;
    bool seen = false;
    for (int m : members) seen = seen || m == e.replica;
    if (!seen) {
      members.push_back(e.replica);
      ++cur.size;
    }
  }
  flush();
  return bursts;
}

double HealthMonitor::next_event_after(double t) const {
  double best = kInf;
  for (const auto& h : reps_) {
    switch (h.state) {
      case CircuitState::kClosed:
        best = std::min(best, std::max(t, suspect_time(h)));
        break;
      case CircuitState::kOpen:
        best = std::min(best, std::max(t, h.opened_at_s + cfg_.open_cooldown_s));
        break;
      case CircuitState::kHalfOpen:
        best = std::min(best, std::max(t, h.next_probe_s));
        break;
      case CircuitState::kSuspended:
        break;
    }
  }
  return best;
}

}  // namespace mib::fleet
