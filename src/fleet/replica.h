// One steppable continuous-batching engine replica inside a fleet.
//
// The single-replica ServingSimulator runs a whole trace to completion; a
// fleet needs replicas that advance one engine step at a time so the router,
// autoscaler and fault injector can act between steps. A Replica owns its
// waiting queue and running batch, prices each step with the shared
// LayerCostModel (chunked prefill + batched decode, vLLM recompute
// preemption under KV pressure — the same discipline as
// engine::ServingSimulator), and additionally models per-replica prefix
// caching: a conversation whose earlier turn completed here skips its warm
// prefix during prefill, which is what session-affinity routing monetizes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "engine/layer_cost.h"

namespace mib::fleet {

/// One request in flight on (or queued for) a replica.
struct Sequence {
  int request_id = -1;       ///< index into the fleet trace
  double arrival_s = 0.0;    ///< submission time at the front-end
  double deadline_s = 0.0;   ///< absolute service deadline; 0 = none
  int input_tokens = 0;      ///< effective prompt tokens (vision folded in)
  int output_tokens = 0;
  std::uint64_t prefix_hash = 0;  ///< conversation identity; 0 = none
  int prefix_tokens = 0;          ///< reusable prefix length (system+history)
  int retries = 0;                ///< re-routes after replica failures
  bool is_hedge = false;          ///< this copy is the hedged re-issue
  /// This copy is the majority-side re-admission of a request a partition
  /// minority already holds (split-brain double dispatch).
  bool is_partition_dup = false;
  /// The front-end router that dispatched this copy (-1 before dispatch).
  /// On an asymmetric partition the completion must cross back to this
  /// router's side — if that direction is dark the decode is orphaned.
  int via_router = -1;

  // progress
  int prefilled = 0;
  int generated = 0;
  double first_token_s = -1.0;
  bool prefix_hit = false;
  /// Replica time this copy has consumed (its share of every step it sat
  /// in). Survives retries — burned work stays burned — and prices the
  /// duplicate-decode waste when a split-brain copy loses the race.
  double served_s = 0.0;

  bool prefill_done() const { return prefilled >= input_tokens; }
  bool finished() const { return generated >= output_tokens; }
  long long kv_tokens() const { return prefilled + generated; }
  /// Work remaining (queued-token load proxy for the router).
  long long remaining_tokens() const {
    return (input_tokens - prefilled) + (output_tokens - generated);
  }
};

struct ReplicaConfig {
  int max_batch = 64;
  int prefill_tokens_per_step = 2048;
  /// Conversations kept warm in the replica's prefix cache (LRU).
  int prefix_cache_entries = 512;

  void validate() const;
};

class Replica {
 public:
  /// `cost` outlives the replica (the fleet owns one shared model).
  Replica(const engine::LayerCostModel* cost, long long kv_capacity_tokens,
          ReplicaConfig cfg);

  /// Swap the pricing model (degradation window edges). Affects steps
  /// begun afterwards; an in-flight step keeps its committed end time.
  void set_cost_model(const engine::LayerCostModel* cost);

  // --- queueing ---
  void enqueue(const Sequence& seq) { waiting_.push_back(seq); }
  int queue_depth() const { return static_cast<int>(waiting_.size()); }
  int running_count() const { return static_cast<int>(running_.size()); }
  bool has_work() const { return !waiting_.empty() || !running_.empty(); }
  /// Total tokens still to produce across queued + running work.
  long long outstanding_tokens() const;
  /// KV tokens resident right now (leak checks, migration sizing).
  long long kv_tokens_in_use() const { return kv_in_use(); }

  /// The copy of `request_id` held here (queued or running), or nullptr.
  const Sequence* find(int request_id) const;
  /// Whether this replica has emitted the first token of `request_id`.
  bool started(int request_id) const;
  /// Remove the copy of `request_id` (hedge loser, resolved elsewhere).
  /// Its KV is freed immediately. Returns whether a copy was held.
  bool cancel(int request_id);
  /// Remove the copy of `request_id` with progress *intact* (overlap-drain
  /// handoff of one sequence). Returns whether a copy was held.
  bool take(int request_id, Sequence* out);
  /// request_ids of hedge copies still waiting (not yet in service) —
  /// the shed-first pool under overload.
  std::vector<int> waiting_hedges() const;
  /// request_ids of every copy resident here, running batch first (heal
  /// fencing enumerates the minority side with this).
  std::vector<int> resident_ids() const;
  /// Read-only view of the running batch (overlap-drain scheduling).
  const std::vector<Sequence>& running() const { return running_; }

  // --- stepping (driven by the fleet event loop) ---
  bool mid_step() const { return mid_step_; }
  double step_end_s() const { return step_end_; }
  /// Drop queued sequences whose deadline passed (checked at scheduling
  /// boundaries, before admission). Returns them for accounting.
  std::vector<Sequence> drop_expired(double now);
  /// Begin one engine step at absolute time `now`. Requires !mid_step()
  /// and has_work().
  void begin_step(double now);
  /// Finish the in-flight step; returns the sequences completed by it.
  std::vector<Sequence> complete_step();
  /// Failure: drop all queued and running work (KV and progress lost) and
  /// clear the prefix cache. Returns the evacuated sequences.
  std::vector<Sequence> evacuate();
  /// Planned drain: remove all queued and running work with progress
  /// *intact* (prefill/decode position, first-token stamp) for KV
  /// migration to a peer. The replica ends empty and cold, like after a
  /// maintenance reboot.
  std::vector<Sequence> take_all();
  /// Overlap drain, phase one: remove only the *waiting* sequences (no KV
  /// resident yet) so they re-dispatch immediately while the running batch
  /// keeps decoding under the background KV copy.
  std::vector<Sequence> take_waiting();
  /// Overlap drain, final: the replica is now empty; clear the prefix
  /// cache and leave it cold, as after a maintenance reboot.
  void finish_drain();

  // --- prefix cache ---
  bool prefix_warm(std::uint64_t hash) const {
    return hash != 0 && prefix_cache_.count(hash) > 0;
  }

  // --- lifetime stats ---
  long long steps() const { return steps_; }
  int preemptions() const { return preemptions_; }
  double busy_s() const { return busy_s_; }
  long long prefix_lookups() const { return prefix_lookups_; }
  long long prefix_hits() const { return prefix_hits_; }

 private:
  void admit();
  long long kv_in_use() const;
  void touch_prefix(std::uint64_t hash);

  const engine::LayerCostModel* cost_;
  long long kv_capacity_;
  ReplicaConfig cfg_;

  std::deque<Sequence> waiting_;
  std::vector<Sequence> running_;
  bool admission_blocked_ = false;

  bool mid_step_ = false;
  double step_end_ = 0.0;
  double step_cost_ = 0.0;  ///< duration of the in-flight step

  long long steps_ = 0;
  int preemptions_ = 0;
  double busy_s_ = 0.0;
  long long prefix_lookups_ = 0;
  long long prefix_hits_ = 0;
  /// hash -> last-use tick (LRU eviction by smallest tick).
  std::map<std::uint64_t, long long> prefix_cache_;
  long long prefix_tick_ = 0;
};

}  // namespace mib::fleet
