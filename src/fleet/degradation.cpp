#include "fleet/degradation.h"

#include <limits>

namespace mib::fleet {

DegradationSchedule::DegradationSchedule(std::vector<DegradationWindow> windows)
    : windows_(std::move(windows)) {
  for (const auto& w : windows_) w.validate();
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    for (std::size_t j = i + 1; j < windows_.size(); ++j) {
      const auto& a = windows_[i];
      const auto& b = windows_[j];
      if (a.replica != b.replica) continue;
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "overlapping degradation windows for replica " << a.replica);
    }
  }
}

PerfScale DegradationSchedule::at(int replica, double t) const {
  for (const auto& w : windows_) {
    if (w.replica == replica && t >= w.start_s && t < w.end_s) return w.scale;
  }
  return PerfScale{};
}

double DegradationSchedule::next_transition_after(double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& w : windows_) {
    if (w.start_s > t) best = std::min(best, w.start_s);
    if (w.end_s > t) best = std::min(best, w.end_s);
  }
  return best;
}

DegradedCostPool::DegradedCostPool(
    const engine::LayerCostModel* base, const engine::EngineConfig& cfg,
    const std::vector<DegradationWindow>& windows)
    : DegradedCostPool(base, cfg, [&windows] {
        std::vector<PerfScale> scales;
        scales.reserve(windows.size());
        for (const auto& w : windows) scales.push_back(w.scale);
        return scales;
      }()) {}

DegradedCostPool::DegradedCostPool(const engine::LayerCostModel* base,
                                   const engine::EngineConfig& cfg,
                                   const std::vector<PerfScale>& scales)
    : base_(base) {
  MIB_ENSURE(base_ != nullptr, "degraded cost pool needs a base model");
  for (const auto& scale : scales) {
    if (!scale.degraded()) continue;
    if (at(scale) != base_) continue;  // already built
    const auto& cl = cfg.cluster;
    hw::Cluster derated(cl.device().derate(scale.flops, scale.mem_bw),
                        cl.size(), cl.devices_per_node(),
                        cl.intra().link().derate(scale.link_bw),
                        cl.inter().link().derate(scale.link_bw));
    models_.emplace_back(scale, std::make_unique<engine::LayerCostModel>(
                                    cfg.model, derated, cfg.plan, cfg.cost));
  }
}

const engine::LayerCostModel* DegradedCostPool::at(
    const PerfScale& scale) const {
  if (!scale.degraded()) return base_;
  for (const auto& [key, model] : models_) {
    if (key == scale) return model.get();
  }
  return base_;
}

std::vector<PerfScale> scales_for(const std::vector<DegradationWindow>& a,
                                  const std::vector<DegradationWindow>& b) {
  std::vector<PerfScale> scales;
  auto push = [&scales](const PerfScale& s) {
    if (!s.degraded()) return;
    for (const auto& have : scales) {
      if (have == s) return;
    }
    scales.push_back(s);
  };
  for (const auto& w : a) push(w.scale);
  for (const auto& w : b) push(w.scale);
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      if (wa.replica != wb.replica) continue;
      if (wa.end_s <= wb.start_s || wb.end_s <= wa.start_s) continue;
      push(compose(wa.scale, wb.scale));
    }
  }
  return scales;
}

}  // namespace mib::fleet
