// Reactive queue-depth autoscaler.
//
// Every interval_s the fleet evaluates the total queued depth: above the
// scale-up watermark an inactive replica is activated (cold: empty prefix
// cache, so affinity re-warms); at or below the scale-down watermark an
// active replica is put into draining — it finishes its in-flight work,
// receives no new routing, and deactivates once empty. min/max bounds keep
// the fleet inside its provisioned pool.
#pragma once

#include <string>
#include <vector>

#include "common/error.h"

namespace mib::fleet {

struct AutoscalerConfig {
  bool enabled = false;
  int min_replicas = 1;
  int max_replicas = 8;
  double interval_s = 2.0;
  /// Queued requests above which a replica is added.
  int scale_up_queue_depth = 8;
  /// Queued requests at or below which an idle replica is drained.
  int scale_down_queue_depth = 0;
  /// Placement: false picks the lowest-index inactive slot (PR 1 — in
  /// effect cloning the last placement); true spreads new replicas across
  /// failure domains, picking the slot whose spread group (parent of its
  /// attachment domain) currently holds the fewest active replicas, ties
  /// to the lowest index. No-op without a topology.
  bool topology_aware = false;

  void validate() const {
    MIB_ENSURE(min_replicas >= 1, "autoscaler floor must be >= 1 replica");
    MIB_ENSURE(max_replicas >= min_replicas,
               "autoscaler ceiling below its floor");
    MIB_ENSURE(interval_s > 0.0, "autoscaler interval must be > 0");
    MIB_ENSURE(scale_up_queue_depth > scale_down_queue_depth,
               "scale-up watermark must exceed scale-down watermark");
  }
};

/// One scaling decision, for the report timeline.
struct ScaleEvent {
  double t_s = 0.0;
  std::string action;        ///< "add" or "drain"
  int replica = -1;
  long long queue_depth = 0;
  int active_after = 0;
};

/// Pure decision function: +1 add, -1 drain, 0 hold.
class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig cfg) : cfg_(cfg) {
    if (cfg_.enabled) cfg_.validate();
  }

  const AutoscalerConfig& config() const { return cfg_; }

  int decide(long long queue_depth, int active_replicas,
             bool any_idle_replica) const {
    if (!cfg_.enabled) return 0;
    if (queue_depth > cfg_.scale_up_queue_depth &&
        active_replicas < cfg_.max_replicas) {
      return +1;
    }
    if (queue_depth <= cfg_.scale_down_queue_depth &&
        active_replicas > cfg_.min_replicas && any_idle_replica) {
      return -1;
    }
    return 0;
  }

 private:
  AutoscalerConfig cfg_;
};

}  // namespace mib::fleet
