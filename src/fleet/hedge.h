// Hedged requests: tail-latency insurance against stragglers.
//
// A request whose first token has not appeared after a trigger delay is
// re-issued to a second replica; the first copy to finish wins and the
// loser is cancelled, its queue slot and KV freed. The trigger is either
// a fixed delay or (the Dean & Barroso "tail at scale" recipe) a running
// percentile of observed TTFTs, so hedges target the tail: at the p95
// trigger at most ~5% of requests spawn a second copy, bounding the extra
// load, while a straggling or silently-degraded replica is bypassed long
// before the failure detector would flag it.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace mib::fleet {

struct HedgeConfig {
  bool enabled = false;
  /// Fixed trigger delay; 0 = adaptive (percentile of observed TTFT).
  double delay_s = 0.0;
  /// Percentile of observed TTFTs used as the adaptive trigger.
  double percentile = 95.0;
  /// Floor under the adaptive trigger (never hedge instantly).
  double min_delay_s = 0.02;
  /// Completed requests observed before adaptive hedging arms.
  int min_samples = 16;
  /// true: hedge copies pass through the admission queue like everyone
  /// else and are the first load shed under overload (a hedge is optional
  /// work; primaries must not be rejected to make room for insurance).
  /// false: hedges bypass admission entirely — the PR 2 behaviour.
  bool sheddable = true;
  /// Utilization gate (the other half of the tail-at-scale recipe): a
  /// hedge only fires while the fraction of in-service replicas that are
  /// busy is at or below this. Near saturation the extra copies stop —
  /// hedging into a fleet with no spare capacity pushes the one healthy
  /// replica over the edge instead of protecting the tail. 1.0 = never
  /// gate (PR 2/3 behaviour).
  double max_utilization = 1.0;

  void validate() const {
    MIB_ENSURE(delay_s >= 0.0, "negative hedge delay");
    MIB_ENSURE(percentile > 0.0 && percentile < 100.0,
               "hedge percentile must lie in (0, 100)");
    MIB_ENSURE(min_delay_s > 0.0, "hedge delay floor must be > 0");
    MIB_ENSURE(min_samples >= 1, "hedge needs at least one warmup sample");
    MIB_ENSURE(max_utilization > 0.0 && max_utilization <= 1.0,
               "hedge utilization gate must lie in (0, 1]");
  }
};

/// Tracks observed TTFTs and answers "how long before we hedge right now".
class HedgePlanner {
 public:
  explicit HedgePlanner(HedgeConfig cfg) : cfg_(cfg) {
    if (cfg_.enabled) cfg_.validate();
  }

  const HedgeConfig& config() const { return cfg_; }

  void observe_ttft(double s) { ttfts_.push_back(s); }

  /// Current trigger delay; +infinity while hedging is disabled or the
  /// adaptive trigger has not warmed up yet.
  double trigger_delay() const {
    if (!cfg_.enabled) return std::numeric_limits<double>::infinity();
    if (cfg_.delay_s > 0.0) return std::max(cfg_.delay_s, cfg_.min_delay_s);
    if (static_cast<int>(ttfts_.size()) < cfg_.min_samples) {
      return std::numeric_limits<double>::infinity();
    }
    // Nearest-rank percentile over a scratch copy; hedging decisions are
    // rare (once per dispatch) and fleets are small, so O(n log n) here is
    // noise next to step pricing.
    std::vector<double> xs = ttfts_;
    std::sort(xs.begin(), xs.end());
    const auto rank = static_cast<std::size_t>(
        static_cast<double>(xs.size() - 1) * cfg_.percentile / 100.0);
    return std::max(xs[rank], cfg_.min_delay_s);
  }

 private:
  HedgeConfig cfg_;
  std::vector<double> ttfts_;
};

}  // namespace mib::fleet
