#include "fleet/faults.h"

#include <cmath>
#include <limits>

namespace mib::fleet {

FaultSchedule::FaultSchedule(std::vector<FaultWindow> windows)
    : windows_(std::move(windows)) {
  for (const auto& w : windows_) w.validate();
}

bool FaultSchedule::up(int replica, double t) const {
  for (const auto& w : windows_) {
    if (w.replica == replica && t >= w.start_s && t < w.end_s) return false;
  }
  return true;
}

double FaultSchedule::next_transition_after(double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& w : windows_) {
    if (w.start_s > t) best = std::min(best, w.start_s);
    if (w.end_s > t) best = std::min(best, w.end_s);
  }
  return best;
}

double RetryPolicy::delay(int attempt) const {
  MIB_ENSURE(attempt >= 1, "retry attempts are 1-based");
  return backoff_s * std::pow(multiplier, attempt - 1);
}

}  // namespace mib::fleet
