#include "fleet/faults.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace mib::fleet {

void ensure_disjoint_windows(const std::vector<FaultWindow>& windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const auto& a = windows[i];
      const auto& b = windows[j];
      if (a.replica != b.replica) continue;
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "overlapping fault windows for replica "
                     << a.replica << ": [" << a.start_s << ", " << a.end_s
                     << ") and [" << b.start_s << ", " << b.end_s << ")");
    }
  }
}

FaultSchedule::FaultSchedule(std::vector<FaultWindow> windows)
    : windows_(std::move(windows)) {
  for (const auto& w : windows_) w.validate();
  ensure_disjoint_windows(windows_);
}

bool FaultSchedule::up(int replica, double t) const {
  for (const auto& w : windows_) {
    if (w.replica == replica && t >= w.start_s && t < w.end_s) return false;
  }
  return true;
}

double FaultSchedule::next_transition_after(double t) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& w : windows_) {
    if (w.start_s > t) best = std::min(best, w.start_s);
    if (w.end_s > t) best = std::min(best, w.end_s);
  }
  return best;
}

double jitter_uniform(std::uint64_t key) {
  std::uint64_t state = key + 0x9E3779B97F4A7C15ull;
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

double RetryPolicy::delay(int attempt, std::uint64_t jitter_key) const {
  MIB_ENSURE(attempt >= 1, "retry attempts are 1-based");
  const double base = backoff_s * std::pow(multiplier, attempt - 1);
  if (jitter <= 0.0) return base;
  return base * (1.0 - jitter * jitter_uniform(jitter_key));
}

}  // namespace mib::fleet
