// Planned maintenance: drain a replica by migrating its in-flight KV state
// to peers instead of throwing the work away.
//
// PR 1's only way to take a replica out was the fault path: evacuate,
// lose all progress, recompute elsewhere. For *planned* events (kernel
// upgrades, recabling, host reboots) the source is still healthy, so its
// KV blocks can be shipped to a peer over the datacenter fabric and the
// sequence resumes where it left off. The transfer is priced by
// hw::Interconnect over the configured link and serialized per source
// replica (one NIC), so the recompute-vs-migrate tradeoff is a real
// crossover: tiny contexts re-prefill faster than they ship, deep
// contexts are far cheaper to move.
//
// The drain fabric rides the same network the control plane does: with
// partition.sever_drain_fabric set, a cut that isolates the source replica
// aborts its in-flight migrations mid-stripe (and blocks new ones) — the
// drain falls back to evacuate-and-recompute until the cut heals (see
// control_plane.h, PartitionConfig).
#pragma once

#include "common/error.h"
#include "hw/interconnect.h"

namespace mib::fleet {

/// One planned outage: replica unavailable for [start_s, end_s). Work is
/// drained at start_s; the replica returns cold at end_s.
struct MaintenanceWindow {
  int replica = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(replica >= 0, "maintenance window names a negative replica");
    MIB_ENSURE(start_s >= 0.0, "maintenance window starts before t=0");
    MIB_ENSURE(end_s > start_s,
               "maintenance window must have positive duration");
  }
};

struct MigrationConfig {
  /// true: ship KV to a peer and resume; false: evacuate-and-recompute
  /// (progress lost, re-dispatched immediately — the PR 1 baseline, kept
  /// for the crossover study).
  bool migrate_kv = true;
  /// Fabric the KV blocks cross between replicas (distinct nodes).
  hw::LinkSpec link = hw::ib_ndr400();
  /// Fixed per-sequence handoff cost (control-plane RPC, block table).
  double per_sequence_overhead_s = 0.002;
  /// Parallel fabric links the drain can stripe KV transfers across (a
  /// multi-NIC host). 1 = the single serialized NIC of PR 2.
  int stripe_links = 1;
  /// true: the source keeps decoding a sequence while its KV ships
  /// layer-wise; only the delta produced during the copy is re-sent at the
  /// cutover. false: the sequence freezes for the whole transfer (PR 2).
  bool overlap_decode = false;

  void validate() const {
    MIB_ENSURE(link.bandwidth > 0.0, "migration link bandwidth must be > 0");
    MIB_ENSURE(link.latency >= 0.0, "negative migration link latency");
    MIB_ENSURE(per_sequence_overhead_s >= 0.0,
               "negative migration overhead");
    MIB_ENSURE(stripe_links >= 1, "drain needs at least one stripe link");
  }
};

}  // namespace mib::fleet
