#include "fleet/slo.h"

namespace mib::fleet {

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kRejected: return "rejected";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kLost: return "lost";
  }
  return "unknown";
}

SloSummary summarize_slo(const std::vector<RequestRecord>& records,
                         const SloConfig& slo, double makespan_s) {
  slo.validate();
  SloSummary s;
  s.submitted = static_cast<long long>(records.size());
  double attained_tokens = 0.0;
  for (const auto& r : records) {
    if (r.completed()) ++s.completed;
    if (r.meets(slo)) {
      ++s.attained;
      attained_tokens += r.output_tokens;
    }
  }
  if (s.submitted > 0) {
    s.attainment =
        static_cast<double>(s.attained) / static_cast<double>(s.submitted);
  }
  if (makespan_s > 0.0) {
    s.goodput_qps = static_cast<double>(s.attained) / makespan_s;
    s.goodput_tok_s = attained_tokens / makespan_s;
  }
  return s;
}

CapacityPoint find_capacity_qps(
    const std::function<double(double)>& attainment_at_qps, double lo_qps,
    double hi_qps, double target, int iterations) {
  MIB_ENSURE(lo_qps > 0.0 && hi_qps > lo_qps, "capacity search needs 0 < lo < hi");
  MIB_ENSURE(target > 0.0 && target <= 1.0, "target attainment in (0, 1]");
  MIB_ENSURE(iterations >= 1, "capacity search needs >= 1 iteration");

  CapacityPoint best;
  // The whole band may pass (capacity above hi) or fail (below lo).
  const double at_hi = attainment_at_qps(hi_qps);
  ++best.evaluations;
  if (at_hi >= target) {
    best.qps = hi_qps;
    best.attainment = at_hi;
    return best;
  }
  const double at_lo = attainment_at_qps(lo_qps);
  ++best.evaluations;
  if (at_lo < target) {
    best.qps = 0.0;
    best.attainment = at_lo;
    return best;
  }
  best.qps = lo_qps;
  best.attainment = at_lo;

  double lo = lo_qps, hi = hi_qps;
  for (int i = 0; i < iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double a = attainment_at_qps(mid);
    ++best.evaluations;
    if (a >= target) {
      lo = mid;
      best.qps = mid;
      best.attainment = a;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace mib::fleet
