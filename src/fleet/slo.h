// SLO accounting: per-request outcomes, goodput under TTFT/ITL SLOs, and
// the MoE-CAP-style capacity search (max sustainable QPS at a target SLO
// attainment, found by bisection).
//
// Attainment is strict: rejected, expired and lost requests are SLO misses,
// so shedding load does not inflate the score — goodput counts only
// requests that completed within both SLOs.
#pragma once

#include <functional>
#include <vector>

#include "common/error.h"

namespace mib::fleet {

/// Latency SLOs a request must meet to count toward goodput.
struct SloConfig {
  double ttft_s = 2.0;   ///< time-to-first-token bound
  double itl_s = 0.05;   ///< mean inter-token latency bound

  void validate() const {
    MIB_ENSURE(ttft_s > 0.0, "TTFT SLO must be > 0");
    MIB_ENSURE(itl_s > 0.0, "ITL SLO must be > 0");
  }
};

enum class RequestStatus {
  kCompleted,  ///< served to the last token
  kRejected,   ///< shed at admission (queue full)
  kExpired,    ///< deadline passed while queued
  kLost,       ///< retry budget exhausted after replica failures
};

const char* to_string(RequestStatus status);

/// Fleet-level outcome of one request.
struct RequestRecord {
  RequestStatus status = RequestStatus::kRejected;
  double arrival_s = 0.0;
  double first_token_s = -1.0;
  double finish_s = -1.0;
  int input_tokens = 0;    ///< effective prompt tokens (vision folded in)
  int output_tokens = 0;
  int replica = -1;        ///< replica that completed it
  int retries = 0;
  bool had_prefix = false;  ///< carried a cacheable conversation prefix
  bool prefix_hit = false;  ///< prefill skipped a warm prefix
  bool hedged = false;          ///< a second copy was issued
  bool won_by_hedge = false;    ///< the hedge copy finished first
  bool migrated = false;        ///< KV was drain-migrated at least once
  bool router_failover = false;  ///< stranded at a dead router, re-entered
  /// Split-brain duplicate: both partition sides admitted this request.
  /// Goodput still counts it at most once — whichever copy commits first.
  bool double_dispatched = false;
  bool fenced = false;  ///< a minority-side copy was cancelled at heal
  /// A copy finished behind an asymmetric cut and its completion never
  /// reached the dispatching side (the decode was orphaned).
  bool orphaned = false;
  /// The home router had fenced itself (quorum lost) and the dispatch was
  /// re-homed straight to the majority survivor.
  bool quorum_rehomed = false;

  bool completed() const { return status == RequestStatus::kCompleted; }
  double ttft() const { return first_token_s - arrival_s; }
  double e2e() const { return finish_s - arrival_s; }
  /// Mean inter-token latency; 0 for single-token outputs.
  double itl() const {
    return output_tokens > 1
               ? (finish_s - first_token_s) / (output_tokens - 1)
               : 0.0;
  }
  bool meets(const SloConfig& slo) const {
    return completed() && ttft() <= slo.ttft_s && itl() <= slo.itl_s;
  }
};

/// Goodput summary of one run under a fixed SLO pair.
struct SloSummary {
  long long submitted = 0;
  long long completed = 0;
  long long attained = 0;       ///< completed within both SLOs
  double attainment = 0.0;      ///< attained / submitted
  double goodput_qps = 0.0;     ///< attained requests / makespan
  double goodput_tok_s = 0.0;   ///< generated tokens of attained / makespan
};

SloSummary summarize_slo(const std::vector<RequestRecord>& records,
                         const SloConfig& slo, double makespan_s);

/// One point on the SLO capacity curve.
struct CapacityPoint {
  double qps = 0.0;         ///< max offered load meeting the target
  double attainment = 0.0;  ///< attainment measured at that load
  int evaluations = 0;      ///< fleet runs the search spent
};

/// Bisect the max Poisson arrival rate whose SLO attainment stays >= target
/// (the MoE-CAP capacity metric). `attainment_at_qps` runs the fleet at an
/// offered load and returns attainment in [0, 1]; it is assumed
/// non-increasing in load. Returns qps = 0 when even lo_qps misses target.
CapacityPoint find_capacity_qps(
    const std::function<double(double)>& attainment_at_qps, double lo_qps,
    double hi_qps, double target = 0.99, int iterations = 10);

}  // namespace mib::fleet
