// Front-end admission control: a bounded fleet-wide queue plus per-request
// service deadlines.
//
// Arriving requests are rejected outright when the number of
// dispatched-but-not-yet-running requests across the fleet has reached
// queue_capacity (load shedding at the door beats unbounded queueing —
// a request that would wait past its SLO is better told "503" at t=0).
// A request still waiting when its deadline passes is dropped and counted
// expired; deadlines are checked at scheduling boundaries, and retries of
// evacuated requests bypass the capacity gate (they were already admitted).
#pragma once

#include "common/error.h"

namespace mib::fleet {

struct AdmissionConfig {
  /// Max queued (dispatched but not yet running) requests fleet-wide.
  int queue_capacity = 4096;
  /// Per-request deadline on starting service, measured from arrival;
  /// 0 = no deadline.
  double deadline_s = 0.0;

  void validate() const {
    MIB_ENSURE(queue_capacity >= 1, "admission queue capacity must be >= 1");
    MIB_ENSURE(deadline_s >= 0.0, "negative deadline");
  }
};

/// Counts the accept / reject / expire decisions of one fleet run.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {
    cfg_.validate();
  }

  const AdmissionConfig& config() const { return cfg_; }

  /// Gate a fresh arrival given the current fleet-wide queue depth.
  bool try_admit(long long queued_now) {
    if (queued_now >= cfg_.queue_capacity) {
      ++rejected_;
      return false;
    }
    ++accepted_;
    return true;
  }

  void count_expired() { ++expired_; }

  long long accepted() const { return accepted_; }
  long long rejected() const { return rejected_; }
  long long expired() const { return expired_; }

 private:
  AdmissionConfig cfg_;
  long long accepted_ = 0;
  long long rejected_ = 0;
  long long expired_ = 0;
};

}  // namespace mib::fleet
