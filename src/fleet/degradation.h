// Partial-failure model: replicas that run *slow* instead of dead.
//
// Real fleet incidents are dominated by brownouts, not crashes — thermal
// throttling, ECC row retirement eating bandwidth, a contended NVLink or
// ToR switch. A DegradationWindow scales one replica's effective compute,
// memory bandwidth and interconnect bandwidth over [start_s, end_s); the
// fleet prices steps taken inside the window with a LayerCostModel built
// on the derated hardware, so a compute throttle mostly stretches prefill
// while a bandwidth cut mostly stretches decode — the same roofline logic
// as everywhere else, not a scalar slowdown knob.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "engine/engine.h"
#include "engine/layer_cost.h"

namespace mib::fleet {

/// Effective hardware scale factors of one replica at one instant.
struct PerfScale {
  double flops = 1.0;    ///< fraction of peak math throughput available
  double mem_bw = 1.0;   ///< fraction of memory bandwidth available
  double link_bw = 1.0;  ///< fraction of interconnect bandwidth available

  bool degraded() const {
    return flops < 1.0 || mem_bw < 1.0 || link_bw < 1.0;
  }
  /// Worst single dimension — proxy for how late the replica's control
  /// plane (heartbeats, health probes) runs while degraded.
  double worst() const { return std::min(flops, std::min(mem_bw, link_bw)); }
  bool operator==(const PerfScale& o) const {
    return flops == o.flops && mem_bw == o.mem_bw && link_bw == o.link_bw;
  }
};

/// Composition of two independent slowdowns acting at once (a scheduled
/// brownout on a replica still inside its post-recovery warm-up): the
/// scales multiply per dimension.
inline PerfScale compose(const PerfScale& a, const PerfScale& b) {
  return PerfScale{a.flops * b.flops, a.mem_bw * b.mem_bw,
                   a.link_bw * b.link_bw};
}

/// One brownout: replica runs at `scale` for [start_s, end_s).
struct DegradationWindow {
  int replica = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  PerfScale scale;

  void validate() const {
    MIB_ENSURE(replica >= 0, "degradation window names a negative replica");
    MIB_ENSURE(start_s >= 0.0, "degradation window starts before t=0");
    MIB_ENSURE(end_s > start_s,
               "degradation window must have positive duration");
    auto in_range = [](double s) { return s > 0.0 && s <= 1.0; };
    MIB_ENSURE(in_range(scale.flops) && in_range(scale.mem_bw) &&
                   in_range(scale.link_bw),
               "degradation scales must lie in (0, 1]");
  }
};

/// Immutable brownout schedule; windows for one replica must not overlap
/// (two simultaneous throttles have no well-defined composition).
class DegradationSchedule {
 public:
  explicit DegradationSchedule(std::vector<DegradationWindow> windows);

  /// Effective scale of `replica` at time t (identity outside windows).
  PerfScale at(int replica, double t) const;

  /// Earliest window edge strictly after t, or +infinity.
  double next_transition_after(double t) const;

  const std::vector<DegradationWindow>& windows() const { return windows_; }

 private:
  std::vector<DegradationWindow> windows_;
};

/// Lazily-keyed pool of LayerCostModels over derated hardware: one per
/// distinct PerfScale in the schedule, built once up front so the fleet's
/// hot loop only swaps pointers at window edges. The identity scale maps
/// to the shared base model.
class DegradedCostPool {
 public:
  DegradedCostPool(const engine::LayerCostModel* base,
                   const engine::EngineConfig& cfg,
                   const std::vector<DegradationWindow>& windows);
  /// Build models for an explicit scale set (lets the fleet pre-register
  /// warm-up scales and brownout x warm-up products alongside the
  /// scheduled windows).
  DegradedCostPool(const engine::LayerCostModel* base,
                   const engine::EngineConfig& cfg,
                   const std::vector<PerfScale>& scales);

  const engine::LayerCostModel* at(const PerfScale& scale) const;

 private:
  const engine::LayerCostModel* base_;
  std::vector<std::pair<PerfScale, std::unique_ptr<engine::LayerCostModel>>>
      models_;
};

/// Every scale a fleet run can price: the windows of both schedules plus
/// the product of each same-replica time-overlapping pair (a brownout
/// composed with a warm-up ramp).
std::vector<PerfScale> scales_for(const std::vector<DegradationWindow>& a,
                                  const std::vector<DegradationWindow>& b);

}  // namespace mib::fleet
