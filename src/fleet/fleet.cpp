#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <tuple>
#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace mib::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stateless hash combine for the retry-jitter key.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  return splitmix64(state);
}
}  // namespace

std::vector<FleetRequest> as_fleet_trace(
    const std::vector<engine::Request>& trace) {
  std::vector<FleetRequest> out;
  out.reserve(trace.size());
  for (const auto& r : trace) out.push_back(FleetRequest{r, 0, 0});
  return out;
}

std::vector<FleetRequest> as_fleet_trace(
    const std::vector<workload::Turn>& turns) {
  std::vector<const workload::Turn*> order;
  order.reserve(turns.size());
  for (const auto& t : turns) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const workload::Turn* a, const workload::Turn* b) {
                     return std::tie(a->turn, a->conversation) <
                            std::tie(b->turn, b->conversation);
                   });
  std::vector<FleetRequest> out;
  out.reserve(turns.size());
  for (const auto* t : order) {
    FleetRequest fr;
    fr.request = t->request;
    // Conversation identity: a stateless splitmix64 hash of the
    // conversation id (forced nonzero; 0 means "no prefix").
    std::uint64_t state = static_cast<std::uint64_t>(t->conversation) +
                          0x9E3779B97F4A7C15ull;
    fr.prefix_hash = splitmix64(state) | 1ull;
    fr.prefix_tokens = t->shared_prefix_tokens;
    out.push_back(fr);
  }
  return out;
}

void stamp_arrivals(const workload::ArrivalConfig& cfg,
                    std::vector<FleetRequest>& trace) {
  MIB_ENSURE(!trace.empty(), "cannot stamp an empty trace");
  const auto times =
      workload::generate_arrivals(cfg, static_cast<int>(trace.size()));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].request.arrival_s = times[i];
  }
}

void FleetConfig::validate() const {
  engine.validate();
  replica.validate();
  MIB_ENSURE(n_replicas >= 1, "fleet needs at least one replica");
  admission.validate();
  retry.validate();
  for (const auto& w : faults) w.validate();
  ensure_disjoint_windows(faults);
  for (const auto& w : degradations) w.validate();
  for (std::size_t i = 0; i < degradations.size(); ++i) {
    for (std::size_t j = i + 1; j < degradations.size(); ++j) {
      const auto& a = degradations[i];
      const auto& b = degradations[j];
      if (a.replica != b.replica) continue;
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "overlapping degradation windows for replica " << a.replica);
    }
  }
  for (const auto& w : maintenance) w.validate();
  for (std::size_t i = 0; i < maintenance.size(); ++i) {
    for (std::size_t j = i + 1; j < maintenance.size(); ++j) {
      const auto& a = maintenance[i];
      const auto& b = maintenance[j];
      if (a.replica != b.replica) continue;
      MIB_ENSURE(a.end_s <= b.start_s || b.end_s <= a.start_s,
                 "overlapping maintenance windows for replica " << a.replica);
    }
  }
  migration.validate();
  if (health.enabled) health.validate();
  if (hedge.enabled) hedge.validate();
  if (warmup.enabled) warmup.validate();
  control.validate();
  if (autoscaler.enabled) {
    autoscaler.validate();
    MIB_ENSURE(n_replicas >= autoscaler.min_replicas &&
                   n_replicas <= autoscaler.max_replicas,
               "initial replica count outside autoscaler bounds");
  }
  slo.validate();
  const int pool = autoscaler.enabled
                       ? std::max(n_replicas, autoscaler.max_replicas)
                       : n_replicas;
  topology.validate(pool);
  MIB_ENSURE(domain_faults.empty() || topology.enabled(),
             "domain faults configured without a topology");
  MIB_ENSURE(domain_degradations.empty() || topology.enabled(),
             "domain degradations configured without a topology");
  for (const auto& e : domain_faults) e.validate();
  for (const auto& e : domain_degradations) e.validate();
  for (const auto& w : faults) {
    MIB_ENSURE(w.replica < pool,
               "fault window names replica " << w.replica
                                             << " outside the pool of "
                                             << pool);
  }
  for (const auto& w : degradations) {
    MIB_ENSURE(w.replica < pool, "degradation window names replica "
                                     << w.replica << " outside the pool of "
                                     << pool);
  }
  for (const auto& w : maintenance) {
    MIB_ENSURE(w.replica < pool, "maintenance window names replica "
                                     << w.replica << " outside the pool of "
                                     << pool);
  }
  for (const auto& w : control.partition.windows) {
    for (int r : w.minority_replicas) {
      MIB_ENSURE(r < pool, "partition window names replica "
                               << r << " outside the pool of " << pool);
    }
  }
}

FleetSimulator::FleetSimulator(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      cost_(cfg_.engine.model, cfg_.engine.cluster, cfg_.engine.plan,
            cfg_.engine.cost),
      mem_(cfg_.engine.model, cfg_.engine.plan, cfg_.engine.cost.weight_dtype,
           cfg_.engine.cost.kv_dtype, cfg_.engine.cost.act_dtype) {
  cfg_.validate();
  const double budget = cfg_.engine.cluster.device().usable_mem() -
                        mem_.weight_bytes_per_device() -
                        mem_.activation_bytes(cfg_.replica.prefill_tokens_per_step);
  MIB_ENSURE(budget > 0, cfg_.engine.model.name
                             << ": weights leave no room for KV cache");
  kv_capacity_tokens_ =
      static_cast<long long>(budget / mem_.kv_bytes_per_token_per_device());
  MIB_ENSURE(kv_capacity_tokens_ >= 1, "KV capacity below one token");
  // Expand domain events over the topology into the per-replica schedules
  // the event loop prices. With no topology and no domain events these are
  // the explicit schedules unchanged.
  const Topology topo(cfg_.topology, pool_size());
  faults_expanded_ = expand_domain_faults(topo, cfg_.domain_faults, cfg_.faults);
  degr_expanded_ = expand_domain_degradations(topo, cfg_.domain_degradations,
                                              cfg_.degradations);
  WarmupPlan warm = plan_warmup(cfg_.warmup, faults_expanded_, cfg_.maintenance);
  warmup_windows_ = std::move(warm.windows);
  warmup_recoveries_ = warm.recoveries;
  degraded_costs_ = std::make_unique<DegradedCostPool>(
      &cost_, cfg_.engine, scales_for(degr_expanded_, warmup_windows_));
}

int FleetSimulator::pool_size() const {
  return cfg_.autoscaler.enabled
             ? std::max(cfg_.n_replicas, cfg_.autoscaler.max_replicas)
             : cfg_.n_replicas;
}

FleetReport FleetSimulator::run(const std::vector<FleetRequest>& trace) const {
  MIB_ENSURE(!trace.empty(), "empty fleet trace");
  const auto n = trace.size();

  // --- intake: validate, fold vision tokens, sort by arrival ---
  std::vector<Sequence> intake;
  intake.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fr = trace[i];
    fr.request.validate();
    MIB_ENSURE(fr.prefix_tokens >= 0, "negative prefix length");
    Sequence s;
    s.request_id = static_cast<int>(i);
    s.arrival_s = fr.request.arrival_s;
    s.input_tokens = cost_.effective_prompt_tokens(fr.request.input_tokens,
                                                   fr.request.n_images);
    s.output_tokens = fr.request.output_tokens;
    s.prefix_hash = fr.prefix_hash;
    s.prefix_tokens = std::min(fr.prefix_tokens, s.input_tokens - 1);
    if (cfg_.admission.deadline_s > 0.0) {
      s.deadline_s = s.arrival_s + cfg_.admission.deadline_s;
    }
    MIB_ENSURE(s.input_tokens + s.output_tokens <= kv_capacity_tokens_,
               "request " << i << " exceeds replica KV capacity even alone");
    intake.push_back(s);
  }
  // Pristine copy per request id (hedge copies restart from here).
  std::vector<Sequence> blank(n);
  for (const auto& s : intake) {
    blank[static_cast<std::size_t>(s.request_id)] = s;
  }
  std::stable_sort(intake.begin(), intake.end(),
                   [](const Sequence& a, const Sequence& b) {
                     return a.arrival_s < b.arrival_s;
                   });

  // --- fleet state ---
  const int pool = pool_size();
  const bool oracle = !cfg_.health.enabled;
  std::vector<Replica> reps;
  reps.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    reps.emplace_back(&cost_, kv_capacity_tokens_, cfg_.replica);
  }
  std::vector<bool> active(static_cast<std::size_t>(pool), false);
  std::vector<bool> draining(static_cast<std::size_t>(pool), false);
  std::vector<bool> was_up(static_cast<std::size_t>(pool), true);
  std::vector<bool> in_maint(static_cast<std::size_t>(pool), false);
  for (int i = 0; i < cfg_.n_replicas; ++i) active[static_cast<std::size_t>(i)] = true;

  const FaultSchedule faults(faults_expanded_);
  const DegradationSchedule degr(degr_expanded_);
  // Warm-up ramps live in their own schedule: they may overlap scheduled
  // brownouts (the one sanctioned composition) and are multiplied in at
  // query time.
  const DegradationSchedule warm(warmup_windows_);
  ControlPlane plane(cfg_.control, cfg_.policy, cfg_.seed, pool);
  // Every split-brain path below is gated on this: with no partition
  // windows configured the run is bitwise-identical to the PR 3 loop.
  const bool partitions = plane.partition_enabled();
  AdmissionController admission(cfg_.admission);
  const Autoscaler scaler(cfg_.autoscaler);
  HealthMonitor monitor(cfg_.health, pool);
  HedgePlanner hedge(cfg_.hedge);
  const hw::Interconnect migration_link(cfg_.migration.link);
  const double kv_bytes_per_token =
      mem_.kv_bytes_per_token_per_device() *
      static_cast<double>(cfg_.engine.cluster.size());

  // Failure-domain spread groups for topology-aware autoscaler placement
  // (empty strings when the feature or the topology is off).
  std::vector<std::string> spread_group(static_cast<std::size_t>(pool));
  if (cfg_.autoscaler.enabled && cfg_.autoscaler.topology_aware &&
      cfg_.topology.enabled()) {
    const Topology topo(cfg_.topology, pool);
    for (int i = 0; i < pool; ++i) {
      spread_group[static_cast<std::size_t>(i)] = topo.spread_group_of(i);
    }
  }

  FleetReport rep;
  rep.submitted = static_cast<long long>(n);
  rep.requests.resize(n);
  rep.replicas.resize(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    rep.replicas[static_cast<std::size_t>(i)].replica = i;
  }

  struct PendingRetry {
    double ready_s = 0.0;
    Sequence seq;
  };
  std::vector<PendingRetry> retries;
  struct PendingMigration {
    double ready_s = 0.0;
    Sequence seq;
    /// Source replica the KV is shipping out of (drain-fabric severing
    /// aborts in-flight transfers whose source lands behind a cut).
    int src = -1;
  };
  std::vector<PendingMigration> migrations;
  /// Overlap drain: a running sequence whose KV snapshot copy completes at
  /// `at`; the delta it decodes meanwhile is re-shipped at the cutover.
  struct PendingHandoff {
    double at = 0.0;
    int replica = -1;
    int id = -1;
    long long snapshot_kv = 0;
    double drain_start = 0.0;
  };
  std::vector<PendingHandoff> handoffs;
  std::vector<bool> overlap_drain(static_cast<std::size_t>(pool), false);
  /// Requests waiting out the client fail-over lag at a dead home router.
  struct RouterPending {
    double ready_s = 0.0;
    Sequence seq;
  };
  std::vector<RouterPending> router_pending;
  /// Work that was on a replica when it died, held until the front-end
  /// *learns* of the failure (circuit opens or the restart is observed).
  std::vector<std::vector<Sequence>> stranded(static_cast<std::size_t>(pool));
  /// Unplanned-failure start times awaiting detection (lag metric).
  std::vector<double> fault_started_at(static_cast<std::size_t>(pool), -1.0);

  // Per-request resolution and copy accounting. `copies[id]` counts live
  // copies of a request anywhere in the system (replica queues, retry
  // holds, stranded lists, migrations); hedging and split-brain double
  // dispatch are the only ways it exceeds 1.
  std::vector<char> done(n, 0);
  std::vector<int> copies(n, 0);
  struct HedgeTimer {
    double at = 0.0;
    int id = -1;
    bool operator<(const HedgeTimer& o) const { return at > o.at; }  // min-heap
  };
  std::priority_queue<HedgeTimer> hedge_timers;
  std::vector<char> hedge_fired(n, 0);

  // Split-brain state: the client's retry patience arms a timer per
  // affected dispatch; when it fires with the partition still up and no
  // first token visible, the majority admits a duplicate copy. With
  // max_client_retries > 1 the patience re-arms on a full-jitter
  // exponential backoff (the gray-failure client model); the defaults
  // reproduce PR 4's single fixed timer bit-for-bit.
  struct DupTimer {
    double at = 0.0;
    int id = -1;
    bool operator<(const DupTimer& o) const { return at > o.at; }  // min-heap
  };
  std::priority_queue<DupTimer> dup_timers;
  /// Patience attempts armed so far per request, and whether one is
  /// currently pending in `dup_timers`.
  std::vector<int> client_attempts(n, 0);
  std::vector<char> client_timer_pending(n, 0);
  /// Requests ever double-dispatched (heal-lag drain scan).
  std::vector<int> dup_ids;
  /// Heal edges whose duplicates have not all resolved yet.
  std::vector<double> pending_heals;
  const PartitionWindow* active_part =
      partitions ? plane.partition_at(0.0) : nullptr;

  // Heartbeats and degradation state.
  std::vector<double> next_hb(static_cast<std::size_t>(pool), kInf);
  std::vector<PerfScale> cur_scale(static_cast<std::size_t>(pool));
  /// Effective scale right now: scheduled brownout x post-recovery warm-up.
  auto scale_at = [&](int i, double t) {
    return compose(degr.at(i, t), warm.at(i, t));
  };
  auto hb_period = [&](int i, double t) {
    // A degraded replica services its control plane late in proportion to
    // its worst-hit resource.
    return cfg_.health.heartbeat_interval_s / scale_at(i, t).worst();
  };
  if (!oracle) {
    for (int i = 0; i < cfg_.n_replicas; ++i) {
      monitor.resume(i, 0.0);
      next_hb[static_cast<std::size_t>(i)] = hb_period(i, 0.0);
    }
  }

  std::size_t next_arrival = 0;
  std::size_t resolved = 0;
  double now = 0.0;
  double next_tick = cfg_.autoscaler.enabled ? cfg_.autoscaler.interval_s : kInf;

  // Runaway guard, scaled like the single-replica simulator plus the retry
  // budget (every retry can redo a request's full work), hedging (a second
  // copy per request) and maintenance (evacuate-and-recompute redoes work
  // once per window).
  long long max_steps = 0;
  for (const auto& s : intake) {
    max_steps += s.input_tokens + s.output_tokens + 4;
  }
  max_steps =
      std::max<long long>(max_steps, 1024) * 4 *
      (1 + cfg_.retry.max_retries) * (cfg_.hedge.enabled ? 2 : 1) *
      (partitions ? 1 + std::max(1, cfg_.control.partition.max_client_retries) +
                        static_cast<long long>(plane.partition_cuts())
                  : 1) *
      (1 + static_cast<long long>(cfg_.maintenance.size()));

  auto total_steps = [&] {
    long long t = 0;
    for (const auto& r : reps) t += r.steps();
    return t;
  };
  auto physically_up = [&](int i, double t) { return faults.up(i, t); };
  // The front end's ground-truth knowledge of a replica: the breaker state
  // when detection is on, the fault schedule itself in legacy oracle mode.
  auto live_routable = [&](int i, double t) {
    return oracle ? faults.up(i, t) : monitor.routable(i);
  };
  // What router `rtr` believes is routable: its (possibly stale) breaker
  // view when views age independently, the live truth otherwise. A
  // partitioned minority router routes on the view frozen at the cut and
  // can only reach replicas on its own side. The
  // active/draining/maintenance gates are front-end-initiated state every
  // router knows instantly.
  auto routable_for = [&](int rtr, double t) {
    std::vector<int> up;
    const bool frozen = partitions && plane.frozen_view(rtr, t);
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (!active[u] || draining[u] || in_maint[u]) continue;
      if (partitions && !plane.reachable(rtr, i, t)) continue;
      const bool ok = (plane.stale_views() || frozen) ? plane.view_ok(rtr, i)
                                                      : live_routable(i, t);
      if (ok) up.push_back(i);
    }
    return up;
  };
  auto queued_total = [&] {
    long long q = 0;
    for (const auto& r : reps) q += r.queue_depth();
    return q;
  };
  auto maint_transition_after = [&](double t) {
    double best = kInf;
    for (const auto& w : cfg_.maintenance) {
      if (w.start_s > t) best = std::min(best, w.start_s);
      if (w.end_s > t) best = std::min(best, w.end_s);
    }
    return best;
  };
  auto in_maint_window = [&](int i, double t) {
    for (const auto& w : cfg_.maintenance) {
      if (w.replica == i && t >= w.start_s && t < w.end_s) return true;
    }
    return false;
  };
  auto record_terminal = [&](const Sequence& s, RequestStatus status) {
    const auto u = static_cast<std::size_t>(s.request_id);
    MIB_ENSURE(!done[u], "request " << s.request_id << " resolved twice");
    done[u] = 1;
    auto& rec = rep.requests[u];
    rec.status = status;
    rec.arrival_s = s.arrival_s;
    rec.input_tokens = s.input_tokens;
    rec.output_tokens = s.output_tokens;
    rec.retries = s.retries;
    rec.had_prefix = s.prefix_hash != 0;
    ++resolved;
  };
  // Price the waste when a copy of a double-dispatched request is removed:
  // whatever replica time it consumed served nobody, but the fleet paid
  // for it. A no-op for everything else (hedges keep their own counters).
  auto charge_duplicate = [&](const Sequence& s) {
    if (rep.requests[static_cast<std::size_t>(s.request_id)]
            .double_dispatched) {
      rep.duplicate_decode_s += s.served_s;
    }
  };
  // Loser-copy accounting: split-brain duplicates are priced as waste,
  // everything else counts toward hedges_cancelled as before. (Never both:
  // a double-dispatched request's copies would otherwise push the hedge
  // counter past hedges_issued.)
  auto count_cancelled = [&](const Sequence& s) {
    if (rep.requests[static_cast<std::size_t>(s.request_id)]
            .double_dispatched) {
      rep.duplicate_decode_s += s.served_s;
    } else {
      ++rep.hedges_cancelled;
    }
  };
  // Arm (or re-arm) the client's patience timer for `id` at time t.
  // Attempt k fires after client_retry_s * retry_multiplier^(k-1), shrunk
  // by full jitter when retry_jitter > 0; the jitter key is a distinct
  // salt from the server-side retry stream so the two schedules never
  // correlate. Returns false when an attempt is already pending or the
  // client's retry budget is spent. The defaults (multiplier 1, jitter 0,
  // one attempt) reproduce PR 4's single fixed patience bit-for-bit.
  auto arm_client_timer = [&](int id, double t) {
    const auto u = static_cast<std::size_t>(id);
    const auto& pc = cfg_.control.partition;
    if (client_timer_pending[u] || client_attempts[u] >= pc.max_client_retries) {
      return false;
    }
    const int attempt = ++client_attempts[u];
    client_timer_pending[u] = 1;
    double delay = pc.client_retry_s;
    for (int k = 1; k < attempt; ++k) delay *= pc.retry_multiplier;
    if (pc.retry_jitter > 0.0) {
      const std::uint64_t key =
          mix(cfg_.seed ^ 0xC11E27ull,
              mix(static_cast<std::uint64_t>(id),
                  static_cast<std::uint64_t>(attempt)));
      delay *= 1.0 - pc.retry_jitter * jitter_uniform(key);
    }
    dup_timers.push(DupTimer{t + delay, id});
    return true;
  };
  auto dispatch_via = [&](int rtr, Sequence seq, double t) {
    const auto up = routable_for(rtr, t);
    if (up.empty()) {
      // Whole fleet dark as far as this router knows: park until
      // something can change that — a fault transition (oracle mode or a
      // restart), a breaker deadline, a maintenance edge, a view sync, a
      // router recovery, or the next autoscaler tick.
      double wake = faults.next_transition_after(t);
      wake = std::min(wake, maint_transition_after(t));
      if (!oracle) wake = std::min(wake, monitor.next_event_after(t));
      wake = std::min(wake, plane.next_sync_after(t));
      wake = std::min(wake, plane.next_router_transition_after(t));
      // A partition edge changes reachability (a minority router with no
      // same-side replica parks exactly until the heal).
      if (partitions) {
        wake = std::min(wake, plane.next_partition_transition_after(t));
      }
      if (cfg_.autoscaler.enabled) {
        wake = std::min(wake, next_tick > t
                                  ? next_tick
                                  : next_tick + cfg_.autoscaler.interval_s);
      }
      MIB_ENSURE(std::isfinite(wake),
                 "no replica in service and none scheduled to recover");
      MIB_ENSURE(wake > t, "fleet parked without a future wake event");
      retries.push_back(PendingRetry{wake, seq});
      return;
    }
    const int idx = plane.router(rtr).route(seq, reps, up);
    if (!live_routable(idx, t)) {
      // Only a stale breaker view — aged out under staggered syncs or
      // frozen on the minority side of a partition — can pick a replica
      // the live state has already fenced off.
      MIB_ENSURE(plane.stale_views() || (partitions && plane.frozen_view(rtr, t)),
                 "dispatch to a replica with an open circuit");
      ++rep.stale_dispatches;
      if (!faults.up(idx, t)) {
        // Connection refused by a dead node: the client times out after
        // the usual detection lag, then re-enters at its home router
        // (whose view has had time to catch up).
        retries.push_back(
            PendingRetry{t + cfg_.control.failover_detection_s, seq});
        return;
      }
      // Breaker open but the node is alive (a false-positive open): the
      // stale dispatch lands and is simply served.
    }
    if (partitions && !plane.reply_reachable(idx, rtr, t)) {
      // Cross-cut dispatch over an asymmetric link: the copy can decode
      // to completion without the dispatching side ever hearing back.
      // Patience must be ticking or the request would leak with its
      // orphan.
      arm_client_timer(seq.request_id, t);
    }
    seq.via_router = rtr;
    reps[static_cast<std::size_t>(idx)].enqueue(seq);
  };
  auto dispatch = [&](Sequence seq, double t) {
    const int home = plane.assigned_router(seq.request_id);
    if (partitions) {
      const auto u = static_cast<std::size_t>(seq.request_id);
      if (seq.is_partition_dup) {
        // The duplicate is the client's majority-side retry: while the
        // partition holds it re-enters at a majority router, never back
        // at its cut-off home.
        if (plane.partition_at(t) != nullptr) {
          const int rtr = plane.majority_survivor(t);
          if (rtr >= 0) {
            dispatch_via(rtr, std::move(seq), t);
            return;
          }
          // No live majority router: fall through to the home-router
          // stranding machinery below.
        }
      } else if (plane.router_fenced(home, t)) {
        // Quorum self-fencing: the minority home router knows it lost the
        // router majority and refuses the dispatch outright, so the
        // client re-homes to the majority survivor instead of burning
        // patience against a side that will not answer.
        ++rep.quorum_fenced;
        rep.requests[u].quorum_rehomed = true;
        const int rtr = plane.majority_survivor(t);
        if (rtr >= 0) {
          dispatch_via(rtr, std::move(seq), t);
          return;
        }
        // No live majority router either: strand client-side until the
        // fail-over lag passes (3i' re-checks fencing on re-entry).
        router_pending.push_back(
            RouterPending{t + cfg_.control.failover_detection_s, seq});
        return;
      } else if (plane.router_minority(home, t)) {
        // Minority-homed dispatch during a partition: the client's retry
        // patience starts ticking toward a majority-side double dispatch.
        arm_client_timer(seq.request_id, t);
      }
    }
    if (!plane.router_up(home, t)) {
      // Home router dead: the request strands client-side until the
      // fail-over timeout fires, then re-enters at a survivor.
      ++rep.router_stranded;
      rep.requests[static_cast<std::size_t>(seq.request_id)].router_failover =
          true;
      router_pending.push_back(
          RouterPending{t + cfg_.control.failover_detection_s, seq});
      return;
    }
    dispatch_via(home, std::move(seq), t);
  };
  // A copy of `id` resolved; remove every other live copy (hedge losers,
  // parked retries, stranded or migrating duplicates) and free their KV.
  // The winner's own replica is scanned too: a retried original and its
  // hedge can land on the same replica, and the winning copy is already
  // out of the running set by the time this runs.
  auto cancel_other_copies = [&](int id) {
    const auto u = static_cast<std::size_t>(id);
    if (copies[u] <= 1) return;
    for (int r = 0; r < pool; ++r) {
      // A cancel cannot cross an active partition unless the cut leaves
      // the majority->minority direction open: a stray copy behind a full
      // cut keeps burning until the heal fences it (or until it completes
      // as a photo-finish loser).
      if (partitions && !plane.cancel_reachable(r, now)) continue;
      Sequence s;
      while (copies[u] > 1 && reps[static_cast<std::size_t>(r)].take(id, &s)) {
        --copies[u];
        count_cancelled(s);
      }
    }
    auto drop_from = [&](auto& list) {
      for (auto it = list.begin(); it != list.end();) {
        if (it->seq.request_id == id) {
          count_cancelled(it->seq);
          it = list.erase(it);
          --copies[u];
        } else {
          ++it;
        }
      }
    };
    drop_from(retries);
    drop_from(migrations);
    drop_from(router_pending);
    for (auto& list : stranded) {
      for (auto it = list.begin(); it != list.end();) {
        if (it->request_id == id) {
          count_cancelled(*it);
          it = list.erase(it);
          --copies[u];
        } else {
          ++it;
        }
      }
    }
  };
  // Route work off a dead replica: everything still on it plus everything
  // stranded there since the crash goes through the retry path (with
  // jittered backoff and a budget), duplicates of hedged requests are
  // simply dropped.
  auto release_failed = [&](int i, double t) {
    const auto u = static_cast<std::size_t>(i);
    auto work = reps[u].evacuate();
    for (auto& s : stranded[u]) work.push_back(s);
    stranded[u].clear();
    for (auto& s : work) {
      const auto id = static_cast<std::size_t>(s.request_id);
      if (done[id] || copies[id] > 1) {
        charge_duplicate(s);
        --copies[id];  // another copy carries the request (or it's over)
        continue;
      }
      if (s.retries >= cfg_.retry.max_retries) {
        record_terminal(s, RequestStatus::kLost);
        --copies[id];
        ++rep.lost;
        continue;
      }
      ++s.retries;
      ++rep.retries;
      const std::uint64_t key =
          mix(cfg_.seed, mix(static_cast<std::uint64_t>(s.request_id),
                             static_cast<std::uint64_t>(s.retries)));
      retries.push_back(
          PendingRetry{t + cfg_.retry.delay(s.retries, key), s});
    }
  };
  // Learn of a failure (detection or observed restart): lag metric.
  auto mark_detected = [&](int i, double t) {
    const auto u = static_cast<std::size_t>(i);
    if (fault_started_at[u] >= 0.0) {
      rep.detection_lag_s.add(t - fault_started_at[u]);
      fault_started_at[u] = -1.0;
    }
  };

  while (resolved < n) {
    // --- 1. kick every in-service replica that is idle but has work ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      // A replica in maintenance normally sits dark — unless it is still
      // overlap-draining, in which case it keeps decoding its running
      // batch while the KV copies out behind it.
      if (!active[u] || (in_maint[u] && !overlap_drain[u]) ||
          !faults.up(i, now)) {
        continue;
      }
      Replica& r = reps[u];
      if (r.mid_step()) continue;
      for (auto& s : r.drop_expired(now)) {
        const auto id = static_cast<std::size_t>(s.request_id);
        MIB_ENSURE(!done[id], "expired copy of a resolved request");
        if (copies[id] > 1) {
          charge_duplicate(s);
          --copies[id];  // the other copy still carries the request
          continue;
        }
        --copies[id];
        admission.count_expired();
        record_terminal(s, RequestStatus::kExpired);
        ++rep.expired;
      }
      if (r.has_work()) r.begin_step(now);
    }
    // Draining replicas deactivate once empty.
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (draining[u] && !reps[u].mid_step() && !reps[u].has_work()) {
        draining[u] = false;
        active[u] = false;
        if (!oracle) {
          monitor.suspend(i);
          next_hb[u] = kInf;
        }
      }
    }
    // An overlap drain completes when the last sequence has cut over: the
    // source is empty, no snapshot copies are pending, and the node can
    // finally go down for its maintenance.
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (!overlap_drain[u]) continue;
      bool pending = false;
      for (const auto& h : handoffs) pending = pending || h.replica == i;
      if (!pending && !reps[u].mid_step() && !reps[u].has_work()) {
        overlap_drain[u] = false;
        reps[u].finish_drain();
      }
    }
    if (resolved >= n) break;

    // --- 2. next event time ---
    double t_next = kInf;
    if (next_arrival < intake.size()) {
      t_next = std::min(t_next, intake[next_arrival].arrival_s);
    }
    for (const auto& r : reps) {
      if (r.mid_step()) t_next = std::min(t_next, r.step_end_s());
    }
    for (const auto& p : retries) t_next = std::min(t_next, p.ready_s);
    for (const auto& p : migrations) t_next = std::min(t_next, p.ready_s);
    for (const auto& h : handoffs) t_next = std::min(t_next, h.at);
    for (const auto& p : router_pending) t_next = std::min(t_next, p.ready_s);
    t_next = std::min(t_next, faults.next_transition_after(now));
    t_next = std::min(t_next, degr.next_transition_after(now));
    t_next = std::min(t_next, warm.next_transition_after(now));
    t_next = std::min(t_next, maint_transition_after(now));
    t_next = std::min(t_next, plane.next_sync_after(now));
    t_next = std::min(t_next, plane.next_router_transition_after(now));
    if (!oracle) {
      for (int i = 0; i < pool; ++i) {
        t_next = std::min(t_next, next_hb[static_cast<std::size_t>(i)]);
      }
      t_next = std::min(t_next, monitor.next_event_after(now));
    }
    if (!hedge_timers.empty()) {
      t_next = std::min(t_next, hedge_timers.top().at);
    }
    if (partitions) {
      t_next = std::min(t_next, plane.next_partition_transition_after(now));
      if (!dup_timers.empty()) t_next = std::min(t_next, dup_timers.top().at);
    }
    if (cfg_.autoscaler.enabled) t_next = std::min(t_next, next_tick);
    MIB_ENSURE(std::isfinite(t_next), "fleet event loop stalled");
    MIB_ENSURE(t_next >= now - 1e-12, "fleet simulation time went backwards");
    const double t_prev = now;
    now = std::max(now, t_next);
    // Charge the elapsed slice to the view-disagreement clock while any
    // two routers held different breaker snapshots.
    plane.accumulate_disagreement(t_prev, now);

    // --- 3a. heartbeats emitted up to now (monitor mode) ---
    if (!oracle) {
      for (int i = 0; i < pool; ++i) {
        const auto u = static_cast<std::size_t>(i);
        while (next_hb[u] <= now) {
          const double emit = next_hb[u];
          // A minority replica's heartbeats cannot cross a full cut: the
          // (majority-side) monitor will suspect it and open its breaker
          // even though it is up and serving its own side. An asymmetric
          // cut with the minority->majority direction open still delivers
          // them — the gray failure where the node looks healthy while
          // its replies are lost.
          if (active[u] && !in_maint[u] && faults.up(i, emit) &&
              (!partitions || plane.heartbeat_crosses(i, emit))) {
            monitor.on_heartbeat(i, emit);
          }
          next_hb[u] = emit + hb_period(i, emit);
        }
      }
    }

    // --- 3b. degradation / warm-up transitions: reprice replicas ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const PerfScale scale = scale_at(i, now);
      if (!(scale == cur_scale[u])) {
        cur_scale[u] = scale;
        reps[u].set_cost_model(degraded_costs_->at(scale));
      }
    }

    // --- 3c. maintenance transitions: drain (migrate or recompute) ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const bool maint_now = in_maint_window(i, now);
      // Layer-wise chunks stripe across the configured parallel links, so
      // a transfer's wire time divides by the stripe width.
      const double stripe_bytes =
          kv_bytes_per_token /
          static_cast<double>(cfg_.migration.stripe_links);
      if (maint_now && !in_maint[u]) {
        in_maint[u] = true;
        if (!oracle) {
          monitor.suspend(i);
          next_hb[u] = kInf;
        }
        if (active[u]) {
          // A severed drain fabric (the source behind a cut with
          // sever_drain_fabric set) cannot ship KV at all: every drain on
          // this replica falls back to evacuate-and-recompute.
          const bool severed = partitions && !plane.drain_reachable(i, now);
          double cursor = now;  // transfers serialize on the striped fabric
          auto frozen_migrate = [&](Sequence s) {
            const auto id = static_cast<std::size_t>(s.request_id);
            const double xfer =
                cfg_.migration.per_sequence_overhead_s +
                migration_link.p2p(static_cast<double>(s.kv_tokens()) *
                                   stripe_bytes);
            cursor += xfer;
            ++rep.migrations;
            rep.migrated_kv_tokens += s.kv_tokens();
            rep.migration_s.add(cursor - now);
            rep.requests[id].migrated = true;
            migrations.push_back(PendingMigration{cursor, s, i});
          };
          auto redispatch = [&](Sequence s) {
            // Nothing resident to move (still queued), or recompute
            // mode: progress is lost, re-dispatch right away — planned
            // drains are front-end initiated, so no backoff and no
            // retry-budget charge.
            if (s.kv_tokens() > 0) ++rep.drain_evacuations;
            s.prefilled = 0;
            s.generated = 0;
            s.first_token_s = -1.0;
            s.prefix_hit = false;
            retries.push_back(PendingRetry{now, s});
          };
          const bool overlap = cfg_.migration.overlap_decode &&
                               cfg_.migration.migrate_kv && !severed &&
                               reps[u].running_count() > 0;
          if (overlap) {
            // Overlap drain: queued work re-enters elsewhere right away;
            // the running batch keeps decoding on the source while its KV
            // snapshots copy out behind it (handoffs fire at each copy's
            // completion and re-ship only the delta decoded meanwhile).
            for (auto& s : reps[u].take_waiting()) {
              MIB_ENSURE(!done[static_cast<std::size_t>(s.request_id)],
                         "drained copy of a resolved request");
              if (s.kv_tokens() > 0) {
                frozen_migrate(std::move(s));  // migrated-in, not decoding
              } else {
                redispatch(std::move(s));
              }
            }
            overlap_drain[u] = true;
            for (const auto& s : reps[u].running()) {
              MIB_ENSURE(!done[static_cast<std::size_t>(s.request_id)],
                         "drained copy of a resolved request");
              cursor += cfg_.migration.per_sequence_overhead_s +
                        migration_link.p2p(
                            static_cast<double>(s.kv_tokens()) * stripe_bytes);
              handoffs.push_back(
                  PendingHandoff{cursor, i, s.request_id, s.kv_tokens(), now});
            }
          } else {
            for (auto& s : reps[u].take_all()) {
              MIB_ENSURE(!done[static_cast<std::size_t>(s.request_id)],
                         "drained copy of a resolved request");
              if (cfg_.migration.migrate_kv && s.kv_tokens() > 0) {
                if (severed) {
                  ++rep.migration_aborts;
                  redispatch(std::move(s));
                } else {
                  frozen_migrate(std::move(s));
                }
              } else {
                redispatch(std::move(s));
              }
            }
          }
        }
      } else if (!maint_now && in_maint[u]) {
        in_maint[u] = false;
        if (overlap_drain[u]) {
          // The reboot cannot wait for the copy any longer: cancel the
          // in-flight snapshots, freeze what is still on the source, and
          // ship it cold from here.
          overlap_drain[u] = false;
          for (auto it = handoffs.begin(); it != handoffs.end();) {
            if (it->replica == i) {
              it = handoffs.erase(it);
            } else {
              ++it;
            }
          }
          double cursor = now;
          const bool severed = partitions && !plane.drain_reachable(i, now);
          for (auto& s : reps[u].take_all()) {
            const auto id = static_cast<std::size_t>(s.request_id);
            MIB_ENSURE(!done[id], "drained copy of a resolved request");
            if (s.kv_tokens() > 0 && !severed) {
              const double xfer =
                  cfg_.migration.per_sequence_overhead_s +
                  migration_link.p2p(static_cast<double>(s.kv_tokens()) *
                                     stripe_bytes);
              cursor += xfer;
              ++rep.migrations;
              rep.migrated_kv_tokens += s.kv_tokens();
              rep.migration_s.add(cursor - now);
              rep.requests[id].migrated = true;
              migrations.push_back(PendingMigration{cursor, s, i});
            } else {
              if (s.kv_tokens() > 0) {
                ++rep.migration_aborts;
                ++rep.drain_evacuations;
              }
              s.prefilled = 0;
              s.generated = 0;
              s.first_token_s = -1.0;
              s.prefix_hit = false;
              retries.push_back(PendingRetry{now, s});
            }
          }
        }
        if (!oracle && active[u]) {
          monitor.resume(i, now);
          next_hb[u] = now + hb_period(i, now);
        }
      }
    }

    // --- 3d. fault transitions ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const bool up_now = faults.up(i, now);
      if (was_up[u] && !up_now && active[u]) {
        if (oracle) {
          // Legacy: the front-end knows instantly, work retries at once.
          stranded[u] = reps[u].evacuate();
          release_failed(i, now);
        } else {
          // Crash: progress is gone, but nobody knows yet. Work strands
          // until the breaker opens or the restart is observed.
          for (auto& s : reps[u].evacuate()) stranded[u].push_back(s);
          if (monitor.state(i) == CircuitState::kClosed) {
            fault_started_at[u] = now;
          } else {
            // The breaker was already open (e.g. a brownout false
            // positive) — the front-end already routes around it.
            release_failed(i, now);
          }
        }
      }
      if (!was_up[u] && up_now && !oracle) {
        // Restart observed: stale connections error out, anything still
        // addressed to the old process retries now even if the breaker
        // never opened (a blip shorter than detection).
        mark_detected(i, now);
        release_failed(i, now);
      }
      was_up[u] = up_now;
    }

    // --- 3e. failure detection: breaker transitions at `now` ---
    if (!oracle) {
      std::vector<bool> up_vec(static_cast<std::size_t>(pool));
      for (int i = 0; i < pool; ++i) {
        up_vec[static_cast<std::size_t>(i)] = physically_up(i, now);
      }
      for (int i : monitor.advance(now, up_vec)) {
        const auto u = static_cast<std::size_t>(i);
        ++rep.circuit_opens;
        if (up_vec[u]) {
          // Slow, not dead: stop routing to it, let its work finish.
          ++rep.false_circuit_opens;
        } else {
          mark_detected(i, now);
          release_failed(i, now);
        }
      }
    }

    // --- 3e'. routers whose sync deadline passed refresh their views ---
    // With partitions configured, views refresh every event (so a minority
    // router freezes exactly the pre-cut live state); sync() itself skips
    // frozen routers.
    if (plane.stale_views() || partitions) {
      plane.sync(now, [&](int i) { return live_routable(i, now); });
    }

    // --- 3e''. partition edges: heal the split brain ---
    if (partitions) {
      const PartitionWindow* cur = plane.partition_at(now);
      if (cur != active_part) {
        if (active_part != nullptr) {
          // The partition healed: resolve the divergence. Stray copies of
          // already-committed requests are cancelled under either policy
          // (their KV freed); still-racing duplicates are fenced off the
          // minority side under kFenceMinority, or left to race under
          // kFirstCommitWins.
          const bool fence =
              cfg_.control.partition.heal == HealPolicy::kFenceMinority;
          for (int i : active_part->minority_replicas) {
            const auto u = static_cast<std::size_t>(i);
            for (int id : reps[u].resident_ids()) {
              const auto v = static_cast<std::size_t>(id);
              const bool stray = done[v] != 0;
              if (!stray && !(fence && copies[v] > 1)) continue;
              Sequence s;
              if (!reps[u].take(id, &s)) continue;
              --copies[v];
              if (stray) {
                count_cancelled(s);  // deferred loser-copy cancel
              } else {
                charge_duplicate(s);
                ++rep.fenced_requests;
                rep.requests[v].fenced = true;
              }
            }
          }
          pending_heals.push_back(now);
          ++rep.partition_flaps;
        }
        active_part = cur;
        if (cur != nullptr && cfg_.control.partition.sever_drain_fabric) {
          // The new cut severs the drain fabric: KV transfers out of a
          // now-isolated source abort mid-stripe and fall back to
          // evacuate-and-recompute — the shipped bytes are wasted and the
          // sequence re-prefills from scratch on the other side.
          auto recompute = [&](Sequence s) {
            ++rep.migration_aborts;
            if (s.kv_tokens() > 0) ++rep.drain_evacuations;
            s.prefilled = 0;
            s.generated = 0;
            s.first_token_s = -1.0;
            s.prefix_hit = false;
            retries.push_back(PendingRetry{now, std::move(s)});
          };
          for (auto it = migrations.begin(); it != migrations.end();) {
            if (it->src >= 0 && !plane.drain_reachable(it->src, now)) {
              recompute(std::move(it->seq));
              it = migrations.erase(it);
            } else {
              ++it;
            }
          }
          for (auto it = handoffs.begin(); it != handoffs.end();) {
            if (!plane.drain_reachable(it->replica, now)) {
              Sequence s;
              if (reps[static_cast<std::size_t>(it->replica)].take(it->id,
                                                                   &s)) {
                recompute(std::move(s));
              }
              it = handoffs.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
    }

    // --- 3f. step completions (first finished copy wins) ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      Replica& r = reps[u];
      if (!r.mid_step() || r.step_end_s() > now) continue;
      const double finish = r.step_end_s();
      for (auto& s : r.complete_step()) {
        const auto id = static_cast<std::size_t>(s.request_id);
        if (done[id]) {
          // Both copies finished in the very same step (possibly on the
          // same replica) — the winner already resolved it; this one is a
          // photo-finish loser, cancelled at the completion boundary.
          MIB_ENSURE(copies[id] > 0, "completed copy of a resolved request");
          --copies[id];
          count_cancelled(s);
          continue;
        }
        if (partitions && s.via_router >= 0 &&
            !plane.reply_reachable(i, s.via_router, now)) {
          // Orphaned decode: the copy finished behind an asymmetric cut
          // and its completion cannot reach the side that dispatched it.
          // The replica's work is gone; the client is still waiting.
          --copies[id];
          ++rep.orphaned_completions;
          rep.lost_completion_s += s.served_s;
          rep.requests[id].orphaned = true;
          if (copies[id] == 0 && !client_timer_pending[id] &&
              !arm_client_timer(s.request_id, now)) {
            // No copy left anywhere and the client's patience budget is
            // spent: the request is lost with its answer on the wire.
            record_terminal(s, RequestStatus::kLost);
            ++rep.lost;
          }
          continue;
        }
        auto& rec = rep.requests[id];
        record_terminal(s, RequestStatus::kCompleted);
        rec.first_token_s = s.first_token_s;
        rec.finish_s = finish;
        rec.replica = i;
        rec.prefix_hit = s.prefix_hit;
        rec.won_by_hedge = s.is_hedge;
        if (s.is_hedge) ++rep.hedges_won;
        cancel_other_copies(s.request_id);
        --copies[id];
        hedge.observe_ttft(rec.ttft());
        ++rep.completed;
        auto& rr = rep.replicas[u];
        ++rr.completed;
        rr.ttft_s.add(rec.ttft());
        rr.itl_s.add(rec.itl());
        rr.e2e_s.add(rec.e2e());
      }
    }

    // --- 3g0. overlap-drain cutovers: snapshot copy done, ship the delta ---
    {
      std::vector<PendingHandoff> due;
      for (auto it = handoffs.begin(); it != handoffs.end();) {
        if (it->at <= now) {
          due.push_back(*it);
          it = handoffs.erase(it);
        } else {
          ++it;
        }
      }
      std::stable_sort(due.begin(), due.end(),
                       [](const PendingHandoff& a, const PendingHandoff& b) {
                         return std::tie(a.at, a.id) < std::tie(b.at, b.id);
                       });
      const double stripe_bytes =
          kv_bytes_per_token /
          static_cast<double>(cfg_.migration.stripe_links);
      for (auto& h : due) {
        const auto u = static_cast<std::size_t>(h.replica);
        Sequence s;
        // The sequence may have finished on the source meanwhile (the best
        // outcome), crashed off it, or been cancelled as a hedge loser.
        if (!reps[u].take(h.id, &s)) continue;
        const auto id = static_cast<std::size_t>(h.id);
        MIB_ENSURE(!done[id], "handed off a resolved request");
        if (s.kv_tokens() == 0) {
          // Preempted back to zero during the copy: nothing to cut over,
          // the snapshot transfer was wasted — recompute elsewhere.
          ++rep.drain_evacuations;
          s.first_token_s = -1.0;
          s.prefix_hit = false;
          retries.push_back(PendingRetry{now, s});
          continue;
        }
        const long long delta =
            std::max<long long>(0, s.kv_tokens() - h.snapshot_kv);
        rep.overlap_decode_tokens += delta;
        const double ready =
            now + migration_link.p2p(static_cast<double>(delta) * stripe_bytes);
        ++rep.migrations;
        rep.migrated_kv_tokens += s.kv_tokens();
        rep.migration_s.add(ready - h.drain_start);
        rep.requests[id].migrated = true;
        migrations.push_back(PendingMigration{ready, s, h.replica});
      }
    }

    // --- 3g. finished KV migrations re-enter service elsewhere ---
    {
      std::vector<PendingMigration> due;
      for (auto it = migrations.begin(); it != migrations.end();) {
        if (it->ready_s <= now) {
          due.push_back(*it);
          it = migrations.erase(it);
        } else {
          ++it;
        }
      }
      std::stable_sort(due.begin(), due.end(),
                       [](const PendingMigration& a, const PendingMigration& b) {
                         return std::tie(a.ready_s, a.seq.request_id) <
                                std::tie(b.ready_s, b.seq.request_id);
                       });
      for (auto& p : due) dispatch(std::move(p.seq), now);
    }

    // --- 3h. fresh arrivals (bounded-queue admission, then routing) ---
    while (next_arrival < intake.size() &&
           intake[next_arrival].arrival_s <= now) {
      Sequence s = intake[next_arrival++];
      const auto id = static_cast<std::size_t>(s.request_id);
      if (cfg_.hedge.enabled && cfg_.hedge.sheddable &&
          queued_total() >= cfg_.admission.queue_capacity) {
        // Queue full: shed waiting hedge copies before rejecting a
        // primary — insurance yields to real work.
        for (int r = 0;
             r < pool && queued_total() >= cfg_.admission.queue_capacity;
             ++r) {
          const auto ru = static_cast<std::size_t>(r);
          for (int hid : reps[ru].waiting_hedges()) {
            // A hedge whose primary already expired or died carries the
            // request alone now — shedding it would leak the request.
            if (copies[static_cast<std::size_t>(hid)] <= 1) continue;
            if (!reps[ru].cancel(hid)) continue;
            --copies[static_cast<std::size_t>(hid)];
            ++rep.hedges_shed;
            if (queued_total() < cfg_.admission.queue_capacity) break;
          }
        }
      }
      if (!admission.try_admit(queued_total())) {
        record_terminal(s, RequestStatus::kRejected);
        ++rep.rejected;
        continue;
      }
      copies[id] = 1;
      const double trigger = hedge.trigger_delay();
      if (std::isfinite(trigger)) {
        hedge_timers.push(HedgeTimer{now + trigger, s.request_id});
      }
      dispatch(std::move(s), now);
    }

    // --- 3i. due retries (already admitted; deterministic order) ---
    {
      std::vector<PendingRetry> due;
      for (auto it = retries.begin(); it != retries.end();) {
        if (it->ready_s <= now) {
          due.push_back(*it);
          it = retries.erase(it);
        } else {
          ++it;
        }
      }
      std::stable_sort(due.begin(), due.end(),
                       [](const PendingRetry& a, const PendingRetry& b) {
                         return std::tie(a.ready_s, a.seq.request_id) <
                                std::tie(b.ready_s, b.seq.request_id);
                       });
      for (auto& p : due) dispatch(std::move(p.seq), now);
    }

    // --- 3i'. requests stranded at a dead router fail over ---
    {
      std::vector<RouterPending> due;
      for (auto it = router_pending.begin(); it != router_pending.end();) {
        if (it->ready_s <= now) {
          due.push_back(*it);
          it = router_pending.erase(it);
        } else {
          ++it;
        }
      }
      std::stable_sort(due.begin(), due.end(),
                       [](const RouterPending& a, const RouterPending& b) {
                         return std::tie(a.ready_s, a.seq.request_id) <
                                std::tie(b.ready_s, b.seq.request_id);
                       });
      for (auto& p : due) {
        int rtr = plane.survivor(now);
        if (rtr >= 0 && partitions && plane.router_fenced(rtr, now)) {
          // The lowest live router has fenced itself off: fail over to a
          // live router that is still admitting, if any.
          rtr = -1;
          for (int r = 0; r < cfg_.control.routers; ++r) {
            if (plane.router_up(r, now) && !plane.router_fenced(r, now)) {
              rtr = r;
              break;
            }
          }
        }
        if (rtr < 0) {
          // The whole front end is dark (or fenced): wait for a router to
          // return or a partition edge to lift the fence.
          double wake = plane.next_router_transition_after(now);
          if (partitions) {
            wake = std::min(wake, plane.next_partition_transition_after(now));
          }
          MIB_ENSURE(std::isfinite(wake),
                     "every router dark with no recovery scheduled");
          router_pending.push_back(RouterPending{wake, std::move(p.seq)});
          continue;
        }
        dispatch_via(rtr, std::move(p.seq), now);
      }
    }

    // --- 3j. hedge triggers: re-issue stragglers to a second replica ---
    while (!hedge_timers.empty() && hedge_timers.top().at <= now) {
      const int id = hedge_timers.top().id;
      hedge_timers.pop();
      const auto u = static_cast<std::size_t>(id);
      if (done[u] || hedge_fired[u]) continue;
      hedge_fired[u] = 1;
      bool started = false;
      for (const auto& r : reps) started = started || r.started(id);
      if (started) continue;  // first token is out, nothing to hedge
      if (cfg_.hedge.max_utilization < 1.0) {
        // Utilization gate: hedging into a saturated fleet adds load
        // exactly when there is no slack to absorb it and makes the tail
        // worse, not better. Gate on the busy fraction of in-service
        // replicas.
        int in_service = 0;
        int busy = 0;
        for (int r = 0; r < pool; ++r) {
          const auto ru = static_cast<std::size_t>(r);
          if (!active[ru] || draining[ru] || in_maint[ru]) continue;
          ++in_service;
          if (reps[ru].mid_step() || reps[ru].has_work()) ++busy;
        }
        const double util =
            in_service > 0 ? static_cast<double>(busy) / in_service : 1.0;
        if (util > cfg_.hedge.max_utilization) {
          ++rep.hedges_suppressed;
          continue;
        }
      }
      if (cfg_.hedge.sheddable &&
          queued_total() >= cfg_.admission.queue_capacity) {
        // A hedge is optional work: it respects admission capacity and is
        // refused outright when the fleet queue is already full.
        ++rep.hedges_shed;
        continue;
      }
      int rtr = plane.survivor(now);
      // Hedges are optional insurance: during a partition they are issued
      // against the healthy (majority) side only.
      if (partitions && plane.partition_at(now) != nullptr) {
        rtr = plane.majority_survivor(now);
      }
      if (rtr < 0) continue;  // whole front end dark: no hedge
      auto up = routable_for(rtr, now);
      // Never double up on a replica already holding a copy.
      up.erase(std::remove_if(up.begin(), up.end(),
                              [&](int r) {
                                return reps[static_cast<std::size_t>(r)]
                                           .find(id) != nullptr;
                              }),
               up.end());
      if (up.empty()) continue;
      Sequence copy = blank[u];
      copy.is_hedge = true;
      const int idx = plane.router(rtr).route(copy, reps, up);
      if (!live_routable(idx, now)) {
        MIB_ENSURE(plane.stale_views(),
                   "dispatch to a replica with an open circuit");
        ++rep.stale_dispatches;
        // The hedge copy died on the wire against a dead node; the
        // original carries the request alone.
        if (!faults.up(idx, now)) continue;
      }
      ++copies[u];
      ++rep.hedges_issued;
      rep.requests[u].hedged = true;
      copy.via_router = rtr;
      reps[static_cast<std::size_t>(idx)].enqueue(copy);
    }

    // --- 3j'. client retries against the majority: double dispatch ---
    // A minority-homed request whose first token has not arrived within
    // the client's patience is re-submitted, and the majority side — which
    // cannot see the minority's copy — admits it again. Both sides now
    // burn capacity on the same request; goodput will count it once.
    while (partitions && !dup_timers.empty() && dup_timers.top().at <= now) {
      const int id = dup_timers.top().id;
      dup_timers.pop();
      const auto u = static_cast<std::size_t>(id);
      client_timer_pending[u] = 0;
      if (done[u]) continue;
      if (copies[u] == 0) {
        // Every copy of this request evaporated — orphaned behind an
        // asymmetric cut with no retry pending. The client's patience
        // expired with nothing in flight: re-send from scratch. This is a
        // fresh dispatch (it re-enters at the home router), not a
        // split-brain duplicate.
        ++rep.client_resends;
        ++copies[u];
        Sequence fresh = blank[u];
        dispatch(std::move(fresh), now);
        continue;
      }
      if (plane.partition_at(now) == nullptr) continue;  // healed in time
      // A copy whose replies cannot cross back to the side that dispatched
      // it is invisible to the client even after its first token.
      bool visible_start = false;
      bool any_unreachable = false;
      for (int r = 0; r < pool; ++r) {
        const auto ru = static_cast<std::size_t>(r);
        const Sequence* c = reps[ru].find(id);
        if (c == nullptr) continue;
        if (c->via_router >= 0 && !plane.reply_reachable(r, c->via_router, now)) {
          any_unreachable = true;
        } else if (reps[ru].started(id)) {
          visible_start = true;
        }
      }
      if (!plane.router_minority(plane.assigned_router(id), now) &&
          !any_unreachable) {
        continue;  // majority-homed and every copy can answer: no retry
      }
      if (visible_start) continue;  // tokens are flowing to the client
      // The retry is real client traffic, but the majority only admits it
      // if its own queues have room.
      long long maj_queued = 0;
      for (int i = 0; i < pool; ++i) {
        if (plane.replica_minority(i, now)) continue;
        maj_queued += reps[static_cast<std::size_t>(i)].queue_depth();
      }
      if (maj_queued >= cfg_.admission.queue_capacity) {
        arm_client_timer(id, now);  // keep waiting, with backoff
        continue;
      }
      const int rtr = plane.majority_survivor(now);
      if (rtr < 0) {
        arm_client_timer(id, now);  // no live majority router to retry at
        continue;
      }
      // At most one un-started duplicate in flight at a time: a later
      // patience expiry re-sends only after the previous duplicate died.
      bool dup_live = false;
      for (int r = 0; r < pool && !dup_live; ++r) {
        const Sequence* c = reps[static_cast<std::size_t>(r)].find(id);
        dup_live = c != nullptr && c->is_partition_dup;
      }
      for (const auto& p : retries) {
        dup_live = dup_live ||
                   (p.seq.request_id == id && p.seq.is_partition_dup);
      }
      if (dup_live) {
        arm_client_timer(id, now);
        continue;
      }
      Sequence copy = blank[u];
      copy.is_partition_dup = true;
      ++copies[u];
      ++rep.double_dispatches;
      rep.requests[u].double_dispatched = true;
      dup_ids.push_back(id);
      dispatch_via(rtr, std::move(copy), now);
      arm_client_timer(id, now);
    }

    // --- 3k. autoscaler tick ---
    while (cfg_.autoscaler.enabled && next_tick <= now) {
      // During a partition each side's autoscaler sees only its own queues
      // and replicas, and can only act on its own side — the decisions can
      // (and do) conflict. `side` < 0 is the unified, no-partition view.
      auto tick_side = [&](int side) {
        auto on_side = [&](int i) {
          return side < 0 ||
                 (plane.replica_minority(i, now) ? side == 1 : side == 0);
        };
        long long queued = 0;
        int n_active = 0;
        bool any_idle = false;
        for (int i = 0; i < pool; ++i) {
          const auto u = static_cast<std::size_t>(i);
          if (!on_side(i)) continue;
          queued += reps[u].queue_depth();
          if (!active[u] || draining[u]) continue;
          ++n_active;
          if (!reps[u].mid_step() && !reps[u].has_work()) any_idle = true;
        }
        const int decision = scaler.decide(queued, n_active, any_idle);
        if (decision > 0) {
          int pick = -1;
          if (cfg_.autoscaler.topology_aware && cfg_.topology.enabled()) {
            // Spread placement: among eligible standbys pick the one whose
            // failure domain holds the fewest active replicas, so one rack
            // or switch failure takes out as little of the fleet as
            // possible (ties break to the lowest index).
            int best = pool + 1;
            for (int i = 0; i < pool; ++i) {
              const auto u = static_cast<std::size_t>(i);
              if (!on_side(i) || active[u] || in_maint[u] ||
                  !faults.up(i, now)) {
                continue;
              }
              int in_group = 0;
              if (!spread_group[u].empty()) {
                for (int j = 0; j < pool; ++j) {
                  const auto v = static_cast<std::size_t>(j);
                  if (active[v] && !draining[v] &&
                      spread_group[v] == spread_group[u]) {
                    ++in_group;
                  }
                }
              }
              if (in_group < best) {
                best = in_group;
                pick = i;
              }
            }
          } else {
            for (int i = 0; i < pool; ++i) {
              const auto u = static_cast<std::size_t>(i);
              // Activation health-checks the standby (a probe, not
              // routing).
              if (on_side(i) && !active[u] && !in_maint[u] &&
                  faults.up(i, now)) {
                pick = i;
                break;
              }
            }
          }
          if (pick >= 0) {
            const auto u = static_cast<std::size_t>(pick);
            active[u] = true;
            if (!oracle) {
              monitor.resume(pick, now);
              next_hb[u] = now + hb_period(pick, now);
            }
            rep.scale_events.push_back(
                ScaleEvent{now, "add", pick, queued, n_active + 1});
          }
        } else if (decision < 0) {
          for (int i = pool - 1; i >= 0; --i) {
            const auto u = static_cast<std::size_t>(i);
            if (on_side(i) && active[u] && !draining[u] &&
                !reps[u].mid_step() && !reps[u].has_work()) {
              draining[u] = true;
              rep.scale_events.push_back(
                  ScaleEvent{now, "drain", i, queued, n_active - 1});
              break;
            }
          }
        }
        return decision;
      };
      if (partitions && plane.partition_at(now) != nullptr) {
        const int d_major = tick_side(0);
        const int d_minor = tick_side(1);
        if (d_major != d_minor) ++rep.autoscaler_conflicts;
      } else {
        tick_side(-1);
      }
      next_tick += cfg_.autoscaler.interval_s;
    }

    // Heal-lag bookkeeping: a heal is fully drained when no request holds
    // more than one live copy any more (fence drains at the heal edge;
    // first-commit-wins drains when the last race resolves).
    if (!pending_heals.empty()) {
      bool racing = false;
      for (int id : dup_ids) {
        const auto u = static_cast<std::size_t>(id);
        if (!done[u] && copies[u] > 1) {
          racing = true;
          break;
        }
      }
      if (!racing) {
        for (double h : pending_heals) {
          rep.partition_heal_lag_s.add(std::max(0.0, now - h));
        }
        pending_heals.clear();
      }
    }

    MIB_ENSURE(total_steps() <= max_steps,
               "fleet exceeded its step bound (livelock?)");
  }

  // A partition window can outlive the traffic: stray duplicate copies
  // still cut off on the minority side are cancelled at end of run (every
  // request is already resolved — these served nobody).
  if (partitions) {
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      for (int id : reps[u].resident_ids()) {
        MIB_ENSURE(done[static_cast<std::size_t>(id)],
                   "unresolved request still resident at end of run");
        Sequence s;
        if (!reps[u].take(id, &s)) continue;
        count_cancelled(s);
        --copies[static_cast<std::size_t>(id)];
      }
    }
  }

  // --- report assembly ---
  rep.makespan_s = now;
  double total_tokens = 0.0;
  for (const auto& rec : rep.requests) {
    if (!rec.completed()) continue;
    rep.ttft_s.add(rec.ttft());
    rep.itl_s.add(rec.itl());
    rep.e2e_s.add(rec.e2e());
    total_tokens += rec.input_tokens + rec.output_tokens;
  }
  rep.throughput_tok_s = now > 0.0 ? total_tokens / now : 0.0;
  rep.slo = summarize_slo(rep.requests, cfg_.slo, now);
  rep.circuit_events = monitor.events();
  // Correlated-failure signature: circuit opens clustered within one
  // heartbeat interval of each other.
  const auto bursts = detect_suspicion_bursts(
      rep.circuit_events, cfg_.health.heartbeat_interval_s);
  rep.suspicion_bursts = static_cast<int>(bursts.size());
  for (const auto& b : bursts) {
    rep.largest_suspicion_burst = std::max(rep.largest_suspicion_burst, b.size);
  }
  rep.warmup_recoveries = warmup_recoveries_;
  rep.view_disagreement_s = plane.disagreement_s();
  int peak = 0;
  for (int i = 0; i < pool; ++i) {
    const auto u = static_cast<std::size_t>(i);
    auto& rr = rep.replicas[u];
    rr.steps = reps[u].steps();
    rr.preemptions = reps[u].preemptions();
    rr.busy_s = reps[u].busy_s();
    rr.utilization = now > 0.0 ? rr.busy_s / now : 0.0;
    rr.prefix_lookups = reps[u].prefix_lookups();
    rr.prefix_hits = reps[u].prefix_hits();
    rep.prefix_lookups += rr.prefix_lookups;
    rep.prefix_hits += rr.prefix_hits;
    if (rr.steps > 0) ++peak;
  }
  rep.replicas_used = peak;

  // Terminal invariants: every request in exactly one bucket, no copy of
  // any request (and no KV) left anywhere in the system.
  MIB_ENSURE(rep.completed + rep.rejected + rep.expired + rep.lost ==
                 rep.submitted,
             "request conservation violated: " << rep.completed << "+"
                                               << rep.rejected << "+"
                                               << rep.expired << "+"
                                               << rep.lost
                                               << " != " << rep.submitted);
  for (int i = 0; i < pool; ++i) {
    const auto u = static_cast<std::size_t>(i);
    MIB_ENSURE(reps[u].queue_depth() == 0 && reps[u].running_count() == 0 &&
                   reps[u].kv_tokens_in_use() == 0,
               "replica " << i << " leaked work or KV past the run");
    MIB_ENSURE(stranded[u].empty(),
               "stranded work leaked on replica " << i);
  }
  MIB_ENSURE(retries.empty(), "retry queue leaked past the run");
  MIB_ENSURE(migrations.empty(), "migration queue leaked past the run");
  MIB_ENSURE(router_pending.empty(),
             "router fail-over queue leaked past the run");
  return rep;
}

}  // namespace mib::fleet
