#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "common/error.h"
#include "common/rng.h"

namespace mib::fleet {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<FleetRequest> as_fleet_trace(
    const std::vector<engine::Request>& trace) {
  std::vector<FleetRequest> out;
  out.reserve(trace.size());
  for (const auto& r : trace) out.push_back(FleetRequest{r, 0, 0});
  return out;
}

std::vector<FleetRequest> as_fleet_trace(
    const std::vector<workload::Turn>& turns) {
  std::vector<const workload::Turn*> order;
  order.reserve(turns.size());
  for (const auto& t : turns) order.push_back(&t);
  std::stable_sort(order.begin(), order.end(),
                   [](const workload::Turn* a, const workload::Turn* b) {
                     return std::tie(a->turn, a->conversation) <
                            std::tie(b->turn, b->conversation);
                   });
  std::vector<FleetRequest> out;
  out.reserve(turns.size());
  for (const auto* t : order) {
    FleetRequest fr;
    fr.request = t->request;
    // Conversation identity: a stateless splitmix64 hash of the
    // conversation id (forced nonzero; 0 means "no prefix").
    std::uint64_t state = static_cast<std::uint64_t>(t->conversation) +
                          0x9E3779B97F4A7C15ull;
    fr.prefix_hash = splitmix64(state) | 1ull;
    fr.prefix_tokens = t->shared_prefix_tokens;
    out.push_back(fr);
  }
  return out;
}

void stamp_arrivals(const workload::ArrivalConfig& cfg,
                    std::vector<FleetRequest>& trace) {
  MIB_ENSURE(!trace.empty(), "cannot stamp an empty trace");
  const auto times =
      workload::generate_arrivals(cfg, static_cast<int>(trace.size()));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].request.arrival_s = times[i];
  }
}

void FleetConfig::validate() const {
  engine.validate();
  replica.validate();
  MIB_ENSURE(n_replicas >= 1, "fleet needs at least one replica");
  admission.validate();
  retry.validate();
  for (const auto& w : faults) w.validate();
  if (autoscaler.enabled) {
    autoscaler.validate();
    MIB_ENSURE(n_replicas >= autoscaler.min_replicas &&
                   n_replicas <= autoscaler.max_replicas,
               "initial replica count outside autoscaler bounds");
  }
  slo.validate();
  const int pool = autoscaler.enabled
                       ? std::max(n_replicas, autoscaler.max_replicas)
                       : n_replicas;
  for (const auto& w : faults) {
    MIB_ENSURE(w.replica < pool,
               "fault window names replica " << w.replica
                                             << " outside the pool of "
                                             << pool);
  }
}

FleetSimulator::FleetSimulator(FleetConfig cfg)
    : cfg_(std::move(cfg)),
      cost_(cfg_.engine.model, cfg_.engine.cluster, cfg_.engine.plan,
            cfg_.engine.cost),
      mem_(cfg_.engine.model, cfg_.engine.plan, cfg_.engine.cost.weight_dtype,
           cfg_.engine.cost.kv_dtype, cfg_.engine.cost.act_dtype) {
  cfg_.validate();
  const double budget = cfg_.engine.cluster.device().usable_mem() -
                        mem_.weight_bytes_per_device() -
                        mem_.activation_bytes(cfg_.replica.prefill_tokens_per_step);
  MIB_ENSURE(budget > 0, cfg_.engine.model.name
                             << ": weights leave no room for KV cache");
  kv_capacity_tokens_ =
      static_cast<long long>(budget / mem_.kv_bytes_per_token_per_device());
  MIB_ENSURE(kv_capacity_tokens_ >= 1, "KV capacity below one token");
}

int FleetSimulator::pool_size() const {
  return cfg_.autoscaler.enabled
             ? std::max(cfg_.n_replicas, cfg_.autoscaler.max_replicas)
             : cfg_.n_replicas;
}

FleetReport FleetSimulator::run(const std::vector<FleetRequest>& trace) const {
  MIB_ENSURE(!trace.empty(), "empty fleet trace");
  const auto n = trace.size();

  // --- intake: validate, fold vision tokens, sort by arrival ---
  std::vector<Sequence> intake;
  intake.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fr = trace[i];
    fr.request.validate();
    MIB_ENSURE(fr.prefix_tokens >= 0, "negative prefix length");
    Sequence s;
    s.request_id = static_cast<int>(i);
    s.arrival_s = fr.request.arrival_s;
    s.input_tokens = cost_.effective_prompt_tokens(fr.request.input_tokens,
                                                   fr.request.n_images);
    s.output_tokens = fr.request.output_tokens;
    s.prefix_hash = fr.prefix_hash;
    s.prefix_tokens = std::min(fr.prefix_tokens, s.input_tokens - 1);
    if (cfg_.admission.deadline_s > 0.0) {
      s.deadline_s = s.arrival_s + cfg_.admission.deadline_s;
    }
    MIB_ENSURE(s.input_tokens + s.output_tokens <= kv_capacity_tokens_,
               "request " << i << " exceeds replica KV capacity even alone");
    intake.push_back(s);
  }
  std::stable_sort(intake.begin(), intake.end(),
                   [](const Sequence& a, const Sequence& b) {
                     return a.arrival_s < b.arrival_s;
                   });

  // --- fleet state ---
  const int pool = pool_size();
  std::vector<Replica> reps;
  reps.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    reps.emplace_back(&cost_, kv_capacity_tokens_, cfg_.replica);
  }
  std::vector<bool> active(static_cast<std::size_t>(pool), false);
  std::vector<bool> draining(static_cast<std::size_t>(pool), false);
  std::vector<bool> was_up(static_cast<std::size_t>(pool), true);
  for (int i = 0; i < cfg_.n_replicas; ++i) active[static_cast<std::size_t>(i)] = true;

  const FaultSchedule faults(cfg_.faults);
  Router router(cfg_.policy, cfg_.seed ^ 0xF1EE7ull);
  AdmissionController admission(cfg_.admission);
  const Autoscaler scaler(cfg_.autoscaler);

  FleetReport rep;
  rep.submitted = static_cast<long long>(n);
  rep.requests.resize(n);
  rep.replicas.resize(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) {
    rep.replicas[static_cast<std::size_t>(i)].replica = i;
  }

  struct PendingRetry {
    double ready_s = 0.0;
    Sequence seq;
  };
  std::vector<PendingRetry> retries;

  std::size_t next_arrival = 0;
  std::size_t resolved = 0;
  double now = 0.0;
  double next_tick = cfg_.autoscaler.enabled ? cfg_.autoscaler.interval_s : kInf;

  // Runaway guard, scaled like the single-replica simulator plus the retry
  // budget (every retry can redo a request's full work).
  long long max_steps = 0;
  for (const auto& s : intake) {
    max_steps += s.input_tokens + s.output_tokens + 4;
  }
  max_steps = std::max<long long>(max_steps, 1024) * 4 *
              (1 + cfg_.retry.max_retries);

  auto total_steps = [&] {
    long long t = 0;
    for (const auto& r : reps) t += r.steps();
    return t;
  };
  auto routable_at = [&](double t) {
    std::vector<int> up;
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (active[u] && !draining[u] && faults.up(i, t)) up.push_back(i);
    }
    return up;
  };
  auto queued_total = [&] {
    long long q = 0;
    for (const auto& r : reps) q += r.queue_depth();
    return q;
  };
  auto record_terminal = [&](const Sequence& s, RequestStatus status) {
    auto& rec = rep.requests[static_cast<std::size_t>(s.request_id)];
    rec.status = status;
    rec.arrival_s = s.arrival_s;
    rec.input_tokens = s.input_tokens;
    rec.output_tokens = s.output_tokens;
    rec.retries = s.retries;
    rec.had_prefix = s.prefix_hash != 0;
    ++resolved;
  };
  auto dispatch = [&](Sequence seq, double t) {
    const auto up = routable_at(t);
    if (up.empty()) {
      // Whole fleet dark: park until the next fault transition revives
      // someone (validated finite — fault windows always end).
      const double wake = faults.next_transition_after(t);
      MIB_ENSURE(std::isfinite(wake),
                 "no replica in service and none scheduled to recover");
      retries.push_back(PendingRetry{wake, seq});
      return;
    }
    const int idx = router.route(seq, reps, up);
    reps[static_cast<std::size_t>(idx)].enqueue(seq);
  };

  while (resolved < n) {
    // --- 1. kick every in-service replica that is idle but has work ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (!active[u] || !faults.up(i, now)) continue;
      Replica& r = reps[u];
      if (r.mid_step()) continue;
      for (auto& s : r.drop_expired(now)) {
        admission.count_expired();
        record_terminal(s, RequestStatus::kExpired);
        ++rep.expired;
      }
      if (r.has_work()) r.begin_step(now);
    }
    // Draining replicas deactivate once empty.
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (draining[u] && !reps[u].mid_step() && !reps[u].has_work()) {
        draining[u] = false;
        active[u] = false;
      }
    }
    if (resolved >= n) break;

    // --- 2. next event time ---
    double t_next = kInf;
    if (next_arrival < intake.size()) {
      t_next = std::min(t_next, intake[next_arrival].arrival_s);
    }
    for (const auto& r : reps) {
      if (r.mid_step()) t_next = std::min(t_next, r.step_end_s());
    }
    for (const auto& p : retries) t_next = std::min(t_next, p.ready_s);
    t_next = std::min(t_next, faults.next_transition_after(now));
    if (cfg_.autoscaler.enabled) t_next = std::min(t_next, next_tick);
    MIB_ENSURE(std::isfinite(t_next), "fleet event loop stalled");
    now = std::max(now, t_next);

    // --- 3a. fault transitions: evacuate newly-down replicas ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const bool up_now = faults.up(i, now);
      if (was_up[u] && !up_now && active[u]) {
        for (auto& s : reps[u].evacuate()) {
          if (s.retries >= cfg_.retry.max_retries) {
            record_terminal(s, RequestStatus::kLost);
            ++rep.lost;
            continue;
          }
          ++s.retries;
          ++rep.retries;
          retries.push_back(
              PendingRetry{now + cfg_.retry.delay(s.retries), s});
        }
      }
      was_up[u] = up_now;
    }

    // --- 3b. step completions ---
    for (int i = 0; i < pool; ++i) {
      const auto u = static_cast<std::size_t>(i);
      Replica& r = reps[u];
      if (!r.mid_step() || r.step_end_s() > now) continue;
      const double finish = r.step_end_s();
      for (auto& s : r.complete_step()) {
        auto& rec = rep.requests[static_cast<std::size_t>(s.request_id)];
        record_terminal(s, RequestStatus::kCompleted);
        rec.first_token_s = s.first_token_s;
        rec.finish_s = finish;
        rec.replica = i;
        rec.prefix_hit = s.prefix_hit;
        ++rep.completed;
        auto& rr = rep.replicas[u];
        ++rr.completed;
        rr.ttft_s.add(rec.ttft());
        rr.itl_s.add(rec.itl());
        rr.e2e_s.add(rec.e2e());
      }
    }

    // --- 3c. fresh arrivals (bounded-queue admission, then routing) ---
    while (next_arrival < intake.size() &&
           intake[next_arrival].arrival_s <= now) {
      Sequence s = intake[next_arrival++];
      if (!admission.try_admit(queued_total())) {
        record_terminal(s, RequestStatus::kRejected);
        ++rep.rejected;
        continue;
      }
      dispatch(std::move(s), now);
    }

    // --- 3d. due retries (already admitted; deterministic order) ---
    {
      std::vector<PendingRetry> due;
      for (auto it = retries.begin(); it != retries.end();) {
        if (it->ready_s <= now) {
          due.push_back(*it);
          it = retries.erase(it);
        } else {
          ++it;
        }
      }
      std::stable_sort(due.begin(), due.end(),
                       [](const PendingRetry& a, const PendingRetry& b) {
                         return std::tie(a.ready_s, a.seq.request_id) <
                                std::tie(b.ready_s, b.seq.request_id);
                       });
      for (auto& p : due) dispatch(std::move(p.seq), now);
    }

    // --- 3e. autoscaler tick ---
    while (cfg_.autoscaler.enabled && next_tick <= now) {
      const long long queued = queued_total();
      int n_active = 0;
      bool any_idle = false;
      for (int i = 0; i < pool; ++i) {
        const auto u = static_cast<std::size_t>(i);
        if (!active[u] || draining[u]) continue;
        ++n_active;
        if (!reps[u].mid_step() && !reps[u].has_work()) any_idle = true;
      }
      const int decision = scaler.decide(queued, n_active, any_idle);
      if (decision > 0) {
        for (int i = 0; i < pool; ++i) {
          const auto u = static_cast<std::size_t>(i);
          if (!active[u] && faults.up(i, now)) {
            active[u] = true;
            rep.scale_events.push_back(
                ScaleEvent{now, "add", i, queued, n_active + 1});
            break;
          }
        }
      } else if (decision < 0) {
        for (int i = pool - 1; i >= 0; --i) {
          const auto u = static_cast<std::size_t>(i);
          if (active[u] && !draining[u] && !reps[u].mid_step() &&
              !reps[u].has_work()) {
            draining[u] = true;
            rep.scale_events.push_back(
                ScaleEvent{now, "drain", i, queued, n_active - 1});
            break;
          }
        }
      }
      next_tick += cfg_.autoscaler.interval_s;
    }

    MIB_ENSURE(total_steps() <= max_steps,
               "fleet exceeded its step bound (livelock?)");
  }

  // --- report assembly ---
  rep.makespan_s = now;
  double total_tokens = 0.0;
  for (const auto& rec : rep.requests) {
    if (!rec.completed()) continue;
    rep.ttft_s.add(rec.ttft());
    rep.itl_s.add(rec.itl());
    rep.e2e_s.add(rec.e2e());
    total_tokens += rec.input_tokens + rec.output_tokens;
  }
  rep.throughput_tok_s = now > 0.0 ? total_tokens / now : 0.0;
  rep.slo = summarize_slo(rep.requests, cfg_.slo, now);
  int peak = 0;
  for (int i = 0; i < pool; ++i) {
    const auto u = static_cast<std::size_t>(i);
    auto& rr = rep.replicas[u];
    rr.steps = reps[u].steps();
    rr.preemptions = reps[u].preemptions();
    rr.busy_s = reps[u].busy_s();
    rr.utilization = now > 0.0 ? rr.busy_s / now : 0.0;
    rr.prefix_lookups = reps[u].prefix_lookups();
    rr.prefix_hits = reps[u].prefix_hits();
    rep.prefix_lookups += rr.prefix_lookups;
    rep.prefix_hits += rr.prefix_hits;
    if (rr.steps > 0) ++peak;
  }
  rep.replicas_used = peak;

  MIB_ENSURE(rep.completed + rep.rejected + rep.expired + rep.lost ==
                 rep.submitted,
             "request conservation violated: " << rep.completed << "+"
                                               << rep.rejected << "+"
                                               << rep.expired << "+"
                                               << rep.lost
                                               << " != " << rep.submitted);
  return rep;
}

}  // namespace mib::fleet
