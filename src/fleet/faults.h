// Replica fault model: scheduled failure/recovery windows plus the retry
// policy the front-end applies when a replica dies with work on it.
//
// A fault window takes one replica out of service for [start_s, end_s):
// while down it accepts no routing, and everything queued or running on it
// at failure time is evacuated — progress lost (KV gone) — and re-submitted
// to the router after an exponential backoff. Requests exceeding the retry
// budget are reported lost (the fleet's request-conservation invariant
// still accounts for them).
#pragma once

#include <vector>

#include "common/error.h"

namespace mib::fleet {

/// One replica outage: down for [start_s, end_s).
struct FaultWindow {
  int replica = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(replica >= 0, "fault window names a negative replica");
    MIB_ENSURE(start_s >= 0.0, "fault window starts before t=0");
    MIB_ENSURE(end_s > start_s, "fault window must have positive duration");
  }
};

/// Immutable outage schedule with point-in-time and next-transition queries.
class FaultSchedule {
 public:
  explicit FaultSchedule(std::vector<FaultWindow> windows);

  /// Whether `replica` is in service at time t.
  bool up(int replica, double t) const;

  /// Earliest window edge (start or end) strictly after t, or +infinity.
  double next_transition_after(double t) const;

  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::vector<FaultWindow> windows_;
};

/// Exponential-backoff retry for requests evacuated from a failed replica.
struct RetryPolicy {
  double backoff_s = 0.05;   ///< delay before the first re-route
  double multiplier = 2.0;   ///< backoff growth per subsequent retry
  int max_retries = 8;       ///< beyond this the request is reported lost

  void validate() const {
    MIB_ENSURE(backoff_s > 0.0, "retry backoff must be > 0");
    MIB_ENSURE(multiplier >= 1.0, "retry multiplier must be >= 1");
    MIB_ENSURE(max_retries >= 0, "negative retry budget");
  }

  /// Delay applied before retry number `attempt` (1-based).
  double delay(int attempt) const;
};

}  // namespace mib::fleet
