// Replica fault model: scheduled failure/recovery windows plus the retry
// policy the front-end applies when a replica dies with work on it.
//
// A fault window takes one replica out of service for [start_s, end_s):
// while down it accepts no routing, and everything queued or running on it
// at failure time is evacuated — progress lost (KV gone) — and re-submitted
// to the router after an exponential backoff. Requests exceeding the retry
// budget are reported lost (the fleet's request-conservation invariant
// still accounts for them).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace mib::fleet {

/// One replica outage: down for [start_s, end_s).
struct FaultWindow {
  int replica = 0;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(replica >= 0, "fault window names a negative replica");
    MIB_ENSURE(start_s >= 0.0, "fault window starts before t=0");
    MIB_ENSURE(end_s > start_s, "fault window must have positive duration");
  }
};

/// Throws when two windows for the same replica overlap or duplicate each
/// other (such schedules double-count up/down transitions and make the
/// evacuation accounting ambiguous). Shared by fault, degradation and
/// maintenance validation.
void ensure_disjoint_windows(const std::vector<FaultWindow>& windows);

/// Immutable outage schedule with point-in-time and next-transition queries.
class FaultSchedule {
 public:
  explicit FaultSchedule(std::vector<FaultWindow> windows);

  /// Whether `replica` is in service at time t.
  bool up(int replica, double t) const;

  /// Earliest window edge (start or end) strictly after t, or +infinity.
  double next_transition_after(double t) const;

  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::vector<FaultWindow> windows_;
};

/// Stateless uniform draw in [0, 1) from a hash key: one splitmix64 step,
/// the same construction the conversation hash uses. Shared by the
/// server-side RetryPolicy jitter and the partition client-backoff jitter
/// so every jittered schedule in the fleet is reproducible from (seed,
/// request id, attempt) alone.
double jitter_uniform(std::uint64_t key);

/// Exponential-backoff retry for requests evacuated from a failed replica.
struct RetryPolicy {
  double backoff_s = 0.05;   ///< delay before the first re-route
  double multiplier = 2.0;   ///< backoff growth per subsequent retry
  int max_retries = 8;       ///< beyond this the request is reported lost
  /// Jitter fraction in [0, 1]: the delay is drawn uniformly from
  /// [(1 - jitter) * d, d] where d is the exponential backoff. 0 keeps
  /// the deterministic schedule; 1 is AWS-style full jitter. Without it a
  /// mass evacuation retries in a synchronized thundering herd that lands
  /// on the survivors as one burst.
  double jitter = 0.0;

  void validate() const {
    MIB_ENSURE(backoff_s > 0.0, "retry backoff must be > 0");
    MIB_ENSURE(multiplier >= 1.0, "retry multiplier must be >= 1");
    MIB_ENSURE(max_retries >= 0, "negative retry budget");
    MIB_ENSURE(jitter >= 0.0 && jitter <= 1.0,
               "retry jitter must lie in [0, 1]");
  }

  /// Delay applied before retry number `attempt` (1-based). `jitter_key`
  /// seeds the stateless jitter draw (hash of run seed, request id and
  /// attempt) so runs stay reproducible; it is ignored when jitter == 0.
  double delay(int attempt, std::uint64_t jitter_key = 0) const;
};

}  // namespace mib::fleet
