// Failure-domain topology: correlated faults through the physical tree.
//
// Datacenter failures are not independent per replica — a rack PDU trip, an
// NVLink-switch fault or a zone-wide network partition takes out every
// replica behind it at once. The topology is a tree of named domains
// (node -> rack -> switch -> zone, or any shape); each replica attaches to
// a leaf domain. A DomainFault or DomainDegradation names *any* domain and
// applies to every replica at or below it, so one rack-level event opens a
// simultaneous burst of suspicions in the phi-accrual HealthMonitor instead
// of three unrelated ones. Domain events expand into the same per-replica
// FaultWindow / DegradationWindow schedule the simulator already prices;
// fault windows merge by interval union (a node fault inside a rack fault
// is one outage, not two), degradations must not overlap (two simultaneous
// throttles have no well-defined composition — warm-up is the one sanctioned
// exception, composed multiplicatively in the fleet loop).
//
// Post-recovery warm-up: a replica returning from a crash or a maintenance
// reboot is not instantly at steady state — JIT kernels recompile, the
// allocator and prefix cache are cold. WarmupConfig models this as a short
// self-clearing degradation staircase after every recovery edge: flops and
// memory bandwidth start at initial_scale and ramp linearly back to 1.0
// over duration_s in ramp_steps steps, priced through the same
// DegradedCostPool as scheduled brownouts.
#pragma once

#include <string>
#include <vector>

#include "common/error.h"
#include "fleet/degradation.h"
#include "fleet/faults.h"
#include "fleet/migration.h"

namespace mib::fleet {

/// One named domain in the failure tree. An empty parent means the domain
/// hangs off the (implicit) root.
struct DomainSpec {
  std::string name;
  std::string parent;
};

struct TopologyConfig {
  std::vector<DomainSpec> domains;
  /// Pool slot -> domain the replica attaches to (usually a leaf node
  /// domain). Shorter than the pool or holding "" means "own isolated
  /// node": the replica shares no failure domain with anyone.
  std::vector<std::string> replica_domain;

  bool enabled() const {
    return !domains.empty() || !replica_domain.empty();
  }
  void validate(int pool) const;
};

/// Correlated outage: every replica under `domain` is down [start_s, end_s).
struct DomainFault {
  std::string domain;
  double start_s = 0.0;
  double end_s = 0.0;

  void validate() const {
    MIB_ENSURE(!domain.empty(), "domain fault names no domain");
    MIB_ENSURE(start_s >= 0.0, "domain fault starts before t=0");
    MIB_ENSURE(end_s > start_s, "domain fault must have positive duration");
  }
};

/// Correlated brownout: every replica under `domain` runs at `scale` (a
/// contended ToR switch degrades the whole rack's link bandwidth at once).
struct DomainDegradation {
  std::string domain;
  double start_s = 0.0;
  double end_s = 0.0;
  PerfScale scale;

  void validate() const {
    MIB_ENSURE(!domain.empty(), "domain degradation names no domain");
    DegradationWindow probe{0, start_s, end_s, scale};
    probe.validate();
  }
};

/// Immutable view of the domain tree with replica attachment resolved.
class Topology {
 public:
  Topology(const TopologyConfig& cfg, int pool);

  bool has_domain(const std::string& name) const;
  /// Replicas attached at or below `domain` (ascending). Throws on an
  /// unknown domain name.
  std::vector<int> replicas_under(const std::string& domain) const;
  /// The domain `replica` attaches to, or "" for an isolated node.
  const std::string& domain_of(int replica) const;
  /// The failure domain a placement decision should spread over: the
  /// parent of the replica's attachment domain (the rack above the node),
  /// or the attachment itself when it hangs off the root. "" for an
  /// isolated replica — it shares a blast radius with nobody.
  const std::string& spread_group_of(int replica) const;

 private:
  int index_of(const std::string& name) const;  ///< -1 when absent

  std::vector<DomainSpec> domains_;
  std::vector<int> parent_;          ///< domain index -> parent index or -1
  std::vector<int> attachment_;      ///< replica -> domain index or -1
  std::vector<std::string> attachment_name_;
  std::vector<std::string> spread_group_;  ///< replica -> placement group
};

/// Expand domain faults over the topology and merge them with the explicit
/// per-replica schedule by interval union, so the result is disjoint per
/// replica (a node outage inside its rack's outage is one window).
std::vector<FaultWindow> expand_domain_faults(
    const Topology& topo, const std::vector<DomainFault>& events,
    std::vector<FaultWindow> base);

/// Expand domain degradations and append them to the per-replica schedule.
/// Throws when any two resulting windows for one replica overlap.
std::vector<DegradationWindow> expand_domain_degradations(
    const Topology& topo, const std::vector<DomainDegradation>& events,
    std::vector<DegradationWindow> base);

/// Post-recovery warm-up: cold caches and JIT recompilation modeled as a
/// self-clearing degradation staircase after every fault / maintenance
/// recovery edge.
struct WarmupConfig {
  bool enabled = false;
  double duration_s = 0.3;     ///< ramp length after a recovery edge
  double initial_scale = 0.5;  ///< flops/mem_bw fraction right at recovery
  int ramp_steps = 4;          ///< staircase resolution of the linear ramp
  /// Down-time-dependent ramps: with downtime_ref_s > 0 an outage of
  /// length d ramps for duration_s * min(1, d / downtime_ref_s) starting
  /// at 1 - (1 - initial_scale) * min(1, d / downtime_ref_s). A short
  /// blip barely cools the caches, so it barely ramps; outages at or
  /// beyond the reference pay the full configured staircase. 0 = every
  /// recovery pays the full ramp (PR 3, bitwise).
  double downtime_ref_s = 0.0;

  void validate() const {
    MIB_ENSURE(duration_s > 0.0, "warm-up duration must be > 0");
    MIB_ENSURE(initial_scale > 0.0 && initial_scale <= 1.0,
               "warm-up initial scale must lie in (0, 1]");
    MIB_ENSURE(ramp_steps >= 1, "warm-up needs at least one ramp step");
    MIB_ENSURE(downtime_ref_s >= 0.0, "negative warm-up down-time reference");
  }
};

struct WarmupPlan {
  std::vector<DegradationWindow> windows;
  int recoveries = 0;  ///< recovery edges that begin a warm-up ramp
};

/// Build the warm-up staircases for every recovery edge in the (already
/// expanded) fault schedule and the maintenance schedule. A staircase is
/// clipped at the replica's next down edge, so warm-up windows never
/// overlap each other; overlap with *scheduled* degradations is allowed
/// and composed multiplicatively by the fleet loop.
WarmupPlan plan_warmup(const WarmupConfig& cfg,
                       const std::vector<FaultWindow>& faults,
                       const std::vector<MaintenanceWindow>& maintenance);

}  // namespace mib::fleet
