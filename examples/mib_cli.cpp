// mib_cli — run any scenario from the command line.
//
//   mib_cli --list
//   mib_cli --model OLMoE-1B-7B --batch 16 --in 512 --out 512
//   mib_cli --model Mixtral-8x7B --devices 4 --dtype fp8 --plan tp
//   mib_cli --model Qwen3-30B-A3B --devices 2 --plan pp --csv
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/scenario.h"
#include "engine/scheduler.h"
#include "models/params.h"
#include "workload/generator.h"

namespace {

using namespace mib;

void usage() {
  std::cout <<
      "mib_cli — MoE-Inference-Bench scenario runner\n"
      "  --list                 list zoo models and exit\n"
      "  --model NAME           model (default OLMoE-1B-7B)\n"
      "  --device NAME          h100 | a100 | cs3 (default h100)\n"
      "  --devices N            device count (default 1)\n"
      "  --plan KIND            tp | tp-ep | pp | pp-ep (default tp)\n"
      "  --dtype NAME           fp16 | bf16 | fp8 | int8 | int4\n"
      "  --batch N --in N --out N   workload shape\n"
      "  --images N             images per request (VLMs)\n"
      "  --no-fused-moe         disable the fused MoE kernel model\n"
      "  --csv                  emit CSV instead of a table\n"
      "serve mode (continuous-batching trace simulation):\n"
      "  --serve                serve a sampled trace instead of one batch\n"
      "  --requests N           trace size (default 64)\n"
      "  --qps X                Poisson arrival rate (default all-at-once)\n"
      "  --sjf                  shortest-job-first admission\n";
}

int require_int(const std::string& v, const std::string& flag) {
  try {
    const int x = std::stoi(v);
    MIB_ENSURE(x >= 0, flag << " must be non-negative");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(flag + " expects an integer, got '" + v + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::Scenario s;
  s.batch = 16;
  s.input_tokens = s.output_tokens = 512;
  std::string plan_kind = "tp";
  bool csv = false;
  bool serve = false;
  int n_requests = 64;
  double qps = 0.0;
  bool sjf = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        MIB_ENSURE(i + 1 < argc, a << " expects a value");
        return argv[++i];
      };
      if (a == "--help" || a == "-h") {
        usage();
        return 0;
      } else if (a == "--list") {
        Table t("model zoo");
        t.set_headers({"name", "total", "active", "experts", "top-k"});
        for (const auto& m : models::all_models()) {
          t.new_row()
              .cell(m.name)
              .cell(format_param_count(models::total_params(m)))
              .cell(format_param_count(models::active_params(m)))
              .cell(m.n_experts)
              .cell(m.top_k);
        }
        t.print(std::cout);
        return 0;
      } else if (a == "--model") {
        s.model = next();
      } else if (a == "--device") {
        s.device = next();
      } else if (a == "--devices") {
        s.n_devices = require_int(next(), a);
      } else if (a == "--plan") {
        plan_kind = to_lower(next());
      } else if (a == "--dtype") {
        s.weight_dtype = dtype_from_name(to_lower(next()));
      } else if (a == "--batch") {
        s.batch = require_int(next(), a);
      } else if (a == "--in") {
        s.input_tokens = require_int(next(), a);
      } else if (a == "--out") {
        s.output_tokens = require_int(next(), a);
      } else if (a == "--images") {
        s.images_per_request = require_int(next(), a);
      } else if (a == "--no-fused-moe") {
        s.fused_moe = false;
      } else if (a == "--csv") {
        csv = true;
      } else if (a == "--serve") {
        serve = true;
      } else if (a == "--requests") {
        n_requests = require_int(next(), a);
      } else if (a == "--qps") {
        qps = std::stod(next());
      } else if (a == "--sjf") {
        sjf = true;
      } else {
        usage();
        throw ConfigError("unknown flag: " + a);
      }
    }

    if (plan_kind == "tp") {
      s.plan = parallel::tp_plan(s.n_devices);
    } else if (plan_kind == "tp-ep") {
      s.plan = parallel::tp_ep_plan(s.n_devices);
    } else if (plan_kind == "pp") {
      s.plan = parallel::pp_plan(s.n_devices);
    } else if (plan_kind == "pp-ep") {
      s.plan = parallel::pp_ep_plan(s.n_devices);
    } else {
      throw ConfigError("unknown plan kind: " + plan_kind);
    }

    if (serve) {
      engine::SchedulerConfig sc;
      sc.arrival_rate_qps = qps;
      sc.policy = sjf ? engine::QueuePolicy::kShortestFirst
                      : engine::QueuePolicy::kFcfs;
      workload::TraceConfig tc;
      tc.n_requests = n_requests;
      tc.input = {32, std::max(32, s.input_tokens), 1.2};
      tc.output = {32, std::max(32, s.output_tokens), 1.2};
      const engine::ServingSimulator sim(s.engine_config(), sc);
      const auto rep = sim.run(workload::generate_trace(tc));
      Table t(s.model + " serve: " + std::to_string(n_requests) +
              " requests, " + (qps > 0 ? format_fixed(qps, 1) + " qps"
                                       : std::string("all-at-once")) +
              (sjf ? ", SJF" : ", FCFS"));
      t.set_headers({"metric", "value"});
      t.new_row().cell("makespan (s)").cell(rep.makespan_s, 2);
      t.new_row().cell("throughput (tok/s)").cell(rep.throughput_tok_s, 0);
      t.new_row().cell("goodput (gen tok/s)").cell(rep.goodput_tok_s, 0);
      t.new_row().cell("p50 / p95 TTFT (s)").cell(
          format_fixed(rep.ttft_s.percentile(50), 2) + " / " +
          format_fixed(rep.ttft_s.percentile(95), 2));
      t.new_row().cell("p50 / p95 e2e (s)").cell(
          format_fixed(rep.e2e_s.percentile(50), 2) + " / " +
          format_fixed(rep.e2e_s.percentile(95), 2));
      t.new_row().cell("mean running batch").cell(rep.mean_running_batch, 1);
      t.new_row().cell("preemptions").cell(rep.preemptions);
      if (csv) {
        t.print_csv(std::cout);
      } else {
        t.print(std::cout);
      }
      return 0;
    }

    const auto m = s.run();
    Table t(s.model + " on " + std::to_string(s.n_devices) + "x " +
            s.device + " [" + s.plan.label() + ", " +
            dtype_name(s.weight_dtype) + "]");
    t.set_headers({"metric", "value"});
    t.new_row().cell("batch / in / out").cell(
        std::to_string(s.batch) + " / " + std::to_string(s.input_tokens) +
        " / " + std::to_string(s.output_tokens));
    t.new_row().cell("TTFT (ms)").cell(to_ms(m.ttft_s), 2);
    t.new_row().cell("ITL (ms)").cell(to_ms(m.itl_s), 3);
    t.new_row().cell("end-to-end (s)").cell(m.e2e_s, 3);
    t.new_row().cell("throughput (tok/s)").cell(m.throughput_tok_s, 0);
    t.new_row().cell("samples/s").cell(m.samples_per_s, 3);
    t.new_row().cell("memory/device (GiB)").cell(to_gib(m.memory.total()), 2);
    t.new_row().cell("KV waves").cell(m.waves);
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    return 0;
  } catch (const mib::OutOfMemoryError& e) {
    std::cerr << "OOM: " << e.what() << "\n";
    return 2;
  } catch (const mib::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
