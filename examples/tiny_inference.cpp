// End-to-end *functional* inference: build a small MoE transformer, decode
// real tokens on the CPU with an incremental KV cache, and watch the
// quantities the simulator reasons about — expert activation counts, the
// KV cache growing, and the effect of pruning on actual outputs.
//
// Nothing here is simulated: every logit is computed.
#include <chrono>
#include <iostream>
#include <numeric>

#include "common/table.h"
#include "moe/pruning.h"
#include "moe/transformer.h"

int main() {
  using namespace mib;
  using Clock = std::chrono::steady_clock;

  moe::TransformerConfig cfg;
  cfg.vocab = 512;
  cfg.n_layers = 4;
  cfg.hidden = 64;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;  // GQA
  cfg.head_dim = 16;
  cfg.n_experts = 8;
  cfg.top_k = 2;
  cfg.expert_ffn = 96;
  const moe::Transformer model(cfg, /*seed=*/2025);

  std::cout << "Functional MoE transformer: " << cfg.n_layers << " layers, "
            << cfg.n_experts << " experts (top-" << cfg.top_k << "), "
            << model.param_count() << " parameters\n\n";

  // --- decode a prompt ---
  const std::vector<int> prompt = {11, 42, 7, 100, 3};
  auto session = model.new_session();
  const auto t0 = Clock::now();
  const auto generated = model.generate(prompt, 32, session);
  const auto dt = std::chrono::duration<double>(Clock::now() - t0).count();

  std::cout << "prompt:    ";
  for (int t : prompt) std::cout << t << ' ';
  std::cout << "\ngenerated: ";
  for (int t : generated) std::cout << t << ' ';
  std::cout << "\n(" << format_fixed(32.0 / dt, 1)
            << " tok/s on this CPU; KV cache now holds "
            << session.position() << " positions per layer)\n\n";

  // --- expert activation profile of the run ---
  const auto counts = model.activation_counts();
  Table t("expert activations during the run (rows = layers)");
  std::vector<std::string> headers = {"layer"};
  for (int e = 0; e < cfg.n_experts; ++e) {
    headers.push_back("e" + std::to_string(e));
  }
  headers.push_back("imbalance");
  t.set_headers(headers);
  for (std::size_t l = 0; l < counts.size(); ++l) {
    t.new_row().cell("L" + std::to_string(l));
    std::uint64_t mx = 0, total = 0;
    for (auto c : counts[l]) {
      t.cell(c);
      mx = std::max(mx, c);
      total += c;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(cfg.n_experts);
    t.cell(static_cast<double>(mx) / mean, 2);
  }
  t.print(std::cout);

  // --- prune half the experts by those counts and keep decoding ---
  moe::Transformer pruned(cfg, /*seed=*/2025);  // same weights
  {
    auto warm = pruned.new_session();
    pruned.forward(prompt, warm);  // calibration counts
  }
  for (int l = 0; l < cfg.n_layers; ++l) {
    moe::inter_expert_prune(pruned.moe_layer(l), 0.5,
                            moe::ExpertPruneCriterion::kLeastActivated);
  }
  auto ps = pruned.new_session();
  const auto pruned_out = pruned.generate(prompt, 32, ps);
  int agree = 0;
  for (std::size_t i = 0; i < pruned_out.size(); ++i) {
    agree += pruned_out[i] == generated[i];
  }
  std::cout << "\nAfter 50% inter-expert pruning (least-activated), the "
               "pruned model agrees with the original on "
            << agree << "/32 greedy tokens — pruning changes real outputs, "
            << "not just simulated throughput.\n";
  return 0;
}
