// Serving a mixed-length request trace: uses the workload generator, the
// paged KV-cache admission logic and the engine to estimate how a realistic
// (Zipf-length) request mix behaves vs the uniform batches the paper
// sweeps — including how many admission waves KV memory forces.
#include <algorithm>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "core/scenario.h"
#include "workload/generator.h"

int main() {
  using namespace mib;

  // A production-ish mix: short chats dominate, a long tail of big jobs.
  workload::TraceConfig tc;
  tc.n_requests = 256;
  tc.input = {32, 4096, 1.3};
  tc.output = {32, 2048, 1.3};
  tc.seed = 20250704;
  const auto trace = workload::generate_trace(tc);

  Samples in_lens, out_lens;
  for (const auto& r : trace) {
    in_lens.add(r.input_tokens);
    out_lens.add(r.output_tokens);
  }
  Table dist("trace shape (256 requests, Zipf 1.3)");
  dist.set_headers({"", "mean", "p50", "p95", "max"});
  dist.new_row()
      .cell("input tokens")
      .cell(in_lens.mean(), 0)
      .cell(in_lens.median(), 0)
      .cell(in_lens.percentile(95), 0)
      .cell(in_lens.max(), 0);
  dist.new_row()
      .cell("output tokens")
      .cell(out_lens.mean(), 0)
      .cell(out_lens.median(), 0)
      .cell(out_lens.percentile(95), 0)
      .cell(out_lens.max(), 0);
  dist.print(std::cout);

  // Serve the trace in fixed-size admission groups; each group's cost is
  // dominated by its longest member (static batching, as in the paper).
  core::Scenario base;
  base.model = "Qwen1.5-MoE-A2.7B";
  base.n_devices = 1;

  Table t("\nQwen1.5-MoE-A2.7B on one H100 — group size sweep");
  t.set_headers({"group size", "makespan (s)", "mean thr (tok/s)",
                 "total waves", "padding waste %"});
  for (int group : {8, 16, 32, 64}) {
    double makespan = 0.0;
    double total_tokens = 0.0;
    double padded_tokens = 0.0;
    int waves = 0;
    for (std::size_t i = 0; i < trace.size(); i += group) {
      const auto last = std::min(trace.size(), i + group);
      int max_in = 1, max_out = 1;
      for (std::size_t j = i; j < last; ++j) {
        max_in = std::max(max_in, trace[j].input_tokens);
        max_out = std::max(max_out, trace[j].output_tokens);
        total_tokens += trace[j].input_tokens + trace[j].output_tokens;
      }
      const auto b = static_cast<int>(last - i);
      const auto m = base.with_batch(b).with_lengths(max_in, max_out).run();
      makespan += m.e2e_s;
      waves += m.waves;
      padded_tokens += static_cast<double>(b) * (max_in + max_out);
    }
    t.new_row()
        .cell(group)
        .cell(makespan, 1)
        .cell(total_tokens / makespan, 0)
        .cell(waves)
        .cell(100.0 * (1.0 - total_tokens / padded_tokens), 1);
  }
  t.print(std::cout);

  std::cout << "\nReading: larger groups amortize weight reads (higher "
               "throughput) but pad every request to the group's longest "
               "member and stress KV memory — the batching trade-off behind "
               "the paper's Fig. 5/6 insights, now on a realistic mix.\n";
  return 0;
}
