// Deployment planner: given a model and a latency SLO, search the
// (devices, parallel plan, precision) space for the cheapest configuration
// that meets the SLO — the capacity-planning workflow the paper's insights
// are meant to inform (§5 "optimal MoE operating constraints").
#include <iostream>
#include <optional>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "core/scenario.h"

namespace {

struct Candidate {
  mib::parallel::ParallelPlan plan;
  int devices;
  mib::DType dtype;
};

std::string dtype_label(mib::DType dt) { return mib::dtype_name(dt); }

}  // namespace

int main() {
  using namespace mib;

  const std::string model = "Mixtral-8x7B";
  const int batch = 16;
  const int in_len = 1024, out_len = 1024;
  const double itl_slo_ms = 15.0;   // interactive serving target
  const double ttft_slo_s = 2.0;

  std::cout << "Deployment planner: " << model << ", batch " << batch
            << ", " << in_len << "/" << out_len << " tokens\n"
            << "SLO: ITL <= " << itl_slo_ms << " ms/token-step, TTFT <= "
            << ttft_slo_s << " s\n\n";

  std::vector<Candidate> candidates;
  for (int n : {1, 2, 4, 8}) {
    for (DType dt : {DType::kFP16, DType::kFP8E4M3, DType::kINT4}) {
      candidates.push_back({parallel::tp_plan(n), n, dt});
      if (n > 1) {
        candidates.push_back({parallel::tp_ep_plan(n), n, dt});
        candidates.push_back({parallel::pp_plan(n), n, dt});
      }
    }
  }

  Table t("candidate configurations");
  t.set_headers({"plan", "dtype", "thr (tok/s)", "TTFT (s)",
                 "step latency (ms)", "mem/GPU (GiB)", "meets SLO"});
  std::optional<Candidate> best;
  double best_thr_per_gpu = 0.0;

  for (const auto& c : candidates) {
    core::Scenario s;
    s.model = model;
    s.n_devices = c.devices;
    s.plan = c.plan;
    s.weight_dtype = c.dtype;
    s.batch = batch;
    s.input_tokens = in_len;
    s.output_tokens = out_len;
    try {
      const auto m = s.run();
      // Per-step decode latency = ITL * batch (eq. 1 divides by B*out).
      const double step_ms = m.itl_s * batch * 1e3;
      const bool ok = step_ms <= itl_slo_ms && m.ttft_s <= ttft_slo_s;
      t.new_row()
          .cell(c.plan.label())
          .cell(dtype_label(c.dtype))
          .cell(m.throughput_tok_s, 0)
          .cell(m.ttft_s, 2)
          .cell(step_ms, 2)
          .cell(m.memory.total() / kGiB, 1)
          .cell(ok ? "yes" : "no");
      const double per_gpu = m.throughput_tok_s / c.devices;
      if (ok && per_gpu > best_thr_per_gpu) {
        best_thr_per_gpu = per_gpu;
        best = c;
      }
    } catch (const OutOfMemoryError&) {
      t.new_row()
          .cell(c.plan.label())
          .cell(dtype_label(c.dtype))
          .cell("OOM")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell("no");
    }
  }
  t.print(std::cout);

  if (best) {
    std::cout << "\nRecommendation: " << best->plan.label() << " @ "
              << dtype_label(best->dtype) << " — best throughput per GPU ("
              << format_fixed(best_thr_per_gpu, 0)
              << " tok/s/GPU) within the SLO.\n";
  } else {
    std::cout << "\nNo candidate meets the SLO; relax it or add devices.\n";
  }
  return 0;
}
