// End-to-end functional VLM: pixels -> SigLIP-style vision encoder ->
// patch tokens -> MoE language model decoding, with the expert-activation
// contrast of the paper's §8.3 reproduced on real routing — all computed,
// nothing simulated.
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "moe/transformer.h"
#include "moe/vision_encoder.h"

int main() {
  using namespace mib;

  // A small VLM: 32x32 images in 8x8 patches -> 16 visual tokens.
  moe::VisionEncoderConfig vc;
  vc.image_size = 32;
  vc.patch_size = 8;
  vc.channels = 3;
  vc.hidden = 48;
  vc.n_heads = 4;
  vc.n_layers = 2;
  vc.mlp_dim = 96;
  vc.llm_hidden = 64;
  const moe::VisionEncoder tower(vc, 101);

  moe::TransformerConfig lc;
  lc.vocab = 256;
  lc.n_layers = 4;
  lc.hidden = 64;
  lc.n_heads = 4;
  lc.n_kv_heads = 4;
  lc.head_dim = 16;
  lc.n_experts = 16;
  lc.top_k = 2;
  lc.expert_ffn = 96;
  moe::Transformer llm(lc, 202);

  std::cout << "Functional VLM: " << tower.param_count()
            << "-param vision tower + " << llm.param_count()
            << "-param MoE LLM (" << lc.n_experts << " experts, top-"
            << lc.top_k << ")\n\n";

  // Encode a batch of synthetic "images" and measure how multimodal vs
  // text-only inputs load the experts.
  Rng rng(7);
  llm.reset_activation_counts();
  int visual_tokens = 0;
  for (int img = 0; img < 8; ++img) {
    const Tensor image = Tensor::randn(
        {static_cast<std::size_t>(vc.channels * vc.image_size *
                                  vc.image_size)},
        rng);
    const Tensor tokens = tower.encode(image);
    visual_tokens += static_cast<int>(tokens.dim(0));
    // Visual tokens enter the LLM as soft embeddings: route them through
    // every MoE layer exactly as the decoder would (router statistics are
    // what §8.3 studies).
    for (int l = 0; l < lc.n_layers; ++l) {
      llm.moe_layer(l).router().route(tokens);
    }
  }
  const auto vision_counts = llm.activation_counts();

  llm.reset_activation_counts();
  auto session = llm.new_session();
  std::vector<int> prompt;
  for (int i = 0; i < 128; ++i) {
    prompt.push_back(static_cast<int>(rng.uniform_index(256)));
  }
  llm.forward(prompt, session);
  const auto text_counts = llm.activation_counts();

  Table t("per-layer expert-load statistics (functional routing)");
  t.set_headers({"layer", "image CV", "text CV", "image max/mean",
                 "text max/mean"});
  for (std::size_t l = 0; l < vision_counts.size(); ++l) {
    t.new_row()
        .cell("L" + std::to_string(l))
        .cell(coefficient_of_variation(vision_counts[l]), 3)
        .cell(coefficient_of_variation(text_counts[l]), 3)
        .cell(max_over_mean(vision_counts[l]), 2)
        .cell(max_over_mean(text_counts[l]), 2);
  }
  t.print(std::cout);
  std::cout << "(" << visual_tokens
            << " visual tokens routed. Note the text rows' higher CV: "
               "discrete tokens repeat embeddings from a 256-entry "
               "vocabulary, so identical inputs route identically, "
               "concentrating load — while continuous visual embeddings "
               "spread across experts. §8.3's MolmoE-vs-DeepSeek contrast "
               "adds the training-time balance loss on top, which "
               "bench/fig15 emulates with a logit prior.)\n\n";

  // Finally: decode a "caption" conditioned on a text prompt.
  auto s2 = llm.new_session();
  const auto caption = llm.generate({10, 20, 30}, 12, s2);
  std::cout << "greedy decode after the multimodal prefix: ";
  for (int tok : caption) std::cout << tok << ' ';
  std::cout << "\n";
  return 0;
}
