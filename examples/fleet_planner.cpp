// Example: capacity planning with the fleet simulator — "how many H100
// nodes do I need to serve X QPS at my latency SLOs?"
//
// For each replica count we offer the target load (Poisson arrivals over a
// mixed-length trace) and check SLO attainment; the answer is the smallest
// fleet sustaining >= 99%. Also prints each size's own capacity point (max
// QPS at 99% attainment) so over-provisioning headroom is visible.
//
// The second table stress-tests the chosen size: a mid-run crash (detected
// by heartbeats, not an oracle) and a brownout straggler, with and without
// hedging — answering whether the plan needs an N+1 margin to hold its SLO
// through a realistic bad day.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "core/scenario.h"
#include "fleet/fleet.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

int main() {
  using namespace mib;

  const double target_qps = 96.0;
  const double ttft_slo_s = 2.0;
  const double itl_slo_s = 0.05;
  const int max_fleet = 8;

  core::Scenario s;
  s.model = "OLMoE-1B-7B";

  // 15 s of sustained arrivals, so attainment reflects steady-state
  // queueing rather than absorption of a short burst.
  auto make_trace = [&](double qps) {
    workload::TraceConfig tc;
    tc.n_requests = std::max(64, static_cast<int>(qps * 15.0));
    tc.input = {64, 1024, 1.2};
    tc.output = {32, 256, 1.2};
    tc.seed = 13;
    auto trace = fleet::as_fleet_trace(workload::generate_trace(tc));
    workload::ArrivalConfig ac;
    ac.rate_qps = qps;
    ac.seed = 29;
    fleet::stamp_arrivals(ac, trace);
    return trace;
  };

  auto config_for = [&](int replicas) {
    fleet::FleetConfig fc;
    fc.engine = s.engine_config();
    fc.n_replicas = replicas;
    fc.slo.ttft_s = ttft_slo_s;
    fc.slo.itl_s = itl_slo_s;
    fc.seed = 3;
    return fc;
  };

  std::cout << "Fleet planner: " << s.model << " on H100 nodes, target "
            << target_qps << " QPS at TTFT <= " << ttft_slo_s
            << " s, ITL <= " << itl_slo_s * 1e3 << " ms\n\n";

  Table t("Attainment at the target load, by fleet size");
  t.set_headers({"replicas", "attainment @ target", "p95 TTFT (s)",
                 "goodput (qps)", "own capacity (qps @ 99%)"});
  int answer = -1;
  for (int n = 1; n <= max_fleet; ++n) {
    const fleet::FleetSimulator sim(config_for(n));
    const auto r = sim.run(make_trace(target_qps));
    const auto cap = fleet::find_capacity_qps(
        [&](double qps) {
          return fleet::FleetSimulator(config_for(n))
              .run(make_trace(qps))
              .slo.attainment;
        },
        1.0, 256.0, 0.99, 7);
    t.new_row()
        .cell(n)
        .cell(r.slo.attainment, 3)
        .cell(r.ttft_s.p95(), 2)
        .cell(r.slo.goodput_qps, 1)
        .cell(cap.qps, 1);
    if (answer < 0 && r.slo.attainment >= 0.99) answer = n;
    if (answer > 0 && n >= answer + 1) break;  // one row of headroom
  }
  t.print(std::cout);

  if (answer > 0) {
    std::cout << "\nAnswer: " << answer << " H100 node(s) sustain "
              << target_qps << " QPS at >= 99% SLO attainment.\n";
  } else {
    std::cout << "\nAnswer: more than " << max_fleet
              << " replicas needed for " << target_qps
              << " QPS at these SLOs.\n";
    return 0;
  }

  // --- resilience margin: does the plan survive a bad day? ---
  const auto trace = make_trace(target_qps);
  Table rt("Resilience margin at the target load (crash 2s-6s detected by "
           "heartbeats; brownout to 20% for 2s-10s)");
  rt.set_headers({"fleet", "incident", "hedge", "attainment", "p99 TTFT (s)",
                  "lost", "detect lag p50 (s)"});
  for (int n : {answer, answer + 1}) {
    for (int scenario = 0; scenario < 2; ++scenario) {
      for (bool hedged : {false, true}) {
        auto fc = config_for(n);
        if (scenario == 0) {
          fc.faults.push_back(fleet::FaultWindow{0, 2.0, 6.0});
        } else {
          fc.degradations.push_back(
              fleet::DegradationWindow{0, 2.0, 10.0, {0.2, 0.2, 0.2}});
        }
        fc.hedge.enabled = hedged;
        fc.retry.jitter = 1.0;
        const auto r = fleet::FleetSimulator(fc).run(trace);
        rt.new_row()
            .cell(n)
            .cell(scenario == 0 ? "replica 0 crash" : "replica 0 brownout")
            .cell(hedged ? "p95" : "off")
            .cell(r.slo.attainment, 3)
            .cell(r.ttft_s.p99(), 2)
            .cell(r.lost)
            .cell(r.detection_lag_s.count() > 0 ? r.detection_lag_s.p50()
                                                : 0.0,
                  3);
      }
    }
  }
  rt.print(std::cout);
  std::cout << "\nReading: attainment under incidents is the number that "
               "should drive the provisioning decision — if the N-replica "
               "plan only holds its SLO on a clean day, budget N+1. Note "
               "hedging is not free insurance: with no spare capacity the "
               "extra copies land on the one healthy replica and push it "
               "over the edge (the classic tail-at-scale caveat); with an "
               "N+1 margin it is cheap tail protection.\n";

  // --- blast radius: the N+1 plan with its replicas placed in two racks ---
  //
  // Per-replica incidents miss the dominant real-world failure mode: a
  // rack PDU or ToR switch takes out every node under it at once. Attach
  // the N+1 fleet to two racks round-robin and replay the same
  // fault-seconds as (a) one node crash and (b) a whole-rack event, plus
  // the recovery knobs PR 3 adds: a post-recovery warm-up ramp and a
  // second router that takes over when the first one dies.
  const int fleet_n = answer + 1;
  fleet::TopologyConfig topo;
  topo.domains = {fleet::DomainSpec{"zone", ""},
                  fleet::DomainSpec{"rack0", "zone"},
                  fleet::DomainSpec{"rack1", "zone"}};
  for (int r = 0; r < fleet_n; ++r) {
    const std::string node = "n" + std::to_string(r);
    topo.domains.push_back(
        fleet::DomainSpec{node, r % 2 == 0 ? "rack0" : "rack1"});
    topo.replica_domain.push_back(node);
  }
  Table ct("Blast radius for the " + std::to_string(fleet_n) +
           "-replica plan, placed round-robin in 2 racks (fault 2s-4s)");
  ct.set_headers({"incident", "bursts", "largest burst", "warm-ups",
                  "stranded", "failovers", "double disp", "dup decode (s)",
                  "attainment", "p99 TTFT (s)"});
  struct Incident {
    const char* name;
    bool rack;
    bool warmup;
    bool router_down;
    bool partition;
  };
  for (const Incident inc :
       {Incident{"one node (n0) crash", false, false, false, false},
        Incident{"rack0 event", true, false, false, false},
        Incident{"rack0 event + warm-up", true, true, false, false},
        Incident{"rack0 event + router 0 dies", true, true, true, false},
        Incident{"rack0 partitioned off (split brain)", false, false, false,
                 true}}) {
    auto fc = config_for(fleet_n);
    fc.topology = topo;
    fc.retry.jitter = 1.0;
    if (inc.partition) {
      // Not a crash: rack0's nodes keep serving behind the cut while the
      // majority re-admits what rack0 cannot answer in time.
      fc.control.routers = 2;
      fc.control.partition.enabled = true;
      fc.control.partition.client_retry_s = 0.02;
      fc.retry.max_retries = 12;
      fleet::PartitionWindow w;
      w.start_s = 2.0;
      w.end_s = 4.0;
      w.minority_routers = {1};
      for (int i = 0; i < fleet_n; i += 2) w.minority_replicas.push_back(i);
      fc.control.partition.windows.push_back(w);
    } else if (inc.rack) {
      fc.domain_faults.push_back(fleet::DomainFault{"rack0", 2.0, 4.0});
    } else {
      fc.faults.push_back(fleet::FaultWindow{0, 2.0, 4.0});
    }
    fc.warmup.enabled = inc.warmup;
    if (inc.router_down) {
      fc.control.routers = 2;
      fc.control.view_sync_interval_s = 0.1;
      fc.control.router_faults.push_back(
          fleet::RouterFaultWindow{0, 2.0, 4.0});
    }
    const auto r = fleet::FleetSimulator(fc).run(trace);
    long long failovers = 0;
    for (const auto& rec : r.requests) failovers += rec.router_failover;
    ct.new_row()
        .cell(inc.name)
        .cell(r.suspicion_bursts)
        .cell(r.largest_suspicion_burst)
        .cell(r.warmup_recoveries)
        .cell(r.router_stranded)
        .cell(failovers)
        .cell(r.double_dispatches)
        .cell(r.duplicate_decode_s, 3)
        .cell(r.slo.attainment, 3)
        .cell(r.ttft_s.p99(), 2);
  }
  ct.print(std::cout);
  std::cout << "\nReading: the N+1 margin is sized for one lost node, but a "
               "rack event removes half the fleet in a single suspicion "
               "burst — if the blast-radius row misses the SLO, spread the "
               "replicas across more racks rather than buying more of them. "
               "The warm-up row charges the post-recovery cold-cache window, "
               "and the router row shows the plan riding through a "
               "simultaneous control-plane outage: stranded requests re-"
               "enter at the surviving router after the detection lag. The "
               "split-brain row is the subtle one: nothing crashed, yet the "
               "fleet pays duplicate decode seconds for every request both "
               "sides admitted — a partition turns spare capacity into "
               "contended capacity exactly when half the fleet is already "
               "unreachable.\n";
  return 0;
}
