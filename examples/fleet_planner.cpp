// Example: capacity planning with the fleet simulator — "how many H100
// nodes do I need to serve X QPS at my latency SLOs?"
//
// For each replica count we offer the target load (Poisson arrivals over a
// mixed-length trace) and check SLO attainment; the answer is the smallest
// fleet sustaining >= 99%. Also prints each size's own capacity point (max
// QPS at 99% attainment) so over-provisioning headroom is visible.
//
// The second table stress-tests the chosen size: a mid-run crash (detected
// by heartbeats, not an oracle) and a brownout straggler, with and without
// hedging — answering whether the plan needs an N+1 margin to hold its SLO
// through a realistic bad day.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "core/scenario.h"
#include "fleet/fleet.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

int main() {
  using namespace mib;

  const double target_qps = 96.0;
  const double ttft_slo_s = 2.0;
  const double itl_slo_s = 0.05;
  const int max_fleet = 8;

  core::Scenario s;
  s.model = "OLMoE-1B-7B";

  // 15 s of sustained arrivals, so attainment reflects steady-state
  // queueing rather than absorption of a short burst.
  auto make_trace = [&](double qps) {
    workload::TraceConfig tc;
    tc.n_requests = std::max(64, static_cast<int>(qps * 15.0));
    tc.input = {64, 1024, 1.2};
    tc.output = {32, 256, 1.2};
    tc.seed = 13;
    auto trace = fleet::as_fleet_trace(workload::generate_trace(tc));
    workload::ArrivalConfig ac;
    ac.rate_qps = qps;
    ac.seed = 29;
    fleet::stamp_arrivals(ac, trace);
    return trace;
  };

  auto config_for = [&](int replicas) {
    fleet::FleetConfig fc;
    fc.engine = s.engine_config();
    fc.n_replicas = replicas;
    fc.slo.ttft_s = ttft_slo_s;
    fc.slo.itl_s = itl_slo_s;
    fc.seed = 3;
    return fc;
  };

  std::cout << "Fleet planner: " << s.model << " on H100 nodes, target "
            << target_qps << " QPS at TTFT <= " << ttft_slo_s
            << " s, ITL <= " << itl_slo_s * 1e3 << " ms\n\n";

  Table t("Attainment at the target load, by fleet size");
  t.set_headers({"replicas", "attainment @ target", "p95 TTFT (s)",
                 "goodput (qps)", "own capacity (qps @ 99%)"});
  int answer = -1;
  for (int n = 1; n <= max_fleet; ++n) {
    const fleet::FleetSimulator sim(config_for(n));
    const auto r = sim.run(make_trace(target_qps));
    const auto cap = fleet::find_capacity_qps(
        [&](double qps) {
          return fleet::FleetSimulator(config_for(n))
              .run(make_trace(qps))
              .slo.attainment;
        },
        1.0, 256.0, 0.99, 7);
    t.new_row()
        .cell(n)
        .cell(r.slo.attainment, 3)
        .cell(r.ttft_s.p95(), 2)
        .cell(r.slo.goodput_qps, 1)
        .cell(cap.qps, 1);
    if (answer < 0 && r.slo.attainment >= 0.99) answer = n;
    if (answer > 0 && n >= answer + 1) break;  // one row of headroom
  }
  t.print(std::cout);

  if (answer > 0) {
    std::cout << "\nAnswer: " << answer << " H100 node(s) sustain "
              << target_qps << " QPS at >= 99% SLO attainment.\n";
  } else {
    std::cout << "\nAnswer: more than " << max_fleet
              << " replicas needed for " << target_qps
              << " QPS at these SLOs.\n";
    return 0;
  }

  // --- resilience margin: does the plan survive a bad day? ---
  const auto trace = make_trace(target_qps);
  Table rt("Resilience margin at the target load (crash 2s-6s detected by "
           "heartbeats; brownout to 20% for 2s-10s)");
  rt.set_headers({"fleet", "incident", "hedge", "attainment", "p99 TTFT (s)",
                  "lost", "suppressed", "detect lag p50 (s)"});
  struct HedgeMode {
    const char* name;
    bool enabled;
    double gate;  ///< max_utilization; 1.0 leaves the gate off
  };
  for (int n : {answer, answer + 1}) {
    for (int scenario = 0; scenario < 2; ++scenario) {
      for (const HedgeMode hm : {HedgeMode{"off", false, 1.0},
                                 HedgeMode{"p95", true, 1.0},
                                 HedgeMode{"p95 gated", true, 0.85}}) {
        auto fc = config_for(n);
        if (scenario == 0) {
          fc.faults.push_back(fleet::FaultWindow{0, 2.0, 6.0});
        } else {
          fc.degradations.push_back(
              fleet::DegradationWindow{0, 2.0, 10.0, {0.2, 0.2, 0.2}});
        }
        fc.hedge.enabled = hm.enabled;
        fc.hedge.max_utilization = hm.gate;
        fc.retry.jitter = 1.0;
        const auto r = fleet::FleetSimulator(fc).run(trace);
        rt.new_row()
            .cell(n)
            .cell(scenario == 0 ? "replica 0 crash" : "replica 0 brownout")
            .cell(hm.name)
            .cell(r.slo.attainment, 3)
            .cell(r.ttft_s.p99(), 2)
            .cell(r.lost)
            .cell(r.hedges_suppressed)
            .cell(r.detection_lag_s.count() > 0 ? r.detection_lag_s.p50()
                                                : 0.0,
                  3);
      }
    }
  }
  rt.print(std::cout);
  std::cout << "\nReading: attainment under incidents is the number that "
               "should drive the provisioning decision — if the N-replica "
               "plan only holds its SLO on a clean day, budget N+1. Note "
               "hedging is not free insurance: with no spare capacity the "
               "extra copies land on the one healthy replica and push it "
               "over the edge (the classic tail-at-scale caveat); with an "
               "N+1 margin it is cheap tail protection. The gated rows "
               "soften the caveat: a utilization gate self-disables hedging "
               "while the survivors are saturated (the suppressed column "
               "counts the hedges it swallowed), so the insurance stays on "
               "for the tail without feeding the overload.\n";

  // --- blast radius: the N+1 plan with its replicas placed in two racks ---
  //
  // Per-replica incidents miss the dominant real-world failure mode: a
  // rack PDU or ToR switch takes out every node under it at once. Attach
  // the N+1 fleet to two racks round-robin and replay the same
  // fault-seconds as (a) one node crash and (b) a whole-rack event, plus
  // the recovery knobs PR 3 adds: a post-recovery warm-up ramp and a
  // second router that takes over when the first one dies.
  const int fleet_n = answer + 1;
  fleet::TopologyConfig topo;
  topo.domains = {fleet::DomainSpec{"zone", ""},
                  fleet::DomainSpec{"rack0", "zone"},
                  fleet::DomainSpec{"rack1", "zone"}};
  for (int r = 0; r < fleet_n; ++r) {
    const std::string node = "n" + std::to_string(r);
    topo.domains.push_back(
        fleet::DomainSpec{node, r % 2 == 0 ? "rack0" : "rack1"});
    topo.replica_domain.push_back(node);
  }
  Table ct("Blast radius for the " + std::to_string(fleet_n) +
           "-replica plan, placed round-robin in 2 racks (fault 2s-4s)");
  ct.set_headers({"incident", "bursts", "largest burst", "warm-ups",
                  "stranded", "failovers", "double disp", "dup decode (s)",
                  "orphaned", "attainment", "p99 TTFT (s)"});
  struct Incident {
    const char* name;
    bool rack;
    bool warmup;
    bool router_down;
    bool partition;
    bool gray;
  };
  for (const Incident inc :
       {Incident{"one node (n0) crash", false, false, false, false, false},
        Incident{"rack0 event", true, false, false, false, false},
        Incident{"rack0 event + warm-up", true, true, false, false, false},
        Incident{"rack0 event + router 0 dies", true, true, true, false,
                 false},
        Incident{"rack0 partitioned off (split brain)", false, false, false,
                 true, false},
        Incident{"rack0 gray cut (flapping, asymmetric)", false, false,
                 false, true, true}}) {
    auto fc = config_for(fleet_n);
    fc.topology = topo;
    fc.retry.jitter = 1.0;
    if (inc.partition) {
      // Not a crash: rack0's nodes keep serving behind the cut while the
      // majority re-admits what rack0 cannot answer in time.
      fc.control.routers = 2;
      fc.control.partition.enabled = true;
      fc.control.partition.client_retry_s = 0.02;
      fc.retry.max_retries = 12;
      fleet::PartitionWindow w;
      w.start_s = 2.0;
      w.end_s = 4.0;
      w.minority_routers = {1};
      for (int i = 0; i < fleet_n; i += 2) w.minority_replicas.push_back(i);
      if (inc.gray) {
        // The same 2s of cut, but flapping on a 0.5s period and leaking
        // dispatches across while the response stream stays dead — the
        // gray shape real networks produce. The minority router fences
        // itself once each episode outlives the grace window, and the
        // client's patience retries back off with full jitter.
        w.end_s = 6.0;  // 4s span x 50% duty = the same 2s of cut
        w.flap_period_s = 0.5;
        w.flap_duty = 0.5;
        w.open_to_minority = true;
        fc.control.partition.quorum = fleet::QuorumPolicy::kFenceAfterGrace;
        fc.control.partition.quorum_grace_s = 0.1;
        fc.control.partition.max_client_retries = 3;
        fc.control.partition.retry_multiplier = 2.0;
        fc.control.partition.retry_jitter = 0.5;
      }
      fc.control.partition.windows.push_back(w);
    } else if (inc.rack) {
      fc.domain_faults.push_back(fleet::DomainFault{"rack0", 2.0, 4.0});
    } else {
      fc.faults.push_back(fleet::FaultWindow{0, 2.0, 4.0});
    }
    fc.warmup.enabled = inc.warmup;
    if (inc.router_down) {
      fc.control.routers = 2;
      fc.control.view_sync_interval_s = 0.1;
      fc.control.router_faults.push_back(
          fleet::RouterFaultWindow{0, 2.0, 4.0});
    }
    const auto r = fleet::FleetSimulator(fc).run(trace);
    long long failovers = 0;
    for (const auto& rec : r.requests) failovers += rec.router_failover;
    ct.new_row()
        .cell(inc.name)
        .cell(r.suspicion_bursts)
        .cell(r.largest_suspicion_burst)
        .cell(r.warmup_recoveries)
        .cell(r.router_stranded)
        .cell(failovers)
        .cell(r.double_dispatches)
        .cell(r.duplicate_decode_s, 3)
        .cell(r.orphaned_completions)
        .cell(r.slo.attainment, 3)
        .cell(r.ttft_s.p99(), 2);
  }
  ct.print(std::cout);
  std::cout << "\nReading: the N+1 margin is sized for one lost node, but a "
               "rack event removes half the fleet in a single suspicion "
               "burst — if the blast-radius row misses the SLO, spread the "
               "replicas across more racks rather than buying more of them. "
               "The warm-up row charges the post-recovery cold-cache window, "
               "and the router row shows the plan riding through a "
               "simultaneous control-plane outage: stranded requests re-"
               "enter at the surviving router after the detection lag. The "
               "split-brain row is the subtle one: nothing crashed, yet the "
               "fleet pays duplicate decode seconds for every request both "
               "sides admitted — a partition turns spare capacity into "
               "contended capacity exactly when half the fleet is already "
               "unreachable. The gray row is worse again per cut-second: "
               "the asymmetric link keeps feeding the minority work whose "
               "finished responses never reach the client (the orphaned "
               "column), and every flap episode re-pays the heal cost.\n";

  // --- autoscaler placement: does new capacity share a blast radius? ---
  //
  // When the autoscaler grows the fleet under load, first-fit placement
  // happily stacks every new replica into whichever rack has free slots —
  // re-creating the blast radius the round-robin layout above was built to
  // avoid. The topology-aware policy picks the slot whose rack currently
  // hosts the fewest active replicas. Spare slots here are deliberately
  // rack0-heavy so the two policies actually diverge.
  {
    const int pool = fleet_n + 4;
    fleet::TopologyConfig grow;
    grow.domains = {fleet::DomainSpec{"zone", ""},
                    fleet::DomainSpec{"rack0", "zone"},
                    fleet::DomainSpec{"rack1", "zone"}};
    for (int r = 0; r < pool; ++r) {
      const std::string node = "n" + std::to_string(r);
      // Initial replicas alternate racks; the first spare slots all sit
      // in rack0, so first-fit growth stacks that rack.
      const char* rack =
          (r < fleet_n ? (r % 2 == 0) : (r < fleet_n + 2)) ? "rack0"
                                                           : "rack1";
      grow.domains.push_back(fleet::DomainSpec{node, rack});
      grow.replica_domain.push_back(node);
    }
    Table at("Autoscaler placement for the " + std::to_string(fleet_n) +
             "-replica plan growing to " + std::to_string(pool) +
             " slots under 2x load");
    at.set_headers({"placement", "adds", "rack0 share", "worst-rack blast",
                    "attainment"});
    for (const bool aware : {false, true}) {
      auto fc = config_for(fleet_n);
      fc.topology = grow;
      fc.autoscaler.enabled = true;
      fc.autoscaler.min_replicas = fleet_n;
      fc.autoscaler.max_replicas = pool;
      fc.autoscaler.topology_aware = aware;
      const auto r = fleet::FleetSimulator(fc).run(make_trace(
          2.0 * target_qps));
      const fleet::Topology placed(grow, pool);
      long long adds = 0;
      std::vector<int> ever;
      for (int i = 0; i < fleet_n; ++i) ever.push_back(i);
      for (const auto& ev : r.scale_events) {
        if (ev.action != "add") continue;
        ++adds;
        ever.push_back(ev.replica);
      }
      std::sort(ever.begin(), ever.end());
      ever.erase(std::unique(ever.begin(), ever.end()), ever.end());
      long long in_rack0 = 0;
      for (int i : ever) {
        if (placed.spread_group_of(i) == "rack0") ++in_rack0;
      }
      const long long worst =
          std::max(in_rack0, static_cast<long long>(ever.size()) - in_rack0);
      at.new_row()
          .cell(aware ? "topology-aware" : "first-fit")
          .cell(adds)
          .cell(std::to_string(in_rack0) + "/" + std::to_string(ever.size()))
          .cell(worst)
          .cell(r.slo.attainment, 3);
    }
    at.print(std::cout);
    std::cout << "\nReading: both policies buy the same capacity, but "
                 "first-fit concentrates it — one rack event would now take "
                 "out the worst-rack column's replicas at once. Spreading "
                 "costs nothing here because the slots are fungible; it "
                 "only shows up the day the rack does.\n";
  }
  return 0;
}
