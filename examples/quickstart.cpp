// Quickstart: the 20-line tour of MoE-Inference-Bench.
//
//   1. Pick a model from the zoo.
//   2. Describe a serving scenario (hardware, precision, workload shape).
//   3. run() — get the paper's metrics (TTFT / ITL / e2e / throughput).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/scenario.h"

int main() {
  using namespace mib;

  core::Scenario s;
  s.model = "OLMoE-1B-7B";      // any name from models::all_models()
  s.device = "h100";            // "h100", "a100" or "cs3"
  s.n_devices = 1;              // defaults to TP over the node
  s.weight_dtype = DType::kFP16;
  s.batch = 16;
  s.input_tokens = 512;
  s.output_tokens = 512;

  const engine::RunMetrics m = s.run();

  Table t("OLMoE-1B-7B on one H100 — batch 16, 512/512 tokens");
  t.set_headers({"metric", "value"});
  t.new_row().cell("time to first token").cell(format_fixed(m.ttft_s * 1e3, 1) + " ms");
  t.new_row().cell("inter-token latency").cell(format_fixed(m.itl_s * 1e3, 3) + " ms");
  t.new_row().cell("end-to-end latency").cell(format_fixed(m.e2e_s, 2) + " s");
  t.new_row().cell("throughput").cell(format_fixed(m.throughput_tok_s, 0) + " tok/s");
  t.new_row().cell("per-device memory").cell(
      format_fixed(m.memory.total() / kGiB, 1) + " GiB");
  t.print(std::cout);

  // Sweep something — every knob is a struct field.
  std::cout << "\nFP8 weights instead: "
            << format_fixed(
                   s.with_dtype(DType::kFP8E4M3).run().throughput_tok_s, 0)
            << " tok/s\n";
  std::cout << "Four GPUs (TP4):    "
            << format_fixed(s.with_devices(4).run().throughput_tok_s, 0)
            << " tok/s\n";
  return 0;
}
