// Prune-and-measure: the full §6.2 workflow on a *functional* MoE layer —
// route a calibration batch, prune by activation counts (inter) and by
// channel magnitude (intra), measure the numerical damage, then price the
// pruned architecture on simulated H100s.
#include <iostream>

#include "common/table.h"
#include "core/scenario.h"
#include "moe/moe_layer.h"
#include "moe/pruning.h"

namespace {

/// Scaled-down OLMoE layer (geometry ratio preserved) so the functional
/// pass runs in milliseconds.
mib::moe::MoELayerConfig small_olmoe_layer() {
  mib::moe::MoELayerConfig c;
  c.hidden = 128;
  c.expert_ffn = 64;
  c.n_experts = 64;
  c.top_k = 8;
  return c;
}

double simulated_throughput(int experts, int ffn_scale_num,
                            int ffn_scale_den) {
  auto v = mib::models::olmoe_1b_7b();
  v.n_experts = experts;
  v.expert_ffn = v.expert_ffn * ffn_scale_num / ffn_scale_den;
  v.top_k = std::min(v.top_k, experts);
  mib::core::Scenario s;
  s.model_override = v;
  s.n_devices = 4;
  s.batch = 16;
  s.input_tokens = s.output_tokens = 2048;
  return s.run().throughput_tok_s;
}

}  // namespace

int main() {
  using namespace mib;

  std::cout << "Prune-and-measure on an OLMoE-style MoE layer\n\n";

  // Three bit-identical layers (same seed) so each pruning variant starts
  // from the same weights.
  auto fresh_layer = [] {
    Rng rng(123);
    return moe::MoELayer(small_olmoe_layer(), rng);
  };
  moe::MoELayer layer = fresh_layer();

  // Calibration pass: run tokens through the router to collect counts.
  Rng xr(7);
  const Tensor calib = Tensor::randn({512, 128}, xr);
  const Tensor reference = layer.forward_fused(calib);

  // --- inter-expert pruning at 50%, least-activated criterion ---
  moe::MoELayer inter = fresh_layer();
  inter.forward_fused(calib);  // collect activation counts for the criterion
  const auto inter_report = moe::inter_expert_prune(
      inter, 0.5, moe::ExpertPruneCriterion::kLeastActivated);
  const Tensor inter_out = inter.forward_fused(calib);

  // --- intra-expert pruning at 50%, magnitude criterion ---
  moe::MoELayer intra = fresh_layer();
  const auto intra_report = moe::intra_expert_prune(intra, 0.5);
  const Tensor intra_out = intra.forward_fused(calib);

  auto rel_err = [&](const Tensor& out) {
    Tensor diff = out;
    for (std::size_t i = 0; i < diff.size(); ++i) {
      diff.at(i) -= reference.at(i);
    }
    return frobenius_norm(diff) / frobenius_norm(reference);
  };

  Table t("functional damage vs simulated speedup (50% pruning)");
  t.set_headers({"variant", "experts", "ffn dim", "output rel-err",
                 "sim thr @4xH100 (tok/s)"});
  t.new_row()
      .cell("baseline")
      .cell(layer.config().n_experts)
      .cell(layer.config().expert_ffn)
      .cell(0.0, 3)
      .cell(simulated_throughput(64, 1, 1), 0);
  t.new_row()
      .cell("inter 50%")
      .cell(inter_report.experts_after)
      .cell(inter_report.ffn_after)
      .cell(rel_err(inter_out), 3)
      .cell(simulated_throughput(32, 1, 1), 0);
  t.new_row()
      .cell("intra 50%")
      .cell(intra_report.experts_after)
      .cell(intra_report.ffn_after)
      .cell(rel_err(intra_out), 3)
      .cell(simulated_throughput(64, 1, 2), 0);
  t.print(std::cout);

  std::cout << "\nRouter activation counts steered the inter-expert choice: "
               "the " << inter_report.removed_experts.size()
            << " least-selected experts were removed. Intra pruning kept "
               "the highest-magnitude half of every expert's channels.\n"
               "Reading: both transforms trade bounded output error for "
               "throughput — the §6.2 result, with the numerics verified "
               "on a real layer instead of asserted.\n";
  return 0;
}
