// Ablation: paged vs contiguous-reservation KV admission on a mixed-length
// trace (the PagedAttention argument, exercised on the functional
// PagedKvCache). Contiguous reservation must allocate max-context blocks up
// front; paging allocates lazily, admitting far more sequences.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "engine/kv_cache.h"
#include "engine/memory.h"
#include "hw/device.h"
#include "models/zoo.h"
#include "workload/generator.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_kvcache");

  const auto model = models::olmoe_1b_7b();
  const engine::MemoryModel mem(model, parallel::ParallelPlan{},
                                DType::kFP16, DType::kFP16, DType::kFP16);
  const auto dev = hw::h100_sxm5();
  const double kv_budget =
      dev.usable_mem() - mem.weight_bytes_per_device() -
      mem.activation_bytes(16384);
  const double bytes_per_token = mem.kv_bytes_per_token_per_device();
  const int block_tokens = 16;
  const auto total_blocks = static_cast<std::size_t>(
      kv_budget / (bytes_per_token * block_tokens));

  workload::TraceConfig tc;
  tc.n_requests = 4000;
  tc.input = {64, 2048, 1.2};
  tc.output = {64, 2048, 1.2};
  const auto trace = workload::generate_trace(tc);
  const int max_context = 4096;

  // Paged admission: blocks for actual tokens only.
  engine::PagedKvCache paged(total_blocks, block_tokens);
  int paged_admitted = 0;
  for (const auto& r : trace) {
    const int tokens = r.input_tokens + r.output_tokens;
    if (!paged.can_admit(tokens)) break;
    const int id = paged.add_sequence();
    paged.append_tokens(id, tokens);
    ++paged_admitted;
  }

  // Contiguous reservation: every sequence reserves max_context.
  engine::PagedKvCache contiguous(total_blocks, block_tokens);
  int contiguous_admitted = 0;
  double contiguous_tokens = 0;
  for (const auto& r : trace) {
    if (!contiguous.can_admit(max_context)) break;
    const int id = contiguous.add_sequence();
    contiguous.append_tokens(id, max_context);
    contiguous_tokens += r.input_tokens + r.output_tokens;
    ++contiguous_admitted;
  }

  Table t("OLMoE-1B-7B KV budget on one H100, mixed-length trace");
  t.set_headers({"policy", "sequences admitted", "block occupancy"});
  t.new_row()
      .cell("paged (vLLM)")
      .cell(paged_admitted)
      .cell(paged.occupancy(), 3);
  t.new_row()
      .cell("contiguous reservation")
      .cell(contiguous_admitted)
      .cell(contiguous_tokens /
                (static_cast<double>(contiguous.used_blocks()) * block_tokens),
            3);
  t.print(std::cout);

  std::cout << "\nReading: paged allocation admits "
            << format_fixed(static_cast<double>(paged_admitted) /
                                contiguous_admitted,
                            1)
            << "x more concurrent sequences at near-1.0 occupancy — the "
               "engine's wave-scheduling capacity (and therefore every "
               "large-batch figure) assumes this allocator.\n";
  return 0;
}
