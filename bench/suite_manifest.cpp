// Prints the experiment registry: every paper table/figure and the bench
// binary that regenerates it.
#include <iostream>

#include "common/table.h"
#include "core/experiments.h"

int main() {
  using namespace mib;
  std::cout << "MoE-Inference-Bench — experiment manifest\n";
  Table t;
  t.set_headers({"id", "what the paper shows", "workload", "bench target"});
  for (const auto& e : core::experiments()) {
    t.new_row().cell(e.id).cell(e.title).cell(e.workload).cell(
        e.bench_target);
  }
  t.print(std::cout);
  return 0;
}
