// Extension study (beyond the paper): MoE inference across GPU
// generations — A100, H100, H200, B200 — for the six LLMs. The paper
// benchmarks H100 and CS-3 only; this projects its methodology onto the
// neighboring parts using their public datasheet numbers, answering the
// question its conclusion raises ("efficient deployment of MoEs" across
// accelerators).
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "models/params.h"

namespace {

std::string cell(const std::string& model, const std::string& device) {
  mib::core::Scenario s;
  s.model = model;
  s.device = device;
  s.n_devices = 4;
  s.batch = 32;
  s.input_tokens = s.output_tokens = 1024;
  return mib::core::metric_cell([&] { return s.run(); },
                                mib::core::throughput_of);
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_hw");

  Table t("throughput (tok/s) — batch 32, in/out 1024, 4 devices TP4, fp16");
  t.set_headers({"model", "A100", "H100", "H200", "B200"});
  for (const auto& m : models::llm_models()) {
    t.new_row().cell(m.name);
    for (const char* dev : {"a100", "h100", "h200", "b200"}) {
      t.cell(cell(m.name, dev));
    }
  }
  t.print(std::cout);

  // Per-generation speedup on a bandwidth-bound decode workload should
  // track the HBM bandwidth ratio (2.04 / 3.35 / 4.8 / 8.0 TB/s).
  core::Scenario s;
  s.model = "OLMoE-1B-7B";
  s.n_devices = 1;
  s.batch = 8;
  s.input_tokens = s.output_tokens = 1024;
  std::cout << "\nOLMoE decode-bound speedups vs A100 (1 device, batch 8): ";
  double a100 = 0.0;
  for (const char* dev : {"a100", "h100", "h200", "b200"}) {
    s.device = dev;
    const double thr = s.run().throughput_tok_s;
    if (a100 == 0.0) a100 = thr;
    std::cout << dev << " " << format_fixed(thr / a100, 2) << "x  ";
  }
  std::cout << "\n(HBM bandwidth ratios: 1.00x / 1.64x / 2.35x / 3.92x — "
               "the residual gap is fixed per-step overhead.)\n";
  return 0;
}
