// Extension: partial-failure resilience. Tables:
//   (a) failure detection — the PR 1 fault-schedule oracle vs heartbeat +
//       circuit-breaker detection: detection lag, requests stuck behind the
//       lag, and what the p99 pays for realism;
//   (b) hedged requests under a straggling (degraded, NOT dead) replica:
//       the brownout is invisible to the failure detector, so hedging is
//       the only mitigation — off vs fixed-delay vs adaptive-p95 trigger;
//   (c) graceful drain — migrate in-flight KV to a peer vs
//       evacuate-and-recompute, swept over context depth to expose the
//       crossover (shallow contexts re-prefill cheaper than they ship,
//       deep contexts are far cheaper to move);
//   (d) deterministic chaos sweep — randomized fault/degradation/
//       maintenance schedules across many seeds, reporting the invariant
//       totals (conservation holds on every seed or the simulator throws);
//   (e) correlated vs independent failures at equal total fault-seconds —
//       a rack-level event opens a simultaneous suspicion burst and costs
//       more goodput than the same downtime spread over staggered
//       independent outages, plus the extra cost of the post-recovery
//       warm-up ramp;
//   (f) detector tuning — phi_threshold x heartbeat_interval frontier:
//       fast detection buys back goodput but trips false opens on replicas
//       that are merely slow;
//   (g) control-plane redundancy — one infallible router vs two routers
//       with a router outage and stale breaker views: stranded requests,
//       stale dispatches, view disagreement and what they cost;
//   (h) striped / overlapped drain — KV migration across 1-4 fabric lanes,
//       with and without decode continuing on the source during the copy;
//   (i) split-brain partition — router 1 + replica 2 cut off the majority
//       for 1s; the minority serves on its frozen view, impatient clients
//       re-enter at the majority (double dispatch), and the heal policy
//       decides who wins: fence-the-minority vs first-commit-wins;
//   (j) gray partitions — the same 1.0 partition-second reshaped as a
//       clean cut, an asymmetric cut (dispatches land, the response stream
//       is lost, finished decodes are orphaned) and a flapping cut
//       (open/closed on a duty cycle, one heal storm per episode);
//   (k) quorum self-fencing — the minority router without a strict
//       majority serves stale (PR 4) vs fences at the cut vs fences after
//       a grace window, re-homing fenced requests to the majority.
#include <algorithm>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "fleet/fleet.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

namespace {

using namespace mib;

fleet::FleetConfig base_config(int replicas) {
  core::Scenario s;
  s.model = "OLMoE-1B-7B";
  fleet::FleetConfig fc;
  fc.engine = s.engine_config();
  fc.n_replicas = replicas;
  fc.replica.max_batch = 32;
  fc.slo.ttft_s = 2.0;
  fc.slo.itl_s = 0.05;
  fc.seed = 7;
  return fc;
}

std::vector<fleet::FleetRequest> mixed_trace(int n, double qps,
                                             std::uint64_t seed,
                                             int in_lo = 64, int in_hi = 1024,
                                             int out_lo = 32,
                                             int out_hi = 256) {
  workload::TraceConfig tc;
  tc.n_requests = n;
  tc.input = {in_lo, in_hi, 1.2};
  tc.output = {out_lo, out_hi, 1.2};
  tc.seed = seed;
  auto trace = fleet::as_fleet_trace(workload::generate_trace(tc));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed ^ 0xA221;
  fleet::stamp_arrivals(ac, trace);
  return trace;
}

}  // namespace

int main() {
  core::print_banner(std::cout, "extra_chaos");

  // --- (a) oracle vs heartbeat detection on a mid-run replica failure ---
  {
    Table t("(a) Failure detection — replica 0 of 3 dies 1s-4s mid-run; "
            "fault-schedule oracle vs phi-accrual heartbeats + breaker");
    t.set_headers({"detector", "detect lag (s)", "circuit opens", "retries",
                   "lost", "p50 TTFT (s)", "p99 TTFT (s)", "attainment"});
    for (bool monitor : {false, true}) {
      auto cfg = base_config(3);
      cfg.health.enabled = monitor;
      cfg.faults.push_back(fleet::FaultWindow{0, 1.0, 4.0});
      cfg.retry.jitter = 1.0;
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(256, 48.0, 11));
      t.new_row()
          .cell(monitor ? "heartbeat+breaker" : "oracle (PR 1)")
          .cell(monitor ? r.detection_lag_s.p50() : 0.0, 3)
          .cell(r.circuit_opens)
          .cell(r.retries)
          .cell(r.lost)
          .cell(r.ttft_s.p50(), 2)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_detection");
  }

  // --- (b) hedging vs a straggler the detector cannot see ---
  {
    Table t("(b) Hedged requests — replica 0 of 3 browns out to 8% "
            "compute/bandwidth for 0.5s-10s (still heartbeating: no breaker "
            "trips); straggling requests re-issued to a second replica");
    t.set_headers({"hedge", "issued", "won", "cancelled", "p50 TTFT (s)",
                   "p95 TTFT (s)", "p99 TTFT (s)", "attainment"});
    struct Mode {
      const char* name;
      bool enabled;
      double delay_s;  // 0 = adaptive p95
    };
    for (const Mode m : {Mode{"off", false, 0.0},
                         Mode{"fixed 100ms", true, 0.1},
                         Mode{"adaptive p95", true, 0.0}}) {
      auto cfg = base_config(3);
      cfg.degradations.push_back(
          fleet::DegradationWindow{0, 0.5, 10.0, {0.08, 0.08, 0.08}});
      cfg.hedge.enabled = m.enabled;
      cfg.hedge.delay_s = m.delay_s;
      const auto r = fleet::FleetSimulator(cfg).run(
          mixed_trace(256, 40.0, 13, 256, 2048, 64, 128));
      t.new_row()
          .cell(m.name)
          .cell(r.hedges_issued)
          .cell(r.hedges_won)
          .cell(r.hedges_cancelled)
          .cell(r.ttft_s.p50(), 2)
          .cell(r.ttft_s.p95(), 2)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_hedging");
  }

  // --- (c) drain: migrate KV vs evacuate-and-recompute, by context depth ---
  {
    Table t("(c) Graceful drain — replica 0 of 2 enters maintenance at "
            "t=2s; in-flight KV migrated over IB NDR400 vs recomputed; "
            "sweep over prompt depth");
    t.set_headers({"prompt tokens", "mode", "moved seqs", "KV tokens moved",
                   "mean xfer (s)", "p95 e2e (s)", "makespan (s)"});
    for (int depth : {128, 512, 2048, 8192}) {
      for (bool migrate : {false, true}) {
        auto cfg = base_config(2);
        cfg.maintenance.push_back(fleet::MaintenanceWindow{0, 2.0, 6.0});
        cfg.migration.migrate_kv = migrate;
        // Long decodes keep KV resident when the drain hits.
        const auto trace =
            mixed_trace(96, 24.0, 17, depth, depth + 1, 192, 320);
        const auto r = fleet::FleetSimulator(cfg).run(trace);
        t.new_row()
            .cell(depth)
            .cell(migrate ? "migrate" : "recompute")
            .cell(migrate ? r.migrations : r.drain_evacuations)
            .cell(r.migrated_kv_tokens)
            .cell(r.migration_s.mean(), 4)
            .cell(r.e2e_s.p95(), 2)
            .cell(r.makespan_s, 2);
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_drain");
  }

  // --- (d) chaos sweep: invariants across randomized schedules ---
  {
    const int kSeeds = 50;
    long long completed = 0, rejected = 0, expired = 0, lost = 0;
    long long retries = 0, opens = 0, false_opens = 0, hedges = 0,
              migrations = 0;
    long long submitted = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      Rng rng(seed);
      auto cfg = base_config(3);
      cfg.seed = seed;
      cfg.replica.max_batch = 8;
      cfg.admission.queue_capacity = 16;
      if (rng.bernoulli(0.4)) cfg.admission.deadline_s = rng.uniform(0.3, 1.0);
      cfg.retry.max_retries = static_cast<int>(rng.uniform_index(4));
      cfg.retry.jitter = rng.uniform(0.0, 1.0);
      cfg.hedge.enabled = rng.bernoulli(0.5);
      cfg.hedge.delay_s = rng.bernoulli(0.5) ? rng.uniform(0.05, 0.2) : 0.0;
      cfg.migration.migrate_kv = rng.bernoulli(0.5);
      for (int i = 0; i < 3; ++i) {
        double tw = rng.uniform(0.0, 1.0);
        if (rng.bernoulli(0.6)) {
          const double d = rng.uniform(0.05, 0.5);
          cfg.faults.push_back(fleet::FaultWindow{i, tw, tw + d});
          tw += d + rng.uniform(0.2, 0.5);
        }
        if (rng.bernoulli(0.5)) {
          cfg.degradations.push_back(fleet::DegradationWindow{
              i, tw, tw + rng.uniform(0.1, 0.6),
              {rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0),
               rng.uniform(0.3, 1.0)}});
        }
        if (rng.bernoulli(0.3)) {
          const double m = rng.uniform(0.3, 1.0);
          cfg.maintenance.push_back(
              fleet::MaintenanceWindow{i, m, m + rng.uniform(0.2, 0.5)});
        }
      }
      const auto r = fleet::FleetSimulator(cfg).run(
          mixed_trace(32 + static_cast<int>(rng.uniform_index(33)),
                      rng.uniform(80.0, 240.0), seed ^ 0xC4A05ull, 64, 512,
                      24, 96));
      submitted += r.submitted;
      completed += r.completed;
      rejected += r.rejected;
      expired += r.expired;
      lost += r.lost;
      retries += r.retries;
      opens += r.circuit_opens;
      false_opens += r.false_circuit_opens;
      hedges += r.hedges_issued;
      migrations += r.migrations;
    }
    Table t("(d) Chaos sweep — " + std::to_string(kSeeds) +
            " randomized fault/degradation/maintenance schedules; request "
            "conservation checked on every seed");
    t.set_headers({"submitted", "completed", "rejected", "expired", "lost",
                   "retries", "circuit opens", "false opens", "hedges",
                   "migrations"});
    t.new_row()
        .cell(submitted)
        .cell(completed)
        .cell(rejected)
        .cell(expired)
        .cell(lost)
        .cell(retries)
        .cell(opens)
        .cell(false_opens)
        .cell(hedges)
        .cell(migrations);
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_sweep");
    std::cout << "  conservation: completed+rejected+expired+lost == "
                 "submitted held on all "
              << kSeeds << " seeds\n";
  }

  // --- (e) correlated rack failure vs independent outages ---
  {
    Table t("(e) Correlated failures — 4 replicas in 2 racks; one rack-level "
            "event (2 x 0.8s at once) vs the same fault-seconds as two "
            "staggered independent outages; warm-up ramp on recovery");
    t.set_headers({"schedule", "bursts", "largest burst", "warm-ups",
                   "retries", "lost", "mean e2e (s)", "p99 TTFT (s)",
                   "attainment"});
    fleet::TopologyConfig topo;
    topo.domains = {fleet::DomainSpec{"zone", ""},
                    fleet::DomainSpec{"rack0", "zone"},
                    fleet::DomainSpec{"rack1", "zone"},
                    fleet::DomainSpec{"n0", "rack0"},
                    fleet::DomainSpec{"n1", "rack0"},
                    fleet::DomainSpec{"n2", "rack1"},
                    fleet::DomainSpec{"n3", "rack1"}};
    topo.replica_domain = {"n0", "n1", "n2", "n3"};
    struct Row {
      const char* name;
      bool correlated;
      bool warmup;
    };
    for (const Row row : {Row{"independent x2 (staggered)", false, false},
                          Row{"rack0 event (correlated)", true, false},
                          Row{"rack0 event + warm-up", true, true}}) {
      auto cfg = base_config(4);
      cfg.slo.ttft_s = 0.5;
      cfg.retry.max_retries = 8;
      if (row.correlated) {
        cfg.topology = topo;
        cfg.domain_faults.push_back(fleet::DomainFault{"rack0", 1.0, 1.8});
      } else {
        cfg.faults.push_back(fleet::FaultWindow{0, 1.0, 1.8});
        cfg.faults.push_back(fleet::FaultWindow{1, 2.6, 3.4});
      }
      cfg.warmup.enabled = row.warmup;
      cfg.warmup.duration_s = 0.5;
      cfg.warmup.initial_scale = 0.3;
      // Load must press against capacity for the cliff to show: at 120 qps
      // two of four replicas cannot carry the offered load, so the
      // correlated rack loss queues everything while the staggered
      // independent outages (75% capacity, twice as long) barely dent it.
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(320, 120.0, 19));
      t.new_row()
          .cell(row.name)
          .cell(r.suspicion_bursts)
          .cell(r.largest_suspicion_burst)
          .cell(r.warmup_recoveries)
          .cell(r.retries)
          .cell(r.lost)
          .cell(r.e2e_s.mean(), 3)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_correlated");
  }

  // --- (f) detector tuning: phi threshold x heartbeat cadence ---
  {
    Table t("(f) Detector tuning — replica 0 of 3 dies 1s-3s while replica "
            "1 browns out to 30% (stretched heartbeats, still alive); "
            "detection lag vs false opens across the phi x heartbeat grid");
    t.set_headers({"phi", "heartbeat (s)", "detect lag p50 (s)",
                   "circuit opens", "false opens", "lost", "attainment"});
    for (const double phi : {1.0, 3.0, 8.0}) {
      for (const double hb : {0.01, 0.02, 0.05}) {
        auto cfg = base_config(3);
        cfg.slo.ttft_s = 0.5;
        cfg.retry.max_retries = 8;
        cfg.health.phi_threshold = phi;
        cfg.health.heartbeat_interval_s = hb;
        cfg.faults.push_back(fleet::FaultWindow{0, 1.0, 3.0});
        cfg.degradations.push_back(
            fleet::DegradationWindow{1, 0.5, 3.5, {0.3, 0.3, 0.3}});
        const auto r =
            fleet::FleetSimulator(cfg).run(mixed_trace(256, 56.0, 23));
        t.new_row()
            .cell(phi, 1)
            .cell(hb, 3)
            .cell(r.detection_lag_s.p50(), 3)
            .cell(r.circuit_opens)
            .cell(r.false_circuit_opens)
            .cell(r.lost)
            .cell(r.slo.attainment, 3);
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_detector_tuning");
  }

  // --- (g) control-plane redundancy: router outage + stale views ---
  {
    Table t("(g) Control plane — replica 0 of 3 dies 1s-2s; router outage "
            "0.5s-1.5s; one infallible router vs two routers (fail-over) "
            "vs two routers syncing breaker views every 200ms");
    t.set_headers({"front end", "stranded", "failovers", "stale dispatches",
                   "view disagree (s)", "retries", "p99 TTFT (s)",
                   "attainment"});
    struct Mode {
      const char* name;
      int routers;
      double sync_s;
      bool router_fault;
    };
    for (const Mode m :
         {Mode{"1 router, infallible (PR 2)", 1, 0.0, false},
          Mode{"2 routers, router 0 dies", 2, 0.0, true},
          Mode{"2 routers + 200ms view sync", 2, 0.2, true}}) {
      auto cfg = base_config(3);
      cfg.slo.ttft_s = 0.5;
      cfg.retry.max_retries = 8;
      cfg.faults.push_back(fleet::FaultWindow{0, 1.0, 2.0});
      cfg.control.routers = m.routers;
      cfg.control.view_sync_interval_s = m.sync_s;
      if (m.router_fault) {
        cfg.control.router_faults.push_back(
            fleet::RouterFaultWindow{0, 0.5, 1.5});
      }
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(320, 72.0, 29));
      long long failovers = 0;
      for (const auto& rec : r.requests) {
        if (rec.router_failover) ++failovers;
      }
      t.new_row()
          .cell(m.name)
          .cell(r.router_stranded)
          .cell(failovers)
          .cell(r.stale_dispatches)
          .cell(r.view_disagreement_s, 3)
          .cell(r.retries)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_control_plane");
  }

  // --- (h) striped / overlapped drain ---
  {
    Table t("(h) Drain acceleration — replica 0 of 2 drains 2k-token "
            "contexts at t=2s; KV striped over 1-4 fabric lanes, decode "
            "overlapped with the copy or frozen (PR 2)");
    t.set_headers({"lanes", "decode during copy", "moved seqs",
                   "mean xfer (s)", "overlap tokens", "p95 e2e (s)",
                   "makespan (s)"});
    for (const int lanes : {1, 2, 4}) {
      for (const bool overlap : {false, true}) {
        auto cfg = base_config(2);
        cfg.maintenance.push_back(fleet::MaintenanceWindow{0, 2.0, 6.0});
        cfg.migration.migrate_kv = true;
        cfg.migration.stripe_links = lanes;
        cfg.migration.overlap_decode = overlap;
        const auto trace = mixed_trace(96, 24.0, 17, 2048, 2049, 192, 320);
        const auto r = fleet::FleetSimulator(cfg).run(trace);
        t.new_row()
            .cell(lanes)
            .cell(overlap ? "overlapped" : "frozen")
            .cell(r.migrations)
            .cell(r.migration_s.mean(), 4)
            .cell(r.overlap_decode_tokens)
            .cell(r.e2e_s.p95(), 2)
            .cell(r.makespan_s, 2);
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_drain_striping");
  }

  // --- (i) split-brain partition: heal policies head to head ---
  {
    Table t("(i) Split-brain partition — 2 routers, 3 replicas; router 1 "
            "and replica 2 partitioned off 0.2s-1.2s; clients give up on "
            "the silent minority after 10ms and retry at the majority");
    t.set_headers({"partition / heal", "double disp", "dup decode (s)",
                   "fenced", "heal lag (s)", "autoscale conflicts",
                   "p99 TTFT (s)", "attainment"});
    struct Mode {
      const char* name;
      bool enabled;
      fleet::HealPolicy heal;
    };
    for (const Mode m :
         {Mode{"no partition (PR 3)", false, fleet::HealPolicy::kFenceMinority},
          Mode{"fence-the-minority", true, fleet::HealPolicy::kFenceMinority},
          Mode{"first-commit-wins", true,
               fleet::HealPolicy::kFirstCommitWins}}) {
      auto cfg = base_config(3);
      cfg.replica.max_batch = 8;
      cfg.retry.max_retries = 12;
      cfg.control.routers = 2;
      if (m.enabled) {
        cfg.control.partition.enabled = true;
        cfg.control.partition.heal = m.heal;
        cfg.control.partition.client_retry_s = 0.01;
        fleet::PartitionWindow w;
        w.start_s = 0.2;
        w.end_s = 1.2;
        w.minority_routers = {1};
        w.minority_replicas = {2};
        cfg.control.partition.windows.push_back(w);
      }
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(256, 96.0, 31));
      t.new_row()
          .cell(m.name)
          .cell(r.double_dispatches)
          .cell(r.duplicate_decode_s, 4)
          .cell(r.fenced_requests)
          .cell(r.partition_heal_lag_s.count() > 0
                    ? r.partition_heal_lag_s.max()
                    : 0.0,
                4)
          .cell(r.autoscaler_conflicts)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_partition");
  }

  // --- (j) gray cuts: shape of the partition at equal partition-seconds ---
  {
    Table t("(j) Gray partitions — same 1.0 partition-second on router 1 + "
            "replica 2, three shapes: one clean cut, an asymmetric cut "
            "(dispatches land, replies are lost), and a flapping cut "
            "(0.25s period, 50% duty over 2s); clients retry with "
            "jittered exponential backoff in every row");
    t.set_headers({"cut shape", "double disp", "dup decode (s)", "orphaned",
                   "lost decode (s)", "resends", "heal edges", "p99 TTFT (s)",
                   "goodput (qps)"});
    struct Shape {
      const char* name;
      bool asymmetric;
      bool flapping;
    };
    for (const Shape m : {Shape{"clean cut", false, false},
                          Shape{"asymmetric", true, false},
                          Shape{"flapping", false, true}}) {
      auto cfg = base_config(3);
      cfg.replica.max_batch = 8;
      cfg.retry.max_retries = 12;
      cfg.control.routers = 2;
      auto& p = cfg.control.partition;
      p.enabled = true;
      p.client_retry_s = 0.01;
      p.max_client_retries = 3;
      p.retry_multiplier = 2.0;
      p.retry_jitter = 0.5;
      fleet::PartitionWindow w;
      w.start_s = 0.2;
      w.end_s = 1.2;
      w.minority_routers = {1};
      w.minority_replicas = {2};
      if (m.asymmetric) w.open_to_minority = true;
      if (m.flapping) {
        w.end_s = 2.2;  // 2s span x 50% duty = the same 1.0s of cut
        w.flap_period_s = 0.25;
        w.flap_duty = 0.5;
      }
      p.windows.push_back(w);
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(256, 96.0, 31));
      t.new_row()
          .cell(m.name)
          .cell(r.double_dispatches)
          .cell(r.duplicate_decode_s, 4)
          .cell(r.orphaned_completions)
          .cell(r.lost_completion_s, 4)
          .cell(r.client_resends)
          .cell(r.partition_flaps)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.goodput_qps, 2);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_gray_shapes");
  }

  // --- (k) quorum policy: serve stale vs self-fencing the minority ---
  {
    Table t("(k) Quorum self-fencing — router 1 + replica 2 cut off "
            "0.2s-1.2s; the minority router has no strict majority, so it "
            "may serve on its stale view (PR 4), fence itself the instant "
            "the cut lands, or fence after a 50ms grace window");
    t.set_headers({"quorum policy", "quorum fenced", "double disp",
                   "dup decode (s)", "heal fenced", "p99 TTFT (s)",
                   "attainment", "goodput (qps)"});
    for (const auto q : {fleet::QuorumPolicy::kServeStale,
                         fleet::QuorumPolicy::kFenceAtCut,
                         fleet::QuorumPolicy::kFenceAfterGrace}) {
      auto cfg = base_config(3);
      cfg.replica.max_batch = 8;
      cfg.retry.max_retries = 12;
      cfg.control.routers = 2;
      auto& p = cfg.control.partition;
      p.enabled = true;
      p.client_retry_s = 0.01;
      p.quorum = q;
      p.quorum_grace_s = 0.05;
      fleet::PartitionWindow w;
      w.start_s = 0.2;
      w.end_s = 1.2;
      w.minority_routers = {1};
      w.minority_replicas = {2};
      p.windows.push_back(w);
      const auto r =
          fleet::FleetSimulator(cfg).run(mixed_trace(256, 96.0, 31));
      t.new_row()
          .cell(fleet::quorum_policy_name(q))
          .cell(r.quorum_fenced)
          .cell(r.double_dispatches)
          .cell(r.duplicate_decode_s, 4)
          .cell(r.fenced_requests)
          .cell(r.ttft_s.p99(), 2)
          .cell(r.slo.attainment, 3)
          .cell(r.slo.goodput_qps, 2);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_chaos_quorum");
  }

  std::cout
      << "\nReading: (a) realistic detection pays a measurable lag and a "
         "dented tail vs the oracle, which is exactly the cost PR 1 could "
         "not see; (b) a browned-out replica never trips the breaker, so "
         "only hedging rescues the p99 — the adaptive trigger issues few "
         "hedges yet collapses the tail; (c) migrating KV beats recompute "
         "at every depth with decode progress at stake — serial decode is "
         "far slower to redo than KV is to ship over NDR400 — and the "
         "margin grows with resident KV (the crossover sits below the "
         "shallowest contexts here; recompute only competes for sequences "
         "with no decode progress); (d) the chaos sweep holds the "
         "conservation and leak invariants on every seed; (e) the same "
         "fault-seconds hurt more when correlated — losing a whole rack at "
         "once halves capacity in one instant (the detector shows it as one "
         "suspicion burst covering the rack) and the warm-up ramp stretches "
         "the pain past the recovery edge — it surfaces in mean e2e, not "
         "attainment, because the requests it slows are backlog that "
         "already blew the TTFT budget; (f) detection is a frontier, not "
         "a knob with a right answer — low phi x fast heartbeats detects in "
         "tens of ms but declares the browned-out replica dead (false "
         "opens), high phi x slow heartbeats never false-fires but strands "
         "requests behind seconds of lag; (g) router redundancy is not "
         "free: fail-over strands requests for the client-detection lag and "
         "stale views mis-dispatch onto a dead replica until the next sync, "
         "both visible in the tail; (h) striping cuts the per-sequence "
         "transfer near-linearly and overlapping decode with the copy hides "
         "the remaining latency — the drained replica keeps earning tokens "
         "while its KV ships; (i) a partition is worse than an outage of "
         "the same span — the minority keeps accepting work it cannot "
         "finish within the client's patience, so the fleet pays twice for "
         "every double dispatch (duplicate decode seconds that goodput "
         "never credits) and the two sides' autoscalers pull in different "
         "directions; fencing drains the duplicates the instant the cut "
         "heals, while first-commit-wins lets them race on — cheaper when "
         "the minority copy is about to finish, pure waste when it is "
         "not; (j) the shape of a cut matters as much as its length — an "
         "asymmetric cut is crueler than a clean one because the minority "
         "still burns decode on requests whose finished responses never "
         "reach the client (orphaned completions, lost decode seconds, and "
         "a client resend for each), while a flapping cut re-pays the heal "
         "cost every episode and keeps re-arming the client backoff; (k) "
         "self-fencing trades availability for waste — serve-stale burns "
         "the most duplicate decode, fence-at-cut eliminates it by "
         "re-homing everything to the majority at detection time, and "
         "fence-after-grace splits the difference by letting short blips "
         "ride while long cuts fence.\n";
  return 0;
}
