// Fig. 9: throughput vs number of active experts for each (FFN dim,
// experts) pair — Mixtral-8x7B skeleton, batch 16, in/out 2048, 4x H100.
#include <iostream>

#include "common/table.h"
#include "hyperparam_common.h"

int main() {
  using namespace mib;
  using namespace mib::benchutil;
  core::print_banner(std::cout, "fig09");

  for (int experts : expert_counts()) {
    Table t("experts = " + std::to_string(experts) +
            " — throughput (tok/s) vs active experts");
    std::vector<std::string> headers = {"FFN \\ active"};
    for (int k : active_counts()) headers.push_back(std::to_string(k));
    t.set_headers(headers);
    for (int ffn : ffn_dims()) {
      t.new_row().cell("ffn=" + std::to_string(ffn));
      for (int k : active_counts()) t.cell(cell(ffn, experts, k));
    }
    t.print(std::cout);
    core::maybe_export_csv(t, std::string("fig09_experts") + std::to_string(experts));
  }

  auto gap = [&](int experts, int ffn) {
    const double t1 = variant(ffn, experts, 1).run().throughput_tok_s;
    const double t8 = variant(ffn, experts, 8).run().throughput_tok_s;
    return 100.0 * (t1 / t8 - 1.0);
  };
  std::cout << "\nSingle-active vs 8-active advantage: 64 experts @ FFN "
               "3584: "
            << format_fixed(gap(64, 3584), 0)
            << "% (paper band: 50-80%); 8 experts @ FFN 14336: "
            << format_fixed(gap(8, 14336), 0)
            << "%; 8 experts @ FFN 1792: " << format_fixed(gap(8, 1792), 0)
            << "% (gap widens with FFN dim, as in §5.4).\n";
  return 0;
}
