// Extension study: disaggregated prefill/decode serving for the paper's
// LLMs — does splitting a 4-GPU fleet into prefill and decode pools beat
// running it co-located? Reports the KV-transfer tax (which MLA's
// compressed cache nearly eliminates) and the pool-split trade-off.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/disagg.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_disagg");

  Table t("4 GPUs total: 2 prefill + 2 decode (IB transfer) vs TP4 "
          "co-located — batch 32, in/out 1024, fp16");
  t.set_headers({"model", "disagg thr (tok/s)", "co-located thr",
                 "KV transfer (ms)", "disagg ITL (ms)", "co-located ITL"});
  for (const char* name :
       {"OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B", "DeepSeek-V2-Lite",
        "Qwen3-30B-A3B"}) {
    core::Scenario s;
    s.model = name;
    engine::DisaggSimulator sim(s.engine_config(),
                                engine::DisaggConfig{2, 2});
    const auto m = sim.run(32, 1024, 1024);
    t.new_row()
        .cell(name)
        .cell(m.throughput_tok_s, 0)
        .cell(m.colocated_throughput_tok_s, 0)
        .cell(m.kv_transfer_s * 1e3, 1)
        .cell(m.itl_s * 1e3, 3)
        .cell(m.colocated_itl_s * 1e3, 3);
  }
  t.print(std::cout);

  std::cout << "\nReading: for single-tenant uniform batches co-location "
               "wins raw throughput (all 4 GPUs work on every phase), and "
               "the KV transfer taxes MHA models far more than MLA ones "
               "(DeepSeek's compressed cache ships ~7x fewer bytes). "
               "Disaggregation's value is isolation — ITL on the decode "
               "pool is immune to prefill interference — which the "
               "uniform-batch setting cannot show; see ablate_scheduler "
               "for the mixed-load case.\n";
  return 0;
}
