// Fig. 15: expert activation-frequency heatmaps of the DeepSeek-VL2 family
// vs MolmoE-1B on an MME-scale token stream, produced by the *functional*
// router. DeepSeek's aux-loss-balanced routers activate near-uniformly
// (paper: peak ~290K); MolmoE's unbalanced router concentrates (peak ~1M).
#include <cstdint>
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "models/zoo.h"
#include "workload/activation_study.h"

namespace {

// MME has ~2,370 image-question pairs; with vision patches plus text this
// is roughly 1.4M routed tokens end to end. We drive a scaled trace and
// report counts scaled back to MME size so peaks are comparable with the
// paper's colorbars.
constexpr int kSimTokens = 20000;
constexpr double kMmeTokens = 2.0e6;

void render(const mib::workload::ActivationStudy& study,
            const std::string& name) {
  const double scale = kMmeTokens / kSimTokens;
  const auto& hm = study.heatmap();

  // Compact heatmap: per layer, a character ramp over expert counts.
  std::cout << name << " — activation heatmap (rows = layers, cols = "
            << hm[0].size() << " experts; ramp . : - = + * # @)\n";
  std::uint64_t peak = study.peak();
  const char* ramp = ".:-=+*#@";
  for (std::size_t l = 0; l < hm.size(); ++l) {
    std::cout << "  L" << (l < 10 ? "0" : "") << l << " ";
    for (auto c : hm[l]) {
      const double frac =
          peak ? static_cast<double>(c) / static_cast<double>(peak) : 0.0;
      const int idx = std::min(7, static_cast<int>(frac * 8.0));
      std::cout << ramp[idx];
    }
    std::cout << '\n';
  }

  mib::Table t;
  t.set_headers({"metric", "value"});
  t.new_row().cell("peak expert count (MME-scaled)").cell(
      mib::format_fixed(static_cast<double>(peak) * scale / 1e3, 0) + "K");
  t.new_row().cell("mean CV of per-layer loads").cell(study.mean_cv(), 3);
  t.new_row().cell("mean max/mean load factor").cell(study.mean_imbalance(),
                                                     2);
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig15");

  // DeepSeek-VL2 family: aux-loss-balanced routers -> zero logit prior.
  for (const char* name :
       {"DeepSeek-VL2-Tiny", "DeepSeek-VL2-Small", "DeepSeek-VL2"}) {
    workload::ActivationStudy study(models::model_by_name(name), {});
    study.run(kSimTokens);
    render(study, name);
  }

  // MolmoE-1B: trained without the balance loss -> skewed prior.
  workload::ActivationStudyConfig skew;
  skew.router_skew = 0.45;
  workload::ActivationStudy molmoe(models::molmoe_1b(), skew);
  molmoe.run(kSimTokens);
  render(molmoe, "MolmoE-1B");

  std::cout << "Paper comparison (§8.3): DeepSeek-VL2 models peak near 290K "
               "activations with near-uniform maps; MolmoE-1B reaches ~1M "
               "on a few hot experts — activation frequency alone is not a "
               "dependable importance metric for balanced models.\n";
  return 0;
}
