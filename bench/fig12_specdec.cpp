// Fig. 12: speculative decoding with target Qwen3-30B-A3B and four Qwen3
// draft models (0.6B / 1.7B / 4B / 8B): throughput vs input length and vs
// the number of speculated draft tokens. Batch 16 (H100).
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "moe/transformer.h"
#include "specdec/specdec.h"

namespace {

mib::specdec::SpecDecSimulator make_sim(const mib::models::ModelConfig& draft,
                                        int k) {
  // fp8 weights for both models (Qwen3 fp8 checkpoints are standard) so
  // target + draft + both KV caches share one 80 GB H100.
  mib::specdec::SpecDecConfig c;
  mib::core::Scenario t;
  t.model = "Qwen3-30B-A3B";
  t.weight_dtype = mib::DType::kFP8E4M3;
  c.target = t.engine_config();
  mib::core::Scenario d;
  d.model_override = draft;
  d.weight_dtype = mib::DType::kFP8E4M3;
  c.draft = d.engine_config();
  c.draft_tokens = k;
  return mib::specdec::SpecDecSimulator(c);
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig12");

  const std::vector<models::ModelConfig> drafts = {
      models::qwen3_0_6b(), models::qwen3_1_7b(), models::qwen3_4b(),
      models::qwen3_8b()};

  {
    // Generation throughput (decode tokens/s) — the quantity that falls
    // with input length as the KV context grows; end-to-end throughput per
    // eq. (2) would count the longer prompt as processed tokens and mask
    // the trend.
    Table t("generated tokens/s vs input length — 3 draft tokens, batch 16, "
            "output 1024");
    std::vector<std::string> headers = {"draft \\ input len"};
    for (int len : {128, 256, 512, 1024, 2048}) {
      headers.push_back(std::to_string(len));
    }
    t.set_headers(headers);
    for (const auto& d : drafts) {
      t.new_row().cell(d.name);
      const auto sim = make_sim(d, 3);
      for (int len : {128, 256, 512, 1024, 2048}) {
        t.cell(sim.run(16, len, 1024).decode_tok_s, 0);
      }
    }
    t.print(std::cout);
  }

  {
    Table t("throughput (tok/s) vs #draft tokens — input/output 1024, "
            "batch 16");
    std::vector<std::string> headers = {"draft \\ k"};
    for (int k : {1, 2, 3, 4, 6, 8}) headers.push_back(std::to_string(k));
    t.set_headers(headers);
    for (const auto& d : drafts) {
      t.new_row().cell(d.name);
      for (int k : {1, 2, 3, 4, 6, 8}) {
        t.cell(make_sim(d, k).run(16, 1024, 1024).throughput_tok_s, 0);
      }
    }
    t.print(std::cout);
  }

  {
    Table t("acceptance and speedup — input/output 1024, k=3, batch 16");
    t.set_headers({"draft", "alpha", "tokens/cycle", "cycle (ms)",
                   "speedup vs plain"});
    for (const auto& d : drafts) {
      const auto m = make_sim(d, 3).run(16, 1024, 1024);
      t.new_row()
          .cell(d.name)
          .cell(m.alpha, 2)
          .cell(m.tokens_per_cycle, 2)
          .cell(m.cycle_s * 1e3, 2)
          .cell(m.speedup_vs_plain, 2);
    }
    t.print(std::cout);
  }

  // Functional ground truth: speculative decoding on the executable CPU
  // transformer is *lossless* — identical tokens to plain decoding, fewer
  // target passes.
  {
    moe::TransformerConfig tc;
    tc.vocab = 64;
    tc.n_layers = 3;
    tc.hidden = 48;
    tc.n_heads = 4;
    tc.n_kv_heads = 4;
    tc.head_dim = 12;
    tc.n_experts = 4;
    tc.top_k = 2;
    tc.expert_ffn = 64;
    const moe::Transformer target(tc, 7);
    // Draft = the target with int8-quantized experts (a compressed twin,
    // as real draft models are distilled versions of their targets).
    moe::Transformer draft(tc, 7);
    for (int l = 0; l < tc.n_layers; ++l) {
      auto& layer = draft.moe_layer(l);
      for (int e = 0; e < layer.n_experts(); ++e) {
        layer.expert(e).quantize_weights(DType::kINT8,
                                         quant::Granularity::kPerRow);
      }
    }

    auto plain_session = target.new_session();
    const auto plain = target.generate({3, 1, 4}, 32, plain_session);
    moe::SpeculativeStats stats;
    const auto spec =
        moe::speculative_generate(target, draft, {3, 1, 4}, 32, 3, &stats);
    std::cout << "\nFunctional check (CPU transformer, k=3): output "
              << (spec == plain ? "IDENTICAL" : "DIFFERS")
              << " to plain decoding; acceptance "
              << format_fixed(100.0 * stats.acceptance_rate(), 0)
              << "%, target passes " << stats.target_passes
              << " vs 32 for plain decode.\n";
  }

  std::cout << "\nPaper comparison (§6.3): Qwen3-1.7B is the best draft; "
               "0.6B trails by 25-35%; throughput declines with input "
               "length and with deeper speculation.\n";
  return 0;
}
