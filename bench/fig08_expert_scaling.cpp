// Fig. 8: throughput vs total expert count for each (FFN dim, active) pair
// — Mixtral-8x7B skeleton, batch 16, in/out 2048, 4x H100. OOM rows mark
// the paper's missing data points.
#include <iostream>

#include "common/table.h"
#include "hyperparam_common.h"

int main() {
  using namespace mib;
  using namespace mib::benchutil;
  core::print_banner(std::cout, "fig08");

  for (int ffn : ffn_dims()) {
    Table t("FFN dim = " + std::to_string(ffn) +
            " — throughput (tok/s) vs #experts");
    std::vector<std::string> headers = {"active \\ experts"};
    for (int e : expert_counts()) headers.push_back(std::to_string(e));
    t.set_headers(headers);
    for (int k : active_counts()) {
      t.new_row().cell("k=" + std::to_string(k));
      for (int e : expert_counts()) t.cell(cell(ffn, e, k));
    }
    t.print(std::cout);
    core::maybe_export_csv(t, std::string("fig08_ffn") + std::to_string(ffn));
  }

  std::cout << "\nInsight check: small FFN dims tolerate (or mildly benefit "
               "from) more experts; large FFN dims hit the OOM boundary at "
               "high expert counts — exactly the paper's missing points.\n";
  return 0;
}
