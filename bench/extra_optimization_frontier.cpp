// Extension study (beyond the paper): the quality-vs-throughput frontier
// of the §6 optimizations combined — precision x pruning for Mixtral-8x7B.
// The paper reports speed effects (Figs. 10/11) and baseline accuracy
// (Fig. 17) separately; this bench joins them with documented accuracy
// deltas so a deployer can read off the Pareto set.
#include <iostream>
#include <vector>

#include "accuracy/optimization_impact.h"
#include "accuracy/registry.h"
#include "common/table.h"
#include "common/units.h"
#include "core/report.h"
#include "core/scenario.h"
#include "moe/pruning.h"

namespace {

struct Variant {
  std::string label;
  mib::DType dtype;
  double inter_ratio;  ///< 0 = no inter-expert pruning
  double intra_ratio;
};

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_optimization_frontier");

  const double base_acc =
      accuracy::average_accuracy("Mixtral-8x7B", accuracy::llm_tasks());
  const auto base_model = models::mixtral_8x7b();

  const std::vector<Variant> variants = {
      {"fp16 baseline", DType::kFP16, 0.0, 0.0},
      {"fp8", DType::kFP8E4M3, 0.0, 0.0},
      {"int8", DType::kINT8, 0.0, 0.0},
      {"int4 g128", DType::kINT4, 0.0, 0.0},
      {"fp16 + inter 25%", DType::kFP16, 0.25, 0.0},
      {"fp16 + intra 25%", DType::kFP16, 0.0, 0.25},
      {"fp8 + intra 25%", DType::kFP8E4M3, 0.0, 0.25},
      {"fp8 + inter 25%", DType::kFP8E4M3, 0.25, 0.0},
      {"int4 + intra 50%", DType::kINT4, 0.0, 0.5},
  };

  struct Point {
    std::string label;
    double acc, thr;
  };
  std::vector<Point> pts;

  Table t("Mixtral-8x7B, batch 32, in/out 1024, 4x H100 TP4");
  t.set_headers({"variant", "est. accuracy %", "throughput (tok/s)",
                 "mem/GPU (GiB)"});
  for (const auto& v : variants) {
    auto m = base_model;
    if (v.inter_ratio > 0.0) {
      m.n_experts = moe::pruned_expert_count(m.n_experts, v.inter_ratio);
      m.top_k = std::min(m.top_k, m.n_experts);
    }
    if (v.intra_ratio > 0.0) {
      m.expert_ffn = moe::pruned_ffn_dim(m.expert_ffn, v.intra_ratio);
    }
    core::Scenario s;
    s.model_override = m;
    s.n_devices = 4;
    s.weight_dtype = v.dtype;
    s.batch = 32;
    s.input_tokens = s.output_tokens = 1024;
    const auto r = s.run();

    double acc = base_acc + accuracy::quantization_accuracy_delta(v.dtype);
    if (v.inter_ratio > 0.0) {
      acc += accuracy::inter_expert_prune_accuracy_delta(v.inter_ratio);
    }
    if (v.intra_ratio > 0.0) {
      acc += accuracy::intra_expert_prune_accuracy_delta(v.intra_ratio);
    }
    t.new_row()
        .cell(v.label)
        .cell(acc, 1)
        .cell(r.throughput_tok_s, 0)
        .cell(r.memory.total() / kGiB, 1);
    pts.push_back({v.label, acc, r.throughput_tok_s});
  }
  t.print(std::cout);

  std::cout << "\nPareto set (no variant dominates): ";
  bool first = true;
  for (const auto& p : pts) {
    bool dominated = false;
    for (const auto& q : pts) {
      if (q.acc > p.acc + 1e-9 && q.thr > p.thr) dominated = true;
    }
    if (!dominated) {
      std::cout << (first ? "" : " | ") << p.label;
      first = false;
    }
  }
  std::cout << "\n\nAccuracy deltas are literature-calibrated estimates "
               "(see accuracy/optimization_impact.h); throughput and memory "
               "come from the simulator.\n";
  return 0;
}
