// Fig. 17: throughput and latency vs average lm-eval accuracy for the six
// MoE LLMs (batch 32, in/out 1024, 4x H100 TP4). Accuracy values are the
// tabulated published scores (see accuracy/registry.cpp); efficiency comes
// from the simulator.
#include <iostream>

#include "accuracy/registry.h"
#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig17");

  Table t("batch 32, in/out 1024, 4x H100 TP4, fp16");
  t.set_headers({"model", "avg accuracy %", "throughput (tok/s)",
                 "e2e latency (s)", "ITL (ms)"});
  struct Point {
    std::string name;
    double acc, thr;
  };
  std::vector<Point> pts;
  for (const auto& m : models::llm_models()) {
    core::Scenario s;
    s.model = m.name;
    s.n_devices = 4;
    s.batch = 32;
    s.input_tokens = s.output_tokens = 1024;
    const auto r = s.run();
    const double acc =
        accuracy::average_accuracy(m.name, accuracy::llm_tasks());
    t.new_row()
        .cell(m.name)
        .cell(acc, 1)
        .cell(r.throughput_tok_s, 0)
        .cell(r.e2e_s, 2)
        .cell(core::itl_ms_of(r), 3);
    pts.push_back({m.name, acc, r.throughput_tok_s});
  }
  t.print(std::cout);

  // Pareto frontier of (accuracy, throughput).
  std::cout << "\nefficiency-accuracy frontier: ";
  bool first = true;
  for (const auto& p : pts) {
    bool dominated = false;
    for (const auto& q : pts) {
      if (q.acc > p.acc && q.thr > p.thr) dominated = true;
    }
    if (!dominated) {
      std::cout << (first ? "" : " | ") << p.name;
      first = false;
    }
  }
  std::cout << "\n\nPaper comparison (§8.1): OLMoE leads throughput (>40% "
               "over the next best) at the lowest accuracy; Qwen3-30B-A3B "
               "and Mixtral top accuracy at 30-50% lower throughput; "
               "Phi-3.5-MoE has the lowest throughput despite competitive "
               "accuracy.\n";
  return 0;
}
