// Extension: fleet-level serving — the capacity questions one level above
// the engine. Three tables:
//   (a) replica scaling: fleet throughput and tail TTFT vs replica count
//       for a fixed offered load;
//   (b) SLO capacity (MoE-CAP-style): max Poisson QPS at >= 99% TTFT/ITL
//       attainment, found by bisection — healthy fleet vs the same fleet
//       with a replica-failure window injected;
//   (c) routing policy comparison on the multi-turn conversation workload:
//       prefix-affinity routing vs round-robin vs least-outstanding.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "fleet/fleet.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

namespace {

using namespace mib;

fleet::FleetConfig base_config(int replicas) {
  core::Scenario s;
  s.model = "OLMoE-1B-7B";
  fleet::FleetConfig fc;
  fc.engine = s.engine_config();
  fc.n_replicas = replicas;
  fc.replica.max_batch = 64;
  fc.slo.ttft_s = 2.0;
  fc.slo.itl_s = 0.05;
  fc.seed = 7;
  return fc;
}

std::vector<fleet::FleetRequest> mixed_trace(int n, double qps,
                                             std::uint64_t seed) {
  workload::TraceConfig tc;
  tc.n_requests = n;
  tc.input = {64, 1024, 1.2};
  tc.output = {32, 256, 1.2};
  tc.seed = seed;
  auto trace = fleet::as_fleet_trace(workload::generate_trace(tc));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed ^ 0xA221;
  fleet::stamp_arrivals(ac, trace);
  return trace;
}

/// Attainment under a sustained offered load: the trace length scales with
/// the rate (15 s of arrivals) so capacity measures steady-state queueing,
/// not burst absorption.
double attainment_at(const fleet::FleetConfig& cfg, double qps) {
  const int n = std::max(64, static_cast<int>(qps * 15.0));
  const auto trace = mixed_trace(n, qps, 11);
  return fleet::FleetSimulator(cfg).run(trace).slo.attainment;
}

}  // namespace

int main() {
  core::print_banner(std::cout, "extra_fleet");

  // --- (a) replica scaling at a fixed, saturating offered load ---
  {
    const auto trace = mixed_trace(384, 96.0, 3);
    Table t("(a) Replica scaling — OLMoE-1B-7B, 384 mixed requests at 96 "
            "QPS offered");
    t.set_headers({"replicas", "throughput (tok/s)", "p50 TTFT (s)",
                   "p95 TTFT (s)", "p95 e2e (s)", "SLO attainment",
                   "goodput (qps)", "mean util"});
    for (int n : {1, 2, 4, 8}) {
      const fleet::FleetSimulator sim(base_config(n));
      const auto r = sim.run(trace);
      double util = 0.0;
      for (const auto& rr : r.replicas) util += rr.utilization;
      util /= n;
      t.new_row()
          .cell(n)
          .cell(r.throughput_tok_s, 0)
          .cell(r.ttft_s.p50(), 2)
          .cell(r.ttft_s.p95(), 2)
          .cell(r.e2e_s.p95(), 2)
          .cell(r.slo.attainment, 3)
          .cell(r.slo.goodput_qps, 1)
          .cell(util, 2);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_fleet_scaling");
  }

  // --- (b) SLO capacity: healthy vs one replica failing mid-run ---
  {
    Table t("(b) SLO-goodput capacity — max QPS at >= 99% attainment "
            "(TTFT <= 2s, ITL <= 50ms), bisection over [2, 256] QPS");
    t.set_headers({"replicas", "faults", "capacity (qps)",
                   "attainment @ capacity", "fleet runs"});
    for (int n : {2, 4}) {
      for (bool faulty : {false, true}) {
        auto cfg = base_config(n);
        if (faulty) {
          // Replica 0 dies for a window covering most of the 15 s run.
          cfg.faults.push_back(fleet::FaultWindow{0, 1.0, 12.0});
        }
        const auto cap = fleet::find_capacity_qps(
            [&](double qps) { return attainment_at(cfg, qps); }, 2.0, 256.0,
            0.99, 8);
        t.new_row()
            .cell(n)
            .cell(faulty ? "0 down 1s-12s" : "none")
            .cell(cap.qps, 1)
            .cell(cap.attainment, 3)
            .cell(cap.evaluations);
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_fleet_capacity");
  }

  // --- (c) routing policy on the conversation workload ---
  {
    workload::ConversationConfig cc;
    // Coprime with the replica count, so round-robin cannot accidentally
    // keep conversations aligned to the same replica across turn rounds.
    cc.n_conversations = 27;
    cc.turns_per_conversation = 4;
    cc.system_prompt_tokens = 512;
    cc.seed = 5;
    auto trace = fleet::as_fleet_trace(workload::generate_conversations(cc));
    workload::ArrivalConfig ac;
    ac.rate_qps = 16.0;
    ac.seed = 17;
    fleet::stamp_arrivals(ac, trace);

    Table t("(c) Routing policy — 27 conversations x 4 turns, 512-token "
            "system prompt, 16 QPS, 4 replicas");
    t.set_headers({"policy", "prefix hit rate", "p50 TTFT (s)",
                   "p95 TTFT (s)", "throughput (tok/s)", "SLO attainment"});
    for (auto policy : {fleet::RoutePolicy::kRoundRobin,
                        fleet::RoutePolicy::kLeastOutstanding,
                        fleet::RoutePolicy::kPrefixAffinity}) {
      auto cfg = base_config(4);
      cfg.policy = policy;
      const auto r = fleet::FleetSimulator(cfg).run(trace);
      t.new_row()
          .cell(fleet::route_policy_name(policy))
          .cell(r.prefix_hit_rate(), 3)
          .cell(r.ttft_s.p50(), 2)
          .cell(r.ttft_s.p95(), 2)
          .cell(r.throughput_tok_s, 0)
          .cell(r.slo.attainment, 3);
    }
    t.print(std::cout);
    core::maybe_export_csv(t, "extra_fleet_routing");
  }

  std::cout
      << "\nReading: (a) adding replicas raises fleet throughput and "
         "collapses tail TTFT until the offered load is absorbed; (b) the "
         "SLO capacity point is the serving metric that matters for "
         "provisioning, and a failure window visibly dents it; (c) "
         "session-affinity routing keeps conversations on the replica "
         "holding their cached prefix, so it wins prefix hits (and TTFT) "
         "over oblivious policies.\n";
  return 0;
}
