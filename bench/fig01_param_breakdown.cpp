// Fig. 1: layer-wise total and active parameter breakdown for
// Mixtral-8x7B, OLMoE-1B-7B and Qwen1.5-MoE. The paper's headline: MoE FFN
// weights dominate both totals.
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "core/report.h"
#include "models/params.h"
#include "models/zoo.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig01");

  for (const char* name :
       {"Mixtral-8x7B", "OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B"}) {
    const auto m = models::model_by_name(name);
    const auto bd = models::layer_breakdown(m);

    double attn = 0, ffn_total = 0, ffn_active = 0, router = 0, norms = 0;
    for (const auto& lb : bd) {
      attn += lb.attention;
      ffn_total += lb.ffn_total;
      ffn_active += lb.ffn_active;
      router += lb.router;
      norms += lb.norms;
    }
    const double emb = models::embedding_params(m);
    const double total = models::total_params(m);
    const double active = models::active_params(m);

    Table t(m.name);
    t.set_headers({"component", "total params", "% of total",
                   "active params", "% of active"});
    auto row = [&](const char* label, double tot, double act) {
      t.new_row()
          .cell(label)
          .cell(format_param_count(tot))
          .cell(100.0 * tot / total, 1)
          .cell(format_param_count(act))
          .cell(100.0 * act / active, 1);
    };
    row("MoE FFN (experts)", ffn_total, ffn_active);
    row("attention", attn, attn);
    row("router", router, router);
    row("embeddings", emb, emb);
    row("norms", norms, norms);
    row("TOTAL", total, active);
    t.print(std::cout);

    // Per-layer view (first/middle/last layer shown; all layers identical
    // for these models).
    const auto& lb = bd[bd.size() / 2];
    std::cout << "  per-layer: total "
              << format_param_count(lb.total()) << ", active "
              << format_param_count(lb.active()) << ", MoE share of layer "
              << format_fixed(100.0 * lb.ffn_total / lb.total(), 1)
              << "%\n\n";
  }

  std::cout << "Paper claim check: MoE layers dominate total and active "
               "parameters across all three models.\n";
  return 0;
}
