// Fig. 14: Mixtral-8x7B with and without the Fused MoE kernel on 4x H100
// (batch & length sweeps), plus a real CPU wall-clock comparison of the
// functional fused vs staged MoE layer — the same structural saving
// (grouped execution, no per-expert dispatch) measured on actual silicon.
#include <chrono>
#include <functional>
#include <iostream>

#include "common/table.h"
#include "common/thread_pool.h"
#include "core/report.h"
#include "core/scenario.h"
#include "moe/moe_layer.h"
#include "workload/generator.h"

namespace {

double thr(bool fused, int batch, int len) {
  mib::core::Scenario s;
  s.model = "Mixtral-8x7B";
  s.n_devices = 4;
  s.fused_moe = fused;
  s.batch = batch;
  s.input_tokens = s.output_tokens = len;
  return s.run().throughput_tok_s;
}

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig14");

  {
    Table t("throughput (tok/s) vs batch size, in/out 1024");
    t.set_headers({"batch", "Fused MoE", "non-fused", "gain %"});
    for (int b : workload::paper_batch_sizes()) {
      const double f = thr(true, b, 1024);
      const double u = thr(false, b, 1024);
      t.new_row().cell(b).cell(f, 0).cell(u, 0).cell(
          100.0 * (f / u - 1.0), 1);
    }
    t.print(std::cout);
  }

  {
    Table t("throughput (tok/s) vs in/out length, batch 64");
    t.set_headers({"len", "Fused MoE", "non-fused", "gain %"});
    for (int len : workload::paper_sequence_lengths()) {
      const double f = thr(true, 64, len);
      const double u = thr(false, 64, len);
      t.new_row().cell(len).cell(f, 0).cell(u, 0).cell(
          100.0 * (f / u - 1.0), 1);
    }
    t.print(std::cout);
  }

  // Functional ground truth: the fused (grouped, thread-parallel) CPU path
  // vs the staged per-expert path on a scaled-down Mixtral layer.
  {
    Rng rng(7);
    moe::MoELayerConfig c;
    c.hidden = 256;
    c.expert_ffn = 512;
    c.n_experts = 8;
    c.top_k = 2;
    moe::MoELayer layer(c, rng);
    Rng xr(11);
    const Tensor x = Tensor::randn({128, 256}, xr);
    layer.forward_fused(x);  // warm-up (thread pool spin-up)
    const double t_fused =
        wall_seconds([&] { for (int i = 0; i < 5; ++i) layer.forward_fused(x); });
    const double t_staged =
        wall_seconds([&] { for (int i = 0; i < 5; ++i) layer.forward_staged(x); });
    std::cout << "\nFunctional CPU layer (h=256, ffn=512, 8 experts, top-2, "
                 "128 tokens, "
              << ThreadPool::shared().thread_count()
              << " worker thread(s)): fused "
              << format_fixed(t_fused * 200, 2) << " ms/pass vs staged "
              << format_fixed(t_staged * 200, 2)
              << " ms/pass (ratio "
              << format_fixed(t_staged / t_fused, 2)
              << "x). The fused path parallelizes across experts, so its "
                 "advantage scales with cores; outputs match the staged "
                 "path to 1e-5 (see tests/moe).\n";
  }

  std::cout << "Paper comparison (§7.2): Fused MoE gains 15-20% with batch "
               "and 12-18% across lengths, widening at scale.\n";
  return 0;
}
