// Fig. 3: TTFT, ITL and end-to-end latency of the six MoE LLMs at batch 64
// and input/output length 2048. All models run on one 4xH100 TP4 node
// (Mixtral and Phi-3.5-MoE exceed a single 80 GB GPU at fp16).
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig03");

  Table t("batch 64, input/output 2048, 4x H100 TP4, fp16");
  t.set_headers({"model", "TTFT (s)", "ITL (ms)", "end-to-end (s)",
                 "throughput (tok/s)"});

  double olmoe_ttft = 0, dsv2_ttft = 0;
  double best_e2e = 1e18, worst_e2e = 0;
  for (const auto& m : models::llm_models()) {
    core::Scenario s;
    s.model = m.name;
    s.n_devices = 4;
    s.batch = 64;
    s.input_tokens = s.output_tokens = 2048;
    const auto r = s.run();
    t.new_row()
        .cell(m.name)
        .cell(r.ttft_s, 3)
        .cell(core::itl_ms_of(r), 3)
        .cell(r.e2e_s, 2)
        .cell(r.throughput_tok_s, 0);
    if (m.name == "OLMoE-1B-7B") olmoe_ttft = r.ttft_s;
    if (m.name == "DeepSeek-V2-Lite") dsv2_ttft = r.ttft_s;
    best_e2e = std::min(best_e2e, r.e2e_s);
    worst_e2e = std::max(worst_e2e, r.e2e_s);
  }
  t.print(std::cout);

  std::cout << "\nPaper comparison (§4.1): OLMoE TTFT advantage over "
               "DeepSeek-V2-Lite: "
            << format_fixed(100.0 * (dsv2_ttft / olmoe_ttft - 1.0), 0)
            << "% (paper: ~70%); best-to-worst end-to-end gap "
            << format_fixed(100.0 * (worst_e2e / best_e2e - 1.0), 0)
            << "% (paper: >120%).\n";
  return 0;
}
