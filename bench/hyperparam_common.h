// Shared machinery for the §5 hyperparameter sweeps (Figs. 7-9): the
// Mixtral-8x7B skeleton with FFN dim / expert count / active experts
// overridden, batch 16, input/output 2048, 4x H100 TP4. Missing cells print
// "OOM" exactly where the paper's figures have missing points.
#pragma once

#include <string>
#include <vector>

#include "core/report.h"
#include "core/scenario.h"

namespace mib::benchutil {

inline const std::vector<int>& ffn_dims() {
  static const std::vector<int> v = {1792, 3584, 7168, 14336};
  return v;
}

inline const std::vector<int>& expert_counts() {
  static const std::vector<int> v = {8, 16, 32, 64};
  return v;
}

inline const std::vector<int>& active_counts() {
  static const std::vector<int> v = {1, 2, 4, 8};
  return v;
}

/// Mixtral skeleton with the swept hyperparameters applied.
inline core::Scenario variant(int ffn, int experts, int top_k) {
  auto m = models::mixtral_8x7b();
  m.expert_ffn = ffn;
  m.n_experts = experts;
  m.top_k = top_k;
  core::Scenario s;
  s.model_override = m;
  s.n_devices = 4;
  s.batch = 16;
  s.input_tokens = s.output_tokens = 2048;
  return s;
}

/// Throughput cell or "OOM".
inline std::string cell(int ffn, int experts, int top_k) {
  auto s = variant(ffn, experts, top_k);
  return core::metric_cell([&] { return s.run(); }, core::throughput_of);
}

}  // namespace mib::benchutil
