// Simulated profiler output: the per-op timeline a GPU profiler would show
// for one decode step and one prefill of Mixtral-8x7B on 4x H100 — the
// ground-level view behind every figure's aggregate numbers.
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/engine.h"

namespace {

void print_profile(const std::vector<mib::engine::OpRecord>& ops,
                   const std::string& title) {
  double total = 0.0;
  for (const auto& op : ops) total += op.seconds;

  mib::Table t(title);
  t.set_headers({"op", "time (us)", "% of phase", "instances", "GB moved",
                 "GFLOP", "bound"});
  for (const auto& op : ops) {
    const double bw_time = op.bytes / 2.75e12;   // achievable H100 stream
    const double fl_time = op.flops / 7.4e14;    // achievable H100 compute
    const char* bound = op.flops == 0.0 && op.bytes == 0.0 ? "latency"
                        : bw_time >= fl_time     ? "memory"
                                                 : "compute";
    t.new_row()
        .cell(op.name)
        .cell(op.seconds * 1e6, 1)
        .cell(100.0 * op.seconds / total, 1)
        .cell(static_cast<long long>(op.instances))
        .cell(op.bytes / 1e9, 2)
        .cell(op.flops / 1e9, 1)
        .cell(bound);
  }
  t.print(std::cout);
  std::cout << "  phase total: " << mib::format_fixed(total * 1e3, 3)
            << " ms\n\n";
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "trace_profile");

  core::Scenario s;
  s.model = "Mixtral-8x7B";
  s.n_devices = 4;
  const engine::SimEngine eng(s.engine_config());
  const auto& cost = eng.cost_model();

  print_profile(cost.profile_decode_step(16, 3072),
                "decode step — batch 16, context 3072 (per device)");
  print_profile(cost.profile_prefill(16, 2048),
                "prefill — batch 16 x 2048 tokens (per device)");

  std::cout << "Reading: decode is dominated by expert weight reads "
               "(memory-bound grouped GEMMs) plus collectives and the "
               "framework floor; prefill flips to compute-bound expert "
               "GEMMs — the two regimes every figure in the paper moves "
               "between.\n";
  return 0;
}
