// Fig. 6: throughput vs batch size across input/output lengths for
// DeepSeek-V2-Lite and Qwen1.5-MoE-A2.7B on one H100.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "workload/generator.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig06");

  for (const char* name : {"DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"}) {
    Table t(std::string(name) + " — throughput (tok/s) on H100");
    std::vector<std::string> headers = {"batch \\ in=out len"};
    for (int len : workload::paper_sequence_lengths()) {
      headers.push_back(std::to_string(len));
    }
    t.set_headers(headers);

    for (int batch : workload::extended_batch_sizes()) {
      t.new_row().cell("b=" + std::to_string(batch));
      for (int len : workload::paper_sequence_lengths()) {
        core::Scenario s;
        s.model = name;
        s.batch = batch;
        s.input_tokens = s.output_tokens = len;
        t.cell(core::metric_cell([&] { return s.run(); },
                                 core::throughput_of));
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, std::string("fig06_") + name);

    auto thr = [&](int b, int len) {
      core::Scenario s;
      s.model = name;
      s.batch = b;
      s.input_tokens = s.output_tokens = len;
      return s.run().throughput_tok_s;
    };
    std::cout << "  batch 1 -> 128 scaling at len 512: "
              << format_fixed(thr(128, 512) / thr(1, 512), 1)
              << "x (paper: >8x); len 128 vs 2048 advantage at batch 128: "
              << format_fixed(
                     100.0 * (thr(128, 128) / thr(128, 2048) - 1.0), 0)
              << "% (paper: up to 30%)\n\n";
  }
  return 0;
}
