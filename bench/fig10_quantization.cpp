// Fig. 10: Mixtral-8x7B with FP16 vs FP8 (vLLM-style fp8 quantization:
// fp8 weights + activations, fp16 KV cache) across batch sizes and
// input/output lengths on 4x H100. Also reports the *representational*
// quality cost of fp8 measured with the functional quantizer.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "quant/quantize.h"
#include "workload/generator.h"

namespace {

mib::core::Scenario base(mib::DType dt) {
  mib::core::Scenario s;
  s.model = "Mixtral-8x7B";
  s.n_devices = 4;
  s.weight_dtype = dt;
  s.act_dtype = dt == mib::DType::kFP16 ? mib::DType::kFP16
                                        : mib::DType::kFP8E4M3;
  return s;
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig10");

  {
    Table t("throughput (tok/s) vs batch size, in/out 1024");
    t.set_headers({"batch", "FP16", "FP8", "FP8 gain %"});
    for (int b : workload::paper_batch_sizes()) {
      const double f16 = base(DType::kFP16)
                             .with_batch(b)
                             .with_lengths(1024, 1024)
                             .run()
                             .throughput_tok_s;
      const double f8 = base(DType::kFP8E4M3)
                            .with_batch(b)
                            .with_lengths(1024, 1024)
                            .run()
                            .throughput_tok_s;
      t.new_row()
          .cell(b)
          .cell(f16, 0)
          .cell(f8, 0)
          .cell(100.0 * (f8 / f16 - 1.0), 1);
    }
    t.print(std::cout);
  }

  {
    Table t("throughput (tok/s) vs in/out length, batch 64");
    t.set_headers({"len", "FP16", "FP8", "FP8 gain %"});
    for (int len : workload::paper_sequence_lengths()) {
      const double f16 = base(DType::kFP16)
                             .with_batch(64)
                             .with_lengths(len, len)
                             .run()
                             .throughput_tok_s;
      const double f8 = base(DType::kFP8E4M3)
                            .with_batch(64)
                            .with_lengths(len, len)
                            .run()
                            .throughput_tok_s;
      t.new_row()
          .cell(len)
          .cell(f16, 0)
          .cell(f8, 0)
          .cell(100.0 * (f8 / f16 - 1.0), 1);
    }
    t.print(std::cout);
  }

  // Representational cost of fp8 on Gaussian weight blocks (functional).
  Rng rng(2024);
  Tensor w = Tensor::randn({64, 512}, rng, 0.02f);
  Tensor w8 = w;
  const auto err8 = quant::fake_quantize_tensor(w8, DType::kFP8E4M3,
                                                quant::Granularity::kPerRow);
  Tensor w16 = w;
  const auto err16 = quant::fake_quantize_tensor(w16, DType::kFP16,
                                                 quant::Granularity::kPerRow);
  std::cout << "\nWeight fidelity: fp16 rel-err "
            << format_fixed(err16.rel_err * 100, 4) << "% (SNR "
            << format_fixed(err16.snr_db(), 1) << " dB), fp8-e4m3 rel-err "
            << format_fixed(err8.rel_err * 100, 2) << "% (SNR "
            << format_fixed(err8.snr_db(), 1)
            << " dB) — the paper reports no quality loss at fp8.\n"
            << "Paper comparison (§6.1): FP8 gains 25-30% at the largest "
               "batch and 20-25% across lengths; our roofline shows the "
               "same widening-with-batch trend with larger magnitudes "
               "(see EXPERIMENTS.md).\n";
  return 0;
}
