// Extension study: energy per token across devices and models. The paper's
// motivation names "low latency and energy-efficient execution"; this bench
// adds the energy axis using board power from public datasheets
// (E = devices x TDP x e2e, i.e. a busy-device upper bound).
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

namespace {

struct Cell {
  double tok_per_joule = 0.0;
  bool ok = false;
};

Cell run(const std::string& model, const std::string& device, int devices) {
  mib::core::Scenario s;
  s.model = model;
  s.device = device;
  s.n_devices = devices;
  s.batch = 32;
  s.input_tokens = s.output_tokens = 1024;
  try {
    const auto m = s.run();
    const double watts =
        devices * mib::hw::device_by_name(device).tdp_watts;
    const double joules = watts * m.e2e_s;
    return {32.0 * 2048 / joules, true};
  } catch (const mib::OutOfMemoryError&) {
    return {};
  }
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_energy");

  Table t("tokens per joule — batch 32, in/out 1024, fp16 "
          "(busy-device upper bound on energy)");
  t.set_headers({"model", "A100x4", "H100x4", "H200x4", "B200x4"});
  for (const auto& m : models::llm_models()) {
    t.new_row().cell(m.name);
    for (const char* dev : {"a100", "h100", "h200", "b200"}) {
      const auto c = run(m.name, dev, 4);
      t.cell(c.ok ? format_fixed(c.tok_per_joule, 2) : "OOM");
    }
  }
  t.print(std::cout);

  // CS-3 vs H100 on the paper's Fig. 16 model: raw speed vs system power.
  {
    core::Scenario s;
    s.model = "Llama-4-Scout-17B-16E";
    s.weight_dtype = DType::kFP8E4M3;
    s.batch = 1;
    s.input_tokens = s.output_tokens = 1024;
    s.device = "h100";
    s.n_devices = 2;
    const auto h = s.run();
    s.device = "cs3";
    s.n_devices = 1;
    const auto c = s.run();
    const double h_tpj =
        2048.0 / (2 * hw::h100_sxm5().tdp_watts * h.e2e_s);
    const double c_tpj = 2048.0 / (hw::cs3().tdp_watts * c.e2e_s);
    std::cout << "\nLlama-4-Scout single stream: H100x2 "
              << format_fixed(h_tpj, 3) << " tok/J vs CS-3 "
              << format_fixed(c_tpj, 3)
              << " tok/J — the wafer is ~10x faster per stream but draws "
                 "~16x the power, so single-stream energy roughly ties; "
              << "its advantage is latency, not joules.\n";
  }
  return 0;
}
