// Fig. 16: Llama-4-Scout-17B-16E on H100 vs a Cerebras CS-3 replica —
// latency and throughput across input/output lengths at batch 1
// (interactive serving). Matching the paper's setup, weights are stored at
// FP8 on both systems (the CS-3 replica computes at FP16); fp8 lets the
// 109B model fit one 80 GB H100, which is the configuration where the
// paper's "sharp rise beyond 1024 tokens" is visible: per-step time grows
// with the KV context on the HBM-bound H100, while the CS-3's wafer SRAM
// keeps it flat.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

namespace {

mib::engine::RunMetrics run(const std::string& device, int len) {
  mib::core::Scenario s;
  s.model = "Llama-4-Scout-17B-16E";
  s.device = device;
  // 109B fp8 weights (~100 GiB) need two H100s; the CS-3 is one system.
  s.n_devices = device == "h100" ? 2 : 1;
  s.weight_dtype = mib::DType::kFP8E4M3;
  s.batch = 1;
  s.input_tokens = s.output_tokens = len;
  return s.run();
}

double step_ms(const mib::engine::RunMetrics& m, int out_len) {
  // Batch 1: per-decode-step latency = (e2e - ttft) / (out - 1).
  return out_len > 1 ? (m.e2e_s - m.ttft_s) / (out_len - 1) * 1e3 : 0.0;
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig16");

  Table t("Llama-4-Scout-17B-16E, batch 1, fp8 weights, 2x H100 vs 1x CS-3");
  t.set_headers({"in/out len", "H100x2 e2e (s)", "CS-3 e2e (s)",
                 "H100x2 tok/s", "CS-3 tok/s", "H100x2 step (ms)",
                 "CS-3 step (ms)"});
  double h_step_first = 0, h_step_last = 0;
  double c_step_first = 0, c_step_last = 0;
  const std::vector<int> lens = {128, 256, 512, 1024, 2048, 4096, 8192};
  for (int len : lens) {
    const auto h = run("h100", len);
    const auto c = run("cs3", len);
    t.new_row()
        .cell(len)
        .cell(h.e2e_s, 3)
        .cell(c.e2e_s, 3)
        .cell(h.throughput_tok_s, 0)
        .cell(c.throughput_tok_s, 0)
        .cell(step_ms(h, len), 2)
        .cell(step_ms(c, len), 3);
    if (len == lens.front()) {
      h_step_first = step_ms(h, len);
      c_step_first = step_ms(c, len);
    }
    if (len == lens.back()) {
      h_step_last = step_ms(h, len);
      c_step_last = step_ms(c, len);
    }
  }
  t.print(std::cout);

  std::cout << "\nPer-step latency growth 128 -> 8192 tokens: H100 +"
            << format_fixed(100.0 * (h_step_last / h_step_first - 1.0), 1)
            << "% vs CS-3 +"
            << format_fixed(100.0 * (c_step_last / c_step_first - 1.0), 1)
            << "% — the H100 step time climbs with the KV context (HBM "
               "reads) while CS-3 stays flat and ~25x lower (paper §7.3: "
               "orders-of-magnitude memory bandwidth, gradual latency "
               "growth).\n";
  return 0;
}
