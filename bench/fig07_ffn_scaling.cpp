// Fig. 7: throughput vs FFN dimension for each (experts, active) pair —
// Mixtral-8x7B skeleton, batch 16, in/out 2048, 4x H100.
#include <iostream>

#include "common/table.h"
#include "hyperparam_common.h"

int main() {
  using namespace mib;
  using namespace mib::benchutil;
  core::print_banner(std::cout, "fig07");

  for (int experts : expert_counts()) {
    Table t("experts = " + std::to_string(experts) +
            " — throughput (tok/s) vs FFN dim");
    std::vector<std::string> headers = {"active \\ FFN"};
    for (int ffn : ffn_dims()) headers.push_back(std::to_string(ffn));
    t.set_headers(headers);
    for (int k : active_counts()) {
      t.new_row().cell("k=" + std::to_string(k));
      for (int ffn : ffn_dims()) t.cell(cell(ffn, experts, k));
    }
    t.print(std::cout);
    core::maybe_export_csv(t, std::string("fig07_experts") + std::to_string(experts));
  }

  // Paper-quoted summary numbers.
  auto thr = [&](int ffn, int k) {
    return variant(ffn, 8, k).run().throughput_tok_s;
  };
  std::cout << "\nFFN 1792 -> 14336 decline (8 experts, k=2): "
            << format_fixed(100.0 * (1.0 - thr(14336, 2) / thr(1792, 2)), 0)
            << "% (paper: ~50% average). k=1 vs k=8 gap at FFN 14336: "
            << format_fixed(100.0 * (1.0 - thr(14336, 8) / thr(14336, 1)), 0)
            << "% (paper: ~60%).\n";
  return 0;
}
