// Fig. 18: throughput/latency vs average VLMEvalKit accuracy for the
// DeepSeek-VL2 family (batch 16, in/out 1024, one image per request).
#include <iostream>

#include "accuracy/registry.h"
#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig18");

  Table t("batch 16, in/out 1024, 1 image/request, 1x H100, fp16");
  t.set_headers({"model", "avg accuracy %", "samples/s",
                 "throughput (tok/s)", "e2e latency (s)"});
  for (const auto& m : models::vlm_models()) {
    core::Scenario s;
    s.model = m.name;
    s.batch = 16;
    s.input_tokens = s.output_tokens = 1024;
    s.images_per_request = 1;
    const auto r = s.run();
    t.new_row()
        .cell(m.name)
        .cell(accuracy::average_accuracy(m.name, accuracy::vlm_tasks()), 1)
        .cell(r.samples_per_s, 3)
        .cell(r.throughput_tok_s, 0)
        .cell(r.e2e_s, 2);
  }
  t.print(std::cout);

  std::cout << "\nPaper comparison (§8.2): Tiny = highest throughput / "
               "lowest accuracy; Base = highest accuracy / lowest "
               "throughput; Small sits between — a clean efficiency vs "
               "quality trade.\n";
  return 0;
}
