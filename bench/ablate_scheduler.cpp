// Ablation: static gang batching (the paper's measurement discipline) vs
// continuous batching (production serving) on a mixed-length trace, across
// load levels — quantifying how much the paper's static-batch numbers
// understate a production engine.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/scheduler.h"
#include "workload/generator.h"

namespace {

mib::engine::ServingReport serve(bool continuous, double qps,
                                 const std::vector<mib::engine::Request>& t) {
  mib::core::Scenario s;
  s.model = "OLMoE-1B-7B";
  mib::engine::SchedulerConfig sc;
  sc.continuous_batching = continuous;
  sc.max_batch = 64;
  sc.arrival_rate_qps = qps;
  return mib::engine::ServingSimulator(s.engine_config(), sc).run(t);
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_scheduler");

  workload::TraceConfig tc;
  tc.n_requests = 96;
  tc.input = {64, 2048, 1.2};
  tc.output = {32, 1024, 1.2};
  const auto trace = workload::generate_trace(tc);

  Table t("OLMoE-1B-7B on one H100, 96 mixed-length requests");
  t.set_headers({"discipline", "load (qps)", "throughput (tok/s)",
                 "p50 TTFT (s)", "p95 TTFT (s)", "p95 e2e (s)",
                 "mean batch", "preemptions"});
  for (double qps : {0.0, 8.0, 32.0}) {
    for (bool cont : {false, true}) {
      const auto r = serve(cont, qps, trace);
      t.new_row()
          .cell(cont ? "continuous" : "static gang")
          .cell(qps == 0.0 ? std::string("all-at-once")
                           : format_fixed(qps, 0))
          .cell(r.throughput_tok_s, 0)
          .cell(r.ttft_s.percentile(50), 2)
          .cell(r.ttft_s.percentile(95), 2)
          .cell(r.e2e_s.percentile(95), 2)
          .cell(r.mean_running_batch, 1)
          .cell(r.preemptions);
    }
  }
  t.print(std::cout);

  std::cout << "\nReading: static gang batching drains to empty before "
               "readmitting, so short requests wait on the batch's longest "
               "member; continuous batching keeps occupancy (and therefore "
               "throughput) high and cuts tail TTFT — the gap is the "
               "production headroom the paper's static grid leaves out.\n";
  return 0;
}
