// google-benchmark wall-clock measurements of the functional MoE building
// blocks: router, expert forward, and the fused vs staged layer paths.
// These are real CPU numbers (the only non-simulated timings in the suite)
// and demonstrate the structural fused-MoE saving on actual silicon.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/tensor.h"
#include "moe/moe_layer.h"
#include "quant/quantize.h"

namespace {

using namespace mib;

moe::MoELayerConfig layer_cfg(int experts, int top_k) {
  moe::MoELayerConfig c;
  c.hidden = 128;
  c.expert_ffn = 256;
  c.n_experts = experts;
  c.top_k = top_k;
  return c;
}

void BM_RouterTopK(benchmark::State& state) {
  Rng rng(1);
  moe::RouterConfig rc;
  rc.hidden = 128;
  rc.n_experts = static_cast<int>(state.range(0));
  rc.top_k = 2;
  moe::Router router(rc, rng);
  Rng xr(2);
  const Tensor x = Tensor::randn({64, 128}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(x));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_RouterTopK)->Arg(8)->Arg(64)->Arg(128);

void BM_ExpertForward(benchmark::State& state) {
  Rng rng(3);
  moe::Expert expert(128, static_cast<int>(state.range(0)), rng);
  Rng xr(4);
  const Tensor x = Tensor::randn({32, 128}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expert.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_ExpertForward)->Arg(128)->Arg(512)->Arg(1024);

void BM_MoELayerStaged(benchmark::State& state) {
  Rng rng(5);
  moe::MoELayer layer(layer_cfg(static_cast<int>(state.range(0)), 2), rng);
  Rng xr(6);
  const Tensor x = Tensor::randn({64, 128}, xr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward_staged(x));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MoELayerStaged)->Arg(4)->Arg(8)->Arg(16);

void BM_MoELayerFused(benchmark::State& state) {
  Rng rng(5);
  moe::MoELayer layer(layer_cfg(static_cast<int>(state.range(0)), 2), rng);
  Rng xr(6);
  const Tensor x = Tensor::randn({64, 128}, xr);
  layer.forward_fused(x);  // warm up the shared pool
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward_fused(x));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MoELayerFused)->Arg(4)->Arg(8)->Arg(16);

void BM_QuantizeFp8(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    Tensor w = Tensor::randn({64, 1024}, rng, 0.02f);
    state.ResumeTiming();
    benchmark::DoNotOptimize(quant::fake_quantize_tensor(
        w, DType::kFP8E4M3, quant::Granularity::kPerRow));
  }
  state.SetItemsProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_QuantizeFp8);

}  // namespace

BENCHMARK_MAIN();
