// Fig. 4: TTFT, ITL and end-to-end latency of the DeepSeek-VL2 family
// (one image per request). The paper reports much larger spreads than for
// LLMs: ~30% TTFT, ~240% ITL, >260% end-to-end across the family.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig04");

  Table t("batch 64, input/output 2048, 1 image/request, 1x H100, fp16");
  t.set_headers({"model", "TTFT (s)", "ITL (ms)", "end-to-end (s)",
                 "samples/s"});

  double tiny_ttft = 0, base_ttft = 0, tiny_itl = 0, base_itl = 0;
  double tiny_e2e = 0, base_e2e = 0;
  for (const auto& m : models::vlm_models()) {
    core::Scenario s;
    s.model = m.name;
    s.batch = 64;
    s.input_tokens = s.output_tokens = 2048;
    s.images_per_request = 1;
    const auto r = s.run();
    t.new_row()
        .cell(m.name)
        .cell(r.ttft_s, 3)
        .cell(core::itl_ms_of(r), 3)
        .cell(r.e2e_s, 2)
        .cell(r.samples_per_s, 3);
    if (m.name == "DeepSeek-VL2-Tiny") {
      tiny_ttft = r.ttft_s;
      tiny_itl = r.itl_s;
      tiny_e2e = r.e2e_s;
    }
    if (m.name == "DeepSeek-VL2") {
      base_ttft = r.ttft_s;
      base_itl = r.itl_s;
      base_e2e = r.e2e_s;
    }
  }
  t.print(std::cout);

  std::cout << "\nPaper comparison (§4.1): Tiny vs Base — TTFT gap "
            << format_fixed(100.0 * (base_ttft / tiny_ttft - 1.0), 0)
            << "% (paper ~30%), ITL gap "
            << format_fixed(100.0 * (base_itl / tiny_itl - 1.0), 0)
            << "% (paper ~240%), end-to-end gap "
            << format_fixed(100.0 * (base_e2e / tiny_e2e - 1.0), 0)
            << "% (paper >260%).\n";
  return 0;
}
