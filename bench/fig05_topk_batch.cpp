// Fig. 5: throughput vs number of active experts (TopK) across batch
// sizes, for DeepSeek-V2-Lite and Qwen1.5-MoE-A2.7B at context length 2048
// (1024 in + 1024 out) on one H100.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "workload/generator.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig05");

  const std::vector<int> topks = {1, 2, 4, 8, 16, 32};

  for (const char* name : {"DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"}) {
    const auto base_model = models::model_by_name(name);
    Table t(std::string(name) + " — throughput (tok/s), ctx 2048, H100");
    std::vector<std::string> headers = {"batch \\ TopK"};
    for (int k : topks) headers.push_back(std::to_string(k));
    t.set_headers(headers);

    for (int batch : workload::extended_batch_sizes()) {
      t.new_row().cell("b=" + std::to_string(batch));
      for (int k : topks) {
        auto v = base_model;
        v.top_k = std::min(k, v.n_experts);
        core::Scenario s;
        s.model_override = v;
        s.batch = batch;
        s.input_tokens = s.output_tokens = 1024;
        t.cell(core::metric_cell([&] { return s.run(); },
                                 core::throughput_of));
      }
    }
    t.print(std::cout);
    core::maybe_export_csv(t, std::string("fig05_") + name);

    // Paper-quoted deltas: drop from TopK=1 to TopK=32.
    auto thr = [&](int k, int b) {
      auto v = base_model;
      v.top_k = std::min(k, v.n_experts);
      core::Scenario s;
      s.model_override = v;
      s.batch = b;
      s.input_tokens = s.output_tokens = 1024;
      return s.run().throughput_tok_s;
    };
    std::cout << "  TopK 1->32 throughput drop: batch 1: "
              << format_fixed(100.0 * (1.0 - thr(32, 1) / thr(1, 1)), 0)
              << "% (paper 5-8%), batch 64: "
              << format_fixed(100.0 * (1.0 - thr(32, 64) / thr(1, 64)), 0)
              << "% (paper 15-20%)\n\n";
  }

  std::cout << "Insight check: throughput decreases with active experts at "
               "every batch size; the absolute cost of activation grows "
               "with batch.\n";
  return 0;
}
