// Fig. 11: inter- vs intra-expert pruning at ratios {12.5%, 25%, 50%}
// across TopK values for OLMoE-1B-7B and Qwen1.5-MoE-A2.7B on 4x H100
// (batch 16, in/out 2048). The pruned geometries come from the same
// transforms the functional moe::pruning module applies to real layers.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "moe/pruning.h"

namespace {

double run_variant(const mib::models::ModelConfig& base, int experts,
                   int ffn, int top_k) {
  auto v = base;
  v.n_experts = experts;
  v.expert_ffn = ffn;
  v.top_k = std::min(top_k, experts);
  mib::core::Scenario s;
  s.model_override = v;
  s.n_devices = 4;
  s.batch = 16;
  s.input_tokens = s.output_tokens = 2048;
  return s.run().throughput_tok_s;
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "fig11");

  const std::vector<double> ratios = {0.125, 0.25, 0.5};

  for (const char* name : {"OLMoE-1B-7B", "Qwen1.5-MoE-A2.7B"}) {
    const auto base = models::model_by_name(name);
    const std::vector<int> topks = [&] {
      std::vector<int> v;
      for (int k = 1; k <= base.top_k; ++k) v.push_back(k);
      return v;
    }();

    Table t(std::string(name) + " — throughput (tok/s), 4x H100");
    std::vector<std::string> headers = {"config \\ TopK"};
    for (int k : topks) headers.push_back(std::to_string(k));
    t.set_headers(headers);

    auto add_row = [&](const std::string& label, int experts, int ffn) {
      t.new_row().cell(label);
      for (int k : topks) t.cell(run_variant(base, experts, ffn, k), 0);
    };

    add_row("baseline", base.n_experts, base.expert_ffn);
    for (double r : ratios) {
      add_row("inter " + format_fixed(r * 100, 1) + "%",
              moe::pruned_expert_count(base.n_experts, r), base.expert_ffn);
    }
    for (double r : ratios) {
      add_row("intra " + format_fixed(r * 100, 1) + "%", base.n_experts,
              moe::pruned_ffn_dim(base.expert_ffn, r));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper comparison (§6.2): low pruning ratios move throughput "
               "only marginally (and can even reduce it on real kernels); "
               "50% pruning improves throughput significantly; throughput "
               "decreases with TopK in every configuration.\n";
  return 0;
}
