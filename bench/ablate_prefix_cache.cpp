// Ablation: automatic prefix caching on a chat workload — every request
// shares a 1024-token system prompt. Two effects, both functional:
//   1. KV capacity: the shared prefix is stored once (PagedKvCache
//      ref-counted blocks), multiplying concurrent admissions.
//   2. TTFT: prefill skips the cached prefix, so only the user turn is
//      computed (priced with the cost model).
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/kv_cache.h"
#include "engine/memory.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_prefix");

  const auto model = models::qwen15_moe_a27b();  // fat MHA KV: pressure
  const engine::MemoryModel mem(model, parallel::ParallelPlan{},
                                DType::kFP16, DType::kFP16, DType::kFP16);
  const auto dev = hw::h100_sxm5();
  const int block_tokens = 16;
  const double kv_budget = dev.usable_mem() -
                           mem.weight_bytes_per_device() -
                           mem.activation_bytes(8192);
  const auto total_blocks = static_cast<std::size_t>(
      kv_budget / (mem.kv_bytes_per_token_per_device() * block_tokens));

  const int system_prompt = 1024;
  const int user_turn = 256;
  const int reply = 256;

  // --- capacity: how many concurrent chats fit ---
  engine::PagedKvCache with_cache(total_blocks, block_tokens);
  engine::PagedKvCache without(total_blocks, block_tokens);
  int n_with = 0, n_without = 0;
  for (int i = 0; i < 4096; ++i) {
    const int id = with_cache.add_sequence_with_prefix(0xFEED, system_prompt);
    if (id < 0 || !with_cache.append_tokens(id, user_turn + reply)) break;
    ++n_with;
  }
  for (int i = 0; i < 4096; ++i) {
    const int id = without.add_sequence();
    if (!without.append_tokens(id, system_prompt + user_turn + reply)) {
      without.free_sequence(id);
      break;
    }
    ++n_without;
  }

  // --- TTFT: prefill skips the cached prefix ---
  core::Scenario s;
  s.model = model.name;
  const engine::SimEngine eng(s.engine_config());
  const double ttft_full =
      eng.cost_model().prefill(1, system_prompt + user_turn).total();
  const double ttft_cached = eng.cost_model().prefill(1, user_turn).total();

  Table t("Qwen1.5-MoE-A2.7B chat workload on one H100 — 1024-token system "
          "prompt, 256-token turns");
  t.set_headers({"metric", "no prefix cache", "with prefix cache", "gain"});
  t.new_row()
      .cell("concurrent chats in KV")
      .cell(n_without)
      .cell(n_with)
      .cell(format_fixed(static_cast<double>(n_with) / n_without, 1) + "x");
  t.new_row()
      .cell("TTFT (ms, warm prefix)")
      .cell(ttft_full * 1e3, 1)
      .cell(ttft_cached * 1e3, 1)
      .cell(format_fixed(ttft_full / ttft_cached, 1) + "x");
  t.print(std::cout);

  std::cout << "\nReading: the shared system prompt is held once "
               "(ref-counted blocks, evicted only when unreferenced and "
               "memory is needed) and its prefill is skipped — the two "
               "mechanisms vLLM's automatic prefix caching combines.\n";
  return 0;
}
