// Extension study: capacity planning for frontier-scale MoEs
// (DeepSeek-V3, Kimi-K2 — the families the paper's intro cites). The §5
// insight "extreme scale configurations likely needing distributed
// placement across multi-node architectures" made quantitative: minimum
// device counts per GPU generation and precision, plus projected
// throughput at the minimal feasible deployment.
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/report.h"
#include "core/scenario.h"
#include "models/params.h"

namespace {

/// Smallest power-of-two device count whose aggregate usable memory holds
/// weights + a batch-32 x 4k-token KV working set; 0 if none <= 64.
int min_devices(const mib::models::ModelConfig& m, const std::string& device,
                mib::DType dt) {
  for (int n = 1; n <= 64; n *= 2) {
    if (m.n_heads % n != 0) continue;
    mib::core::Scenario s;
    s.model_override = m;
    s.device = device;
    s.n_devices = n;
    s.weight_dtype = dt;
    s.batch = 32;
    s.input_tokens = s.output_tokens = 2048;
    try {
      s.run();
      return n;
    } catch (const mib::OutOfMemoryError&) {
      continue;
    }
  }
  return 0;
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_frontier");

  for (const auto& m : {models::deepseek_v3(), models::kimi_k2()}) {
    std::cout << m.name << ": "
              << format_param_count(models::total_params(m)) << " total / "
              << format_param_count(models::active_params(m))
              << " active, " << m.n_experts << " experts top-" << m.top_k
              << ", fp8 weights "
              << format_fixed(
                     models::weight_bytes(m, DType::kFP8E4M3) / kGiB, 0)
              << " GiB\n";

    Table t("minimum devices (batch 32, 2048/2048) and throughput there");
    t.set_headers({"device", "dtype", "min devices", "thr (tok/s)",
                   "thr/device"});
    for (const char* dev : {"h100", "h200", "b200"}) {
      for (DType dt : {DType::kFP8E4M3, DType::kINT4}) {
        const int n = min_devices(m, dev, dt);
        if (n == 0) {
          t.new_row().cell(dev).cell(dtype_name(dt)).cell(">64").cell("-")
              .cell("-");
          continue;
        }
        core::Scenario s;
        s.model_override = m;
        s.device = dev;
        s.n_devices = n;
        s.weight_dtype = dt;
        s.batch = 32;
        s.input_tokens = s.output_tokens = 2048;
        const double thr = s.run().throughput_tok_s;
        t.new_row()
            .cell(dev)
            .cell(dtype_name(dt))
            .cell(n)
            .cell(thr, 0)
            .cell(thr / n, 0);
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Reading: frontier MoEs do not fit a single node at any "
               "precision the paper studies — the distributed-placement "
               "future the §5 insights anticipate is mandatory, and newer "
               "HBM generations cut the minimum fleet roughly with their "
               "capacity ratio.\n";
  return 0;
}
