// Fig. 13: TP / TP+EP / PP / PP+EP scaling from 1 to 4 H100s for
// Mixtral-8x7B and OLMoE-1B-7B (batch 32, in/out 1024). Mixtral runs with
// fp8 weights so the single-GPU baseline exists (47 GB fits in 80 GB);
// OLMoE runs fp16.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"

namespace {

std::string run_cell(const std::string& model, mib::DType wdt,
                     mib::parallel::ParallelPlan plan, int devices) {
  mib::core::Scenario s;
  s.model = model;
  s.n_devices = devices;
  s.plan = plan;
  s.weight_dtype = wdt;
  s.batch = 32;
  s.input_tokens = s.output_tokens = 1024;
  return mib::core::metric_cell([&] { return s.run(); },
                                mib::core::throughput_of);
}

}  // namespace

int main() {
  using namespace mib;
  using parallel::pp_ep_plan;
  using parallel::pp_plan;
  using parallel::tp_ep_plan;
  using parallel::tp_plan;
  core::print_banner(std::cout, "fig13");

  struct Row {
    std::string label;
    parallel::ParallelPlan (*plan)(int);
  };
  const std::vector<Row> strategies = {
      {"TP (no EP)", tp_plan},
      {"TP + EP", tp_ep_plan},
      {"PP (no EP)", pp_plan},
      {"Hybrid PPxTP + EP", pp_ep_plan},
  };

  struct ModelRun {
    const char* name;
    DType wdt;
    const char* note;
  };
  for (const auto& mr :
       {ModelRun{"Mixtral-8x7B", DType::kFP8E4M3, "(fp8 weights)"},
        ModelRun{"OLMoE-1B-7B", DType::kFP16, "(fp16)"}}) {
    Table t(std::string(mr.name) + " " + mr.note +
            " — throughput (tok/s) vs #GPUs");
    t.set_headers({"strategy", "1 GPU", "2 GPUs", "4 GPUs"});
    for (const auto& s : strategies) {
      t.new_row().cell(s.label);
      for (int n : {1, 2, 4}) {
        t.cell(run_cell(mr.name, mr.wdt, s.plan(n), n));
      }
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper comparison (§7.1): pure TP scales best (paper: >2x at "
               "4 GPUs for Mixtral); TP+EP scales less; PP stays almost "
               "flat; the hybrid sits between.\n";
  return 0;
}
