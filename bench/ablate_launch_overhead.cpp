// Ablation: the Fused-MoE gain as a function of kernel-launch overhead.
// Fusion saves (a) per-expert launches and (b) an activation round-trip;
// this sweep separates the two by scaling the device's launch cost.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/engine.h"

namespace {

double thr(double launch_overhead_s, bool fused) {
  mib::engine::EngineConfig cfg;
  cfg.model = mib::models::mixtral_8x7b();
  auto dev = mib::hw::h100_sxm5();
  dev.kernel_launch_overhead = launch_overhead_s;
  cfg.cluster = mib::hw::Cluster(dev, 4, mib::hw::nvlink4());
  cfg.plan = mib::parallel::tp_plan(4);
  cfg.cost.fused_moe = fused;
  const mib::engine::SimEngine eng(cfg);
  return eng.run(32, 1024, 1024).throughput_tok_s;
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_launch");

  Table t("Mixtral-8x7B, batch 32, in/out 1024, 4x H100");
  t.set_headers({"launch overhead (us)", "fused (tok/s)",
                 "non-fused (tok/s)", "fusion gain %"});
  for (double us : {0.0, 2.0, 4.0, 8.0, 16.0}) {
    const double f = thr(us * 1e-6, true);
    const double u = thr(us * 1e-6, false);
    t.new_row().cell(us, 1).cell(f, 0).cell(u, 0).cell(
        100.0 * (f / u - 1.0), 1);
  }
  t.print(std::cout);

  std::cout << "\nReading: at zero launch cost the remaining fusion gain is "
               "the saved activation round-trip; the gain grows with launch "
               "overhead — confirming the two mechanisms the paper cites "
               "for Fused MoE (§7.2).\n";
  return 0;
}
