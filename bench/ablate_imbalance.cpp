// Ablation: what expert-load imbalance actually costs, and where.
//
// Two opposing effects of routing skew:
//   * decode gets *cheaper* (fewer distinct experts -> less weight traffic)
//     for TP and EP alike;
//   * EP prefill gets *slower* (the device hosting the hot experts gates
//     every MoE layer) — the load-balancing sensitivity the paper
//     attributes to EP (§7.1).
// This ablation separates the two by reporting the prefill-time ratio
// EP/TP next to the analytic max-share, plus decode throughput.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/engine.h"
#include "parallel/expert_placement.h"

namespace {

mib::engine::SimEngine make_engine(bool ep, double skew) {
  mib::core::Scenario s;
  s.model = "OLMoE-1B-7B";
  s.n_devices = 4;
  s.plan = ep ? mib::parallel::tp_ep_plan(4) : mib::parallel::tp_plan(4);
  s.routing_skew = skew;
  return mib::engine::SimEngine(s.engine_config());
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_imbalance");

  Table t("OLMoE-1B-7B, batch 32, in/out 1024, 4x H100");
  t.set_headers({"router skew (zipf s)", "analytic EP max-share",
                 "prefill EP/TP time ratio", "decode thr TP4 (tok/s)",
                 "decode thr TP4+EP (tok/s)"});

  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    const auto tp = make_engine(false, skew);
    const auto ep = make_engine(true, skew);
    const double pf_tp = tp.cost_model().prefill(32, 1024).total();
    const double pf_ep = ep.cost_model().prefill(32, 1024).total();
    const double share = parallel::expected_max_group_share(
        64, 32.0 * 1024 * 8, 4, parallel::RoutingModel{skew});
    t.new_row()
        .cell(skew, 1)
        .cell(share, 3)
        .cell(pf_ep / pf_tp, 2)
        .cell(tp.run(32, 1024, 1024).throughput_tok_s, 0)
        .cell(ep.run(32, 1024, 1024).throughput_tok_s, 0);
  }
  t.print(std::cout);

  std::cout << "\nReading: the EP/TP prefill ratio tracks the analytic "
               "max-share (the hot device gates each MoE layer), while "
               "decode throughput *rises* with skew for both plans because "
               "fewer distinct experts are read per step — imbalance is an "
               "EP prefill problem, not a single-device decode problem.\n";
  return 0;
}
