// Table 1: architecture comparison of the nine MoE models, with parameter
// counts computed from the configs (matching the paper's Model Size /
// Active Parameters columns).
#include <iostream>

#include "common/string_util.h"
#include "common/table.h"
#include "core/report.h"
#include "models/params.h"
#include "models/zoo.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "table1");

  Table t;
  t.set_headers({"Model", "Modality", "Attn", "#Layers", "Hidden",
                 "Expert FFN", "#Experts", "TopK", "#Shared", "Model Size",
                 "Active Params"});
  for (const auto& m : models::table1_models()) {
    t.new_row()
        .cell(m.name)
        .cell(models::modality_name(m.modality))
        .cell(models::attention_kind_name(m.attention))
        .cell(m.n_layers)
        .cell(m.hidden)
        .cell(m.expert_ffn)
        .cell(m.n_experts)
        .cell(m.top_k)
        .cell(m.n_shared_experts)
        .cell(format_param_count(models::total_params(m)))
        .cell(format_param_count(models::active_params(m)));
  }
  t.print(std::cout);

  std::cout << "\nNote: per-expert FFN dims follow the released configs; see "
               "DESIGN.md for the documented Table-1 discrepancies.\n";
  return 0;
}
