// Ablation: contiguous vs LPT-balanced expert placement under EP, across
// router skew — the deployment mitigation the paper's §5.3 insight calls
// for ("extreme scale configurations likely needing distributed placement
// ... for efficient resource use").
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/engine.h"
#include "parallel/expert_placement.h"

namespace {

double prefill_time(double skew, bool balanced) {
  mib::core::Scenario s;
  s.model = "OLMoE-1B-7B";
  s.n_devices = 4;
  s.plan = mib::parallel::tp_ep_plan(4);
  s.routing_skew = skew;
  s.ep_balanced_placement = balanced;
  const mib::engine::SimEngine eng(s.engine_config());
  return eng.cost_model().prefill(32, 1024).total();
}

}  // namespace

int main() {
  using namespace mib;
  core::print_banner(std::cout, "ablate_placement");

  Table t("OLMoE-1B-7B TP4+EP, batch 32, prefill 1024 tokens");
  t.set_headers({"router skew", "max device mass (contig)",
                 "max device mass (LPT)", "prefill contig (ms)",
                 "prefill LPT (ms)", "LPT speedup"});
  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6}) {
    const auto probs =
        parallel::expert_probabilities(64, parallel::RoutingModel{skew});
    const double m_contig = parallel::placement_max_mass(
        probs, parallel::contiguous_placement(64, 4), 4);
    const double m_bal = parallel::placement_max_mass(
        probs, parallel::balanced_placement(probs, 4), 4);
    const double t_contig = prefill_time(skew, false);
    const double t_bal = prefill_time(skew, true);
    t.new_row()
        .cell(skew, 1)
        .cell(m_contig, 3)
        .cell(m_bal, 3)
        .cell(t_contig * 1e3, 1)
        .cell(t_bal * 1e3, 1)
        .cell(t_contig / t_bal, 2);
  }
  t.print(std::cout);

  std::cout << "\nReading: greedy LPT placement spreads popular experts "
               "across EP devices, flattening the hot device's share and "
               "recovering most of the skew-induced prefill loss — the "
               "distributed-placement remedy §5.3 anticipates.\n";
  return 0;
}
