// Extension study: expert offloading vs the paper's OOM boundaries. The §5
// sweeps mark configurations that exceed HBM as missing points; offloading
// converts those hard boundaries into a residency/throughput trade — and
// makes Mixtral-8x7B fp16 runnable on a single 80 GiB H100.
#include <iostream>

#include "common/table.h"
#include "core/report.h"
#include "core/scenario.h"
#include "engine/offload.h"

int main() {
  using namespace mib;
  core::print_banner(std::cout, "extra_offload");

  {
    Table t("Mixtral-8x7B fp16 on ONE H100 (93 GiB of weights) — expert "
            "residency sweep, batch 4, in/out 512");
    t.set_headers({"resident experts", "HBM weights (GiB)", "miss rate",
                   "fetch/step (ms)", "throughput (tok/s)"});
    core::Scenario s;
    s.model = "Mixtral-8x7B";
    for (double r : {0.75, 0.625, 0.5, 0.375, 0.25}) {
      try {
        engine::OffloadEngine eng(s.engine_config(),
                                  engine::OffloadConfig{r});
        const auto m = eng.run(4, 512, 512);
        t.new_row()
            .cell(format_fixed(r * 8, 0) + "/8")
            .cell(m.hbm_weight_gib, 1)
            .cell(m.miss_rate, 3)
            .cell(m.fetch_per_step_s * 1e3, 2)
            .cell(m.run.throughput_tok_s, 0);
      } catch (const OutOfMemoryError&) {
        t.new_row()
            .cell(format_fixed(r * 8, 0) + "/8")
            .cell("OOM")
            .cell("-")
            .cell("-")
            .cell("-");
      }
    }
    t.print(std::cout);
  }

  {
    // Skew makes offloading nearly free: the popular experts stay in HBM.
    Table t("\nOLMoE-1B-7B at 25% residency — routing-skew sweep, batch 16, "
            "in/out 1024, 1x H100");
    t.set_headers({"router skew (zipf s)", "miss rate",
                   "fetch/step (ms)", "throughput (tok/s)",
                   "all-resident thr"});
    for (double skew : {0.0, 0.6, 1.2, 1.8}) {
      core::Scenario s;
      s.model = "OLMoE-1B-7B";
      s.routing_skew = skew;
      engine::OffloadEngine off(s.engine_config(),
                                engine::OffloadConfig{0.25});
      engine::OffloadEngine full(s.engine_config(),
                                 engine::OffloadConfig{1.0});
      const auto m = off.run(16, 1024, 1024);
      const auto f = full.run(16, 1024, 1024);
      t.new_row()
          .cell(skew, 1)
          .cell(m.miss_rate, 3)
          .cell(m.fetch_per_step_s * 1e3, 2)
          .cell(m.run.throughput_tok_s, 0)
          .cell(f.run.throughput_tok_s, 0);
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: offloading erases the paper's OOM boundaries at "
               "a PCIe-governed cost; routing skew — the load-balancing "
               "problem everywhere else — is exactly what makes a small "
               "resident set sufficient here.\n";
  return 0;
}
