# Empty dependencies file for tiny_inference.
# This may be replaced when dependencies are built.
