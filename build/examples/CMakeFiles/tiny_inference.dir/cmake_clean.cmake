file(REMOVE_RECURSE
  "CMakeFiles/tiny_inference.dir/tiny_inference.cpp.o"
  "CMakeFiles/tiny_inference.dir/tiny_inference.cpp.o.d"
  "tiny_inference"
  "tiny_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
