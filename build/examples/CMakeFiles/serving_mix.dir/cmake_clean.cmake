file(REMOVE_RECURSE
  "CMakeFiles/serving_mix.dir/serving_mix.cpp.o"
  "CMakeFiles/serving_mix.dir/serving_mix.cpp.o.d"
  "serving_mix"
  "serving_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
