# Empty dependencies file for serving_mix.
# This may be replaced when dependencies are built.
