file(REMOVE_RECURSE
  "CMakeFiles/vlm_pipeline.dir/vlm_pipeline.cpp.o"
  "CMakeFiles/vlm_pipeline.dir/vlm_pipeline.cpp.o.d"
  "vlm_pipeline"
  "vlm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
