# Empty compiler generated dependencies file for vlm_pipeline.
# This may be replaced when dependencies are built.
