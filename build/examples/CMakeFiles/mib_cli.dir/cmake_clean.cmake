file(REMOVE_RECURSE
  "CMakeFiles/mib_cli.dir/mib_cli.cpp.o"
  "CMakeFiles/mib_cli.dir/mib_cli.cpp.o.d"
  "mib_cli"
  "mib_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
