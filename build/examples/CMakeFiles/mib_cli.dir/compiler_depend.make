# Empty compiler generated dependencies file for mib_cli.
# This may be replaced when dependencies are built.
