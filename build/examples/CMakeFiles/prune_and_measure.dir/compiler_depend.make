# Empty compiler generated dependencies file for prune_and_measure.
# This may be replaced when dependencies are built.
