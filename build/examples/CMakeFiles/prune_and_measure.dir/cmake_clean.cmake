file(REMOVE_RECURSE
  "CMakeFiles/prune_and_measure.dir/prune_and_measure.cpp.o"
  "CMakeFiles/prune_and_measure.dir/prune_and_measure.cpp.o.d"
  "prune_and_measure"
  "prune_and_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_and_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
