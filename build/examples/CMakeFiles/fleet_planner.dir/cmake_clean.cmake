file(REMOVE_RECURSE
  "CMakeFiles/fleet_planner.dir/fleet_planner.cpp.o"
  "CMakeFiles/fleet_planner.dir/fleet_planner.cpp.o.d"
  "fleet_planner"
  "fleet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
