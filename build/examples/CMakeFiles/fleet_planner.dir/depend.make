# Empty dependencies file for fleet_planner.
# This may be replaced when dependencies are built.
