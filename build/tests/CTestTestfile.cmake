# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mib_test_common[1]_include.cmake")
include("/root/repo/build/tests/mib_test_hw[1]_include.cmake")
include("/root/repo/build/tests/mib_test_models[1]_include.cmake")
include("/root/repo/build/tests/mib_test_quant[1]_include.cmake")
include("/root/repo/build/tests/mib_test_moe[1]_include.cmake")
include("/root/repo/build/tests/mib_test_engine[1]_include.cmake")
include("/root/repo/build/tests/mib_test_parallel[1]_include.cmake")
include("/root/repo/build/tests/mib_test_specdec[1]_include.cmake")
include("/root/repo/build/tests/mib_test_workload[1]_include.cmake")
include("/root/repo/build/tests/mib_test_fleet[1]_include.cmake")
include("/root/repo/build/tests/mib_test_accuracy[1]_include.cmake")
include("/root/repo/build/tests/mib_test_core[1]_include.cmake")
include("/root/repo/build/tests/mib_test_integration[1]_include.cmake")
