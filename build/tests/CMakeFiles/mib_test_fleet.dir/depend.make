# Empty dependencies file for mib_test_fleet.
# This may be replaced when dependencies are built.
