file(REMOVE_RECURSE
  "CMakeFiles/mib_test_fleet.dir/fleet/test_faults.cpp.o"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_faults.cpp.o.d"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_fleet.cpp.o"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_fleet.cpp.o.d"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_router.cpp.o"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_router.cpp.o.d"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_slo.cpp.o"
  "CMakeFiles/mib_test_fleet.dir/fleet/test_slo.cpp.o.d"
  "mib_test_fleet"
  "mib_test_fleet.pdb"
  "mib_test_fleet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
