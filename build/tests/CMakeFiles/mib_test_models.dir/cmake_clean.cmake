file(REMOVE_RECURSE
  "CMakeFiles/mib_test_models.dir/models/test_config.cpp.o"
  "CMakeFiles/mib_test_models.dir/models/test_config.cpp.o.d"
  "CMakeFiles/mib_test_models.dir/models/test_params.cpp.o"
  "CMakeFiles/mib_test_models.dir/models/test_params.cpp.o.d"
  "CMakeFiles/mib_test_models.dir/models/test_zoo_params.cpp.o"
  "CMakeFiles/mib_test_models.dir/models/test_zoo_params.cpp.o.d"
  "mib_test_models"
  "mib_test_models.pdb"
  "mib_test_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
