# Empty dependencies file for mib_test_models.
# This may be replaced when dependencies are built.
