file(REMOVE_RECURSE
  "CMakeFiles/mib_test_moe.dir/moe/test_attention.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_attention.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_expert.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_expert.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_mla.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_mla.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_moe_layer.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_moe_layer.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_pruning.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_pruning.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_router.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_router.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_speculative.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_speculative.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_transformer.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_transformer.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_transformer_mla.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_transformer_mla.cpp.o.d"
  "CMakeFiles/mib_test_moe.dir/moe/test_vision_encoder.cpp.o"
  "CMakeFiles/mib_test_moe.dir/moe/test_vision_encoder.cpp.o.d"
  "mib_test_moe"
  "mib_test_moe.pdb"
  "mib_test_moe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
