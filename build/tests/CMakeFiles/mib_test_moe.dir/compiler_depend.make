# Empty compiler generated dependencies file for mib_test_moe.
# This may be replaced when dependencies are built.
