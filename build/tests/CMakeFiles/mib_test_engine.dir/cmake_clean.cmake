file(REMOVE_RECURSE
  "CMakeFiles/mib_test_engine.dir/engine/test_disagg.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_disagg.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_engine.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_engine.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_engine_sweeps.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_engine_sweeps.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_kv_cache.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_kv_cache.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_layer_cost.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_layer_cost.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_memory.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_memory.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_offload.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_offload.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_prefix_cache.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_prefix_cache.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_profile.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_profile.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_scheduler.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_scheduler.cpp.o.d"
  "CMakeFiles/mib_test_engine.dir/engine/test_scheduler_policy.cpp.o"
  "CMakeFiles/mib_test_engine.dir/engine/test_scheduler_policy.cpp.o.d"
  "mib_test_engine"
  "mib_test_engine.pdb"
  "mib_test_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
