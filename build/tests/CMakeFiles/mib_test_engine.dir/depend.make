# Empty dependencies file for mib_test_engine.
# This may be replaced when dependencies are built.
