file(REMOVE_RECURSE
  "CMakeFiles/mib_test_hw.dir/hw/test_device.cpp.o"
  "CMakeFiles/mib_test_hw.dir/hw/test_device.cpp.o.d"
  "CMakeFiles/mib_test_hw.dir/hw/test_interconnect.cpp.o"
  "CMakeFiles/mib_test_hw.dir/hw/test_interconnect.cpp.o.d"
  "CMakeFiles/mib_test_hw.dir/hw/test_kernel_model.cpp.o"
  "CMakeFiles/mib_test_hw.dir/hw/test_kernel_model.cpp.o.d"
  "mib_test_hw"
  "mib_test_hw.pdb"
  "mib_test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
