# Empty compiler generated dependencies file for mib_test_hw.
# This may be replaced when dependencies are built.
