file(REMOVE_RECURSE
  "CMakeFiles/mib_test_specdec.dir/specdec/test_montecarlo.cpp.o"
  "CMakeFiles/mib_test_specdec.dir/specdec/test_montecarlo.cpp.o.d"
  "CMakeFiles/mib_test_specdec.dir/specdec/test_specdec.cpp.o"
  "CMakeFiles/mib_test_specdec.dir/specdec/test_specdec.cpp.o.d"
  "mib_test_specdec"
  "mib_test_specdec.pdb"
  "mib_test_specdec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_specdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
