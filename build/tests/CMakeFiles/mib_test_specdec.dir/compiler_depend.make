# Empty compiler generated dependencies file for mib_test_specdec.
# This may be replaced when dependencies are built.
