# Empty dependencies file for mib_test_parallel.
# This may be replaced when dependencies are built.
