file(REMOVE_RECURSE
  "CMakeFiles/mib_test_parallel.dir/parallel/test_expert_placement.cpp.o"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_expert_placement.cpp.o.d"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_pipeline.cpp.o"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_pipeline.cpp.o.d"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_placement.cpp.o"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_placement.cpp.o.d"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_plan.cpp.o"
  "CMakeFiles/mib_test_parallel.dir/parallel/test_plan.cpp.o.d"
  "mib_test_parallel"
  "mib_test_parallel.pdb"
  "mib_test_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
