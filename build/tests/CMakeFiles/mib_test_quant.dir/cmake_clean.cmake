file(REMOVE_RECURSE
  "CMakeFiles/mib_test_quant.dir/quant/test_codecs.cpp.o"
  "CMakeFiles/mib_test_quant.dir/quant/test_codecs.cpp.o.d"
  "CMakeFiles/mib_test_quant.dir/quant/test_codecs_exhaustive.cpp.o"
  "CMakeFiles/mib_test_quant.dir/quant/test_codecs_exhaustive.cpp.o.d"
  "CMakeFiles/mib_test_quant.dir/quant/test_group_quant.cpp.o"
  "CMakeFiles/mib_test_quant.dir/quant/test_group_quant.cpp.o.d"
  "CMakeFiles/mib_test_quant.dir/quant/test_quantize.cpp.o"
  "CMakeFiles/mib_test_quant.dir/quant/test_quantize.cpp.o.d"
  "mib_test_quant"
  "mib_test_quant.pdb"
  "mib_test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
