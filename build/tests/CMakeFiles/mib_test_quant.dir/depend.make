# Empty dependencies file for mib_test_quant.
# This may be replaced when dependencies are built.
