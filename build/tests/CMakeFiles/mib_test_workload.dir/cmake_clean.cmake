file(REMOVE_RECURSE
  "CMakeFiles/mib_test_workload.dir/workload/test_arrivals.cpp.o"
  "CMakeFiles/mib_test_workload.dir/workload/test_arrivals.cpp.o.d"
  "CMakeFiles/mib_test_workload.dir/workload/test_conversations.cpp.o"
  "CMakeFiles/mib_test_workload.dir/workload/test_conversations.cpp.o.d"
  "CMakeFiles/mib_test_workload.dir/workload/test_workload.cpp.o"
  "CMakeFiles/mib_test_workload.dir/workload/test_workload.cpp.o.d"
  "mib_test_workload"
  "mib_test_workload.pdb"
  "mib_test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
