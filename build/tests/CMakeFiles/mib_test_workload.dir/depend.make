# Empty dependencies file for mib_test_workload.
# This may be replaced when dependencies are built.
