file(REMOVE_RECURSE
  "CMakeFiles/mib_test_core.dir/core/test_core.cpp.o"
  "CMakeFiles/mib_test_core.dir/core/test_core.cpp.o.d"
  "mib_test_core"
  "mib_test_core.pdb"
  "mib_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
