# Empty compiler generated dependencies file for mib_test_core.
# This may be replaced when dependencies are built.
