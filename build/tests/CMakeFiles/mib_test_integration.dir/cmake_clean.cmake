file(REMOVE_RECURSE
  "CMakeFiles/mib_test_integration.dir/integration/test_functional_vs_analytic.cpp.o"
  "CMakeFiles/mib_test_integration.dir/integration/test_functional_vs_analytic.cpp.o.d"
  "CMakeFiles/mib_test_integration.dir/integration/test_paper_claims.cpp.o"
  "CMakeFiles/mib_test_integration.dir/integration/test_paper_claims.cpp.o.d"
  "mib_test_integration"
  "mib_test_integration.pdb"
  "mib_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
