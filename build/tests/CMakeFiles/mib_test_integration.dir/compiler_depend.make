# Empty compiler generated dependencies file for mib_test_integration.
# This may be replaced when dependencies are built.
