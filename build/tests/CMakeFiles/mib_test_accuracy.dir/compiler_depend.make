# Empty compiler generated dependencies file for mib_test_accuracy.
# This may be replaced when dependencies are built.
