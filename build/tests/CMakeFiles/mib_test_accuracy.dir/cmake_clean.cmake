file(REMOVE_RECURSE
  "CMakeFiles/mib_test_accuracy.dir/accuracy/test_optimization_impact.cpp.o"
  "CMakeFiles/mib_test_accuracy.dir/accuracy/test_optimization_impact.cpp.o.d"
  "CMakeFiles/mib_test_accuracy.dir/accuracy/test_registry.cpp.o"
  "CMakeFiles/mib_test_accuracy.dir/accuracy/test_registry.cpp.o.d"
  "mib_test_accuracy"
  "mib_test_accuracy.pdb"
  "mib_test_accuracy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
