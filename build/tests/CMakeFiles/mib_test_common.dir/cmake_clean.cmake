file(REMOVE_RECURSE
  "CMakeFiles/mib_test_common.dir/common/test_misc.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_misc.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_tensor.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_tensor.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_thread_pool.cpp.o.d"
  "CMakeFiles/mib_test_common.dir/common/test_zipf.cpp.o"
  "CMakeFiles/mib_test_common.dir/common/test_zipf.cpp.o.d"
  "mib_test_common"
  "mib_test_common.pdb"
  "mib_test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
