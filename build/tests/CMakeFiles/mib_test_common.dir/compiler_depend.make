# Empty compiler generated dependencies file for mib_test_common.
# This may be replaced when dependencies are built.
