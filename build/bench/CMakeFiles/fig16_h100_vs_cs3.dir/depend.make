# Empty dependencies file for fig16_h100_vs_cs3.
# This may be replaced when dependencies are built.
