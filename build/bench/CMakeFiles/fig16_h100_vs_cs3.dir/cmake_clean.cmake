file(REMOVE_RECURSE
  "CMakeFiles/fig16_h100_vs_cs3.dir/fig16_h100_vs_cs3.cpp.o"
  "CMakeFiles/fig16_h100_vs_cs3.dir/fig16_h100_vs_cs3.cpp.o.d"
  "fig16_h100_vs_cs3"
  "fig16_h100_vs_cs3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_h100_vs_cs3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
