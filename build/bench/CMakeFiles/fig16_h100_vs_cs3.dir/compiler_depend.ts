# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig16_h100_vs_cs3.
