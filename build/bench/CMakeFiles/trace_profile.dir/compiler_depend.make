# Empty compiler generated dependencies file for trace_profile.
# This may be replaced when dependencies are built.
