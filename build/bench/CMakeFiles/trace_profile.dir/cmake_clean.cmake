file(REMOVE_RECURSE
  "CMakeFiles/trace_profile.dir/trace_profile.cpp.o"
  "CMakeFiles/trace_profile.dir/trace_profile.cpp.o.d"
  "trace_profile"
  "trace_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
