# Empty compiler generated dependencies file for ablate_scheduler.
# This may be replaced when dependencies are built.
