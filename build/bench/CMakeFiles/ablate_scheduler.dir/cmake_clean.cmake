file(REMOVE_RECURSE
  "CMakeFiles/ablate_scheduler.dir/ablate_scheduler.cpp.o"
  "CMakeFiles/ablate_scheduler.dir/ablate_scheduler.cpp.o.d"
  "ablate_scheduler"
  "ablate_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
