# Empty dependencies file for ablate_launch_overhead.
# This may be replaced when dependencies are built.
