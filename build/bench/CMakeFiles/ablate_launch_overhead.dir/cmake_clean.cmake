file(REMOVE_RECURSE
  "CMakeFiles/ablate_launch_overhead.dir/ablate_launch_overhead.cpp.o"
  "CMakeFiles/ablate_launch_overhead.dir/ablate_launch_overhead.cpp.o.d"
  "ablate_launch_overhead"
  "ablate_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
