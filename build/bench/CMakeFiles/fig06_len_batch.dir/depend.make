# Empty dependencies file for fig06_len_batch.
# This may be replaced when dependencies are built.
