file(REMOVE_RECURSE
  "CMakeFiles/fig06_len_batch.dir/fig06_len_batch.cpp.o"
  "CMakeFiles/fig06_len_batch.dir/fig06_len_batch.cpp.o.d"
  "fig06_len_batch"
  "fig06_len_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_len_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
