file(REMOVE_RECURSE
  "CMakeFiles/fig11_pruning.dir/fig11_pruning.cpp.o"
  "CMakeFiles/fig11_pruning.dir/fig11_pruning.cpp.o.d"
  "fig11_pruning"
  "fig11_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
