# Empty compiler generated dependencies file for fig11_pruning.
# This may be replaced when dependencies are built.
