file(REMOVE_RECURSE
  "CMakeFiles/extra_hw_generations.dir/extra_hw_generations.cpp.o"
  "CMakeFiles/extra_hw_generations.dir/extra_hw_generations.cpp.o.d"
  "extra_hw_generations"
  "extra_hw_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_hw_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
