# Empty compiler generated dependencies file for extra_hw_generations.
# This may be replaced when dependencies are built.
