file(REMOVE_RECURSE
  "CMakeFiles/extra_frontier_capacity.dir/extra_frontier_capacity.cpp.o"
  "CMakeFiles/extra_frontier_capacity.dir/extra_frontier_capacity.cpp.o.d"
  "extra_frontier_capacity"
  "extra_frontier_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_frontier_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
