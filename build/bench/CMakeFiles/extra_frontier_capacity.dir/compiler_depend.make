# Empty compiler generated dependencies file for extra_frontier_capacity.
# This may be replaced when dependencies are built.
