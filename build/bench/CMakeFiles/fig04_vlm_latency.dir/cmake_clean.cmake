file(REMOVE_RECURSE
  "CMakeFiles/fig04_vlm_latency.dir/fig04_vlm_latency.cpp.o"
  "CMakeFiles/fig04_vlm_latency.dir/fig04_vlm_latency.cpp.o.d"
  "fig04_vlm_latency"
  "fig04_vlm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_vlm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
