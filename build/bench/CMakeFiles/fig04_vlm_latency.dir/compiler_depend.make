# Empty compiler generated dependencies file for fig04_vlm_latency.
# This may be replaced when dependencies are built.
