file(REMOVE_RECURSE
  "CMakeFiles/fig14_fused_moe.dir/fig14_fused_moe.cpp.o"
  "CMakeFiles/fig14_fused_moe.dir/fig14_fused_moe.cpp.o.d"
  "fig14_fused_moe"
  "fig14_fused_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fused_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
