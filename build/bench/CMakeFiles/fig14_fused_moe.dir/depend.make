# Empty dependencies file for fig14_fused_moe.
# This may be replaced when dependencies are built.
