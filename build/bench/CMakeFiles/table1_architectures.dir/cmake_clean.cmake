file(REMOVE_RECURSE
  "CMakeFiles/table1_architectures.dir/table1_architectures.cpp.o"
  "CMakeFiles/table1_architectures.dir/table1_architectures.cpp.o.d"
  "table1_architectures"
  "table1_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
