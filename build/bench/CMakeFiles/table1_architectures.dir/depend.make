# Empty dependencies file for table1_architectures.
# This may be replaced when dependencies are built.
