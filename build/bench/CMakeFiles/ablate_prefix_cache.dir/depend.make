# Empty dependencies file for ablate_prefix_cache.
# This may be replaced when dependencies are built.
