file(REMOVE_RECURSE
  "CMakeFiles/ablate_prefix_cache.dir/ablate_prefix_cache.cpp.o"
  "CMakeFiles/ablate_prefix_cache.dir/ablate_prefix_cache.cpp.o.d"
  "ablate_prefix_cache"
  "ablate_prefix_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_prefix_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
