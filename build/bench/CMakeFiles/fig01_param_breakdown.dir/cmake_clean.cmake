file(REMOVE_RECURSE
  "CMakeFiles/fig01_param_breakdown.dir/fig01_param_breakdown.cpp.o"
  "CMakeFiles/fig01_param_breakdown.dir/fig01_param_breakdown.cpp.o.d"
  "fig01_param_breakdown"
  "fig01_param_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_param_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
