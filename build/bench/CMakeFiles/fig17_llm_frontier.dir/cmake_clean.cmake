file(REMOVE_RECURSE
  "CMakeFiles/fig17_llm_frontier.dir/fig17_llm_frontier.cpp.o"
  "CMakeFiles/fig17_llm_frontier.dir/fig17_llm_frontier.cpp.o.d"
  "fig17_llm_frontier"
  "fig17_llm_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_llm_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
