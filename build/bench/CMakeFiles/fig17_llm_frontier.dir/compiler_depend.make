# Empty compiler generated dependencies file for fig17_llm_frontier.
# This may be replaced when dependencies are built.
