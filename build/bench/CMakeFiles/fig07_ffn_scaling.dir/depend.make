# Empty dependencies file for fig07_ffn_scaling.
# This may be replaced when dependencies are built.
