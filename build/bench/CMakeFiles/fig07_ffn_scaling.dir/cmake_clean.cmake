file(REMOVE_RECURSE
  "CMakeFiles/fig07_ffn_scaling.dir/fig07_ffn_scaling.cpp.o"
  "CMakeFiles/fig07_ffn_scaling.dir/fig07_ffn_scaling.cpp.o.d"
  "fig07_ffn_scaling"
  "fig07_ffn_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ffn_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
