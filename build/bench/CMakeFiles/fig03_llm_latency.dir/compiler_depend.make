# Empty compiler generated dependencies file for fig03_llm_latency.
# This may be replaced when dependencies are built.
