file(REMOVE_RECURSE
  "CMakeFiles/fig03_llm_latency.dir/fig03_llm_latency.cpp.o"
  "CMakeFiles/fig03_llm_latency.dir/fig03_llm_latency.cpp.o.d"
  "fig03_llm_latency"
  "fig03_llm_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_llm_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
