file(REMOVE_RECURSE
  "CMakeFiles/extra_energy.dir/extra_energy.cpp.o"
  "CMakeFiles/extra_energy.dir/extra_energy.cpp.o.d"
  "extra_energy"
  "extra_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
