# Empty dependencies file for extra_energy.
# This may be replaced when dependencies are built.
