file(REMOVE_RECURSE
  "CMakeFiles/fig08_expert_scaling.dir/fig08_expert_scaling.cpp.o"
  "CMakeFiles/fig08_expert_scaling.dir/fig08_expert_scaling.cpp.o.d"
  "fig08_expert_scaling"
  "fig08_expert_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_expert_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
