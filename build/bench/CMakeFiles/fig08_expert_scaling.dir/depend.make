# Empty dependencies file for fig08_expert_scaling.
# This may be replaced when dependencies are built.
