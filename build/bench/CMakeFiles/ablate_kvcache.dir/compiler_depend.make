# Empty compiler generated dependencies file for ablate_kvcache.
# This may be replaced when dependencies are built.
