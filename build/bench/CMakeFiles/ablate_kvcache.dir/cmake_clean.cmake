file(REMOVE_RECURSE
  "CMakeFiles/ablate_kvcache.dir/ablate_kvcache.cpp.o"
  "CMakeFiles/ablate_kvcache.dir/ablate_kvcache.cpp.o.d"
  "ablate_kvcache"
  "ablate_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
