# Empty dependencies file for extra_optimization_frontier.
# This may be replaced when dependencies are built.
