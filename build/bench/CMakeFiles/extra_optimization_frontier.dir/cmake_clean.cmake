file(REMOVE_RECURSE
  "CMakeFiles/extra_optimization_frontier.dir/extra_optimization_frontier.cpp.o"
  "CMakeFiles/extra_optimization_frontier.dir/extra_optimization_frontier.cpp.o.d"
  "extra_optimization_frontier"
  "extra_optimization_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_optimization_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
