file(REMOVE_RECURSE
  "CMakeFiles/extra_offload.dir/extra_offload.cpp.o"
  "CMakeFiles/extra_offload.dir/extra_offload.cpp.o.d"
  "extra_offload"
  "extra_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
