# Empty compiler generated dependencies file for extra_offload.
# This may be replaced when dependencies are built.
