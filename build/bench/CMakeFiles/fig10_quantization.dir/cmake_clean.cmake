file(REMOVE_RECURSE
  "CMakeFiles/fig10_quantization.dir/fig10_quantization.cpp.o"
  "CMakeFiles/fig10_quantization.dir/fig10_quantization.cpp.o.d"
  "fig10_quantization"
  "fig10_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
