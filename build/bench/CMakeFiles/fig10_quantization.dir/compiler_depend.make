# Empty compiler generated dependencies file for fig10_quantization.
# This may be replaced when dependencies are built.
