# Empty dependencies file for suite_manifest.
# This may be replaced when dependencies are built.
