file(REMOVE_RECURSE
  "CMakeFiles/suite_manifest.dir/suite_manifest.cpp.o"
  "CMakeFiles/suite_manifest.dir/suite_manifest.cpp.o.d"
  "suite_manifest"
  "suite_manifest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_manifest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
