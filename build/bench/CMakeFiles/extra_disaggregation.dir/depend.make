# Empty dependencies file for extra_disaggregation.
# This may be replaced when dependencies are built.
