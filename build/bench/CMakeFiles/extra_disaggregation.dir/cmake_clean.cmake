file(REMOVE_RECURSE
  "CMakeFiles/extra_disaggregation.dir/extra_disaggregation.cpp.o"
  "CMakeFiles/extra_disaggregation.dir/extra_disaggregation.cpp.o.d"
  "extra_disaggregation"
  "extra_disaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_disaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
