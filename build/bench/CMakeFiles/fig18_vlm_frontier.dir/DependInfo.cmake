
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig18_vlm_frontier.cpp" "bench/CMakeFiles/fig18_vlm_frontier.dir/fig18_vlm_frontier.cpp.o" "gcc" "bench/CMakeFiles/fig18_vlm_frontier.dir/fig18_vlm_frontier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/accuracy/CMakeFiles/mib_accuracy.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/mib_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/specdec/CMakeFiles/mib_specdec.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mib_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mib_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/moe/CMakeFiles/mib_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mib_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mib_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
