# Empty compiler generated dependencies file for fig18_vlm_frontier.
# This may be replaced when dependencies are built.
