file(REMOVE_RECURSE
  "CMakeFiles/fig18_vlm_frontier.dir/fig18_vlm_frontier.cpp.o"
  "CMakeFiles/fig18_vlm_frontier.dir/fig18_vlm_frontier.cpp.o.d"
  "fig18_vlm_frontier"
  "fig18_vlm_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_vlm_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
