# Empty dependencies file for extra_fleet_capacity.
# This may be replaced when dependencies are built.
