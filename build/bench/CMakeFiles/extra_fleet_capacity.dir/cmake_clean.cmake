file(REMOVE_RECURSE
  "CMakeFiles/extra_fleet_capacity.dir/extra_fleet_capacity.cpp.o"
  "CMakeFiles/extra_fleet_capacity.dir/extra_fleet_capacity.cpp.o.d"
  "extra_fleet_capacity"
  "extra_fleet_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_fleet_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
