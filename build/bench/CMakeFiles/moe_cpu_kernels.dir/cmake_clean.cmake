file(REMOVE_RECURSE
  "CMakeFiles/moe_cpu_kernels.dir/moe_cpu_kernels.cpp.o"
  "CMakeFiles/moe_cpu_kernels.dir/moe_cpu_kernels.cpp.o.d"
  "moe_cpu_kernels"
  "moe_cpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_cpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
