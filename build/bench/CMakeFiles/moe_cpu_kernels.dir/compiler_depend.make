# Empty compiler generated dependencies file for moe_cpu_kernels.
# This may be replaced when dependencies are built.
