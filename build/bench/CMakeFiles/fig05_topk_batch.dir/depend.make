# Empty dependencies file for fig05_topk_batch.
# This may be replaced when dependencies are built.
