file(REMOVE_RECURSE
  "CMakeFiles/fig05_topk_batch.dir/fig05_topk_batch.cpp.o"
  "CMakeFiles/fig05_topk_batch.dir/fig05_topk_batch.cpp.o.d"
  "fig05_topk_batch"
  "fig05_topk_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_topk_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
