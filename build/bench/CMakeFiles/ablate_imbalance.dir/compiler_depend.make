# Empty compiler generated dependencies file for ablate_imbalance.
# This may be replaced when dependencies are built.
