file(REMOVE_RECURSE
  "CMakeFiles/ablate_imbalance.dir/ablate_imbalance.cpp.o"
  "CMakeFiles/ablate_imbalance.dir/ablate_imbalance.cpp.o.d"
  "ablate_imbalance"
  "ablate_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
