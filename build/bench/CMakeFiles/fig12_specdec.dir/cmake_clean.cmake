file(REMOVE_RECURSE
  "CMakeFiles/fig12_specdec.dir/fig12_specdec.cpp.o"
  "CMakeFiles/fig12_specdec.dir/fig12_specdec.cpp.o.d"
  "fig12_specdec"
  "fig12_specdec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_specdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
