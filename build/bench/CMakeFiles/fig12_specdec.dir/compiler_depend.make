# Empty compiler generated dependencies file for fig12_specdec.
# This may be replaced when dependencies are built.
