file(REMOVE_RECURSE
  "CMakeFiles/fig15_activation_freq.dir/fig15_activation_freq.cpp.o"
  "CMakeFiles/fig15_activation_freq.dir/fig15_activation_freq.cpp.o.d"
  "fig15_activation_freq"
  "fig15_activation_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_activation_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
