# Empty dependencies file for fig15_activation_freq.
# This may be replaced when dependencies are built.
