file(REMOVE_RECURSE
  "CMakeFiles/mib_accuracy.dir/optimization_impact.cpp.o"
  "CMakeFiles/mib_accuracy.dir/optimization_impact.cpp.o.d"
  "CMakeFiles/mib_accuracy.dir/registry.cpp.o"
  "CMakeFiles/mib_accuracy.dir/registry.cpp.o.d"
  "libmib_accuracy.a"
  "libmib_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
