file(REMOVE_RECURSE
  "libmib_accuracy.a"
)
