# Empty dependencies file for mib_accuracy.
# This may be replaced when dependencies are built.
