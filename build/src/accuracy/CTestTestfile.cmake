# CMake generated Testfile for 
# Source directory: /root/repo/src/accuracy
# Build directory: /root/repo/build/src/accuracy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
