
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moe/attention.cpp" "src/moe/CMakeFiles/mib_moe.dir/attention.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/attention.cpp.o.d"
  "/root/repo/src/moe/expert.cpp" "src/moe/CMakeFiles/mib_moe.dir/expert.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/expert.cpp.o.d"
  "/root/repo/src/moe/mla.cpp" "src/moe/CMakeFiles/mib_moe.dir/mla.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/mla.cpp.o.d"
  "/root/repo/src/moe/moe_layer.cpp" "src/moe/CMakeFiles/mib_moe.dir/moe_layer.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/moe_layer.cpp.o.d"
  "/root/repo/src/moe/pruning.cpp" "src/moe/CMakeFiles/mib_moe.dir/pruning.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/pruning.cpp.o.d"
  "/root/repo/src/moe/router.cpp" "src/moe/CMakeFiles/mib_moe.dir/router.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/router.cpp.o.d"
  "/root/repo/src/moe/transformer.cpp" "src/moe/CMakeFiles/mib_moe.dir/transformer.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/transformer.cpp.o.d"
  "/root/repo/src/moe/vision_encoder.cpp" "src/moe/CMakeFiles/mib_moe.dir/vision_encoder.cpp.o" "gcc" "src/moe/CMakeFiles/mib_moe.dir/vision_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mib_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
