# Empty compiler generated dependencies file for mib_moe.
# This may be replaced when dependencies are built.
