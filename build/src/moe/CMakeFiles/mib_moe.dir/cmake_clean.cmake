file(REMOVE_RECURSE
  "CMakeFiles/mib_moe.dir/attention.cpp.o"
  "CMakeFiles/mib_moe.dir/attention.cpp.o.d"
  "CMakeFiles/mib_moe.dir/expert.cpp.o"
  "CMakeFiles/mib_moe.dir/expert.cpp.o.d"
  "CMakeFiles/mib_moe.dir/mla.cpp.o"
  "CMakeFiles/mib_moe.dir/mla.cpp.o.d"
  "CMakeFiles/mib_moe.dir/moe_layer.cpp.o"
  "CMakeFiles/mib_moe.dir/moe_layer.cpp.o.d"
  "CMakeFiles/mib_moe.dir/pruning.cpp.o"
  "CMakeFiles/mib_moe.dir/pruning.cpp.o.d"
  "CMakeFiles/mib_moe.dir/router.cpp.o"
  "CMakeFiles/mib_moe.dir/router.cpp.o.d"
  "CMakeFiles/mib_moe.dir/transformer.cpp.o"
  "CMakeFiles/mib_moe.dir/transformer.cpp.o.d"
  "CMakeFiles/mib_moe.dir/vision_encoder.cpp.o"
  "CMakeFiles/mib_moe.dir/vision_encoder.cpp.o.d"
  "libmib_moe.a"
  "libmib_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
