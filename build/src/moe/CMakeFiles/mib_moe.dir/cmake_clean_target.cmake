file(REMOVE_RECURSE
  "libmib_moe.a"
)
