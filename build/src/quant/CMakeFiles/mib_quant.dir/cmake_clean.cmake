file(REMOVE_RECURSE
  "CMakeFiles/mib_quant.dir/codecs.cpp.o"
  "CMakeFiles/mib_quant.dir/codecs.cpp.o.d"
  "CMakeFiles/mib_quant.dir/quantize.cpp.o"
  "CMakeFiles/mib_quant.dir/quantize.cpp.o.d"
  "libmib_quant.a"
  "libmib_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
