file(REMOVE_RECURSE
  "libmib_quant.a"
)
