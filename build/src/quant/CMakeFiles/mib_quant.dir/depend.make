# Empty dependencies file for mib_quant.
# This may be replaced when dependencies are built.
