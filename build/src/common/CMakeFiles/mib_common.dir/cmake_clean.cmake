file(REMOVE_RECURSE
  "CMakeFiles/mib_common.dir/error.cpp.o"
  "CMakeFiles/mib_common.dir/error.cpp.o.d"
  "CMakeFiles/mib_common.dir/rng.cpp.o"
  "CMakeFiles/mib_common.dir/rng.cpp.o.d"
  "CMakeFiles/mib_common.dir/stats.cpp.o"
  "CMakeFiles/mib_common.dir/stats.cpp.o.d"
  "CMakeFiles/mib_common.dir/string_util.cpp.o"
  "CMakeFiles/mib_common.dir/string_util.cpp.o.d"
  "CMakeFiles/mib_common.dir/table.cpp.o"
  "CMakeFiles/mib_common.dir/table.cpp.o.d"
  "CMakeFiles/mib_common.dir/tensor.cpp.o"
  "CMakeFiles/mib_common.dir/tensor.cpp.o.d"
  "CMakeFiles/mib_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mib_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/mib_common.dir/zipf.cpp.o"
  "CMakeFiles/mib_common.dir/zipf.cpp.o.d"
  "libmib_common.a"
  "libmib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
