# Empty dependencies file for mib_common.
# This may be replaced when dependencies are built.
