file(REMOVE_RECURSE
  "libmib_common.a"
)
