# Empty compiler generated dependencies file for mib_parallel.
# This may be replaced when dependencies are built.
