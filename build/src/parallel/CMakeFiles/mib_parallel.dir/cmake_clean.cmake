file(REMOVE_RECURSE
  "CMakeFiles/mib_parallel.dir/expert_placement.cpp.o"
  "CMakeFiles/mib_parallel.dir/expert_placement.cpp.o.d"
  "CMakeFiles/mib_parallel.dir/pipeline.cpp.o"
  "CMakeFiles/mib_parallel.dir/pipeline.cpp.o.d"
  "CMakeFiles/mib_parallel.dir/plan.cpp.o"
  "CMakeFiles/mib_parallel.dir/plan.cpp.o.d"
  "libmib_parallel.a"
  "libmib_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
