
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/expert_placement.cpp" "src/parallel/CMakeFiles/mib_parallel.dir/expert_placement.cpp.o" "gcc" "src/parallel/CMakeFiles/mib_parallel.dir/expert_placement.cpp.o.d"
  "/root/repo/src/parallel/pipeline.cpp" "src/parallel/CMakeFiles/mib_parallel.dir/pipeline.cpp.o" "gcc" "src/parallel/CMakeFiles/mib_parallel.dir/pipeline.cpp.o.d"
  "/root/repo/src/parallel/plan.cpp" "src/parallel/CMakeFiles/mib_parallel.dir/plan.cpp.o" "gcc" "src/parallel/CMakeFiles/mib_parallel.dir/plan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mib_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
