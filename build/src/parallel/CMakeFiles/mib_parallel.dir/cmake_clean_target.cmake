file(REMOVE_RECURSE
  "libmib_parallel.a"
)
