file(REMOVE_RECURSE
  "CMakeFiles/mib_workload.dir/activation_study.cpp.o"
  "CMakeFiles/mib_workload.dir/activation_study.cpp.o.d"
  "CMakeFiles/mib_workload.dir/arrivals.cpp.o"
  "CMakeFiles/mib_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/mib_workload.dir/generator.cpp.o"
  "CMakeFiles/mib_workload.dir/generator.cpp.o.d"
  "libmib_workload.a"
  "libmib_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
