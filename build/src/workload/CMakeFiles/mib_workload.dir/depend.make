# Empty dependencies file for mib_workload.
# This may be replaced when dependencies are built.
