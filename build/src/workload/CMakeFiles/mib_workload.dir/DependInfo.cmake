
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/activation_study.cpp" "src/workload/CMakeFiles/mib_workload.dir/activation_study.cpp.o" "gcc" "src/workload/CMakeFiles/mib_workload.dir/activation_study.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/workload/CMakeFiles/mib_workload.dir/arrivals.cpp.o" "gcc" "src/workload/CMakeFiles/mib_workload.dir/arrivals.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/mib_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/mib_workload.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  "/root/repo/build/src/moe/CMakeFiles/mib_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mib_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
