file(REMOVE_RECURSE
  "libmib_workload.a"
)
