
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cpp" "src/hw/CMakeFiles/mib_hw.dir/cluster.cpp.o" "gcc" "src/hw/CMakeFiles/mib_hw.dir/cluster.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/mib_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/mib_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/interconnect.cpp" "src/hw/CMakeFiles/mib_hw.dir/interconnect.cpp.o" "gcc" "src/hw/CMakeFiles/mib_hw.dir/interconnect.cpp.o.d"
  "/root/repo/src/hw/kernel_model.cpp" "src/hw/CMakeFiles/mib_hw.dir/kernel_model.cpp.o" "gcc" "src/hw/CMakeFiles/mib_hw.dir/kernel_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
