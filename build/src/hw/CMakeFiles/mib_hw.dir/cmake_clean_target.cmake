file(REMOVE_RECURSE
  "libmib_hw.a"
)
