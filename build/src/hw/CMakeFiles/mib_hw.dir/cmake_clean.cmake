file(REMOVE_RECURSE
  "CMakeFiles/mib_hw.dir/cluster.cpp.o"
  "CMakeFiles/mib_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/mib_hw.dir/device.cpp.o"
  "CMakeFiles/mib_hw.dir/device.cpp.o.d"
  "CMakeFiles/mib_hw.dir/interconnect.cpp.o"
  "CMakeFiles/mib_hw.dir/interconnect.cpp.o.d"
  "CMakeFiles/mib_hw.dir/kernel_model.cpp.o"
  "CMakeFiles/mib_hw.dir/kernel_model.cpp.o.d"
  "libmib_hw.a"
  "libmib_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
