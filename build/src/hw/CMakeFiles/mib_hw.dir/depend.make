# Empty dependencies file for mib_hw.
# This may be replaced when dependencies are built.
