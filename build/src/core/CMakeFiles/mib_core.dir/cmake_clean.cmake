file(REMOVE_RECURSE
  "CMakeFiles/mib_core.dir/experiments.cpp.o"
  "CMakeFiles/mib_core.dir/experiments.cpp.o.d"
  "CMakeFiles/mib_core.dir/report.cpp.o"
  "CMakeFiles/mib_core.dir/report.cpp.o.d"
  "CMakeFiles/mib_core.dir/scenario.cpp.o"
  "CMakeFiles/mib_core.dir/scenario.cpp.o.d"
  "libmib_core.a"
  "libmib_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
