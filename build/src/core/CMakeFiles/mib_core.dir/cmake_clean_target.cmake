file(REMOVE_RECURSE
  "libmib_core.a"
)
