# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hw")
subdirs("models")
subdirs("quant")
subdirs("moe")
subdirs("engine")
subdirs("parallel")
subdirs("specdec")
subdirs("workload")
subdirs("fleet")
subdirs("accuracy")
subdirs("core")
