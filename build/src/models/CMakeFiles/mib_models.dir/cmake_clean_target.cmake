file(REMOVE_RECURSE
  "libmib_models.a"
)
