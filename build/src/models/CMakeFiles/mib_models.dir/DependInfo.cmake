
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/config.cpp" "src/models/CMakeFiles/mib_models.dir/config.cpp.o" "gcc" "src/models/CMakeFiles/mib_models.dir/config.cpp.o.d"
  "/root/repo/src/models/params.cpp" "src/models/CMakeFiles/mib_models.dir/params.cpp.o" "gcc" "src/models/CMakeFiles/mib_models.dir/params.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/models/CMakeFiles/mib_models.dir/zoo.cpp.o" "gcc" "src/models/CMakeFiles/mib_models.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
