# Empty dependencies file for mib_models.
# This may be replaced when dependencies are built.
