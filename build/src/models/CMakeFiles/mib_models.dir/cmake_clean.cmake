file(REMOVE_RECURSE
  "CMakeFiles/mib_models.dir/config.cpp.o"
  "CMakeFiles/mib_models.dir/config.cpp.o.d"
  "CMakeFiles/mib_models.dir/params.cpp.o"
  "CMakeFiles/mib_models.dir/params.cpp.o.d"
  "CMakeFiles/mib_models.dir/zoo.cpp.o"
  "CMakeFiles/mib_models.dir/zoo.cpp.o.d"
  "libmib_models.a"
  "libmib_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
