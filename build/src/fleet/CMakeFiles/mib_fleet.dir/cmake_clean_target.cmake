file(REMOVE_RECURSE
  "libmib_fleet.a"
)
