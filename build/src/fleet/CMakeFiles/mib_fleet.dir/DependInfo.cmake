
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/faults.cpp" "src/fleet/CMakeFiles/mib_fleet.dir/faults.cpp.o" "gcc" "src/fleet/CMakeFiles/mib_fleet.dir/faults.cpp.o.d"
  "/root/repo/src/fleet/fleet.cpp" "src/fleet/CMakeFiles/mib_fleet.dir/fleet.cpp.o" "gcc" "src/fleet/CMakeFiles/mib_fleet.dir/fleet.cpp.o.d"
  "/root/repo/src/fleet/replica.cpp" "src/fleet/CMakeFiles/mib_fleet.dir/replica.cpp.o" "gcc" "src/fleet/CMakeFiles/mib_fleet.dir/replica.cpp.o.d"
  "/root/repo/src/fleet/router.cpp" "src/fleet/CMakeFiles/mib_fleet.dir/router.cpp.o" "gcc" "src/fleet/CMakeFiles/mib_fleet.dir/router.cpp.o.d"
  "/root/repo/src/fleet/slo.cpp" "src/fleet/CMakeFiles/mib_fleet.dir/slo.cpp.o" "gcc" "src/fleet/CMakeFiles/mib_fleet.dir/slo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mib_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mib_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mib_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  "/root/repo/build/src/moe/CMakeFiles/mib_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/mib_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
