file(REMOVE_RECURSE
  "CMakeFiles/mib_fleet.dir/faults.cpp.o"
  "CMakeFiles/mib_fleet.dir/faults.cpp.o.d"
  "CMakeFiles/mib_fleet.dir/fleet.cpp.o"
  "CMakeFiles/mib_fleet.dir/fleet.cpp.o.d"
  "CMakeFiles/mib_fleet.dir/replica.cpp.o"
  "CMakeFiles/mib_fleet.dir/replica.cpp.o.d"
  "CMakeFiles/mib_fleet.dir/router.cpp.o"
  "CMakeFiles/mib_fleet.dir/router.cpp.o.d"
  "CMakeFiles/mib_fleet.dir/slo.cpp.o"
  "CMakeFiles/mib_fleet.dir/slo.cpp.o.d"
  "libmib_fleet.a"
  "libmib_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
