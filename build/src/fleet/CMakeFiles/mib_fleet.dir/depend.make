# Empty dependencies file for mib_fleet.
# This may be replaced when dependencies are built.
