
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/disagg.cpp" "src/engine/CMakeFiles/mib_engine.dir/disagg.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/disagg.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "src/engine/CMakeFiles/mib_engine.dir/engine.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/engine.cpp.o.d"
  "/root/repo/src/engine/kv_cache.cpp" "src/engine/CMakeFiles/mib_engine.dir/kv_cache.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/kv_cache.cpp.o.d"
  "/root/repo/src/engine/layer_cost.cpp" "src/engine/CMakeFiles/mib_engine.dir/layer_cost.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/layer_cost.cpp.o.d"
  "/root/repo/src/engine/memory.cpp" "src/engine/CMakeFiles/mib_engine.dir/memory.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/memory.cpp.o.d"
  "/root/repo/src/engine/offload.cpp" "src/engine/CMakeFiles/mib_engine.dir/offload.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/offload.cpp.o.d"
  "/root/repo/src/engine/scheduler.cpp" "src/engine/CMakeFiles/mib_engine.dir/scheduler.cpp.o" "gcc" "src/engine/CMakeFiles/mib_engine.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mib_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mib_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
