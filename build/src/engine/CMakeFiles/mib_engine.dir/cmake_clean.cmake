file(REMOVE_RECURSE
  "CMakeFiles/mib_engine.dir/disagg.cpp.o"
  "CMakeFiles/mib_engine.dir/disagg.cpp.o.d"
  "CMakeFiles/mib_engine.dir/engine.cpp.o"
  "CMakeFiles/mib_engine.dir/engine.cpp.o.d"
  "CMakeFiles/mib_engine.dir/kv_cache.cpp.o"
  "CMakeFiles/mib_engine.dir/kv_cache.cpp.o.d"
  "CMakeFiles/mib_engine.dir/layer_cost.cpp.o"
  "CMakeFiles/mib_engine.dir/layer_cost.cpp.o.d"
  "CMakeFiles/mib_engine.dir/memory.cpp.o"
  "CMakeFiles/mib_engine.dir/memory.cpp.o.d"
  "CMakeFiles/mib_engine.dir/offload.cpp.o"
  "CMakeFiles/mib_engine.dir/offload.cpp.o.d"
  "CMakeFiles/mib_engine.dir/scheduler.cpp.o"
  "CMakeFiles/mib_engine.dir/scheduler.cpp.o.d"
  "libmib_engine.a"
  "libmib_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
