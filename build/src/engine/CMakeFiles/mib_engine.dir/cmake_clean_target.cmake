file(REMOVE_RECURSE
  "libmib_engine.a"
)
