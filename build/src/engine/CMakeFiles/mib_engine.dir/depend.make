# Empty dependencies file for mib_engine.
# This may be replaced when dependencies are built.
