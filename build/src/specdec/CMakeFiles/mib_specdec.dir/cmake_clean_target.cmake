file(REMOVE_RECURSE
  "libmib_specdec.a"
)
