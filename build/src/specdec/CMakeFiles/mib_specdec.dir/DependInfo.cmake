
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specdec/acceptance.cpp" "src/specdec/CMakeFiles/mib_specdec.dir/acceptance.cpp.o" "gcc" "src/specdec/CMakeFiles/mib_specdec.dir/acceptance.cpp.o.d"
  "/root/repo/src/specdec/specdec.cpp" "src/specdec/CMakeFiles/mib_specdec.dir/specdec.cpp.o" "gcc" "src/specdec/CMakeFiles/mib_specdec.dir/specdec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mib_models.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mib_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/mib_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mib_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
