file(REMOVE_RECURSE
  "CMakeFiles/mib_specdec.dir/acceptance.cpp.o"
  "CMakeFiles/mib_specdec.dir/acceptance.cpp.o.d"
  "CMakeFiles/mib_specdec.dir/specdec.cpp.o"
  "CMakeFiles/mib_specdec.dir/specdec.cpp.o.d"
  "libmib_specdec.a"
  "libmib_specdec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mib_specdec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
