// Replicated front-end routers: fail-over, stale breaker views, and the
// routers=1 collapse back to the single-router fleet.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fleet/control_plane.h"
#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

// --- config validation ---

TEST(ControlPlane, ValidationRejectsBadConfigs) {
  ControlPlaneConfig bad;
  bad.routers = 0;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControlPlaneConfig{};
  bad.view_sync_interval_s = -0.1;
  EXPECT_THROW(bad.validate(), Error);
  bad = ControlPlaneConfig{};
  bad.failover_detection_s = 0.0;
  EXPECT_THROW(bad.validate(), Error);
  // Fault on a router outside the plane.
  bad = ControlPlaneConfig{};
  bad.router_faults.push_back(RouterFaultWindow{1, 0.5, 1.0});
  EXPECT_THROW(bad.validate(), Error);
  // Overlapping windows for one router.
  bad = ControlPlaneConfig{};
  bad.routers = 2;
  bad.router_faults.push_back(RouterFaultWindow{1, 0.5, 1.0});
  bad.router_faults.push_back(RouterFaultWindow{1, 0.8, 1.2});
  EXPECT_THROW(bad.validate(), Error);
  // Disjoint windows are fine.
  bad.router_faults[1] = RouterFaultWindow{1, 1.0, 1.2};
  EXPECT_NO_THROW(bad.validate());
}

// --- plane unit behaviour ---

TEST(ControlPlane, HomeAssignmentAndSurvivor) {
  ControlPlaneConfig cc;
  cc.routers = 3;
  cc.router_faults.push_back(RouterFaultWindow{0, 1.0, 2.0});
  cc.router_faults.push_back(RouterFaultWindow{1, 1.5, 2.5});
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_EQ(plane.assigned_router(0), 0);
  EXPECT_EQ(plane.assigned_router(4), 1);
  EXPECT_EQ(plane.assigned_router(11), 2);
  EXPECT_EQ(plane.survivor(0.5), 0);
  EXPECT_EQ(plane.survivor(1.2), 1);   // router 0 down
  EXPECT_EQ(plane.survivor(1.7), 2);   // routers 0 and 1 down
  EXPECT_EQ(plane.survivor(2.1), 0);   // router 0 back
}

TEST(ControlPlane, WholePlaneDarkHasNoSurvivor) {
  ControlPlaneConfig cc;
  cc.router_faults.push_back(RouterFaultWindow{0, 1.0, 2.0});
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_EQ(plane.survivor(1.5), -1);
  EXPECT_DOUBLE_EQ(plane.next_router_transition_after(1.5), 2.0);
}

TEST(ControlPlane, StaggeredSyncsAgeViewsIndependently) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.view_sync_interval_s = 0.4;
  ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  ASSERT_TRUE(plane.stale_views());
  // Boot views say everything is routable.
  EXPECT_TRUE(plane.view_ok(0, 0));
  EXPECT_TRUE(plane.view_ok(1, 0));
  // First deadlines are staggered: router 0 at 0.2, router 1 at 0.4.
  EXPECT_DOUBLE_EQ(plane.next_sync_after(0.0), 0.2);
  // Replica 0 goes unroutable; only router 0's sync has fired by t=0.25.
  plane.sync(0.25, [](int i) { return i != 0; });
  EXPECT_FALSE(plane.view_ok(0, 0));
  EXPECT_TRUE(plane.view_ok(1, 0));  // stale — still believes replica 0
  EXPECT_DOUBLE_EQ(plane.next_sync_after(0.25), 0.4);
  // The disagreement clock charges the window where views differ.
  plane.accumulate_disagreement(0.25, 0.4);
  EXPECT_DOUBLE_EQ(plane.disagreement_s(), 0.15);
  // Router 1 catches up at its own deadline; disagreement stops accruing.
  plane.sync(0.4, [](int i) { return i != 0; });
  EXPECT_FALSE(plane.view_ok(1, 0));
  plane.accumulate_disagreement(0.4, 1.0);
  EXPECT_DOUBLE_EQ(plane.disagreement_s(), 0.15);
}

TEST(ControlPlane, LiveViewSyncsEveryCall) {
  ControlPlane plane(ControlPlaneConfig{}, RoutePolicy::kLeastOutstanding, 7,
                     2);
  EXPECT_FALSE(plane.stale_views());
  EXPECT_EQ(plane.next_sync_after(0.0),
            std::numeric_limits<double>::infinity());
  plane.sync(0.1, [](int i) { return i != 1; });
  EXPECT_TRUE(plane.view_ok(0, 0));
  EXPECT_FALSE(plane.view_ok(0, 1));
  // Disagreement is undefined for a single live view.
  plane.accumulate_disagreement(0.0, 1.0);
  EXPECT_DOUBLE_EQ(plane.disagreement_s(), 0.0);
}

// --- end-to-end: router fail-over ---

TEST(RouterFailover, DeadHomeRouterStrandsThenFailsOver) {
  auto fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.failover_detection_s = 0.05;
  fc.control.router_faults.push_back(RouterFaultWindow{0, 0.3, 1.5});
  fc.retry.max_retries = 12;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  EXPECT_GT(r.router_stranded, 0);
  // Every stranded request is flagged, and fail-over costs it at least the
  // detection lag before first token.
  long long flagged = 0;
  for (const auto& rec : r.requests) {
    if (!rec.router_failover) continue;
    ++flagged;
    if (rec.status == RequestStatus::kCompleted) {
      EXPECT_GE(rec.first_token_s - rec.arrival_s,
                fc.control.failover_detection_s);
    }
  }
  EXPECT_GE(flagged, 1);
  EXPECT_LE(flagged, r.router_stranded);  // re-strands count once per event
  // No stale views configured: disagreement metrics stay zero.
  EXPECT_EQ(r.stale_dispatches, 0);
  EXPECT_DOUBLE_EQ(r.view_disagreement_s, 0.0);
}

TEST(RouterFailover, WholePlaneOutageParksWorkUntilRevival) {
  auto fc = base_cfg(2);
  fc.control.router_faults.push_back(RouterFaultWindow{0, 0.2, 0.8});
  fc.retry.max_retries = 12;
  // Arrivals land squarely inside the dark window.
  const auto r = FleetSimulator(fc).run(uniform_trace(40, 120.0));
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  EXPECT_GT(r.router_stranded, 0);
  EXPECT_GT(r.completed, 0);  // work resumes once the plane lights up
}

// --- end-to-end: stale breaker views ---

TEST(StaleViews, SlowSyncCausesStaleDispatchesAndDisagreement) {
  auto fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.view_sync_interval_s = 0.5;  // glacial sync
  fc.faults.push_back(FaultWindow{0, 1.0, 2.5});
  fc.retry.max_retries = 16;
  const auto r = FleetSimulator(fc).run(uniform_trace(160, 90.0));
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  // The breaker opened while at least one router held a pre-open snapshot:
  // some dispatches went to the dead replica on stale information, and the
  // staggered refresh cadence left the two views disagreeing for a while.
  EXPECT_GT(r.circuit_opens, 0);
  EXPECT_GT(r.stale_dispatches, 0);
  EXPECT_GT(r.view_disagreement_s, 0.0);
}

TEST(StaleViews, RunIsDeterministic) {
  auto fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.view_sync_interval_s = 0.2;
  fc.control.router_faults.push_back(RouterFaultWindow{1, 0.5, 1.0});
  fc.faults.push_back(FaultWindow{0, 1.0, 1.8});
  fc.retry.max_retries = 16;
  const auto trace = uniform_trace(140, 90.0);
  const auto a = FleetSimulator(fc).run(trace);
  const auto b = FleetSimulator(fc).run(trace);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.router_stranded, b.router_stranded);
  EXPECT_EQ(a.stale_dispatches, b.stale_dispatches);
  EXPECT_DOUBLE_EQ(a.view_disagreement_s, b.view_disagreement_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
  }
}

// --- routers=1 collapses to the PR 1/2 fleet bit-for-bit ---

TEST(SingleRouter, ControlPlaneSettingsAreInertWithOneRouter) {
  // A PR 2-style scenario: faults, health detection, hedging.
  auto fc = base_cfg(3);
  fc.faults.push_back(FaultWindow{1, 0.6, 1.4});
  fc.hedge.enabled = true;
  fc.retry.max_retries = 12;
  auto tuned = fc;
  // With one router these knobs must change nothing: no peer to disagree
  // with, no fail-over path taken.
  tuned.control.view_sync_interval_s = 0.3;
  tuned.control.failover_detection_s = 1.0;
  const auto trace = uniform_trace(150, 110.0);
  const auto a = FleetSimulator(fc).run(trace);
  const auto b = FleetSimulator(tuned).run(trace);
  EXPECT_EQ(b.router_stranded, 0);
  EXPECT_EQ(b.stale_dispatches, 0);
  EXPECT_DOUBLE_EQ(b.view_disagreement_s, 0.0);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedges_issued, b.hedges_issued);
  EXPECT_EQ(a.circuit_opens, b.circuit_opens);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.e2e_s.mean(), b.e2e_s.mean());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    EXPECT_FALSE(b.requests[i].router_failover);
  }
}

}  // namespace
}  // namespace mib::fleet
