// Unit and end-to-end tests for the PR 2 resilience layer: degradation
// pricing, heartbeat failure detection, hedged requests, KV drain
// migration, retry jitter, fault-window validation — plus first direct
// coverage of the admission controller and autoscaler configs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

// --- admission controller (previously only covered end-to-end) ---

TEST(Admission, GateOpensBelowCapacityAndClosesAt) {
  AdmissionController ac(AdmissionConfig{2, 0.0});
  EXPECT_TRUE(ac.try_admit(0));
  EXPECT_TRUE(ac.try_admit(1));
  EXPECT_FALSE(ac.try_admit(2));
  EXPECT_FALSE(ac.try_admit(5));
  EXPECT_EQ(ac.accepted(), 2);
  EXPECT_EQ(ac.rejected(), 2);
}

TEST(Admission, ExpiredCounterIsIndependentOfTheGate) {
  AdmissionController ac(AdmissionConfig{1, 0.5});
  ac.count_expired();
  ac.count_expired();
  EXPECT_EQ(ac.expired(), 2);
  EXPECT_EQ(ac.accepted(), 0);
}

TEST(Admission, ConfigValidation) {
  EXPECT_THROW(AdmissionConfig({0, 0.0}).validate(), Error);
  EXPECT_THROW(AdmissionConfig({8, -1.0}).validate(), Error);
  EXPECT_NO_THROW(AdmissionConfig({1, 0.0}).validate());
}

// --- autoscaler config (decision logic is covered in test_slo.cpp) ---

TEST(AutoscalerConfigTest, Validation) {
  AutoscalerConfig ac;
  ac.enabled = true;
  EXPECT_NO_THROW(ac.validate());
  ac.min_replicas = 0;
  EXPECT_THROW(ac.validate(), Error);
  ac.min_replicas = 4;
  ac.max_replicas = 2;
  EXPECT_THROW(ac.validate(), Error);
  ac.max_replicas = 8;
  ac.interval_s = 0.0;
  EXPECT_THROW(ac.validate(), Error);
  ac.interval_s = 1.0;
  ac.scale_up_queue_depth = 0;
  ac.scale_down_queue_depth = 0;
  EXPECT_THROW(ac.validate(), Error);
}

TEST(AutoscalerConfigTest, DisabledSkipsValidation) {
  Autoscaler a(AutoscalerConfig{});  // defaults are valid but also disabled
  EXPECT_EQ(a.decide(1000, 1, true), 0);
}

// --- retry jitter (satellite: seeded full jitter) ---

TEST(RetryJitter, ZeroJitterKeepsTheDeterministicSchedule) {
  RetryPolicy rp;
  rp.backoff_s = 0.05;
  rp.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(rp.delay(1), 0.05);
  EXPECT_DOUBLE_EQ(rp.delay(1, 12345), 0.05);  // key ignored without jitter
  EXPECT_DOUBLE_EQ(rp.delay(3), 0.2);
}

TEST(RetryJitter, JitteredDelayStaysInTheContractedRange) {
  RetryPolicy rp;
  rp.backoff_s = 0.1;
  rp.multiplier = 2.0;
  rp.jitter = 0.5;
  for (std::uint64_t key = 0; key < 200; ++key) {
    const double d = rp.delay(2, key);
    EXPECT_LE(d, 0.2);
    EXPECT_GE(d, 0.1);  // (1 - jitter) * base
  }
}

TEST(RetryJitter, DeterministicPerKeyAndSpreadAcrossKeys) {
  RetryPolicy rp;
  rp.backoff_s = 0.1;
  rp.jitter = 1.0;
  EXPECT_DOUBLE_EQ(rp.delay(1, 7), rp.delay(1, 7));
  std::set<double> distinct;
  for (std::uint64_t key = 0; key < 32; ++key) {
    distinct.insert(rp.delay(1, key));
  }
  // Full jitter must actually spread the herd, not collapse to one value.
  EXPECT_GT(distinct.size(), 24u);
}

TEST(RetryJitter, ValidationRejectsOutOfRange) {
  RetryPolicy rp;
  rp.jitter = 1.5;
  EXPECT_THROW(rp.validate(), Error);
  rp.jitter = -0.1;
  EXPECT_THROW(rp.validate(), Error);
}

// --- fault-window overlap validation (satellite) ---

TEST(FaultValidation, OverlappingWindowsSameReplicaThrow) {
  auto cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{0, 0.0, 1.0});
  cfg.faults.push_back(FaultWindow{0, 0.5, 1.5});
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(FaultValidation, DuplicateWindowsThrow) {
  auto cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{0, 0.2, 0.6});
  cfg.faults.push_back(FaultWindow{0, 0.2, 0.6});
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(FaultValidation, TouchingAndCrossReplicaWindowsAreFine) {
  auto cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{0, 0.0, 1.0});
  cfg.faults.push_back(FaultWindow{0, 1.0, 2.0});  // end == start: disjoint
  cfg.faults.push_back(FaultWindow{1, 0.5, 1.5});  // other replica
  EXPECT_NO_THROW(cfg.validate());
}

TEST(FaultValidation, OverlapCheckAlsoGuardsDegradationAndMaintenance) {
  auto cfg = base_cfg(2);
  cfg.degradations.push_back(DegradationWindow{0, 0.0, 1.0, {0.5, 1.0, 1.0}});
  cfg.degradations.push_back(DegradationWindow{0, 0.9, 1.2, {0.7, 1.0, 1.0}});
  EXPECT_THROW(cfg.validate(), Error);
  cfg.degradations.clear();
  cfg.maintenance.push_back(MaintenanceWindow{1, 0.0, 1.0});
  cfg.maintenance.push_back(MaintenanceWindow{1, 0.5, 2.0});
  EXPECT_THROW(cfg.validate(), Error);
}

// --- degradation model ---

TEST(Degradation, ScheduleAnswersPointAndTransitionQueries) {
  DegradationSchedule sched({DegradationWindow{0, 1.0, 2.0, {0.5, 0.8, 1.0}}});
  EXPECT_FALSE(sched.at(0, 0.5).degraded());
  EXPECT_TRUE(sched.at(0, 1.0).degraded());
  EXPECT_DOUBLE_EQ(sched.at(0, 1.5).flops, 0.5);
  EXPECT_FALSE(sched.at(0, 2.0).degraded());  // half-open interval
  EXPECT_FALSE(sched.at(1, 1.5).degraded());  // other replica untouched
  EXPECT_DOUBLE_EQ(sched.next_transition_after(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sched.next_transition_after(1.0), 2.0);
  EXPECT_TRUE(std::isinf(sched.next_transition_after(2.0)));
}

TEST(Degradation, WorstPicksTheTightestResource) {
  PerfScale s{0.9, 0.4, 0.7};
  EXPECT_DOUBLE_EQ(s.worst(), 0.4);
  EXPECT_TRUE(s.degraded());
  EXPECT_FALSE((PerfScale{1.0, 1.0, 1.0}).degraded());
}

TEST(Degradation, ValidationRejectsZeroAndAboveOneScales) {
  DegradationWindow w{0, 0.0, 1.0, {0.0, 1.0, 1.0}};
  EXPECT_THROW(w.validate(), Error);
  w.scale = {1.0, 1.5, 1.0};
  EXPECT_THROW(w.validate(), Error);
  w.scale = {1.0, 1.0, 1.0};
  EXPECT_NO_THROW(w.validate());
}

TEST(Degradation, DeratedPricingStretchesSteps) {
  // A compute+bandwidth throttle must make both prefill and decode slower
  // under the pool's derated model than under the base model.
  auto cfg = base_cfg(1);
  cfg.engine.validate();
  engine::LayerCostModel base(cfg.engine.model, cfg.engine.cluster,
                              cfg.engine.plan, cfg.engine.cost);
  const DegradationWindow w{0, 0.0, 1.0, {0.25, 0.25, 0.25}};
  DegradedCostPool pool(&base, cfg.engine, {w});
  const auto* derated = pool.at(w.scale);
  ASSERT_NE(derated, nullptr);
  ASSERT_NE(derated, &base);
  EXPECT_GT(derated->prefill(1, 1024).total(), base.prefill(1, 1024).total());
  EXPECT_GT(derated->decode_step(8, 512.0).total(),
            base.decode_step(8, 512.0).total());
  // Identity scale maps to the shared base model, no duplicate build.
  EXPECT_EQ(pool.at(PerfScale{}), &base);
}

TEST(Degradation, SlowReplicaFinishesLessWorkThanHealthyPeer) {
  auto cfg = base_cfg(2);
  cfg.degradations.push_back(DegradationWindow{0, 0.0, 60.0, {0.1, 0.1, 0.1}});
  const auto r =
      FleetSimulator(cfg).run(uniform_trace(64, 100.0, 256, 64, 5));
  EXPECT_EQ(r.completed, 64);
  EXPECT_LT(r.replicas[0].completed, r.replicas[1].completed);
}

// --- health monitor ---

TEST(Health, PhiGrowsWithSilenceAndResetsOnHeartbeat) {
  HealthConfig hc;
  HealthMonitor m(hc, 1);
  m.resume(0, 0.0);
  for (double t = 0.02; t <= 0.101; t += 0.02) m.on_heartbeat(0, t);
  EXPECT_LT(m.phi(0, 0.12), 1.0);
  EXPECT_GT(m.phi(0, 1.0), 3.0);
  m.on_heartbeat(0, 1.0);
  EXPECT_LT(m.phi(0, 1.01), 0.5);
}

TEST(Health, BreakerWalksClosedOpenHalfOpenClosed) {
  HealthConfig hc;
  hc.heartbeat_interval_s = 0.02;
  hc.phi_threshold = 3.0;
  hc.open_cooldown_s = 0.25;
  hc.probe_interval_s = 0.1;
  HealthMonitor m(hc, 1);
  m.resume(0, 0.0);
  m.on_heartbeat(0, 0.02);
  // Silence begins; phi crosses 3 at last_hb + 3 * ln10 * 0.02 ~ 0.158.
  const double detect = m.next_event_after(0.03);
  EXPECT_NEAR(detect, 0.02 + 3.0 * 2.302585 * 0.02, 1e-6);
  auto opened = m.advance(detect, {false});
  ASSERT_EQ(opened.size(), 1u);
  EXPECT_EQ(m.state(0), CircuitState::kOpen);
  EXPECT_FALSE(m.routable(0));
  // Cooldown expiry -> half-open; probe fails while down.
  const double half_open = m.next_event_after(detect);
  EXPECT_NEAR(half_open, detect + 0.25, 1e-9);
  m.advance(half_open, {false});
  EXPECT_EQ(m.state(0), CircuitState::kHalfOpen);
  // First probe after recovery closes the circuit.
  const double probe = m.next_event_after(half_open);
  EXPECT_NEAR(probe, half_open + 0.1, 1e-9);
  m.advance(probe, {true});
  EXPECT_EQ(m.state(0), CircuitState::kClosed);
  EXPECT_TRUE(m.routable(0));
  // The full walk is on the event record.
  ASSERT_EQ(m.events().size(), 3u);
  EXPECT_EQ(m.events()[0].to, CircuitState::kOpen);
  EXPECT_EQ(m.events()[1].to, CircuitState::kHalfOpen);
  EXPECT_EQ(m.events()[2].to, CircuitState::kClosed);
}

TEST(Health, SuspendedReplicaNeverAccrues) {
  HealthMonitor m(HealthConfig{}, 2);
  m.resume(0, 0.0);
  // Replica 1 never resumed: suspended, no deadline, no transitions.
  EXPECT_EQ(m.state(1), CircuitState::kSuspended);
  m.advance(100.0, {false, false});
  EXPECT_EQ(m.state(1), CircuitState::kSuspended);
}

TEST(Health, DetectionLagIsMeasuredEndToEnd) {
  auto cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{0, 0.2, 5.0});
  const auto r =
      FleetSimulator(cfg).run(uniform_trace(48, 120.0, 256, 64, 7));
  EXPECT_EQ(r.completed + r.lost, r.submitted);
  EXPECT_GE(r.circuit_opens, 1);
  ASSERT_GE(r.detection_lag_s.count(), 1u);
  // Lag is positive and bounded by a few multiples of the phi horizon.
  EXPECT_GT(r.detection_lag_s.p50(), 0.0);
  EXPECT_LT(r.detection_lag_s.p50(), 1.0);
}

TEST(Health, OracleModeReportsNoCircuitActivity) {
  auto cfg = base_cfg(2);
  cfg.health.enabled = false;
  cfg.faults.push_back(FaultWindow{0, 0.2, 5.0});
  const auto r =
      FleetSimulator(cfg).run(uniform_trace(48, 120.0, 256, 64, 7));
  EXPECT_EQ(r.circuit_opens, 0);
  EXPECT_EQ(r.detection_lag_s.count(), 0u);
  EXPECT_TRUE(r.circuit_events.empty());
}

// --- hedged requests ---

TEST(Hedge, PlannerTriggerSemantics) {
  HedgeConfig hc;
  hc.enabled = false;
  EXPECT_TRUE(std::isinf(HedgePlanner(hc).trigger_delay()));
  hc.enabled = true;
  hc.delay_s = 0.3;
  EXPECT_DOUBLE_EQ(HedgePlanner(hc).trigger_delay(), 0.3);
  hc.delay_s = 0.0;
  hc.min_samples = 4;
  HedgePlanner adaptive(hc);
  EXPECT_TRUE(std::isinf(adaptive.trigger_delay()));  // not warmed up
  for (double t : {0.1, 0.2, 0.3, 0.4}) adaptive.observe_ttft(t);
  const double trig = adaptive.trigger_delay();
  EXPECT_GE(trig, 0.3);  // p95 of the sample set
  EXPECT_LE(trig, 0.4);
}

TEST(Hedge, ReducesTailTtftUnderAStragglerWindow) {
  // Replica 0 is browned out but never dead: the breaker cannot help, only
  // hedging can. p99 TTFT must improve, and hedge accounting must balance.
  const auto trace = uniform_trace(96, 60.0, 512, 64, 3);
  auto slow = base_cfg(3);
  slow.degradations.push_back(DegradationWindow{0, 0.2, 30.0, {0.05, 0.05, 0.05}});
  const auto off = FleetSimulator(slow).run(trace);
  slow.hedge.enabled = true;
  slow.hedge.delay_s = 0.1;
  const auto on = FleetSimulator(slow).run(trace);
  EXPECT_EQ(on.completed, on.submitted);
  EXPECT_GT(on.hedges_issued, 0);
  EXPECT_LT(on.ttft_s.p99(), off.ttft_s.p99());
  EXPECT_LE(on.hedges_won, on.hedges_issued);
  // Every issued hedge resolves as a win or a cancelled loser; flags match.
  long long hedged = 0, won = 0;
  for (const auto& rec : on.requests) {
    hedged += rec.hedged ? 1 : 0;
    won += rec.won_by_hedge ? 1 : 0;
  }
  EXPECT_EQ(hedged, on.hedges_issued);
  EXPECT_EQ(won, on.hedges_won);
}

TEST(Hedge, NeverIssuedOnAHealthyUnderloadedFleet) {
  auto cfg = base_cfg(2);
  cfg.hedge.enabled = true;
  cfg.hedge.delay_s = 5.0;  // far beyond any TTFT on a healthy fleet
  const auto r = FleetSimulator(cfg).run(uniform_trace(48, 20.0));
  EXPECT_EQ(r.hedges_issued, 0);
  EXPECT_EQ(r.completed, r.submitted);
}

// --- graceful drain / KV migration ---

TEST(Migration, DrainMovesKvAndBeatsRecomputeOnDeepContexts) {
  const auto trace = uniform_trace(48, 40.0, 4096, 128, 11);
  auto cfg = base_cfg(2);
  cfg.maintenance.push_back(MaintenanceWindow{0, 1.0, 8.0});
  cfg.migration.migrate_kv = true;
  const auto mig = FleetSimulator(cfg).run(trace);
  cfg.migration.migrate_kv = false;
  const auto rec = FleetSimulator(cfg).run(trace);
  EXPECT_EQ(mig.completed, mig.submitted);
  EXPECT_EQ(rec.completed, rec.submitted);
  EXPECT_GT(mig.migrations, 0);
  EXPECT_GT(mig.migrated_kv_tokens, 0);
  EXPECT_EQ(rec.migrations, 0);
  EXPECT_GT(rec.drain_evacuations, 0);
  // Deep contexts: shipping KV beats redoing prefill + decode progress.
  EXPECT_LT(mig.makespan_s, rec.makespan_s);
  bool any_migrated_flag = false;
  for (const auto& rr : mig.requests) any_migrated_flag |= rr.migrated;
  EXPECT_TRUE(any_migrated_flag);
}

TEST(Migration, ReplicaReturnsToServiceAfterTheWindow) {
  auto cfg = base_cfg(2);
  cfg.maintenance.push_back(MaintenanceWindow{0, 0.5, 1.0});
  const auto r = FleetSimulator(cfg).run(uniform_trace(96, 30.0, 256, 64, 13));
  EXPECT_EQ(r.completed, r.submitted);
  // Replica 0 worked both before and after maintenance: it completed more
  // than zero requests despite the drain.
  EXPECT_GT(r.replicas[0].completed, 0);
}

TEST(Migration, ConfigValidation) {
  MigrationConfig mc;
  mc.link.bandwidth = 0.0;
  EXPECT_THROW(mc.validate(), Error);
  mc = MigrationConfig{};
  mc.per_sequence_overhead_s = -1.0;
  EXPECT_THROW(mc.validate(), Error);
}

// --- determinism regression with every new feature active ---

TEST(Resilience, DeterministicWithAllFeaturesActive) {
  auto cfg = base_cfg(3);
  cfg.faults.push_back(FaultWindow{1, 0.5, 1.2});
  cfg.degradations.push_back(DegradationWindow{0, 0.3, 2.0, {0.4, 0.6, 0.8}});
  cfg.maintenance.push_back(MaintenanceWindow{2, 1.0, 2.5});
  cfg.hedge.enabled = true;
  cfg.hedge.delay_s = 0.15;
  cfg.retry.jitter = 1.0;
  const auto trace = uniform_trace(96, 80.0, 512, 96, 17);
  const auto a = FleetSimulator(cfg).run(trace);
  const auto b = FleetSimulator(cfg).run(trace);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.hedges_issued, b.hedges_issued);
  EXPECT_EQ(a.hedges_won, b.hedges_won);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.circuit_opens, b.circuit_opens);
  ASSERT_EQ(a.ttft_s.values(), b.ttft_s.values());
  ASSERT_EQ(a.e2e_s.values(), b.e2e_s.values());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].status, b.requests[i].status);
    EXPECT_DOUBLE_EQ(a.requests[i].first_token_s, b.requests[i].first_token_s);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    EXPECT_EQ(a.requests[i].replica, b.requests[i].replica);
    EXPECT_EQ(a.requests[i].hedged, b.requests[i].hedged);
    EXPECT_EQ(a.requests[i].migrated, b.requests[i].migrated);
  }
}

// --- hardware derating primitives ---

TEST(Derate, DeviceAndLinkScalesApplyWhereExpected) {
  const auto h100 = hw::h100_sxm5();
  const auto d = h100.derate(0.5, 0.25);
  EXPECT_DOUBLE_EQ(d.peak_flops_16, h100.peak_flops_16 * 0.5);
  EXPECT_DOUBLE_EQ(d.mem_bw, h100.mem_bw * 0.25);
  EXPECT_DOUBLE_EQ(d.mem_bytes, h100.mem_bytes);  // capacity untouched
  const auto link = hw::nvlink4().derate(0.5);
  EXPECT_DOUBLE_EQ(link.bandwidth, hw::nvlink4().bandwidth * 0.5);
  EXPECT_DOUBLE_EQ(link.latency, hw::nvlink4().latency);
}

}  // namespace
}  // namespace mib::fleet
