#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, 256, 64));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

void expect_identical(const FleetReport& a, const FleetReport& b) {
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.throughput_tok_s, b.throughput_tok_s);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.prefix_lookups, b.prefix_lookups);
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.replicas_used, b.replicas_used);
  ASSERT_EQ(a.ttft_s.values(), b.ttft_s.values());
  ASSERT_EQ(a.itl_s.values(), b.itl_s.values());
  ASSERT_EQ(a.e2e_s.values(), b.e2e_s.values());
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].status, b.requests[i].status);
    EXPECT_DOUBLE_EQ(a.requests[i].arrival_s, b.requests[i].arrival_s);
    EXPECT_DOUBLE_EQ(a.requests[i].first_token_s, b.requests[i].first_token_s);
    EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    EXPECT_EQ(a.requests[i].replica, b.requests[i].replica);
    EXPECT_EQ(a.requests[i].retries, b.requests[i].retries);
  }
}

TEST(Fleet, AllRequestsCompleteOnHealthyFleet) {
  const auto trace = uniform_trace(48, 40.0);
  const auto r = FleetSimulator(base_cfg(2)).run(trace);
  EXPECT_EQ(r.submitted, 48);
  EXPECT_EQ(r.completed, 48);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.expired, 0);
  EXPECT_EQ(r.lost, 0);
  EXPECT_GT(r.throughput_tok_s, 0.0);
  ASSERT_EQ(r.requests.size(), 48u);
  for (const auto& rec : r.requests) {
    EXPECT_EQ(rec.status, RequestStatus::kCompleted);
    EXPECT_GE(rec.first_token_s, rec.arrival_s);
    EXPECT_GE(rec.finish_s, rec.first_token_s);
    EXPECT_GE(rec.replica, 0);
    EXPECT_LT(rec.replica, 2);
  }
}

TEST(Fleet, RequestConservation) {
  // Tight queue + deadline + a fault window: every request must still be
  // accounted for in exactly one terminal bucket.
  auto cfg = base_cfg(2);
  cfg.replica.max_batch = 4;
  cfg.admission.queue_capacity = 8;
  cfg.admission.deadline_s = 0.5;
  cfg.faults.push_back(FaultWindow{0, 0.05, 0.6});
  const auto r = FleetSimulator(cfg).run(uniform_trace(96, 400.0));
  EXPECT_EQ(r.submitted, 96);
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  EXPECT_EQ(static_cast<long long>(r.requests.size()), r.submitted);
}

TEST(Fleet, DeterministicForFixedSeed) {
  auto cfg = base_cfg(3);
  cfg.faults.push_back(FaultWindow{1, 0.1, 0.4});
  const auto trace = uniform_trace(64, 120.0);
  const auto a = FleetSimulator(cfg).run(trace);
  const auto b = FleetSimulator(cfg).run(trace);
  expect_identical(a, b);
}

TEST(Fleet, SeedChangesArrivalsChangeOutcome) {
  const auto r1 = FleetSimulator(base_cfg(2)).run(uniform_trace(64, 80.0, 1));
  const auto r2 = FleetSimulator(base_cfg(2)).run(uniform_trace(64, 80.0, 2));
  EXPECT_NE(r1.makespan_s, r2.makespan_s);
}

TEST(Fleet, ThroughputScalesWithReplicas) {
  // Saturating load: more replicas must raise fleet throughput.
  const auto trace = uniform_trace(96, 300.0);
  const auto r1 = FleetSimulator(base_cfg(1)).run(trace);
  const auto r2 = FleetSimulator(base_cfg(2)).run(trace);
  const auto r4 = FleetSimulator(base_cfg(4)).run(trace);
  EXPECT_EQ(r1.completed, 96);
  EXPECT_EQ(r4.completed, 96);
  EXPECT_GT(r2.throughput_tok_s, r1.throughput_tok_s);
  EXPECT_GE(r4.throughput_tok_s, r2.throughput_tok_s);
  EXPECT_LT(r2.makespan_s, r1.makespan_s);
}

TEST(Fleet, AdmissionShedsLoadWhenQueueFull) {
  auto cfg = base_cfg(1);
  cfg.replica.max_batch = 4;
  cfg.admission.queue_capacity = 4;
  const auto r = FleetSimulator(cfg).run(uniform_trace(64, 2000.0));
  EXPECT_GT(r.rejected, 0);
  EXPECT_GT(r.completed, 0);
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  // Rejected requests never reach a replica.
  for (const auto& rec : r.requests) {
    if (rec.status == RequestStatus::kRejected) {
      EXPECT_EQ(rec.replica, -1);
      EXPECT_LT(rec.first_token_s, 0.0);
    }
  }
  EXPECT_EQ(r.slo.submitted, r.submitted);
  EXPECT_LT(r.slo.attainment, 1.0);  // rejections are strict SLO misses
}

TEST(Fleet, DeadlineExpiresQueuedRequests) {
  auto cfg = base_cfg(1);
  cfg.replica.max_batch = 2;
  cfg.admission.deadline_s = 0.02;
  const auto r = FleetSimulator(cfg).run(uniform_trace(64, 2000.0));
  EXPECT_GT(r.expired, 0);
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
}

TEST(Fleet, ReplicaReportsConsistentWithFleetTotals) {
  const auto r = FleetSimulator(base_cfg(3)).run(uniform_trace(60, 100.0));
  long long completed = 0, steps = 0;
  for (const auto& rep : r.replicas) {
    completed += rep.completed;
    steps += rep.steps;
    EXPECT_GE(rep.utilization, 0.0);
    EXPECT_LE(rep.utilization, 1.0 + 1e-9);
  }
  EXPECT_EQ(completed, r.completed);
  EXPECT_GT(steps, 0);
  EXPECT_EQ(r.replicas_used, 3);
}

TEST(Fleet, ConfigValidation) {
  auto cfg = base_cfg(0);
  EXPECT_THROW(cfg.validate(), Error);
  cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{5, 0.0, 1.0});  // outside the pool
  EXPECT_THROW({ FleetSimulator sim(cfg); }, Error);
}

TEST(Fleet, TurnTraceIsTurnMajorAndHashStable) {
  workload::ConversationConfig cc;
  cc.n_conversations = 3;
  cc.turns_per_conversation = 2;
  cc.seed = 4;
  const auto turns = workload::generate_conversations(cc);
  const auto trace = as_fleet_trace(turns);
  ASSERT_EQ(trace.size(), 6u);
  // Turn-major: all first turns precede all second turns.
  for (int i = 0; i < 3; ++i) EXPECT_GT(trace[i].prefix_hash, 0u);
  EXPECT_EQ(trace[0].prefix_hash, trace[3].prefix_hash);
  EXPECT_EQ(trace[1].prefix_hash, trace[4].prefix_hash);
  EXPECT_NE(trace[0].prefix_hash, trace[1].prefix_hash);
  // Turn 0 shares only the system prompt; later turns add the history.
  EXPECT_EQ(trace[0].prefix_tokens, 512);
  EXPECT_GT(trace[3].prefix_tokens, trace[0].prefix_tokens);
}

TEST(Fleet, AutoscalerGrowsFleetUnderBacklog) {
  auto cfg = base_cfg(1);
  cfg.replica.max_batch = 8;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.min_replicas = 1;
  cfg.autoscaler.max_replicas = 4;
  cfg.autoscaler.interval_s = 0.05;
  cfg.autoscaler.scale_up_queue_depth = 4;
  const auto r = FleetSimulator(cfg).run(uniform_trace(96, 800.0));
  EXPECT_EQ(r.completed, 96);
  ASSERT_FALSE(r.scale_events.empty());
  EXPECT_EQ(r.scale_events.front().action, "add");
  EXPECT_GT(r.replicas_used, 1);
  // The pool is provisioned up to the autoscaler ceiling.
  EXPECT_EQ(FleetSimulator(cfg).pool_size(), 4);
}

}  // namespace
}  // namespace mib::fleet
