// Split-brain network partitions: validation, plane-side geometry, the
// double-dispatch machinery, both heal policies, and the golden-value
// regression pinning partition-free runs to the PR 3 outputs bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fleet/control_plane.h"
#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

PartitionWindow window(double start, double end, std::vector<int> routers,
                       std::vector<int> replicas) {
  PartitionWindow w;
  w.start_s = start;
  w.end_s = end;
  w.minority_routers = std::move(routers);
  w.minority_replicas = std::move(replicas);
  return w;
}

// --- config validation ---

TEST(Partition, ValidationRejectsBadConfigs) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.partition.enabled = true;

  // Needs at least one minority router.
  cc.partition.windows = {window(0.5, 1.0, {}, {0})};
  EXPECT_THROW(cc.validate(), Error);
  // Zero-duration window.
  cc.partition.windows = {window(0.5, 0.5, {1}, {})};
  EXPECT_THROW(cc.validate(), Error);
  // Router named twice.
  cc.partition.windows = {window(0.5, 1.0, {1, 1}, {})};
  EXPECT_THROW(cc.validate(), Error);
  // Replica named twice.
  cc.partition.windows = {window(0.5, 1.0, {1}, {0, 0})};
  EXPECT_THROW(cc.validate(), Error);
  // Minority must leave a majority: every router cut off is not a
  // partition, it is an outage.
  cc.partition.windows = {window(0.5, 1.0, {0, 1}, {})};
  EXPECT_THROW(cc.validate(), Error);
  // Router outside the plane.
  cc.partition.windows = {window(0.5, 1.0, {2}, {})};
  EXPECT_THROW(cc.validate(), Error);
  // Overlapping windows.
  cc.partition.windows = {window(0.5, 1.0, {1}, {}),
                          window(0.8, 1.2, {1}, {})};
  EXPECT_THROW(cc.validate(), Error);
  // Non-positive client patience.
  cc.partition.windows = {window(0.5, 1.0, {1}, {})};
  cc.partition.client_retry_s = 0.0;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.client_retry_s = 0.1;
  EXPECT_NO_THROW(cc.validate());

  // Windows configured while disabled is a config smell, not a silent
  // no-op.
  cc.partition.enabled = false;
  EXPECT_THROW(cc.validate(), Error);

  // The fleet additionally range-checks minority replicas against the
  // pool.
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.windows = {window(0.5, 1.0, {1}, {7})};
  EXPECT_THROW(fc.validate(), Error);
  fc.control.partition.windows = {window(0.5, 1.0, {1}, {1})};
  EXPECT_NO_THROW(fc.validate());
}

TEST(Partition, HealPolicyNames) {
  EXPECT_STREQ(heal_policy_name(HealPolicy::kFenceMinority),
               "fence-the-minority");
  EXPECT_STREQ(heal_policy_name(HealPolicy::kFirstCommitWins),
               "first-commit-wins");
}

// --- plane-side geometry ---

TEST(Partition, SideAssignmentAndReachability) {
  ControlPlaneConfig cc;
  cc.routers = 3;
  cc.partition.enabled = true;
  cc.partition.windows = {window(1.0, 2.0, {2}, {3})};
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 4);

  EXPECT_TRUE(plane.partition_enabled());
  EXPECT_EQ(plane.partition_at(0.5), nullptr);
  ASSERT_NE(plane.partition_at(1.5), nullptr);
  EXPECT_EQ(plane.partition_at(2.0), nullptr);  // end is exclusive

  // Outside the window everything reaches everything.
  EXPECT_TRUE(plane.reachable(2, 3, 0.5));
  EXPECT_FALSE(plane.router_minority(2, 0.5));
  // Inside: same side only.
  EXPECT_TRUE(plane.router_minority(2, 1.5));
  EXPECT_TRUE(plane.replica_minority(3, 1.5));
  EXPECT_TRUE(plane.reachable(2, 3, 1.5));    // minority <-> minority
  EXPECT_TRUE(plane.reachable(0, 1, 1.5));    // majority <-> majority
  EXPECT_FALSE(plane.reachable(0, 3, 1.5));   // across the cut
  EXPECT_FALSE(plane.reachable(2, 0, 1.5));   // across the cut
  // The minority's view freezes exactly for the window.
  EXPECT_FALSE(plane.frozen_view(2, 0.5));
  EXPECT_TRUE(plane.frozen_view(2, 1.5));
  EXPECT_FALSE(plane.frozen_view(0, 1.5));

  // Majority survivor skips the minority even though it is alive.
  EXPECT_EQ(plane.survivor(1.5), 0);
  EXPECT_EQ(plane.majority_survivor(1.5), 0);
  // Transition edges drive the event loop.
  EXPECT_DOUBLE_EQ(plane.next_partition_transition_after(0.0), 1.0);
  EXPECT_DOUBLE_EQ(plane.next_partition_transition_after(1.0), 2.0);
  EXPECT_TRUE(std::isinf(plane.next_partition_transition_after(2.0)));
}

TEST(Partition, MajoritySurvivorRespectsRouterFaults) {
  ControlPlaneConfig cc;
  cc.routers = 3;
  cc.router_faults.push_back(RouterFaultWindow{0, 1.0, 2.0});
  cc.partition.enabled = true;
  cc.partition.windows = {window(0.5, 3.0, {1}, {})};
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  // Router 0 dead, router 1 partitioned away: router 2 is the majority.
  EXPECT_EQ(plane.majority_survivor(1.5), 2);
  EXPECT_EQ(plane.majority_survivor(2.5), 0);  // router 0 back
}

TEST(Partition, DisabledPlaneKeepsPathsCold) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_FALSE(plane.partition_enabled());
  EXPECT_EQ(plane.partition_at(1.0), nullptr);
  EXPECT_TRUE(plane.reachable(0, 1, 1.0));
  EXPECT_FALSE(plane.frozen_view(1, 1.0));
  EXPECT_TRUE(std::isinf(plane.next_partition_transition_after(0.0)));
}

// --- split-brain end to end ---

FleetConfig split_brain_cfg(HealPolicy heal) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.heal = heal;
  // Patience short enough that a queued minority-homed request has not
  // produced a first token before the client gives up and retries.
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.windows = {window(0.2, 1.2, {1}, {2})};
  fc.retry.max_retries = 12;
  return fc;
}

void assert_split_brain_invariants(const FleetReport& r) {
  // Conservation: every request lands in exactly one terminal bucket, and
  // completions are counted once no matter how many copies raced.
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  long long per_replica = 0;
  for (const auto& rr : r.replicas) per_replica += rr.completed;
  EXPECT_EQ(per_replica, r.completed);
  long long dup_records = 0;
  for (const auto& rec : r.requests) {
    if (rec.double_dispatched) ++dup_records;
  }
  EXPECT_EQ(dup_records, r.double_dispatches);
  EXPECT_LE(r.hedges_cancelled, r.hedges_issued);
  EXPECT_GE(r.duplicate_decode_s, 0.0);
  // Goodput cannot credit more requests than were submitted.
  EXPECT_LE(r.slo.attained, r.submitted);
}

TEST(Partition, FenceMinorityProducesAndDrainsDuplicates) {
  const FleetConfig fc = split_brain_cfg(HealPolicy::kFenceMinority);
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_split_brain_invariants(r);
  EXPECT_GT(r.double_dispatches, 0);
  EXPECT_GT(r.duplicate_decode_s, 0.0);
  // Fencing cancels the minority's still-racing copies at the heal edge.
  EXPECT_GT(r.fenced_requests, 0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  // The fence drains the split brain at the heal edge itself.
  EXPECT_DOUBLE_EQ(r.partition_heal_lag_s.max(), 0.0);
  for (const auto& rec : r.requests) {
    if (rec.fenced) {
      EXPECT_TRUE(rec.double_dispatched || rec.hedged);
    }
  }
}

TEST(Partition, FirstCommitWinsRacesDuplicatesToCompletion) {
  const FleetConfig fc = split_brain_cfg(HealPolicy::kFirstCommitWins);
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_split_brain_invariants(r);
  EXPECT_GT(r.double_dispatches, 0);
  EXPECT_GT(r.duplicate_decode_s, 0.0);
  // Nothing is fenced: the losing copies are cancelled as their races
  // resolve, so the heal lag is positive.
  EXPECT_EQ(r.fenced_requests, 0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  EXPECT_GT(r.partition_heal_lag_s.max(), 0.0);
}

TEST(Partition, DuplicateDecodeIsWasteFenceBeatsRacing) {
  // First-commit-wins lets the losing copies keep decoding after the heal;
  // fencing frees that capacity at the edge. The waste metric orders the
  // two policies accordingly on the same trace.
  const auto fence = FleetSimulator(split_brain_cfg(HealPolicy::kFenceMinority))
                         .run(uniform_trace(120, 100.0));
  const auto race =
      FleetSimulator(split_brain_cfg(HealPolicy::kFirstCommitWins))
          .run(uniform_trace(120, 100.0));
  EXPECT_LE(fence.duplicate_decode_s, race.duplicate_decode_s);
}

TEST(Partition, RouterOnlyPartitionParksThenDoubleDispatches) {
  // No minority replicas: the cut-off router can dispatch nowhere, its
  // homed requests park until the heal while the majority serves their
  // duplicates.
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.05;
  fc.control.partition.windows = {window(0.1, 0.9, {1}, {})};
  const auto r = FleetSimulator(fc).run(uniform_trace(80, 100.0));
  assert_split_brain_invariants(r);
  EXPECT_GT(r.double_dispatches, 0);
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
}

TEST(Partition, ConflictingAutoscalerSignals) {
  // Router-only partition: the minority side sees no replicas and no
  // queue, so its autoscaler holds while the congested majority (small
  // batches force real queueing) wants to grow.
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.windows = {window(0.1, 0.9, {1}, {})};
  fc.retry.max_retries = 12;
  fc.replica.max_batch = 4;
  fc.autoscaler.enabled = true;
  fc.autoscaler.max_replicas = 4;
  fc.autoscaler.interval_s = 0.1;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_split_brain_invariants(r);
  EXPECT_GT(r.autoscaler_conflicts, 0);
}

TEST(Partition, MetricsStayZeroWithoutPartitions) {
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  const auto r = FleetSimulator(fc).run(uniform_trace(60, 80.0));
  EXPECT_EQ(r.double_dispatches, 0);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.0);
  EXPECT_EQ(r.fenced_requests, 0);
  EXPECT_EQ(r.autoscaler_conflicts, 0);
  EXPECT_TRUE(r.partition_heal_lag_s.empty());
  for (const auto& rec : r.requests) {
    EXPECT_FALSE(rec.double_dispatched);
    EXPECT_FALSE(rec.fenced);
  }
}

// --- golden regression: partition-free runs are bitwise PR 3 ---
//
// The values below were captured from the PR 3 tree (commit d9e8754)
// before any partition code existed. Any drift here means the
// partition-disabled fast path is not actually cold.

TEST(PartitionGolden, SingleRouterFleetBitwiseIdentical) {
  FleetConfig fc = base_cfg(3);
  fc.faults.push_back(FaultWindow{1, 0.6, 1.4});
  fc.hedge.enabled = true;
  fc.retry.max_retries = 12;
  const auto r = FleetSimulator(fc).run(uniform_trace(150, 110.0));
  EXPECT_EQ(r.completed, 150);
  EXPECT_EQ(r.retries, 24);
  EXPECT_EQ(r.lost, 0);
  EXPECT_EQ(r.expired, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.hedges_issued, 50);
  EXPECT_EQ(r.circuit_opens, 1);
  EXPECT_EQ(r.stale_dispatches, 0);
  EXPECT_EQ(r.router_stranded, 0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.87608544026642);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.72425004879846799);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 0.6198482949505707);
  EXPECT_DOUBLE_EQ(r.view_disagreement_s, 0.0);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 79.953714676608087);
  EXPECT_EQ(r.double_dispatches, 0);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.0);
}

TEST(PartitionGolden, StaleViewFleetBitwiseIdentical) {
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.view_sync_interval_s = 0.2;
  fc.control.router_faults.push_back(RouterFaultWindow{1, 0.5, 1.0});
  fc.faults.push_back(FaultWindow{0, 1.0, 1.8});
  fc.retry.max_retries = 16;
  const auto r = FleetSimulator(fc).run(uniform_trace(140, 90.0));
  EXPECT_EQ(r.completed, 140);
  EXPECT_EQ(r.retries, 37);
  EXPECT_EQ(r.lost, 0);
  EXPECT_EQ(r.expired, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.hedges_issued, 0);
  EXPECT_EQ(r.circuit_opens, 1);
  EXPECT_EQ(r.stale_dispatches, 113);
  EXPECT_EQ(r.router_stranded, 25);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.2875738886282626);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.85122886711422041);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 0.91011126824064426);
  EXPECT_DOUBLE_EQ(r.view_disagreement_s, 0.19999999999999996);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 61.200208961971768);
  EXPECT_EQ(r.double_dispatches, 0);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.0);
}

}  // namespace
}  // namespace mib::fleet
