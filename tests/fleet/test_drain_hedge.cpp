// PR 3 satellites: sheddable hedges under admission pressure, and drain KV
// migration striped across links / overlapped with continued decode.
#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

void expect_conserved(const FleetReport& r) {
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
}

// --- sheddable hedges ---

FleetConfig hedge_cfg() {
  auto fc = base_cfg(2);
  fc.hedge.enabled = true;
  fc.hedge.delay_s = 0.03;  // hedge aggressively so copies pile up
  fc.admission.queue_capacity = 3;
  fc.retry.max_retries = 12;
  return fc;
}

TEST(SheddableHedge, HedgesAreShedFirstUnderOverload) {
  auto fc = hedge_cfg();
  const auto r = FleetSimulator(fc).run(uniform_trace(160, 200.0));
  expect_conserved(r);
  EXPECT_GT(r.hedges_issued, 0);
  // The tiny queue forces shedding, and hedge copies absorb it: either
  // refused at issue time or cancelled to make room for a primary.
  EXPECT_GT(r.hedges_shed, 0);
  // A shed hedge never shows up as a lost/rejected *request* — the primary
  // copy still resolves it. Shedding is strictly cheaper than rejecting.
  EXPECT_GT(r.completed, 0);
}

TEST(SheddableHedge, OptOutRestoresBypassBehaviour) {
  auto fc = hedge_cfg();
  fc.hedge.sheddable = false;
  const auto r = FleetSimulator(fc).run(uniform_trace(160, 200.0));
  expect_conserved(r);
  // PR 2 semantics: hedges bypass admission, so nothing is ever shed.
  EXPECT_GT(r.hedges_issued, 0);
  EXPECT_EQ(r.hedges_shed, 0);
}

TEST(SheddableHedge, ShedingSparesPrimaries) {
  // Same overload, hedges sheddable vs bypassing: making hedges yield
  // queue slots can only reduce primary rejections.
  auto shed = hedge_cfg();
  auto bypass = hedge_cfg();
  bypass.hedge.sheddable = false;
  const auto trace = uniform_trace(160, 200.0);
  const auto rs = FleetSimulator(shed).run(trace);
  const auto rb = FleetSimulator(bypass).run(trace);
  expect_conserved(rs);
  expect_conserved(rb);
  EXPECT_LE(rs.rejected, rb.rejected + rs.hedges_shed);
}

TEST(SheddableHedge, AmpleCapacityShedsNothing) {
  auto fc = hedge_cfg();
  fc.admission.queue_capacity = 4096;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 120.0));
  expect_conserved(r);
  EXPECT_EQ(r.hedges_shed, 0);
}

// --- striped drain migration ---

FleetConfig drain_cfg(int stripe_links, bool overlap) {
  auto fc = base_cfg(3);
  fc.maintenance.push_back(MaintenanceWindow{0, 0.5, 1.5});
  fc.migration.migrate_kv = true;
  fc.migration.stripe_links = stripe_links;
  fc.migration.overlap_decode = overlap;
  fc.retry.max_retries = 12;
  return fc;
}

TEST(StripedDrain, MoreLinksShortenTheTransfer) {
  // Long prompts so the drained replica holds deep KV worth shipping.
  const auto trace = uniform_trace(90, 80.0, 1024, 96);
  const auto r1 = FleetSimulator(drain_cfg(1, false)).run(trace);
  const auto r4 = FleetSimulator(drain_cfg(4, false)).run(trace);
  expect_conserved(r1);
  expect_conserved(r4);
  ASSERT_GT(r1.migrations, 0);
  ASSERT_GT(r4.migrations, 0);
  EXPECT_EQ(r1.migrations, r4.migrations);  // same drain, same sequences
  // Four lanes move the same bytes in parallel: per-sequence transfer
  // time strictly drops (overhead term keeps it from being exactly 4x).
  EXPECT_LT(r4.migration_s.mean(), r1.migration_s.mean());
  EXPECT_EQ(r1.overlap_decode_tokens, 0);
  EXPECT_EQ(r4.overlap_decode_tokens, 0);
}

// --- overlapped drain ---

TEST(OverlapDrain, SourceKeepsDecodingWhileKvShips) {
  const auto trace = uniform_trace(90, 80.0, 1024, 96);
  const auto r = FleetSimulator(drain_cfg(1, true)).run(trace);
  expect_conserved(r);
  // Running sequences kept producing tokens on the source while their
  // snapshots were in flight; only the delta re-shipped at cutover.
  EXPECT_GT(r.migrations + r.drain_evacuations, 0);
  EXPECT_GT(r.overlap_decode_tokens, 0);
  EXPECT_GE(r.migrated_kv_tokens, r.migrations);
}

TEST(OverlapDrain, OverlapDoesNotLoseWork) {
  const auto trace = uniform_trace(90, 80.0, 1024, 96);
  const auto off = FleetSimulator(drain_cfg(1, false)).run(trace);
  const auto on = FleetSimulator(drain_cfg(1, true)).run(trace);
  expect_conserved(off);
  expect_conserved(on);
  // Same trace, same drain: overlap must not drop or duplicate requests.
  EXPECT_EQ(on.submitted, off.submitted);
  EXPECT_EQ(on.completed + on.rejected + on.expired + on.lost,
            off.completed + off.rejected + off.expired + off.lost);
}

TEST(OverlapDrain, DeterministicAcrossRuns) {
  const auto trace = uniform_trace(90, 80.0, 1024, 96);
  const auto a = FleetSimulator(drain_cfg(2, true)).run(trace);
  const auto b = FleetSimulator(drain_cfg(2, true)).run(trace);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.overlap_decode_tokens, b.overlap_decode_tokens);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
  }
}

TEST(StripedDrain, ConfigValidation) {
  MigrationConfig mc;
  mc.stripe_links = 0;
  EXPECT_THROW(mc.validate(), Error);
  mc.stripe_links = 1;
  EXPECT_NO_THROW(mc.validate());
}

}  // namespace
}  // namespace mib::fleet
