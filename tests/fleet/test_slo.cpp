#include "fleet/slo.h"

#include <gtest/gtest.h>

#include "fleet/autoscaler.h"

namespace mib::fleet {
namespace {

RequestRecord completed_record(double arrival, double first, double finish,
                               int out_tokens) {
  RequestRecord r;
  r.status = RequestStatus::kCompleted;
  r.arrival_s = arrival;
  r.first_token_s = first;
  r.finish_s = finish;
  r.output_tokens = out_tokens;
  return r;
}

TEST(Slo, RequestRecordLatencies) {
  const auto r = completed_record(1.0, 1.5, 2.5, 11);
  EXPECT_DOUBLE_EQ(r.ttft(), 0.5);
  EXPECT_DOUBLE_EQ(r.e2e(), 1.5);
  EXPECT_DOUBLE_EQ(r.itl(), 0.1);  // (2.5 - 1.5) / 10
  const auto single = completed_record(0.0, 0.2, 0.2, 1);
  EXPECT_DOUBLE_EQ(single.itl(), 0.0);
}

TEST(Slo, MeetsIsStrictOnBothBounds) {
  SloConfig slo;
  slo.ttft_s = 1.0;
  slo.itl_s = 0.05;
  EXPECT_TRUE(completed_record(0.0, 0.5, 1.0, 11).meets(slo));
  EXPECT_FALSE(completed_record(0.0, 1.5, 2.0, 11).meets(slo));  // TTFT miss
  EXPECT_FALSE(completed_record(0.0, 0.5, 2.5, 11).meets(slo));  // ITL miss
  RequestRecord rejected;
  rejected.status = RequestStatus::kRejected;
  EXPECT_FALSE(rejected.meets(slo));
}

TEST(Slo, SummaryCountsShedLoadAsMisses) {
  SloConfig slo;
  slo.ttft_s = 1.0;
  slo.itl_s = 0.05;
  std::vector<RequestRecord> recs;
  recs.push_back(completed_record(0.0, 0.5, 1.0, 11));  // attained
  recs.push_back(completed_record(0.0, 2.0, 3.0, 11));  // TTFT miss
  RequestRecord rej;
  rej.status = RequestStatus::kRejected;
  recs.push_back(rej);
  const auto s = summarize_slo(recs, slo, 10.0);
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.attained, 1);
  EXPECT_NEAR(s.attainment, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.goodput_qps, 0.1, 1e-12);
  EXPECT_NEAR(s.goodput_tok_s, 1.1, 1e-12);  // 11 tokens over 10 s
}

TEST(Slo, StatusNames) {
  EXPECT_STREQ(to_string(RequestStatus::kCompleted), "completed");
  EXPECT_STREQ(to_string(RequestStatus::kRejected), "rejected");
  EXPECT_STREQ(to_string(RequestStatus::kExpired), "expired");
  EXPECT_STREQ(to_string(RequestStatus::kLost), "lost");
}

TEST(CapacitySearch, BisectsAStepFunction) {
  // Attainment is 1 below 37 QPS and 0 above: the search must land within
  // the bisection tolerance of the knee, from below.
  const auto at = [](double qps) { return qps <= 37.0 ? 1.0 : 0.0; };
  const auto cap = find_capacity_qps(at, 1.0, 100.0, 0.99, 12);
  EXPECT_LE(cap.qps, 37.0);
  EXPECT_GT(cap.qps, 37.0 - (100.0 - 1.0) / 4096.0 - 1e-9);
  EXPECT_DOUBLE_EQ(cap.attainment, 1.0);
}

TEST(CapacitySearch, SaturatedAndInfeasibleEdges) {
  const auto always = find_capacity_qps([](double) { return 1.0; }, 1.0,
                                        64.0, 0.99, 10);
  EXPECT_DOUBLE_EQ(always.qps, 64.0);  // hi passes -> no bisection needed
  EXPECT_EQ(always.evaluations, 1);
  const auto never = find_capacity_qps([](double) { return 0.0; }, 1.0, 64.0,
                                       0.99, 10);
  EXPECT_DOUBLE_EQ(never.qps, 0.0);  // even lo misses the target
}

TEST(Autoscaler, DecisionLogic) {
  AutoscalerConfig cfg;
  cfg.enabled = true;
  cfg.min_replicas = 1;
  cfg.max_replicas = 4;
  cfg.scale_up_queue_depth = 8;
  cfg.scale_down_queue_depth = 0;
  const Autoscaler as(cfg);
  EXPECT_EQ(as.decide(20, 2, false), +1);
  EXPECT_EQ(as.decide(20, 4, false), 0);  // at ceiling
  EXPECT_EQ(as.decide(0, 2, true), -1);
  EXPECT_EQ(as.decide(0, 1, true), 0);    // at floor
  EXPECT_EQ(as.decide(0, 2, false), 0);   // nothing idle to drain
  EXPECT_EQ(as.decide(5, 2, true), 0);    // between watermarks
  cfg.enabled = false;
  EXPECT_EQ(Autoscaler(cfg).decide(100, 1, true), 0);
}

}  // namespace
}  // namespace mib::fleet
