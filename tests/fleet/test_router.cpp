#include "fleet/router.h"

#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"
#include "workload/generator.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas, RoutePolicy policy) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.policy = policy;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> conversation_trace() {
  workload::ConversationConfig cc;
  // Coprime with the 4-replica pool: round-robin cannot stay aligned with
  // conversations across turn rounds, so any hits it gets are accidental.
  cc.n_conversations = 9;
  cc.turns_per_conversation = 4;
  cc.system_prompt_tokens = 512;
  cc.seed = 5;
  auto trace = as_fleet_trace(workload::generate_conversations(cc));
  workload::ArrivalConfig ac;
  ac.rate_qps = 12.0;
  ac.seed = 17;
  stamp_arrivals(ac, trace);
  return trace;
}

TEST(Router, PolicyNames) {
  EXPECT_STREQ(route_policy_name(RoutePolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(route_policy_name(RoutePolicy::kLeastOutstanding),
               "least-outstanding");
  EXPECT_STREQ(route_policy_name(RoutePolicy::kPrefixAffinity),
               "prefix-affinity");
}

TEST(Router, AffinityBeatsRoundRobinOnPrefixHits) {
  const auto trace = conversation_trace();
  const auto rr = FleetSimulator(base_cfg(4, RoutePolicy::kRoundRobin))
                      .run(trace);
  const auto aff = FleetSimulator(base_cfg(4, RoutePolicy::kPrefixAffinity))
                       .run(trace);
  EXPECT_EQ(rr.completed, rr.submitted);
  EXPECT_EQ(aff.completed, aff.submitted);
  EXPECT_GT(aff.prefix_hit_rate(), rr.prefix_hit_rate());
  // With affinity, every post-first turn should land on its warm replica.
  EXPECT_GE(aff.prefix_hit_rate(), 0.5);
}

TEST(Router, AllPoliciesCompleteTheConversationWorkload) {
  const auto trace = conversation_trace();
  for (auto policy : {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
                      RoutePolicy::kPrefixAffinity}) {
    const auto r = FleetSimulator(base_cfg(4, policy)).run(trace);
    EXPECT_EQ(r.completed, r.submitted) << route_policy_name(policy);
    EXPECT_EQ(r.lost, 0) << route_policy_name(policy);
  }
}

TEST(Router, RoundRobinSpreadsWorkAcrossReplicas) {
  auto cfg = base_cfg(4, RoutePolicy::kRoundRobin);
  auto trace = as_fleet_trace(engine::make_uniform_batch(32, 128, 32));
  workload::ArrivalConfig ac;
  ac.rate_qps = 8.0;  // slow enough that each request sees an idle fleet
  stamp_arrivals(ac, trace);
  const auto r = FleetSimulator(cfg).run(trace);
  for (const auto& rep : r.replicas) {
    EXPECT_EQ(rep.completed, 8) << "replica " << rep.replica;
  }
}

TEST(Router, LeastOutstandingAvoidsBusyReplica) {
  // Two replicas, one pinned busy by a long prefill burst arriving first:
  // the p2c router must steer later traffic toward the idle one more often
  // than round-robin's strict alternation would.
  const auto r =
      FleetSimulator(base_cfg(2, RoutePolicy::kLeastOutstanding))
          .run([] {
            auto t = as_fleet_trace(engine::make_uniform_batch(48, 512, 64));
            workload::ArrivalConfig ac;
            ac.rate_qps = 300.0;
            ac.seed = 23;
            stamp_arrivals(ac, t);
            return t;
          }());
  EXPECT_EQ(r.completed, 48);
  EXPECT_GT(r.replicas[0].completed, 0);
  EXPECT_GT(r.replicas[1].completed, 0);
}

TEST(Router, AffinityFallsBackWhenPinnedReplicaDown) {
  auto cfg = base_cfg(2, RoutePolicy::kPrefixAffinity);
  // Replica 0 dies mid-run; conversations pinned there must still complete
  // (re-routed to replica 1), no request lost.
  cfg.faults.push_back(FaultWindow{0, 0.2, 5.0});
  const auto r = FleetSimulator(cfg).run(conversation_trace());
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_EQ(r.lost, 0);
}

}  // namespace
}  // namespace mib::fleet
