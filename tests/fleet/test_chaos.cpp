// Deterministic chaos harness: randomized fault + degradation + maintenance
// schedules across many seeds, asserting the fleet's resilience invariants
// hold on every one of them.
//
// The simulator also self-checks internally (MIB_ENSURE on request
// conservation, no dispatch to an open circuit, monotonic simulation time,
// no leaked KV or queued work past the run), so merely surviving a run is
// half the assertion; the rest is re-checked here from the report.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

constexpr int kChaosSeeds = 60;

/// Disjoint random windows in [0, horizon) for one replica: walk time
/// forward so overlap is impossible by construction.
template <typename Window, typename Fill>
void random_windows(Rng& rng, int replica, double horizon, int max_windows,
                    std::vector<Window>& out, Fill&& fill) {
  double t = rng.uniform(0.0, horizon * 0.3);
  const int count = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(max_windows + 1)));
  for (int k = 0; k < count && t < horizon; ++k) {
    Window w;
    w.replica = replica;
    w.start_s = t;
    w.end_s = t + rng.uniform(0.05, 0.4);
    fill(w);
    out.push_back(w);
    t = w.end_s + rng.uniform(0.1, 0.6);
  }
}

/// rack0 = {replica 0, 1}, rack1 = {replica 2}, both under one zone.
TopologyConfig chaos_topology() {
  TopologyConfig tc;
  tc.domains = {DomainSpec{"zone", ""}, DomainSpec{"rack0", "zone"},
                DomainSpec{"rack1", "zone"}, DomainSpec{"n0", "rack0"},
                DomainSpec{"n1", "rack0"}, DomainSpec{"n2", "rack1"}};
  tc.replica_domain = {"n0", "n1", "n2"};
  return tc;
}

/// One randomized chaos scenario, fully determined by `seed`.
FleetConfig chaos_cfg(std::uint64_t seed) {
  Rng rng(seed);
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = 3;
  fc.seed = seed;
  fc.replica.max_batch = 8;
  // Occasionally starve the queue — paired with aggressive hedging so the
  // sheddable-hedge path is actually taken somewhere in the sweep.
  const bool tight_queue = rng.bernoulli(0.25);
  fc.admission.queue_capacity = tight_queue ? 4 : 64;
  if (rng.bernoulli(0.3)) fc.admission.deadline_s = rng.uniform(0.5, 2.0);
  fc.retry.max_retries = static_cast<int>(rng.uniform_index(4));
  fc.retry.jitter = rng.bernoulli(0.5) ? rng.uniform(0.1, 1.0) : 0.0;
  fc.health.enabled = rng.bernoulli(0.8);  // a few runs keep the oracle
  fc.hedge.enabled = tight_queue || rng.bernoulli(0.5);
  fc.hedge.delay_s = tight_queue ? rng.uniform(0.02, 0.08)
                     : rng.bernoulli(0.5) ? rng.uniform(0.05, 0.3)
                                          : 0.0;
  fc.hedge.sheddable = tight_queue || rng.bernoulli(0.7);
  fc.migration.migrate_kv = rng.bernoulli(0.5);
  fc.migration.stripe_links =
      1 + static_cast<int>(rng.uniform_index(4));  // 1..4 lanes
  fc.migration.overlap_decode = rng.bernoulli(0.5);
  const double horizon = 2.0;
  // Correlated events over the rack topology, layered on the independent
  // per-replica schedules below.
  const bool topo = rng.bernoulli(0.6);
  bool rack_degraded = false;
  if (topo) {
    fc.topology = chaos_topology();
    if (rng.bernoulli(0.7)) {
      const double start = rng.uniform(0.0, horizon * 0.6);
      fc.domain_faults.push_back(
          DomainFault{rng.bernoulli(0.7) ? "rack0" : "zone", start,
                      start + rng.uniform(0.05, 0.4)});
    }
    if (rng.bernoulli(0.4)) {
      // Domain degradations reject overlap with per-replica windows, so a
      // rack-level brownout replaces rack0's independent ones this run.
      rack_degraded = true;
      DomainDegradation dd;
      dd.domain = "rack0";
      dd.start_s = rng.uniform(0.0, horizon * 0.6);
      dd.end_s = dd.start_s + rng.uniform(0.05, 0.4);
      dd.scale = PerfScale{rng.uniform(0.25, 1.0), rng.uniform(0.25, 1.0),
                           rng.uniform(0.25, 1.0)};
      fc.domain_degradations.push_back(dd);
    }
  }
  fc.warmup.enabled = rng.bernoulli(0.5);
  fc.warmup.duration_s = rng.uniform(0.1, 0.4);
  fc.warmup.initial_scale = rng.uniform(0.3, 0.8);
  fc.warmup.ramp_steps = 2 + static_cast<int>(rng.uniform_index(3));
  // Replicated front end: sometimes 2 routers, sometimes with stale views
  // and a router outage of its own.
  if (rng.bernoulli(0.5)) {
    fc.control.routers = 2;
    if (rng.bernoulli(0.6)) {
      fc.control.view_sync_interval_s = rng.uniform(0.05, 0.3);
    }
  }
  if (rng.bernoulli(0.4)) {
    const double start = rng.uniform(0.0, horizon * 0.5);
    fc.control.router_faults.push_back(RouterFaultWindow{
        static_cast<int>(rng.uniform_index(
            static_cast<std::uint64_t>(fc.control.routers))),
        start, start + rng.uniform(0.05, 0.3)});
  }
  for (int i = 0; i < fc.n_replicas; ++i) {
    random_windows(rng, i, horizon, 2, fc.faults, [](FaultWindow&) {});
    if (!(rack_degraded && i < 2)) {
      random_windows(rng, i, horizon, 2, fc.degradations,
                     [&](DegradationWindow& w) {
                       w.scale.flops = rng.uniform(0.25, 1.0);
                       w.scale.mem_bw = rng.uniform(0.25, 1.0);
                       w.scale.link_bw = rng.uniform(0.25, 1.0);
                     });
    }
    if (rng.bernoulli(0.4)) {
      random_windows(rng, i, horizon, 1, fc.maintenance,
                     [](MaintenanceWindow&) {});
    }
  }
  // Split-brain partitions (drawn last so the schedules above keep their
  // historical streams): with two routers, sometimes cut router 1 — and
  // sometimes replica 2 with it — off the majority for a while.
  if (fc.control.routers == 2 && rng.bernoulli(0.4)) {
    fc.control.partition.enabled = true;
    fc.control.partition.client_retry_s = rng.uniform(0.01, 0.06);
    fc.control.partition.heal = rng.bernoulli(0.5)
                                    ? HealPolicy::kFenceMinority
                                    : HealPolicy::kFirstCommitWins;
    PartitionWindow w;
    w.start_s = rng.uniform(0.0, horizon * 0.4);
    w.end_s = w.start_s + rng.uniform(0.1, 0.8);
    w.minority_routers = {1};
    if (rng.bernoulli(0.6)) w.minority_replicas = {2};
    fc.control.partition.windows.push_back(w);
    if (rng.bernoulli(0.3)) {
      PartitionWindow w2;
      w2.start_s = w.end_s + rng.uniform(0.05, 0.3);
      w2.end_s = w2.start_s + rng.uniform(0.1, 0.4);
      w2.minority_routers = {1};
      fc.control.partition.windows.push_back(w2);
    }
    // Gray-failure knobs (drawn after every PR 4 draw so those keep their
    // historical streams): asymmetric links, flapping, quorum fencing,
    // client backoff, drain-fabric severing.
    if (rng.bernoulli(0.4)) {
      auto& w0 = fc.control.partition.windows[0];
      if (rng.bernoulli(0.5)) {
        w0.open_to_minority = true;  // dispatches land, replies are lost
      } else {
        w0.open_to_majority = true;
      }
    }
    if (rng.bernoulli(0.3)) {
      auto& w0 = fc.control.partition.windows[0];
      w0.flap_period_s = rng.uniform(0.05, 0.2);
      w0.flap_duty = rng.uniform(0.3, 0.9);
    }
    if (rng.bernoulli(0.35)) {
      fc.control.partition.quorum = rng.bernoulli(0.5)
                                        ? QuorumPolicy::kFenceAtCut
                                        : QuorumPolicy::kFenceAfterGrace;
      fc.control.partition.quorum_grace_s = rng.uniform(0.0, 0.05);
    }
    if (rng.bernoulli(0.4)) {
      fc.control.partition.max_client_retries =
          2 + static_cast<int>(rng.uniform_index(3));
      fc.control.partition.retry_multiplier = rng.uniform(1.0, 2.0);
      fc.control.partition.retry_jitter =
          rng.bernoulli(0.5) ? rng.uniform(0.1, 1.0) : 0.0;
    }
    fc.control.partition.sever_drain_fabric = rng.bernoulli(0.5);
  }
  // Hedge utilization gate (also drawn last, after the partition block):
  // some runs self-disable hedging near saturation.
  if (fc.hedge.enabled && rng.bernoulli(0.3)) {
    fc.hedge.max_utilization = rng.uniform(0.5, 1.0);
  }
  return fc;
}

/// Reset every PR 5 gray-failure knob back to its PR 4 default. The forced
/// smokes pin their own failure mode and must not inherit the randomized
/// gray draws from chaos_cfg.
void clear_gray_knobs(FleetConfig& fc) {
  for (auto& w : fc.control.partition.windows) {
    w.open_to_minority = false;
    w.open_to_majority = false;
    w.flap_period_s = 0.0;
    w.flap_duty = 0.5;
  }
  fc.control.partition.quorum = QuorumPolicy::kServeStale;
  fc.control.partition.max_client_retries = 1;
  fc.control.partition.retry_multiplier = 1.0;
  fc.control.partition.retry_jitter = 0.0;
  fc.control.partition.sever_drain_fabric = false;
  fc.hedge.max_utilization = 1.0;
}

std::vector<FleetRequest> chaos_trace(std::uint64_t seed) {
  Rng rng(seed ^ 0xC0FFEEull);
  const int n = 24 + static_cast<int>(rng.uniform_index(25));
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, 192, 48));
  workload::ArrivalConfig ac;
  ac.rate_qps = rng.uniform(80.0, 300.0);
  ac.seed = seed ^ 0xA11CEull;
  stamp_arrivals(ac, trace);
  return trace;
}

void assert_invariants(const FleetConfig& cfg, const FleetReport& r) {
  // Request conservation: every submitted request lands in exactly one
  // terminal bucket.
  ASSERT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  ASSERT_EQ(static_cast<long long>(r.requests.size()), r.submitted);
  long long completed = 0;
  for (const auto& rec : r.requests) {
    if (!rec.completed()) continue;
    ++completed;
    EXPECT_GE(rec.first_token_s, rec.arrival_s);
    EXPECT_GE(rec.finish_s, rec.first_token_s);
    EXPECT_LE(rec.finish_s, r.makespan_s + 1e-9);
    EXPECT_LE(rec.retries, cfg.retry.max_retries);
  }
  ASSERT_EQ(completed, r.completed);
  // Hedge bookkeeping: winners and cancelled losers are both bounded by
  // issued hedges, and a request can only win by hedge if it was hedged.
  EXPECT_LE(r.hedges_won, r.hedges_issued);
  EXPECT_LE(r.hedges_cancelled, r.hedges_issued);
  for (const auto& rec : r.requests) {
    if (rec.won_by_hedge) {
      EXPECT_TRUE(rec.hedged);
    }
  }
  // Circuit timeline: monotone in time, opens counted consistently, and
  // every false positive corresponds to an open while the replica was up.
  double last = 0.0;
  long long opens = 0;
  for (const auto& ev : r.circuit_events) {
    EXPECT_GE(ev.t_s, last);
    last = ev.t_s;
    if (ev.to == CircuitState::kOpen) ++opens;
  }
  EXPECT_EQ(opens, r.circuit_opens);
  EXPECT_LE(r.false_circuit_opens, r.circuit_opens);
  if (!cfg.health.enabled) {
    EXPECT_EQ(r.circuit_opens, 0);
    EXPECT_EQ(r.detection_lag_s.count(), 0u);
  }
  for (double lag : r.detection_lag_s.values()) EXPECT_GE(lag, 0.0);
  // Migration accounting only moves KV when enabled.
  if (!cfg.migration.migrate_kv) {
    EXPECT_EQ(r.migrations, 0);
  }
  EXPECT_GE(r.migrated_kv_tokens, r.migrations);  // >= 1 token each
  for (double s : r.migration_s.values()) EXPECT_GT(s, 0.0);
  if (!cfg.migration.overlap_decode) {
    EXPECT_EQ(r.overlap_decode_tokens, 0);
  }
  // Warm-up and burst accounting only exist when their features do.
  if (!cfg.warmup.enabled) {
    EXPECT_EQ(r.warmup_recoveries, 0);
  }
  EXPECT_EQ(r.suspicion_bursts > 0, r.largest_suspicion_burst >= 2);
  // Control-plane metrics collapse to zero without redundancy at play.
  // (A frozen minority view counts its dispatches as stale too, so the
  // zero-check only applies with partitions off.)
  const bool stale =
      cfg.control.routers > 1 && cfg.control.view_sync_interval_s > 0.0;
  const bool partitions = cfg.control.partition.enabled &&
                          !cfg.control.partition.windows.empty();
  if (!stale && !partitions) {
    EXPECT_EQ(r.stale_dispatches, 0);
    EXPECT_DOUBLE_EQ(r.view_disagreement_s, 0.0);
  }
  if (cfg.control.router_faults.empty()) {
    EXPECT_EQ(r.router_stranded, 0);
    for (const auto& rec : r.requests) EXPECT_FALSE(rec.router_failover);
  }
  if (!cfg.hedge.enabled) {
    EXPECT_EQ(r.hedges_shed, 0);
  }
  // Split-brain bookkeeping: flags match the counter, and everything is
  // exactly zero when no partition is configured.
  long long dup_records = 0;
  for (const auto& rec : r.requests) {
    if (rec.double_dispatched) ++dup_records;
  }
  if (cfg.control.partition.max_client_retries <= 1) {
    // A single patience attempt admits at most one duplicate per request.
    EXPECT_EQ(dup_records, r.double_dispatches);
  } else {
    // Backoff retries can re-admit after an earlier duplicate died, so
    // the request-level flag only bounds the dispatch counter.
    EXPECT_LE(dup_records, r.double_dispatches);
  }
  EXPECT_GE(r.duplicate_decode_s, 0.0);
  for (double lag : r.partition_heal_lag_s.values()) EXPECT_GE(lag, 0.0);
  if (!partitions) {
    EXPECT_EQ(r.double_dispatches, 0);
    EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.0);
    EXPECT_EQ(r.fenced_requests, 0);
    EXPECT_EQ(r.autoscaler_conflicts, 0);
    EXPECT_TRUE(r.partition_heal_lag_s.empty());
    for (const auto& rec : r.requests) {
      EXPECT_FALSE(rec.double_dispatched);
      EXPECT_FALSE(rec.fenced);
    }
  }
  // Gray-failure bookkeeping: each meter is gated on its own knob.
  EXPECT_GE(r.lost_completion_s, 0.0);
  bool asymmetric = false;
  for (const auto& w : cfg.control.partition.windows) {
    asymmetric = asymmetric || w.open_to_minority || w.open_to_majority;
  }
  if (!partitions || !asymmetric) {
    // Orphans (and the resends they trigger) exist only on asymmetric
    // cuts: a clean cut keeps PR 4's reply semantics.
    EXPECT_EQ(r.orphaned_completions, 0);
    EXPECT_DOUBLE_EQ(r.lost_completion_s, 0.0);
    EXPECT_EQ(r.client_resends, 0);
    for (const auto& rec : r.requests) EXPECT_FALSE(rec.orphaned);
  }
  if (!partitions || cfg.control.partition.quorum == QuorumPolicy::kServeStale) {
    EXPECT_EQ(r.quorum_fenced, 0);
    for (const auto& rec : r.requests) EXPECT_FALSE(rec.quorum_rehomed);
  }
  if (!partitions) {
    EXPECT_EQ(r.partition_flaps, 0);
  }
  if (!partitions || !cfg.control.partition.sever_drain_fabric) {
    EXPECT_EQ(r.migration_aborts, 0);
  }
  if (cfg.hedge.max_utilization >= 1.0) {
    EXPECT_EQ(r.hedges_suppressed, 0);
  }
}

TEST(Chaos, InvariantsHoldAcrossRandomizedSchedules) {
  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const auto cfg = chaos_cfg(seed);
    const auto trace = chaos_trace(seed);
    FleetReport r;
    ASSERT_NO_THROW(r = FleetSimulator(cfg).run(trace))
        << "chaos seed " << seed << " violated an internal invariant";
    assert_invariants(cfg, r);
  }
}

TEST(Chaos, EveryFeatureExercisedSomewhereInTheSweep) {
  // The sweep is only a real chaos test if the random scenarios actually
  // hit the interesting machinery: failures detected by the monitor,
  // hedges issued, KV migrated, work retried.
  long long opens = 0, hedges = 0, migrations = 0, retries = 0, lost = 0;
  long long shed = 0, overlap_tok = 0, stranded = 0, stale = 0;
  long long warmups = 0, bursts = 0, double_dispatched = 0;
  double disagreement = 0.0, duplicate_decode = 0.0;
  long long flaps = 0, q_fenced = 0;
  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    const auto r = FleetSimulator(chaos_cfg(seed)).run(chaos_trace(seed));
    opens += r.circuit_opens;
    hedges += r.hedges_issued;
    migrations += r.migrations;
    retries += r.retries;
    lost += r.lost;
    shed += r.hedges_shed;
    overlap_tok += r.overlap_decode_tokens;
    stranded += r.router_stranded;
    stale += r.stale_dispatches;
    warmups += r.warmup_recoveries;
    bursts += r.suspicion_bursts;
    disagreement += r.view_disagreement_s;
    double_dispatched += r.double_dispatches;
    duplicate_decode += r.duplicate_decode_s;
    flaps += r.partition_flaps;
    q_fenced += r.quorum_fenced;
  }
  EXPECT_GT(opens, 0);
  EXPECT_GT(hedges, 0);
  EXPECT_GT(migrations, 0);
  EXPECT_GT(retries, 0);
  EXPECT_GT(lost, 0);  // some seeds draw a zero retry budget
  // PR 3 machinery must be hit too: shed hedges, overlapped drains,
  // stranded requests at dead routers, stale dispatches, warm-up ramps and
  // correlated suspicion bursts.
  EXPECT_GT(shed, 0);
  EXPECT_GT(overlap_tok, 0);
  EXPECT_GT(stranded, 0);
  EXPECT_GT(stale, 0);
  EXPECT_GT(warmups, 0);
  EXPECT_GT(bursts, 0);
  EXPECT_GT(disagreement, 0.0);
  // PR 4: some seed must actually split the brain.
  EXPECT_GT(double_dispatched, 0);
  EXPECT_GT(duplicate_decode, 0.0);
  // PR 5: the gray-failure draws must hit their machinery somewhere —
  // heal edges observed by minority replicas and quorum fencing. Orphaned
  // completions need a decode to finish inside a cut on the wrong side of
  // an asymmetric link, which random geometry rarely lines up; the forced
  // FlappingPartitionSmoke below asserts that path deterministically.
  EXPECT_GT(flaps, 0);
  EXPECT_GT(q_fenced, 0);
}

TEST(Chaos, CorrelatedChaosSmoke) {
  // CI fast path: a handful of seeds with every PR 3 feature forced on at
  // once — rack topology, correlated faults, warm-up, two routers with
  // stale views and a router outage, striped overlapped drains.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("smoke seed " + std::to_string(seed));
    auto cfg = chaos_cfg(seed);
    clear_gray_knobs(cfg);
    cfg.topology = chaos_topology();
    // The burst assertion needs a clean rack-level down edge: no random
    // per-replica outage may pre-open (or suspend) a rack0 breaker first,
    // and no brownout may stretch one rack0 heartbeat ahead of the other
    // (staggered detection would split the burst).
    cfg.faults.clear();
    cfg.degradations.clear();
    cfg.domain_degradations.clear();
    cfg.maintenance.clear();
    cfg.maintenance.push_back(MaintenanceWindow{2, 1.2, 1.6});
    cfg.domain_faults.clear();
    cfg.domain_faults.push_back(DomainFault{"rack0", 0.5, 0.9});
    cfg.warmup.enabled = true;
    cfg.control.routers = 2;
    cfg.control.view_sync_interval_s = 0.15;
    cfg.control.router_faults.clear();
    cfg.control.router_faults.push_back(RouterFaultWindow{0, 0.4, 1.0});
    cfg.migration.migrate_kv = true;
    cfg.migration.stripe_links = 2;
    cfg.migration.overlap_decode = true;
    cfg.health.enabled = true;
    // Traffic must outlive the rack fault at [0.5, 0.9) or there is nothing
    // left to detect it (the randomized chaos trace can end before t=0.5).
    auto trace = as_fleet_trace(engine::make_uniform_batch(60, 192, 48));
    workload::ArrivalConfig ac;
    ac.rate_qps = 50.0;
    ac.seed = seed ^ 0xA11CEull;
    stamp_arrivals(ac, trace);
    FleetReport r;
    ASSERT_NO_THROW(r = FleetSimulator(cfg).run(trace));
    assert_invariants(cfg, r);
    EXPECT_GE(r.largest_suspicion_burst, 2);
    EXPECT_EQ(r.warmup_recoveries > 0,
              !FleetSimulator(cfg).warmup_windows().empty());
  }
}

TEST(Chaos, PartitionSmoke) {
  // CI fast path for the split-brain machinery: a few seeds with a forced
  // partition (router 1 + replica 2 cut off mid-trace), alternating heal
  // policies. Must stay cheap — it runs in the fail-first smoke step.
  long long double_dispatched = 0, fenced = 0;
  double duplicate_decode = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("partition smoke seed " + std::to_string(seed));
    auto cfg = chaos_cfg(seed);
    clear_gray_knobs(cfg);
    cfg.control.routers = 2;
    cfg.control.router_faults.clear();
    cfg.control.partition.enabled = true;
    cfg.control.partition.client_retry_s = 0.01;
    cfg.control.partition.heal = (seed % 2 == 0)
                                     ? HealPolicy::kFenceMinority
                                     : HealPolicy::kFirstCommitWins;
    PartitionWindow w;
    w.start_s = 0.05;
    // Heal mid-congestion so the fence seeds find still-racing duplicates
    // resident on the minority replica.
    w.end_s = 0.3;
    w.minority_routers = {1};
    w.minority_replicas = {2};
    cfg.control.partition.windows = {w};
    // Keep the cut itself the only failure mode in play.
    cfg.faults.clear();
    cfg.degradations.clear();
    cfg.domain_faults.clear();
    cfg.domain_degradations.clear();
    cfg.maintenance.clear();
    auto trace = as_fleet_trace(engine::make_uniform_batch(48, 192, 48));
    workload::ArrivalConfig ac;
    ac.rate_qps = 120.0;
    ac.seed = seed ^ 0xA11CEull;
    stamp_arrivals(ac, trace);
    FleetReport r;
    ASSERT_NO_THROW(r = FleetSimulator(cfg).run(trace));
    assert_invariants(cfg, r);
    double_dispatched += r.double_dispatches;
    fenced += r.fenced_requests;
    duplicate_decode += r.duplicate_decode_s;
  }
  EXPECT_GT(double_dispatched, 0);
  EXPECT_GT(duplicate_decode, 0.0);
  EXPECT_GT(fenced, 0);
}

TEST(Chaos, FlappingPartitionSmoke) {
  // CI fast path for the gray-failure machinery: a flapping asymmetric cut
  // (dispatches cross, replies are lost) with quorum fencing, multi-attempt
  // jittered client backoff and a severed drain fabric under an active
  // maintenance window. Must stay cheap — it runs in the fail-first smoke
  // step alongside PartitionSmoke.
  long long flaps = 0, orphans = 0, resends = 0, q_fenced = 0, aborts = 0;
  long long double_dispatched = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("flapping smoke seed " + std::to_string(seed));
    auto cfg = chaos_cfg(seed);
    clear_gray_knobs(cfg);
    cfg.control.routers = 2;
    cfg.control.router_faults.clear();
    cfg.control.partition.enabled = true;
    cfg.control.partition.client_retry_s = 0.01;
    cfg.control.partition.max_client_retries = 3;
    cfg.control.partition.retry_multiplier = 1.5;
    cfg.control.partition.retry_jitter = 0.5;
    cfg.control.partition.quorum = (seed % 2 == 0)
                                       ? QuorumPolicy::kFenceAfterGrace
                                       : QuorumPolicy::kFenceAtCut;
    cfg.control.partition.quorum_grace_s = 0.02;
    cfg.control.partition.sever_drain_fabric = true;
    PartitionWindow w;
    w.start_s = 0.05;
    w.end_s = 1.25;
    w.flap_period_s = 0.2;  // cut episodes [.05,.15) [.25,.35) ... [1.05,1.15)
    w.flap_duty = 0.5;
    w.minority_routers = {1};
    w.minority_replicas = {2};
    w.open_to_minority = true;  // asymmetric: requests land, replies don't
    cfg.control.partition.windows = {w};
    // Keep the flapping cut and the drain it severs the only failure
    // modes in play: the maintenance window starts inside the first cut
    // episode so the drain fabric is down when the drain wants to start,
    // but ends early enough that replica 2 serves (and orphans) decodes
    // through the later episodes.
    cfg.faults.clear();
    cfg.degradations.clear();
    cfg.domain_faults.clear();
    cfg.domain_degradations.clear();
    cfg.maintenance.clear();
    cfg.maintenance.push_back(MaintenanceWindow{2, 0.1, 0.2});
    cfg.migration.migrate_kv = true;
    auto trace = as_fleet_trace(engine::make_uniform_batch(48, 192, 48));
    workload::ArrivalConfig ac;
    ac.rate_qps = 120.0;
    ac.seed = seed ^ 0xA11CEull;
    stamp_arrivals(ac, trace);
    FleetReport r;
    ASSERT_NO_THROW(r = FleetSimulator(cfg).run(trace));
    assert_invariants(cfg, r);
    flaps += r.partition_flaps;
    orphans += r.orphaned_completions;
    resends += r.client_resends;
    q_fenced += r.quorum_fenced;
    aborts += r.migration_aborts;
    double_dispatched += r.double_dispatches;
  }
  EXPECT_GT(flaps, 0);
  EXPECT_GT(orphans, 0);
  EXPECT_GT(resends, 0);
  EXPECT_GT(q_fenced, 0);
  EXPECT_GT(aborts, 0);
  EXPECT_GT(double_dispatched, 0);
}

TEST(Chaos, DeterministicUnderChaos) {
  // Same seed, same schedule, same trace: bit-identical reports even with
  // every resilience feature active.
  for (std::uint64_t seed : {3ull, 17ull, 42ull}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const auto cfg = chaos_cfg(seed);
    const auto trace = chaos_trace(seed);
    const auto a = FleetSimulator(cfg).run(trace);
    const auto b = FleetSimulator(cfg).run(trace);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.hedges_issued, b.hedges_issued);
    EXPECT_EQ(a.circuit_opens, b.circuit_opens);
    EXPECT_EQ(a.migrations, b.migrations);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(a.requests[i].status, b.requests[i].status);
      EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    }
    ASSERT_EQ(a.circuit_events.size(), b.circuit_events.size());
    for (std::size_t i = 0; i < a.circuit_events.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.circuit_events[i].t_s, b.circuit_events[i].t_s);
      EXPECT_EQ(a.circuit_events[i].replica, b.circuit_events[i].replica);
    }
  }
}

}  // namespace
}  // namespace mib::fleet
