// Deterministic chaos harness: randomized fault + degradation + maintenance
// schedules across many seeds, asserting the fleet's resilience invariants
// hold on every one of them.
//
// The simulator also self-checks internally (MIB_ENSURE on request
// conservation, no dispatch to an open circuit, monotonic simulation time,
// no leaked KV or queued work past the run), so merely surviving a run is
// half the assertion; the rest is re-checked here from the report.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

constexpr int kChaosSeeds = 60;

/// Disjoint random windows in [0, horizon) for one replica: walk time
/// forward so overlap is impossible by construction.
template <typename Window, typename Fill>
void random_windows(Rng& rng, int replica, double horizon, int max_windows,
                    std::vector<Window>& out, Fill&& fill) {
  double t = rng.uniform(0.0, horizon * 0.3);
  const int count = static_cast<int>(rng.uniform_index(
      static_cast<std::uint64_t>(max_windows + 1)));
  for (int k = 0; k < count && t < horizon; ++k) {
    Window w;
    w.replica = replica;
    w.start_s = t;
    w.end_s = t + rng.uniform(0.05, 0.4);
    fill(w);
    out.push_back(w);
    t = w.end_s + rng.uniform(0.1, 0.6);
  }
}

/// One randomized chaos scenario, fully determined by `seed`.
FleetConfig chaos_cfg(std::uint64_t seed) {
  Rng rng(seed);
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = 3;
  fc.seed = seed;
  fc.replica.max_batch = 8;
  fc.admission.queue_capacity = 64;
  if (rng.bernoulli(0.3)) fc.admission.deadline_s = rng.uniform(0.5, 2.0);
  fc.retry.max_retries = static_cast<int>(rng.uniform_index(4));
  fc.retry.jitter = rng.bernoulli(0.5) ? rng.uniform(0.1, 1.0) : 0.0;
  fc.health.enabled = rng.bernoulli(0.8);  // a few runs keep the oracle
  fc.hedge.enabled = rng.bernoulli(0.5);
  fc.hedge.delay_s = rng.bernoulli(0.5) ? rng.uniform(0.05, 0.3) : 0.0;
  fc.migration.migrate_kv = rng.bernoulli(0.5);
  const double horizon = 2.0;
  for (int i = 0; i < fc.n_replicas; ++i) {
    random_windows(rng, i, horizon, 2, fc.faults, [](FaultWindow&) {});
    random_windows(rng, i, horizon, 2, fc.degradations,
                   [&](DegradationWindow& w) {
                     w.scale.flops = rng.uniform(0.25, 1.0);
                     w.scale.mem_bw = rng.uniform(0.25, 1.0);
                     w.scale.link_bw = rng.uniform(0.25, 1.0);
                   });
    if (rng.bernoulli(0.4)) {
      random_windows(rng, i, horizon, 1, fc.maintenance,
                     [](MaintenanceWindow&) {});
    }
  }
  return fc;
}

std::vector<FleetRequest> chaos_trace(std::uint64_t seed) {
  Rng rng(seed ^ 0xC0FFEEull);
  const int n = 24 + static_cast<int>(rng.uniform_index(25));
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, 192, 48));
  workload::ArrivalConfig ac;
  ac.rate_qps = rng.uniform(80.0, 300.0);
  ac.seed = seed ^ 0xA11CEull;
  stamp_arrivals(ac, trace);
  return trace;
}

void assert_invariants(const FleetConfig& cfg, const FleetReport& r) {
  // Request conservation: every submitted request lands in exactly one
  // terminal bucket.
  ASSERT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  ASSERT_EQ(static_cast<long long>(r.requests.size()), r.submitted);
  long long completed = 0;
  for (const auto& rec : r.requests) {
    if (!rec.completed()) continue;
    ++completed;
    EXPECT_GE(rec.first_token_s, rec.arrival_s);
    EXPECT_GE(rec.finish_s, rec.first_token_s);
    EXPECT_LE(rec.finish_s, r.makespan_s + 1e-9);
    EXPECT_LE(rec.retries, cfg.retry.max_retries);
  }
  ASSERT_EQ(completed, r.completed);
  // Hedge bookkeeping: winners and cancelled losers are both bounded by
  // issued hedges, and a request can only win by hedge if it was hedged.
  EXPECT_LE(r.hedges_won, r.hedges_issued);
  EXPECT_LE(r.hedges_cancelled, r.hedges_issued);
  for (const auto& rec : r.requests) {
    if (rec.won_by_hedge) EXPECT_TRUE(rec.hedged);
  }
  // Circuit timeline: monotone in time, opens counted consistently, and
  // every false positive corresponds to an open while the replica was up.
  double last = 0.0;
  long long opens = 0;
  for (const auto& ev : r.circuit_events) {
    EXPECT_GE(ev.t_s, last);
    last = ev.t_s;
    if (ev.to == CircuitState::kOpen) ++opens;
  }
  EXPECT_EQ(opens, r.circuit_opens);
  EXPECT_LE(r.false_circuit_opens, r.circuit_opens);
  if (!cfg.health.enabled) {
    EXPECT_EQ(r.circuit_opens, 0);
    EXPECT_EQ(r.detection_lag_s.count(), 0u);
  }
  for (double lag : r.detection_lag_s.values()) EXPECT_GE(lag, 0.0);
  // Migration accounting only moves KV when enabled.
  if (!cfg.migration.migrate_kv) EXPECT_EQ(r.migrations, 0);
  EXPECT_GE(r.migrated_kv_tokens, r.migrations);  // >= 1 token each
  for (double s : r.migration_s.values()) EXPECT_GT(s, 0.0);
}

TEST(Chaos, InvariantsHoldAcrossRandomizedSchedules) {
  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const auto cfg = chaos_cfg(seed);
    const auto trace = chaos_trace(seed);
    FleetReport r;
    ASSERT_NO_THROW(r = FleetSimulator(cfg).run(trace))
        << "chaos seed " << seed << " violated an internal invariant";
    assert_invariants(cfg, r);
  }
}

TEST(Chaos, EveryFeatureExercisedSomewhereInTheSweep) {
  // The sweep is only a real chaos test if the random scenarios actually
  // hit the interesting machinery: failures detected by the monitor,
  // hedges issued, KV migrated, work retried.
  long long opens = 0, hedges = 0, migrations = 0, retries = 0, lost = 0;
  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    const auto r = FleetSimulator(chaos_cfg(seed)).run(chaos_trace(seed));
    opens += r.circuit_opens;
    hedges += r.hedges_issued;
    migrations += r.migrations;
    retries += r.retries;
    lost += r.lost;
  }
  EXPECT_GT(opens, 0);
  EXPECT_GT(hedges, 0);
  EXPECT_GT(migrations, 0);
  EXPECT_GT(retries, 0);
  EXPECT_GT(lost, 0);  // some seeds draw a zero retry budget
}

TEST(Chaos, DeterministicUnderChaos) {
  // Same seed, same schedule, same trace: bit-identical reports even with
  // every resilience feature active.
  for (std::uint64_t seed : {3ull, 17ull, 42ull}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const auto cfg = chaos_cfg(seed);
    const auto trace = chaos_trace(seed);
    const auto a = FleetSimulator(cfg).run(trace);
    const auto b = FleetSimulator(cfg).run(trace);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.hedges_issued, b.hedges_issued);
    EXPECT_EQ(a.circuit_opens, b.circuit_opens);
    EXPECT_EQ(a.migrations, b.migrations);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
      EXPECT_EQ(a.requests[i].status, b.requests[i].status);
      EXPECT_DOUBLE_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    }
    ASSERT_EQ(a.circuit_events.size(), b.circuit_events.size());
    for (std::size_t i = 0; i < a.circuit_events.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.circuit_events[i].t_s, b.circuit_events[i].t_s);
      EXPECT_EQ(a.circuit_events[i].replica, b.circuit_events[i].replica);
    }
  }
}

}  // namespace
}  // namespace mib::fleet
