#include "fleet/faults.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

TEST(FaultSchedule, UpAndTransitions) {
  FaultSchedule sched({FaultWindow{0, 1.0, 2.0}, FaultWindow{1, 0.5, 3.0}});
  EXPECT_TRUE(sched.up(0, 0.5));
  EXPECT_FALSE(sched.up(0, 1.0));   // start inclusive
  EXPECT_FALSE(sched.up(0, 1.99));
  EXPECT_TRUE(sched.up(0, 2.0));    // end exclusive
  EXPECT_FALSE(sched.up(1, 2.5));
  EXPECT_TRUE(sched.up(2, 1.5));    // no window -> always up

  EXPECT_DOUBLE_EQ(sched.next_transition_after(0.0), 0.5);
  EXPECT_DOUBLE_EQ(sched.next_transition_after(0.5), 1.0);
  EXPECT_DOUBLE_EQ(sched.next_transition_after(2.5), 3.0);
  EXPECT_TRUE(std::isinf(sched.next_transition_after(3.0)));
}

TEST(FaultWindowTest, Validation) {
  EXPECT_NO_THROW((FaultWindow{0, 0.0, 1.0}.validate()));
  EXPECT_THROW((FaultWindow{-1, 0.0, 1.0}.validate()), Error);
  EXPECT_THROW((FaultWindow{0, 1.0, 1.0}.validate()), Error);
}

TEST(RetryPolicyTest, ExponentialBackoff) {
  RetryPolicy p;
  p.backoff_s = 0.05;
  p.multiplier = 2.0;
  EXPECT_DOUBLE_EQ(p.delay(1), 0.05);
  EXPECT_DOUBLE_EQ(p.delay(2), 0.10);
  EXPECT_DOUBLE_EQ(p.delay(3), 0.20);
}

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, 256, 64));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = 21;
  stamp_arrivals(ac, trace);
  return trace;
}

TEST(FaultInjection, KilledReplicaWorkCompletesViaRetryNoneLost) {
  auto cfg = base_cfg(2);
  // Replica 0 fails shortly into the run with work queued and running,
  // and stays down long enough that its work must be re-routed.
  cfg.faults.push_back(FaultWindow{0, 0.05, 10.0});
  const auto r = FleetSimulator(cfg).run(uniform_trace(48, 400.0));
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_EQ(r.lost, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.expired, 0);
  EXPECT_GT(r.retries, 0);  // evacuations actually happened
  int retried = 0;
  for (const auto& rec : r.requests) {
    EXPECT_EQ(rec.status, RequestStatus::kCompleted);
    if (rec.retries > 0) {
      ++retried;
      EXPECT_EQ(rec.replica, 1);  // survivor served the evacuated work
    }
  }
  EXPECT_GT(retried, 0);
}

TEST(FaultInjection, ZeroRetryBudgetReportsEvacuatedWorkLost) {
  auto cfg = base_cfg(2);
  cfg.retry.max_retries = 0;
  cfg.faults.push_back(FaultWindow{0, 0.05, 10.0});
  const auto r = FleetSimulator(cfg).run(uniform_trace(48, 400.0));
  EXPECT_GT(r.lost, 0);
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  for (const auto& rec : r.requests) {
    if (rec.status == RequestStatus::kLost) {
      EXPECT_LT(rec.finish_s, 0.0);  // never finished
    }
  }
}

TEST(FaultInjection, WholeFleetDarkParksArrivalsUntilRecovery) {
  auto cfg = base_cfg(1);
  cfg.faults.push_back(FaultWindow{0, 0.0, 0.5});
  const auto r = FleetSimulator(cfg).run(uniform_trace(16, 200.0));
  EXPECT_EQ(r.completed, 16);
  EXPECT_EQ(r.lost, 0);
  for (const auto& rec : r.requests) {
    // Nothing can start before the only replica recovers.
    EXPECT_GE(rec.first_token_s, 0.5);
  }
}

TEST(FaultInjection, CapacityDropsUnderFailureWindow) {
  // A sustained load two replicas can hold but one cannot must score lower
  // attainment when one of the two is down for the whole run.
  const auto trace = uniform_trace(512, 150.0);
  const auto healthy = FleetSimulator(base_cfg(2)).run(trace);
  auto cfg = base_cfg(2);
  cfg.faults.push_back(FaultWindow{0, 0.05, 60.0});
  const auto faulty = FleetSimulator(cfg).run(trace);
  EXPECT_LT(faulty.slo.attainment, healthy.slo.attainment);
}

}  // namespace
}  // namespace mib::fleet
