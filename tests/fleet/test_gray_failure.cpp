// Gray failures: asymmetric (per-direction) partitions with orphaned
// completions, flapping cut/heal trains, majority-quorum self-fencing,
// jittered client backoff, drain-fabric severing — and the golden-value
// regression pinning every default-knob partition run to the PR 4 outputs
// bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fleet/control_plane.h"
#include "fleet/fleet.h"
#include "fleet/topology.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

PartitionWindow window(double start, double end, std::vector<int> routers,
                       std::vector<int> replicas) {
  PartitionWindow w;
  w.start_s = start;
  w.end_s = end;
  w.minority_routers = std::move(routers);
  w.minority_replicas = std::move(replicas);
  return w;
}

void assert_conservation(const FleetReport& r) {
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  long long per_replica = 0;
  for (const auto& rr : r.replicas) per_replica += rr.completed;
  EXPECT_EQ(per_replica, r.completed);
  EXPECT_LE(r.slo.attained, r.submitted);
}

// --- config validation ---

TEST(GrayFailure, ValidationRejectsBadKnobs) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.partition.enabled = true;
  cc.partition.windows = {window(0.5, 1.0, {1}, {})};
  EXPECT_NO_THROW(cc.validate());

  // Flap duty must lie in (0, 1] when a period is set.
  cc.partition.windows[0].flap_period_s = 0.1;
  cc.partition.windows[0].flap_duty = 0.0;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.windows[0].flap_duty = 1.5;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.windows[0].flap_period_s = -0.1;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.windows[0].flap_period_s = 0.1;
  cc.partition.windows[0].flap_duty = 0.5;
  EXPECT_NO_THROW(cc.validate());
  cc.partition.windows[0] = window(0.5, 1.0, {1}, {});

  cc.partition.quorum_grace_s = -0.01;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.quorum_grace_s = 0.05;
  cc.partition.retry_multiplier = 0.5;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.retry_multiplier = 2.0;
  cc.partition.retry_jitter = 1.5;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.retry_jitter = 0.5;
  cc.partition.max_client_retries = 0;
  EXPECT_THROW(cc.validate(), Error);
  cc.partition.max_client_retries = 3;
  EXPECT_NO_THROW(cc.validate());
}

TEST(GrayFailure, QuorumPolicyNames) {
  EXPECT_STREQ(quorum_policy_name(QuorumPolicy::kServeStale), "serve-stale");
  EXPECT_STREQ(quorum_policy_name(QuorumPolicy::kFenceAtCut), "fence-at-cut");
  EXPECT_STREQ(quorum_policy_name(QuorumPolicy::kFenceAfterGrace),
               "fence-after-grace");
}

// --- plane-side geometry: asymmetric links ---

TEST(GrayFailure, AsymmetricReachabilityIsPerDirection) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.partition.enabled = true;
  PartitionWindow w = window(1.0, 2.0, {1}, {2});
  w.open_to_minority = true;  // majority -> minority stays open
  cc.partition.windows = {w};
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 3);

  // Dispatch direction: the majority router can reach the minority
  // replica (the open direction) but the minority router still cannot
  // reach majority replicas.
  EXPECT_TRUE(plane.reachable(0, 2, 1.5));
  EXPECT_FALSE(plane.reachable(1, 0, 1.5));
  // Reply direction: a majority-dispatched copy on the minority replica
  // cannot answer (minority -> majority is cut)...
  EXPECT_FALSE(plane.reply_reachable(2, 0, 1.5));
  // ...while same-side streams and the clean-cut fallback always survive.
  EXPECT_TRUE(plane.reply_reachable(2, 1, 1.5));
  EXPECT_TRUE(plane.reply_reachable(0, 0, 1.5));
  EXPECT_TRUE(plane.reply_reachable(2, 0, 0.5));  // no window
  // Cancels ride majority -> minority, heartbeats minority -> majority.
  EXPECT_TRUE(plane.cancel_reachable(2, 1.5));
  EXPECT_FALSE(plane.heartbeat_crosses(2, 1.5));

  // The mirrored asymmetry: only minority -> majority open.
  cc.partition.windows[0].open_to_minority = false;
  cc.partition.windows[0].open_to_majority = true;
  const ControlPlane rev(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  EXPECT_FALSE(rev.reachable(0, 2, 1.5));
  EXPECT_TRUE(rev.reachable(1, 0, 1.5));
  EXPECT_TRUE(rev.reply_reachable(2, 0, 1.5));
  EXPECT_FALSE(rev.reply_reachable(0, 1, 1.5));
  EXPECT_FALSE(rev.cancel_reachable(2, 1.5));
  EXPECT_TRUE(rev.heartbeat_crosses(2, 1.5));

  // A clean cut (both flags off) keeps PR 4 semantics everywhere: replies
  // survive, cancels and heartbeats stop at the cut.
  cc.partition.windows[0].open_to_majority = false;
  const ControlPlane clean(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  EXPECT_TRUE(clean.reply_reachable(2, 0, 1.5));
  EXPECT_FALSE(clean.cancel_reachable(2, 1.5));
  EXPECT_FALSE(clean.heartbeat_crosses(2, 1.5));
}

TEST(GrayFailure, DrainReachabilityNeedsTheSeverKnob) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.partition.enabled = true;
  cc.partition.windows = {window(1.0, 2.0, {1}, {2})};
  const ControlPlane off(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  // Knob off: the drain fabric is assumed independent of the cut (PR 4).
  EXPECT_TRUE(off.drain_reachable(2, 1.5));

  cc.partition.sever_drain_fabric = true;
  const ControlPlane on(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  EXPECT_FALSE(on.drain_reachable(2, 1.5));  // minority source, full cut
  EXPECT_TRUE(on.drain_reachable(0, 1.5));   // majority source unaffected
  EXPECT_TRUE(on.drain_reachable(2, 0.5));   // outside the window

  // An open minority -> majority direction carries the KV out.
  cc.partition.windows[0].open_to_majority = true;
  const ControlPlane open(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  EXPECT_TRUE(open.drain_reachable(2, 1.5));
}

// --- plane-side geometry: flapping ---

TEST(GrayFailure, FlappingExpandsIntoDutyCycleEpisodes) {
  ControlPlaneConfig cc;
  cc.routers = 2;
  cc.partition.enabled = true;
  PartitionWindow w = window(1.0, 2.0, {1}, {2});
  w.flap_period_s = 0.4;
  w.flap_duty = 0.5;
  cc.partition.windows = {w};
  const ControlPlane plane(cc, RoutePolicy::kLeastOutstanding, 7, 3);

  // [1.0, 2.0) at period 0.4, duty 0.5: cut during [1.0,1.2), [1.4,1.6),
  // [1.8,2.0) — three episodes.
  EXPECT_EQ(plane.partition_cuts(), 3);
  EXPECT_NE(plane.partition_at(1.1), nullptr);
  EXPECT_EQ(plane.partition_at(1.3), nullptr);  // healed half of period 1
  EXPECT_NE(plane.partition_at(1.5), nullptr);
  EXPECT_EQ(plane.partition_at(1.7), nullptr);
  EXPECT_NE(plane.partition_at(1.9), nullptr);
  EXPECT_EQ(plane.partition_at(2.1), nullptr);
  // Distinct episodes are distinct windows (the heal-edge detector keys
  // on pointer identity).
  EXPECT_NE(plane.partition_at(1.1), plane.partition_at(1.5));
  // Every cut and heal edge drives the event loop.
  EXPECT_DOUBLE_EQ(plane.next_partition_transition_after(1.0), 1.2);
  EXPECT_DOUBLE_EQ(plane.next_partition_transition_after(1.2), 1.4);
  EXPECT_DOUBLE_EQ(plane.next_partition_transition_after(1.9), 2.0);
  EXPECT_TRUE(std::isinf(plane.next_partition_transition_after(2.0)));

  // duty == 1 or period == 0 degenerates to the single solid window.
  cc.partition.windows[0].flap_duty = 1.0;
  const ControlPlane solid(cc, RoutePolicy::kLeastOutstanding, 7, 3);
  EXPECT_EQ(solid.partition_cuts(), 1);
  EXPECT_NE(solid.partition_at(1.3), nullptr);
}

// --- plane-side geometry: quorum fencing ---

TEST(GrayFailure, QuorumFencingFollowsRouterMajority) {
  ControlPlaneConfig cc;
  cc.routers = 3;
  cc.partition.enabled = true;
  cc.partition.quorum = QuorumPolicy::kFenceAtCut;

  // 1 of 3 routers cut off: it lost quorum and fences from the cut.
  cc.partition.windows = {window(1.0, 2.0, {2}, {})};
  const ControlPlane one(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_TRUE(one.router_fenced(2, 1.5));
  EXPECT_FALSE(one.router_fenced(0, 1.5));  // the majority never fences
  EXPECT_FALSE(one.router_fenced(2, 0.5));  // no cut, no fence

  // 2 of 3 named minority: the named side holds the strict majority, so
  // neither side fences.
  cc.partition.windows = {window(1.0, 2.0, {1, 2}, {})};
  const ControlPlane two(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_FALSE(two.router_fenced(1, 1.5));
  EXPECT_FALSE(two.router_fenced(2, 1.5));
  EXPECT_FALSE(two.router_fenced(0, 1.5));

  // 1 of 2: a tie. Neither side has a strict majority; the cut-off side
  // fences (it cannot prove it still has quorum).
  cc.routers = 2;
  cc.partition.windows = {window(1.0, 2.0, {1}, {})};
  const ControlPlane tie(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_TRUE(tie.router_fenced(1, 1.5));
  EXPECT_FALSE(tie.router_fenced(0, 1.5));

  // Grace defers the fence edge; serve-stale never fences.
  cc.partition.quorum = QuorumPolicy::kFenceAfterGrace;
  cc.partition.quorum_grace_s = 0.3;
  const ControlPlane grace(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_FALSE(grace.router_fenced(1, 1.2));
  EXPECT_TRUE(grace.router_fenced(1, 1.3));
  // The lease expiry is an interior loop event.
  EXPECT_DOUBLE_EQ(grace.next_partition_transition_after(1.0), 1.3);
  cc.partition.quorum = QuorumPolicy::kServeStale;
  const ControlPlane stale(cc, RoutePolicy::kLeastOutstanding, 7, 2);
  EXPECT_FALSE(stale.router_fenced(1, 1.5));
}

// --- end to end: asymmetric cuts orphan completions ---

FleetConfig asymmetric_cfg() {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.max_client_retries = 4;
  PartitionWindow w = window(0.2, 1.2, {1}, {2});
  w.open_to_minority = true;  // dispatches land, replies are lost
  fc.control.partition.windows = {w};
  fc.retry.max_retries = 12;
  return fc;
}

TEST(GrayFailure, AsymmetricCutOrphansCompletions) {
  const auto r = FleetSimulator(asymmetric_cfg()).run(uniform_trace(120, 100.0));
  assert_conservation(r);
  // Majority-dispatched copies land on the minority replica (the open
  // direction) and finish there, but their completions cannot cross back:
  // orphaned work, paid for but never delivered.
  EXPECT_GT(r.orphaned_completions, 0);
  EXPECT_GT(r.lost_completion_s, 0.0);
  // The client's patience re-drives orphaned requests from scratch.
  EXPECT_GT(r.client_resends, 0);
  long long orphan_records = 0;
  for (const auto& rec : r.requests) {
    if (rec.orphaned) ++orphan_records;
  }
  EXPECT_GT(orphan_records, 0);
  EXPECT_LE(orphan_records, r.orphaned_completions);
  // Orphaned work is waste the fleet paid for; it must not be counted as
  // hedge or duplicate waste too (those have their own meters).
  EXPECT_GE(r.lost_completion_s, 0.0);
}

TEST(GrayFailure, AsymmetricOrphanAccountingIsDeterministic) {
  const auto a = FleetSimulator(asymmetric_cfg()).run(uniform_trace(120, 100.0));
  const auto b = FleetSimulator(asymmetric_cfg()).run(uniform_trace(120, 100.0));
  EXPECT_EQ(a.orphaned_completions, b.orphaned_completions);
  EXPECT_EQ(a.client_resends, b.client_resends);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.lost_completion_s, b.lost_completion_s);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

// --- end to end: flapping partitions ---

FleetConfig flapping_cfg(std::uint64_t seed = 9) {
  FleetConfig fc = base_cfg(3);
  fc.seed = seed;
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  PartitionWindow w = window(0.2, 1.2, {1}, {2});
  w.flap_period_s = 0.25;
  w.flap_duty = 0.6;
  fc.control.partition.windows = {w};
  fc.retry.max_retries = 12;
  return fc;
}

TEST(GrayFailure, FlappingPartitionHealsEveryEpisode) {
  const auto r = FleetSimulator(flapping_cfg()).run(uniform_trace(120, 100.0));
  assert_conservation(r);
  // Four cut episodes inside [0.2, 1.2) at period 0.25: each one that the
  // traffic outlives records its own heal edge.
  EXPECT_GE(r.partition_flaps, 2);
  EXPECT_GE(r.partition_heal_lag_s.count(), 2u);
  EXPECT_GT(r.double_dispatches, 0);
}

TEST(GrayFailure, FlappingHealStormIsDeterministicAcrossSeeds) {
  // The heal storm — duplicates issued and fenced at every flap edge —
  // must replay bit-for-bit per seed, for several seeds.
  for (std::uint64_t seed : {3ull, 9ull, 17ull}) {
    const auto a =
        FleetSimulator(flapping_cfg(seed)).run(uniform_trace(120, 100.0));
    const auto b =
        FleetSimulator(flapping_cfg(seed)).run(uniform_trace(120, 100.0));
    EXPECT_EQ(a.partition_flaps, b.partition_flaps) << "seed " << seed;
    EXPECT_EQ(a.double_dispatches, b.double_dispatches) << "seed " << seed;
    EXPECT_EQ(a.fenced_requests, b.fenced_requests) << "seed " << seed;
    EXPECT_EQ(a.completed, b.completed) << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s) << "seed " << seed;
    EXPECT_DOUBLE_EQ(a.duplicate_decode_s, b.duplicate_decode_s)
        << "seed " << seed;
    assert_conservation(a);
  }
}

// --- end to end: quorum self-fencing ---

FleetConfig quorum_cfg(QuorumPolicy q) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.quorum = q;
  fc.control.partition.quorum_grace_s = 0.05;
  fc.control.partition.windows = {window(0.2, 1.2, {1}, {2})};
  fc.retry.max_retries = 12;
  return fc;
}

TEST(GrayFailure, FenceAtCutRehomesInsteadOfDoubleDispatching) {
  const auto r = FleetSimulator(quorum_cfg(QuorumPolicy::kFenceAtCut))
                     .run(uniform_trace(120, 100.0));
  assert_conservation(r);
  // Every minority-homed dispatch during the cut is refused by its fenced
  // home and re-homed to the majority: no patience timer ever arms, so no
  // split brain and no duplicate decode waste.
  EXPECT_GT(r.quorum_fenced, 0);
  EXPECT_EQ(r.double_dispatches, 0);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.0);
  long long rehomed = 0;
  for (const auto& rec : r.requests) {
    if (rec.quorum_rehomed) ++rehomed;
  }
  EXPECT_EQ(rehomed, r.quorum_fenced);
}

TEST(GrayFailure, FenceAfterGraceSplitsTheDifference) {
  const auto stale = FleetSimulator(quorum_cfg(QuorumPolicy::kServeStale))
                         .run(uniform_trace(120, 100.0));
  const auto grace = FleetSimulator(quorum_cfg(QuorumPolicy::kFenceAfterGrace))
                         .run(uniform_trace(120, 100.0));
  const auto cut = FleetSimulator(quorum_cfg(QuorumPolicy::kFenceAtCut))
                       .run(uniform_trace(120, 100.0));
  assert_conservation(stale);
  assert_conservation(grace);
  assert_conservation(cut);
  // Serve-stale never fences (PR 4 behavior); the lease fences late.
  EXPECT_EQ(stale.quorum_fenced, 0);
  EXPECT_GT(grace.quorum_fenced, 0);
  // The grace window still serves (and possibly double-dispatches) before
  // the lease expires, so it fences no more than fence-at-cut does.
  EXPECT_LE(grace.quorum_fenced, cut.quorum_fenced);
  // Fencing eliminates waste monotonically with how early it engages.
  EXPECT_LE(cut.duplicate_decode_s, grace.duplicate_decode_s);
  EXPECT_LE(grace.duplicate_decode_s, stale.duplicate_decode_s);
}

TEST(GrayFailure, MajoritySideNeverFencesEndToEnd) {
  // 2 of 3 routers named minority: the named side IS the strict majority,
  // so the quorum rule fences nobody and serve-stale behavior prevails.
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 3;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.quorum = QuorumPolicy::kFenceAtCut;
  fc.control.partition.windows = {window(0.2, 1.2, {1, 2}, {2})};
  fc.retry.max_retries = 12;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_conservation(r);
  EXPECT_EQ(r.quorum_fenced, 0);
}

// --- end to end: jittered client backoff ---

TEST(GrayFailure, ClientBackoffIsDeterministicAndBounded) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.retry_multiplier = 2.0;
  fc.control.partition.retry_jitter = 0.5;
  fc.control.partition.max_client_retries = 3;
  fc.control.partition.windows = {window(0.2, 1.2, {1}, {2})};
  fc.retry.max_retries = 12;
  const auto a = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  const auto b = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_conservation(a);
  EXPECT_GT(a.double_dispatches, 0);
  // The jittered schedule is a pure hash of (seed, id, attempt): replays
  // are bit-identical.
  EXPECT_EQ(a.double_dispatches, b.double_dispatches);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.duplicate_decode_s, b.duplicate_decode_s);
  // Multiple patience attempts may re-send, but never more than one
  // un-started duplicate is in flight per request, so the per-request
  // record count still bounds the dup total.
  long long dup_records = 0;
  for (const auto& rec : a.requests) {
    if (rec.double_dispatched) ++dup_records;
  }
  EXPECT_LE(dup_records, a.double_dispatches);
}

// --- end to end: severed drain fabric ---

TEST(GrayFailure, SeveredDrainAbortsMidStripeAndRecomputes) {
  // The drain starts just before the cut: its KV transfers are in flight
  // when the partition severs the fabric at t=0.2 and must abort.
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.02;
  fc.control.partition.sever_drain_fabric = true;
  fc.control.partition.windows = {window(0.2, 1.0, {1}, {2})};
  fc.retry.max_retries = 12;
  fc.maintenance.push_back(MaintenanceWindow{2, 0.19, 0.8});
  fc.migration.migrate_kv = true;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_conservation(r);
  EXPECT_GT(r.migration_aborts, 0);
  // Aborted transfers fall back to evacuate-and-recompute.
  EXPECT_GT(r.drain_evacuations, 0);
}

TEST(GrayFailure, SeveredFabricBlocksNewDrains) {
  // The drain begins inside the cut: with the fabric severed the source
  // cannot ship at all, so every would-be migration recomputes instead.
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.02;
  fc.control.partition.sever_drain_fabric = true;
  fc.control.partition.windows = {window(0.2, 1.0, {1}, {2})};
  fc.retry.max_retries = 12;
  fc.maintenance.push_back(MaintenanceWindow{2, 0.4, 0.8});
  fc.migration.migrate_kv = true;
  const auto severed = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_conservation(severed);
  EXPECT_GT(severed.migration_aborts, 0);

  // Same scenario with the knob off: the fabric is independent of the cut
  // (PR 4) and at least some drains ship KV.
  fc.control.partition.sever_drain_fabric = false;
  const auto intact = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  assert_conservation(intact);
  EXPECT_EQ(intact.migration_aborts, 0);
  EXPECT_GT(intact.migrations, severed.migrations);
}

// --- satellite: hedge utilization gating ---

TEST(GrayFailure, HedgeGateSelfDisablesNearSaturation) {
  // Small batches + high arrival rate: the fleet is saturated for most of
  // the run, so a 50% utilization gate suppresses most hedges.
  FleetConfig fc = base_cfg(2);
  fc.replica.max_batch = 4;
  fc.hedge.enabled = true;
  fc.hedge.delay_s = 0.05;
  const auto open = FleetSimulator(fc).run(uniform_trace(120, 120.0));
  EXPECT_EQ(open.hedges_suppressed, 0);  // gate off by default
  EXPECT_GT(open.hedges_issued, 0);

  fc.hedge.max_utilization = 0.5;
  const auto gated = FleetSimulator(fc).run(uniform_trace(120, 120.0));
  assert_conservation(gated);
  EXPECT_GT(gated.hedges_suppressed, 0);
  EXPECT_LT(gated.hedges_issued, open.hedges_issued);

  fc.hedge.max_utilization = 0.0;
  EXPECT_THROW(fc.validate(), Error);
  fc.hedge.max_utilization = 1.5;
  EXPECT_THROW(fc.validate(), Error);
}

// --- satellite: down-time-dependent warm-up ---

TEST(GrayFailure, WarmupScalesWithDowntime) {
  WarmupConfig cfg;
  cfg.enabled = true;
  cfg.duration_s = 0.4;
  cfg.initial_scale = 0.5;
  cfg.ramp_steps = 2;
  cfg.downtime_ref_s = 1.0;
  // A 0.25 s blip pays a quarter of the ramp; a 2 s outage pays it all.
  const std::vector<FaultWindow> faults = {FaultWindow{0, 1.0, 1.25},
                                           FaultWindow{1, 1.0, 3.0}};
  const auto plan = plan_warmup(cfg, faults, {});
  EXPECT_EQ(plan.recoveries, 2);
  double blip_len = 0.0, full_len = 0.0;
  double blip_floor = 1.0, full_floor = 1.0;
  for (const auto& w : plan.windows) {
    const double len = w.end_s - w.start_s;
    if (w.replica == 0) {
      blip_len += len;
      blip_floor = std::min(blip_floor, w.scale.flops);
    } else {
      full_len += len;
      full_floor = std::min(full_floor, w.scale.flops);
    }
  }
  // Quarter the downtime reference: quarter the ramp, quarter the depth.
  EXPECT_NEAR(blip_len, 0.1, 1e-12);
  EXPECT_NEAR(full_len, 0.4, 1e-12);
  EXPECT_GT(blip_floor, full_floor);
  EXPECT_NEAR(full_floor, 0.5, 1e-12);
  EXPECT_NEAR(blip_floor, 1.0 - 0.5 * 0.25, 0.13);  // shallow staircase

  // Knob off: both recoveries pay the identical full ramp (PR 3 shape).
  cfg.downtime_ref_s = 0.0;
  const auto flat = plan_warmup(cfg, faults, {});
  EXPECT_EQ(flat.recoveries, 2);
  double len0 = 0.0, len1 = 0.0;
  for (const auto& w : flat.windows) {
    (w.replica == 0 ? len0 : len1) += w.end_s - w.start_s;
  }
  EXPECT_NEAR(len0, 0.4, 1e-12);
  EXPECT_NEAR(len1, 0.4, 1e-12);
}

// --- satellite: topology-aware autoscaler placement ---

TEST(GrayFailure, AutoscalerSpreadsAcrossFailureDomains) {
  // Pool of 4: replica 0 active in rack0; standbys 1 (rack0), 2 and 3
  // (rack1). Under queue pressure the first activation should land in
  // rack1 when spreading is on (fewest active replicas), but on the
  // first-fit slot 1 when it is off.
  auto make = [](bool aware) {
    FleetConfig fc;
    fc.engine.model = models::olmoe_1b_7b();
    fc.engine.cluster = hw::Cluster::h100_node(1);
    fc.n_replicas = 1;
    fc.seed = 9;
    fc.replica.max_batch = 4;
    fc.autoscaler.enabled = true;
    fc.autoscaler.max_replicas = 4;
    fc.autoscaler.interval_s = 0.05;
    fc.autoscaler.topology_aware = aware;
    fc.topology.domains = {DomainSpec{"rack0", ""}, DomainSpec{"rack1", ""},
                           DomainSpec{"n0", "rack0"}, DomainSpec{"n1", "rack0"},
                           DomainSpec{"n2", "rack1"}, DomainSpec{"n3", "rack1"}};
    fc.topology.replica_domain = {"n0", "n1", "n2", "n3"};
    return fc;
  };
  const auto spread = FleetSimulator(make(true)).run(uniform_trace(120, 120.0));
  const auto packed = FleetSimulator(make(false)).run(uniform_trace(120, 120.0));
  assert_conservation(spread);
  assert_conservation(packed);
  int first_spread = -1, first_packed = -1;
  for (const auto& e : spread.scale_events) {
    if (e.action == "add") {
      first_spread = e.replica;
      break;
    }
  }
  for (const auto& e : packed.scale_events) {
    if (e.action == "add") {
      first_packed = e.replica;
      break;
    }
  }
  ASSERT_GE(first_spread, 0);
  ASSERT_GE(first_packed, 0);
  EXPECT_GE(first_spread, 2);  // rack1, away from the active replica
  EXPECT_EQ(first_packed, 1);  // first-fit packs the same rack
}

// --- golden regression: default knobs are bitwise PR 4 ---
//
// The values below were captured from the PR 4 tree (commit d8cedab)
// before any gray-failure code existed. These configs exercise every
// partition code path of PR 4 — fencing, racing, router-only cuts with
// hedges and autoscaling, drains across a cut — with every gray-failure
// knob at its default. Any drift here means the new machinery leaks into
// the clean-cut model.

TEST(GrayFailureGolden, FenceMinorityBitwiseIdenticalToPR4) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.heal = HealPolicy::kFenceMinority;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.windows = {window(0.2, 1.2, {1}, {2})};
  fc.retry.max_retries = 12;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  EXPECT_EQ(r.completed, 120);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.lost, 0);
  EXPECT_EQ(r.expired, 0);
  EXPECT_EQ(r.rejected, 0);
  EXPECT_EQ(r.double_dispatches, 51);
  EXPECT_EQ(r.fenced_requests, 27);
  EXPECT_EQ(r.stale_dispatches, 29);
  EXPECT_EQ(r.router_stranded, 0);
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.491917985569611);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.83456074939267);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.57710849555566124);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 0.035069067326651146);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 80.433375802614421);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  EXPECT_DOUBLE_EQ(r.partition_heal_lag_s.max(), 0.0);
  // The gray-failure meters stay untouched at defaults.
  EXPECT_EQ(r.orphaned_completions, 0);
  EXPECT_DOUBLE_EQ(r.lost_completion_s, 0.0);
  EXPECT_EQ(r.client_resends, 0);
  EXPECT_EQ(r.quorum_fenced, 0);
  EXPECT_EQ(r.migration_aborts, 0);
  EXPECT_EQ(r.hedges_suppressed, 0);
}

TEST(GrayFailureGolden, FirstCommitWinsBitwiseIdenticalToPR4) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.heal = HealPolicy::kFirstCommitWins;
  fc.control.partition.client_retry_s = 0.01;
  fc.control.partition.windows = {window(0.2, 1.2, {1}, {2})};
  fc.retry.max_retries = 12;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  EXPECT_EQ(r.completed, 120);
  EXPECT_EQ(r.double_dispatches, 51);
  EXPECT_EQ(r.fenced_requests, 0);
  EXPECT_EQ(r.stale_dispatches, 29);
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.4840643243071427);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 1.1014346257438865);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.57455881065679315);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 0.02852621159531022);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 80.859028840292197);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  EXPECT_DOUBLE_EQ(r.partition_heal_lag_s.max(), 0.28107115787730552);
}

TEST(GrayFailureGolden, RouterOnlyPartitionBitwiseIdenticalToPR4) {
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.05;
  fc.control.partition.windows = {window(0.1, 0.9, {1}, {})};
  fc.retry.max_retries = 12;
  fc.replica.max_batch = 4;
  fc.health.enabled = true;
  fc.hedge.enabled = true;
  fc.hedge.delay_s = 0.15;
  fc.autoscaler.enabled = true;
  fc.autoscaler.max_replicas = 4;
  fc.autoscaler.interval_s = 0.1;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  EXPECT_EQ(r.completed, 120);
  EXPECT_EQ(r.double_dispatches, 43);
  EXPECT_EQ(r.fenced_requests, 0);
  EXPECT_EQ(r.stale_dispatches, 0);
  EXPECT_EQ(r.router_stranded, 0);
  EXPECT_EQ(r.hedges_issued, 105);
  EXPECT_EQ(r.autoscaler_conflicts, 2);
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.6762710838656916);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.88200159237376841);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.9574410143316483);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 1.3721407149984692);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 44.838507101705169);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  EXPECT_DOUBLE_EQ(r.partition_heal_lag_s.max(), 1.3274690923168273);
  EXPECT_EQ(r.hedges_suppressed, 0);
  EXPECT_EQ(r.client_resends, 0);
}

TEST(GrayFailureGolden, DrainAcrossCutBitwiseIdenticalToPR4) {
  FleetConfig fc = base_cfg(3);
  fc.control.routers = 2;
  fc.control.partition.enabled = true;
  fc.control.partition.client_retry_s = 0.02;
  fc.control.partition.windows = {window(0.2, 1.0, {1}, {2})};
  fc.retry.max_retries = 12;
  fc.maintenance.push_back(MaintenanceWindow{2, 0.4, 0.8});
  fc.migration.migrate_kv = true;
  fc.migration.overlap_decode = true;
  fc.migration.stripe_links = 2;
  const auto r = FleetSimulator(fc).run(uniform_trace(120, 100.0));
  EXPECT_EQ(r.completed, 120);
  EXPECT_EQ(r.double_dispatches, 33);
  EXPECT_EQ(r.fenced_requests, 32);
  EXPECT_EQ(r.stale_dispatches, 4);
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.4640182252747729);
  EXPECT_DOUBLE_EQ(r.duplicate_decode_s, 0.24026833477530651);
  EXPECT_DOUBLE_EQ(r.e2e_s.mean(), 0.57472379233340432);
  EXPECT_DOUBLE_EQ(r.ttft_s.p99(), 0.30731229929189674);
  EXPECT_DOUBLE_EQ(r.slo.goodput_qps, 81.966192721048884);
  EXPECT_DOUBLE_EQ(r.slo.attainment, 1.0);
  ASSERT_EQ(r.partition_heal_lag_s.count(), 1u);
  EXPECT_DOUBLE_EQ(r.partition_heal_lag_s.max(), 0.0);
  EXPECT_EQ(r.migration_aborts, 0);
}

TEST(GrayFailure, MetersStayZeroWithoutGrayKnobs) {
  FleetConfig fc = base_cfg(2);
  fc.control.routers = 2;
  const auto r = FleetSimulator(fc).run(uniform_trace(60, 80.0));
  EXPECT_EQ(r.orphaned_completions, 0);
  EXPECT_DOUBLE_EQ(r.lost_completion_s, 0.0);
  EXPECT_EQ(r.client_resends, 0);
  EXPECT_EQ(r.quorum_fenced, 0);
  EXPECT_EQ(r.partition_flaps, 0);
  EXPECT_EQ(r.migration_aborts, 0);
  EXPECT_EQ(r.hedges_suppressed, 0);
  for (const auto& rec : r.requests) {
    EXPECT_FALSE(rec.orphaned);
    EXPECT_FALSE(rec.quorum_rehomed);
  }
}

}  // namespace
}  // namespace mib::fleet
