// Failure-domain topology, correlated fault/degradation expansion,
// post-recovery warm-up planning, and suspicion-burst detection — the PR 3
// correlated-failure layer, unit-level and end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "fleet/fleet.h"
#include "hw/cluster.h"
#include "models/zoo.h"
#include "workload/arrivals.h"

namespace mib::fleet {
namespace {

FleetConfig base_cfg(int replicas) {
  FleetConfig fc;
  fc.engine.model = models::olmoe_1b_7b();
  fc.engine.cluster = hw::Cluster::h100_node(1);
  fc.n_replicas = replicas;
  fc.seed = 9;
  return fc;
}

std::vector<FleetRequest> uniform_trace(int n, double qps, int in_tok = 256,
                                        int out_tok = 64,
                                        std::uint64_t seed = 21) {
  auto trace = as_fleet_trace(engine::make_uniform_batch(n, in_tok, out_tok));
  workload::ArrivalConfig ac;
  ac.rate_qps = qps;
  ac.seed = seed;
  stamp_arrivals(ac, trace);
  return trace;
}

/// node0..node{n-1} under rack0/rack1 (split at `split`), both racks under
/// one zone; replica i attaches to node i.
TopologyConfig two_rack_topology(int replicas, int split) {
  TopologyConfig tc;
  tc.domains.push_back(DomainSpec{"zone", ""});
  tc.domains.push_back(DomainSpec{"rack0", "zone"});
  tc.domains.push_back(DomainSpec{"rack1", "zone"});
  for (int i = 0; i < replicas; ++i) {
    const std::string node = "node" + std::to_string(i);
    tc.domains.push_back(DomainSpec{node, i < split ? "rack0" : "rack1"});
    tc.replica_domain.push_back(node);
  }
  return tc;
}

// --- domain-tree validation ---

TEST(Topology, ValidTreeAndMembership) {
  const Topology topo(two_rack_topology(4, 2), 4);
  EXPECT_TRUE(topo.has_domain("rack0"));
  EXPECT_FALSE(topo.has_domain("rack9"));
  EXPECT_EQ(topo.replicas_under("rack0"), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.replicas_under("rack1"), (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.replicas_under("zone"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(topo.replicas_under("node3"), (std::vector<int>{3}));
  EXPECT_EQ(topo.domain_of(0), "node0");
}

TEST(Topology, ValidationRejectsBadTrees) {
  // Duplicate domain name.
  TopologyConfig dup;
  dup.domains = {DomainSpec{"a", ""}, DomainSpec{"a", ""}};
  EXPECT_THROW(dup.validate(2), Error);
  // Unknown parent.
  TopologyConfig orphan;
  orphan.domains = {DomainSpec{"a", "ghost"}};
  EXPECT_THROW(orphan.validate(2), Error);
  // Self-parent and two-node cycle.
  TopologyConfig self;
  self.domains = {DomainSpec{"a", "a"}};
  EXPECT_THROW(self.validate(2), Error);
  TopologyConfig cycle;
  cycle.domains = {DomainSpec{"a", "b"}, DomainSpec{"b", "a"}};
  EXPECT_THROW(cycle.validate(2), Error);
  // Attachment to an unknown domain, and more attachments than the pool.
  TopologyConfig unknown;
  unknown.domains = {DomainSpec{"a", ""}};
  unknown.replica_domain = {"nope"};
  EXPECT_THROW(unknown.validate(2), Error);
  TopologyConfig overflow;
  overflow.domains = {DomainSpec{"a", ""}};
  overflow.replica_domain = {"a", "a", "a"};
  EXPECT_THROW(overflow.validate(2), Error);
  // Empty name.
  TopologyConfig anon;
  anon.domains = {DomainSpec{"", ""}};
  EXPECT_THROW(anon.validate(2), Error);
  // An empty attachment means an isolated node and is fine.
  TopologyConfig isolated;
  isolated.domains = {DomainSpec{"a", ""}};
  isolated.replica_domain = {"a", ""};
  EXPECT_NO_THROW(isolated.validate(2));
}

TEST(Topology, FleetConfigValidateCoversDomainEvents) {
  auto fc = base_cfg(3);
  fc.domain_faults.push_back(DomainFault{"rack0", 1.0, 2.0});
  // Domain events without a topology are rejected.
  EXPECT_THROW(fc.validate(), Error);
  fc.topology = two_rack_topology(3, 2);
  EXPECT_NO_THROW(fc.validate());
  // Negative-duration domain event.
  fc.domain_faults.push_back(DomainFault{"rack1", 2.0, 2.0});
  EXPECT_THROW(fc.validate(), Error);
}

// --- expansion ---

TEST(Topology, FaultExpansionUnionsOverlappingWindows) {
  const Topology topo(two_rack_topology(3, 2), 3);
  // Rack event [1, 2) over replicas {0, 1}; explicit window on replica 0
  // overlapping it, plus a disjoint one on replica 2.
  std::vector<FaultWindow> base = {FaultWindow{0, 1.5, 3.0},
                                   FaultWindow{2, 5.0, 6.0}};
  auto out = expand_domain_faults(topo, {DomainFault{"rack0", 1.0, 2.0}},
                                  std::move(base));
  std::sort(out.begin(), out.end(), [](const FaultWindow& a, const FaultWindow& b) {
    return std::tie(a.replica, a.start_s) < std::tie(b.replica, b.start_s);
  });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].replica, 0);  // union of [1,2) and [1.5,3)
  EXPECT_DOUBLE_EQ(out[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(out[0].end_s, 3.0);
  EXPECT_EQ(out[1].replica, 1);
  EXPECT_DOUBLE_EQ(out[1].start_s, 1.0);
  EXPECT_DOUBLE_EQ(out[1].end_s, 2.0);
  EXPECT_EQ(out[2].replica, 2);
  // The merged schedule is disjoint per replica by construction.
  EXPECT_NO_THROW(ensure_disjoint_windows(out));
}

TEST(Topology, FaultExpansionRejectsEmptyDomains) {
  const Topology topo(two_rack_topology(2, 2), 2);
  // rack1 exists but nothing attaches under it with only 2 replicas.
  EXPECT_THROW(
      expand_domain_faults(topo, {DomainFault{"rack1", 1.0, 2.0}}, {}),
      Error);
}

TEST(Topology, DegradationExpansionAppliesToEveryReplicaUnderTheDomain) {
  const Topology topo(two_rack_topology(4, 2), 4);
  DomainDegradation ev;
  ev.domain = "rack1";
  ev.start_s = 1.0;
  ev.end_s = 2.0;
  ev.scale = PerfScale{1.0, 1.0, 0.25};  // a contended ToR switch
  const auto out = expand_domain_degradations(topo, {ev}, {});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].replica, 2);
  EXPECT_EQ(out[1].replica, 3);
  EXPECT_DOUBLE_EQ(out[0].scale.link_bw, 0.25);
}

TEST(Topology, DegradationExpansionRejectsCollisions) {
  const Topology topo(two_rack_topology(2, 2), 2);
  DomainDegradation ev;
  ev.domain = "rack0";
  ev.start_s = 1.0;
  ev.end_s = 2.0;
  ev.scale = PerfScale{0.5, 1.0, 1.0};
  // Explicit window on replica 0 overlapping the expanded rack event.
  std::vector<DegradationWindow> base = {
      DegradationWindow{0, 1.5, 2.5, PerfScale{0.9, 1.0, 1.0}}};
  EXPECT_THROW(expand_domain_degradations(topo, {ev}, std::move(base)), Error);
}

// --- PerfScale composition and the scale pool ---

TEST(Degradation, ComposeMultipliesPerDimension) {
  const PerfScale a{0.5, 0.8, 1.0};
  const PerfScale b{0.5, 1.0, 0.4};
  const PerfScale c = compose(a, b);
  EXPECT_DOUBLE_EQ(c.flops, 0.25);
  EXPECT_DOUBLE_EQ(c.mem_bw, 0.8);
  EXPECT_DOUBLE_EQ(c.link_bw, 0.4);
  // Identity composition is bitwise-neutral.
  const PerfScale id = compose(a, PerfScale{});
  EXPECT_TRUE(id == a);
}

TEST(Degradation, ScalesForIncludesOverlapProducts) {
  const DegradationWindow brown{0, 1.0, 3.0, PerfScale{0.5, 0.5, 1.0}};
  const DegradationWindow ramp_hit{0, 2.0, 2.5, PerfScale{0.6, 0.6, 1.0}};
  const DegradationWindow ramp_miss{1, 2.0, 2.5, PerfScale{0.6, 0.6, 1.0}};
  const auto scales = scales_for({brown}, {ramp_hit, ramp_miss});
  // Distinct scales of both sets plus the same-replica overlap product.
  const PerfScale product = compose(brown.scale, ramp_hit.scale);
  EXPECT_EQ(scales.size(), 3u);
  EXPECT_NE(std::find(scales.begin(), scales.end(), product), scales.end());
}

// --- warm-up planning ---

TEST(Warmup, StaircaseRampsFromInitialScaleToFull) {
  WarmupConfig wc;
  wc.enabled = true;
  wc.duration_s = 0.4;
  wc.initial_scale = 0.5;
  wc.ramp_steps = 4;
  const auto plan =
      plan_warmup(wc, {FaultWindow{0, 1.0, 2.0}}, {});
  EXPECT_EQ(plan.recoveries, 1);
  ASSERT_EQ(plan.windows.size(), 4u);
  EXPECT_DOUBLE_EQ(plan.windows[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.windows[0].scale.flops, 0.5);
  EXPECT_DOUBLE_EQ(plan.windows[1].scale.flops, 0.625);
  EXPECT_DOUBLE_EQ(plan.windows[3].scale.flops, 0.875);
  EXPECT_DOUBLE_EQ(plan.windows[3].end_s, 2.4);
  // Link bandwidth is untouched by a cold cache.
  for (const auto& w : plan.windows) EXPECT_DOUBLE_EQ(w.scale.link_bw, 1.0);
}

TEST(Warmup, StaircaseClipsAtTheNextDownEdge) {
  WarmupConfig wc;
  wc.enabled = true;
  wc.duration_s = 1.0;
  wc.initial_scale = 0.5;
  wc.ramp_steps = 4;
  // Recovery at t=2, next outage at t=2.3 — only the first two steps fit
  // (and the second is truncated).
  const auto plan = plan_warmup(
      wc, {FaultWindow{0, 1.0, 2.0}, FaultWindow{0, 2.3, 3.0}}, {});
  EXPECT_EQ(plan.recoveries, 2);  // the second outage also recovers
  double max_end = 0.0;
  for (const auto& w : plan.windows) {
    if (w.start_s < 2.3) max_end = std::max(max_end, w.end_s);
  }
  EXPECT_LE(max_end, 2.3);
  // Windows for one replica never overlap: DegradationSchedule accepts it.
  EXPECT_NO_THROW(DegradationSchedule(plan.windows));
}

TEST(Warmup, MaintenanceRecoveriesEarnARampToo) {
  WarmupConfig wc;
  wc.enabled = true;
  const auto plan = plan_warmup(wc, {}, {MaintenanceWindow{1, 1.0, 2.0}});
  EXPECT_EQ(plan.recoveries, 1);
  EXPECT_FALSE(plan.windows.empty());
  EXPECT_EQ(plan.windows[0].replica, 1);
}

TEST(Warmup, DisabledPlansNothing) {
  const auto plan = plan_warmup(WarmupConfig{}, {FaultWindow{0, 1.0, 2.0}}, {});
  EXPECT_EQ(plan.recoveries, 0);
  EXPECT_TRUE(plan.windows.empty());
}

// --- suspicion-burst detection ---

TEST(SuspicionBurst, GroupsNearSimultaneousOpens) {
  std::vector<CircuitEvent> ev;
  ev.push_back(CircuitEvent{1.00, 0, CircuitState::kOpen, false});
  ev.push_back(CircuitEvent{1.01, 1, CircuitState::kOpen, false});
  ev.push_back(CircuitEvent{1.015, 2, CircuitState::kOpen, false});
  ev.push_back(CircuitEvent{1.2, 0, CircuitState::kHalfOpen, false});  // noise
  ev.push_back(CircuitEvent{5.0, 1, CircuitState::kOpen, false});  // isolated
  const auto bursts = detect_suspicion_bursts(ev, 0.02);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].size, 3);
  EXPECT_DOUBLE_EQ(bursts[0].start_s, 1.00);
  EXPECT_DOUBLE_EQ(bursts[0].end_s, 1.015);
}

TEST(SuspicionBurst, RepeatOpensOfOneReplicaAreNotABurst) {
  std::vector<CircuitEvent> ev;
  ev.push_back(CircuitEvent{1.00, 0, CircuitState::kOpen, false});
  ev.push_back(CircuitEvent{1.01, 0, CircuitState::kOpen, false});
  EXPECT_TRUE(detect_suspicion_bursts(ev, 0.02).empty());
}

// --- end-to-end: correlated faults open a simultaneous burst ---

TEST(CorrelatedFaults, RackEventOpensASuspicionBurst) {
  auto fc = base_cfg(4);
  fc.topology = two_rack_topology(4, 2);
  fc.domain_faults.push_back(DomainFault{"rack0", 0.8, 1.6});
  fc.retry.max_retries = 12;
  const FleetSimulator sim(fc);
  // The expanded schedule covers both rack members.
  ASSERT_EQ(sim.expanded_faults().size(), 2u);
  const auto r = sim.run(uniform_trace(160, 120.0));
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  // Both breakers open within one heartbeat interval of each other.
  EXPECT_GE(r.suspicion_bursts, 1);
  EXPECT_GE(r.largest_suspicion_burst, 2);
}

TEST(CorrelatedFaults, CorrelatedBeatsIndependentOnGoodputGap) {
  // Equal total fault-seconds: one rack event of 2x0.8s vs two staggered
  // independent 0.8s outages. The correlated run loses both replicas at
  // once and should attain measurably less SLO goodput.
  const auto trace = uniform_trace(240, 140.0);
  auto correlated = base_cfg(4);
  correlated.topology = two_rack_topology(4, 2);
  correlated.domain_faults.push_back(DomainFault{"rack0", 0.8, 1.6});
  correlated.retry.max_retries = 12;
  correlated.slo.ttft_s = 0.35;  // tight enough that outages cost goodput
  auto independent = base_cfg(4);
  independent.faults.push_back(FaultWindow{0, 0.8, 1.6});
  independent.faults.push_back(FaultWindow{1, 2.4, 3.2});
  independent.retry.max_retries = 12;
  independent.slo.ttft_s = 0.35;
  const auto rc = FleetSimulator(correlated).run(trace);
  const auto ri = FleetSimulator(independent).run(trace);
  EXPECT_EQ(rc.completed + rc.rejected + rc.expired + rc.lost, rc.submitted);
  EXPECT_EQ(ri.completed + ri.rejected + ri.expired + ri.lost, ri.submitted);
  EXPECT_LT(rc.slo.attainment, ri.slo.attainment);
  // And only the correlated run shows the burst signature.
  EXPECT_GE(rc.largest_suspicion_burst, 2);
  EXPECT_LT(ri.largest_suspicion_burst, 2);
}

// --- end-to-end: warm-up windows self-clear and derate throughput ---

TEST(WarmupE2E, RecoveredReplicaRampsBackAndWindowsSelfClear) {
  auto fc = base_cfg(2);
  fc.faults.push_back(FaultWindow{0, 0.5, 1.0});
  fc.warmup.enabled = true;
  fc.warmup.duration_s = 0.5;
  fc.warmup.initial_scale = 0.4;
  fc.warmup.ramp_steps = 4;
  fc.retry.max_retries = 12;
  const FleetSimulator sim(fc);
  ASSERT_EQ(sim.warmup_windows().size(), 4u);
  const auto r = sim.run(uniform_trace(120, 90.0));
  EXPECT_EQ(r.completed + r.rejected + r.expired + r.lost, r.submitted);
  EXPECT_EQ(r.warmup_recoveries, 1);
  // The run outlives the ramp, so the fleet finished at full speed: no
  // work or KV is left anywhere (checked by run invariants), and the
  // recovered replica did serve work after its outage.
  EXPECT_GT(r.replicas[0].steps, 0);
}

TEST(WarmupE2E, WarmupSlowsTheFleetMeasurably) {
  const auto trace = uniform_trace(150, 110.0);
  auto cold = base_cfg(2);
  cold.faults.push_back(FaultWindow{0, 0.4, 0.9});
  cold.warmup.enabled = true;
  cold.warmup.duration_s = 1.0;
  cold.warmup.initial_scale = 0.25;
  cold.retry.max_retries = 12;
  auto instant = cold;
  instant.warmup.enabled = false;
  const auto rc = FleetSimulator(cold).run(trace);
  const auto ri = FleetSimulator(instant).run(trace);
  // Same outages, but the cold fleet pays extra time somewhere: mean
  // end-to-end latency can only get worse with the ramp on.
  EXPECT_GE(rc.e2e_s.mean(), ri.e2e_s.mean());
  EXPECT_EQ(rc.warmup_recoveries, 1);
  EXPECT_EQ(ri.warmup_recoveries, 0);
}

}  // namespace
}  // namespace mib::fleet
