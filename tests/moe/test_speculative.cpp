// Functional speculative decoding: the output must be IDENTICAL to plain
// target greedy decoding (the §6.3 correctness contract) while target
// forward passes drop by the acceptance rate.
#include <gtest/gtest.h>

#include "common/error.h"
#include "moe/transformer.h"

namespace mib::moe {
namespace {

TransformerConfig target_cfg() {
  TransformerConfig c;
  c.vocab = 48;
  c.n_layers = 3;
  c.hidden = 48;
  c.n_heads = 4;
  c.n_kv_heads = 4;
  c.head_dim = 12;
  c.n_experts = 4;
  c.top_k = 2;
  c.expert_ffn = 64;
  return c;
}

TransformerConfig draft_cfg() {
  auto c = target_cfg();
  c.n_layers = 1;
  c.expert_ffn = 32;
  return c;
}

TEST(SessionTruncate, RollsBackKv) {
  const Transformer model(target_cfg(), 1);
  auto s = model.new_session();
  model.forward({1, 2, 3, 4, 5}, s);
  EXPECT_EQ(s.position(), 5);
  s.truncate(3);
  EXPECT_EQ(s.position(), 3);
  // Continuing from position 3 must equal a fresh 3-token prefix.
  const Tensor cont = model.forward({9}, s);
  auto fresh = model.new_session();
  model.forward({1, 2, 3}, fresh);
  const Tensor ref = model.forward({9}, fresh);
  EXPECT_LT(max_abs_diff(cont, ref), 1e-5f);
  EXPECT_THROW(s.truncate(10), Error);
}

// The core property: speculative output == plain greedy output, for every
// draft depth and regardless of how good the draft is.
class LosslessSpec : public ::testing::TestWithParam<int> {};

TEST_P(LosslessSpec, OutputIdenticalToPlainDecoding) {
  const int k = GetParam();
  const Transformer target(target_cfg(), 7);
  const Transformer draft(draft_cfg(), 99);  // unrelated weights

  auto plain_session = target.new_session();
  const auto plain = target.generate({3, 1, 4, 1, 5}, 24, plain_session);

  SpeculativeStats stats;
  const auto spec =
      speculative_generate(target, draft, {3, 1, 4, 1, 5}, 24, k, &stats);
  EXPECT_EQ(spec, plain) << "k=" << k;
  EXPECT_EQ(stats.proposed > 0, true);
  EXPECT_GE(stats.accepted, 0);
  EXPECT_LE(stats.accepted, stats.proposed);
}

INSTANTIATE_TEST_SUITE_P(DraftDepths, LosslessSpec,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Speculative, SelfDraftAcceptsEverything) {
  // Draft == target: every proposal matches, acceptance is 100% and the
  // target runs ~max_new / (k+1) passes instead of max_new.
  const Transformer target(target_cfg(), 13);
  SpeculativeStats stats;
  const auto out =
      speculative_generate(target, target, {2, 7, 2}, 20, 4, &stats);
  auto s = target.new_session();
  EXPECT_EQ(out, target.generate({2, 7, 2}, 20, s));
  EXPECT_DOUBLE_EQ(stats.acceptance_rate(), 1.0);
  // Plain decoding would take 20 passes; full acceptance needs ~20/5 + 1.
  EXPECT_LE(stats.target_passes, 8);
}

TEST(Speculative, BadDraftStillCorrectJustSlow) {
  // A draft with a completely different seed mostly mismatches: acceptance
  // is low but the output stays exact (verified above); here we check the
  // pass count degrades gracefully toward one target pass per token.
  const Transformer target(target_cfg(), 17);
  const Transformer draft(draft_cfg(), 424242);
  SpeculativeStats stats;
  speculative_generate(target, draft, {1, 2, 3}, 16, 4, &stats);
  EXPECT_LE(stats.acceptance_rate(), 1.0);
  EXPECT_LE(stats.target_passes, 17);  // never worse than plain + prefill
}

TEST(Speculative, StatsConsistency) {
  const Transformer target(target_cfg(), 19);
  const Transformer draft(draft_cfg(), 21);
  SpeculativeStats stats;
  const auto out =
      speculative_generate(target, draft, {5, 6}, 12, 3, &stats);
  EXPECT_EQ(out.size(), 12u);
  EXPECT_GT(stats.target_passes, 1);
  EXPECT_EQ(stats.proposed % 1, 0);
}

TEST(Speculative, Validation) {
  const Transformer target(target_cfg(), 23);
  const Transformer draft(draft_cfg(), 25);
  EXPECT_THROW(speculative_generate(target, draft, {1}, 8, 0), Error);
  auto other = draft_cfg();
  other.vocab = 32;
  const Transformer wrong_vocab(other, 1);
  EXPECT_THROW(speculative_generate(target, wrong_vocab, {1}, 8, 2), Error);
}

}  // namespace
}  // namespace mib::moe
