#include "moe/attention.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mib::moe {
namespace {

AttentionConfig cfg(int hidden = 32, int heads = 4, int kv_heads = 4,
                    int head_dim = 8) {
  return AttentionConfig{hidden, heads, kv_heads, head_dim};
}

Tensor tokens(int n, int hidden, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn({static_cast<std::size_t>(n),
                        static_cast<std::size_t>(hidden)},
                       rng);
}

TEST(AttentionConfig, Validation) {
  cfg().validate();
  EXPECT_THROW(cfg(0).validate(), Error);
  EXPECT_THROW(cfg(32, 4, 3).validate(), Error);       // indivisible
  EXPECT_THROW(cfg(32, 4, 5).validate(), Error);       // kv > q
  EXPECT_THROW(cfg(32, 4, 4, 7).validate(), Error);    // odd head_dim
}

TEST(KvState, AppendAndRead) {
  KvState kv(cfg());
  EXPECT_EQ(kv.tokens(), 0);
  std::vector<float> k(32, 1.0f), v(32, 2.0f);
  kv.append(k, v);
  EXPECT_EQ(kv.tokens(), 1);
  EXPECT_EQ(kv.key(0)[0], 1.0f);
  EXPECT_EQ(kv.value(0)[0], 2.0f);
  EXPECT_THROW(kv.key(1), Error);
  kv.clear();
  EXPECT_EQ(kv.tokens(), 0);
}

TEST(KvState, RowSizeChecked) {
  KvState kv(cfg());
  std::vector<float> bad(16, 0.0f), good(32, 0.0f);
  EXPECT_THROW(kv.append(bad, good), Error);
}

TEST(Attention, OutputShape) {
  Rng rng(1);
  Attention attn(cfg(), rng);
  KvState kv(cfg());
  const Tensor y = attn.forward(tokens(5, 32), kv, 0);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 32u);
  EXPECT_EQ(kv.tokens(), 5);
}

TEST(Attention, IncrementalMatchesFullSequence) {
  // The KV-cache correctness property: decoding token-by-token must equal
  // processing the whole sequence at once.
  Rng rng(2);
  Attention attn(cfg(), rng);
  const Tensor x = tokens(6, 32, 9);

  KvState kv_full(cfg());
  const Tensor full = attn.forward(x, kv_full, 0);

  KvState kv_inc(cfg());
  for (std::size_t t = 0; t < 6; ++t) {
    Tensor one({1, 32});
    std::copy(x.row(t).begin(), x.row(t).end(), one.row(0).begin());
    const Tensor y = attn.forward(one, kv_inc, static_cast<int>(t));
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_NEAR(y.at(0, j), full.at(t, j), 1e-5f)
          << "t=" << t << " j=" << j;
    }
  }
}

TEST(Attention, CausalityPastUnaffectedByFuture) {
  Rng rng(3);
  Attention attn(cfg(), rng);
  Tensor a = tokens(4, 32, 11);
  Tensor b = a;
  // Change only the last token of b.
  for (auto& v : b.row(3)) v += 1.0f;

  KvState kva(cfg()), kvb(cfg());
  const Tensor ya = attn.forward(a, kva, 0);
  const Tensor yb = attn.forward(b, kvb, 0);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(ya.at(t, j), yb.at(t, j)) << "t=" << t;
    }
  }
  // The last output must differ.
  float diff = 0.0f;
  for (std::size_t j = 0; j < 32; ++j) {
    diff = std::max(diff, std::abs(ya.at(3, j) - yb.at(3, j)));
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(Attention, RopeEncodesPositionIntoCachedKeys) {
  // Identical token content at different positions must produce different
  // cached keys (RoPE is applied before caching) while the values — which
  // carry no positional encoding — stay identical.
  Rng rng(4);
  Attention attn(cfg(), rng);
  Tensor x = tokens(1, 32, 13);
  Tensor two({2, 32});
  std::copy(x.row(0).begin(), x.row(0).end(), two.row(0).begin());
  std::copy(x.row(0).begin(), x.row(0).end(), two.row(1).begin());

  KvState kv(cfg());
  attn.forward(two, kv, 0);
  float key_diff = 0.0f, value_diff = 0.0f, key_norm = 0.0f;
  for (std::size_t j = 0; j < kv.key(0).size(); ++j) {
    key_diff = std::max(key_diff, std::abs(kv.key(0)[j] - kv.key(1)[j]));
    value_diff =
        std::max(value_diff, std::abs(kv.value(0)[j] - kv.value(1)[j]));
    key_norm = std::max(key_norm, std::abs(kv.key(0)[j]));
  }
  EXPECT_GT(key_diff, 1e-4f * key_norm);
  EXPECT_EQ(value_diff, 0.0f);

  // And RoPE preserves per-pair norms (it is a rotation).
  for (int p : {0, 1}) {
    double norm = 0.0;
    for (float v : kv.key(p)) norm += static_cast<double>(v) * v;
    if (p == 0) key_norm = static_cast<float>(norm);
    if (p == 1) {
      EXPECT_NEAR(static_cast<float>(norm), key_norm, 1e-3f * key_norm);
    }
  }
}

TEST(Attention, GqaSharesKvHeads) {
  // 4 query heads over 2 kv heads still runs and matches MHA shape.
  Rng rng(5);
  const auto c = cfg(32, 4, 2, 8);
  Attention attn(c, rng);
  KvState kv(c);
  const Tensor y = attn.forward(tokens(3, 32), kv, 0);
  EXPECT_EQ(y.dim(1), 32u);
  EXPECT_EQ(kv.tokens(), 3);
}

TEST(Attention, StartPosMustMatchCache) {
  Rng rng(6);
  Attention attn(cfg(), rng);
  KvState kv(cfg());
  attn.forward(tokens(2, 32), kv, 0);
  EXPECT_THROW(attn.forward(tokens(1, 32), kv, 0), Error);
  attn.forward(tokens(1, 32), kv, 2);  // correct continuation
}

TEST(Attention, SingleTokenAttendsToItself) {
  // With one cached position the attention weights are exactly 1: output
  // equals Wo * V for that token, independent of the Q values' scale.
  Rng rng(7);
  Attention attn(cfg(), rng);
  const Tensor x = tokens(1, 32, 17);
  KvState kv1(cfg()), kv2(cfg());
  const Tensor y1 = attn.forward(x, kv1, 0);
  // Scale the query weights: softmax over a single position is invariant.
  Attention attn2 = attn;
  scale_inplace(attn2.mutable_wq(), 3.0f);
  const Tensor y2 = attn2.forward(x, kv2, 0);
  EXPECT_LT(max_abs_diff(y1, y2), 1e-5f);
}

TEST(RmsNorm, NormalizesRows) {
  RmsNorm norm(8);
  Tensor x = Tensor::full({2, 8}, 4.0f);
  norm.apply(x);
  for (float v : x.flat()) EXPECT_NEAR(v, 1.0f, 1e-4);
}

TEST(RmsNorm, WeightScales) {
  RmsNorm norm(4);
  for (auto& w : norm.weight()) w = 2.0f;
  Tensor x = Tensor::full({1, 4}, 1.0f);
  norm.apply(x);
  for (float v : x.flat()) EXPECT_NEAR(v, 2.0f, 1e-4);
}

TEST(RmsNorm, DimChecked) {
  RmsNorm norm(8);
  Tensor x({1, 4});
  EXPECT_THROW(norm.apply(x), Error);
  EXPECT_THROW(RmsNorm(0), Error);
}

}  // namespace
}  // namespace mib::moe
