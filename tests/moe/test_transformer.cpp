#include "moe/transformer.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "moe/pruning.h"

namespace mib::moe {
namespace {

TransformerConfig small_cfg() {
  TransformerConfig c;
  c.vocab = 64;
  c.n_layers = 2;
  c.hidden = 32;
  c.n_heads = 4;
  c.n_kv_heads = 4;
  c.head_dim = 8;
  c.n_experts = 4;
  c.top_k = 2;
  c.expert_ffn = 48;
  return c;
}

TEST(Transformer, ForwardShapesAndSessionAdvance) {
  const Transformer model(small_cfg(), 42);
  auto s = model.new_session();
  const Tensor logits = model.forward({1, 2, 3}, s);
  EXPECT_EQ(logits.dim(0), 3u);
  EXPECT_EQ(logits.dim(1), 64u);
  EXPECT_EQ(s.position(), 3);
  model.forward({4}, s);
  EXPECT_EQ(s.position(), 4);
}

TEST(Transformer, IncrementalDecodeMatchesFullRecompute) {
  // The system-level KV-cache property: prefill+decode token-by-token must
  // produce the same logits as recomputing the full prefix each time.
  const Transformer model(small_cfg(), 7);
  const std::vector<int> seq = {5, 9, 1, 33, 17, 2};

  auto inc = model.new_session();
  std::vector<Tensor> inc_logits;
  for (int tok : seq) {
    inc_logits.push_back(model.forward({tok}, inc));
  }

  auto full = model.new_session();
  const Tensor full_logits = model.forward(seq, full);

  for (std::size_t t = 0; t < seq.size(); ++t) {
    for (std::size_t vtok = 0; vtok < 64; ++vtok) {
      EXPECT_NEAR(inc_logits[t].at(0, vtok), full_logits.at(t, vtok), 1e-4f)
          << "t=" << t;
    }
  }
}

TEST(Transformer, GenerateIsDeterministic) {
  const Transformer a(small_cfg(), 11);
  const Transformer b(small_cfg(), 11);
  auto sa = a.new_session();
  auto sb = b.new_session();
  const auto ga = a.generate({1, 2, 3}, 12, sa);
  const auto gb = b.generate({1, 2, 3}, 12, sb);
  EXPECT_EQ(ga, gb);
  ASSERT_EQ(ga.size(), 12u);
  for (int t : ga) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 64);
  }
}

TEST(Transformer, DifferentSeedsDiffer) {
  const Transformer a(small_cfg(), 1);
  const Transformer b(small_cfg(), 2);
  auto sa = a.new_session();
  auto sb = b.new_session();
  EXPECT_NE(a.generate({1, 2, 3}, 8, sa), b.generate({1, 2, 3}, 8, sb));
}

TEST(Transformer, PromptChangesGeneration) {
  const Transformer model(small_cfg(), 13);
  auto s1 = model.new_session();
  auto s2 = model.new_session();
  const auto g1 = model.generate({1, 2, 3}, 8, s1);
  const auto g2 = model.generate({40, 50, 60}, 8, s2);
  EXPECT_NE(g1, g2);
}

TEST(Transformer, ActivationCountsMatchTokenFlow) {
  Transformer model(small_cfg(), 17);
  model.reset_activation_counts();
  auto s = model.new_session();
  model.forward({1, 2, 3, 4, 5}, s);
  const auto counts = model.activation_counts();
  ASSERT_EQ(counts.size(), 2u);  // two MoE layers
  for (const auto& layer : counts) {
    const auto total = std::accumulate(layer.begin(), layer.end(),
                                       std::uint64_t{0});
    EXPECT_EQ(total, 5u * 2u);  // tokens * top_k per layer
  }
}

TEST(Transformer, DenseVariantRuns) {
  auto c = small_cfg();
  c.n_experts = 0;
  c.top_k = 0;
  c.expert_ffn = 0;
  c.dense_ffn = 48;
  const Transformer model(c, 19);
  auto s = model.new_session();
  const Tensor logits = model.forward({1, 2}, s);
  EXPECT_EQ(logits.dim(1), 64u);
  EXPECT_TRUE(model.activation_counts().empty());
}

TEST(Transformer, SharedExpertsVariantRuns) {
  auto c = small_cfg();
  c.n_shared_experts = 1;
  c.shared_expert_ffn = 32;
  const Transformer model(c, 23);
  auto s = model.new_session();
  model.forward({1, 2, 3}, s);
  EXPECT_EQ(s.position(), 3);
}

TEST(Transformer, PrunedModelStillGenerates) {
  // End-to-end §6.2: prune every layer of a running model, keep decoding.
  Transformer model(small_cfg(), 29);
  auto warm = model.new_session();
  model.forward({1, 2, 3, 4, 5, 6, 7, 8}, warm);  // calibration counts
  for (int l = 0; l < 2; ++l) {
    inter_expert_prune(model.moe_layer(l), 0.5,
                       ExpertPruneCriterion::kLeastActivated);
  }
  EXPECT_EQ(model.moe_layer(0).n_experts(), 2);
  auto s = model.new_session();
  const auto out = model.generate({1, 2, 3}, 6, s);
  EXPECT_EQ(out.size(), 6u);
}

TEST(Transformer, QuantizedWeightsPerturbLogitsBoundedly) {
  Transformer model(small_cfg(), 31);
  auto s1 = model.new_session();
  const Tensor before = model.forward({1, 2, 3}, s1);
  for (int l = 0; l < 2; ++l) {
    auto& layer = model.moe_layer(l);
    for (int e = 0; e < layer.n_experts(); ++e) {
      layer.expert(e).quantize_weights(DType::kFP8E4M3,
                                       quant::Granularity::kPerRow);
    }
  }
  auto s2 = model.new_session();
  const Tensor after = model.forward({1, 2, 3}, s2);
  const float diff = max_abs_diff(before, after);
  EXPECT_GT(diff, 0.0f);
  EXPECT_LT(diff, 0.25f * frobenius_norm(before));
}

TEST(Transformer, InvalidInputsRejected) {
  const Transformer model(small_cfg(), 37);
  auto s = model.new_session();
  EXPECT_THROW(model.forward({}, s), Error);
  EXPECT_THROW(model.forward({64}, s), Error);   // out of vocab
  EXPECT_THROW(model.forward({-1}, s), Error);
  Session foreign;  // not created by this model
  EXPECT_THROW(model.forward({1}, foreign), Error);
}

TEST(Transformer, ParamCountConsistent) {
  const auto c = small_cfg();
  const Transformer model(c, 41);
  // embedding + head: 2 * 64*32; per layer: attention 4*32*32,
  // norms 2*32, moe router 4*32 + 4 experts * 3*32*48; final norm 32.
  const std::size_t expected =
      2u * 64 * 32 +
      2u * (4u * 32 * 32 + 2u * 32 + 4u * 32 + 4u * 3 * 32 * 48) + 32u;
  EXPECT_EQ(model.param_count(), expected);
}

TEST(GreedySample, ArgmaxWithTieBreak) {
  const std::vector<float> logits = {0.5f, 2.0f, 2.0f, -1.0f};
  EXPECT_EQ(greedy_sample(logits), 1);  // first max wins
  const std::vector<float> single = {3.0f};
  EXPECT_EQ(greedy_sample(single), 0);
}

}  // namespace
}  // namespace mib::moe
