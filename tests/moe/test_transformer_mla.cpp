// The functional transformer with MLA attention: the end-to-end version of
// the DeepSeek-V2 / VL2 architecture the engine's memory model prices.
#include <gtest/gtest.h>

#include "common/error.h"
#include "moe/transformer.h"

namespace mib::moe {
namespace {

TransformerConfig mla_cfg() {
  TransformerConfig c;
  c.vocab = 64;
  c.n_layers = 2;
  c.hidden = 32;
  c.n_heads = 4;
  c.head_dim = 8;
  c.use_mla = true;
  c.mla_kv_rank = 8;
  c.mla_rope_dim = 4;
  c.n_experts = 4;
  c.top_k = 2;
  c.expert_ffn = 48;
  return c;
}

TEST(TransformerMla, GeneratesDeterministically) {
  const Transformer a(mla_cfg(), 5);
  const Transformer b(mla_cfg(), 5);
  auto sa = a.new_session();
  auto sb = b.new_session();
  const auto ga = a.generate({1, 2, 3}, 10, sa);
  EXPECT_EQ(ga, b.generate({1, 2, 3}, 10, sb));
  EXPECT_EQ(ga.size(), 10u);
}

TEST(TransformerMla, IncrementalMatchesFull) {
  const Transformer model(mla_cfg(), 7);
  const std::vector<int> seq = {4, 8, 15, 16, 23, 42};

  auto inc = model.new_session();
  std::vector<float> inc_last;
  for (int tok : seq) {
    const Tensor l = model.forward({tok}, inc);
    inc_last.assign(l.row(0).begin(), l.row(0).end());
  }
  auto full = model.new_session();
  const Tensor l = model.forward(seq, full);
  for (std::size_t v = 0; v < 64; ++v) {
    EXPECT_NEAR(inc_last[v], l.at(seq.size() - 1, v), 1e-4f);
  }
}

TEST(TransformerMla, CacheSmallerThanMhaCounterpart) {
  // Same geometry with MHA: the functional latent cache must be smaller.
  auto mha_cfg = mla_cfg();
  mha_cfg.use_mla = false;
  mha_cfg.n_kv_heads = 4;
  const Transformer mla(mla_cfg(), 11);
  const Transformer mha(mha_cfg, 11);
  auto sm = mla.new_session();
  auto sh = mha.new_session();
  mla.forward({1, 2, 3, 4, 5, 6, 7, 8}, sm);
  mha.forward({1, 2, 3, 4, 5, 6, 7, 8}, sh);
  EXPECT_EQ(sm.position(), sh.position());
  // MLA: (8 + 4) floats/token/layer vs MHA: 2*4*8 = 64 floats.
  EXPECT_LT(sm.kv_bytes() * 4, sh.kv_bytes());
  EXPECT_EQ(sm.kv_bytes(), 8u * 12u * sizeof(float) * 2u);
}

TEST(TransformerMla, SessionsNotInterchangeable) {
  const Transformer mla(mla_cfg(), 13);
  auto c = mla_cfg();
  c.use_mla = false;
  const Transformer mha(c, 13);
  auto mha_session = mha.new_session();
  EXPECT_THROW(mla.forward({1}, mha_session), Error);
}

TEST(TransformerMla, RouterCountsStillAccumulate) {
  Transformer model(mla_cfg(), 17);
  auto s = model.new_session();
  model.forward({1, 2, 3, 4}, s);
  const auto counts = model.activation_counts();
  ASSERT_EQ(counts.size(), 2u);
  std::uint64_t total = 0;
  for (auto cnt : counts[0]) total += cnt;
  EXPECT_EQ(total, 4u * 2u);
}

TEST(TransformerMla, ConfigValidation) {
  auto c = mla_cfg();
  c.mla_kv_rank = 0;
  EXPECT_THROW(Transformer(c, 1), Error);
  c = mla_cfg();
  c.mla_rope_dim = 3;  // odd
  EXPECT_THROW(Transformer(c, 1), Error);
}

}  // namespace
}  // namespace mib::moe
