#include "moe/mla.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "moe/attention.h"

namespace mib::moe {
namespace {

MlaConfig cfg(int hidden = 32, int heads = 4, int head_dim = 8,
              int rank = 8, int rope = 4) {
  return MlaConfig{hidden, heads, head_dim, rank, rope};
}

Tensor tokens(int n, int hidden, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn({static_cast<std::size_t>(n),
                        static_cast<std::size_t>(hidden)},
                       rng);
}

TEST(MlaConfig, Validation) {
  cfg().validate();
  EXPECT_THROW(cfg(0).validate(), Error);
  EXPECT_THROW(cfg(32, 4, 8, 0).validate(), Error);       // no rank
  EXPECT_THROW(cfg(32, 4, 8, 8, 3).validate(), Error);    // odd rope
  EXPECT_EQ(cfg().cache_dim(), 12);
}

TEST(MlaKvState, AppendAndBytes) {
  MlaKvState kv(cfg());
  std::vector<float> row(12, 1.0f);
  kv.append(row);
  kv.append(row);
  EXPECT_EQ(kv.tokens(), 2);
  EXPECT_EQ(kv.bytes(), 2u * 12u * sizeof(float));
  EXPECT_THROW(kv.entry(2), Error);
  std::vector<float> bad(11, 0.0f);
  EXPECT_THROW(kv.append(bad), Error);
}

TEST(MlaAttention, OutputShape) {
  Rng rng(1);
  MlaAttention attn(cfg(), rng);
  MlaKvState kv(cfg());
  const Tensor y = attn.forward(tokens(5, 32), kv, 0);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 32u);
  EXPECT_EQ(kv.tokens(), 5);
}

TEST(MlaAttention, IncrementalMatchesFullSequence) {
  Rng rng(2);
  MlaAttention attn(cfg(), rng);
  const Tensor x = tokens(6, 32, 9);

  MlaKvState kv_full(cfg());
  const Tensor full = attn.forward(x, kv_full, 0);

  MlaKvState kv_inc(cfg());
  for (std::size_t t = 0; t < 6; ++t) {
    Tensor one({1, 32});
    std::copy(x.row(t).begin(), x.row(t).end(), one.row(0).begin());
    const Tensor y = attn.forward(one, kv_inc, static_cast<int>(t));
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_NEAR(y.at(0, j), full.at(t, j), 1e-5f) << "t=" << t;
    }
  }
}

TEST(MlaAttention, CausalityHolds) {
  Rng rng(3);
  MlaAttention attn(cfg(), rng);
  Tensor a = tokens(4, 32, 11);
  Tensor b = a;
  for (auto& v : b.row(3)) v += 1.0f;
  MlaKvState kva(cfg()), kvb(cfg());
  const Tensor ya = attn.forward(a, kva, 0);
  const Tensor yb = attn.forward(b, kvb, 0);
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(ya.at(t, j), yb.at(t, j));
    }
  }
}

TEST(MlaAttention, CacheSmallerThanMhaEquivalent) {
  // The whole point of MLA: cache_dim = rank + rope << 2 * heads * head_dim.
  const auto c = cfg(32, 4, 8, 8, 4);
  const int mha_dim = 2 * c.n_heads * c.head_dim;  // 64 floats/token
  EXPECT_LT(c.cache_dim(), mha_dim / 4);

  // And at DeepSeek-V2-Lite geometry: (512+64) vs 2*16*128 = 4096: 7.1x.
  const auto ds = cfg(2048, 16, 128, 512, 64);
  EXPECT_NEAR(static_cast<double>(2 * 16 * 128) / ds.cache_dim(), 7.1, 0.1);
}

TEST(MlaAttention, StartPosChecked) {
  Rng rng(4);
  MlaAttention attn(cfg(), rng);
  MlaKvState kv(cfg());
  attn.forward(tokens(2, 32), kv, 0);
  EXPECT_THROW(attn.forward(tokens(1, 32), kv, 0), Error);
  attn.forward(tokens(1, 32), kv, 2);
}

TEST(MlaAttention, PositionSensitivityViaRopeKey) {
  // The cached rope key (last rope_dim floats) of identical tokens at
  // different positions must differ; the latent must not.
  Rng rng(5);
  MlaAttention attn(cfg(), rng);
  const Tensor x = tokens(1, 32, 13);
  Tensor two({2, 32});
  std::copy(x.row(0).begin(), x.row(0).end(), two.row(0).begin());
  std::copy(x.row(0).begin(), x.row(0).end(), two.row(1).begin());
  MlaKvState kv(cfg());
  attn.forward(two, kv, 0);
  const auto e0 = kv.entry(0);
  const auto e1 = kv.entry(1);
  float lat_diff = 0.0f, rope_diff = 0.0f;
  for (int j = 0; j < 8; ++j) {
    lat_diff = std::max(lat_diff, std::abs(e0[j] - e1[j]));
  }
  for (int j = 8; j < 12; ++j) {
    rope_diff = std::max(rope_diff, std::abs(e0[j] - e1[j]));
  }
  EXPECT_EQ(lat_diff, 0.0f);   // latent is position-free
  EXPECT_GT(rope_diff, 1e-5f);  // rope key is rotated
}

TEST(MlaAttention, ParamCountFormula) {
  Rng rng(6);
  const auto c = cfg(32, 4, 8, 8, 4);
  MlaAttention attn(c, rng);
  const std::size_t expected =
      32u * 32 +          // wq_nope [4*8, 32]
      16u * 32 +          // wq_rope [4*4, 32]
      8u * 32 +           // w_dkv
      4u * 32 +           // w_kr
      32u * 8 + 32u * 8 + // w_uk, w_uv
      32u * 32;           // wo
  EXPECT_EQ(attn.param_count(), expected);
}

TEST(MlaAttention, DiffersFromStandardAttention) {
  // Sanity: MLA and MHA are different functions even at matched dims.
  Rng rng1(7), rng2(7);
  MlaAttention mla(cfg(), rng1);
  Attention mha(AttentionConfig{32, 4, 4, 8}, rng2);
  const Tensor x = tokens(3, 32, 17);
  MlaKvState mkv(cfg());
  KvState kv(AttentionConfig{32, 4, 4, 8});
  const Tensor ym = mla.forward(x, mkv, 0);
  const Tensor ya = mha.forward(x, kv, 0);
  EXPECT_GT(max_abs_diff(ym, ya), 1e-3f);
}

}  // namespace
}  // namespace mib::moe
