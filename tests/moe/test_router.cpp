#include "moe/router.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.h"

namespace mib::moe {
namespace {

RouterConfig cfg(int hidden = 32, int experts = 8, int k = 2) {
  RouterConfig c;
  c.hidden = hidden;
  c.n_experts = experts;
  c.top_k = k;
  return c;
}

Tensor tokens(int n, int hidden, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn({static_cast<std::size_t>(n),
                        static_cast<std::size_t>(hidden)},
                       rng);
}

TEST(Router, SelectsTopKDistinctExperts) {
  Rng rng(1);
  Router r(cfg(), rng);
  const auto routes = r.route(tokens(16, 32));
  ASSERT_EQ(routes.size(), 16u);
  for (const auto& tr : routes) {
    EXPECT_EQ(tr.experts.size(), 2u);
    EXPECT_EQ(tr.weights.size(), 2u);
    std::set<int> uniq(tr.experts.begin(), tr.experts.end());
    EXPECT_EQ(uniq.size(), 2u);
    for (int e : tr.experts) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, 8);
    }
  }
}

TEST(Router, WeightsSortedByScore) {
  Rng rng(2);
  Router r(cfg(32, 16, 4), rng);
  for (const auto& tr : r.route(tokens(8, 32))) {
    for (std::size_t j = 1; j < tr.weights.size(); ++j) {
      EXPECT_GE(tr.weights[j - 1], tr.weights[j]);
    }
  }
}

TEST(Router, RenormalizedWeightsSumToOne) {
  Rng rng(3);
  Router r(cfg(32, 8, 3), rng);  // default: softmax-then-topk, renormalize
  for (const auto& tr : r.route(tokens(32, 32))) {
    const float s =
        std::accumulate(tr.weights.begin(), tr.weights.end(), 0.0f);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(Router, UnnormalizedWeightsAreGlobalSoftmaxProbs) {
  auto c = cfg(32, 8, 3);
  c.renormalize = false;
  Rng rng(4);
  Router r(c, rng);
  for (const auto& tr : r.route(tokens(16, 32))) {
    float s = 0.0f;
    for (float w : tr.weights) {
      EXPECT_GT(w, 0.0f);
      EXPECT_LT(w, 1.0f);
      s += w;
    }
    EXPECT_LE(s, 1.0f + 1e-5);  // subset of a softmax
  }
}

TEST(Router, TopKThenSoftmaxSumsToOne) {
  auto c = cfg(32, 8, 2);
  c.order = ScoreOrder::kTopKThenSoftmax;
  Rng rng(5);
  Router r(c, rng);
  for (const auto& tr : r.route(tokens(16, 32))) {
    const float s =
        std::accumulate(tr.weights.begin(), tr.weights.end(), 0.0f);
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(Router, BothOrdersPickSameExperts) {
  // Selection depends only on logits; the order affects weights only.
  Rng rng1(6);
  Router a(cfg(32, 8, 2), rng1);
  auto c = cfg(32, 8, 2);
  c.order = ScoreOrder::kTopKThenSoftmax;
  Router b(c, Tensor(a.gate()));
  const auto x = tokens(16, 32, 11);
  const auto ra = a.route(x);
  const auto rb = b.route(x);
  for (std::size_t t = 0; t < ra.size(); ++t) {
    EXPECT_EQ(ra[t].experts, rb[t].experts);
  }
}

TEST(Router, ActivationCountsAccumulate) {
  Rng rng(7);
  Router r(cfg(32, 8, 2), rng);
  r.route(tokens(50, 32, 1));
  r.route(tokens(50, 32, 2));
  const auto& counts = r.activation_counts();
  const auto total = std::accumulate(counts.begin(), counts.end(),
                                     std::uint64_t{0});
  EXPECT_EQ(total, 200u);  // 100 tokens x top-2
  r.reset_counts();
  for (auto c : r.activation_counts()) EXPECT_EQ(c, 0u);
}

TEST(Router, DeterministicGivenSeed) {
  Rng rng1(9), rng2(9);
  Router a(cfg(), rng1);
  Router b(cfg(), rng2);
  const auto x = tokens(8, 32);
  const auto ra = a.route(x);
  const auto rb = b.route(x);
  for (std::size_t t = 0; t < ra.size(); ++t) {
    EXPECT_EQ(ra[t].experts, rb[t].experts);
    EXPECT_EQ(ra[t].weights, rb[t].weights);
  }
}

TEST(Router, PriorSkewsSelection) {
  Rng rng(13);
  Router r(cfg(32, 8, 1), rng);
  std::vector<float> prior(8, 0.0f);
  prior[3] = 100.0f;  // overwhelming preference
  r.set_logit_prior(prior);
  for (const auto& tr : r.route(tokens(64, 32))) {
    EXPECT_EQ(tr.experts[0], 3);
  }
}

TEST(Router, PriorSizeChecked) {
  Rng rng(14);
  Router r(cfg(), rng);
  EXPECT_THROW(r.set_logit_prior(std::vector<float>(5, 0.0f)), Error);
  r.set_logit_prior({});  // clearing is allowed
}

TEST(Router, DropExpertsShrinksGate) {
  Rng rng(15);
  Router r(cfg(32, 8, 4), rng);
  r.drop_experts({1, 5, 6});
  EXPECT_EQ(r.config().n_experts, 5);
  EXPECT_EQ(r.config().top_k, 4);
  const auto routes = r.route(tokens(32, 32));
  for (const auto& tr : routes) {
    for (int e : tr.experts) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, 5);
    }
  }
}

TEST(Router, DropExpertsClampsTopK) {
  Rng rng(16);
  Router r(cfg(32, 4, 3), rng);
  r.drop_experts({0, 1});
  EXPECT_EQ(r.config().n_experts, 2);
  EXPECT_EQ(r.config().top_k, 2);
}

TEST(Router, DropExpertsPreservesRemainingRows) {
  Rng rng(17);
  Router r(cfg(8, 4, 1), rng);
  const Tensor before = r.gate();
  r.drop_experts({1});
  const Tensor& after = r.gate();
  // Row 0 unchanged; old rows 2,3 become rows 1,2.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(after.at(0, j), before.at(0, j));
    EXPECT_EQ(after.at(1, j), before.at(2, j));
    EXPECT_EQ(after.at(2, j), before.at(3, j));
  }
}

TEST(Router, DropExpertsValidation) {
  Rng rng(18);
  Router r(cfg(32, 4, 1), rng);
  EXPECT_THROW(r.drop_experts({}), Error);
  EXPECT_THROW(r.drop_experts({2, 1}), Error);      // unsorted
  EXPECT_THROW(r.drop_experts({1, 1}), Error);      // duplicate
  EXPECT_THROW(r.drop_experts({4}), Error);         // out of range
  EXPECT_THROW(r.drop_experts({0, 1, 2, 3}), Error);  // would empty
}

TEST(Router, ConfigValidation) {
  Rng rng(19);
  EXPECT_THROW(Router(cfg(0, 8, 2), rng), Error);
  EXPECT_THROW(Router(cfg(32, 0, 1), rng), Error);
  EXPECT_THROW(Router(cfg(32, 4, 5), rng), Error);
}

TEST(Router, InputShapeChecked) {
  Rng rng(20);
  Router r(cfg(32, 8, 2), rng);
  EXPECT_THROW(r.route(tokens(4, 16)), Error);
}

TEST(Router, ExplicitGateShapeChecked) {
  Tensor bad({3, 32});
  EXPECT_THROW(Router(cfg(32, 8, 2), std::move(bad)), Error);
}

// With many tokens and a balanced router every expert should be hit.
TEST(Router, BalancedRouterCoversAllExperts) {
  Rng rng(21);
  Router r(cfg(32, 16, 2), rng);
  r.route(tokens(2000, 32));
  for (auto c : r.activation_counts()) EXPECT_GT(c, 0u);
}

}  // namespace
}  // namespace mib::moe
