#include "moe/moe_layer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::moe {
namespace {

MoELayerConfig cfg(int hidden = 32, int ffn = 64, int experts = 8, int k = 2,
                   int shared = 0, int shared_ffn = 0) {
  MoELayerConfig c;
  c.hidden = hidden;
  c.expert_ffn = ffn;
  c.n_experts = experts;
  c.top_k = k;
  c.n_shared_experts = shared;
  c.shared_expert_ffn = shared_ffn;
  return c;
}

Tensor tokens(int n, int hidden, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn({static_cast<std::size_t>(n),
                        static_cast<std::size_t>(hidden)},
                       rng);
}

TEST(MoELayer, FusedMatchesStaged) {
  Rng rng(1);
  MoELayer layer(cfg(), rng);
  const Tensor x = tokens(16, 32);
  const Tensor staged = layer.forward_staged(x);
  const Tensor fused = layer.forward_fused(x);
  EXPECT_LT(max_abs_diff(staged, fused), 1e-5f);
}

// Property sweep: fused == staged across layer geometries — the functional
// claim behind the paper's Fused MoE optimization (§7.2).
struct Geometry {
  int hidden, ffn, experts, top_k, shared;
};

class FusedEquivalence : public ::testing::TestWithParam<Geometry> {};

TEST_P(FusedEquivalence, OutputsMatch) {
  const auto g = GetParam();
  Rng rng(42);
  MoELayer layer(cfg(g.hidden, g.ffn, g.experts, g.top_k, g.shared,
                     g.shared ? g.ffn : 0),
                 rng);
  const Tensor x = tokens(24, g.hidden, 7);
  const Tensor staged = layer.forward_staged(x);
  const Tensor fused = layer.forward_fused(x);
  const float scale = std::max(1.0f, frobenius_norm(staged));
  EXPECT_LT(max_abs_diff(staged, fused) / scale, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FusedEquivalence,
    ::testing::Values(Geometry{16, 32, 4, 1, 0}, Geometry{16, 32, 4, 4, 0},
                      Geometry{32, 64, 8, 2, 0}, Geometry{32, 16, 16, 3, 0},
                      Geometry{24, 48, 6, 2, 1}, Geometry{32, 64, 8, 2, 2},
                      Geometry{8, 8, 2, 1, 0}, Geometry{64, 128, 4, 2, 0}),
    [](const ::testing::TestParamInfo<Geometry>& param_info) {
      const auto& g = param_info.param;
      std::string n = "h";
      n += std::to_string(g.hidden);
      n += "_f";
      n += std::to_string(g.ffn);
      n += "_e";
      n += std::to_string(g.experts);
      n += "_k";
      n += std::to_string(g.top_k);
      n += "_s";
      n += std::to_string(g.shared);
      return n;
    });

TEST(MoELayer, SingleThreadPoolMatchesShared) {
  Rng rng(2);
  MoELayer layer(cfg(), rng);
  const Tensor x = tokens(8, 32);
  ThreadPool single(1);
  const Tensor a = layer.forward_fused(x, &single);
  const Tensor b = layer.forward_fused(x);
  EXPECT_LT(max_abs_diff(a, b), 1e-6f);
}

TEST(MoELayer, SharedExpertsAlwaysContribute) {
  Rng rng(3);
  MoELayer with_shared(cfg(16, 32, 4, 1, 2, 32), rng);
  // Zero out all routed experts: output must still be nonzero thanks to
  // the shared experts.
  for (int e = 0; e < with_shared.n_experts(); ++e) {
    for (Tensor* w : {&with_shared.expert(e).mutable_w_gate(),
                      &with_shared.expert(e).mutable_w_up(),
                      &with_shared.expert(e).mutable_w_down()}) {
      for (float& v : w->flat()) v = 0.0f;
    }
  }
  const Tensor y = with_shared.forward_staged(tokens(4, 16));
  EXPECT_GT(frobenius_norm(y), 0.0f);
}

TEST(MoELayer, OutputDependsOnRouting) {
  Rng rng(4);
  MoELayer layer(cfg(16, 32, 8, 1), rng);
  const Tensor x = tokens(2, 16, 1);
  const Tensor y1 = layer.forward_staged(x);
  // Force all tokens to expert 0 via a prior; output must change.
  std::vector<float> prior(8, 0.0f);
  prior[0] = 1000.0f;
  layer.router().set_logit_prior(prior);
  const Tensor y2 = layer.forward_staged(x);
  EXPECT_GT(max_abs_diff(y1, y2), 1e-4f);
}

TEST(MoELayer, ParamCounts) {
  Rng rng(5);
  MoELayer layer(cfg(16, 32, 4, 2, 1, 8), rng);
  // router 4*16 + 4 experts * 3*16*32 + shared 3*16*8.
  EXPECT_EQ(layer.total_params(), 64u + 4u * 1536u + 384u);
  EXPECT_EQ(layer.active_params_per_token(), 64u + 2u * 1536u + 384u);
}

TEST(MoELayer, DropExpertsKeepsRunning) {
  Rng rng(6);
  MoELayer layer(cfg(16, 32, 8, 2), rng);
  layer.drop_experts({0, 4});
  EXPECT_EQ(layer.n_experts(), 6);
  EXPECT_EQ(layer.config().n_experts, 6);
  const Tensor y = layer.forward_fused(tokens(8, 16));
  EXPECT_EQ(y.dim(0), 8u);
}

TEST(MoELayer, DropExpertsRemovesTheRightOnes) {
  Rng rng(7);
  MoELayer layer(cfg(8, 16, 4, 1), rng);
  const float marker = layer.expert(3).w_gate().at(0, 0);
  layer.drop_experts({0, 1});
  EXPECT_EQ(layer.n_experts(), 2);
  // Old expert 3 is now expert 1.
  EXPECT_EQ(layer.expert(1).w_gate().at(0, 0), marker);
}

TEST(MoELayer, SyncFfnAfterManualShrink) {
  Rng rng(8);
  MoELayer layer(cfg(8, 16, 2, 1), rng);
  layer.expert(0).keep_channels({0, 1, 2, 3});
  EXPECT_THROW(layer.sync_ffn_from_experts(), Error);  // mismatch
  layer.expert(1).keep_channels({0, 1, 2, 3});
  layer.sync_ffn_from_experts();
  EXPECT_EQ(layer.config().expert_ffn, 4);
}

TEST(MoELayer, ConfigValidation) {
  Rng rng(9);
  EXPECT_THROW(MoELayer(cfg(0, 16, 2, 1), rng), Error);
  EXPECT_THROW(MoELayer(cfg(8, 16, 2, 3), rng), Error);
  auto c = cfg(8, 16, 2, 1, 1, 0);
  EXPECT_THROW(MoELayer(c, rng), Error);  // shared without dim
}

TEST(MoELayer, InputShapeChecked) {
  Rng rng(10);
  MoELayer layer(cfg(16, 32, 4, 1), rng);
  EXPECT_THROW(layer.forward_staged(tokens(4, 8)), Error);
  EXPECT_THROW(layer.forward_fused(tokens(4, 8)), Error);
}

TEST(MoELayer, ExpertAccessorBounds) {
  Rng rng(11);
  MoELayer layer(cfg(16, 32, 4, 1), rng);
  EXPECT_THROW(layer.expert(4), Error);
  EXPECT_THROW(layer.expert(-1), Error);
  EXPECT_THROW(layer.shared_expert(0), Error);
}

}  // namespace
}  // namespace mib::moe
