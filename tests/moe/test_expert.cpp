#include "moe/expert.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace mib::moe {
namespace {

TEST(Expert, HandComputedForward) {
  Rng rng(1);
  Expert e(2, 1, rng);
  // Overwrite weights with known values:
  // gate = [1, 0], up = [0, 2], down = [[3], [0]] (down is [hidden, ffn]).
  e.mutable_w_gate().at(0, 0) = 1.0f;
  e.mutable_w_gate().at(0, 1) = 0.0f;
  e.mutable_w_up().at(0, 0) = 0.0f;
  e.mutable_w_up().at(0, 1) = 2.0f;
  e.mutable_w_down().at(0, 0) = 3.0f;
  e.mutable_w_down().at(1, 0) = 0.0f;

  const std::vector<float> x = {1.0f, 1.0f};
  std::vector<float> y(2);
  e.forward(x, y);
  // gate·x = 1 -> silu(1) = 1/(1+e^-1); up·x = 2; act = 2*silu(1).
  const float silu1 = 1.0f / (1.0f + std::exp(-1.0f));
  EXPECT_NEAR(y[0], 3.0f * 2.0f * silu1, 1e-6);
  EXPECT_NEAR(y[1], 0.0f, 1e-6);
}

TEST(Expert, BatchMatchesPerToken) {
  Rng rng(2);
  Expert e(16, 32, rng);
  Rng xr(3);
  const Tensor x = Tensor::randn({4, 16}, xr);
  const Tensor batch = e.forward(x);
  std::vector<float> y(16);
  for (std::size_t t = 0; t < 4; ++t) {
    e.forward(x.row(t), y);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(batch.at(t, j), y[j], 1e-6);
    }
  }
}

TEST(Expert, ParamCount) {
  Rng rng(4);
  Expert e(8, 32, rng);
  EXPECT_EQ(e.param_count(), 3u * 8u * 32u);
}

TEST(Expert, KeepAllChannelsIsIdentity) {
  Rng rng(5);
  Expert e(8, 16, rng);
  Rng xr(6);
  const Tensor x = Tensor::randn({3, 8}, xr);
  const Tensor before = e.forward(x);
  std::vector<int> all(16);
  std::iota(all.begin(), all.end(), 0);
  e.keep_channels(all);
  const Tensor after = e.forward(x);
  EXPECT_LT(max_abs_diff(before, after), 1e-7f);
}

TEST(Expert, KeepChannelsShrinks) {
  Rng rng(7);
  Expert e(8, 16, rng);
  e.keep_channels({0, 3, 7, 11});
  EXPECT_EQ(e.ffn(), 4);
  EXPECT_EQ(e.w_gate().dim(0), 4u);
  EXPECT_EQ(e.w_down().dim(1), 4u);
  // Still runs.
  std::vector<float> x(8, 0.5f), y(8);
  e.forward(x, y);
}

TEST(Expert, KeepChannelsValidation) {
  Rng rng(8);
  Expert e(8, 16, rng);
  EXPECT_THROW(e.keep_channels({}), Error);
  EXPECT_THROW(e.keep_channels({3, 1}), Error);
  EXPECT_THROW(e.keep_channels({1, 1}), Error);
  EXPECT_THROW(e.keep_channels({16}), Error);
}

TEST(Expert, ChannelImportancePositive) {
  Rng rng(9);
  Expert e(16, 32, rng);
  const auto imp = e.channel_importance();
  ASSERT_EQ(imp.size(), 32u);
  for (float v : imp) EXPECT_GT(v, 0.0f);
}

TEST(Expert, ZeroedChannelHasZeroImportance) {
  Rng rng(10);
  Expert e(4, 8, rng);
  for (std::size_t j = 0; j < 4; ++j) {
    e.mutable_w_gate().at(2, j) = 0.0f;
    e.mutable_w_up().at(2, j) = 0.0f;
    e.mutable_w_down().at(j, 2) = 0.0f;
  }
  const auto imp = e.channel_importance();
  EXPECT_EQ(imp[2], 0.0f);
  EXPECT_GT(imp[0], 0.0f);
}

TEST(Expert, QuantizeWeightsPerturbsOutputSlightly) {
  Rng rng(11);
  Expert e(32, 64, rng);
  Rng xr(12);
  const Tensor x = Tensor::randn({4, 32}, xr);
  const Tensor before = e.forward(x);
  const auto err = e.quantize_weights(DType::kFP8E4M3,
                                      quant::Granularity::kPerRow);
  EXPECT_GT(err.rel_err, 0.0);
  EXPECT_LT(err.rel_err, 0.05);
  const Tensor after = e.forward(x);
  const float diff = max_abs_diff(before, after);
  EXPECT_GT(diff, 0.0f);
  // Output perturbation stays in the same order as the weight error.
  EXPECT_LT(diff, 0.3f * frobenius_norm(before));
}

TEST(Expert, Fp32QuantIsExact) {
  Rng rng(13);
  Expert e(8, 8, rng);
  const auto err = e.quantize_weights(DType::kFP32,
                                      quant::Granularity::kPerTensor);
  EXPECT_EQ(err.max_abs_err, 0.0);
}

TEST(Expert, ShapeValidation) {
  Rng rng(14);
  EXPECT_THROW(Expert(0, 4, rng), Error);
  Expert e(4, 4, rng);
  std::vector<float> bad(3), y(4);
  EXPECT_THROW(e.forward(bad, y), Error);
}

}  // namespace
}  // namespace mib::moe
