#include "moe/pruning.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::moe {
namespace {

MoELayerConfig cfg(int experts = 8, int ffn = 64) {
  MoELayerConfig c;
  c.hidden = 16;
  c.expert_ffn = ffn;
  c.n_experts = experts;
  c.top_k = 2;
  return c;
}

Tensor tokens(int n, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn({static_cast<std::size_t>(n), 16}, rng);
}

TEST(PruneMath, ExpertCounts) {
  // The paper: 12.5% inter-expert pruning removes 1/8 of the experts.
  EXPECT_EQ(pruned_expert_count(8, 0.125), 7);
  EXPECT_EQ(pruned_expert_count(8, 0.25), 6);
  EXPECT_EQ(pruned_expert_count(8, 0.5), 4);
  EXPECT_EQ(pruned_expert_count(64, 0.125), 56);
  EXPECT_EQ(pruned_expert_count(60, 0.5), 30);
  // Never drops to zero.
  EXPECT_EQ(pruned_expert_count(2, 0.9), 1);
}

TEST(PruneMath, FfnDims) {
  // 25% intra-expert pruning reduces the FFN dim by 1/4 (paper §6.2).
  EXPECT_EQ(pruned_ffn_dim(14336, 0.25), 10752);
  EXPECT_EQ(pruned_ffn_dim(1024, 0.5), 512);
  EXPECT_EQ(pruned_ffn_dim(1024, 0.125), 896);
  EXPECT_EQ(pruned_ffn_dim(4, 0.99), 1);
}

TEST(PruneMath, InvalidRatios) {
  EXPECT_THROW(pruned_expert_count(8, 0.0), Error);
  EXPECT_THROW(pruned_expert_count(8, 1.0), Error);
  EXPECT_THROW(pruned_ffn_dim(8, -0.1), Error);
}

TEST(InterExpertPrune, RemovesAndReports) {
  Rng rng(1);
  MoELayer layer(cfg(), rng);
  const auto r = inter_expert_prune(layer, 0.25,
                                    ExpertPruneCriterion::kHighestIndex);
  EXPECT_EQ(r.experts_before, 8);
  EXPECT_EQ(r.experts_after, 6);
  EXPECT_EQ(layer.n_experts(), 6);
  EXPECT_EQ(r.removed_experts.size(), 2u);
  // kHighestIndex scores high indices lowest -> removes 6 and 7.
  EXPECT_EQ(r.removed_experts[0], 6);
  EXPECT_EQ(r.removed_experts[1], 7);
}

TEST(InterExpertPrune, LeastActivatedCriterion) {
  Rng rng(2);
  MoELayer layer(cfg(4, 32), rng);
  // Bias routing hard toward experts 0 and 1, then prune half.
  std::vector<float> prior = {10.0f, 10.0f, -10.0f, -10.0f};
  layer.router().set_logit_prior(prior);
  layer.forward_fused(tokens(64));
  const auto r = inter_expert_prune(layer, 0.5,
                                    ExpertPruneCriterion::kLeastActivated);
  EXPECT_EQ(r.removed_experts, (std::vector<int>{2, 3}));
}

TEST(InterExpertPrune, SmallestNormCriterion) {
  Rng rng(3);
  MoELayer layer(cfg(4, 32), rng);
  // Zero expert 2's weights -> smallest norm.
  for (Tensor* w : {&layer.expert(2).mutable_w_gate(),
                    &layer.expert(2).mutable_w_up(),
                    &layer.expert(2).mutable_w_down()}) {
    for (float& v : w->flat()) v = 0.0f;
  }
  const auto r = inter_expert_prune(layer, 0.25,
                                    ExpertPruneCriterion::kSmallestNorm);
  EXPECT_EQ(r.removed_experts, (std::vector<int>{2}));
}

TEST(InterExpertPrune, LayerStillRunsAndRoutesInRange) {
  Rng rng(4);
  MoELayer layer(cfg(8, 32), rng);
  inter_expert_prune(layer, 0.5, ExpertPruneCriterion::kSmallestNorm);
  const Tensor y = layer.forward_staged(tokens(16));
  EXPECT_EQ(y.dim(0), 16u);
  for (auto c : layer.router().activation_counts()) {
    (void)c;  // counts valid by construction; routing asserted internally
  }
}

TEST(IntraExpertPrune, ShrinksEveryExpert) {
  Rng rng(5);
  MoELayer layer(cfg(4, 64), rng);
  const auto r = intra_expert_prune(layer, 0.5);
  EXPECT_EQ(r.ffn_before, 64);
  EXPECT_EQ(r.ffn_after, 32);
  EXPECT_EQ(layer.config().expert_ffn, 32);
  for (int e = 0; e < layer.n_experts(); ++e) {
    EXPECT_EQ(layer.expert(e).ffn(), 32);
  }
  const Tensor y = layer.forward_fused(tokens(8));
  EXPECT_EQ(y.dim(1), 16u);
}

TEST(IntraExpertPrune, KeepsImportantChannels) {
  Rng rng(6);
  auto c = cfg(1, 8);
  c.top_k = 1;
  MoELayer layer(c, rng);
  Expert& e = layer.expert(0);
  // Make channel 5 overwhelmingly important and channel 2 dead.
  for (std::size_t j = 0; j < 16; ++j) {
    e.mutable_w_gate().at(5, j) = 10.0f;
    e.mutable_w_up().at(5, j) = 10.0f;
    e.mutable_w_gate().at(2, j) = 0.0f;
    e.mutable_w_up().at(2, j) = 0.0f;
    e.mutable_w_down().at(j, 2) = 0.0f;
  }
  intra_expert_prune(layer, 0.5);
  // The surviving expert must still produce the dominant channel's signal:
  // importance of the boosted channel guaranteed it survived.
  const auto imp = layer.expert(0).channel_importance();
  float max_imp = 0.0f;
  for (float v : imp) max_imp = std::max(max_imp, v);
  EXPECT_GT(max_imp, 50.0f);  // boosted channel (||.|| ~ 80) survived
}

TEST(IntraExpertPrune, SmallPerturbationAtLowRatio) {
  // Magnitude pruning of 12.5% of channels changes outputs, but far less
  // than the output magnitude itself.
  Rng rng(7);
  MoELayer layer(cfg(4, 128), rng);
  const Tensor x = tokens(8);
  const Tensor before = layer.forward_staged(x);
  intra_expert_prune(layer, 0.125);
  const Tensor after = layer.forward_staged(x);
  EXPECT_GT(max_abs_diff(before, after), 0.0f);
  EXPECT_LT(max_abs_diff(before, after), frobenius_norm(before));
}

TEST(Pruning, ParamReductionMatchesRatio) {
  Rng rng(8);
  MoELayer a(cfg(8, 64), rng);
  const auto before = a.total_params();
  inter_expert_prune(a, 0.5, ExpertPruneCriterion::kHighestIndex);
  const auto after = a.total_params();
  // 4 of 8 experts removed: expert params halve (router row count too).
  EXPECT_LT(after, 0.55 * before);
  EXPECT_GT(after, 0.45 * before);
}

}  // namespace
}  // namespace mib::moe
