#include "moe/vision_encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "moe/transformer.h"

namespace mib::moe {
namespace {

VisionEncoderConfig cfg() {
  VisionEncoderConfig c;
  c.image_size = 16;
  c.patch_size = 8;
  c.channels = 3;
  c.hidden = 32;
  c.n_heads = 4;
  c.n_layers = 2;
  c.mlp_dim = 64;
  c.llm_hidden = 48;
  return c;
}

Tensor image(const VisionEncoderConfig& c, std::uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::randn(
      {static_cast<std::size_t>(c.channels * c.image_size * c.image_size)},
      rng);
}

TEST(VisionEncoder, OutputShape) {
  const auto c = cfg();
  VisionEncoder enc(c, 1);
  const Tensor tokens = enc.encode(image(c));
  EXPECT_EQ(tokens.dim(0), 4u);   // (16/8)^2 patches
  EXPECT_EQ(tokens.dim(1), 48u);  // llm hidden
}

TEST(VisionEncoder, DeterministicAndSeedSensitive) {
  const auto c = cfg();
  VisionEncoder a(c, 7), b(c, 7), d(c, 8);
  const Tensor img = image(c);
  EXPECT_EQ(max_abs_diff(a.encode(img), b.encode(img)), 0.0f);
  EXPECT_GT(max_abs_diff(a.encode(img), d.encode(img)), 1e-3f);
}

TEST(VisionEncoder, ContentSensitivityIsGlobal) {
  // Bidirectional attention: perturbing ONE patch changes EVERY output
  // token (unlike causal attention, where earlier tokens are immune).
  const auto c = cfg();
  VisionEncoder enc(c, 9);
  Tensor a = image(c, 4);
  Tensor b = a;
  // Perturb the last patch's pixels (bottom-right window of channel 0).
  for (std::size_t i = 0; i < 16; ++i) {
    b.at(b.size() - 1 - i) += 1.0f;
  }
  const Tensor ya = enc.encode(a);
  const Tensor yb = enc.encode(b);
  for (std::size_t t = 0; t < ya.dim(0); ++t) {
    float diff = 0.0f;
    for (std::size_t j = 0; j < ya.dim(1); ++j) {
      diff = std::max(diff, std::abs(ya.at(t, j) - yb.at(t, j)));
    }
    EXPECT_GT(diff, 1e-6f) << "patch " << t;
  }
}

TEST(VisionEncoder, PositionEmbeddingBreaksPatchSymmetry) {
  // A uniform image has identical patches; only the positional embedding
  // separates the output tokens.
  const auto c = cfg();
  VisionEncoder enc(c, 11);
  const Tensor img = Tensor::full(
      {static_cast<std::size_t>(c.channels * c.image_size * c.image_size)},
      0.5f);
  const Tensor y = enc.encode(img);
  float diff = 0.0f;
  for (std::size_t j = 0; j < y.dim(1); ++j) {
    diff = std::max(diff, std::abs(y.at(0, j) - y.at(1, j)));
  }
  EXPECT_GT(diff, 1e-5f);
}

TEST(VisionEncoder, ParamCountPositiveAndScales) {
  auto small = cfg();
  auto big = cfg();
  big.n_layers = 4;
  EXPECT_GT(VisionEncoder(big, 1).param_count(),
            VisionEncoder(small, 1).param_count());
}

TEST(VisionEncoder, InputValidation) {
  const auto c = cfg();
  VisionEncoder enc(c, 1);
  Tensor wrong({16});
  EXPECT_THROW(enc.encode(wrong), Error);
  auto bad = cfg();
  bad.patch_size = 5;  // 16 % 5 != 0
  EXPECT_THROW(VisionEncoder(bad, 1), Error);
}

TEST(VisionEncoder, EndToEndVlmPipeline) {
  // Pixels -> patch tokens -> prepend to a text prompt -> MoE LLM decode:
  // the full functional VLM pipeline.
  const auto vc = cfg();
  VisionEncoder enc(vc, 21);
  const Tensor vis_tokens = enc.encode(image(vc, 13));

  TransformerConfig tc;
  tc.vocab = 64;
  tc.n_layers = 2;
  tc.hidden = 48;  // matches the projector output
  tc.n_heads = 4;
  tc.n_kv_heads = 4;
  tc.head_dim = 12;
  tc.n_experts = 4;
  tc.top_k = 2;
  tc.expert_ffn = 64;
  const Transformer llm(tc, 23);

  // Drive the LLM with the image tokens via embeddings is not exposed; the
  // pipeline check here is that the vision tokens have the right shape and
  // finite values to serve as soft prompt embeddings.
  EXPECT_EQ(vis_tokens.dim(1), static_cast<std::size_t>(tc.hidden));
  for (float v : vis_tokens.flat()) EXPECT_TRUE(std::isfinite(v));

  // And the LLM itself decodes normally after.
  auto s = llm.new_session();
  EXPECT_EQ(llm.generate({1, 2, 3}, 4, s).size(), 4u);
}

}  // namespace
}  // namespace mib::moe
