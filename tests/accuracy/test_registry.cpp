#include "accuracy/registry.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::accuracy {
namespace {

TEST(Registry, TaskListsMatchPaper) {
  EXPECT_EQ(llm_tasks().size(), 8u);
  EXPECT_EQ(vlm_tasks().size(), 8u);
  // Spot checks of §8.1 / §8.2 task names.
  EXPECT_NE(std::find(llm_tasks().begin(), llm_tasks().end(), "mmlu"),
            llm_tasks().end());
  EXPECT_NE(std::find(llm_tasks().begin(), llm_tasks().end(), "hellaswag"),
            llm_tasks().end());
  EXPECT_NE(std::find(vlm_tasks().begin(), vlm_tasks().end(), "mme"),
            vlm_tasks().end());
  EXPECT_NE(std::find(vlm_tasks().begin(), vlm_tasks().end(), "docvqa"),
            vlm_tasks().end());
}

TEST(Registry, SixLlmsAndThreeVlmsTabulated) {
  EXPECT_EQ(models_with_llm_scores().size(), 6u);
  EXPECT_EQ(models_with_vlm_scores().size(), 3u);
}

TEST(Registry, ScoresInRange) {
  for (const auto& m : models_with_llm_scores()) {
    for (const auto& t : llm_tasks()) {
      const auto s = task_accuracy(m, t);
      ASSERT_TRUE(s.has_value()) << m << " " << t;
      EXPECT_GT(*s, 20.0) << m << " " << t;
      EXPECT_LT(*s, 100.0) << m << " " << t;
    }
  }
}

TEST(Registry, UnknownLookupsAreEmpty) {
  EXPECT_FALSE(task_accuracy("GPT-5", "mmlu").has_value());
  EXPECT_FALSE(task_accuracy("Mixtral-8x7B", "nonexistent").has_value());
}

TEST(Registry, AverageAccuracyOrderingMatchesPaper) {
  // §8.1: Qwen3-30B-A3B and Mixtral deliver the highest accuracies; OLMoE
  // trades accuracy for throughput.
  const double qwen3 = average_accuracy("Qwen3-30B-A3B", llm_tasks());
  const double mixtral = average_accuracy("Mixtral-8x7B", llm_tasks());
  const double olmoe = average_accuracy("OLMoE-1B-7B", llm_tasks());
  const double dsv2 = average_accuracy("DeepSeek-V2-Lite", llm_tasks());
  EXPECT_GT(qwen3, dsv2);
  EXPECT_GT(mixtral, olmoe);
  EXPECT_GT(qwen3, olmoe);
}

TEST(Registry, VlmAccuracyGrowsWithScale) {
  // §8.2: Tiny < Small < Base.
  const double tiny = average_accuracy("DeepSeek-VL2-Tiny", vlm_tasks());
  const double small = average_accuracy("DeepSeek-VL2-Small", vlm_tasks());
  const double base = average_accuracy("DeepSeek-VL2", vlm_tasks());
  EXPECT_LT(tiny, small);
  EXPECT_LT(small, base);
}

TEST(Registry, AverageRequiresCompleteRows) {
  EXPECT_THROW(average_accuracy("Mixtral-8x7B", vlm_tasks()), Error);
  EXPECT_THROW(average_accuracy("Mixtral-8x7B", {}), Error);
}

}  // namespace
}  // namespace mib::accuracy
