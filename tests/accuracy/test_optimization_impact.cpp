#include "accuracy/optimization_impact.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::accuracy {
namespace {

TEST(OptimizationImpact, HalfPrecisionIsFree) {
  EXPECT_DOUBLE_EQ(quantization_accuracy_delta(DType::kFP16), 0.0);
  EXPECT_DOUBLE_EQ(quantization_accuracy_delta(DType::kBF16), 0.0);
  EXPECT_DOUBLE_EQ(quantization_accuracy_delta(DType::kFP32), 0.0);
}

TEST(OptimizationImpact, QuantizationOrderingMatchesPrecision) {
  // Coarser formats cost more accuracy, in the same order as their
  // measured representational error (tests/quant).
  const double fp8 = quantization_accuracy_delta(DType::kFP8E4M3);
  const double e5m2 = quantization_accuracy_delta(DType::kFP8E5M2);
  const double int8 = quantization_accuracy_delta(DType::kINT8);
  const double int4 = quantization_accuracy_delta(DType::kINT4);
  EXPECT_LT(fp8, 0.0);
  EXPECT_LT(e5m2, fp8);   // fewer mantissa bits
  EXPECT_LT(int4, int8);
  EXPECT_LT(int4, e5m2);
  EXPECT_GT(int4, -5.0);  // int4 g128 stays usable
}

TEST(OptimizationImpact, PruningDeltasAreZeroAtZero) {
  EXPECT_DOUBLE_EQ(inter_expert_prune_accuracy_delta(0.0), 0.0);
  EXPECT_DOUBLE_EQ(intra_expert_prune_accuracy_delta(0.0), 0.0);
}

TEST(OptimizationImpact, PruningDeltasMonotoneAndConvex) {
  double prev_inter = 0.0, prev_intra = 0.0;
  double prev_inter_step = 0.0, prev_intra_step = 0.0;
  for (double r : {0.125, 0.25, 0.375, 0.5, 0.625}) {
    const double inter = inter_expert_prune_accuracy_delta(r);
    const double intra = intra_expert_prune_accuracy_delta(r);
    EXPECT_LT(inter, prev_inter) << r;
    EXPECT_LT(intra, prev_intra) << r;
    // Convex decline: each step costs more than the previous one.
    const double inter_step = prev_inter - inter;
    const double intra_step = prev_intra - intra;
    EXPECT_GT(inter_step, prev_inter_step) << r;
    EXPECT_GT(intra_step, prev_intra_step) << r;
    prev_inter = inter;
    prev_intra = intra;
    prev_inter_step = inter_step;
    prev_intra_step = intra_step;
  }
}

TEST(OptimizationImpact, InterPruningHurtsMoreThanIntra) {
  // Removing whole specialized experts is worse than trimming channels.
  for (double r : {0.125, 0.25, 0.5}) {
    EXPECT_LT(inter_expert_prune_accuracy_delta(r),
              intra_expert_prune_accuracy_delta(r))
        << r;
  }
}

TEST(OptimizationImpact, PaperAnchors) {
  // ~-2 pt at 25% inter, ~-10 pt at 50% inter; gentler intra slope.
  EXPECT_NEAR(inter_expert_prune_accuracy_delta(0.25), -1.25, 1.0);
  EXPECT_NEAR(inter_expert_prune_accuracy_delta(0.5), -8.0, 3.0);
  EXPECT_NEAR(intra_expert_prune_accuracy_delta(0.5), -4.0, 2.0);
}

TEST(OptimizationImpact, InvalidRatios) {
  EXPECT_THROW(inter_expert_prune_accuracy_delta(-0.1), Error);
  EXPECT_THROW(inter_expert_prune_accuracy_delta(1.0), Error);
  EXPECT_THROW(intra_expert_prune_accuracy_delta(1.5), Error);
}

}  // namespace
}  // namespace mib::accuracy
