// Integration tests: the paper's qualitative claims, asserted end-to-end
// through the public Scenario API. Each test names the section/figure whose
// claim it checks; EXPERIMENTS.md records the quantitative comparison.
#include <gtest/gtest.h>

#include <cctype>

#include "core/scenario.h"
#include "engine/scheduler.h"
#include "models/params.h"
#include "moe/pruning.h"
#include "specdec/specdec.h"
#include "workload/generator.h"

namespace mib {
namespace {

using core::Scenario;

Scenario base(const std::string& model, int devices = 1) {
  Scenario s;
  s.model = model;
  s.n_devices = devices;
  return s;
}

// --- §4.1 / Fig. 3: OLMoE has the fastest TTFT among the LLMs. All six
// models run on the same 4xH100 TP4 node (Mixtral/Phi cannot fit fewer). ---
TEST(PaperClaims, Fig3OlmoeFastestTtft) {
  double olmoe_ttft = 0.0;
  double others_min = 1e18;
  for (const auto& m : models::llm_models()) {
    auto s = base(m.name, 4).with_batch(64).with_lengths(2048, 2048);
    const double ttft = s.run().ttft_s;
    if (m.name == "OLMoE-1B-7B") {
      olmoe_ttft = ttft;
    } else {
      others_min = std::min(others_min, ttft);
    }
  }
  EXPECT_LT(olmoe_ttft, others_min);
}

// --- §4.1 / Fig. 4: VLM latency gaps exceed the LLM ones; the Tiny model
// leads the family. ---
TEST(PaperClaims, Fig4VlmFamilyOrdering) {
  auto run = [&](const std::string& name) {
    auto s = base(name).with_batch(16).with_lengths(1024, 1024);
    s.images_per_request = 1;
    return s.run();
  };
  const auto tiny = run("DeepSeek-VL2-Tiny");
  const auto small = run("DeepSeek-VL2-Small");
  const auto b = run("DeepSeek-VL2");
  EXPECT_LT(tiny.ttft_s, small.ttft_s);
  EXPECT_LT(small.ttft_s, b.ttft_s);
  EXPECT_LT(tiny.e2e_s, b.e2e_s);
  // §4.1: >2.6x end-to-end gap across the family; allow a broad band.
  EXPECT_GT(b.e2e_s / tiny.e2e_s, 1.8);
}

// --- §4.2 / Fig. 5: throughput decreases as TopK grows; large batches are
// more sensitive. ---
TEST(PaperClaims, Fig5TopKDegradesThroughput) {
  for (const char* name : {"DeepSeek-V2-Lite", "Qwen1.5-MoE-A2.7B"}) {
    const auto m = models::model_by_name(name);
    auto thr = [&](int k, int batch) {
      auto v = m;
      v.top_k = k;
      return base(name)
          .with_model(v)
          .with_batch(batch)
          .with_lengths(1024, 1024)
          .run()
          .throughput_tok_s;
    };
    // Monotone non-increasing in TopK at every batch size.
    for (int batch : {1, 16, 64}) {
      double prev = 1e18;
      for (int k : {1, 4, 16, m.n_experts / 2}) {
        const double t = thr(k, batch);
        EXPECT_LE(t, prev * 1.001) << name << " k=" << k << " b=" << batch;
        prev = t;
      }
    }
    // Degradation is "more pronounced at higher batch sizes" (§4.2): the
    // absolute throughput drop grows with batch.
    const double drop_small = thr(1, 1) - thr(16, 1);
    const double drop_large = thr(1, 64) - thr(16, 64);
    EXPECT_GT(drop_large, drop_small) << name;
  }
}

// --- §4.3 / Fig. 6: batch scaling and sequence-length penalties. ---
TEST(PaperClaims, Fig6BatchAndLengthTrends) {
  const auto s = base("DeepSeek-V2-Lite");
  const double t1 = s.with_batch(1).with_lengths(512, 512).run()
                        .throughput_tok_s;
  const double t128 = s.with_batch(128).with_lengths(512, 512).run()
                          .throughput_tok_s;
  EXPECT_GT(t128 / t1, 8.0);  // ">8x from batch 1 to 128"
  const double short_len = s.with_batch(64).with_lengths(128, 128).run()
                               .throughput_tok_s;
  const double long_len = s.with_batch(64).with_lengths(2048, 2048).run()
                              .throughput_tok_s;
  EXPECT_GT(short_len, long_len);
}

// --- §5.2 / Fig. 7: throughput declines with FFN dim; the TopK gap widens
// with FFN dim. ---
TEST(PaperClaims, Fig7FfnScaling) {
  auto thr = [&](int ffn, int topk) {
    auto v = models::mixtral_8x7b();
    v.expert_ffn = ffn;
    v.top_k = topk;
    return base("Mixtral-8x7B", 4)
        .with_model(v)
        .with_batch(16)
        .with_lengths(2048, 2048)
        .run()
        .throughput_tok_s;
  };
  EXPECT_GT(thr(1792, 2), thr(14336, 2));
  const double gap_small = 1.0 - thr(1792, 8) / thr(1792, 1);
  const double gap_large = 1.0 - thr(14336, 8) / thr(14336, 1);
  EXPECT_GT(gap_large, gap_small);
}

// --- §5.3 / Fig. 8: OOM boundaries appear at extreme expert counts. ---
TEST(PaperClaims, Fig8OomAtExtremeConfigs) {
  auto make = [&](int experts, int ffn) {
    auto v = models::mixtral_8x7b();
    v.n_experts = experts;
    v.expert_ffn = ffn;
    v.top_k = 2;
    return base("Mixtral-8x7B", 4)
        .with_model(v)
        .with_batch(16)
        .with_lengths(2048, 2048);
  };
  EXPECT_NO_THROW(make(8, 14336).run());
  EXPECT_THROW(make(64, 14336).run(), OutOfMemoryError);
  EXPECT_THROW(make(64, 7168).run(), OutOfMemoryError);
  EXPECT_NO_THROW(make(64, 1792).run());
}

// --- §5.4 / Fig. 9: single-active-expert configs are much faster at large
// FFN dims. ---
TEST(PaperClaims, Fig9SingleExpertAdvantage) {
  auto thr = [&](int experts, int ffn, int topk) {
    auto v = models::mixtral_8x7b();
    v.n_experts = experts;
    v.expert_ffn = ffn;
    v.top_k = topk;
    return base("Mixtral-8x7B", 4)
        .with_model(v)
        .with_batch(16)
        .with_lengths(2048, 2048)
        .run()
        .throughput_tok_s;
  };
  // 8-expert panel: expert coverage saturates either way at batch 16, so
  // the gap is modest but real.
  EXPECT_GT(thr(8, 14336, 1), 1.10 * thr(8, 14336, 8));
  // 64-expert panel: coverage scales with TopK and the paper's 50-80%
  // single-expert advantage appears.
  EXPECT_GT(thr(64, 3584, 1), 1.5 * thr(64, 3584, 8));
  // The TopK gap widens with FFN dimension (interaction claim, §5.4).
  const double gap_small = thr(8, 1792, 1) / thr(8, 1792, 8);
  const double gap_large = thr(8, 14336, 1) / thr(8, 14336, 8);
  EXPECT_GT(gap_large, gap_small);
}

// --- §6.1 / Fig. 10: FP8 beats FP16 by a widening margin at larger
// batches. ---
TEST(PaperClaims, Fig10Fp8Advantage) {
  // vLLM-style fp8 quantization: fp8 weights and activations, fp16 KV.
  auto thr = [&](DType dt, int batch) {
    auto s = base("Mixtral-8x7B", 4).with_batch(batch)
                 .with_lengths(1024, 1024);
    s.weight_dtype = dt;
    s.act_dtype = dt;
    return s.run().throughput_tok_s;
  };
  const double gain64 =
      thr(DType::kFP8E4M3, 64) / thr(DType::kFP16, 64) - 1.0;
  const double gain1 = thr(DType::kFP8E4M3, 1) / thr(DType::kFP16, 1) - 1.0;
  EXPECT_GT(gain64, 0.10);  // paper: 25-30% at the largest batch
  EXPECT_LT(gain64, 0.90);  // roofline upper bound (pure BW halving)
  EXPECT_GT(gain64, gain1);  // advantage widens with batch (paper claim)
}

// --- §6.2 / Fig. 11: 50% pruning improves throughput; pruned geometry
// still routes correctly (functional check). ---
TEST(PaperClaims, Fig11PruningImprovesThroughput) {
  const auto m = models::olmoe_1b_7b();
  auto thr = [&](int experts, int ffn) {
    auto v = m;
    v.n_experts = experts;
    v.expert_ffn = ffn;
    v.top_k = std::min(v.top_k, experts);
    return base(m.name, 4)
        .with_model(v)
        .with_batch(16)
        .with_lengths(2048, 2048)
        .run()
        .throughput_tok_s;
  };
  const double baseline = thr(64, 1024);
  const double inter50 = thr(moe::pruned_expert_count(64, 0.5), 1024);
  const double intra50 = thr(64, moe::pruned_ffn_dim(1024, 0.5));
  EXPECT_GT(inter50, baseline);
  EXPECT_GT(intra50, baseline);
}

// --- §6.3 / Fig. 12: Qwen3-1.7B is the best draft model. ---
TEST(PaperClaims, Fig12MediumDraftWins) {
  auto thr = [&](const models::ModelConfig& draft) {
    specdec::SpecDecConfig c;
    auto t = base("Qwen3-30B-A3B", 1);
    t.weight_dtype = DType::kFP8E4M3;  // target + draft share one H100
    c.target = t.engine_config();
    Scenario d;
    d.model_override = draft;
    d.weight_dtype = DType::kFP8E4M3;
    c.draft = d.engine_config();
    c.draft_tokens = 3;
    return specdec::SpecDecSimulator(c)
        .run(8, 1024, 1024)
        .throughput_tok_s;
  };
  const double t06 = thr(models::qwen3_0_6b());
  const double t17 = thr(models::qwen3_1_7b());
  const double t4 = thr(models::qwen3_4b());
  const double t8 = thr(models::qwen3_8b());
  EXPECT_GT(t17, t06);
  EXPECT_GT(t17, t4);
  EXPECT_GT(t17, t8);
}

// --- §7.1 / Fig. 13: TP scales best; PP stays flat. ---
TEST(PaperClaims, Fig13ParallelismOrdering) {
  const auto m = models::olmoe_1b_7b();
  auto thr = [&](parallel::ParallelPlan plan, int devices) {
    return base(m.name, devices)
        .with_plan(plan)
        .with_batch(32)
        .with_lengths(1024, 1024)
        .run()
        .throughput_tok_s;
  };
  const double tp1 = thr(parallel::tp_plan(1), 1);
  const double tp4 = thr(parallel::tp_plan(4), 4);
  const double tp4ep = thr(parallel::tp_ep_plan(4), 4);
  const double pp4 = thr(parallel::pp_plan(4), 4);
  EXPECT_GT(tp4 / tp1, 1.4);       // paper: >2x for Mixtral; OLMoE is
                                   // smaller so framework overhead bites
  EXPECT_GT(tp4, tp4ep);           // TP+EP scales worse than pure TP
  EXPECT_GT(tp4, pp4);             // PP is the worst scaler
  EXPECT_LT(pp4 / tp1, 1.4);       // PP nearly flat
}

// --- §7.2 / Fig. 14: Fused MoE wins, more at large batch. ---
TEST(PaperClaims, Fig14FusedMoEGains) {
  auto thr = [&](bool fused, int batch) {
    return base("Mixtral-8x7B", 4)
        .with_fused(fused)
        .with_batch(batch)
        .with_lengths(1024, 1024)
        .run()
        .throughput_tok_s;
  };
  const double gain = thr(true, 64) / thr(false, 64) - 1.0;
  EXPECT_GT(gain, 0.05);  // paper: 15-20%
  EXPECT_LT(gain, 0.60);
}

// --- §7.3 / Fig. 16: CS-3 latency grows more slowly with context. ---
TEST(PaperClaims, Fig16Cs3FlatterLatency) {
  auto lat = [&](const std::string& dev, int devices, int len) {
    auto s = base("Llama-4-Scout-17B-16E", devices)
                 .with_batch(1)
                 .with_lengths(len, len);
    s.device = dev;
    if (dev == "h100") s.weight_dtype = DType::kFP8E4M3;  // fits 8xH100
    else s.weight_dtype = DType::kFP8E4M3;  // replica stores FP8 weights
    return s.run().e2e_s;
  };
  const double h100_growth = lat("h100", 8, 2048) / lat("h100", 8, 128);
  const double cs3_growth = lat("cs3", 1, 2048) / lat("cs3", 1, 128);
  EXPECT_LT(cs3_growth, h100_growth);
  EXPECT_LT(lat("cs3", 1, 2048), lat("h100", 8, 2048));
}

// --- §8.1 / Fig. 17: OLMoE highest throughput; Phi-3.5-MoE slowest. ---
TEST(PaperClaims, Fig17EfficiencyFrontier) {
  double olmoe = 0.0, phi = 0.0, best_other = 0.0;
  for (const auto& m : models::llm_models()) {
    const auto thr = base(m.name, 4)
                         .with_batch(32)
                         .with_lengths(1024, 1024)
                         .run()
                         .throughput_tok_s;
    if (m.name == "OLMoE-1B-7B") olmoe = thr;
    else if (m.name == "Phi-3.5-MoE") phi = thr;
    else best_other = std::max(best_other, thr);
  }
  EXPECT_GT(olmoe, best_other);
  EXPECT_GT(olmoe, phi * 1.5);
}

// --- serving extension: continuous batching never loses to static gang
// batching on a mixed-length trace, for every Table-1 LLM that fits one
// H100 (the production framing of the paper's batching insight, §4.2). ---
class ContinuousBatchingWins : public ::testing::TestWithParam<const char*> {
};

TEST_P(ContinuousBatchingWins, HigherThroughputThanStatic) {
  workload::TraceConfig tc;
  tc.n_requests = 32;
  tc.input = {64, 1024, 1.2};
  tc.output = {32, 512, 1.2};
  const auto trace = workload::generate_trace(tc);

  engine::SchedulerConfig cont;
  cont.max_batch = 16;
  engine::SchedulerConfig stat = cont;
  stat.continuous_batching = false;

  const auto cfg = base(GetParam()).engine_config();
  const auto c = engine::ServingSimulator(cfg, cont).run(trace);
  const auto s = engine::ServingSimulator(cfg, stat).run(trace);
  EXPECT_GE(c.throughput_tok_s, s.throughput_tok_s) << GetParam();
  EXPECT_LE(c.ttft_s.percentile(95), s.ttft_s.percentile(95) * 1.05)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SingleGpuLLMs, ContinuousBatchingWins,
                         ::testing::Values("OLMoE-1B-7B",
                                           "Qwen1.5-MoE-A2.7B",
                                           "DeepSeek-V2-Lite"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& ch : n) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace mib
