// Cross-validation: the functional components (router, transformer,
// Monte-Carlo samplers) must reproduce the statistics the analytical cost
// model assumes. These are the tests that tie the two halves of the suite
// together.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "models/zoo.h"
#include "moe/router.h"
#include "moe/transformer.h"
#include "parallel/expert_placement.h"

namespace mib {
namespace {

// --- coverage: functional router vs expected_distinct_experts ---
struct CoverageCase {
  int experts;
  int top_k;
  int tokens;
};

class RouterCoverage : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(RouterCoverage, MatchesAnalyticExpectation) {
  const auto p = GetParam();
  // Average distinct-expert count over many independent batches.
  const int trials = 60;
  double distinct_acc = 0.0;
  Rng seed_rng(99);
  for (int t = 0; t < trials; ++t) {
    moe::RouterConfig rc;
    rc.hidden = 64;
    rc.n_experts = p.experts;
    rc.top_k = p.top_k;
    Rng rng = seed_rng.split();
    moe::Router router(rc, rng);
    Rng xr = seed_rng.split();
    const Tensor x = Tensor::randn(
        {static_cast<std::size_t>(p.tokens), 64}, xr);
    router.route(x);
    int distinct = 0;
    for (auto c : router.activation_counts()) distinct += c > 0;
    distinct_acc += distinct;
  }
  const double empirical = distinct_acc / trials;
  const double analytic = parallel::expected_distinct_experts(
      p.experts, static_cast<double>(p.tokens) * p.top_k,
      parallel::RoutingModel{});
  // Router weights are random, not perfectly uniform: allow 15%.
  EXPECT_NEAR(empirical, analytic, 0.15 * analytic + 1.0)
      << "E=" << p.experts << " k=" << p.top_k << " tokens=" << p.tokens;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RouterCoverage,
    ::testing::Values(CoverageCase{8, 2, 4}, CoverageCase{8, 2, 16},
                      CoverageCase{64, 8, 4}, CoverageCase{64, 8, 16},
                      CoverageCase{64, 1, 32}, CoverageCase{16, 4, 8}),
    [](const ::testing::TestParamInfo<CoverageCase>& param_info) {
      std::string n = "E";
      n += std::to_string(param_info.param.experts);
      n += "_k";
      n += std::to_string(param_info.param.top_k);
      n += "_t";
      n += std::to_string(param_info.param.tokens);
      return n;
    });

// --- the functional transformer's per-layer activation statistics feed the
// same imbalance metric the EP model uses ---
TEST(FunctionalVsAnalytic, TransformerLoadFactorNearAnalytic) {
  moe::TransformerConfig cfg;
  cfg.vocab = 128;
  cfg.n_layers = 3;
  cfg.hidden = 64;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 4;
  cfg.head_dim = 16;
  cfg.n_experts = 16;
  cfg.top_k = 2;
  cfg.expert_ffn = 64;
  moe::Transformer model(cfg, 31);
  auto s = model.new_session();
  Rng rng(7);
  std::vector<int> prompt(256);
  for (auto& t : prompt) {
    t = static_cast<int>(rng.uniform_index(128));
  }
  model.forward(prompt, s);

  // Group the 16 experts into 4 devices and compare the empirical max
  // share with the analytic formula at the same assignment count.
  const auto counts = model.activation_counts();
  double worst_share = 0.0;
  for (const auto& layer : counts) {
    std::vector<double> group(4, 0.0);
    double total = 0.0;
    for (std::size_t e = 0; e < layer.size(); ++e) {
      group[e / 4] += static_cast<double>(layer[e]);
      total += static_cast<double>(layer[e]);
    }
    worst_share = std::max(
        worst_share, *std::max_element(group.begin(), group.end()) / total);
  }
  const double analytic_share = parallel::expected_max_group_share(
      16, 256.0 * 2, 4, parallel::RoutingModel{});
  // Random (untrained) routers are mildly imbalanced; the analytic uniform
  // share must land below the worst empirical layer but in its vicinity.
  EXPECT_GT(worst_share, analytic_share * 0.8);
  EXPECT_LT(worst_share, analytic_share * 3.0);
}

// --- multinomial max-load: Monte Carlo vs Gaussian approximation across a
// grid (the EP slowest-device penalty) ---
TEST(FunctionalVsAnalytic, MaxLoadFormulaAccurateAcrossGrid) {
  Rng rng(17);
  for (int groups : {2, 4, 8}) {
    for (double n : {64.0, 512.0, 4096.0}) {
      const int E = 64;
      const auto probs =
          parallel::expert_probabilities(E, parallel::RoutingModel{});
      const int trials = 300;
      double emp = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::vector<int> load(groups, 0);
        for (int d = 0; d < static_cast<int>(n); ++d) {
          ++load[static_cast<int>(rng.uniform_index(E)) * groups / E];
        }
        emp += *std::max_element(load.begin(), load.end());
      }
      emp /= trials;
      const double emp_factor = emp / (n / groups);
      const double analytic = parallel::expected_max_group_load_factor(
          E, n, groups, parallel::RoutingModel{});
      EXPECT_NEAR(analytic, emp_factor, 0.12 * emp_factor)
          << "g=" << groups << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace mib
