#include "hw/interconnect.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"
#include "hw/cluster.h"

namespace mib::hw {
namespace {

TEST(Interconnect, SingleRankCollectivesAreFree) {
  const Interconnect ic(nvlink4());
  EXPECT_DOUBLE_EQ(ic.allreduce(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ic.allgather(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ic.reduce_scatter(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ic.all_to_all(1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ic.broadcast(1e9, 1), 0.0);
}

TEST(Interconnect, ZeroBytesAreFree) {
  const Interconnect ic(nvlink4());
  EXPECT_DOUBLE_EQ(ic.allreduce(0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(ic.p2p(0.0), 0.0);
}

TEST(Interconnect, RingAllreduceVolume) {
  const Interconnect ic(nvlink4());
  const double bytes = 1.0 * kGB;
  const int n = 4;
  const double expected =
      2.0 * 3.0 / 4.0 * bytes / nvlink4().bandwidth +
      2.0 * 3.0 * nvlink4().latency;
  EXPECT_NEAR(ic.allreduce(bytes, n), expected, expected * 1e-12);
}

TEST(Interconnect, AllreduceApproachesTwiceBandwidthCost) {
  const Interconnect ic(nvlink4());
  const double bytes = 10.0 * kGB;
  // As n grows the ring volume -> 2x bytes.
  const double t8 = ic.allreduce(bytes, 8);
  EXPECT_NEAR(t8, 2.0 * 7.0 / 8.0 * bytes / nvlink4().bandwidth, 1e-3);
}

TEST(Interconnect, LatencyTermScalesWithRanks) {
  const Interconnect ic(nvlink4());
  // Tiny message: latency-dominated.
  const double t2 = ic.allreduce(8.0, 2);
  const double t8 = ic.allreduce(8.0, 8);
  EXPECT_NEAR(t8 / t2, 7.0, 0.2);
}

TEST(Interconnect, AllToAllKeepsLocalShard) {
  const Interconnect ic(nvlink4());
  const double bytes = 1.0 * kGB;
  const double t = ic.all_to_all(bytes, 4);
  EXPECT_NEAR(t, 0.75 * bytes / nvlink4().bandwidth +
                     3.0 * nvlink4().latency,
              1e-9);
}

TEST(Interconnect, AllgatherMovesOtherRanksShards) {
  const Interconnect ic(nvlink4());
  const double per_rank = 256.0 * kMB;
  EXPECT_NEAR(ic.allgather(per_rank, 4),
              3.0 * per_rank / nvlink4().bandwidth + 3.0 * nvlink4().latency,
              1e-9);
}

TEST(Interconnect, BroadcastIsLogDepth) {
  const Interconnect ic(nvlink4());
  const double b = 1.0 * kGB;
  EXPECT_NEAR(ic.broadcast(b, 8) / ic.broadcast(b, 2), 3.0, 0.01);
}

TEST(Interconnect, P2PHasLatencyFloor) {
  const Interconnect ic(nvlink4());
  EXPECT_GE(ic.p2p(1.0), nvlink4().latency);
}

TEST(Interconnect, LinkPresetsOrdering) {
  EXPECT_GT(nvlink4().bandwidth, pcie_gen5().bandwidth);
  EXPECT_GT(pcie_gen5().bandwidth, ib_ndr400().bandwidth);
}

TEST(Interconnect, InvalidArgsThrow) {
  const Interconnect ic(nvlink4());
  EXPECT_THROW(ic.allreduce(-1.0, 2), Error);
  EXPECT_THROW(ic.allreduce(1.0, 0), Error);
  EXPECT_THROW(Interconnect(LinkSpec{"bad", 0.0, 0.0}), Error);
}

TEST(Cluster, GroupRouting) {
  const Cluster c(h100_sxm5(), 16, 8, nvlink4(), ib_ndr400());
  EXPECT_EQ(c.nodes(), 2);
  EXPECT_EQ(c.interconnect_for_group(8).link().name, "NVLink4");
  EXPECT_EQ(c.interconnect_for_group(16).link().name, "IB-NDR400");
  EXPECT_THROW(c.interconnect_for_group(17), Error);
  EXPECT_THROW(c.interconnect_for_group(0), Error);
}

TEST(Cluster, H100NodeMemoryAggregates) {
  const Cluster c = Cluster::h100_node(4);
  EXPECT_NEAR(c.total_usable_mem(), 4 * h100_sxm5().usable_mem(), 1.0);
  EXPECT_THROW(Cluster::h100_node(9), Error);
  EXPECT_THROW(Cluster::h100_node(0), Error);
}

TEST(Cluster, CS3IsSingleDevice) {
  const Cluster c = Cluster::cs3_system();
  EXPECT_EQ(c.size(), 1);
}

}  // namespace
}  // namespace mib::hw
